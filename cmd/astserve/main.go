// Command astserve exposes the engine over TCP with the astdb wire protocol,
// so many clients share one catalog, plan cache, and summary-table set — the
// deployment shape the paper assumes (a DBMS maintaining ASTs for its whole
// query population, not one process per user).
//
// Usage:
//
//	astserve -demo                          # star schema + data, listen on 127.0.0.1:5433
//	astserve -demo -asts paper              # also materialize the paper's summary tables
//	astserve -demo -max-sessions 256 -max-concurrent 8 -queue-depth 64
//
// Clients connect with the astdb database/sql driver:
//
//	db, _ := sql.Open("astdb", "127.0.0.1:5433")
//
// SIGINT/SIGTERM triggers a graceful drain: the listener closes and every
// request already received is served before its session ends; -drain-grace
// bounds how long that may take before in-flight work is canceled.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/astdb"
	"repro/internal/bench"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "astserve: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:5433", "listen address (host:port, port 0 picks a free port)")
	demo := flag.Bool("demo", false, "preload the paper's credit-card star schema with synthetic data")
	scale := flag.Int("scale", 10000, "demo fact-table rows")
	asts := flag.String("asts", "", `summary tables to materialize: "paper" (ast1,ast6,ast7), "ds" (the TPC-D-style set), or comma-separated names from the paper suite`)
	maxSessions := flag.Int("max-sessions", 0, "maximum concurrent sessions (0 = unlimited)")
	maxConcurrent := flag.Int("max-concurrent", 0, "maximum concurrently executing queries (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue depth once all execution slots are busy")
	timeout := flag.Duration("timeout", 0, "per-query execution timeout (0 = none)")
	limit := flag.Int("limit", 0, "per-query row-materialization budget (0 = unlimited)")
	planCache := flag.Int("plancache", 0, "rewrite plan cache capacity (0 = default, <0 = disabled)")
	obsFlag := flag.Bool("obs", true, "record observability data (served to clients via the obs request)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long a graceful drain may take before in-flight queries are canceled")
	flag.Parse()

	opts := []astdb.Option{
		astdb.WithLimits(exec.Config{MaxRows: *limit, Timeout: *timeout}),
		astdb.WithPlanCache(*planCache),
	}
	if *obsFlag {
		opts = append(opts, astdb.WithObserver(obs.New()))
	}
	db, err := astdb.Open(catalog.New(), opts...)
	if err != nil {
		return err
	}
	if *demo {
		workload.Schema(db.Catalog())
		workload.Load(db.Catalog(), db.Store(), workload.StarConfig{NumTrans: *scale, Seed: 1})
		fmt.Printf("demo schema loaded: trans(%d rows), loc, pgroup, acct, cust\n",
			db.Store().MustTable("trans").Cardinality())
	}
	if *asts != "" {
		if !*demo {
			return fmt.Errorf("-asts needs -demo (the summary tables are defined over the demo schema)")
		}
		if err := materialize(db, *asts); err != nil {
			return err
		}
	}

	srv := server.New(db, server.Config{
		MaxSessions:   *maxSessions,
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    *queueDepth,
	})
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("astserve listening on %s\n", bound)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	fmt.Printf("received %s, draining (grace %s)\n", sig, *drainGrace)
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Println("drained cleanly")
	return nil
}

// materialize creates the requested summary tables through the facade (so
// they are catalog-registered, write-protected, and maintained under DML).
func materialize(db *astdb.Engine, spec string) error {
	ctx := context.Background()
	create := func(name, sql string) error {
		_, rows, err := db.CreateSummaryTable(ctx, name, sql)
		if err != nil {
			return fmt.Errorf("summary table %s: %w", name, err)
		}
		fmt.Printf("materialized %s (%d rows)\n", name, rows)
		return nil
	}
	switch spec {
	case "paper":
		for _, name := range []string{"ast1", "ast6", "ast7"} {
			if err := create(name, bench.ASTDefs[name]); err != nil {
				return err
			}
		}
	case "ds":
		for _, ast := range workload.DSASTs {
			if err := create(ast.Name, ast.SQL); err != nil {
				return err
			}
		}
	default:
		for _, name := range strings.Split(spec, ",") {
			name = strings.TrimSpace(name)
			sql, ok := bench.ASTDefs[name]
			if !ok {
				known := make([]string, 0, len(bench.ASTDefs))
				for k := range bench.ASTDefs {
					known = append(known, k)
				}
				sort.Strings(known)
				return fmt.Errorf("unknown summary table %q (paper suite has %s)", name, strings.Join(known, ", "))
			}
			if err := create(name, sql); err != nil {
				return err
			}
		}
	}
	return nil
}
