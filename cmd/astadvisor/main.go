// Command astadvisor recommends a set of Automatic Summary Tables for the
// demo star schema: it measures every cuboid's cardinality over the chosen
// dimensions, runs HRU greedy lattice selection, and prints CREATE SUMMARY
// TABLE statements ready for the astrw shell.
//
// Usage:
//
//	astadvisor -scale 50000 -k 3 -dims flid,faid,fpgid,year
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/advisor"
	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/workload"
)

var knownDims = map[string]advisor.Dimension{
	"flid":  {Name: "flid", Expr: "flid"},
	"faid":  {Name: "faid", Expr: "faid"},
	"fpgid": {Name: "fpgid", Expr: "fpgid"},
	"qty":   {Name: "qty", Expr: "qty"},
	"year":  {Name: "year", Expr: "year(date)"},
	"month": {Name: "month", Expr: "month(date)"},
}

func main() {
	scale := flag.Int("scale", 20000, "fact-table rows to generate")
	k := flag.Int("k", 3, "number of summary tables to pick")
	dims := flag.String("dims", "flid,faid,year", "comma-separated dimensions: flid,faid,fpgid,qty,year,month")
	flag.Parse()

	cfg := advisor.Config{
		Fact: "trans",
		Aggs: []string{"count(*) as cnt", "sum(qty) as sum_qty", "sum(qty * price) as revenue"},
		K:    *k,
	}
	for _, d := range strings.Split(*dims, ",") {
		dim, ok := knownDims[strings.TrimSpace(strings.ToLower(d))]
		if !ok {
			fmt.Fprintf(os.Stderr, "astadvisor: unknown dimension %q (known: flid,faid,fpgid,qty,year,month)\n", d)
			os.Exit(1)
		}
		cfg.Dims = append(cfg.Dims, dim)
	}

	cat := catalog.New()
	workload.Schema(cat)
	store := storage.NewStore()
	workload.Load(cat, store, workload.StarConfig{NumTrans: *scale, Seed: 1})
	fmt.Printf("-- measuring %d cuboids over %d fact rows...\n", 1<<len(cfg.Dims), *scale)

	props, lattice, err := advisor.SelectASTs(cfg, cat, store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "astadvisor: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("-- lattice top (raw data): %d rows\n", lattice.Size[lattice.Top()])
	for i, p := range props {
		fmt.Printf("-- pick %d: dims=%v rows=%d benefit=%d\n", i+1, p.Dims, p.Rows, p.Benefit)
		fmt.Printf("CREATE SUMMARY TABLE %s AS\n  %s;\n\n", p.Def.Name, p.Def.SQL)
	}
	if len(props) == 0 {
		fmt.Println("-- no beneficial summary tables found")
	}
}
