// Command astrw is a small SQL shell over the reproduction: it accepts
// CREATE TABLE (with PRIMARY KEY / UNIQUE / FOREIGN KEY constraints), INSERT,
// DELETE, UPDATE, CREATE SUMMARY TABLE name AS SELECT (the DB2 syntax for
// Automatic Summary Tables), SELECT, EXPLAIN SELECT, and EXPLAIN
// DELETE/UPDATE (per-AST maintenance routing). Every SELECT is first routed
// through the matching algorithm against all registered summary tables; when
// a match is found the rewritten query runs instead and both forms are
// printed. Every DML statement refreshes the summary tables that read the
// mutated table and reports each refresh's route and delta statistics.
//
// Usage:
//
//	astrw -f script.sql            # run a script
//	astrw -demo                    # load the paper's star schema + data, then read stdin
//	astrw -demo -explain           # render the full EXPLAIN report for every SELECT
//	astrw -demo -obs               # print the observability snapshot at exit
//	echo "select ..." | astrw -demo
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/astdb"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/sqltypes"
	"repro/internal/workload"
)

type shell struct {
	db         *astdb.Engine
	out        io.Writer
	maxRows    int
	explainAll bool // -explain: render the EXPLAIN report for every SELECT
}

func main() {
	file := flag.String("f", "", "SQL script to execute (default: stdin)")
	demo := flag.Bool("demo", false, "preload the paper's credit-card star schema with synthetic data")
	scale := flag.Int("scale", 10000, "demo fact-table rows")
	maxRows := flag.Int("maxrows", 20, "maximum result rows to print")
	timeout := flag.Duration("timeout", 0, "per-query execution timeout (0 = none)")
	limit := flag.Int("limit", 0, "per-query row-materialization budget (0 = unlimited)")
	allowStale := flag.Bool("allow-stale", false, "let queries read summary tables marked stale")
	explain := flag.Bool("explain", false, "render the EXPLAIN report for every SELECT instead of executing it")
	obsFlag := flag.Bool("obs", false, "record observability data and print the snapshot at exit")
	flag.Parse()

	opts := []astdb.Option{
		astdb.WithLimits(astdb.Config{MaxRows: *limit, Timeout: *timeout}),
		astdb.WithAllowStale(*allowStale),
	}
	if *obsFlag {
		opts = append(opts, astdb.WithObserver(obs.New()))
	}
	db, err := astdb.Open(catalog.New(), opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "astrw: %v\n", err)
		os.Exit(1)
	}
	sh := &shell{db: db, out: os.Stdout, maxRows: *maxRows, explainAll: *explain}

	if *demo {
		workload.Schema(db.Catalog())
		workload.Load(db.Catalog(), db.Store(), workload.StarConfig{NumTrans: *scale, Seed: 1})
		fmt.Fprintf(sh.out, "-- demo schema loaded: trans(%d rows), loc, pgroup, acct, cust\n",
			db.Store().MustTable("trans").Cardinality())
	}

	defer func() {
		if *obsFlag {
			fmt.Fprintln(sh.out, "\n-- observability snapshot --")
			db.Snapshot().Render(sh.out)
		}
	}()

	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "astrw: %v\n", err)
			os.Exit(1)
		}
		if err := sh.runScript(string(src)); err != nil {
			fmt.Fprintf(os.Stderr, "astrw: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if interactive() {
		sh.repl()
		return
	}
	src, err := io.ReadAll(bufio.NewReader(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "astrw: %v\n", err)
		os.Exit(1)
	}
	if err := sh.runScript(string(src)); err != nil {
		fmt.Fprintf(os.Stderr, "astrw: %v\n", err)
		os.Exit(1)
	}
}

// interactive reports whether stdin is a terminal.
func interactive() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// runScript executes a whole ';'-separated script, stopping at the first
// error.
func (sh *shell) runScript(src string) error {
	stmts, err := parser.ParseScript(src)
	if err != nil {
		return err
	}
	for _, stmt := range stmts {
		if err := sh.exec(stmt); err != nil {
			return err
		}
	}
	return nil
}

// repl reads statements interactively, one ';'-terminated statement at a
// time; errors are reported without exiting.
func (sh *shell) repl() {
	fmt.Fprintln(sh.out, "astrw — Automatic Summary Table shell. Statements end with ';'. Ctrl-D to exit.")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Fprint(sh.out, "ast> ")
		} else {
			fmt.Fprint(sh.out, "...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.Contains(line, ";") {
			if err := sh.runScript(buf.String()); err != nil {
				fmt.Fprintf(sh.out, "error: %v\n", err)
			}
			buf.Reset()
		}
		prompt()
	}
	fmt.Fprintln(sh.out)
}

func (sh *shell) exec(stmt parser.Statement) error {
	switch s := stmt.(type) {
	case *parser.CreateTableStmt:
		return sh.createTable(s)
	case *parser.CreateASTStmt:
		return sh.createAST(s)
	case *parser.InsertStmt:
		return sh.insert(s)
	case *parser.DeleteStmt:
		return sh.dml("deleted", func() (*astdb.DMLResult, error) {
			return sh.db.Delete(context.Background(), s.SQL())
		})
	case *parser.UpdateStmt:
		return sh.dml("updated", func() (*astdb.DMLResult, error) {
			return sh.db.Update(context.Background(), s.SQL())
		})
	case *parser.ExplainStmt:
		if s.DML != nil {
			return sh.explainDML(s.DML)
		}
		return sh.explain(s.Query)
	case *parser.SelectStmt:
		if sh.explainAll {
			return sh.explain(s)
		}
		return sh.query(s)
	case *parser.LoadStmt:
		return sh.load(s)
	default:
		return fmt.Errorf("unsupported statement %T", stmt)
	}
}

// load bulk-loads a CSV file into a declared table, coercing cells by the
// declared column types. An optional header row matching the column names is
// skipped. Empty cells become NULL.
func (sh *shell) load(s *parser.LoadStmt) error {
	meta, ok := sh.db.Catalog().Table(s.Table)
	if !ok {
		return fmt.Errorf("table %q not found", s.Table)
	}
	f, err := os.Open(s.Path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.TrimLeadingSpace = true
	r.FieldsPerRecord = -1 // our own arity check reports a clearer error
	first := true
	var rows [][]sqltypes.Value
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if first {
			first = false
			if isHeaderRow(rec, meta) {
				continue
			}
		}
		if len(rec) != len(meta.Columns) {
			return fmt.Errorf("%s: row %d has %d cells, table has %d columns", s.Path, len(rows)+1, len(rec), len(meta.Columns))
		}
		row := make([]sqltypes.Value, len(rec))
		for i, cell := range rec {
			v, err := coerceCell(cell, meta.Columns[i].Type)
			if err != nil {
				return fmt.Errorf("%s: row %d column %s: %w", s.Path, len(rows)+1, meta.Columns[i].Name, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	stats, err := sh.db.Insert(context.Background(), s.Table, rows)
	if err != nil && stats == nil {
		return err
	}
	fmt.Fprintf(sh.out, "-- loaded %d row(s) into %s from %s\n", len(rows), s.Table, s.Path)
	sh.reportMaintenance(stats)
	return nil
}

func isHeaderRow(rec []string, meta *catalog.Table) bool {
	if len(rec) != len(meta.Columns) {
		return false
	}
	for i, cell := range rec {
		if !strings.EqualFold(strings.TrimSpace(cell), meta.Columns[i].Name) {
			return false
		}
	}
	return true
}

func coerceCell(cell string, kind sqltypes.Kind) (sqltypes.Value, error) {
	cell = strings.TrimSpace(cell)
	if cell == "" || strings.EqualFold(cell, "null") {
		return sqltypes.Null, nil
	}
	switch kind {
	case sqltypes.KindInt:
		i, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewInt(i), nil
	case sqltypes.KindFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewFloat(f), nil
	case sqltypes.KindBool:
		b, err := strconv.ParseBool(cell)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool(b), nil
	case sqltypes.KindDate:
		return sqltypes.ParseDate(cell)
	default:
		return sqltypes.NewString(cell), nil
	}
}

func (sh *shell) createTable(s *parser.CreateTableStmt) error {
	t := &catalog.Table{Name: s.Name, PrimaryKey: s.PrimaryKey, UniqueKeys: s.Uniques}
	for _, c := range s.Columns {
		t.Columns = append(t.Columns, catalog.Column{Name: c.Name, Type: c.Type, Nullable: !c.NotNull})
	}
	if err := sh.db.CreateTable(t); err != nil {
		return err
	}
	for _, fk := range s.ForeignKeys {
		if err := sh.db.AddForeignKey(catalog.ForeignKey{
			ChildTable: s.Name, ChildCols: fk.Cols,
			ParentTable: fk.ParentTable, ParentCols: fk.ParentCols,
		}); err != nil {
			return err
		}
	}
	fmt.Fprintf(sh.out, "-- created table %s\n", s.Name)
	return nil
}

func (sh *shell) createAST(s *parser.CreateASTStmt) error {
	_, rows, err := sh.db.CreateSummaryTable(context.Background(), s.Name, s.Query.SQL())
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "-- summary table %s materialized (%d rows)\n", s.Name, rows)
	return nil
}

func (sh *shell) insert(s *parser.InsertStmt) error {
	meta, ok := sh.db.Catalog().Table(s.Table)
	if !ok {
		return fmt.Errorf("table %q not found", s.Table)
	}
	rows := make([][]sqltypes.Value, 0, len(s.Rows))
	for _, row := range s.Rows {
		vals := make([]sqltypes.Value, len(row))
		for i, e := range row {
			lit, ok := e.(*parser.Lit)
			if !ok {
				return fmt.Errorf("INSERT values must be literals, got %s", e.SQL())
			}
			vals[i] = lit.Val
			// Coerce ISO date strings into DATE-typed columns.
			if i < len(meta.Columns) && meta.Columns[i].Type == sqltypes.KindDate &&
				lit.Val.Kind() == sqltypes.KindString {
				d, err := sqltypes.ParseDate(lit.Val.Str())
				if err != nil {
					return err
				}
				vals[i] = d
			}
		}
		rows = append(rows, vals)
	}
	stats, err := sh.db.Insert(context.Background(), s.Table, rows)
	if err != nil && stats == nil {
		return err
	}
	fmt.Fprintf(sh.out, "-- inserted %d row(s) into %s\n", len(rows), s.Table)
	sh.reportMaintenance(stats)
	return nil
}

// reportMaintenance surfaces per-AST refresh outcomes after an insert,
// delete, or update.
func (sh *shell) reportMaintenance(stats []astdb.Stats) {
	for _, st := range stats {
		if st.Err != nil {
			fmt.Fprintf(sh.out, "-- degraded: summary table %s refresh failed (now stale): %v\n", st.AST, st.Err)
			continue
		}
		extra := ""
		if st.Retired > 0 || st.Scoped > 0 {
			extra = fmt.Sprintf(", %d group(s) retired, %d scope-recomputed", st.Retired, st.Scoped)
		}
		fmt.Fprintf(sh.out, "-- refreshed summary table %s (%s, %d delta rows%s)\n", st.AST, st.Strategy, st.DeltaRows, extra)
	}
}

// dml executes one DELETE or UPDATE through the facade and reports the
// affected-row count plus per-AST maintenance outcomes, mirroring insert.
func (sh *shell) dml(verb string, run func() (*astdb.DMLResult, error)) error {
	res, err := run()
	if err != nil && res == nil {
		return err
	}
	fmt.Fprintf(sh.out, "-- %s %d row(s) in %s\n", verb, res.Affected, res.Table)
	sh.reportMaintenance(res.Stats)
	return nil
}

// explainDML prints the maintenance routing a DELETE or UPDATE would take.
func (sh *shell) explainDML(stmt parser.Statement) error {
	rep, err := sh.db.ExplainDML(context.Background(), stmt.SQL())
	if err != nil {
		return err
	}
	fmt.Fprint(sh.out, rep.Render())
	return nil
}

// explain renders the deterministic EXPLAIN report for one query.
func (sh *shell) explain(s *parser.SelectStmt) error {
	fmt.Fprintln(sh.out)
	rep, err := sh.db.Explain(context.Background(), s.SQL())
	if err != nil {
		return err
	}
	rep.Render(sh.out)
	sh.reportDegradations()
	return nil
}

func (sh *shell) query(s *parser.SelectStmt) error {
	fmt.Fprintf(sh.out, "\n> %s\n", s.SQL())
	ans, err := sh.db.Query(context.Background(), s.SQL())
	if err != nil {
		sh.reportDegradations()
		return err
	}
	switch {
	case ans.FellBack:
		name := "?"
		if ans.Rewrite != nil {
			name = ans.Rewrite.AST.Def.Name
		}
		fmt.Fprintf(sh.out, "-- summary table %s unusable at execution time; answered from base tables\n", name)
	case ans.AST != "":
		note := ""
		if ans.CacheHit {
			note = " (cached plan)"
		}
		fmt.Fprintf(sh.out, "-- rewritten to read summary table %s%s:\n--   %s\n", ans.AST, note, ans.Plan.SQL())
	case len(sh.db.ASTs()) > 0:
		fmt.Fprintln(sh.out, "-- no summary table matches; executing against base tables")
	}
	sh.reportDegradations()
	astdb.SortRows(ans.Result.Rows)
	sh.printResult(ans.Result)
	return nil
}

// reportDegradations surfaces recovered failures (match panics, unusable
// candidates) as comments so degraded service is visible, not silent.
func (sh *shell) reportDegradations() {
	for _, d := range sh.db.Degradations() {
		fmt.Fprintf(sh.out, "-- degraded: %v\n", d)
	}
}

func (sh *shell) printResult(r *exec.Result) {
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
	}
	n := len(r.Rows)
	shown := n
	if shown > sh.maxRows {
		shown = sh.maxRows
	}
	cells := make([][]string, shown)
	for i := 0; i < shown; i++ {
		cells[i] = make([]string, len(r.Rows[i]))
		for j, v := range r.Rows[i] {
			cells[i][j] = v.String()
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	var sb strings.Builder
	for i, c := range r.Cols {
		if i > 0 {
			sb.WriteString(" | ")
		}
		sb.WriteString(pad(c, widths[i]))
	}
	fmt.Fprintln(sh.out, sb.String())
	for i := 0; i < shown; i++ {
		sb.Reset()
		for j, c := range cells[i] {
			if j > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(pad(c, widths[j]))
		}
		fmt.Fprintln(sh.out, sb.String())
	}
	if shown < n {
		fmt.Fprintf(sh.out, "... (%d more rows)\n", n-shown)
	}
	fmt.Fprintf(sh.out, "(%d rows)\n", n)
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}
