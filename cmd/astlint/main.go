// Command astlint runs the repo's custom analyzer suite (internal/lint) over
// the module and exits non-zero on unsuppressed findings. It is a hard CI
// gate:
//
//	go run ./cmd/astlint ./...
//
// Arguments are package-path prefixes to restrict the run (./... or none =
// the whole module); -list prints the analyzers instead of running them;
// -json emits a machine-readable report (findings, suppressions, analyzer
// list) for CI artifact upload. Suppressions (//lint:ignore <rule> <reason>)
// are always counted and printed so they cannot hide silently.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Reason   string `json:"reason,omitempty"` // suppression reason, when suppressed
}

// jsonReport is the -json document.
type jsonReport struct {
	Analyzers   []string      `json:"analyzers"`
	Findings    []jsonFinding `json:"findings"`
	Suppressed  []jsonFinding `json:"suppressed"`
	NumFindings int           `json:"num_findings"`
	NumSuppress int           `json:"num_suppressed"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit a machine-readable JSON report")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "astlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "astlint:", err)
		os.Exit(2)
	}
	pkgs = restrict(pkgs, flag.Args())

	findings, suppressed := lint.RunDetailed(pkgs, lint.All())

	if *asJSON {
		rep := jsonReport{
			Findings:    []jsonFinding{},
			Suppressed:  []jsonFinding{},
			NumFindings: len(findings),
			NumSuppress: len(suppressed),
		}
		for _, a := range lint.All() {
			rep.Analyzers = append(rep.Analyzers, a.Name)
		}
		for _, f := range findings {
			rep.Findings = append(rep.Findings, toJSON(f, ""))
		}
		for _, s := range suppressed {
			rep.Suppressed = append(rep.Suppressed, toJSON(s.Finding, s.Reason))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "astlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		for _, s := range suppressed {
			fmt.Printf("%s: [%s] suppressed (//lint:ignore: %s)\n", s.Finding.Pos, s.Finding.Analyzer, s.Reason)
		}
	}
	fmt.Fprintf(os.Stderr, "astlint: %d finding(s), %d suppression(s)\n", len(findings), len(suppressed))
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// toJSON converts a finding for the JSON report.
func toJSON(f lint.Finding, reason string) jsonFinding {
	return jsonFinding{
		File:     f.Pos.Filename,
		Line:     f.Pos.Line,
		Column:   f.Pos.Column,
		Analyzer: f.Analyzer,
		Message:  f.Message,
		Reason:   reason,
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// restrict filters packages to the given ./-style path prefixes; "./..." and
// an empty argument list select everything.
func restrict(pkgs []*lint.Package, args []string) []*lint.Package {
	var prefixes []string
	for _, a := range args {
		a = strings.TrimPrefix(a, "./")
		a = strings.TrimSuffix(a, "...")
		a = strings.Trim(a, "/")
		if a != "" {
			prefixes = append(prefixes, a)
		}
	}
	if len(prefixes) == 0 {
		return pkgs
	}
	var out []*lint.Package
	for _, p := range pkgs {
		rel := strings.TrimPrefix(p.Path, "repro")
		rel = strings.TrimPrefix(rel, "/")
		for _, pre := range prefixes {
			if rel == pre || strings.HasPrefix(rel, pre+"/") {
				out = append(out, p)
				break
			}
		}
	}
	return out
}
