// Command astlint runs the repo's custom analyzer suite (internal/lint) over
// the module and exits non-zero on findings. It is a hard CI gate:
//
//	go run ./cmd/astlint ./...
//
// Arguments are package-path prefixes to restrict the run (./... or none =
// the whole module); -list prints the analyzers instead of running them.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "astlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "astlint:", err)
		os.Exit(2)
	}
	pkgs = restrict(pkgs, flag.Args())

	findings := lint.Run(pkgs, lint.All())
	for _, f := range findings {
		fmt.Println(f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "astlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// restrict filters packages to the given ./-style path prefixes; "./..." and
// an empty argument list select everything.
func restrict(pkgs []*lint.Package, args []string) []*lint.Package {
	var prefixes []string
	for _, a := range args {
		a = strings.TrimPrefix(a, "./")
		a = strings.TrimSuffix(a, "...")
		a = strings.Trim(a, "/")
		if a != "" {
			prefixes = append(prefixes, a)
		}
	}
	if len(prefixes) == 0 {
		return pkgs
	}
	var out []*lint.Package
	for _, p := range pkgs {
		rel := strings.TrimPrefix(p.Path, "repro")
		rel = strings.TrimPrefix(rel, "/")
		for _, pre := range prefixes {
			if rel == pre || strings.HasPrefix(rel, pre+"/") {
				out = append(out, p)
				break
			}
		}
	}
	return out
}
