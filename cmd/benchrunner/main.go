// Command benchrunner regenerates the paper's tables and figures: each
// experiment prints the rewrite it produced, verifies original ≡ rewritten on
// synthetic data, and reports latencies and speedups.
//
// Usage:
//
//	benchrunner [-exp all|E01,E05,A02] [-scale 50000] [-json BENCH_1.json] [-obs]
//
// With -json, instead of printing experiment tables it measures the headline
// benchmarks (original-vs-rewritten, serial-vs-parallel, cold-vs-cached
// rewrite) under the testing harness and writes a machine-readable report.
// With -obs, it runs the paper query suite through the astdb facade with
// observability enabled and prints the snapshot (spans, counters, histograms).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
	scale := flag.Int("scale", 50000, "fact-table rows at full scale")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonPath := flag.String("json", "", "write a machine-readable benchmark report to this path and exit")
	obsFlag := flag.Bool("obs", false, "run the paper query suite with observability on and print the snapshot")
	flag.Parse()

	if *obsFlag {
		if err := runObs(os.Stdout, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonPath != "" {
		if err := runJSON(*jsonPath, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		return
	}

	registry := bench.Registry()
	if *list {
		for _, e := range registry {
			fmt.Printf("%-4s %-50s [%s]\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	want := map[string]bool{}
	all := *expFlag == "all"
	for _, id := range strings.Split(*expFlag, ",") {
		want[strings.ToUpper(strings.TrimSpace(id))] = true
	}

	failed := 0
	for _, e := range registry {
		if !all && !want[e.ID] {
			continue
		}
		fmt.Printf("=== %s: %s (%s) ===\n", e.ID, e.Title, e.PaperRef)
		start := time.Now()
		if err := e.Run(os.Stdout, *scale); err != nil {
			fmt.Printf("FAILED: %v\n", err)
			failed++
		}
		fmt.Printf("(%s)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		fmt.Printf("%d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
