package main

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/astdb"
	"repro/internal/bench"
	"repro/internal/obs"
)

// runObs runs the paper's query suite through the astdb facade with an
// observer attached and dumps the observability snapshot: spans across the
// pipeline stages, per-pattern match counters, plan-cache statistics, and
// latency histograms. Each query runs twice so the second pass exercises the
// plan-cache hit path.
func runObs(w io.Writer, scale int) error {
	env := bench.NewEnvDefault(scale)
	astNames := make([]string, 0, len(bench.ASTDefs))
	for name := range bench.ASTDefs {
		astNames = append(astNames, name)
	}
	sort.Strings(astNames)
	for _, name := range astNames {
		if _, err := env.RegisterAST(name, bench.ASTDefs[name]); err != nil {
			return fmt.Errorf("register %s: %w", name, err)
		}
	}

	db := env.DB(astdb.WithObserver(obs.New()))
	qNames := make([]string, 0, len(bench.Queries))
	for name := range bench.Queries {
		qNames = append(qNames, name)
	}
	sort.Strings(qNames)

	ctx := context.Background()
	for pass := 1; pass <= 2; pass++ {
		for _, name := range qNames {
			ans, err := db.Query(ctx, bench.Queries[name])
			if err != nil {
				return fmt.Errorf("%s (pass %d): %w", name, pass, err)
			}
			if pass == 1 {
				target := "base tables"
				if ans.AST != "" {
					target = "summary table " + ans.AST
				}
				fmt.Fprintf(w, "%-8s -> %s (%d rows)\n", name, target, len(ans.Result.Rows))
			}
		}
	}

	fmt.Fprintln(w, "\n== observability snapshot ==")
	db.Snapshot().Render(w)
	return nil
}
