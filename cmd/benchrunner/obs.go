package main

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/astdb"
	"repro/internal/bench"
	"repro/internal/obs"
)

// runObs runs the paper's query suite through the astdb facade with an
// observer attached and dumps the observability snapshot: spans across the
// pipeline stages, per-pattern match counters, plan-cache statistics, and
// latency histograms. Each query runs twice so the second pass exercises the
// plan-cache hit path.
func runObs(w io.Writer, scale int) error {
	env := bench.NewEnvDefault(scale)
	astNames := make([]string, 0, len(bench.ASTDefs))
	for name := range bench.ASTDefs {
		astNames = append(astNames, name)
	}
	sort.Strings(astNames)
	for _, name := range astNames {
		if _, err := env.RegisterAST(name, bench.ASTDefs[name]); err != nil {
			return fmt.Errorf("register %s: %w", name, err)
		}
	}

	db := env.DB(astdb.WithObserver(obs.New()))
	qNames := make([]string, 0, len(bench.Queries))
	for name := range bench.Queries {
		qNames = append(qNames, name)
	}
	sort.Strings(qNames)

	ctx := context.Background()
	for pass := 1; pass <= 2; pass++ {
		for _, name := range qNames {
			ans, err := db.Query(ctx, bench.Queries[name])
			if err != nil {
				return fmt.Errorf("%s (pass %d): %w", name, pass, err)
			}
			if pass == 1 {
				target := "base tables"
				if ans.AST != "" {
					target = "summary table " + ans.AST
				}
				fmt.Fprintf(w, "%-8s -> %s (%d rows)\n", name, target, len(ans.Result.Rows))
			}
		}
	}

	// DML phase: a delete and an update through the facade, so the snapshot
	// includes the maintenance counters (maintain.dml.deltas, .retired,
	// .scoped) alongside the query-side ones.
	for _, sql := range []string{
		"update trans set qty = qty + 1 where tid <= 50",
		"delete from trans where qty = 5 and flid <= 20",
	} {
		var res *astdb.DMLResult
		var err error
		if sql[0] == 'u' {
			res, err = db.Update(ctx, sql)
		} else {
			res, err = db.Delete(ctx, sql)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", sql, err)
		}
		fmt.Fprintf(w, "dml      -> %d row(s) in %s, %d summary table(s) refreshed\n",
			res.Affected, res.Table, len(res.Stats))
	}

	fmt.Fprintln(w, "\n== observability snapshot ==")
	db.Snapshot().Render(w)
	return nil
}
