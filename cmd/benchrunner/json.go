package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
	"repro/internal/workload"
)

// benchReport is the machine-readable benchmark record (BENCH_<n>.json):
// per-benchmark ns/op plus the headline ratios the paper and the parallel
// engine claim. GOMAXPROCS is recorded because the serial-vs-parallel ratios
// are meaningless without it — on a single-core host they hover around 1.0
// (the parallel paths run but cannot overlap).
type benchReport struct {
	GOMAXPROCS int                `json:"gomaxprocs"`
	Scale      int                `json:"scale"`
	NsPerOp    map[string]float64 `json:"ns_per_op"`
	// Ratios are >1.0 when the second (optimized) leg is faster.
	Ratios map[string]float64 `json:"ratios"`
}

// measure runs fn under the testing benchmark harness and records ns/op.
func (r *benchReport) measure(name string, fn func(b *testing.B)) {
	res := testing.Benchmark(fn)
	r.NsPerOp[name] = float64(res.NsPerOp())
}

func (r *benchReport) ratio(name, slow, fast string) {
	s, f := r.NsPerOp[slow], r.NsPerOp[fast]
	if f > 0 {
		r.Ratios[name] = s / f
	}
}

// runEngine returns a benchmark body executing one graph at a worker count.
func runEngine(eng *exec.Engine, g *qgm.Graph, par int) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.RunCtx(context.Background(), g, exec.Limits{Parallelism: par}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// runJSON writes the benchmark report to path. It covers the three claims a
// reader of BENCH_<n>.json cares about: rewritten plans beat original plans
// (the paper's point), parallel execution beats serial on grouping-heavy
// plans (this engine's point, cores permitting), and cached rewrites beat
// cold matching (the plan cache's point).
func runJSON(path string, scale int) error {
	rep := &benchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
		NsPerOp:    map[string]float64{},
		Ratios:     map[string]float64{},
	}

	env := bench.NewEnv(scale, core.Options{})
	for name, sql := range bench.ASTDefs {
		if _, err := env.RegisterAST(name, sql); err != nil {
			return fmt.Errorf("register %s: %w", name, err)
		}
	}

	// Original-vs-rewritten on the headline paper pairings, serial and
	// parallel on the grouping-heavy ones.
	for _, pair := range []struct {
		bench, q, a string
	}{
		{"E01/q1", "q1", "ast1"},
		{"E05/q7", "q7", "ast7"},
		{"E10/q12_1", "q12_1", "ast11"},
	} {
		orig, err := qgm.BuildSQL(bench.Queries[pair.q], env.Cat)
		if err != nil {
			return err
		}
		rw, err := qgm.BuildSQL(bench.Queries[pair.q], env.Cat)
		if err != nil {
			return err
		}
		if env.RW.Rewrite(rw, env.ASTs[pair.a]) == nil {
			return fmt.Errorf("%s did not rewrite against %s", pair.q, pair.a)
		}
		rep.measure(pair.bench+"/original/serial", runEngine(env.Engine, orig, 1))
		rep.measure(pair.bench+"/original/parallel", runEngine(env.Engine, orig, 0))
		rep.measure(pair.bench+"/rewritten/serial", runEngine(env.Engine, rw, 1))
		rep.ratio(pair.bench+"/rewrite_speedup", pair.bench+"/original/serial", pair.bench+"/rewritten/serial")
		rep.ratio(pair.bench+"/parallel_speedup", pair.bench+"/original/serial", pair.bench+"/original/parallel")
	}

	// E08 grouping-sets shape, serial vs parallel.
	e08, err := qgm.BuildSQL(`select flid, year(date) as year, faid, count(*) as cnt
		from trans group by grouping sets((flid, year(date)), (year(date), faid))`, env.Cat)
	if err != nil {
		return err
	}
	rep.measure("E08/serial", runEngine(env.Engine, e08, 1))
	rep.measure("E08/parallel", runEngine(env.Engine, e08, 0))
	rep.ratio("E08/parallel_speedup", "E08/serial", "E08/parallel")

	// E14 DS suite, original vs routed, serial vs parallel.
	dsEnv := bench.NewEnv(scale, core.Options{})
	var asts []*core.CompiledAST
	for _, d := range workload.DSASTs {
		ca, err := dsEnv.RegisterAST(d.Name, d.SQL)
		if err != nil {
			return err
		}
		asts = append(asts, ca)
	}
	var origs, rewrites []*qgm.Graph
	for _, q := range workload.DSQueries {
		og, err := qgm.BuildSQL(q.SQL, dsEnv.Cat)
		if err != nil {
			return err
		}
		origs = append(origs, og)
		rg, _ := qgm.BuildSQL(q.SQL, dsEnv.Cat)
		dsEnv.RW.RewriteBestCost(rg, asts, dsEnv.Store)
		rewrites = append(rewrites, rg)
	}
	runSuite := func(gs []*qgm.Graph, par int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, g := range gs {
					if _, err := dsEnv.Engine.RunCtx(context.Background(), g, exec.Limits{Parallelism: par}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	rep.measure("E14/original/serial", runSuite(origs, 1))
	rep.measure("E14/original/parallel", runSuite(origs, 0))
	rep.measure("E14/rewritten/serial", runSuite(rewrites, 1))
	rep.measure("E14/rewritten/parallel", runSuite(rewrites, 0))
	rep.ratio("E14/rewrite_speedup", "E14/original/serial", "E14/rewritten/serial")
	rep.ratio("E14/parallel_speedup", "E14/original/serial", "E14/original/parallel")

	// E13 cold match vs cached rewrite for a repeated query.
	rep.measure("E13/match/q1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := qgm.BuildSQL(bench.Queries["q1"], env.Cat)
			if err != nil {
				b.Fatal(err)
			}
			if env.RW.Rewrite(g, env.ASTs["ast1"]) == nil {
				b.Fatal("no rewrite")
			}
		}
	})
	rep.measure("E13/cached/q1", func(b *testing.B) {
		cache := core.NewPlanCache(64)
		candidates := []*core.CompiledAST{env.ASTs["ast1"]}
		ctx := context.Background()
		if cr, err := env.RW.RewriteSQLCached(ctx, cache, bench.Queries["q1"], candidates, env.Store); err != nil || cr.AST == "" {
			b.Fatalf("warmup did not rewrite: %+v err=%v", cr, err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cr, err := env.RW.RewriteSQLCached(ctx, cache, bench.Queries["q1"], candidates, env.Store)
			if err != nil {
				b.Fatal(err)
			}
			if !cr.Hit {
				b.Fatal("cache miss on repeated query")
			}
		}
	})
	rep.ratio("E13/cache_speedup", "E13/match/q1", "E13/cached/q1")

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
