package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/astdb"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/qgm"
	"repro/internal/workload"
)

// benchReport is the machine-readable benchmark record (BENCH_<n>.json):
// per-benchmark ns/op plus the headline ratios the paper and the parallel
// engine claim. GOMAXPROCS is recorded because the serial-vs-parallel ratios
// are meaningless without it — on a single-core host they hover around 1.0
// (the parallel paths run but cannot overlap).
type benchReport struct {
	GOMAXPROCS int                `json:"gomaxprocs"`
	Scale      int                `json:"scale"`
	NsPerOp    map[string]float64 `json:"ns_per_op"`
	// Ratios are >1.0 when the second (optimized) leg is faster.
	Ratios map[string]float64 `json:"ratios"`
}

// measure runs fn under the testing benchmark harness and records ns/op.
func (r *benchReport) measure(name string, fn func(b *testing.B)) {
	res := testing.Benchmark(fn)
	r.NsPerOp[name] = float64(res.NsPerOp())
}

func (r *benchReport) ratio(name, slow, fast string) {
	s, f := r.NsPerOp[slow], r.NsPerOp[fast]
	if f > 0 {
		r.Ratios[name] = s / f
	}
}

// runEngine returns a benchmark body executing one graph through a facade
// pinned to a worker count.
func runEngine(db *astdb.Engine, g *qgm.Graph) func(b *testing.B) {
	return func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			if _, err := db.Execute(ctx, g); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// runJSON writes the benchmark report to path. It covers the three claims a
// reader of BENCH_<n>.json cares about: rewritten plans beat original plans
// (the paper's point), parallel execution beats serial on grouping-heavy
// plans (this engine's point, cores permitting), and cached rewrites beat
// cold matching (the plan cache's point). All pipeline work goes through the
// astdb facade.
func runJSON(path string, scale int) error {
	rep := &benchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
		NsPerOp:    map[string]float64{},
		Ratios:     map[string]float64{},
	}
	ctx := context.Background()

	env := bench.NewEnvDefault(scale)
	for name, sql := range bench.ASTDefs {
		if _, err := env.RegisterAST(name, sql); err != nil {
			return fmt.Errorf("register %s: %w", name, err)
		}
	}
	// Three execution facades over one environment: serial and all-cores on
	// the row engine (pinned VecOff for comparability with the BENCH_1/2
	// records), plus the vectorized executor.
	serial := env.DB(astdb.WithLimits(astdb.Config{Parallelism: 1, Vectorize: astdb.VecOff}))
	parallel := env.DB(astdb.WithLimits(astdb.Config{Parallelism: 0, Vectorize: astdb.VecOff}))
	vectorized := env.DB(astdb.WithLimits(astdb.Config{Parallelism: 1}))

	// Original-vs-rewritten on the headline paper pairings, serial and
	// parallel on the grouping-heavy ones.
	for _, pair := range []struct {
		bench, q, a string
	}{
		{"E01/q1", "q1", "ast1"},
		{"E05/q7", "q7", "ast7"},
		{"E10/q12_1", "q12_1", "ast11"},
	} {
		orig, err := qgm.BuildSQL(bench.Queries[pair.q], env.Cat)
		if err != nil {
			return err
		}
		cr, err := serial.Rewrite(ctx, bench.Queries[pair.q], pair.a)
		if err != nil {
			return err
		}
		if cr.AST == "" {
			return fmt.Errorf("%s did not rewrite against %s", pair.q, pair.a)
		}
		rep.measure(pair.bench+"/original/serial", runEngine(serial, orig))
		rep.measure(pair.bench+"/original/parallel", runEngine(parallel, orig))
		rep.measure(pair.bench+"/rewritten/serial", runEngine(serial, cr.Plan))
		rep.ratio(pair.bench+"/rewrite_speedup", pair.bench+"/original/serial", pair.bench+"/rewritten/serial")
		rep.ratio(pair.bench+"/parallel_speedup", pair.bench+"/original/serial", pair.bench+"/original/parallel")
	}

	// E08 grouping-sets shape, serial vs parallel.
	e08, err := qgm.BuildSQL(`select flid, year(date) as year, faid, count(*) as cnt
		from trans group by grouping sets((flid, year(date)), (year(date), faid))`, env.Cat)
	if err != nil {
		return err
	}
	rep.measure("E08/serial", runEngine(serial, e08))
	rep.measure("E08/parallel", runEngine(parallel, e08))
	rep.measure("E08/vectorized", runEngine(vectorized, e08))
	rep.ratio("E08/parallel_speedup", "E08/serial", "E08/parallel")
	rep.ratio("E08/vector_speedup", "E08/serial", "E08/vectorized")

	// E14 DS suite, original vs routed, serial vs parallel.
	dsEnv := bench.NewEnvDefault(scale)
	for _, d := range workload.DSASTs {
		if _, err := dsEnv.RegisterAST(d.Name, d.SQL); err != nil {
			return err
		}
	}
	dsSerial := dsEnv.DB(astdb.WithLimits(astdb.Config{Parallelism: 1, Vectorize: astdb.VecOff}))
	dsParallel := dsEnv.DB(astdb.WithLimits(astdb.Config{Parallelism: 0, Vectorize: astdb.VecOff}))
	dsVectorized := dsEnv.DB(astdb.WithLimits(astdb.Config{Parallelism: 1}))
	var origs, rewrites []*qgm.Graph
	for _, q := range workload.DSQueries {
		og, err := qgm.BuildSQL(q.SQL, dsEnv.Cat)
		if err != nil {
			return err
		}
		origs = append(origs, og)
		cr, err := dsSerial.Rewrite(ctx, q.SQL)
		if err != nil {
			return err
		}
		rewrites = append(rewrites, cr.Plan)
	}
	runSuite := func(db *astdb.Engine, gs []*qgm.Graph) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, g := range gs {
					if _, err := db.Execute(ctx, g); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	rep.measure("E14/original/serial", runSuite(dsSerial, origs))
	rep.measure("E14/original/parallel", runSuite(dsParallel, origs))
	rep.measure("E14/original/vectorized", runSuite(dsVectorized, origs))
	rep.measure("E14/rewritten/serial", runSuite(dsSerial, rewrites))
	rep.measure("E14/rewritten/parallel", runSuite(dsParallel, rewrites))
	rep.measure("E14/rewritten/vectorized", runSuite(dsVectorized, rewrites))
	rep.ratio("E14/rewrite_speedup", "E14/original/serial", "E14/rewritten/serial")
	rep.ratio("E14/parallel_speedup", "E14/original/serial", "E14/original/parallel")
	rep.ratio("E14/vector_speedup", "E14/original/serial", "E14/original/vectorized")

	// E14 through the tree-walking interpreter: the serial rewritten suite
	// with Interpret=true isolates what the compiled expression kernels buy.
	dsInterp := dsEnv.DB(astdb.WithLimits(astdb.Config{Parallelism: 1, Interpret: true}))
	rep.measure("E14/rewritten/serial/interpreted", runSuite(dsInterp, rewrites))
	rep.ratio("E14/compile_speedup", "E14/rewritten/serial/interpreted", "E14/rewritten/serial")

	// E15: rewrite-candidate selection latency vs catalog size, with and
	// without the signature index. The wide catalog makes most candidates
	// disjoint from the probe query, so the index refuses them before the
	// matcher runs.
	for _, nASTs := range []int{1, 16, 64, 256} {
		wenv := bench.NewWideEnv(bench.WideTables, 64)
		asts, err := bench.RegisterWideASTs(wenv, nASTs, bench.WideTables)
		if err != nil {
			return err
		}
		for _, mode := range []struct {
			name string
			opts core.Options
		}{
			{"pruned", core.Options{}},
			{"unpruned", core.Options{NoPrune: true}},
		} {
			rw := core.NewRewriter(wenv.Cat, mode.opts)
			rep.measure(fmt.Sprintf("E15/asts=%d/%s", nASTs, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					g, err := qgm.BuildSQL(bench.WideQuery, wenv.Cat)
					if err != nil {
						b.Fatal(err)
					}
					if rw.RewriteBestCost(g, asts, wenv.Store) == nil {
						b.Fatal("wide query did not rewrite")
					}
				}
			})
		}
		rep.ratio(fmt.Sprintf("E15/prune_speedup_%d", nASTs),
			fmt.Sprintf("E15/asts=%d/unpruned", nASTs),
			fmt.Sprintf("E15/asts=%d/pruned", nASTs))
	}

	// E13 cold match vs cached rewrite for a repeated query. The cold leg runs
	// through a cache-less facade so every iteration pays full matching; the
	// cached leg must hit on every iteration.
	cold := env.DB(astdb.WithPlanCache(-1))
	rep.measure("E13/match/q1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cr, err := cold.Rewrite(ctx, bench.Queries["q1"], "ast1")
			if err != nil {
				b.Fatal(err)
			}
			if cr.AST == "" {
				b.Fatal("no rewrite")
			}
		}
	})
	cached := env.DB(astdb.WithPlanCache(64))
	rep.measure("E13/cached/q1", func(b *testing.B) {
		if cr, err := cached.Rewrite(ctx, bench.Queries["q1"]); err != nil || cr.AST == "" {
			b.Fatalf("warmup did not rewrite: %+v err=%v", cr, err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cr, err := cached.Rewrite(ctx, bench.Queries["q1"])
			if err != nil {
				b.Fatal(err)
			}
			if !cr.Hit {
				b.Fatal("cache miss on repeated query")
			}
		}
	})
	rep.ratio("E13/cache_speedup", "E13/match/q1", "E13/cached/q1")

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
