// Command astload is the concurrency load benchmark behind BENCH_4.json: it
// sweeps 1/8/64/512 concurrent sessions over the paper's query suite (q1–q12
// plus the TPC-D-style DS mix) through the wire protocol and the database/sql
// driver, and records QPS and p50/p99 client latency per leg.
//
// Self-hosted mode (the default) starts three in-process servers, one per
// statement-mix configuration, so one run captures the paper's comparison at
// every concurrency level:
//
//   - original:  no summary tables, plan cache off — every query runs
//     against base tables;
//   - rewritten: summary tables materialized, plan cache off — every query
//     pays matching + rewriting, then runs against the AST;
//   - cached:    summary tables + plan cache — steady state, matching
//     amortized away.
//
//	astload -scale 20000 -json BENCH_4.json
//
// Against an external server (for smoke tests and manual runs) it measures
// whatever that server is configured to do:
//
//	astload -addr 127.0.0.1:5433 -sessions 8 -queries 200
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/astdb"
	"repro/internal/bench"
	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "astload: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "", "measure an already-running server at host:port instead of self-hosting the three mixes")
	scale := flag.Int("scale", 20000, "fact-table rows for self-hosted servers")
	sessionsFlag := flag.String("sessions", "1,8,64,512", "comma-separated concurrency levels to sweep")
	queries := flag.Int("queries", 512, "total queries per leg")
	warmup := flag.Int("warmup", 16, "untimed warmup queries per leg")
	jsonPath := flag.String("json", "", "write the machine-readable report (BENCH_4.json format) to this path")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile of the run to this path")
	blockProfile := flag.String("blockprofile", "", "write a blocking profile of the run to this path")
	gomaxprocs := flag.Int("gomaxprocs", 0, "override GOMAXPROCS for the run (0 = leave as-is)")
	flag.Parse()

	if *gomaxprocs > 0 {
		runtime.GOMAXPROCS(*gomaxprocs)
	}
	// Sample every mutex-contention and blocking event: the benchmark exists
	// to find contention, so a full-rate profile beats a cheap one. The legs
	// themselves measure throughput, so profile-enabled runs should not be
	// compared against profile-off runs.
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(1)
	}

	var sessions []int
	for _, s := range strings.Split(*sessionsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -sessions entry %q", s)
		}
		sessions = append(sessions, n)
	}

	mix := querySuite()
	report := &bench.LoadReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Scale: *scale}

	if *addr != "" {
		if err := sweep(report, "external", *addr, sessions, mix, *queries, *warmup); err != nil {
			return err
		}
	} else {
		for _, cfg := range []struct {
			mix  string
			asts bool
			// plan cache capacity: <0 disabled, 0 default
			cache int
		}{
			{"original", false, -1},
			{"rewritten", true, -1},
			{"cached", true, 0},
		} {
			addr, shutdown, err := selfHost(*scale, cfg.asts, cfg.cache)
			if err != nil {
				return fmt.Errorf("mix %s: %w", cfg.mix, err)
			}
			err = sweep(report, cfg.mix, addr, sessions, mix, *queries, *warmup)
			shutdown()
			if err != nil {
				return err
			}
		}
	}

	if err := writeProfile("mutex", *mutexProfile); err != nil {
		return err
	}
	if err := writeProfile("block", *blockProfile); err != nil {
		return err
	}

	renderTable(report)
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}

// writeProfile dumps one named runtime profile (pprof format) to path, or does
// nothing when path is empty.
func writeProfile(name, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		return fmt.Errorf("writing %s profile: %w", name, err)
	}
	fmt.Printf("wrote %s profile to %s\n", name, path)
	return nil
}

// querySuite is the measured statement mix: the paper's q1–q12 workload plus
// the DS decision-support suite, in deterministic order.
func querySuite() []string {
	names := make([]string, 0, len(bench.Queries))
	for n := range bench.Queries {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []string
	for _, n := range names {
		out = append(out, bench.Queries[n])
	}
	for _, q := range workload.DSQueries {
		out = append(out, q.SQL)
	}
	return out
}

// selfHost starts one wire server over a freshly loaded engine.
func selfHost(scale int, withASTs bool, cacheCap int) (addr string, shutdown func(), err error) {
	cat := catalog.New()
	db, err := astdb.Open(cat,
		astdb.WithPlanCache(cacheCap),
		astdb.WithObserver(obs.New()))
	if err != nil {
		return "", nil, err
	}
	workload.Schema(cat)
	workload.Load(cat, db.Store(), workload.StarConfig{NumTrans: scale, Seed: 20000521})
	if withASTs {
		ctx := context.Background()
		for _, name := range []string{"ast1", "ast6", "ast7"} {
			if _, _, err := db.CreateSummaryTable(ctx, name, bench.ASTDefs[name]); err != nil {
				return "", nil, err
			}
		}
		for _, ast := range workload.DSASTs {
			if _, _, err := db.CreateSummaryTable(ctx, ast.Name, ast.SQL); err != nil {
				return "", nil, err
			}
		}
	}
	srv := server.New(db, server.Config{})
	bound, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	return bound.String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}, nil
}

// sweep measures every concurrency level against one server.
func sweep(report *bench.LoadReport, mixName, addr string, sessions []int, mix []string, queries, warmup int) error {
	ctx := context.Background()
	for _, n := range sessions {
		res, err := bench.RunLoad(ctx, bench.LoadSpec{
			Addr:         addr,
			Sessions:     n,
			TotalQueries: queries,
			Queries:      mix,
			Warmup:       warmup,
		})
		if err != nil {
			return fmt.Errorf("leg %s/%d: %w", mixName, n, err)
		}
		if res.Errors > 0 {
			return fmt.Errorf("leg %s/%d: %d/%d queries failed, first: %v",
				mixName, n, res.Errors, res.Errors+res.Queries, res.FirstErr)
		}
		report.Legs = append(report.Legs, res.Leg(mixName))
		fmt.Fprintf(os.Stderr, "%-9s %4d sessions: %8.1f qps  p50 %8.2fms  p99 %8.2fms\n",
			mixName, n, res.QPS,
			float64(res.P50.Microseconds())/1000, float64(res.P99.Microseconds())/1000)
	}
	return nil
}

// renderTable prints the report as a markdown table (the EXPERIMENTS.md row
// source).
func renderTable(r *bench.LoadReport) {
	fmt.Println("\n| mix | sessions | QPS | p50 | p99 |")
	fmt.Println("|---|---|---|---|---|")
	for _, leg := range r.Legs {
		fmt.Printf("| %s | %d | %.1f | %.2fms | %.2fms |\n",
			leg.Mix, leg.Sessions, leg.QPS, leg.P50Us/1000, leg.P99Us/1000)
	}
}
