-- Demo script for the astrw shell (run with: go run ./cmd/astrw -f examples/scripts/demo.sql)
-- Builds a tiny schema by hand, declares a summary table, and shows rewrites.

create table sales (
    sid int not null,
    region varchar(16) not null,
    product varchar(16) not null,
    sold date not null,
    amount double not null,
    primary key (sid)
);

insert into sales values
    (1, 'west', 'tv',    '1990-01-05', 500.0),
    (2, 'west', 'radio', '1990-02-11', 120.0),
    (3, 'east', 'tv',    '1990-03-20', 480.0),
    (4, 'east', 'tv',    '1991-07-04', 510.0),
    (5, 'west', 'radio', '1991-08-15', 130.0),
    (6, 'east', 'radio', '1991-09-01', 110.0),
    (7, 'west', 'tv',    '1991-10-30', 495.0);

create summary table sales_by_region_year as
    select region, year(sold) as year, count(*) as cnt, sum(amount) as revenue
    from sales
    group by region, year(sold);

-- Served exactly by the summary table.
select region, year(sold) as year, sum(amount) as revenue
from sales
group by region, year(sold);

-- Coarser grouping: re-aggregated from the summary table.
select region, sum(amount) as revenue, count(*) as cnt
from sales
group by region;

-- EXPLAIN shows the routing decision (and the reasons when nothing matches).
explain select product, sum(amount) as revenue from sales group by product;
