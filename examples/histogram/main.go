// Histogram example: multi-block matching (paper §4.2.2, Figure 10). The
// query and the AST are both two-level aggregations ("histograms of
// histograms"); rewriting requires matching nested GROUP BY blocks and
// copying the compensation upward — the pattern single-block matchers cannot
// handle.
//
//	go run ./examples/histogram
package main

import (
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	cat := catalog.New()
	workload.Schema(cat)
	store := storage.NewStore()
	workload.Load(cat, store, workload.StarConfig{NumTrans: 30000, Seed: 5})
	engine := exec.NewEngine(store)
	rw := core.NewRewriter(cat, core.Options{})

	// AST8: for every (year, monthly-transaction-count) pair, in how many
	// months was that count achieved.
	ast, err := rw.CompileAST(catalog.ASTDef{Name: "month_histogram", SQL: `
		select year, tcnt, count(*) as mcnt
		from (select year(date) as year, month(date) as month, count(*) as tcnt
		      from trans
		      group by year(date), month(date)) m
		group by year, tcnt`})
	if err != nil {
		log.Fatal(err)
	}
	astRes, err := engine.Run(ast.Graph)
	if err != nil {
		log.Fatal(err)
	}
	store.Put(ast.Table, astRes.Rows)
	fmt.Printf("materialized month_histogram: %d rows\n\n", len(astRes.Rows))

	// Q8: the same histogram without the year dimension — how many months
	// (across all years) saw each transaction count.
	const q8 = `
		select tcnt, count(*) as ycnt
		from (select year(date) as year, month(date) as month, count(*) as tcnt
		      from trans
		      group by year(date), month(date)) m
		group by tcnt`

	orig, err := qgm.BuildSQL(q8, cat)
	if err != nil {
		log.Fatal(err)
	}
	origRes, err := engine.Run(orig)
	if err != nil {
		log.Fatal(err)
	}

	g, _ := qgm.BuildSQL(q8, cat)
	if res := rw.Rewrite(g, ast); res == nil {
		log.Fatal("expected the nested-block match of Figure 10")
	}
	fmt.Println("rewritten (reads only the 2-level summary):")
	fmt.Println("  " + g.SQL())

	newRes, err := engine.Run(g)
	if err != nil {
		log.Fatal(err)
	}
	if diff := exec.EqualResults(origRes, newRes); diff != "" {
		log.Fatalf("MISMATCH: %s", diff)
	}

	exec.SortRows(newRes.Rows)
	fmt.Println("\ntcnt | months with that monthly count")
	for _, r := range newRes.Rows {
		fmt.Printf("%4s | %s\n", r[0], r[1])
	}
}
