// Retail dashboard: the paper's motivating scenario — an analyst fires a
// batch of decision-support queries (different dimensions, levels and
// filters) and a small pool of Automatic Summary Tables answers most of them.
// Each query is routed with RewriteBest; the example prints which AST served
// it, the rewritten SQL, and the speedup.
//
//	go run ./examples/retail
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
	"repro/internal/storage"
	"repro/internal/workload"
)

var astPool = []catalog.ASTDef{
	{Name: "sales_by_loc_year", SQL: `
		select flid, year(date) as year, count(*) as cnt, sum(qty * price) as revenue,
		       sum(qty * price * (1 - disc)) as net
		from trans
		group by flid, year(date)`},
	{Name: "sales_by_acct_month", SQL: `
		select faid, year(date) as year, month(date) as month,
		       count(*) as cnt, sum(qty) as items
		from trans
		group by faid, year(date), month(date)`},
	{Name: "sales_by_product", SQL: `
		select fpgid, year(date) as year, count(*) as cnt,
		       sum(qty * price) as revenue, max(price) as maxprice
		from trans
		group by fpgid, year(date)`},
}

var dashboard = []struct {
	title string
	sql   string
}{
	{"Yearly revenue by state (USA)", `
		select state, year(date) as year, sum(qty * price) as revenue
		from trans, loc
		where flid = lid and country = 'USA'
		group by state, year(date)`},
	{"Net revenue per country", `
		select country, sum(qty * price * (1 - disc)) as net
		from trans, loc
		where flid = lid
		group by country`},
	{"Active buyers per year (accounts with >20 purchases)", `
		select year, count(*) as buyers
		from (select faid, year(date) as year, count(*) as n
		      from trans group by faid, year(date)) a
		where n > 20
		group by year`},
	{"Items per account in H2", `
		select faid, sum(qty) as items
		from trans
		where month(date) >= 7
		group by faid`},
	{"Top product groups by revenue", `
		select pgname, sum(qty * price) as revenue
		from trans, pgroup
		where fpgid = pgid
		group by pgname
		having sum(qty * price) > 100000`},
	{"Average monthly activity (no AST applies: day level)", `
		select day(date) as dom, count(*) as cnt
		from trans
		group by day(date)`},
}

func main() {
	cat := catalog.New()
	workload.Schema(cat)
	store := storage.NewStore()
	workload.Load(cat, store, workload.StarConfig{NumTrans: 50000, Seed: 99})
	engine := exec.NewEngine(store)
	rw := core.NewRewriter(cat, core.Options{})

	var asts []*core.CompiledAST
	for _, def := range astPool {
		ca, err := rw.CompileAST(def)
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Run(ca.Graph)
		if err != nil {
			log.Fatal(err)
		}
		store.Put(ca.Table, res.Rows)
		asts = append(asts, ca)
		fmt.Printf("materialized %-22s %6d rows\n", def.Name, len(res.Rows))
	}
	fmt.Printf("fact table trans: %d rows\n\n", store.MustTable("trans").Cardinality())

	for _, q := range dashboard {
		fmt.Printf("== %s\n", q.title)

		orig, err := qgm.BuildSQL(q.sql, cat)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		origRes, err := engine.Run(orig)
		if err != nil {
			log.Fatal(err)
		}
		origDur := time.Since(start)

		g, err := qgm.BuildSQL(q.sql, cat)
		if err != nil {
			log.Fatal(err)
		}
		res := rw.RewriteBest(g, asts)
		if res == nil {
			fmt.Printf("   no AST matches — base tables, %v (%d rows)\n\n", origDur.Round(time.Microsecond), len(origRes.Rows))
			continue
		}
		start = time.Now()
		newRes, err := engine.Run(g)
		if err != nil {
			log.Fatal(err)
		}
		newDur := time.Since(start)
		if diff := exec.EqualResults(origRes, newRes); diff != "" {
			log.Fatalf("MISMATCH on %q: %s", q.title, diff)
		}
		fmt.Printf("   served by %s: %v → %v (%.1fx), %d rows\n",
			res.AST.Def.Name, origDur.Round(time.Microsecond), newDur.Round(time.Microsecond),
			float64(origDur)/float64(newDur), len(newRes.Rows))
		fmt.Printf("   %s\n\n", g.SQL())
	}
}
