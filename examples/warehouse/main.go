// Warehouse lifecycle: the three companion problems the paper's introduction
// delegates to its citations, working together around the matching algorithm —
// (a) the HRU greedy advisor picks which summary tables to build, (b) the
// cost-based router decides whether to use them per query, and (c) the
// incremental maintainer keeps them fresh as transactions stream in.
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/advisor"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/maintain"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	cat := catalog.New()
	workload.Schema(cat)
	store := storage.NewStore()
	workload.Load(cat, store, workload.StarConfig{NumTrans: 30000, Seed: 8})
	engine := exec.NewEngine(store)
	rw := core.NewRewriter(cat, core.Options{})

	// (a) Advise: measure the cuboid lattice, pick 3 summary tables.
	fmt.Println("== advising (HRU greedy over the cuboid lattice)")
	props, lattice, err := advisor.SelectASTs(advisor.Config{
		Fact: "trans",
		Dims: []advisor.Dimension{
			{Name: "flid", Expr: "flid"},
			{Name: "faid", Expr: "faid"},
			{Name: "fpgid", Expr: "fpgid"},
			{Name: "year", Expr: "year(date)"},
		},
		Aggs: []string{"count(*) as cnt", "sum(qty) as sum_qty", "sum(qty * price) as revenue"},
		K:    3,
	}, cat, store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   fact table: %d rows\n", lattice.Size[lattice.Top()])

	m := maintain.New(store)
	var asts []*core.CompiledAST
	var plans []*maintain.Plan
	for i, p := range props {
		ca, err := rw.CompileAST(p.Def)
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Run(ca.Graph)
		if err != nil {
			log.Fatal(err)
		}
		store.Put(ca.Table, res.Rows)
		asts = append(asts, ca)
		plan := m.Analyze(ca)
		plans = append(plans, plan)
		fmt.Printf("   pick %d: %-28s %6d rows  benefit=%-8d maintenance=%s\n",
			i+1, p.Def.Name, p.Rows, p.Benefit, plan.Strategy)
	}

	// (b) Route the morning dashboard with the cost-based decision.
	dashboard := []string{
		"select flid, year(date) as year, count(*) as cnt from trans group by flid, year(date)",
		"select fpgid, sum(qty * price) as revenue from trans group by fpgid having sum(qty * price) > 50000",
		"select year(date) as year, sum(qty) as items from trans group by year(date)",
		"select faid, count(*) as cnt from trans where year(date) = 1991 group by faid",
	}
	runDashboard := func(tag string) {
		fmt.Printf("\n== dashboard (%s)\n", tag)
		for _, sql := range dashboard {
			orig, err := qgm.BuildSQL(sql, cat)
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			origRes, err := engine.Run(orig)
			if err != nil {
				log.Fatal(err)
			}
			origDur := time.Since(start)

			g, _ := qgm.BuildSQL(sql, cat)
			res := rw.RewriteBestCost(g, asts, store)
			if res == nil {
				fmt.Printf("   base tables  %8s  %s\n", origDur.Round(time.Microsecond), short(sql))
				continue
			}
			start = time.Now()
			newRes, err := engine.Run(g)
			if err != nil {
				log.Fatal(err)
			}
			newDur := time.Since(start)
			if diff := exec.EqualResults(origRes, newRes); diff != "" {
				log.Fatalf("MISMATCH: %s", diff)
			}
			fmt.Printf("   %-12s %8s→%-8s (%.0fx)  %s\n", res.AST.Def.Name,
				origDur.Round(time.Microsecond), newDur.Round(time.Microsecond),
				float64(origDur)/float64(newDur), short(sql))
		}
	}
	runDashboard("before inserts")

	// (c) Stream transaction batches; maintain incrementally.
	fmt.Println("\n== streaming inserts with incremental maintenance")
	tid := int64(5_000_000)
	for batch := 1; batch <= 3; batch++ {
		rows := makeBatch(store, tid, 400)
		tid += int64(len(rows))
		start := time.Now()
		stats, err := m.ApplyInsert(plans, "trans", rows)
		if err != nil {
			log.Fatal(err)
		}
		total := time.Since(start)
		fmt.Printf("   batch %d: %d rows inserted, %d ASTs refreshed in %s", batch, len(rows), len(stats), total.Round(time.Microsecond))
		for _, st := range stats {
			fmt.Printf("  [%s %s Δ%d]", st.AST, st.Strategy, st.DeltaRows)
		}
		fmt.Println()
	}

	runDashboard("after inserts — summaries still fresh and verified")
}

func short(sql string) string {
	if len(sql) > 70 {
		return sql[:67] + "..."
	}
	return sql
}

func makeBatch(store *storage.Store, firstTid int64, n int) [][]sqltypes.Value {
	accts := store.MustTable("acct").Cardinality()
	locs := store.MustTable("loc").Cardinality()
	pgs := store.MustTable("pgroup").Cardinality()
	var rows [][]sqltypes.Value
	for i := 0; i < n; i++ {
		rows = append(rows, []sqltypes.Value{
			sqltypes.NewInt(firstTid + int64(i)),
			sqltypes.NewInt(int64(1 + (i*11)%accts)),
			sqltypes.NewInt(int64(1 + (i*13)%pgs)),
			sqltypes.NewInt(int64(1 + (i*17)%locs)),
			sqltypes.NewDate(1992, 1+i%12, 1+i%28),
			sqltypes.NewInt(int64(1 + i%5)),
			sqltypes.NewFloat(float64(5+i%495) * 1.5),
			sqltypes.NewFloat(float64(i%25) / 100),
		})
	}
	return rows
}
