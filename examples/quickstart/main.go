// Quickstart: define a schema, register an Automatic Summary Table, and
// watch a query get rewritten to read it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	// 1. Catalog + synthetic data: the paper's credit-card star schema
	//    (Figure 1) with RI constraints from Trans to its dimensions.
	cat := catalog.New()
	workload.Schema(cat)
	store := storage.NewStore()
	workload.Load(cat, store, workload.StarConfig{NumTrans: 20000, Seed: 1})
	engine := exec.NewEngine(store)

	// 2. Register an AST: per-account, per-location, per-year transaction
	//    counts (AST1 from the paper's Figure 2).
	rw := core.NewRewriter(cat, core.Options{})
	ast, err := rw.CompileAST(catalog.ASTDef{
		Name: "ast1",
		SQL: `select faid, flid, year(date) as year, count(*) as cnt
		      from trans group by faid, flid, year(date)`,
	})
	if err != nil {
		log.Fatal(err)
	}
	astRows, err := engine.Run(ast.Graph)
	if err != nil {
		log.Fatal(err)
	}
	store.Put(ast.Table, astRows.Rows)
	fmt.Printf("materialized ast1: %d rows (trans has %d — %.0fx smaller)\n",
		len(astRows.Rows), store.MustTable("trans").Cardinality(),
		float64(store.MustTable("trans").Cardinality())/float64(len(astRows.Rows)))

	// 3. The user query (Q1): counts per account, state and year in the USA.
	const q1 = `
		select faid, state, year(date) as year, count(*) as cnt
		from trans, loc
		where flid = lid and country = 'USA'
		group by faid, state, year(date)
		having count(*) > 3`

	g, err := qgm.BuildSQL(q1, cat)
	if err != nil {
		log.Fatal(err)
	}
	if res := rw.Rewrite(g, ast); res == nil {
		log.Fatal("expected a rewrite")
	}
	fmt.Println("\nrewritten query:")
	fmt.Println("  " + g.SQL())

	// 4. Verify: both forms produce the same answer.
	orig, _ := qgm.BuildSQL(q1, cat)
	origRes, err := engine.Run(orig)
	if err != nil {
		log.Fatal(err)
	}
	newRes, err := engine.Run(g)
	if err != nil {
		log.Fatal(err)
	}
	if diff := exec.EqualResults(origRes, newRes); diff != "" {
		log.Fatalf("MISMATCH: %s", diff)
	}
	fmt.Printf("\nverified: original and rewritten agree on %d rows\n", len(origRes.Rows))
}
