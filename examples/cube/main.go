// Cube example: one multidimensional AST (GROUPING SETS over location,
// account, year and month — paper §5) serves a whole family of drill-down
// queries. Simple GROUP BY queries slice a cuboid out of the cube with IS
// NULL predicates (§5.1); cube queries match cuboid-by-cuboid (§5.2); and
// queries needing a dimension the cube lacks correctly fail to match.
//
//	go run ./examples/cube
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	cat := catalog.New()
	workload.Schema(cat)
	store := storage.NewStore()
	workload.Load(cat, store, workload.StarConfig{NumTrans: 40000, Seed: 11})
	engine := exec.NewEngine(store)
	rw := core.NewRewriter(cat, core.Options{})

	cube, err := rw.CompileAST(catalog.ASTDef{Name: "sales_cube", SQL: `
		select flid, faid, year(date) as year, month(date) as month,
		       count(*) as cnt, sum(qty * price) as revenue
		from trans
		group by grouping sets((flid, faid, year(date)), (flid, year(date)),
		                       (flid, year(date), month(date)),
		                       (year(date), month(date)), (year(date)), ())`})
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Run(cube.Graph)
	if err != nil {
		log.Fatal(err)
	}
	store.Put(cube.Table, res.Rows)
	fmt.Printf("materialized sales_cube: %d rows over %d grouping sets (trans: %d rows)\n\n",
		len(res.Rows), 6, store.MustTable("trans").Cardinality())

	drill := []struct {
		title string
		sql   string
		want  bool
	}{
		{"Revenue per location and year", `
			select flid, year(date) as year, sum(qty * price) as revenue
			from trans group by flid, year(date)`, true},
		{"Monthly activity per location in 1991", `
			select flid, month(date) as month, count(*) as cnt
			from trans where year(date) = 1991
			group by flid, month(date)`, true},
		{"Yearly totals (coarsest cuboid)", `
			select year(date) as year, count(*) as cnt
			from trans group by year(date)`, true},
		{"Grand total", `
			select count(*) as cnt, sum(qty * price) as revenue
			from trans`, true},
		// A ROLLUP canonicalizes to grouping sets whose union (flid, year) is
		// a cube cuboid: the §5.2 fallback slices that cuboid and regroups
		// with the rollup's own grouping sets.
		{"Rollup over location and year", `
			select flid, year(date) as year, count(*) as cnt
			from trans group by rollup(flid, year(date))`, true},
		{"Per-product revenue (dimension not in cube)", `
			select fpgid, sum(qty * price) as revenue
			from trans group by fpgid`, false},
	}

	for _, q := range drill {
		fmt.Printf("== %s\n", q.title)
		orig, err := qgm.BuildSQL(q.sql, cat)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		origRes, err := engine.Run(orig)
		if err != nil {
			log.Fatal(err)
		}
		origDur := time.Since(start)

		g, _ := qgm.BuildSQL(q.sql, cat)
		rewrite := rw.Rewrite(g, cube)
		if rewrite == nil {
			fmt.Printf("   no cuboid covers this query (expected match: %v)\n\n", q.want)
			if q.want {
				log.Fatal("unexpected miss")
			}
			continue
		}
		start = time.Now()
		newRes, err := engine.Run(g)
		if err != nil {
			log.Fatal(err)
		}
		newDur := time.Since(start)
		if diff := exec.EqualResults(origRes, newRes); diff != "" {
			log.Fatalf("MISMATCH on %q: %s", q.title, diff)
		}
		fmt.Printf("   sliced from cube: %v → %v (%.1fx), %d rows\n",
			origDur.Round(time.Microsecond), newDur.Round(time.Microsecond),
			float64(origDur)/float64(newDur), len(newRes.Rows))
		fmt.Printf("   %s\n\n", g.SQL())
	}
}
