// Package repro_test benchmarks every experiment of the paper reproduction:
// one benchmark per figure/table (original vs rewritten execution), plus the
// scaling, matching-overhead and ablation benches. See DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for recorded results.
package repro_test

import (
	"context"
	"strconv"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/workload"
)

const benchScale = 20000

// envMu guards envCache. Lock discipline: sharedEnv takes envMu only while
// looking up or building an Env, never during measurement, and must be called
// from the benchmark's own goroutine BEFORE any b.RunParallel body — building
// an env inside RunParallel would serialize workers on envMu and attribute
// construction cost to the measured section. The returned Env is safe to
// share across sub-benchmarks because measurement only reads it (Engine runs
// take per-run state; the store is snapshot-isolated); benchmarks that mutate
// an Env (register extra ASTs, insert rows) must build their own with
// bench.NewEnv instead of going through this cache.
var (
	envMu    sync.Mutex
	envCache = map[int]*bench.Env{}
)

// sharedEnv returns a cached environment with every paper AST registered.
func sharedEnv(b *testing.B, scale int) *bench.Env {
	b.Helper()
	envMu.Lock()
	defer envMu.Unlock()
	if e, ok := envCache[scale]; ok {
		return e
	}
	e := bench.NewEnv(scale, core.Options{})
	for name, sql := range bench.ASTDefs {
		if _, err := e.RegisterAST(name, sql); err != nil {
			b.Fatalf("register %s: %v", name, err)
		}
	}
	envCache[scale] = e
	return e
}

// benchPair runs original-vs-rewritten sub-benchmarks for one paper pairing.
func benchPair(b *testing.B, queryKey, astKey string) {
	env := sharedEnv(b, benchScale)
	sql := bench.Queries[queryKey]
	ast := env.ASTs[astKey]

	orig, err := qgm.BuildSQL(sql, env.Cat)
	if err != nil {
		b.Fatal(err)
	}
	rewritten, err := qgm.BuildSQL(sql, env.Cat)
	if err != nil {
		b.Fatal(err)
	}
	if res := env.RW.Rewrite(rewritten, ast); res == nil {
		b.Fatalf("%s did not rewrite against %s", queryKey, astKey)
	}

	b.Run("original", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := env.Engine.Run(orig); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rewritten", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := env.Engine.Run(rewritten); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE01_Fig2_Q1(b *testing.B)    { benchPair(b, "q1", "ast1") }
func BenchmarkE02_Fig5_Q2(b *testing.B)    { benchPair(b, "q2", "ast2") }
func BenchmarkE03_Fig6_Q4(b *testing.B)    { benchPair(b, "q4", "ast6") }
func BenchmarkE04_Fig7_Q6(b *testing.B)    { benchPair(b, "q6", "ast6") }
func BenchmarkE05_Fig8_Q7(b *testing.B)    { benchPair(b, "q7", "ast7") }
func BenchmarkE06_Fig10_Q8(b *testing.B)   { benchPair(b, "q8", "ast8") }
func BenchmarkE07_Fig11_Q10(b *testing.B)  { benchPair(b, "q10", "ast10") }
func BenchmarkE09_Fig13_Q11(b *testing.B)  { benchPair(b, "q11_1", "ast11") }
func BenchmarkE09_Fig13_Q112(b *testing.B) { benchPair(b, "q11_2", "ast11") }
func BenchmarkE10_Fig14_Q121(b *testing.B) { benchPair(b, "q12_1", "ast11") }
func BenchmarkE10_Fig14_Q122(b *testing.B) { benchPair(b, "q12_2", "ast11") }

// BenchmarkE08_Fig12_CubeSemantics measures grouping-sets evaluation on the
// paper's Figure 12 sample shape, scaled up.
func BenchmarkE08_Fig12_CubeSemantics(b *testing.B) {
	cat := catalog.New()
	cat.MustAddTable(&catalog.Table{
		Name: "trans",
		Columns: []catalog.Column{
			{Name: "flid", Type: sqltypes.KindInt},
			{Name: "year", Type: sqltypes.KindInt},
			{Name: "faid", Type: sqltypes.KindInt},
		},
	})
	store := storage.NewStore()
	meta, _ := cat.Table("trans")
	td := store.Create(meta)
	for i := 0; i < 50000; i++ {
		td.MustInsert(
			sqltypes.NewInt(int64(i%40)),
			sqltypes.NewInt(int64(1990+i%5)),
			sqltypes.NewInt(int64(i%700)),
		)
	}
	g, err := qgm.BuildSQL(`select flid, year, faid, count(*) as cnt
		from trans group by grouping sets((flid, year), (year, faid))`, cat)
	if err != nil {
		b.Fatal(err)
	}
	engine := exec.NewEngine(store)
	// serial pins Parallelism=1 (the reference path); parallel uses the
	// GOMAXPROCS default, so the ratio reflects the machine's cores. Both pin
	// VecOff for comparability with earlier recorded runs; vectorized is the
	// columnar grouping-sets path (one pass shares chunk vectors across sets).
	for _, mode := range []struct {
		name string
		par  int
		vec  exec.VecMode
	}{{"serial", 1, exec.VecOff}, {"parallel", 0, exec.VecOff}, {"vectorized", 1, exec.VecAuto}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := exec.Config{Parallelism: mode.par, Vectorize: mode.vec}
				if _, err := engine.RunCtx(context.Background(), g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE11_Table1_Having measures rejection speed for the unsound AST.
func BenchmarkE11_Table1_Having(b *testing.B) {
	env := sharedEnv(b, benchScale)
	ast := env.ASTs["astbad"]
	sql := bench.Queries["qbad"]
	for i := 0; i < b.N; i++ {
		g, err := qgm.BuildSQL(sql, env.Cat)
		if err != nil {
			b.Fatal(err)
		}
		if res := env.RW.Rewrite(g, ast); res != nil {
			b.Fatal("unsound rewrite accepted")
		}
	}
}

// BenchmarkE12_Speedup sweeps fact-table scales.
func BenchmarkE12_Speedup(b *testing.B) {
	for _, scale := range []int{2000, 10000, 50000} {
		env := sharedEnv(b, scale)
		for _, pair := range []struct{ q, a string }{
			{"q1", "ast1"}, {"q7", "ast7"}, {"q11_1", "ast11"},
		} {
			orig, err := qgm.BuildSQL(bench.Queries[pair.q], env.Cat)
			if err != nil {
				b.Fatal(err)
			}
			rw, err := qgm.BuildSQL(bench.Queries[pair.q], env.Cat)
			if err != nil {
				b.Fatal(err)
			}
			if env.RW.Rewrite(rw, env.ASTs[pair.a]) == nil {
				b.Fatalf("%s/%s: no rewrite", pair.q, pair.a)
			}
			b.Run(pair.q+"/orig/n="+strconv.Itoa(scale), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := env.Engine.Run(orig); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(pair.q+"/ast/n="+strconv.Itoa(scale), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := env.Engine.Run(rw); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE13_MatchOverhead measures matching + splicing latency per query
// (graph build time measured separately for subtraction).
func BenchmarkE13_MatchOverhead(b *testing.B) {
	env := sharedEnv(b, 2000)
	b.Run("buildOnly/q1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := qgm.BuildSQL(bench.Queries["q1"], env.Cat); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, pair := range []struct{ q, a string }{
		{"q1", "ast1"}, {"q8", "ast8"}, {"q10", "ast10"}, {"q12_1", "ast11"},
	} {
		b.Run("match/"+pair.q, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := qgm.BuildSQL(bench.Queries[pair.q], env.Cat)
				if err != nil {
					b.Fatal(err)
				}
				if env.RW.Rewrite(g, env.ASTs[pair.a]) == nil {
					b.Fatal("no rewrite")
				}
			}
		})
		// cached: the same repeated query answered through the plan cache —
		// one cold miss to warm it, then every iteration is a key lookup plus
		// a plan clone instead of build+match+splice.
		b.Run("cached/"+pair.q, func(b *testing.B) {
			cache := core.NewPlanCache(64)
			asts := []*core.CompiledAST{env.ASTs[pair.a]}
			ctx := context.Background()
			cr, err := env.RW.RewriteSQLCached(ctx, cache, bench.Queries[pair.q], asts, env.Store)
			if err != nil || cr.AST == "" {
				b.Fatalf("warmup did not rewrite: %+v err=%v", cr, err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cr, err := env.RW.RewriteSQLCached(ctx, cache, bench.Queries[pair.q], asts, env.Store)
				if err != nil {
					b.Fatal(err)
				}
				if !cr.Hit {
					b.Fatal("cache miss on repeated query")
				}
			}
		})
	}
}

// Ablation benches: the paper's design choices vs their naive alternatives.
func BenchmarkA01_MinimalQCL(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"minimal", core.Options{}},
		{"leafFirst", core.Options{LeafFirstDerivation: true}},
	} {
		env := bench.NewEnv(2000, mode.opts)
		ast, err := env.RegisterAST("ast2", bench.ASTDefs["ast2"])
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := qgm.BuildSQL(bench.Queries["q2"], env.Cat)
				if err != nil {
					b.Fatal(err)
				}
				if env.RW.Rewrite(g, ast) == nil {
					b.Fatal("no rewrite")
				}
			}
		})
	}
}

func BenchmarkA02_RejoinRegroup(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"eliminate1N", core.Options{}},
		{"alwaysRegroup", core.Options{AlwaysRegroup: true}},
	} {
		env := bench.NewEnv(benchScale, mode.opts)
		ast, err := env.RegisterAST("ast7", bench.ASTDefs["ast7"])
		if err != nil {
			b.Fatal(err)
		}
		g, err := qgm.BuildSQL(bench.Queries["q7"], env.Cat)
		if err != nil {
			b.Fatal(err)
		}
		if env.RW.Rewrite(g, ast) == nil {
			b.Fatal("no rewrite")
		}
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := env.Engine.Run(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkA03_CuboidChoice(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"smallest", core.Options{}},
		{"first", core.Options{FirstCuboid: true}},
	} {
		env := bench.NewEnv(benchScale, mode.opts)
		ast, err := env.RegisterAST("ast11", bench.ASTDefs["ast11"])
		if err != nil {
			b.Fatal(err)
		}
		g, err := qgm.BuildSQL(bench.Queries["q11_1"], env.Cat)
		if err != nil {
			b.Fatal(err)
		}
		if env.RW.Rewrite(g, ast) == nil {
			b.Fatal("no rewrite")
		}
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := env.Engine.Run(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE14_DSSuite measures the TPC-D-style suite end to end: total
// latency against base tables vs routed through the deployed AST set.
func BenchmarkE14_DSSuite(b *testing.B) {
	env := bench.NewEnv(benchScale, core.Options{})
	var asts []*core.CompiledAST
	for _, d := range workload.DSASTs {
		ca, err := env.RegisterAST(d.Name, d.SQL)
		if err != nil {
			b.Fatal(err)
		}
		asts = append(asts, ca)
	}
	var origs, rewrites []*qgm.Graph
	for _, q := range workload.DSQueries {
		og, err := qgm.BuildSQL(q.SQL, env.Cat)
		if err != nil {
			b.Fatal(err)
		}
		origs = append(origs, og)
		rg, _ := qgm.BuildSQL(q.SQL, env.Cat)
		env.RW.RewriteBestCost(rg, asts, env.Store)
		rewrites = append(rewrites, rg)
	}
	// Cross original-vs-rewritten with serial-vs-parallel execution (the
	// grouping-heavy suite is where partitioned aggregation should pay), plus
	// a serial interpreted leg isolating the compiled-expression-kernel win
	// and vectorized legs isolating the columnar-kernel win. The serial and
	// parallel legs pin VecOff so they stay comparable with the row-engine
	// numbers recorded in BENCH_1/BENCH_2.
	for _, mode := range []struct {
		name   string
		par    int
		interp bool
		vec    exec.VecMode
	}{
		{"serial", 1, false, exec.VecOff},
		{"parallel", 0, false, exec.VecOff},
		{"serial/interpreted", 1, true, exec.VecOff},
		{"vectorized", 1, false, exec.VecAuto},
		{"vectorized/parallel", 0, false, exec.VecAuto},
	} {
		cfg := exec.Config{Parallelism: mode.par, Interpret: mode.interp, Vectorize: mode.vec}
		b.Run("original/"+mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, g := range origs {
					if _, err := env.Engine.RunCtx(context.Background(), g, cfg); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run("rewritten/"+mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, g := range rewrites {
					if _, err := env.Engine.RunCtx(context.Background(), g, cfg); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkE15_CatalogScaling measures rewrite-candidate selection latency as
// the AST catalog grows, with and without the signature index. The catalog is
// 64 disjoint single-table schemas with ASTs registered round-robin, so for
// the single-table probe query the index refuses all but every 64th candidate
// before the matcher runs.
func BenchmarkE15_CatalogScaling(b *testing.B) {
	sizes := []int{1, 16, 64, 256}
	if testing.Short() {
		sizes = []int{1, 64}
	}
	for _, nASTs := range sizes {
		env := bench.NewWideEnv(bench.WideTables, 64)
		asts, err := bench.RegisterWideASTs(env, nASTs, bench.WideTables)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name string
			opts core.Options
		}{
			{"pruned", core.Options{}},
			{"unpruned", core.Options{NoPrune: true}},
		} {
			rw := core.NewRewriter(env.Cat, mode.opts)
			b.Run("asts="+strconv.Itoa(nASTs)+"/"+mode.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					g, err := qgm.BuildSQL(bench.WideQuery, env.Cat)
					if err != nil {
						b.Fatal(err)
					}
					if rw.RewriteBestCost(g, asts, env.Store) == nil {
						b.Fatal("wide query did not rewrite")
					}
				}
			})
		}
	}
}
