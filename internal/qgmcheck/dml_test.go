package qgmcheck_test

// Seeded-corruption tests for the mutation-side checks: CheckDML over compiled
// DELETE/UPDATE statements and CheckDeltaPlan over maintenance-plan ordinal
// projections. Same discipline as the SELECT-rewrite suite: a healthy artifact
// passes, then each test applies one corruption of the kind a binder or
// analyzer bug would produce and asserts the named rule rejects it.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/qgm"
	"repro/internal/qgmcheck"
	"repro/internal/sqltypes"
)

func compileDML(t *testing.T, env *bench.Env, sql string) *qgm.DML {
	t.Helper()
	stmt, err := parser.ParseStatement(sql)
	if err != nil {
		t.Fatal(err)
	}
	var dml *qgm.DML
	switch s := stmt.(type) {
	case *parser.DeleteStmt:
		dml, err = qgm.BuildDelete(s, env.Cat)
	case *parser.UpdateStmt:
		dml, err = qgm.BuildUpdate(s, env.Cat)
	default:
		t.Fatalf("not a DML statement: %s", sql)
	}
	if err != nil {
		t.Fatal(err)
	}
	return dml
}

// wantViolation asserts at least one violation carries the named rule.
func wantViolation(t *testing.T, vs []qgmcheck.Violation, rule string) {
	t.Helper()
	for _, v := range vs {
		if v.Rule == rule {
			if v.Detail == "" {
				t.Errorf("rule %s fired without a diagnostic detail", rule)
			}
			return
		}
	}
	t.Errorf("expected a %s violation, got %d other(s): %v", rule, len(vs), vs)
}

func TestCheckDMLAcceptsCompiledStatements(t *testing.T) {
	env := bench.NewEnv(60, core.Options{})
	for _, sql := range []string{
		`delete from trans where qty = 2`,
		`delete from trans`,
		`update trans set qty = qty + 1 where flid = 3`,
		`update trans set price = 2, disc = disc / 2 where qty > 1`,
	} {
		if vs := qgmcheck.CheckDML(compileDML(t, env, sql)); len(vs) > 0 {
			t.Errorf("%s: clean compiled statement rejected: %v", sql, vs)
		}
	}
}

// A WHERE operand re-pointed at a quantifier the statement does not own — the
// dangling binding a broken clone would leave behind.
func TestCheckDMLRejectsForeignQuantifier(t *testing.T) {
	env := bench.NewEnv(60, core.Options{})
	d := compileDML(t, env, `delete from trans where qty = 2`)
	foreign := &qgm.Quantifier{ID: 9999, Box: d.Q.Box}
	d.Where.(*qgm.Bin).L = &qgm.ColRef{Q: foreign, Col: 0}
	wantViolation(t, qgmcheck.CheckDML(d), "dml/binding")
}

// A column ordinal past the table's arity must be reported, not chased into a
// panic by type inference.
func TestCheckDMLRejectsOutOfRangeColumn(t *testing.T) {
	env := bench.NewEnv(60, core.Options{})
	d := compileDML(t, env, `update trans set qty = 3 where flid = 1`)
	d.Sets[0].Expr = &qgm.ColRef{Q: d.Q, Col: len(d.Table.Columns) + 7}
	wantViolation(t, qgmcheck.CheckDML(d), "dml/binding")
}

// An aggregate smuggled into a row-local SET expression.
func TestCheckDMLRejectsAggregateInSet(t *testing.T) {
	env := bench.NewEnv(60, core.Options{})
	d := compileDML(t, env, `update trans set qty = 3`)
	d.Sets[0].Expr = &qgm.Agg{Op: "sum", Arg: d.Sets[0].Expr}
	wantViolation(t, qgmcheck.CheckDML(d), "dml/agg")
}

// A non-boolean WHERE (a bare int column as the predicate).
func TestCheckDMLRejectsNonBooleanWhere(t *testing.T) {
	env := bench.NewEnv(60, core.Options{})
	d := compileDML(t, env, `delete from trans where qty = 2`)
	d.Where = &qgm.ColRef{Q: d.Q, Col: 0} // tid: INT
	wantViolation(t, qgmcheck.CheckDML(d), "dml/where")
}

// The quantifier re-bound to a table other than the statement's target.
func TestCheckDMLRejectsTableMismatch(t *testing.T) {
	env := bench.NewEnv(60, core.Options{})
	d := compileDML(t, env, `delete from trans where qty = 2`)
	other, ok := env.Cat.Table("acct")
	if !ok {
		t.Fatal("acct not in catalog")
	}
	d.Table = other
	wantViolation(t, qgmcheck.CheckDML(d), "dml/shape")
}

// SET assignments on a DELETE, and a duplicated assignment on an UPDATE.
func TestCheckDMLRejectsSetShapeCorruption(t *testing.T) {
	env := bench.NewEnv(60, core.Options{})
	d := compileDML(t, env, `delete from trans`)
	u := compileDML(t, env, `update trans set qty = 3`)
	d.Sets = append(d.Sets, u.Sets[0])
	wantViolation(t, qgmcheck.CheckDML(d), "dml/set")

	u.Sets = append(u.Sets, u.Sets[0])
	wantViolation(t, qgmcheck.CheckDML(u), "dml/set")
}

// A date-typed value assigned into an int column.
func TestCheckDMLRejectsSetTypeMismatch(t *testing.T) {
	env := bench.NewEnv(60, core.Options{})
	d := compileDML(t, env, `update trans set qty = 3`)
	dateCol := -1
	for i, c := range d.Table.Columns {
		if c.Type == sqltypes.KindDate {
			dateCol = i
			break
		}
	}
	if dateCol < 0 {
		t.Fatal("trans has no date column")
	}
	d.Sets[0].Expr = &qgm.ColRef{Q: d.Q, Col: dateCol}
	wantViolation(t, qgmcheck.CheckDML(d), "dml/set")
}

// deltaFixture compiles the canonical maintainable definition and derives the
// correct ordinal projection from the graph itself, the way maintain.Analyze
// does: flid is the key, COUNT(*) the tracker, MIN(price) the scoped column.
func deltaFixture(t *testing.T) qgmcheck.DeltaPlan {
	t.Helper()
	env := bench.NewEnv(60, core.Options{})
	g, err := qgm.BuildSQL(
		`select flid, count(*) as c, min(price) as mn from trans group by flid`, env.Cat)
	if err != nil {
		t.Fatal(err)
	}
	gb := g.Root.Quantifiers[0].Box
	keyRef := g.Root.Cols[0].Expr.(*qgm.ColRef)
	lowerOrd := gb.Cols[keyRef.Col].Expr.(*qgm.ColRef).Col
	p := qgmcheck.DeltaPlan{
		Graph:        g,
		KeyCols:      []int{0},
		CounterCol:   1,
		ScopedCols:   []int{2},
		KeyLowerOrds: []int{lowerOrd},
	}
	if vs := qgmcheck.CheckDeltaPlan(p); len(vs) > 0 {
		t.Fatalf("healthy delta plan rejected: %v", vs)
	}
	return p
}

// The tracker ordinal re-pointed at the grouping key: merging would subtract
// key values as counts.
func TestCheckDeltaPlanRejectsKeyAsTracker(t *testing.T) {
	p := deltaFixture(t)
	p.CounterCol = 0
	wantViolation(t, qgmcheck.CheckDeltaPlan(p), "delta/tracker")
}

// The tracker ordinal re-pointed at the MIN column: not a COUNT, cannot track
// group cardinality.
func TestCheckDeltaPlanRejectsNonCountTracker(t *testing.T) {
	p := deltaFixture(t)
	p.CounterCol = 2
	wantViolation(t, qgmcheck.CheckDeltaPlan(p), "delta/tracker")
}

// A key ordinal past the plan's arity.
func TestCheckDeltaPlanRejectsOutOfRangeKey(t *testing.T) {
	p := deltaFixture(t)
	p.KeyCols = []int{0, 99}
	wantViolation(t, qgmcheck.CheckDeltaPlan(p), "delta/ordinal")
}

// The key partition disagreeing with the definition: the plan claims the
// COUNT column is a grouping key.
func TestCheckDeltaPlanRejectsKeyPartitionMismatch(t *testing.T) {
	p := deltaFixture(t)
	p.KeyCols = []int{0, 1}
	p.KeyLowerOrds = nil // isolate the partition rule from the lower-ordinal rule
	wantViolation(t, qgmcheck.CheckDeltaPlan(p), "delta/keys")
}

// A scoped-recompute ordinal naming the grouping key instead of an aggregate.
func TestCheckDeltaPlanRejectsScopedKeyColumn(t *testing.T) {
	p := deltaFixture(t)
	p.ScopedCols = []int{0}
	wantViolation(t, qgmcheck.CheckDeltaPlan(p), "delta/scoped")
}

// A lower-box key ordinal drifted off the column the grouping key actually
// reads — the scoped recompute would inject equalities over the wrong column.
func TestCheckDeltaPlanRejectsLowerOrdinalDrift(t *testing.T) {
	p := deltaFixture(t)
	p.KeyLowerOrds = []int{p.KeyLowerOrds[0] + 1}
	wantViolation(t, qgmcheck.CheckDeltaPlan(p), "delta/keys")
}

// A definition without the single-block aggregation shape: ordinal rules must
// refuse to interpret it rather than mis-read a SELECT-only plan.
func TestCheckDeltaPlanRejectsNonAggregateShape(t *testing.T) {
	env := bench.NewEnv(60, core.Options{})
	g, err := qgm.BuildSQL(`select flid, qty from trans where qty > 1`, env.Cat)
	if err != nil {
		t.Fatal(err)
	}
	p := qgmcheck.DeltaPlan{Graph: g, KeyCols: []int{0}, CounterCol: -1}
	wantViolation(t, qgmcheck.CheckDeltaPlan(p), "delta/shape")
}

// A structurally broken graph short-circuits: CheckDeltaPlan reports the
// structural violation and does not run ordinal rules over garbage.
func TestCheckDeltaPlanStructuralFirst(t *testing.T) {
	p := deltaFixture(t)
	gb := p.Graph.Root.Quantifiers[0].Box
	gb.Cols[0].Expr = &qgm.ColRef{Q: &qgm.Quantifier{ID: 9999, Box: gb}, Col: 0}
	vs := qgmcheck.CheckDeltaPlan(p)
	wantViolation(t, vs, "binding/resolve")
	for _, v := range vs {
		if v.Rule == "delta/keys" || v.Rule == "delta/tracker" {
			t.Errorf("ordinal rule %s ran over a structurally broken graph", v.Rule)
		}
	}
}
