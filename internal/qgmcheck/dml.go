package qgmcheck

import (
	"fmt"

	"repro/internal/qgm"
	"repro/internal/sqltypes"
)

// DML and delta-plan rules (dml/*, delta/*). SELECT plans flow through Check
// and Structural; the mutation side has two more compiled artifacts worth
// auditing before they touch data:
//
//   - a qgm.DML (compiled DELETE/UPDATE): no box tree, but its WHERE and SET
//     expressions must be bound to the single base-table quantifier, typed,
//     aggregate-free, and assignment-compatible with the target columns;
//   - a maintenance delta plan (the ordinal tables maintain.Analyze derives
//     and Plan.InsertRouting/DeleteRouting route on): key columns, the
//     COUNT(*) tracker, and the scoped-recompute ordinals must agree with the
//     definition graph, or the merge would subtract the wrong columns.
//
// Both checks are cheap (row-local expressions, one small graph), so maintain
// gates every incremental refresh through CheckDeltaPlan — a violation falls
// back to full recomputation instead of publishing a corrupt merge — and
// astdb gates compiled DML through CheckDML behind WithVerifyPlans.

// CheckDML audits a compiled DELETE or UPDATE statement and returns the
// violations in discovery order.
func CheckDML(d *qgm.DML) []Violation {
	r := &run{}
	r.checkDML(d)
	return r.vs
}

func (r *run) checkDML(d *qgm.DML) {
	if d == nil {
		r.add("dml/shape", nil, "nil DML statement")
		return
	}
	if d.Table == nil {
		r.add("dml/shape", nil, "%s without a target table", d.Kind)
		return
	}
	q := d.Q
	if q == nil || q.Box == nil {
		r.add("dml/shape", nil, "%s on %s has no bound quantifier", d.Kind, d.Table.Name)
		return
	}
	if q.Kind != qgm.ForEach {
		r.add("dml/shape", q.Box, "%s quantifier q%d is not ForEach", d.Kind, q.ID)
	}
	if q.Box.Kind != qgm.BaseTableBox || q.Box.Table != d.Table {
		r.add("dml/shape", q.Box, "%s quantifier q%d is not bound to base table %s", d.Kind, q.ID, d.Table.Name)
		return
	}
	arity := len(d.Table.Columns)

	// checkExpr reports whether e is soundly bound; type inference indexes
	// through column ordinals, so the type rules only run on bound expressions.
	checkExpr := func(where string, e qgm.Expr) bool {
		bound := true
		qgm.WalkExpr(e, func(x qgm.Expr) bool {
			switch t := x.(type) {
			case *qgm.ColRef:
				if t.Q != q {
					r.add("dml/binding", q.Box, "%s: reference to a quantifier other than the statement's own", where)
					bound = false
					return false
				}
				if t.Col < 0 || t.Col >= arity {
					r.add("dml/binding", q.Box, "%s: column %d out of range for %s (arity %d)", where, t.Col, d.Table.Name, arity)
					bound = false
					return false
				}
			case *qgm.Agg:
				r.add("dml/agg", q.Box, "%s: aggregate %s in a row-local %s expression", where, t.String(), d.Kind)
				return false
			}
			return true
		})
		if !bound {
			return false
		}
		for _, iss := range qgm.TypeIssues(e) {
			r.add("types/"+iss.Class, q.Box, "%s: %s", where, iss.Detail)
		}
		return true
	}

	if d.Where != nil {
		if checkExpr("WHERE", d.Where) {
			if k, _ := qgm.InferType(d.Where); !qgm.IsBoolKind(k) {
				r.add("dml/where", q.Box, "WHERE has non-boolean type %v", k)
			}
		}
	}
	if d.Kind == qgm.DMLDelete && len(d.Sets) > 0 {
		r.add("dml/set", q.Box, "DELETE carries %d SET assignments", len(d.Sets))
	}
	if d.Kind == qgm.DMLUpdate && len(d.Sets) == 0 {
		r.add("dml/set", q.Box, "UPDATE without SET assignments")
	}
	seen := make(map[int]bool, len(d.Sets))
	for i, s := range d.Sets {
		if s.Col < 0 || s.Col >= arity {
			r.add("dml/set", q.Box, "SET %d targets column %d out of range for %s (arity %d)", i, s.Col, d.Table.Name, arity)
			continue
		}
		col := d.Table.Columns[s.Col]
		if seen[s.Col] {
			r.add("dml/set", q.Box, "column %q assigned twice", col.Name)
		}
		seen[s.Col] = true
		if s.Expr == nil {
			r.add("dml/set", q.Box, "SET %s has no value expression", col.Name)
			continue
		}
		if checkExpr(fmt.Sprintf("SET %s", col.Name), s.Expr) {
			if k, _ := qgm.InferType(s.Expr); !assignableSetKind(k, col.Type) {
				r.add("dml/set", q.Box, "SET %s: %v value into %v column", col.Name, k, col.Type)
			}
		}
	}
}

// assignableSetKind mirrors qgm's UPDATE assignment rule: exact kind match,
// unknown (NULL-typed) expressions pass, integers widen into float columns,
// and integer yyyymmdd values land in date columns.
func assignableSetKind(k, col sqltypes.Kind) bool {
	if k == sqltypes.KindNull || k == col {
		return true
	}
	if col == sqltypes.KindFloat && k == sqltypes.KindInt {
		return true
	}
	if col == sqltypes.KindDate && k == sqltypes.KindInt {
		return true
	}
	return false
}

// DeltaPlan is the structural projection of a maintenance plan: the AST's
// definition graph plus the derived ordinal tables the delta-merge machinery
// routes on. internal/maintain builds one before every incremental refresh;
// a violation means the plan and the definition disagree — merging with those
// ordinals would add or subtract the wrong columns — so the caller must fall
// back to full recomputation.
type DeltaPlan struct {
	Graph        *qgm.Graph
	KeyCols      []int // root output ordinals that are grouping keys
	CounterCol   int   // COUNT(*)-equivalent tracker ordinal; -1 = none
	ScopedCols   []int // ordinals restored by a group-scoped recompute
	KeyLowerOrds []int // lower-box output ordinal per key column (scoped path)
}

// CheckDeltaPlan audits a maintenance plan projection against its definition
// graph. The graph is checked structurally first; ordinal rules assume a
// well-formed single-block aggregation shape and report delta/shape when the
// graph does not have one.
func CheckDeltaPlan(p DeltaPlan) []Violation {
	r := &run{structuralOnly: true}
	r.check(p.Graph)
	if len(r.vs) > 0 {
		return r.vs // ordinal rules over a broken graph would mislead
	}
	r.checkDeltaPlan(p)
	return r.vs
}

func (r *run) checkDeltaPlan(p DeltaPlan) {
	root := p.Graph.Root
	if root.Kind != qgm.SelectBox || len(root.Quantifiers) != 1 ||
		root.Quantifiers[0].Box == nil || root.Quantifiers[0].Box.Kind != qgm.GroupByBox {
		r.add("delta/shape", root, "maintainable plan must be a SELECT over exactly one GROUP BY")
		return
	}
	gb := root.Quantifiers[0].Box
	arity := len(root.Cols)

	inRange := func(rule string, what string, ords []int) bool {
		ok := true
		seen := make(map[int]bool, len(ords))
		for _, o := range ords {
			if o < 0 || o >= arity {
				r.add(rule, root, "%s ordinal %d out of range (arity %d)", what, o, arity)
				ok = false
				continue
			}
			if seen[o] {
				r.add(rule, root, "duplicate %s ordinal %d", what, o)
				ok = false
			}
			seen[o] = true
		}
		return ok
	}
	if !inRange("delta/ordinal", "key", p.KeyCols) {
		return
	}
	if !inRange("delta/ordinal", "scoped", p.ScopedCols) {
		return
	}
	if p.CounterCol < -1 || p.CounterCol >= arity {
		r.add("delta/ordinal", root, "tracker ordinal %d out of range (arity %d)", p.CounterCol, arity)
		return
	}

	// Every root output must be a plain reference into the GROUP BY box, and
	// the key/aggregate partition recorded in the plan must match the graph's.
	isKey := make(map[int]bool, len(p.KeyCols))
	for _, k := range p.KeyCols {
		isKey[k] = true
	}
	gbRef := make([]*qgm.ColRef, arity)
	for i, c := range root.Cols {
		cr, ok := c.Expr.(*qgm.ColRef)
		if !ok || cr.Q == nil || cr.Q.Box != gb || cr.Col < 0 || cr.Col >= len(gb.Cols) {
			r.add("delta/shape", root, "output %q is not a plain reference into the GROUP BY box", c.Name)
			return
		}
		gbRef[i] = cr
		if gb.IsGroupCol(cr.Col) != isKey[i] {
			r.add("delta/keys", root, "output %q: plan says key=%v, definition says key=%v", c.Name, isKey[i], gb.IsGroupCol(cr.Col))
		}
	}

	aggAt := func(i int) *qgm.Agg {
		a, _ := gb.Cols[gbRef[i].Col].Expr.(*qgm.Agg)
		return a
	}
	if p.CounterCol >= 0 {
		a := aggAt(p.CounterCol)
		switch {
		case isKey[p.CounterCol] || a == nil:
			r.add("delta/tracker", root, "tracker ordinal %d is not an aggregate column", p.CounterCol)
		case a.Op != "count":
			r.add("delta/tracker", root, "tracker ordinal %d is %s, not a COUNT", p.CounterCol, a.Op)
		case !a.Star:
			if _, nullable := qgm.InferType(a.Arg); nullable {
				r.add("delta/tracker", root, "tracker ordinal %d counts a nullable expression; it cannot track group cardinality", p.CounterCol)
			}
		}
	}
	for _, sc := range p.ScopedCols {
		a := aggAt(sc)
		if isKey[sc] || a == nil {
			r.add("delta/scoped", root, "scoped ordinal %d is not an aggregate column", sc)
			continue
		}
		switch a.Op {
		case "min", "max", "sum":
		default:
			r.add("delta/scoped", root, "scoped ordinal %d is %s; only MIN/MAX/SUM need scoped recompute", sc, a.Op)
		}
	}

	// The scoped-recompute path injects key equalities into the lower box, so
	// each recorded lower ordinal must be exactly where the grouping column
	// reads from.
	if len(p.KeyLowerOrds) > 0 {
		if len(p.KeyLowerOrds) != len(p.KeyCols) {
			r.add("delta/keys", root, "%d lower-box key ordinals for %d key columns", len(p.KeyLowerOrds), len(p.KeyCols))
			return
		}
		lower := gb.Child()
		if lower == nil {
			r.add("delta/shape", gb, "GROUP BY box has no child")
			return
		}
		for j, kc := range p.KeyCols {
			gcr, ok := gb.Cols[gbRef[kc].Col].Expr.(*qgm.ColRef)
			if !ok {
				r.add("delta/keys", gb, "grouping column %d is not a plain lower-box reference", gbRef[kc].Col)
				continue
			}
			if ord := p.KeyLowerOrds[j]; ord != gcr.Col || ord < 0 || ord >= len(lower.Cols) {
				r.add("delta/keys", gb, "key column %d maps to lower ordinal %d, definition reads %d", kc, ord, gcr.Col)
			}
		}
	}
}
