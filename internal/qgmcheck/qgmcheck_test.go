package qgmcheck_test

// Seeded-mutation tests: each test takes a plan the checker accepts, applies
// one deliberate corruption of the kind a clone/pull-up/compensation bug
// would produce, and asserts the checker rejects it under the expected named
// rule. Together with the clean-suite tests this pins both directions of the
// oracle: sound plans pass, corrupted plans fail with a diagnosis.

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/qgm"
	"repro/internal/qgmcheck"
	"repro/internal/sqltypes"
)

// rewritten builds the paper env, registers one AST, and returns the query's
// graph after a successful rewrite against it, plus the checker wired with
// the AST's definition.
func rewritten(t *testing.T, query, ast string) (*qgm.Graph, *qgmcheck.Checker) {
	t.Helper()
	env := bench.NewEnv(60, core.Options{})
	ca := env.MustRegisterAST(ast, bench.ASTDefs[ast])
	g, err := qgm.BuildSQL(bench.Queries[query], env.Cat)
	if err != nil {
		t.Fatalf("build %s: %v", query, err)
	}
	if res := env.RW.Rewrite(g, ca); res == nil {
		t.Fatalf("%s vs %s: rewrite did not apply", query, ast)
	}
	ck := &qgmcheck.Checker{ASTDefs: map[string]*qgm.Graph{ast: ca.Graph}}
	if vs := ck.Check(g); len(vs) > 0 {
		t.Fatalf("%s rewritten against %s not clean before mutation: %v", query, ast, vs)
	}
	return g, ck
}

// wantRule asserts the checker reports at least one violation under rule.
func wantRule(t *testing.T, ck *qgmcheck.Checker, g *qgm.Graph, rule string) {
	t.Helper()
	vs := ck.Check(g)
	for _, v := range vs {
		if v.Rule == rule {
			if v.Detail == "" {
				t.Errorf("rule %s fired without a diagnostic detail", rule)
			}
			return
		}
	}
	t.Errorf("expected a %s violation, got %d other(s): %v", rule, len(vs), vs)
}

// findBox returns the first box (bottom-up) satisfying pred.
func findBox(t *testing.T, g *qgm.Graph, what string, pred func(*qgm.Box) bool) *qgm.Box {
	t.Helper()
	for _, b := range g.Boxes() {
		if pred(b) {
			return b
		}
	}
	t.Fatalf("no box found: %s", what)
	return nil
}

// firstAgg returns the box's first aggregate output column's node.
func firstAgg(t *testing.T, b *qgm.Box) *qgm.Agg {
	t.Helper()
	for i, c := range b.Cols {
		if b.IsGroupCol(i) {
			continue
		}
		if a, ok := c.Expr.(*qgm.Agg); ok {
			return a
		}
	}
	t.Fatalf("box %s has no aggregate output", b.Label)
	return nil
}

func isRegroup(b *qgm.Box) bool { return b.Kind == qgm.GroupByBox && b.Regroup }

func isCompSelect(b *qgm.Box) bool {
	return b.Kind == qgm.SelectBox && strings.Contains(b.Label, "-C")
}

// Corruption 1: a column reference re-pointed at a quantifier the box does
// not own — the dangling-binding class a broken Clone/pullup leaves behind.
func TestRejectsDanglingColumnRef(t *testing.T) {
	g, ck := rewritten(t, "q4", "ast6")
	root := g.Root
	foreign := &qgm.Quantifier{ID: 9999, Box: root}
	sel := findBox(t, g, "select box with outputs", func(b *qgm.Box) bool {
		return b.Kind == qgm.SelectBox && len(b.Cols) > 0
	})
	sel.Cols[0].Expr = &qgm.ColRef{Q: foreign, Col: 0}
	wantRule(t, ck, g, "binding/resolve")
}

// Corruption 2: a column ordinal beyond the producer's arity.
func TestRejectsOutOfRangeColumn(t *testing.T) {
	g, ck := rewritten(t, "q4", "ast6")
	sel := findBox(t, g, "select box with a plain column ref", func(b *qgm.Box) bool {
		if b.Kind != qgm.SelectBox {
			return false
		}
		for _, c := range b.Cols {
			if _, ok := c.Expr.(*qgm.ColRef); ok {
				return true
			}
		}
		return false
	})
	for i, c := range sel.Cols {
		if cr, ok := c.Expr.(*qgm.ColRef); ok {
			sel.Cols[i].Expr = &qgm.ColRef{Q: cr.Q, Col: len(cr.Q.Box.Cols) + 7}
			break
		}
	}
	wantRule(t, ck, g, "binding/resolve")
}

// Corruption 3: AVG as a second-stage combiner (the paper's canonical invalid
// re-aggregation — AVG over SUM double-weights groups).
func TestRejectsAvgReaggregation(t *testing.T) {
	g, ck := rewritten(t, "q4", "ast6")
	gb := findBox(t, g, "regrouping GROUP BY", isRegroup)
	firstAgg(t, gb).Op = "avg"
	wantRule(t, ck, g, "comp/reagg")
}

// Corruption 4: plain COUNT as a combiner (partial counts must re-aggregate
// as SUM; COUNT would count groups, not rows — Table 1 rule (a)).
func TestRejectsCountReaggregation(t *testing.T) {
	g, ck := rewritten(t, "q4", "ast6")
	gb := findBox(t, g, "regrouping GROUP BY", isRegroup)
	a := firstAgg(t, gb)
	a.Op = "count"
	a.Distinct = false
	wantRule(t, ck, g, "comp/reagg")
}

// Corruption 5: MIN re-aggregating a SUM carrier column (wrong combiner for
// the carrier even though MIN itself is a valid second-stage operator).
func TestRejectsMinOverSumCarrier(t *testing.T) {
	g, ck := rewritten(t, "q4", "ast6")
	gb := findBox(t, g, "regrouping GROUP BY", isRegroup)
	firstAgg(t, gb).Op = "min"
	wantRule(t, ck, g, "comp/reagg")
}

// Corruption 6: a NULL-slicing predicate re-targeted at an aggregate column
// of the cube AST — NULL-ness of an aggregate cannot identify a cuboid.
func TestRejectsNullSliceOnAggregateColumn(t *testing.T) {
	g, ck := rewritten(t, "q11_1", "ast11")
	var mutated bool
	for _, b := range g.Boxes() {
		if !isCompSelect(b) {
			continue
		}
		for _, p := range b.Preds {
			qgm.WalkExpr(p, func(x qgm.Expr) bool {
				if mutated {
					return false
				}
				if isn, ok := x.(*qgm.IsNull); ok {
					if cr, ok := isn.E.(*qgm.ColRef); ok {
						// ast11 output: flid, faid, year, month, cnt — 4 is the
						// aggregate.
						isn.E = &qgm.ColRef{Q: cr.Q, Col: 4}
						mutated = true
						return false
					}
				}
				return true
			})
		}
	}
	if !mutated {
		t.Fatal("no slicing predicate found to mutate")
	}
	wantRule(t, ck, g, "comp/null-slice")
}

// Corruption 7: slicing predicates deleted outright — rows from all four
// cuboids of ast11 flow through unsliced, conflating grouping sets.
func TestRejectsMissingSlicingPredicates(t *testing.T) {
	g, ck := rewritten(t, "q11_1", "ast11")
	sel := findBox(t, g, "compensation select with predicates", func(b *qgm.Box) bool {
		return isCompSelect(b) && len(b.Preds) > 0
	})
	sel.Preds = nil
	wantRule(t, ck, g, "comp/cuboid-pinned")
}

// Corruption 8: the equality predicates of a regroup-eliminating rejoin
// (§4.2.1 Example 2) deleted — without the unique-key join the rejoin
// multiplies pre-aggregated rows.
func TestRejectsRejoinWithoutUniqueKey(t *testing.T) {
	g, ck := rewritten(t, "q7", "ast7")
	sel := findBox(t, g, "compensation select with a rejoin", func(b *qgm.Box) bool {
		return isCompSelect(b) && len(b.Quantifiers) > 1
	})
	var kept []qgm.Expr
	for _, p := range sel.Preds {
		if b, ok := p.(*qgm.Bin); ok && b.Op == "=" {
			continue
		}
		kept = append(kept, p)
	}
	sel.Preds = kept
	wantRule(t, ck, g, "comp/rejoin-key")
}

// Corruption 9: a quantifier cycle (a box consuming its own ancestor).
func TestRejectsQuantifierCycle(t *testing.T) {
	g, ck := rewritten(t, "q4", "ast6")
	leaf := findBox(t, g, "base table box", func(b *qgm.Box) bool {
		return b.Kind == qgm.BaseTableBox
	})
	parents := g.Parents()
	pe := parents[leaf.ID][0]
	pe.Quant.Box = g.Root
	wantRule(t, ck, g, "structure/cycle")
}

// Corruption 10: an aggregate node smuggled into a SELECT box output.
func TestRejectsAggregateOutsideGroupBy(t *testing.T) {
	g, ck := rewritten(t, "q4", "ast6")
	sel := findBox(t, g, "select box with outputs", func(b *qgm.Box) bool {
		return b.Kind == qgm.SelectBox && len(b.Cols) > 0
	})
	sel.Cols[0].Expr = &qgm.Agg{Op: "sum", Arg: sel.Cols[0].Expr}
	wantRule(t, ck, g, "agg/placement")
}

// Corruption 11: a de-canonicalized grouping set (unsorted positions), which
// would break cuboid matching's sorted-set comparisons. The rewritten cube
// queries collapse to single-cuboid plans, so this mutates an original
// grouping-sets query graph.
func TestRejectsNonCanonicalGroupingSets(t *testing.T) {
	env := bench.NewEnv(60, core.Options{})
	g, err := qgm.BuildSQL(bench.Queries["q12_1"], env.Cat)
	if err != nil {
		t.Fatal(err)
	}
	ck := &qgmcheck.Checker{}
	if vs := ck.Check(g); len(vs) > 0 {
		t.Fatalf("q12_1 not clean before mutation: %v", vs)
	}
	gb := findBox(t, g, "GROUP BY with a multi-column set", func(b *qgm.Box) bool {
		if b.Kind != qgm.GroupByBox {
			return false
		}
		for _, gs := range b.GroupingSets {
			if len(gs) >= 2 {
				return true
			}
		}
		return false
	})
	for _, gs := range gb.GroupingSets {
		if len(gs) >= 2 {
			gs[0], gs[1] = gs[1], gs[0]
			break
		}
	}
	wantRule(t, ck, g, "gsets/canonical")
}

// Corruption 12: a type-confused comparison (string column against an
// integer-typed expression).
func TestRejectsTypeConfusedComparison(t *testing.T) {
	env := bench.NewEnv(60, core.Options{})
	g, err := qgm.BuildSQL(bench.Queries["q1"], env.Cat)
	if err != nil {
		t.Fatal(err)
	}
	ck := &qgmcheck.Checker{}
	if vs := ck.Check(g); len(vs) > 0 {
		t.Fatalf("q1 not clean before mutation: %v", vs)
	}
	sel := findBox(t, g, "select with a comparison over a string column", func(b *qgm.Box) bool {
		for _, p := range b.Preds {
			if bin, ok := p.(*qgm.Bin); ok && bin.Op == "=" {
				if k, _ := qgm.InferType(bin.L); k == sqltypes.KindString {
					return true
				}
			}
		}
		return false
	})
	for _, p := range sel.Preds {
		if bin, ok := p.(*qgm.Bin); ok && bin.Op == "=" {
			if k, _ := qgm.InferType(bin.L); k == sqltypes.KindString {
				bin.R = &qgm.Bin{Op: "+", L: bin.L, R: bin.L} // string+string: also arith abuse
				break
			}
		}
	}
	wantRule(t, ck, g, "types/arith")
}

// Corruption 13: a scalar quantifier whose child grew a second output column
// (scalar subqueries must stay single-valued).
func TestRejectsWideScalarSubquery(t *testing.T) {
	g, ck := rewritten(t, "q10", "ast10")
	found := false
	for _, b := range g.Boxes() {
		for _, q := range b.Quantifiers {
			if q.Kind == qgm.Scalar {
				child := q.Box
				child.Cols = append(child.Cols, child.Cols[0])
				if child.Kind == qgm.GroupByBox {
					// Keep the box's own shape rules satisfied so the arity
					// violation is isolated.
					found = true
				}
				found = true
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no scalar quantifier in the q10 plan")
	}
	wantRule(t, ck, g, "binding/scalar")
}

// The deprecated shallow validator and the new Structural check agree on a
// clean plan, and Structural additionally rejects the pointer-identity
// corruption the shallow ID-based check cannot see.
func TestStructuralSupersetOfValidate(t *testing.T) {
	g, _ := rewritten(t, "q4", "ast6")
	if err := g.Validate(); err != nil {
		t.Fatalf("qgm.Validate on clean plan: %v", err)
	}
	if err := qgmcheck.Structural(g); err != nil {
		t.Fatalf("Structural on clean plan: %v", err)
	}

	// Re-point a reference at a fabricated twin of its quantifier — same ID,
	// same child box, different pointer. That is exactly what a buggy clone
	// leaves behind; the ID-based shallow check resolves it, pointer identity
	// does not.
	mutated := false
	for _, b := range g.Boxes() {
		for i, c := range b.Cols {
			if cr, ok := c.Expr.(*qgm.ColRef); ok {
				twin := &qgm.Quantifier{ID: cr.Q.ID, Kind: cr.Q.Kind, Box: cr.Q.Box, Alias: cr.Q.Alias}
				b.Cols[i].Expr = &qgm.ColRef{Q: twin, Col: cr.Col}
				mutated = true
				break
			}
		}
		if mutated {
			break
		}
	}
	if !mutated {
		t.Fatal("no plain column reference to re-point")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("shallow Validate unexpectedly rejected the same-ID twin: %v", err)
	}
	if err := qgmcheck.Structural(g); err == nil {
		t.Error("Structural accepted a same-ID foreign quantifier reference")
	}
}
