// Package qgmcheck is a deep static soundness checker for QGM graphs. It
// verifies that a plan — original or rewritten — satisfies the invariants the
// paper's rewrite patterns (§4.1.1–§4.2.4, §5.1, §5.2) rely on, going well
// beyond the shallow structural audit of qgm.Validate:
//
//   - structural shape of every box kind, with cycle detection (structure/*);
//   - cross-box column-binding resolution: every column reference resolves by
//     pointer identity to a quantifier of the enclosing box, within the
//     producer's arity — catching dangling references left behind by clone,
//     pull-up, or compensation construction bugs (binding/*);
//   - aggregation scoping: aggregates appear only as GROUP BY output columns,
//     with well-formed operators (agg/*);
//   - full bottom-up type checking over expression trees: operand type
//     agreement for logical/comparison/arithmetic operators, builtin call
//     arity and argument kinds, aggregate argument types, CASE branch
//     agreement (types/*);
//   - grouping-set canonicalization for CUBE/ROLLUP boxes (gsets/*);
//   - compensation post-conditions on boxes the matcher spliced in:
//     second-stage re-aggregation must be a valid combiner per the paper's
//     Table 1, NULL-slicing predicates must discriminate cuboids on grouping
//     columns, every droppable cuboid column must be pinned or preserved, and
//     regroup-eliminating rejoins must join on a proven unique key (comp/*).
//
// The checker is an oracle, not a gatekeeper on the hot path: it runs after
// qgm.Build in tests and fuzzing, after every accepted rewrite behind
// core.Options.VerifyPlans, and behind the astdb.WithVerifyPlans debug
// option — all off by default.
package qgmcheck

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"repro/internal/qgm"
)

// Violation is one rule failure. Rule is a stable slash-separated identifier
// ("binding/resolve", "comp/reagg", …); Box locates the offending box.
type Violation struct {
	Rule   string
	Box    string // "Label(#ID)", empty for graph-level rules
	Detail string
}

// String renders the violation as "rule box: detail".
func (v Violation) String() string {
	if v.Box == "" {
		return v.Rule + ": " + v.Detail
	}
	return v.Rule + " " + v.Box + ": " + v.Detail
}

// CheckError wraps a non-empty violation list as an error.
type CheckError struct {
	Violations []Violation
}

// Error joins the violations, one per line.
func (e *CheckError) Error() string {
	lines := make([]string, len(e.Violations))
	for i, v := range e.Violations {
		lines[i] = v.String()
	}
	return "qgmcheck: " + strings.Join(lines, "; ")
}

// AsError converts a violation list into an error (nil when empty).
func AsError(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	return &CheckError{Violations: vs}
}

// Checker runs the full rule set. The zero value checks everything except the
// definition-aware compensation rules; supplying ASTDefs (materialized AST
// table name → definition graph) enables the deep comp/* rules that classify
// AST columns as grouping columns vs. aggregate carriers.
type Checker struct {
	ASTDefs map[string]*qgm.Graph
}

// Check runs every applicable rule over the graph and returns the violations
// in deterministic (bottom-up box, then rule) order. A structurally broken
// graph (cycle, nil root) short-circuits: deeper rules assume a well-formed
// DAG.
func (c *Checker) Check(g *qgm.Graph) []Violation {
	ck := &run{defs: c.ASTDefs}
	ck.check(g)
	return ck.vs
}

// Check runs the definition-independent rules (a zero Checker).
func Check(g *qgm.Graph) []Violation {
	return (&Checker{}).Check(g)
}

// Structural runs only the structural, binding, aggregate-placement and
// grouping-set rules — a strict superset of the deprecated qgm.Validate — and
// returns the first violation as an error. It is cheap enough for always-on
// use on accepted rewrites.
func Structural(g *qgm.Graph) error {
	ck := &run{structuralOnly: true}
	ck.check(g)
	return AsError(ck.vs)
}

// run is one checker invocation's state.
type run struct {
	defs           map[string]*qgm.Graph
	structuralOnly bool
	vs             []Violation
}

func (r *run) add(rule string, b *qgm.Box, format string, args ...any) {
	v := Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)}
	if b != nil {
		v.Box = fmt.Sprintf("%s(#%d)", b.Label, b.ID)
	}
	r.vs = append(r.vs, v)
}

func (r *run) check(g *qgm.Graph) {
	if g == nil || g.Root == nil {
		r.add("structure/root", nil, "graph has no root")
		return
	}
	if !r.checkAcyclic(g) {
		return // inference over a cyclic graph would not terminate
	}
	boxes := g.Boxes()
	r.checkIdentity(g, boxes)
	for _, b := range boxes {
		r.checkShape(b)
		r.checkBindings(b)
		r.checkGroupingSets(b)
		if !r.structuralOnly {
			r.checkTypes(b)
		}
	}
	if !r.structuralOnly {
		r.checkCompensations(g, boxes)
	}
}

// checkAcyclic verifies the quantifier edges form a DAG reachable from the
// root. Returns false (after recording structure/cycle) when a cycle exists.
func (r *run) checkAcyclic(g *qgm.Graph) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*qgm.Box]int{}
	ok := true
	var visit func(b *qgm.Box)
	visit = func(b *qgm.Box) {
		if b == nil || !ok {
			return
		}
		switch color[b] {
		case gray:
			r.add("structure/cycle", b, "box participates in a quantifier cycle")
			ok = false
			return
		case black:
			return
		}
		color[b] = gray
		for _, q := range b.Quantifiers {
			visit(q.Box)
		}
		color[b] = black
	}
	visit(g.Root)
	return ok
}

// checkIdentity verifies global identity invariants: box IDs are unique,
// quantifier IDs are unique, and each quantifier belongs to exactly one box
// (child boxes may be shared — that is the QGM's DAG shape — but edges may
// not).
func (r *run) checkIdentity(g *qgm.Graph, boxes []*qgm.Box) {
	boxIDs := map[int]*qgm.Box{}
	for _, b := range boxes {
		if prev, dup := boxIDs[b.ID]; dup {
			r.add("structure/box-id", b, "duplicate box ID %d (also %s)", b.ID, prev.Label)
		}
		boxIDs[b.ID] = b
	}
	quantOwner := map[*qgm.Quantifier]*qgm.Box{}
	quantIDs := map[int]*qgm.Quantifier{}
	for _, b := range boxes {
		for _, q := range b.Quantifiers {
			if q == nil {
				r.add("structure/quantifier", b, "nil quantifier")
				continue
			}
			if q.Box == nil {
				r.add("structure/quantifier", b, "quantifier q%d has no child box", q.ID)
			}
			if owner, shared := quantOwner[q]; shared {
				r.add("structure/quantifier", b, "quantifier q%d is shared with box %s", q.ID, owner.Label)
			}
			quantOwner[q] = b
			if prev, dup := quantIDs[q.ID]; dup && prev != q {
				r.add("structure/quantifier", b, "duplicate quantifier ID q%d", q.ID)
			}
			quantIDs[q.ID] = q
		}
	}
}

// checkShape verifies the per-kind structural invariants (the deprecated
// qgm.Validate rules, strengthened).
func (r *run) checkShape(b *qgm.Box) {
	switch b.Kind {
	case qgm.BaseTableBox:
		if b.Table == nil {
			r.add("structure/base", b, "base table box without table")
			return
		}
		if len(b.Quantifiers) > 0 || len(b.Preds) > 0 {
			r.add("structure/base", b, "base table box with children or predicates")
		}
		if len(b.Cols) != len(b.Table.Columns) {
			r.add("structure/base", b, "arity %d does not match table %s arity %d", len(b.Cols), b.Table.Name, len(b.Table.Columns))
		}
	case qgm.SelectBox:
		for _, c := range b.Cols {
			if c.Expr == nil {
				r.add("structure/select", b, "output %q has no expression", c.Name)
			}
		}
		if len(b.GroupBy) > 0 || len(b.GroupingSets) > 0 || b.Regroup {
			r.add("structure/select", b, "select box with grouping metadata")
		}
	case qgm.GroupByBox:
		if len(b.Quantifiers) != 1 || (len(b.Quantifiers) == 1 && b.Quantifiers[0].Kind != qgm.ForEach) {
			r.add("structure/groupby", b, "GROUP BY box must have exactly one ForEach child")
		}
		if len(b.Preds) > 0 {
			r.add("structure/groupby", b, "GROUP BY box with predicates")
		}
		seen := map[int]bool{}
		for _, col := range b.GroupBy {
			if col < 0 || col >= len(b.Cols) {
				r.add("structure/groupby", b, "grouping ordinal %d out of range (arity %d)", col, len(b.Cols))
				continue
			}
			if seen[col] {
				r.add("structure/groupby", b, "duplicate grouping ordinal %d", col)
			}
			seen[col] = true
			if _, ok := b.Cols[col].Expr.(*qgm.ColRef); !ok {
				r.add("structure/groupby", b, "grouping column %q is not a plain input reference", b.Cols[col].Name)
			}
		}
		for i, c := range b.Cols {
			if b.IsGroupCol(i) {
				continue
			}
			if _, ok := c.Expr.(*qgm.Agg); !ok {
				r.add("structure/groupby", b, "non-grouping output %q is not an aggregate", c.Name)
			}
		}
	default:
		r.add("structure/box", b, "unknown box kind %d", b.Kind)
	}
}

// checkBindings verifies column references and aggregate placement. A column
// reference must resolve — by pointer identity, not just ID — to a quantifier
// of the enclosing box; this catches clone bugs where an expression still
// references the original graph's quantifier carrying the same ID.
func (r *run) checkBindings(b *qgm.Box) {
	owned := map[*qgm.Quantifier]bool{}
	for _, q := range b.Quantifiers {
		owned[q] = true
		if q.Kind == qgm.Scalar && q.Box != nil && len(q.Box.Cols) != 1 {
			r.add("binding/scalar", b, "scalar quantifier q%d child %s has arity %d, want 1", q.ID, q.Box.Label, len(q.Box.Cols))
		}
	}

	checkRefs := func(where string, e qgm.Expr, aggOK bool) {
		qgm.WalkExpr(e, func(x qgm.Expr) bool {
			switch t := x.(type) {
			case *qgm.ColRef:
				if t.Q == nil {
					r.add("binding/resolve", b, "%s: unbound column reference", where)
					return false
				}
				if !owned[t.Q] {
					r.add("binding/resolve", b, "%s: reference to quantifier q%d not owned by this box", where, t.Q.ID)
					return false
				}
				if t.Q.Box == nil || t.Col < 0 || t.Col >= len(t.Q.Box.Cols) {
					arity := 0
					if t.Q.Box != nil {
						arity = len(t.Q.Box.Cols)
					}
					r.add("binding/resolve", b, "%s: column %d out of range for q%d (arity %d)", where, t.Col, t.Q.ID, arity)
					return false
				}
			case *qgm.Agg:
				if !aggOK {
					r.add("agg/placement", b, "%s: aggregate %s outside a GROUP BY output column", where, t.String())
					return false
				}
				r.checkAggNode(b, where, t)
				// Descend into the argument with aggregates now forbidden
				// (no nested aggregation).
				if t.Arg != nil {
					checkInner := t.Arg
					qgm.WalkExpr(checkInner, func(y qgm.Expr) bool {
						if _, nested := y.(*qgm.Agg); nested && y != t {
							r.add("agg/placement", b, "%s: nested aggregate", where)
							return false
						}
						return true
					})
				}
			}
			return true
		})
	}

	isGB := b.Kind == qgm.GroupByBox
	for i, c := range b.Cols {
		if c.Expr == nil {
			continue // base boxes; select-box nils already reported
		}
		aggOK := isGB && !b.IsGroupCol(i)
		checkRefs(fmt.Sprintf("output %q", c.Name), c.Expr, aggOK)
	}
	for i, p := range b.Preds {
		checkRefs(fmt.Sprintf("predicate %d", i), p, false)
	}
}

// checkAggNode verifies one aggregate application's well-formedness: a known
// operator, and COUNT(*) shape consistency (Arg nil iff Star, Star only on
// COUNT). AVG never survives qgm.Build (it is expanded to SUM/COUNT), so an
// "avg" node in a plan is always a construction bug.
func (r *run) checkAggNode(b *qgm.Box, where string, a *qgm.Agg) {
	switch a.Op {
	case "count", "sum", "min", "max":
	default:
		r.add("agg/op", b, "%s: unsupported aggregate operator %q", where, a.Op)
	}
	if a.Star {
		if a.Op != "count" {
			r.add("agg/op", b, "%s: %s(*) is not a valid aggregate", where, a.Op)
		}
		if a.Arg != nil {
			r.add("agg/op", b, "%s: star aggregate with an argument", where)
		}
	} else if a.Arg == nil {
		r.add("agg/op", b, "%s: aggregate %s without argument", where, a.Op)
	}
}

// checkGroupingSets verifies canonical grouping-set structure (§5): positions
// in range, each set strictly ascending (sorted, duplicate-free), sets
// deduplicated, and at least one set present on every GROUP BY box.
func (r *run) checkGroupingSets(b *qgm.Box) {
	if b.Kind != qgm.GroupByBox {
		return
	}
	if len(b.GroupingSets) == 0 {
		r.add("structure/groupby", b, "GROUP BY box without grouping sets")
		return
	}
	seen := map[string]bool{}
	for si, gs := range b.GroupingSets {
		for i, pos := range gs {
			if pos < 0 || pos >= len(b.GroupBy) {
				r.add("gsets/canonical", b, "set %d position %d out of range (%d grouping columns)", si, pos, len(b.GroupBy))
			}
			if i > 0 && gs[i-1] >= pos {
				r.add("gsets/canonical", b, "set %d is not strictly ascending at index %d", si, i)
			}
		}
		key := fmt.Sprint(gs)
		if seen[key] {
			r.add("gsets/canonical", b, "duplicate grouping set %v", gs)
		}
		seen[key] = true
	}
}

// compLabelRe identifies compensation boxes by the matcher's label scheme
// ("Sel-C12", "GB-C3"); query-built boxes end in "-Q" or carry base labels.
var compLabelRe = regexp.MustCompile(`-C[0-9]+$`)

// isCompBox reports whether the matcher created this box as compensation.
func isCompBox(b *qgm.Box) bool {
	return b != nil && compLabelRe.MatchString(b.Label)
}

// sortedOrdinals renders an int set for deterministic diagnostics.
func sortedOrdinals(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
