package qgmcheck

import (
	"repro/internal/qgm"
)

// Compensation post-conditions verify the boxes the matcher splices into a
// rewritten plan. They are pattern-level soundness conditions from the paper
// that the generic structural/type rules cannot express:
//
//   - comp/reagg: a regrouping GROUP BY box (§4.1.2 rules (a)–(g)) is a
//     second-stage combiner and may only re-aggregate with the valid
//     combinations of the paper's Table 1 — SUM over SUM, SUM over COUNT,
//     MIN over MIN, MAX over MAX; plain COUNT and AVG are never valid
//     combiners (COUNT re-aggregates as SUM of partial counts; AVG is
//     expanded before planning).
//   - comp/null-slice: a NULL-slicing predicate (§5.1) must discriminate
//     cuboids on the AST's grouping columns; testing an aggregate column for
//     NULL cannot identify a grouping set.
//   - comp/cuboid-pinned: every AST grouping column that some grouping set
//     drops (and therefore NULL-pads) must either be pinned by slicing
//     predicates or preserved in the compensation's output — otherwise rows
//     from different cuboids are conflated (§5.1/§5.2).
//   - comp/rejoin-key: when the regrouping was eliminated (§4.2.1, Example
//     2: NewQ7), each rejoined table must join on columns containing a
//     unique key, or the rejoin multiplies AST rows and corrupts the
//     pre-aggregated values.
//
// The definition-aware rules need Checker.ASTDefs to classify the
// materialized table's columns; without it only the Regroup-flag rules run.

// astDefInfo is the classification of one materialized AST table's columns,
// derived from its definition graph's root box.
type astDefInfo struct {
	gbRooted  bool
	group     map[int]bool // output ordinal → grouping column
	aggAt     map[int]*qgm.Agg
	droppable map[int]bool // grouping ordinals NULL-padded by some grouping set
	multi     bool         // more than one grouping set
}

func defInfo(def *qgm.Graph) *astDefInfo {
	if def == nil || def.Root == nil {
		return nil
	}
	// The builder places a renaming SELECT above the definition's GROUP BY;
	// unwrap it (and any further trivial wrappers) so the classification sees
	// the grouping structure. Each wrapper level remaps output ordinals
	// through its plain-ColRef columns.
	root := def.Root
	colOf := func(i int) int { return i } // materialized ordinal → root ordinal
	for root.Kind == qgm.SelectBox && !root.Distinct && len(root.Preds) == 0 &&
		len(root.Quantifiers) == 1 && root.Quantifiers[0].Kind == qgm.ForEach {
		inner := root.Quantifiers[0].Box
		wrap := root
		prev := colOf
		colOf = func(i int) int {
			j := prev(i)
			if j < 0 || j >= len(wrap.Cols) {
				return -1
			}
			cr, ok := wrap.Cols[j].Expr.(*qgm.ColRef)
			if !ok || cr.Q != wrap.Quantifiers[0] {
				return -1
			}
			return cr.Col
		}
		root = inner
	}
	info := &astDefInfo{
		group:     map[int]bool{},
		aggAt:     map[int]*qgm.Agg{},
		droppable: map[int]bool{},
	}
	if root.Kind != qgm.GroupByBox {
		return info
	}
	info.gbRooted = true
	info.multi = len(root.GroupingSets) > 1
	// Classify the GROUP BY's own columns first, then project the
	// classification through the wrappers onto materialized-table ordinals.
	group := map[int]bool{}
	droppable := map[int]bool{}
	for pos, col := range root.GroupBy {
		group[col] = true
		for _, gs := range root.GroupingSets {
			found := false
			for _, p := range gs {
				if p == pos {
					found = true
					break
				}
			}
			if !found {
				droppable[col] = true
				break
			}
		}
	}
	for i := range def.Root.Cols {
		j := colOf(i)
		if j < 0 || j >= len(root.Cols) {
			continue
		}
		if group[j] {
			info.group[i] = true
			if droppable[j] {
				info.droppable[i] = true
			}
			continue
		}
		if a, ok := root.Cols[j].Expr.(*qgm.Agg); ok {
			info.aggAt[i] = a
		}
	}
	return info
}

// checkCompensations runs the comp/* rules over every compensation box.
func (r *run) checkCompensations(g *qgm.Graph, boxes []*qgm.Box) {
	var parents map[int][]qgm.ParentEdge // built lazily; most plans have no comp boxes
	for _, b := range boxes {
		switch {
		case b.Kind == qgm.GroupByBox && b.Regroup:
			r.checkReagg(b)
		case b.Kind == qgm.SelectBox && isCompBox(b):
			if parents == nil {
				parents = g.Parents()
			}
			r.checkCompSelect(b, parents)
		}
	}
}

// astQuantifier resolves a quantifier to AST definition info when it reads a
// materialized AST table.
func (r *run) astQuantifier(q *qgm.Quantifier) *astDefInfo {
	if q == nil || q.Box == nil || q.Box.Kind != qgm.BaseTableBox || q.Box.Table == nil || r.defs == nil {
		return nil
	}
	def, ok := r.defs[q.Box.Table.Name]
	if !ok {
		return nil
	}
	return defInfo(def)
}

// checkReagg verifies a regrouping GROUP BY box's aggregates are valid
// second-stage combiners (Table 1).
func (r *run) checkReagg(b *qgm.Box) {
	if len(b.Quantifiers) != 1 {
		return // structure/groupby already reported
	}
	qS := b.Quantifiers[0]
	s := qS.Box

	for i, c := range b.Cols {
		if b.IsGroupCol(i) {
			continue
		}
		a, ok := c.Expr.(*qgm.Agg)
		if !ok {
			continue // structure/groupby already reported
		}
		where := "output " + c.Name
		switch a.Op {
		case "avg":
			r.add("comp/reagg", b, "%s: AVG is not a valid second-stage combiner (Table 1; AVG is expanded to SUM/COUNT before planning)", where)
			continue
		case "count":
			if !a.Distinct {
				r.add("comp/reagg", b, "%s: plain COUNT as a second-stage combiner; partial counts re-aggregate as SUM (Table 1 rule (a))", where)
				continue
			}
		case "sum", "min", "max":
		default:
			continue // agg/op already reported
		}

		// Definition-aware carrier classification: trace the aggregate's
		// argument through the bottom SELECT to the AST columns it reads.
		if s == nil || s.Kind != qgm.SelectBox {
			continue
		}
		ref, ok := a.Arg.(*qgm.ColRef)
		if !ok || ref.Q != qS || ref.Col < 0 || ref.Col >= len(s.Cols) {
			continue
		}
		arg := s.Cols[ref.Col].Expr
		for _, cr := range qgm.ColRefs(arg) {
			info := r.astQuantifier(cr.Q)
			if info == nil || !info.gbRooted {
				continue // rejoin/raw-row input: a first-stage source, always combinable
			}
			if info.group[cr.Col] {
				continue // grouping columns are row-constant per group: derivable
			}
			carrier := info.aggAt[cr.Col]
			if carrier == nil {
				continue
			}
			switch {
			case a.Op == "sum" && !a.Distinct:
				if carrier.Op == "min" || carrier.Op == "max" || carrier.Distinct {
					r.add("comp/reagg", b, "%s: SUM over %s carrier column %d (valid combiners: SUM over SUM, SUM over COUNT)", where, carrier.String(), cr.Col)
				}
			case a.Op == "min" || a.Op == "max":
				if carrier.Op != a.Op {
					r.add("comp/reagg", b, "%s: %s over %s carrier column %d (valid combiner: %s over %s)", where, a.Op, carrier.String(), cr.Col, a.Op, a.Op)
				}
			case a.Distinct: // COUNT/SUM DISTINCT derive from grouping columns only
				r.add("comp/reagg", b, "%s: DISTINCT re-aggregation over aggregate carrier column %d (must derive from grouping columns)", where, cr.Col)
			}
		}
	}
}

// checkCompSelect verifies the slicing and rejoin post-conditions of one
// compensation SELECT box.
func (r *run) checkCompSelect(s *qgm.Box, parents map[int][]qgm.ParentEdge) {
	for _, q := range s.Quantifiers {
		info := r.astQuantifier(q)
		if info == nil || !info.gbRooted {
			continue
		}
		if info.multi {
			r.checkNullSlices(s, q, info)
			r.checkCuboidPinned(s, q, info)
		}
		r.checkRejoinKeys(s, q, parents)
	}
}

// checkNullSlices verifies every IS [NOT] NULL test against a multi-cuboid
// AST targets one of its grouping columns (§5.1: slicing discriminates
// cuboids by the NULL-padding of grouping columns).
func (r *run) checkNullSlices(s *qgm.Box, q *qgm.Quantifier, info *astDefInfo) {
	for i, p := range s.Preds {
		qgm.WalkExpr(p, func(x qgm.Expr) bool {
			isn, ok := x.(*qgm.IsNull)
			if !ok {
				return true
			}
			if cr, ok := isn.E.(*qgm.ColRef); ok && cr.Q == q && !info.group[cr.Col] {
				r.add("comp/null-slice", s, "predicate %d: NULL test on non-grouping column %d of multi-cuboid AST %s", i, cr.Col, q.Box.Table.Name)
			}
			return true
		})
	}
}

// checkCuboidPinned verifies that every droppable grouping column of a
// multi-cuboid AST is accounted for: pinned by slicing predicates (IS NULL /
// IS NOT NULL in every disjunct of some conjunct) or preserved in the
// compensation's output (the all-cuboids-selected pass-through of §5.2).
func (r *run) checkCuboidPinned(s *qgm.Box, q *qgm.Quantifier, info *astDefInfo) {
	pinned := map[int]bool{}
	for _, p := range s.Preds {
		for _, conj := range qgm.SplitConjuncts(p) {
			disjuncts := splitDisjuncts(conj)
			var common map[int]bool
			for _, d := range disjuncts {
				cols := isNullTargets(d, q)
				if common == nil {
					common = cols
					continue
				}
				for col := range common {
					if !cols[col] {
						delete(common, col)
					}
				}
			}
			for col := range common {
				pinned[col] = true
			}
		}
	}
	projected := map[int]bool{}
	for _, c := range s.Cols {
		for _, cr := range qgm.ColRefs(c.Expr) {
			if cr.Q == q {
				projected[cr.Col] = true
			}
		}
	}
	var missing []int
	for col := range info.droppable {
		if !pinned[col] && !projected[col] {
			missing = append(missing, col)
		}
	}
	if len(missing) > 0 {
		set := map[int]bool{}
		for _, c := range missing {
			set[c] = true
		}
		r.add("comp/cuboid-pinned", s,
			"droppable grouping columns %v of multi-cuboid AST %s are neither pinned by slicing predicates nor preserved in the output (cuboids conflated)",
			sortedOrdinals(set), q.Box.Table.Name)
	}
}

// isNullTargets collects the AST columns a disjunct's conjuncts test with
// IS [NOT] NULL at the top level.
func isNullTargets(d qgm.Expr, q *qgm.Quantifier) map[int]bool {
	out := map[int]bool{}
	for _, conj := range qgm.SplitConjuncts(d) {
		if isn, ok := conj.(*qgm.IsNull); ok {
			if cr, ok := isn.E.(*qgm.ColRef); ok && cr.Q == q {
				out[cr.Col] = true
			}
		}
	}
	return out
}

// splitDisjuncts flattens a tree of OR nodes into its disjuncts.
func splitDisjuncts(e qgm.Expr) []qgm.Expr {
	if b, ok := e.(*qgm.Bin); ok && b.Op == "OR" {
		return append(splitDisjuncts(b.L), splitDisjuncts(b.R)...)
	}
	return []qgm.Expr{e}
}

// checkRejoinKeys verifies the §4.2.1 regroup-elimination condition: when no
// regrouping GROUP BY sits above the compensation SELECT, every rejoined
// table must join the AST on columns containing a unique key (1:N with the
// rejoin as the 1 side), or the join multiplies pre-aggregated rows.
func (r *run) checkRejoinKeys(s *qgm.Box, qAST *qgm.Quantifier, parents map[int][]qgm.ParentEdge) {
	var rejoins []*qgm.Quantifier
	for _, q := range s.Quantifiers {
		if q == qAST || q.Kind == qgm.Scalar {
			continue
		}
		if r.astQuantifier(q) != nil {
			continue // another AST input, not a rejoin of this one
		}
		rejoins = append(rejoins, q)
	}
	if len(rejoins) == 0 || hasCompGroupByAbove(s, parents) {
		return // regrouping absorbs join multiplicity
	}
	for _, q := range rejoins {
		if q.Box.Kind != qgm.BaseTableBox {
			r.add("comp/rejoin-key", s, "rejoin q%d is not a base table yet no regrouping compensates the join multiplicity", q.ID)
			continue
		}
		var keyCols []string
		for _, p := range s.Preds {
			b, ok := p.(*qgm.Bin)
			if !ok || b.Op != "=" {
				continue
			}
			l, lok := b.L.(*qgm.ColRef)
			rr, rok := b.R.(*qgm.ColRef)
			if !lok || !rok {
				continue
			}
			if l.Q == q && rr.Q != q {
				keyCols = append(keyCols, q.Box.Table.Columns[l.Col].Name)
			} else if rr.Q == q && l.Q != q {
				keyCols = append(keyCols, q.Box.Table.Columns[rr.Col].Name)
			}
		}
		if !q.Box.Table.HasUniqueKey(keyCols) {
			r.add("comp/rejoin-key", s, "rejoin of %s on columns %v without a unique key and without regrouping (§4.2.1: rejoins must be 1:N with the rejoin as the 1 side)", q.Box.Table.Name, keyCols)
		}
	}
}

// hasCompGroupByAbove reports whether a compensation GROUP BY box consumes s
// (directly or through other compensation boxes).
func hasCompGroupByAbove(s *qgm.Box, parents map[int][]qgm.ParentEdge) bool {
	seen := map[int]bool{}
	queue := []*qgm.Box{s}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, pe := range parents[b.ID] {
			p := pe.Parent
			if seen[p.ID] || !isCompBox(p) {
				continue
			}
			seen[p.ID] = true
			if p.Kind == qgm.GroupByBox {
				return true
			}
			queue = append(queue, p)
		}
	}
	return false
}
