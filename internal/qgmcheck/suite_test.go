package qgmcheck_test

// The soundness suite: every original and rewritten plan of the paper's
// q1–q12 figures and of the TPC-D-style DS suite must pass the full checker,
// across the documented option ablations (regrouping forced, leaf-first
// derivation, first-cuboid selection). This is the "oracle over every plan
// the engine ever builds" half of the static-verification layer; the
// seeded-mutation tests in qgmcheck_test.go are the other half.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/qgm"
	"repro/internal/qgmcheck"
	"repro/internal/workload"
)

// optionVariants are the matcher configurations the suite runs under; each
// changes the shape of the compensations the checker must accept.
var optionVariants = []struct {
	name string
	opts core.Options
}{
	{"default", core.Options{}},
	{"always-regroup", core.Options{AlwaysRegroup: true}},
	{"leaf-first", core.Options{LeafFirstDerivation: true}},
	{"first-cuboid", core.Options{FirstCuboid: true}},
}

// checkClean fails the test when the checker reports violations.
func checkClean(t *testing.T, ck *qgmcheck.Checker, g *qgm.Graph, what string) {
	t.Helper()
	if vs := ck.Check(g); len(vs) > 0 {
		t.Errorf("%s: %d violation(s):", what, len(vs))
		for _, v := range vs {
			t.Errorf("  %s", v)
		}
	}
}

func TestPaperSuitePlansSound(t *testing.T) {
	for _, variant := range optionVariants {
		t.Run(variant.name, func(t *testing.T) {
			env := bench.NewEnv(200, variant.opts)
			defs := map[string]*qgm.Graph{}
			compiled := map[string]*core.CompiledAST{}
			for name, sql := range bench.ASTDefs {
				ca := env.MustRegisterAST(name, sql)
				defs[name] = ca.Graph
				compiled[name] = ca
			}
			ck := &qgmcheck.Checker{ASTDefs: defs}

			for name, g := range defs {
				checkClean(t, ck, g, "AST "+name+" definition")
			}

			for _, p := range bench.Pairings() {
				g, err := qgm.BuildSQL(bench.Queries[p.Query], env.Cat)
				if err != nil {
					t.Fatalf("%s: build: %v", p.Query, err)
				}
				checkClean(t, ck, g, p.Query+" original")

				res := env.RW.Rewrite(g, compiled[p.AST])
				// Ablations legitimately reject some matches (that is what they
				// ablate); the paper's expectations hold for the defaults.
				if variant.name == "default" && p.WantMatch && res == nil {
					t.Errorf("%s vs %s: expected a rewrite (%s), got none", p.Query, p.AST, p.Figure)
					continue
				}
				if res != nil {
					checkClean(t, ck, g, p.Query+" rewritten against "+p.AST)
					if err := qgmcheck.Structural(g); err != nil {
						t.Errorf("%s rewritten: Structural: %v", p.Query, err)
					}
				}
			}
		})
	}
}

func TestDSSuitePlansSound(t *testing.T) {
	for _, variant := range optionVariants {
		t.Run(variant.name, func(t *testing.T) {
			env := bench.NewEnv(200, variant.opts)
			defs := map[string]*qgm.Graph{}
			var asts []*core.CompiledAST
			for _, a := range workload.DSASTs {
				ca := env.MustRegisterAST(a.Name, a.SQL)
				defs[a.Name] = ca.Graph
				asts = append(asts, ca)
			}
			ck := &qgmcheck.Checker{ASTDefs: defs}

			for name, g := range defs {
				checkClean(t, ck, g, "AST "+name+" definition")
			}

			for _, q := range workload.DSQueries {
				g, err := qgm.BuildSQL(q.SQL, env.Cat)
				if err != nil {
					t.Fatalf("%s: build: %v", q.Name, err)
				}
				checkClean(t, ck, g, q.Name+" original")

				// Route towards multiple ASTs (§7): check the plan after every
				// applied rewrite, not just the first.
				results := env.RW.RewriteAll(g, asts)
				if len(results) > 0 {
					checkClean(t, ck, g, q.Name+" rewritten")
				}
			}
		})
	}
}
