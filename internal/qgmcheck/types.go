package qgmcheck

import (
	"fmt"

	"repro/internal/qgm"
)

// Type rules delegate to qgm.TypeIssues — the same discipline qgm.Build
// enforces on incoming queries — so a violation here means the *matcher*
// assembled an ill-typed expression (a mis-derived compensation), not that a
// bad query slipped in. Each issue class maps to a "types/<class>" rule.

// checkTypes runs bottom-up type verification over one box's expressions.
// Column-reference kinds come from qgm's own inference (OutputType), so the
// rules compose across boxes without re-deriving schemas.
func (r *run) checkTypes(b *qgm.Box) {
	for _, c := range b.Cols {
		if c.Expr == nil {
			continue
		}
		r.checkExprTypes(b, fmt.Sprintf("output %q", c.Name), c.Expr)
	}
	for i, p := range b.Preds {
		where := fmt.Sprintf("predicate %d", i)
		r.checkExprTypes(b, where, p)
		if k, _ := qgm.InferType(p); !qgm.IsBoolKind(k) {
			r.add("types/pred", b, "%s: predicate has non-boolean type %v", where, k)
		}
	}
}

// checkExprTypes reports each definite type error in one expression under its
// classed rule name.
func (r *run) checkExprTypes(b *qgm.Box, where string, e qgm.Expr) {
	for _, iss := range qgm.TypeIssues(e) {
		r.add("types/"+iss.Class, b, "%s: %s", where, iss.Detail)
	}
}
