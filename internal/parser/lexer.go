// Package parser implements a lexer and recursive-descent parser for the SQL
// subset used by the paper: SELECT blocks with arbitrary scalar expressions,
// joins expressed in WHERE, aggregate functions (including DISTINCT
// arguments), HAVING, scalar subqueries, derived tables in FROM, and GROUP BY
// clauses containing plain expressions, ROLLUP, CUBE and GROUPING SETS.
package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokenKind classifies lexical tokens.
type TokenKind uint8

const (
	// TokEOF terminates the stream.
	TokEOF TokenKind = iota
	// TokIdent is an unquoted or quoted identifier (lowercased when unquoted).
	TokIdent
	// TokKeyword is a reserved word (uppercased).
	TokKeyword
	// TokNumber is an integer or decimal literal.
	TokNumber
	// TokString is a single-quoted string literal (quotes stripped).
	TokString
	// TokOp is an operator or punctuation token.
	TokOp
)

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokString:
		return "'" + t.Text + "'"
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"NULL": true, "IS": true, "IN": true, "BETWEEN": true, "DISTINCT": true,
	"ALL": true, "ROLLUP": true, "CUBE": true, "GROUPING": true, "SETS": true,
	"ORDER": true, "ASC": true, "DESC": true, "UNION": true, "DATE": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"EXISTS": true, "LIKE": true, "LIMIT": true, "TRUE": true, "FALSE": true,
}

type lexer struct {
	src  string
	pos  int
	toks []Token
}

// Lex tokenizes the input. Unquoted identifiers are folded to lower case and
// keywords to upper case, matching common SQL case-insensitivity.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.Kind == TokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (Token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	// Decode a full rune: treating bytes as runes would misread a stray
	// 0xEA as 'ê', admit it into an identifier, and produce a token that the
	// printer cannot round-trip.
	r, rlen := utf8.DecodeRuneInString(l.src[l.pos:])
	if r == utf8.RuneError && rlen == 1 {
		return Token{}, fmt.Errorf("parser: invalid UTF-8 byte %#02x at offset %d", c, start)
	}

	switch {
	case isIdentStart(r):
		l.pos += rlen
		for l.pos < len(l.src) {
			r2, n := utf8.DecodeRuneInString(l.src[l.pos:])
			if r2 == utf8.RuneError && n <= 1 {
				break
			}
			if !isIdentPart(r2) {
				break
			}
			l.pos += n
		}
		word := l.src[start:l.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return Token{Kind: TokKeyword, Text: upper, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: strings.ToLower(word), Pos: start}, nil

	case c >= '0' && c <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch >= '0' && ch <= '9' {
				l.pos++
				continue
			}
			if ch == '.' && !seenDot && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
				seenDot = true
				l.pos++
				continue
			}
			break
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil

	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("parser: unterminated string literal at offset %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}

	case c == '"':
		// Quoted identifier: preserved case.
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], '"')
		if end < 0 {
			return Token{}, fmt.Errorf("parser: unterminated quoted identifier at offset %d", start)
		}
		text := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil

	default:
		// Multi-char operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<>", "!=", "<=", ">=", "||":
			l.pos += 2
			if two == "!=" {
				two = "<>"
			}
			return Token{Kind: TokOp, Text: two, Pos: start}, nil
		}
		switch c {
		case '+', '-', '*', '/', '%', '(', ')', ',', '=', '<', '>', '.', ';':
			l.pos++
			return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("parser: unexpected character %q at offset %d", c, start)
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
