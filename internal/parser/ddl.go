package parser

import (
	"fmt"
	"strings"

	"repro/internal/sqltypes"
)

// Statement is any parsed SQL statement.
type Statement interface {
	Node
	isStatement()
}

func (*SelectStmt) isStatement()      {}
func (*LoadStmt) isStatement()        {}
func (*CreateTableStmt) isStatement() {}
func (*CreateASTStmt) isStatement()   {}
func (*InsertStmt) isStatement()      {}
func (*ExplainStmt) isStatement()     {}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name    string
	Type    sqltypes.Kind
	NotNull bool
}

// TableFK is an inline FOREIGN KEY clause.
type TableFK struct {
	Cols        []string
	ParentTable string
	ParentCols  []string
}

// CreateTableStmt is CREATE TABLE name (cols..., PRIMARY KEY(...), UNIQUE(...),
// FOREIGN KEY(...) REFERENCES parent(...)).
type CreateTableStmt struct {
	Name        string
	Columns     []ColumnDef
	PrimaryKey  []string
	Uniques     [][]string
	ForeignKeys []TableFK
}

// CreateASTStmt is CREATE SUMMARY TABLE name AS <select> — the DB2 syntax for
// Automatic Summary Tables.
type CreateASTStmt struct {
	Name  string
	Query *SelectStmt
}

// InsertStmt is INSERT INTO name VALUES (...), (...).
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

// ExplainStmt is EXPLAIN <select> (the CLI prints the rewrite instead of, or
// in addition to, executing) or EXPLAIN <delete|update> (the CLI prints the
// per-AST maintenance routing). Exactly one of Query and DML is set.
type ExplainStmt struct {
	Query *SelectStmt
	DML   Statement // *DeleteStmt or *UpdateStmt
}

// LoadStmt is LOAD TABLE name FROM 'path.csv' — a shell extension for bulk
// loading CSV files into a declared table.
type LoadStmt struct {
	Table string
	Path  string
}

// SQL renders the statement.
func (l *LoadStmt) SQL() string {
	return "LOAD TABLE " + l.Table + " FROM '" + l.Path + "'"
}

// SQL renders the statement.
func (c *CreateTableStmt) SQL() string {
	var parts []string
	for _, col := range c.Columns {
		s := col.Name + " " + typeName(col.Type)
		if col.NotNull {
			s += " NOT NULL"
		}
		parts = append(parts, s)
	}
	if len(c.PrimaryKey) > 0 {
		parts = append(parts, "PRIMARY KEY ("+strings.Join(c.PrimaryKey, ", ")+")")
	}
	for _, u := range c.Uniques {
		parts = append(parts, "UNIQUE ("+strings.Join(u, ", ")+")")
	}
	for _, fk := range c.ForeignKeys {
		parts = append(parts, "FOREIGN KEY ("+strings.Join(fk.Cols, ", ")+") REFERENCES "+
			fk.ParentTable+" ("+strings.Join(fk.ParentCols, ", ")+")")
	}
	return "CREATE TABLE " + c.Name + " (" + strings.Join(parts, ", ") + ")"
}

// SQL renders the statement.
func (c *CreateASTStmt) SQL() string {
	return "CREATE SUMMARY TABLE " + c.Name + " AS " + c.Query.SQL()
}

// SQL renders the statement.
func (i *InsertStmt) SQL() string {
	var rows []string
	for _, r := range i.Rows {
		cells := make([]string, len(r))
		for j, e := range r {
			cells[j] = e.SQL()
		}
		rows = append(rows, "("+strings.Join(cells, ", ")+")")
	}
	return "INSERT INTO " + i.Table + " VALUES " + strings.Join(rows, ", ")
}

// SQL renders the statement.
func (e *ExplainStmt) SQL() string {
	if e.DML != nil {
		return "EXPLAIN " + e.DML.SQL()
	}
	return "EXPLAIN " + e.Query.SQL()
}

func typeName(k sqltypes.Kind) string { return k.String() }

// ParseScript parses a sequence of ';'-separated statements (a trailing ';'
// is optional).
func ParseScript(src string) ([]Statement, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	var out []Statement
	for {
		for p.isOp(";") {
			p.advance()
		}
		if p.peek().Kind == TokEOF {
			return out, nil
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
		if p.peek().Kind != TokEOF {
			if err := p.expectOp(";"); err != nil {
				return nil, err
			}
		}
	}
}

// ParseStatement parses a single statement of any kind.
func ParseStatement(src string) (Statement, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("parser: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	switch {
	case t.Kind == TokKeyword && t.Text == "SELECT":
		return p.parseSelect()
	case t.Kind == TokIdent && t.Text == "create":
		return p.parseCreate()
	case t.Kind == TokIdent && t.Text == "insert":
		return p.parseInsert()
	case t.Kind == TokIdent && t.Text == "load":
		p.advance()
		if err := p.expectIdentWord("table"); err != nil {
			return nil, err
		}
		name, err := p.parseIdent("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("FROM"); err != nil {
			return nil, err
		}
		pathTok := p.peek()
		if pathTok.Kind != TokString {
			return nil, p.errf("expected quoted file path, got %s", pathTok)
		}
		p.advance()
		return &LoadStmt{Table: name, Path: pathTok.Text}, nil
	case t.Kind == TokIdent && t.Text == "delete":
		return p.parseDelete()
	case t.Kind == TokIdent && t.Text == "update":
		return p.parseUpdate()
	case t.Kind == TokIdent && t.Text == "explain":
		p.advance()
		if n := p.peek(); n.Kind == TokIdent && (n.Text == "delete" || n.Text == "update") {
			var dml Statement
			var err error
			if n.Text == "delete" {
				dml, err = p.parseDelete()
			} else {
				dml, err = p.parseUpdate()
			}
			if err != nil {
				return nil, err
			}
			return &ExplainStmt{DML: dml}, nil
		}
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: q}, nil
	default:
		return nil, p.errf("expected a statement, got %s", t)
	}
}

func (p *parser) expectIdentWord(word string) error {
	t := p.peek()
	if t.Kind == TokIdent && t.Text == word {
		p.advance()
		return nil
	}
	return p.errf("expected %s, got %s", strings.ToUpper(word), t)
}

func (p *parser) acceptIdentWord(word string) bool {
	t := p.peek()
	if t.Kind == TokIdent && t.Text == word {
		p.advance()
		return true
	}
	return false
}

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectIdentWord("create"); err != nil {
		return nil, err
	}
	if p.acceptIdentWord("summary") {
		if err := p.expectIdentWord("table"); err != nil {
			return nil, err
		}
		name, err := p.parseIdent("summary table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateASTStmt{Name: name, Query: q}, nil
	}
	if err := p.expectIdentWord("table"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Name: name}
	for {
		switch {
		case p.acceptIdentWord("primary"):
			if err := p.expectIdentWord("key"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			stmt.PrimaryKey = cols
		case p.acceptIdentWord("unique"):
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			stmt.Uniques = append(stmt.Uniques, cols)
		case p.acceptIdentWord("foreign"):
			if err := p.expectIdentWord("key"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			if err := p.expectIdentWord("references"); err != nil {
				return nil, err
			}
			parent, err := p.parseIdent("parent table")
			if err != nil {
				return nil, err
			}
			pcols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			stmt.ForeignKeys = append(stmt.ForeignKeys, TableFK{Cols: cols, ParentTable: parent, ParentCols: pcols})
		default:
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
		}
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.parseIdent("column name")
	if err != nil {
		return ColumnDef{}, err
	}
	typeTok := p.peek()
	var typeWord string
	switch {
	case typeTok.Kind == TokIdent:
		typeWord = typeTok.Text
		p.advance()
	case typeTok.Kind == TokKeyword && typeTok.Text == "DATE":
		typeWord = "date"
		p.advance()
	default:
		return ColumnDef{}, p.errf("expected column type, got %s", typeTok)
	}
	var kind sqltypes.Kind
	switch typeWord {
	case "int", "integer", "bigint", "smallint":
		kind = sqltypes.KindInt
	case "double", "float", "real", "decimal", "numeric":
		kind = sqltypes.KindFloat
	case "varchar", "char", "text", "string":
		kind = sqltypes.KindString
	case "boolean", "bool":
		kind = sqltypes.KindBool
	case "date":
		kind = sqltypes.KindDate
	default:
		return ColumnDef{}, p.errf("unknown column type %q", typeWord)
	}
	// Optional length, e.g. VARCHAR(32).
	if p.acceptOp("(") {
		if p.peek().Kind != TokNumber {
			return ColumnDef{}, p.errf("expected length, got %s", p.peek())
		}
		p.advance()
		if err := p.expectOp(")"); err != nil {
			return ColumnDef{}, err
		}
	}
	col := ColumnDef{Name: name, Type: kind}
	if p.acceptKeyword("NOT") {
		if err := p.expectKeyword("NULL"); err != nil {
			return ColumnDef{}, err
		}
		col.NotNull = true
	}
	return col, nil
}

func (p *parser) parseIdent(what string) (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		if t.Kind == TokKeyword && t.Text == "DATE" {
			p.advance()
			return "date", nil
		}
		return "", p.errf("expected %s, got %s", what, t)
	}
	p.advance()
	return t.Text, nil
}

func (p *parser) parseParenIdentList() ([]string, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := p.parseIdent("column name")
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectIdentWord("insert"); err != nil {
		return nil, err
	}
	if err := p.expectIdentWord("into"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectIdentWord("values"); err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return stmt, nil
}
