package parser

import "testing"

// FuzzParse asserts two robustness properties over arbitrary input:
//  1. Parse never panics — malformed SQL (e.g. a broken AST definition in the
//     catalog) must surface as an error the rewriter can skip, never crash
//     the process.
//  2. Round-trip stability — whatever parses must print to SQL that parses
//     back to the identical printed form, so stored AST definitions survive
//     a parse→print→store→parse cycle unchanged.
func FuzzParse(f *testing.F) {
	// Seeds: the paper's AST definitions and example queries, plus edge cases.
	for _, sql := range []string{
		`select faid, fpgid, flid, year(date) as year, count(*) as cnt,
			sum(qty * price * (1 - disc)) as revenue
			from trans group by faid, fpgid, flid, year(date)`,
		`select state, year(date) as y, count(*) as c from trans, loc
			where flid = lid group by state, year(date)`,
		`select flid, count(*) as cnt from trans where year(date) > 1990 group by flid`,
		`select country, sum(qty) as q from trans, loc where flid = lid
			and state = 'CA' group by country having sum(qty) > 10`,
		`select cname, age from cust where age between 20 and 30 order by cname`,
		`select a.tid, b.tid from trans a, trans b where a.faid = b.faid`,
		`select pgname from pgroup where pgname like 'foo%'`,
		`select faid from trans where faid in (1, 2, 3) and disc is not null`,
		`select count(distinct faid) as c from trans`,
		`select * from trans`,
		`select -1 + 2 * (3 - 4) as x from trans`,
		"", "select", "select from where", "select 'unterminated",
		"select ((((1))))", "group by",
	} {
		f.Add(sql)
	}

	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src) // must not panic
		if err != nil {
			return
		}
		printed := stmt.SQL()
		stmt2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed SQL does not re-parse: %v\ninput:   %q\nprinted: %q", err, src, printed)
		}
		if again := stmt2.SQL(); again != printed {
			t.Fatalf("print not stable:\nfirst:  %q\nsecond: %q", printed, again)
		}
	})
}
