package parser_test

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/parser"
	"repro/internal/qgm"
	"repro/internal/qgmcheck"
	"repro/internal/workload"
)

// FuzzParse asserts three robustness properties over arbitrary input:
//  1. Parse never panics — malformed SQL (e.g. a broken AST definition in the
//     catalog) must surface as an error the rewriter can skip, never crash
//     the process.
//  2. Round-trip stability — whatever parses must print to SQL that parses
//     back to the identical printed form, so stored AST definitions survive
//     a parse→print→store→parse cycle unchanged.
//  3. Built graphs are sound — whatever additionally builds into a QGM graph
//     against the paper schema must pass the full static checker
//     (internal/qgmcheck): the builder may reject input, but it must never
//     hand the rewriter an ill-typed or structurally broken graph.
func FuzzParse(f *testing.F) {
	// Seeds: the paper's AST definitions and example queries, plus edge cases.
	for _, sql := range []string{
		`select faid, fpgid, flid, year(date) as year, count(*) as cnt,
			sum(qty * price * (1 - disc)) as revenue
			from trans group by faid, fpgid, flid, year(date)`,
		`select state, year(date) as y, count(*) as c from trans, loc
			where flid = lid group by state, year(date)`,
		`select flid, count(*) as cnt from trans where year(date) > 1990 group by flid`,
		`select country, sum(qty) as q from trans, loc where flid = lid
			and state = 'CA' group by country having sum(qty) > 10`,
		`select cname, age from cust where age between 20 and 30 order by cname`,
		`select a.tid, b.tid from trans a, trans b where a.faid = b.faid`,
		`select pgname from pgroup where pgname like 'foo%'`,
		`select faid from trans where faid in (1, 2, 3) and disc is not null`,
		`select count(distinct faid) as c from trans`,
		`select * from trans`,
		`select -1 + 2 * (3 - 4) as x from trans`,
		`select flid, year(date) as year, count(*) as cnt from trans
			group by grouping sets((flid, year(date)), (year(date)))`,
		"", "select", "select from where", "select 'unterminated",
		"select ((((1))))", "group by",
	} {
		f.Add(sql)
	}

	// One fixed paper-schema catalog for the build oracle; building mutates
	// only the graph, never the catalog.
	cat := catalog.New()
	workload.Schema(cat)

	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := parser.Parse(src) // must not panic
		if err != nil {
			return
		}
		printed := stmt.SQL()
		stmt2, err := parser.Parse(printed)
		if err != nil {
			t.Fatalf("printed SQL does not re-parse: %v\ninput:   %q\nprinted: %q", err, src, printed)
		}
		if again := stmt2.SQL(); again != printed {
			t.Fatalf("print not stable:\nfirst:  %q\nsecond: %q", printed, again)
		}
		g, err := qgm.Build(stmt, cat)
		if err != nil {
			return // semantic rejection (unknown table/column, …) is fine
		}
		if vs := qgmcheck.Check(g); len(vs) > 0 {
			t.Fatalf("built graph fails the static checker for %q:\n%v", src, vs)
		}
	})
}
