package parser_test

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/parser"
	"repro/internal/qgm"
	"repro/internal/qgmcheck"
	"repro/internal/workload"
)

// FuzzParse asserts three robustness properties over arbitrary input:
//  1. Parse never panics — malformed SQL (e.g. a broken AST definition in the
//     catalog) must surface as an error the rewriter can skip, never crash
//     the process.
//  2. Round-trip stability — whatever parses must print to SQL that parses
//     back to the identical printed form, so stored AST definitions survive
//     a parse→print→store→parse cycle unchanged.
//  3. Built graphs are sound — whatever additionally builds into a QGM graph
//     against the paper schema must pass the full static checker
//     (internal/qgmcheck): the builder may reject input, but it must never
//     hand the rewriter an ill-typed or structurally broken graph. DML
//     statements (DELETE/UPDATE) go through their own builders, which must
//     likewise reject cleanly or succeed, never panic.
func FuzzParse(f *testing.F) {
	// Seeds: the paper's AST definitions and example queries, plus edge cases.
	for _, sql := range []string{
		`select faid, fpgid, flid, year(date) as year, count(*) as cnt,
			sum(qty * price * (1 - disc)) as revenue
			from trans group by faid, fpgid, flid, year(date)`,
		`select state, year(date) as y, count(*) as c from trans, loc
			where flid = lid group by state, year(date)`,
		`select flid, count(*) as cnt from trans where year(date) > 1990 group by flid`,
		`select country, sum(qty) as q from trans, loc where flid = lid
			and state = 'CA' group by country having sum(qty) > 10`,
		`select cname, age from cust where age between 20 and 30 order by cname`,
		`select a.tid, b.tid from trans a, trans b where a.faid = b.faid`,
		`select pgname from pgroup where pgname like 'foo%'`,
		`select faid from trans where faid in (1, 2, 3) and disc is not null`,
		`select count(distinct faid) as c from trans`,
		`select * from trans`,
		`select -1 + 2 * (3 - 4) as x from trans`,
		`select flid, year(date) as year, count(*) as cnt from trans
			group by grouping sets((flid, year(date)), (year(date)))`,
		"", "select", "select from where", "select 'unterminated",
		"select ((((1))))", "group by",
		// DML grammar coverage: WHERE-less forms, multi-assignment SET,
		// quoted identifiers, computed SET expressions, EXPLAIN routing.
		`delete from trans`,
		`delete from trans where qty = 3 and flid <= 40`,
		`delete from "Weird Table" where "a b" = 1`,
		`update trans set qty = 1`,
		`update trans set qty = qty + 1, price = price * 1.1 where tid <= 200`,
		`update loc set state = 'TX', country = 'USA' where lid = 7`,
		`update "Weird Table" set "a b" = null where "c d" is not null`,
		`explain delete from trans where fpgid = 3`,
		`explain update trans set flid = 5 where flid = 7`,
		"delete", "delete from", "update trans set", "update trans set qty",
	} {
		f.Add(sql)
	}

	// One fixed paper-schema catalog for the build oracle; building mutates
	// only the graph, never the catalog.
	cat := catalog.New()
	workload.Schema(cat)

	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := parser.ParseStatement(src) // must not panic
		if err != nil {
			return
		}
		printed := stmt.SQL()
		stmt2, err := parser.ParseStatement(printed)
		if err != nil {
			t.Fatalf("printed SQL does not re-parse: %v\ninput:   %q\nprinted: %q", err, src, printed)
		}
		if again := stmt2.SQL(); again != printed {
			t.Fatalf("print not stable:\nfirst:  %q\nsecond: %q", printed, again)
		}
		// Build oracle per statement kind; semantic rejection (unknown
		// table/column, …) is fine, a panic or an unsound graph is not.
		switch s := stmt.(type) {
		case *parser.SelectStmt:
			g, err := qgm.Build(s, cat)
			if err != nil {
				return
			}
			if vs := qgmcheck.Check(g); len(vs) > 0 {
				t.Fatalf("built graph fails the static checker for %q:\n%v", src, vs)
			}
		case *parser.DeleteStmt:
			_, _ = qgm.BuildDelete(s, cat)
		case *parser.UpdateStmt:
			_, _ = qgm.BuildUpdate(s, cat)
		case *parser.ExplainStmt:
			switch d := s.DML.(type) {
			case *parser.DeleteStmt:
				_, _ = qgm.BuildDelete(d, cat)
			case *parser.UpdateStmt:
				_, _ = qgm.BuildUpdate(d, cat)
			}
		}
	})
}
