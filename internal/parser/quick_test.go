package parser

// Property-based round-trip testing with testing/quick: random expression
// trees render to SQL that re-parses to an identical rendering, and random
// SELECT statements assembled from grammar pieces are fixpoints of
// parse∘render.

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sqltypes"
)

// genExpr builds a random expression of bounded depth.
func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return &Lit{Val: sqltypes.NewInt(int64(r.Intn(200) - 100))}
		case 1:
			return &Lit{Val: sqltypes.NewString(fmt.Sprintf("s%d", r.Intn(10)))}
		case 2:
			return &ColRef{Name: fmt.Sprintf("c%d", r.Intn(5))}
		default:
			return &ColRef{Qualifier: "t", Name: fmt.Sprintf("c%d", r.Intn(5))}
		}
	}
	switch r.Intn(8) {
	case 0:
		ops := []string{"+", "-", "*", "/", "%"}
		return &BinExpr{Op: ops[r.Intn(len(ops))], L: genExpr(r, depth-1), R: genExpr(r, depth-1)}
	case 1:
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		return &BinExpr{Op: ops[r.Intn(len(ops))], L: genExpr(r, depth-1), R: genExpr(r, depth-1)}
	case 2:
		ops := []string{"AND", "OR"}
		return &BinExpr{Op: ops[r.Intn(len(ops))], L: genExpr(r, depth-1), R: genExpr(r, depth-1)}
	case 3:
		return &UnaryExpr{Op: "NOT", E: genExpr(r, depth-1)}
	case 4:
		return &IsNullExpr{E: genExpr(r, depth-1), Not: r.Intn(2) == 0}
	case 5:
		return &BetweenExpr{E: genExpr(r, depth-1), Lo: genExpr(r, depth-1), Hi: genExpr(r, depth-1), Not: r.Intn(2) == 0}
	case 6:
		n := 1 + r.Intn(3)
		list := make([]Expr, n)
		for i := range list {
			list[i] = genExpr(r, 0)
		}
		return &InExpr{E: genExpr(r, depth-1), List: list, Not: r.Intn(2) == 0}
	default:
		fn := []string{"year", "month", "day"}[r.Intn(3)]
		return &FuncCall{Name: fn, Args: []Expr{genExpr(r, depth-1)}}
	}
}

func TestQuickExprRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 400,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(genExpr(r, 3).SQL())
		},
	}
	f := func(sql string) bool {
		e1, err := ParseExpr(sql)
		if err != nil {
			t.Logf("failed to parse own rendering %q: %v", sql, err)
			return false
		}
		sql2 := e1.SQL()
		if sql != sql2 {
			t.Logf("not a fixpoint:\n  %s\n  %s", sql, sql2)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSelectRoundTrip(t *testing.T) {
	genSelect := func(r *rand.Rand) string {
		var sb strings.Builder
		sb.WriteString("SELECT ")
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(genExpr(r, 2).SQL())
			if r.Intn(2) == 0 {
				fmt.Fprintf(&sb, " AS a%d", i)
			}
		}
		sb.WriteString(" FROM t")
		if r.Intn(3) == 0 {
			sb.WriteString(", u AS uu")
		}
		if r.Intn(2) == 0 {
			sb.WriteString(" WHERE " + genExpr(r, 2).SQL())
		}
		if r.Intn(2) == 0 {
			sb.WriteString(" GROUP BY c0")
			if r.Intn(3) == 0 {
				sb.WriteString(" HAVING count(*) > 1")
			}
		}
		return sb.String()
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(genSelect(r))
		},
	}
	f := func(sql string) bool {
		s1, err := Parse(sql)
		if err != nil {
			t.Logf("parse %q: %v", sql, err)
			return false
		}
		r1 := s1.SQL()
		s2, err := Parse(r1)
		if err != nil {
			t.Logf("re-parse %q: %v", r1, err)
			return false
		}
		return s2.SQL() == r1
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
