package parser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sqltypes"
)

// Parse parses a single SELECT statement (optionally terminated by ';').
func Parse(src string) (*SelectStmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokOp && p.peek().Text == ";" {
		p.advance()
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errf("unexpected trailing token %s", p.peek())
	}
	return stmt, nil
}

// MustParse is Parse that panics on error; for tests and built-in workloads.
func MustParse(src string) *SelectStmt {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseExpr parses a standalone scalar expression (used by tests and the CLI).
func ParseExpr(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errf("unexpected trailing token %s", p.peek())
	}
	return e, nil
}

type parser struct {
	src  string
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) peek2() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	pos := p.peek().Pos
	line := 1
	for _, c := range p.src[:min(pos, len(p.src))] {
		if c == '\n' {
			line++
		}
	}
	return fmt.Errorf("parser: line %d (offset %d): %s", line, pos, fmt.Sprintf(format, args...))
}

func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *parser) isOp(op string) bool {
	t := p.peek()
	return t.Kind == TokOp && t.Text == op
}

func (p *parser) acceptOp(op string) bool {
	if p.isOp(op) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, got %s", op, p.peek())
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	if p.acceptKeyword("DISTINCT") {
		stmt.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}

	// Select list.
	for {
		if p.isOp("*") {
			p.advance()
			stmt.Items = append(stmt.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				t := p.peek()
				if t.Kind != TokIdent {
					return nil, p.errf("expected alias after AS, got %s", t)
				}
				item.Alias = p.advance().Text
			} else if p.peek().Kind == TokIdent {
				item.Alias = p.advance().Text
			}
			stmt.Items = append(stmt.Items, item)
		}
		if !p.acceptOp(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if !p.acceptOp(",") {
			break
		}
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}

	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseGroupingElem()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if !p.acceptOp(",") {
				break
			}
		}
	}

	if p.acceptKeyword("HAVING") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}

	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}

	return stmt, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	var ref TableRef
	if p.acceptOp("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return ref, err
		}
		if err := p.expectOp(")"); err != nil {
			return ref, err
		}
		ref.Subquery = sub
	} else {
		t := p.peek()
		if t.Kind != TokIdent {
			return ref, p.errf("expected table name, got %s", t)
		}
		ref.Table = p.advance().Text
	}
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.Kind != TokIdent {
			return ref, p.errf("expected alias after AS, got %s", t)
		}
		ref.Alias = p.advance().Text
	} else if p.peek().Kind == TokIdent {
		ref.Alias = p.advance().Text
	}
	if ref.Alias == "" {
		ref.Alias = ref.Table
	}
	return ref, nil
}

func (p *parser) parseGroupingElem() (GroupingElem, error) {
	if p.isKeyword("ROLLUP") || p.isKeyword("CUBE") {
		kind := GroupRollup
		if p.peek().Text == "CUBE" {
			kind = GroupCube
		}
		p.advance()
		if err := p.expectOp("("); err != nil {
			return GroupingElem{}, err
		}
		var exprs []Expr
		for {
			e, err := p.parseOr()
			if err != nil {
				return GroupingElem{}, err
			}
			exprs = append(exprs, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return GroupingElem{}, err
		}
		return GroupingElem{Kind: kind, Exprs: exprs}, nil
	}
	if p.isKeyword("GROUPING") {
		// Could be GROUPING SETS(...) — GROUPING(x) the scalar function is not
		// in this subset.
		p.advance()
		if err := p.expectKeyword("SETS"); err != nil {
			return GroupingElem{}, err
		}
		if err := p.expectOp("("); err != nil {
			return GroupingElem{}, err
		}
		var sets [][]Expr
		for {
			set, err := p.parseGroupingSet()
			if err != nil {
				return GroupingElem{}, err
			}
			sets = append(sets, set)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return GroupingElem{}, err
		}
		return GroupingElem{Kind: GroupSets, Sets: sets}, nil
	}
	e, err := p.parseOr()
	if err != nil {
		return GroupingElem{}, err
	}
	return GroupingElem{Kind: GroupExpr, Exprs: []Expr{e}}, nil
}

// parseGroupingSet parses one element of GROUPING SETS: either a single
// expression, () (the grand total), or a parenthesized expression list.
func (p *parser) parseGroupingSet() ([]Expr, error) {
	if p.acceptOp("(") {
		if p.acceptOp(")") {
			return []Expr{}, nil // grand total ()
		}
		var set []Expr
		for {
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			set = append(set, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return set, nil
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	return []Expr{e}, nil
}

// Expression grammar, lowest to highest precedence:
//   OR, AND, NOT, comparison/IS/BETWEEN/IN, additive, multiplicative, unary, primary.

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Not: not}, nil
	}
	// [NOT] BETWEEN / IN
	not := false
	if p.isKeyword("NOT") && (p.peek2().Text == "BETWEEN" || p.peek2().Text == "IN" || p.peek2().Text == "LIKE") {
		p.advance()
		not = true
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Not: not}, nil
	}
	if p.acceptKeyword("LIKE") {
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		like := &LikeExpr{E: l, Pattern: pat, Not: not}
		return like, nil
	}
	if p.acceptKeyword("IN") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Not: not}, nil
	}
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.isOp(op) {
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isOp("+"):
			op = "+"
		case p.isOp("-"):
			op = "-"
		case p.isOp("||"):
			op = "||"
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isOp("*"):
			op = "*"
		case p.isOp("/"):
			op = "/"
		case p.isOp("%"):
			op = "%"
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation into numeric literals immediately.
		if lit, ok := e.(*Lit); ok && lit.Val.IsNumeric() {
			nv, err := sqltypes.Neg(lit.Val)
			if err == nil {
				return &Lit{Val: nv}, nil
			}
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	p.acceptOp("+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.advance()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad numeric literal %q: %v", t.Text, err)
			}
			return &Lit{Val: sqltypes.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q: %v", t.Text, err)
		}
		return &Lit{Val: sqltypes.NewInt(i)}, nil

	case t.Kind == TokString:
		p.advance()
		return &Lit{Val: sqltypes.NewString(t.Text)}, nil

	case t.Kind == TokKeyword && t.Text == "NULL":
		p.advance()
		return &Lit{Val: sqltypes.Null}, nil

	case t.Kind == TokKeyword && (t.Text == "TRUE" || t.Text == "FALSE"):
		p.advance()
		return &Lit{Val: sqltypes.NewBool(t.Text == "TRUE")}, nil

	case t.Kind == TokKeyword && t.Text == "DATE":
		// DATE 'yyyy-mm-dd' literal — but only when followed by a string;
		// otherwise `date` is an ordinary column name (the paper's Trans
		// table has a date column).
		if p.peek2().Kind == TokString {
			p.advance()
			st := p.advance()
			v, err := sqltypes.ParseDate(st.Text)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			return &Lit{Val: v}, nil
		}
		p.advance()
		if p.isOp(".") {
			p.advance()
			c := p.peek()
			if c.Kind != TokIdent && !(c.Kind == TokKeyword && c.Text == "DATE") {
				return nil, p.errf("expected column name after date., got %s", c)
			}
			p.advance()
			return &ColRef{Qualifier: "date", Name: strings.ToLower(c.Text)}, nil
		}
		return &ColRef{Name: "date"}, nil

	case t.Kind == TokKeyword && t.Text == "CASE":
		return p.parseCase()

	case t.Kind == TokOp && t.Text == "(":
		p.advance()
		if p.isKeyword("SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Query: sub}, nil
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.Kind == TokIdent:
		p.advance()
		// Function call?
		if p.isOp("(") {
			p.advance()
			f := &FuncCall{Name: t.Text}
			if p.acceptOp("*") {
				f.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return f, nil
			}
			if p.acceptKeyword("DISTINCT") {
				f.Distinct = true
			} else {
				p.acceptKeyword("ALL")
			}
			if !p.isOp(")") {
				for {
					arg, err := p.parseOr()
					if err != nil {
						return nil, err
					}
					f.Args = append(f.Args, arg)
					if !p.acceptOp(",") {
						break
					}
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return f, nil
		}
		// Qualified column?
		if p.isOp(".") {
			p.advance()
			c := p.peek()
			if c.Kind != TokIdent && !(c.Kind == TokKeyword && c.Text == "DATE") {
				return nil, p.errf("expected column name after %q., got %s", t.Text, c)
			}
			p.advance()
			return &ColRef{Qualifier: t.Text, Name: strings.ToLower(c.Text)}, nil
		}
		return &ColRef{Name: t.Text}, nil
	}
	return nil, p.errf("unexpected token %s in expression", t)
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
