package parser

import "strings"

// DeleteStmt is DELETE FROM table [WHERE pred]. A missing WHERE deletes every
// row.
type DeleteStmt struct {
	Table string
	Where Expr // nil = unconditional
}

// UpdateSet is one column assignment of an UPDATE.
type UpdateSet struct {
	Col  string
	Expr Expr
}

// UpdateStmt is UPDATE table SET col = expr [, ...] [WHERE pred]. Assignment
// expressions may reference the row's current column values.
type UpdateStmt struct {
	Table string
	Sets  []UpdateSet
	Where Expr // nil = every row
}

func (*DeleteStmt) isStatement() {}
func (*UpdateStmt) isStatement() {}

// SQL renders the statement.
func (d *DeleteStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("DELETE FROM " + quoteIdent(d.Table))
	if d.Where != nil {
		sb.WriteString(" WHERE " + d.Where.SQL())
	}
	return sb.String()
}

// SQL renders the statement.
func (u *UpdateStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("UPDATE " + quoteIdent(u.Table) + " SET ")
	for i, s := range u.Sets {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(quoteIdent(s.Col) + " = " + s.Expr.SQL())
	}
	if u.Where != nil {
		sb.WriteString(" WHERE " + u.Where.SQL())
	}
	return sb.String()
}

// parseDelete parses DELETE FROM table [WHERE pred].
func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectIdentWord("delete"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

// parseUpdate parses UPDATE table SET col = expr [, ...] [WHERE pred]. SET is
// an identifier word (like the statement verbs), not a lexer keyword, so
// columns named "set" stay usable elsewhere.
func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectIdentWord("update"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectIdentWord("set"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: name}
	for {
		col, err := p.parseIdent("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, UpdateSet{Col: col, Expr: e})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}
