package parser

import (
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, b2 FROM t WHERE x >= 10.5 AND name = 'O''Hara' -- comment\n;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a", ",", "b2", "FROM", "t", "WHERE", "x", ">=", "10.5", "AND", "name", "=", "O'Hara", ";", ""}
	if len(texts) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(texts), len(want), texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[0] != TokKeyword || kinds[1] != TokIdent || kinds[9] != TokNumber || kinds[13] != TokString {
		t.Errorf("kinds wrong: %v", kinds)
	}
}

func TestLexCaseFolding(t *testing.T) {
	toks, _ := Lex("SeLeCt FooBar")
	if toks[0].Text != "SELECT" || toks[1].Text != "foobar" {
		t.Fatalf("folding wrong: %v %v", toks[0], toks[1])
	}
}

func TestLexQuotedIdent(t *testing.T) {
	toks, err := Lex(`"MixedCase"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokIdent || toks[0].Text != "MixedCase" {
		t.Fatalf("quoted ident: %v", toks[0])
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "a @ b"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexNotEqualsAlias(t *testing.T) {
	toks, _ := Lex("a != b")
	if toks[1].Text != "<>" {
		t.Fatalf("!= should normalize to <>, got %q", toks[1].Text)
	}
}

func TestParseSimpleSelect(t *testing.T) {
	s := MustParse("select a, b as bb, a+1 from t where a > 1")
	if len(s.Items) != 3 || s.Items[1].Alias != "bb" {
		t.Fatalf("items: %+v", s.Items)
	}
	if len(s.From) != 1 || s.From[0].Table != "t" {
		t.Fatalf("from: %+v", s.From)
	}
	if s.Where == nil {
		t.Fatal("missing where")
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	b := e.(*BinExpr)
	if b.Op != "+" {
		t.Fatalf("top op = %s", b.Op)
	}
	if inner := b.R.(*BinExpr); inner.Op != "*" {
		t.Fatalf("* must bind tighter: %s", e.SQL())
	}

	e, _ = ParseExpr("a or b and c")
	if e.(*BinExpr).Op != "OR" {
		t.Fatalf("AND must bind tighter than OR: %s", e.SQL())
	}
	e, _ = ParseExpr("not a = b")
	if _, ok := e.(*UnaryExpr); !ok {
		t.Fatalf("NOT applies to comparison: %s", e.SQL())
	}
}

func TestParseComparisonChainRejected(t *testing.T) {
	if _, err := ParseExpr("a < b < c"); err == nil {
		t.Fatal("comparison chains are not SQL")
	}
}

func TestParseLiterals(t *testing.T) {
	cases := map[string]sqltypes.Value{
		"42":                sqltypes.NewInt(42),
		"-7":                sqltypes.NewInt(-7),
		"2.5":               sqltypes.NewFloat(2.5),
		"'hi'":              sqltypes.NewString("hi"),
		"NULL":              sqltypes.Null,
		"TRUE":              sqltypes.NewBool(true),
		"DATE '1991-04-12'": sqltypes.NewDate(1991, 4, 12),
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
			continue
		}
		lit, ok := e.(*Lit)
		if !ok {
			t.Errorf("ParseExpr(%q) = %T, want literal", src, e)
			continue
		}
		if !sqltypes.Identical(lit.Val, want) && !(lit.Val.IsNull() && want.IsNull()) {
			t.Errorf("ParseExpr(%q) = %v, want %v", src, lit.Val, want)
		}
	}
}

func TestDateAsColumnName(t *testing.T) {
	s := MustParse("select year(date), t.date from trans t where date > DATE '1990-01-01'")
	if len(s.Items) != 2 {
		t.Fatal("want two items")
	}
	fc := s.Items[0].Expr.(*FuncCall)
	if c, ok := fc.Args[0].(*ColRef); !ok || c.Name != "date" {
		t.Fatalf("year(date) arg: %v", fc.Args[0])
	}
	if c := s.Items[1].Expr.(*ColRef); c.Qualifier != "t" || c.Name != "date" {
		t.Fatalf("qualified date: %+v", c)
	}
}

func TestParseAggregates(t *testing.T) {
	s := MustParse("select count(*), count(distinct x), sum(x*y), min(x), avg(x) from t group by z")
	fc := s.Items[0].Expr.(*FuncCall)
	if !fc.Star || fc.Name != "count" {
		t.Fatalf("count(*): %+v", fc)
	}
	fc = s.Items[1].Expr.(*FuncCall)
	if !fc.Distinct {
		t.Fatalf("count(distinct): %+v", fc)
	}
}

func TestParseGroupingVariants(t *testing.T) {
	s := MustParse("select a, count(*) from t group by rollup(a, b), c")
	if len(s.GroupBy) != 2 {
		t.Fatalf("grouping elems: %d", len(s.GroupBy))
	}
	if s.GroupBy[0].Kind != GroupRollup || len(s.GroupBy[0].Exprs) != 2 {
		t.Fatalf("rollup: %+v", s.GroupBy[0])
	}
	if s.GroupBy[1].Kind != GroupExpr {
		t.Fatalf("plain: %+v", s.GroupBy[1])
	}

	s = MustParse("select a, count(*) from t group by cube(a, b)")
	if s.GroupBy[0].Kind != GroupCube {
		t.Fatal("cube")
	}

	s = MustParse("select a, count(*) from t group by grouping sets((a, b), (a), b, ())")
	gs := s.GroupBy[0]
	if gs.Kind != GroupSets || len(gs.Sets) != 4 {
		t.Fatalf("grouping sets: %+v", gs)
	}
	if len(gs.Sets[0]) != 2 || len(gs.Sets[2]) != 1 || len(gs.Sets[3]) != 0 {
		t.Fatalf("set arities: %+v", gs.Sets)
	}
}

func TestParseSubqueries(t *testing.T) {
	s := MustParse(`select a, (select count(*) from u) as n
		from (select x as a from v) d
		where a > (select min(x) from v)`)
	if _, ok := s.Items[1].Expr.(*SubqueryExpr); !ok {
		t.Fatal("scalar subquery in select list")
	}
	if s.From[0].Subquery == nil || s.From[0].Alias != "d" {
		t.Fatalf("derived table: %+v", s.From[0])
	}
	cmp := s.Where.(*BinExpr)
	if _, ok := cmp.R.(*SubqueryExpr); !ok {
		t.Fatal("scalar subquery in where")
	}
}

func TestParseBetweenInIsNull(t *testing.T) {
	s := MustParse(`select a from t
		where a between 1 and 10 and b in (1, 2, 3)
		and c is not null and d not between 5 and 6 and e not in (9)`)
	sql := s.SQL()
	for _, want := range []string{"BETWEEN", "IN (1, 2, 3)", "IS NOT NULL", "NOT BETWEEN", "NOT IN (9)"} {
		if !strings.Contains(sql, want) {
			t.Errorf("round-trip missing %q: %s", want, sql)
		}
	}
}

func TestParseCase(t *testing.T) {
	e, err := ParseExpr("case when a > 1 then 'big' when a = 1 then 'one' else 'small' end")
	if err != nil {
		t.Fatal(err)
	}
	c := e.(*CaseExpr)
	if len(c.Whens) != 2 || c.Else == nil {
		t.Fatalf("case: %+v", c)
	}
	if _, err := ParseExpr("case else 1 end"); err == nil {
		t.Fatal("CASE without WHEN should fail")
	}
}

func TestParseOrderBy(t *testing.T) {
	s := MustParse("select a from t order by a desc, b")
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Fatalf("order by: %+v", s.OrderBy)
	}
}

func TestParseDistinct(t *testing.T) {
	if !MustParse("select distinct a from t").Distinct {
		t.Fatal("distinct flag")
	}
	if MustParse("select all a from t").Distinct {
		t.Fatal("ALL is not DISTINCT")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select a",
		"select a from",
		"select a from t where",
		"select a from t group by",
		"select a from t trailing_ident extra",
		"select a from t; select b from u", // Parse (single) rejects two
		"select (select a from t from u",
		"select a from t group by rollup(a",
		"select f(a,) from t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// Round-trip property: parse → SQL → parse → SQL is a fixpoint.
func TestRoundTripFixpoint(t *testing.T) {
	queries := []string{
		"select a, b as c from t where a > 1 and b < 2",
		"select count(*) as cnt from t group by a having count(*) > 10",
		"select year(date) as y, sum(q * p * (1 - d)) as v from t group by year(date)",
		"select a from t group by grouping sets((a, b), (a), ())",
		"select distinct a from t, u where t.x = u.y order by a desc",
		"select (select count(*) from u) as n from t",
		"select x from (select a as x from t) d where x in (1, 2)",
	}
	for _, q := range queries {
		s1, err := Parse(q)
		if err != nil {
			t.Errorf("parse %q: %v", q, err)
			continue
		}
		sql1 := s1.SQL()
		s2, err := Parse(sql1)
		if err != nil {
			t.Errorf("re-parse %q: %v", sql1, err)
			continue
		}
		if sql2 := s2.SQL(); sql1 != sql2 {
			t.Errorf("not a fixpoint:\n  %s\n  %s", sql1, sql2)
		}
	}
}

func TestParseScriptAndDDL(t *testing.T) {
	stmts, err := ParseScript(`
		create table t (a int not null, b varchar(10), d date,
		                primary key(a), unique(b),
		                foreign key (b) references u (k));
		create summary table s as select a, count(*) as c from t group by a;
		insert into t values (1, 'x', '1990-01-01'), (2, NULL, NULL);
		explain select a from t;
		select a from t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 5 {
		t.Fatalf("want 5 statements, got %d", len(stmts))
	}
	ct := stmts[0].(*CreateTableStmt)
	if ct.Name != "t" || len(ct.Columns) != 3 || !ct.Columns[0].NotNull || ct.Columns[1].NotNull {
		t.Fatalf("create table: %+v", ct)
	}
	if ct.Columns[2].Type != sqltypes.KindDate {
		t.Fatalf("date column type: %v", ct.Columns[2].Type)
	}
	if len(ct.PrimaryKey) != 1 || len(ct.Uniques) != 1 || len(ct.ForeignKeys) != 1 {
		t.Fatalf("constraints: %+v", ct)
	}
	if ct.ForeignKeys[0].ParentTable != "u" {
		t.Fatalf("fk: %+v", ct.ForeignKeys[0])
	}
	ca := stmts[1].(*CreateASTStmt)
	if ca.Name != "s" || ca.Query == nil {
		t.Fatalf("create summary table: %+v", ca)
	}
	ins := stmts[2].(*InsertStmt)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("insert: %+v", ins)
	}
	if _, ok := stmts[3].(*ExplainStmt); !ok {
		t.Fatal("explain")
	}
	if _, ok := stmts[4].(*SelectStmt); !ok {
		t.Fatal("select")
	}
}

func TestDDLSQLRendering(t *testing.T) {
	stmts, err := ParseScript(`create table t (a int not null, primary key(a))`)
	if err != nil {
		t.Fatal(err)
	}
	sql := stmts[0].SQL()
	if !strings.Contains(sql, "CREATE TABLE t") || !strings.Contains(sql, "PRIMARY KEY (a)") {
		t.Fatalf("rendering: %s", sql)
	}
	// Re-parse the rendering.
	if _, err := ParseScript(sql); err != nil {
		t.Fatalf("re-parse %q: %v", sql, err)
	}
}

func TestDDLErrors(t *testing.T) {
	bad := []string{
		"create table t (a unknowntype)",
		"create table t (a int",
		"create summary table s select a from t", // missing AS
		"insert into t (1)",                      // missing VALUES
		"insert into t values (a)",               // non-literal caught later, parser allows exprs
		"create view v as select 1 from t",       // unsupported verb
	}
	for _, src := range bad[:4] {
		if _, err := ParseScript(src); err == nil {
			t.Errorf("ParseScript(%q) should fail", src)
		}
	}
	if _, err := ParseScript(bad[5]); err == nil {
		t.Errorf("ParseScript(%q) should fail", bad[5])
	}
}

func TestParseLikeAndConcat(t *testing.T) {
	s := MustParse("select a || '-' || b as ab from t where a like 'x%' and b not like '_y'")
	sql := s.SQL()
	for _, want := range []string{"||", "LIKE 'x%'", "NOT LIKE '_y'"} {
		if !strings.Contains(sql, want) {
			t.Errorf("round-trip missing %q: %s", want, sql)
		}
	}
	// || binds like addition: tighter than comparison.
	e, err := ParseExpr("a || b = c")
	if err != nil {
		t.Fatal(err)
	}
	cmp := e.(*BinExpr)
	if cmp.Op != "=" {
		t.Fatalf("comparison should be top: %s", e.SQL())
	}
	if inner := cmp.L.(*BinExpr); inner.Op != "||" {
		t.Fatalf("|| should bind tighter: %s", e.SQL())
	}
}

func TestParseLoadStatement(t *testing.T) {
	stmts, err := ParseScript("load table t from '/tmp/x.csv'; select a from t")
	if err != nil {
		t.Fatal(err)
	}
	ld := stmts[0].(*LoadStmt)
	if ld.Table != "t" || ld.Path != "/tmp/x.csv" {
		t.Fatalf("load: %+v", ld)
	}
	if ld.SQL() != "LOAD TABLE t FROM '/tmp/x.csv'" {
		t.Fatalf("render: %s", ld.SQL())
	}
	if _, err := ParseScript("load table t from 42"); err == nil {
		t.Fatal("unquoted path accepted")
	}
}
