package parser

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/sqltypes"
)

// Node is implemented by all parse-tree nodes.
type Node interface {
	// SQL renders the node back to SQL text (used in error messages, the CLI,
	// and round-trip tests).
	SQL() string
}

// Expr is a scalar expression parse node.
type Expr interface {
	Node
	isExpr()
}

// SelectStmt is a single SELECT block.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []GroupingElem
	Having   Expr
	OrderBy  []OrderItem
}

// SelectItem is one element of the select list.
type SelectItem struct {
	Expr  Expr
	Alias string // "" when unaliased
	Star  bool   // SELECT * (Expr nil)
}

// OrderItem is one element of ORDER BY (kept for CLI convenience; ordering is
// irrelevant to matching and ignored by the rewriter).
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableRef is a FROM-list element: either a named table or a derived table.
type TableRef struct {
	Table    string      // base table or view/AST name
	Subquery *SelectStmt // non-nil for derived tables
	Alias    string
}

// GroupingElemKind distinguishes plain expressions from supergroup functions.
type GroupingElemKind uint8

const (
	// GroupExpr is a plain grouping expression.
	GroupExpr GroupingElemKind = iota
	// GroupRollup is ROLLUP(e1, ..., en).
	GroupRollup
	// GroupCube is CUBE(e1, ..., en).
	GroupCube
	// GroupSets is GROUPING SETS((..), (..), ...).
	GroupSets
)

// GroupingElem is one element of a GROUP BY clause. For GroupExpr, Exprs has
// exactly one entry. For GroupRollup/GroupCube, Exprs are the arguments. For
// GroupSets, Sets holds each parenthesized grouping set.
type GroupingElem struct {
	Kind  GroupingElemKind
	Exprs []Expr
	Sets  [][]Expr
}

// --- expression nodes ---

// ColRef is a possibly-qualified column reference.
type ColRef struct {
	Qualifier string // table name or alias; "" if unqualified
	Name      string
}

// Lit is a literal constant.
type Lit struct {
	Val sqltypes.Value
}

// BinExpr is a binary operator application. Op is one of
// + - * / % = <> < <= > >= AND OR.
type BinExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr is NOT or unary minus.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	E  Expr
}

// FuncCall is a function application: scalar builtins (YEAR, MONTH, DAY) and
// aggregates (COUNT, SUM, MIN, MAX, AVG). Star marks COUNT(*).
type FuncCall struct {
	Name     string // lowercase
	Args     []Expr
	Distinct bool
	Star     bool
}

// IsNullExpr is `e IS [NOT] NULL`.
type IsNullExpr struct {
	E   Expr
	Not bool
}

// BetweenExpr is `e BETWEEN lo AND hi` (Not for NOT BETWEEN).
type BetweenExpr struct {
	E, Lo, Hi Expr
	Not       bool
}

// InExpr is `e IN (v1, ..., vn)` over a literal/expression list.
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

// LikeExpr is `e [NOT] LIKE pattern` with % and _ wildcards.
type LikeExpr struct {
	E, Pattern Expr
	Not        bool
}

// SubqueryExpr is a scalar subquery used as an expression.
type SubqueryExpr struct {
	Query *SelectStmt
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one WHEN cond THEN result arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

func (*ColRef) isExpr()       {}
func (*Lit) isExpr()          {}
func (*BinExpr) isExpr()      {}
func (*UnaryExpr) isExpr()    {}
func (*FuncCall) isExpr()     {}
func (*IsNullExpr) isExpr()   {}
func (*BetweenExpr) isExpr()  {}
func (*InExpr) isExpr()       {}
func (*LikeExpr) isExpr()     {}
func (*SubqueryExpr) isExpr() {}
func (*CaseExpr) isExpr()     {}

// SQL implementations.

// quoteIdent renders an identifier so it re-lexes to the same token: bare
// when it already has the shape of an unquoted identifier (which the lexer
// folds to lower case), double-quoted otherwise (mixed case, spaces,
// keyword collisions, exotic runes).
func quoteIdent(s string) string {
	if plainIdent(s) {
		return s
	}
	return `"` + s + `"`
}

func plainIdent(s string) bool {
	if s == "" || strings.ContainsRune(s, '"') || keywords[strings.ToUpper(s)] {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || unicode.IsLower(r):
		case i > 0 && r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return true
}

// SQL renders the column reference.
func (c *ColRef) SQL() string {
	if c.Qualifier != "" {
		return quoteIdent(c.Qualifier) + "." + quoteIdent(c.Name)
	}
	return quoteIdent(c.Name)
}

// SQL renders the literal.
func (l *Lit) SQL() string { return l.Val.SQLLiteral() }

// SQL renders the binary expression fully parenthesized.
func (b *BinExpr) SQL() string {
	return "(" + b.L.SQL() + " " + b.Op + " " + b.R.SQL() + ")"
}

// SQL renders the unary expression.
func (u *UnaryExpr) SQL() string {
	if u.Op == "NOT" {
		return "(NOT " + u.E.SQL() + ")"
	}
	return "(-" + u.E.SQL() + ")"
}

// SQL renders the call.
func (f *FuncCall) SQL() string {
	if f.Star {
		return quoteIdent(f.Name) + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.SQL()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return quoteIdent(f.Name) + "(" + d + strings.Join(args, ", ") + ")"
}

// SQL renders the IS NULL test.
func (i *IsNullExpr) SQL() string {
	if i.Not {
		return "(" + i.E.SQL() + " IS NOT NULL)"
	}
	return "(" + i.E.SQL() + " IS NULL)"
}

// SQL renders the BETWEEN test.
func (b *BetweenExpr) SQL() string {
	n := ""
	if b.Not {
		n = "NOT "
	}
	return "(" + b.E.SQL() + " " + n + "BETWEEN " + b.Lo.SQL() + " AND " + b.Hi.SQL() + ")"
}

// SQL renders the IN test.
func (in *InExpr) SQL() string {
	items := make([]string, len(in.List))
	for i, e := range in.List {
		items[i] = e.SQL()
	}
	n := ""
	if in.Not {
		n = "NOT "
	}
	return "(" + in.E.SQL() + " " + n + "IN (" + strings.Join(items, ", ") + "))"
}

// SQL renders the LIKE test.
func (l *LikeExpr) SQL() string {
	n := ""
	if l.Not {
		n = "NOT "
	}
	return "(" + l.E.SQL() + " " + n + "LIKE " + l.Pattern.SQL() + ")"
}

// SQL renders the scalar subquery.
func (s *SubqueryExpr) SQL() string { return "(" + s.Query.SQL() + ")" }

// SQL renders the CASE expression.
func (c *CaseExpr) SQL() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		sb.WriteString(" WHEN " + w.Cond.SQL() + " THEN " + w.Then.SQL())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.SQL())
	}
	sb.WriteString(" END")
	return sb.String()
}

// SQL renders the whole SELECT statement.
func (s *SelectStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if it.Star {
			sb.WriteString("*")
			continue
		}
		sb.WriteString(it.Expr.SQL())
		if it.Alias != "" {
			sb.WriteString(" AS " + quoteIdent(it.Alias))
		}
	}
	sb.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.SQL())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.SQL())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.SQL())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	return sb.String()
}

// SQL renders the FROM element.
func (t *TableRef) SQL() string {
	var base string
	if t.Subquery != nil {
		base = "(" + t.Subquery.SQL() + ")"
	} else {
		base = quoteIdent(t.Table)
	}
	if t.Alias != "" && t.Alias != t.Table {
		return base + " AS " + quoteIdent(t.Alias)
	}
	return base
}

// SQL renders the grouping element.
func (g *GroupingElem) SQL() string {
	exprList := func(es []Expr) string {
		parts := make([]string, len(es))
		for i, e := range es {
			parts[i] = e.SQL()
		}
		return strings.Join(parts, ", ")
	}
	switch g.Kind {
	case GroupExpr:
		return g.Exprs[0].SQL()
	case GroupRollup:
		return "ROLLUP(" + exprList(g.Exprs) + ")"
	case GroupCube:
		return "CUBE(" + exprList(g.Exprs) + ")"
	case GroupSets:
		sets := make([]string, len(g.Sets))
		for i, s := range g.Sets {
			sets[i] = "(" + exprList(s) + ")"
		}
		return "GROUPING SETS(" + strings.Join(sets, ", ") + ")"
	default:
		return fmt.Sprintf("<bad grouping elem kind %d>", g.Kind)
	}
}
