package workload

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

func loadSmall(t *testing.T, seed int64) (*catalog.Catalog, *storage.Store, StarConfig) {
	t.Helper()
	cat := catalog.New()
	Schema(cat)
	store := storage.NewStore()
	cfg := Load(cat, store, StarConfig{NumTrans: 2000, Seed: seed})
	return cat, store, cfg
}

func TestSchemaTablesAndFKs(t *testing.T) {
	cat := catalog.New()
	Schema(cat)
	for _, name := range []string{"trans", "loc", "pgroup", "acct", "cust"} {
		if _, ok := cat.Table(name); !ok {
			t.Errorf("missing table %s", name)
		}
	}
	if len(cat.ForeignKeys()) != 4 {
		t.Fatalf("want 4 RI constraints, got %d", len(cat.ForeignKeys()))
	}
	// The Figure 1 arrows must be provable lossless joins.
	cases := [][4]string{
		{"trans", "faid", "acct", "aid"},
		{"trans", "fpgid", "pgroup", "pgid"},
		{"trans", "flid", "loc", "lid"},
		{"acct", "acid", "cust", "cid"},
	}
	for _, c := range cases {
		if !cat.LosslessJoin(c[0], []string{c[1]}, c[2], []string{c[3]}) {
			t.Errorf("join %s.%s → %s.%s not lossless", c[0], c[1], c[2], c[3])
		}
	}
}

func TestLoadCardinalities(t *testing.T) {
	_, store, cfg := loadSmall(t, 1)
	if store.MustTable("trans").Cardinality() != cfg.NumTrans {
		t.Errorf("trans rows: %d", store.MustTable("trans").Cardinality())
	}
	if store.MustTable("acct").Cardinality() != cfg.NumAccts {
		t.Errorf("acct rows: %d", store.MustTable("acct").Cardinality())
	}
	if store.MustTable("loc").Cardinality() != cfg.NumLocs {
		t.Errorf("loc rows: %d", store.MustTable("loc").Cardinality())
	}
}

// TestReferentialIntegrity checks that generated data actually satisfies the
// declared RI constraints (the matching algorithm's losslessness proofs rely
// on them).
func TestReferentialIntegrity(t *testing.T) {
	_, store, _ := loadSmall(t, 2)
	keys := func(table string, col int) map[int64]bool {
		out := map[int64]bool{}
		for _, r := range store.MustTable(table).Rows() {
			out[r[col].Int()] = true
		}
		return out
	}
	accts := keys("acct", 0)
	pgs := keys("pgroup", 0)
	locs := keys("loc", 0)
	custs := keys("cust", 0)
	for _, r := range store.MustTable("trans").Rows() {
		if !accts[r[1].Int()] {
			t.Fatalf("dangling faid %d", r[1].Int())
		}
		if !pgs[r[2].Int()] {
			t.Fatalf("dangling fpgid %d", r[2].Int())
		}
		if !locs[r[3].Int()] {
			t.Fatalf("dangling flid %d", r[3].Int())
		}
	}
	for _, r := range store.MustTable("acct").Rows() {
		if !custs[r[1].Int()] {
			t.Fatalf("dangling acid %d", r[1].Int())
		}
	}
}

func TestValidDatesAndRanges(t *testing.T) {
	_, store, cfg := loadSmall(t, 3)
	for _, r := range store.MustTable("trans").Rows() {
		d := r[4]
		if d.Kind() != sqltypes.KindDate {
			t.Fatalf("date column kind %v", d.Kind())
		}
		y, m, day := d.DateYear(), d.DateMonth(), d.DateDay()
		if y < int64(cfg.FirstYear) || y >= int64(cfg.FirstYear+cfg.Years) {
			t.Fatalf("year out of range: %d", y)
		}
		if m < 1 || m > 12 || day < 1 || day > 31 {
			t.Fatalf("bad date %v", d)
		}
		if q := r[5].Int(); q < 1 || q > 5 {
			t.Fatalf("qty out of range: %d", q)
		}
		if disc := r[7].Float(); disc < 0 || disc >= 0.3 {
			t.Fatalf("disc out of range: %f", disc)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	_, s1, _ := loadSmall(t, 42)
	_, s2, _ := loadSmall(t, 42)
	a, b := s1.MustTable("trans").Rows(), s2.MustTable("trans").Rows()
	if len(a) != len(b) {
		t.Fatal("row counts differ")
	}
	for i := range a {
		for j := range a[i] {
			if !sqltypes.Identical(a[i][j], b[i][j]) {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
	_, s3, _ := loadSmall(t, 43)
	c := s3.MustTable("trans").Rows()
	same := true
	for i := range a {
		if !sqltypes.Identical(a[i][4], c[i][4]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

// TestHomeLocationSkew: the paper's narrative needs most of an account's
// transactions in one location, so per-(account, location, year) summaries
// compress well.
func TestHomeLocationSkew(t *testing.T) {
	_, store, _ := loadSmall(t, 4)
	// Count per-account distinct locations vs transactions.
	perAcct := map[int64]map[int64]int{}
	for _, r := range store.MustTable("trans").Rows() {
		aid, lid := r[1].Int(), r[3].Int()
		if perAcct[aid] == nil {
			perAcct[aid] = map[int64]int{}
		}
		perAcct[aid][lid]++
	}
	dominated := 0
	for _, locs := range perAcct {
		total, best := 0, 0
		for _, n := range locs {
			total += n
			if n > best {
				best = n
			}
		}
		if total >= 10 && float64(best) >= 0.5*float64(total) {
			dominated++
		}
	}
	if dominated < len(perAcct)/2 {
		t.Fatalf("home-location skew too weak: %d/%d accounts dominated", dominated, len(perAcct))
	}
}

func TestDefaultsScaleWithTrans(t *testing.T) {
	cfg := StarConfig{NumTrans: 100000}.withDefaults()
	if cfg.NumAccts != 200 {
		t.Errorf("NumAccts default: %d", cfg.NumAccts)
	}
	if cfg.NumCusts != 100 || cfg.Years != 3 || cfg.FirstYear != 1990 {
		t.Errorf("defaults: %+v", cfg)
	}
}
