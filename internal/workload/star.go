// Package workload generates the paper's sample database (Figure 1): a
// credit-card star schema with a Trans fact table and PGroup, Loc, Cust and
// Acct dimension tables connected by RI constraints, plus synthetic data
// whose cardinality profile matches the paper's narrative — "the average
// customer performs a few hundred transactions per year, most of them within
// the same city", which makes AST1 roughly a hundred times smaller than
// Trans.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// StarConfig parameterizes the generator. Zero fields take defaults from
// DefaultStarConfig scaled by NumTrans.
type StarConfig struct {
	NumTrans  int
	NumAccts  int // default: NumTrans/500 (a few hundred transactions/account)
	NumCusts  int // default: NumAccts/2
	NumLocs   int // default: 200
	NumGroups int // default: 50
	Years     int // default: 3 (1990..1992)
	FirstYear int // default: 1990
	Seed      int64
}

// withDefaults fills unset fields.
func (c StarConfig) withDefaults() StarConfig {
	if c.NumTrans == 0 {
		c.NumTrans = 10000
	}
	if c.NumAccts == 0 {
		c.NumAccts = maxInt(4, c.NumTrans/500)
	}
	if c.NumCusts == 0 {
		c.NumCusts = maxInt(2, c.NumAccts/2)
	}
	if c.NumLocs == 0 {
		c.NumLocs = 200
	}
	if c.NumGroups == 0 {
		c.NumGroups = 50
	}
	if c.Years == 0 {
		c.Years = 3
	}
	if c.FirstYear == 0 {
		c.FirstYear = 1990
	}
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// countries and states used by the Loc dimension. USA gets the majority of
// locations so the paper's `country = 'USA'` predicates are selective but not
// degenerate.
var countries = []string{"USA", "Canada", "Mexico", "Germany", "Japan"}
var usStates = []string{"CA", "NY", "TX", "WA", "IL", "MA", "FL", "OR", "CO", "GA"}
var otherStates = map[string][]string{
	"Canada":  {"ON", "BC", "QC"},
	"Mexico":  {"JAL", "NLE"},
	"Germany": {"BY", "BE"},
	"Japan":   {"13", "27"},
}

var productNames = []string{"TV", "Radio", "Laptop", "Phone", "Camera", "Blender",
	"Sofa", "Desk", "Lamp", "Bike", "Guitar", "Watch", "Shoes", "Jacket", "Book"}

// Schema registers the Figure 1 tables and RI constraints in a catalog.
func Schema(cat *catalog.Catalog) {
	cat.MustAddTable(&catalog.Table{
		Name: "pgroup",
		Columns: []catalog.Column{
			{Name: "pgid", Type: sqltypes.KindInt},
			{Name: "pgname", Type: sqltypes.KindString},
		},
		PrimaryKey: []string{"pgid"},
	})
	cat.MustAddTable(&catalog.Table{
		Name: "loc",
		Columns: []catalog.Column{
			{Name: "lid", Type: sqltypes.KindInt},
			{Name: "city", Type: sqltypes.KindString},
			{Name: "state", Type: sqltypes.KindString},
			{Name: "country", Type: sqltypes.KindString},
		},
		PrimaryKey: []string{"lid"},
	})
	cat.MustAddTable(&catalog.Table{
		Name: "cust",
		Columns: []catalog.Column{
			{Name: "cid", Type: sqltypes.KindInt},
			{Name: "cname", Type: sqltypes.KindString},
			{Name: "age", Type: sqltypes.KindInt},
		},
		PrimaryKey: []string{"cid"},
	})
	cat.MustAddTable(&catalog.Table{
		Name: "acct",
		Columns: []catalog.Column{
			{Name: "aid", Type: sqltypes.KindInt},
			{Name: "acid", Type: sqltypes.KindInt},
			{Name: "status", Type: sqltypes.KindString},
		},
		PrimaryKey: []string{"aid"},
	})
	cat.MustAddTable(&catalog.Table{
		Name: "trans",
		Columns: []catalog.Column{
			{Name: "tid", Type: sqltypes.KindInt},
			{Name: "faid", Type: sqltypes.KindInt},
			{Name: "fpgid", Type: sqltypes.KindInt},
			{Name: "flid", Type: sqltypes.KindInt},
			{Name: "date", Type: sqltypes.KindDate},
			{Name: "qty", Type: sqltypes.KindInt},
			{Name: "price", Type: sqltypes.KindFloat},
			{Name: "disc", Type: sqltypes.KindFloat},
		},
		PrimaryKey: []string{"tid"},
	})
	cat.MustAddForeignKey(catalog.ForeignKey{
		ChildTable: "trans", ChildCols: []string{"faid"},
		ParentTable: "acct", ParentCols: []string{"aid"},
	})
	cat.MustAddForeignKey(catalog.ForeignKey{
		ChildTable: "trans", ChildCols: []string{"fpgid"},
		ParentTable: "pgroup", ParentCols: []string{"pgid"},
	})
	cat.MustAddForeignKey(catalog.ForeignKey{
		ChildTable: "trans", ChildCols: []string{"flid"},
		ParentTable: "loc", ParentCols: []string{"lid"},
	})
	cat.MustAddForeignKey(catalog.ForeignKey{
		ChildTable: "acct", ChildCols: []string{"acid"},
		ParentTable: "cust", ParentCols: []string{"cid"},
	})
}

// Load generates data per config into the store (whose tables must already be
// in the catalog — call Schema first). It returns the configuration actually
// used (with defaults filled).
func Load(cat *catalog.Catalog, store *storage.Store, cfg StarConfig) StarConfig {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	mustMeta := func(name string) *catalog.Table {
		t, ok := cat.Table(name)
		if !ok {
			panic(fmt.Sprintf("workload: table %q not in catalog; call Schema first", name))
		}
		return t
	}

	// PGroup.
	pg := store.Create(mustMeta("pgroup"))
	for i := 0; i < cfg.NumGroups; i++ {
		name := productNames[i%len(productNames)]
		if i >= len(productNames) {
			name = fmt.Sprintf("%s-%d", name, i/len(productNames))
		}
		pg.MustInsert(sqltypes.NewInt(int64(i+1)), sqltypes.NewString(name))
	}

	// Loc: ~70% USA.
	loc := store.Create(mustMeta("loc"))
	for i := 0; i < cfg.NumLocs; i++ {
		var country, state string
		if i%10 < 7 {
			country = "USA"
			state = usStates[rng.Intn(len(usStates))]
		} else {
			country = countries[1+rng.Intn(len(countries)-1)]
			ss := otherStates[country]
			state = ss[rng.Intn(len(ss))]
		}
		city := fmt.Sprintf("City%03d", i+1)
		loc.MustInsert(sqltypes.NewInt(int64(i+1)), sqltypes.NewString(city),
			sqltypes.NewString(state), sqltypes.NewString(country))
	}

	// Cust.
	cust := store.Create(mustMeta("cust"))
	for i := 0; i < cfg.NumCusts; i++ {
		cust.MustInsert(sqltypes.NewInt(int64(i+1)),
			sqltypes.NewString(fmt.Sprintf("Customer%05d", i+1)),
			sqltypes.NewInt(int64(18+rng.Intn(70))))
	}

	// Acct: each belongs to a customer; status mostly active.
	acct := store.Create(mustMeta("acct"))
	statuses := []string{"active", "active", "active", "closed", "frozen"}
	for i := 0; i < cfg.NumAccts; i++ {
		acct.MustInsert(sqltypes.NewInt(int64(i+1)),
			sqltypes.NewInt(int64(1+rng.Intn(cfg.NumCusts))),
			sqltypes.NewString(statuses[rng.Intn(len(statuses))]))
	}

	// Trans: each account has a home location; 85% of its transactions are in
	// the home location, the rest uniform. Dates spread over the year range.
	trans := store.Create(mustMeta("trans"))
	home := make([]int, cfg.NumAccts)
	for i := range home {
		home[i] = 1 + rng.Intn(cfg.NumLocs)
	}
	daysInMonth := [13]int{0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}
	for i := 0; i < cfg.NumTrans; i++ {
		aid := 1 + rng.Intn(cfg.NumAccts)
		lid := home[aid-1]
		if rng.Intn(100) >= 85 {
			lid = 1 + rng.Intn(cfg.NumLocs)
		}
		pgid := 1 + rng.Intn(cfg.NumGroups)
		year := cfg.FirstYear + rng.Intn(cfg.Years)
		month := 1 + rng.Intn(12)
		day := 1 + rng.Intn(daysInMonth[month])
		qty := 1 + rng.Intn(5)
		price := float64(1+rng.Intn(5000)) / 10.0
		disc := float64(rng.Intn(30)) / 100.0
		trans.MustInsert(
			sqltypes.NewInt(int64(i+1)),
			sqltypes.NewInt(int64(aid)),
			sqltypes.NewInt(int64(pgid)),
			sqltypes.NewInt(int64(lid)),
			sqltypes.NewDate(year, month, day),
			sqltypes.NewInt(int64(qty)),
			sqltypes.NewFloat(price),
			sqltypes.NewFloat(disc),
		)
	}
	return cfg
}
