package workload

// The paper reports its performance results on "the TPC-D benchmark and
// several customer applications" (§1, §8) without publishing numbers. TPC-D's
// data is a different schema; what transfers is the *style* of its
// decision-support queries — multi-way joins into a fact table, rich
// aggregation along dimension hierarchies, date-range filters, HAVING
// thresholds. DSQueries expresses that style over the Figure 1 credit-card
// schema, and DSASTs is a summary-table set sized like the ones the paper
// describes deploying, so the experiment harness can reproduce the
// "orders-of-magnitude with a handful of ASTs" claim end to end.

// DSQuery is one decision-support query of the suite.
type DSQuery struct {
	Name  string
	Descr string
	SQL   string
}

// DSQueries is the TPC-D-flavoured suite.
var DSQueries = []DSQuery{
	{"ds1", "pricing summary by product group and year (TPC-D Q1 style)", `
		select fpgid, year(date) as year,
		       count(*) as cnt, sum(qty) as sum_qty,
		       sum(qty * price) as gross, sum(qty * price * (1 - disc)) as net,
		       avg(price) as avg_price
		from trans
		group by fpgid, year(date)`},
	{"ds2", "revenue by state for USA (TPC-D Q5 style)", `
		select state, year(date) as year, sum(qty * price * (1 - disc)) as revenue
		from trans, loc
		where flid = lid and country = 'USA'
		group by state, year(date)`},
	{"ds3", "big-ticket accounts (TPC-D Q10 style)", `
		select faid, sum(qty * price) as spend, count(*) as cnt
		from trans
		where year(date) >= 1991
		group by faid
		having sum(qty * price) > 10000`},
	{"ds4", "seasonality: H2 volume per product group", `
		select fpgid, count(*) as cnt, sum(qty) as items
		from trans
		where month(date) >= 7
		group by fpgid`},
	{"ds5", "discount effect per year (TPC-D Q6 style)", `
		select year(date) as year, sum(qty * price * disc) as givenaway
		from trans
		where disc > 0.1
		group by year(date)`},
	{"ds6", "active months per location", `
		select flid, count(*) as busy_months
		from (select flid, year(date) as y, month(date) as m, count(*) as n
		      from trans group by flid, year(date), month(date)) mm
		where n > 5
		group by flid`},
	{"ds7", "country share of yearly volume", `
		select country, year(date) as year, count(*) as cnt,
		       (select count(*) from trans) as total
		from trans, loc
		where flid = lid
		group by country, year(date)`},
	{"ds8", "per-product price extremes by year", `
		select fpgid, year(date) as year, min(price) as lo, max(price) as hi
		from trans
		group by fpgid, year(date)`},
	{"ds9", "local volume per city (rejoin to the location dimension)", `
		select city, count(*) as cnt
		from trans, loc
		where flid = lid
		group by city`},
	{"ds10", "product drill-down with rollup (TPC-D Q13/cube style)", `
		select fpgid, year(date) as year, count(*) as cnt
		from trans
		group by rollup(fpgid, year(date))`},
	{"ds11", "accounts outspending the average account (nested blocks)", `
		select faid, spend
		from (select faid, sum(qty * price) as spend from trans group by faid) a
		where spend > (select sum(qty * price) / count(distinct faid) from trans)`},
	{"ds12", "mean basket value per year (AVG canonicalization)", `
		select year(date) as year, avg(qty * price) as avg_basket
		from trans
		group by year(date)`},
}

// DSAST is one summary table of the recommended set.
type DSAST struct {
	Name string
	SQL  string
}

// DSASTs is the deployed AST set for the suite: one fine-grained summary per
// dimension family, in the paper's "small number of ASTs" spirit.
var DSASTs = []DSAST{
	{"st_product_month", `
		select fpgid, year(date) as year, month(date) as month,
		       count(*) as cnt, sum(qty) as sum_qty,
		       sum(qty * price) as gross, sum(qty * price * (1 - disc)) as net,
		       sum(price) as sum_price, count(price) as cnt_price,
		       min(price) as lo, max(price) as hi
		from trans
		group by fpgid, year(date), month(date)`},
	{"st_loc_year", `
		select flid, year(date) as year, month(date) as month,
		       count(*) as cnt, sum(qty * price * (1 - disc)) as revenue
		from trans
		group by flid, year(date), month(date)`},
	{"st_acct_year", `
		select faid, year(date) as year,
		       count(*) as cnt, sum(qty * price) as spend
		from trans
		group by faid, year(date)`},
	{"st_disc_year", `
		select year(date) as year, disc, count(*) as cnt,
		       sum(qty * price * disc) as givenaway
		from trans
		group by year(date), disc`},
	{"st_loc_month_detail", `
		select flid, year(date) as y, month(date) as m, count(*) as n
		from trans
		group by flid, year(date), month(date)`},
	{"st_acct_spend", `
		select faid, sum(qty * price) as spend, count(*) as cnt,
		       sum(price) as sp, count(price) as cp
		from trans
		group by faid`},
	{"st_product_basket", `
		select fpgid, year(date) as year, count(*) as cnt,
		       sum(qty * price) as gross, count(qty * price) as nbaskets
		from trans
		group by fpgid, year(date)`},
}
