package sqltypes

import (
	"math"
	"strconv"
)

// This file adds the columnar value representation used by the chunked
// storage layer and the vectorized executor: a Vec holds one column of up to
// a storage chunk's worth of values in a typed payload slice (int64 for
// INTEGER/BOOLEAN/DATE, float64 for DOUBLE, string for VARCHAR) plus a packed
// null bitmap. A column whose values mix payload kinds degrades to a generic
// []Value payload, so every value a row store can hold is representable; the
// typed form is the fast path, not a constraint.
//
// Concurrency contract (relied on by storage snapshots): a Vec is append-only.
// Appends never overwrite payload elements below the current length, so a
// value copy of the Vec header (with its slice lengths) freezes a consistent
// prefix — except the null bitmap, whose packed words are shared across rows;
// Frozen() clones it. Degrading to the generic payload builds a fresh slice
// rather than mutating the typed one, so frozen headers keep reading their
// original payload.

// Bitmap is a packed bitset, one bit per row index.
type Bitmap []uint64

// NewBitmap returns a bitmap with capacity for n bits, all clear.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Get reports whether bit i is set. Indexes beyond the bitmap read as clear.
func (b Bitmap) Get(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i, growing the bitmap as needed.
func (b *Bitmap) Set(i int) {
	w := i >> 6
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (uint(i) & 63)
}

// Clone returns an independent copy of the bitmap.
func (b Bitmap) Clone() Bitmap {
	if b == nil {
		return nil
	}
	return append(Bitmap(nil), b...)
}

// Vec is one column vector: n values of a single kind (plus NULLs), or a
// generic []Value payload when the column mixes kinds. The zero Vec is an
// empty, untyped vector.
type Vec struct {
	kind    Kind // payload kind; KindNull until the first non-null append
	generic bool // payload lives in Any (mixed kinds)
	n       int

	// Payload slices; exactly one is active. Ints backs KindInt, KindBool
	// and KindDate (the date encoding is the int64 yyyymmdd payload).
	Ints   []int64
	Floats []float64
	Strs   []string
	Any    []Value

	// Nulls marks NULL rows. Inactive (nil) when no NULL has been appended.
	Nulls    Bitmap
	hasNulls bool
}

// NewIntsVec wraps an int64 payload as a vector of the given integer-class
// kind (KindInt, KindBool or KindDate). nulls may be nil.
func NewIntsVec(kind Kind, ints []int64, nulls Bitmap) Vec {
	return Vec{kind: kind, n: len(ints), Ints: ints, Nulls: nulls, hasNulls: nulls != nil}
}

// NewFloatsVec wraps a float64 payload as a KindFloat vector. nulls may be nil.
func NewFloatsVec(floats []float64, nulls Bitmap) Vec {
	return Vec{kind: KindFloat, n: len(floats), Floats: floats, Nulls: nulls, hasNulls: nulls != nil}
}

// NewStringsVec wraps a string payload as a KindString vector. nulls may be nil.
func NewStringsVec(strs []string, nulls Bitmap) Vec {
	return Vec{kind: KindString, n: len(strs), Strs: strs, Nulls: nulls, hasNulls: nulls != nil}
}

// NewGenericVec wraps arbitrary values as a generic vector; NULL elements are
// represented by NULL Values in the slice.
func NewGenericVec(vals []Value) Vec {
	return Vec{generic: true, n: len(vals), Any: vals}
}

// NewNullVec returns a vector of n NULLs.
func NewNullVec(n int) Vec {
	v := Vec{}
	for i := 0; i < n; i++ {
		v.AppendNull()
	}
	return v
}

// Len returns the number of values.
func (v *Vec) Len() int { return v.n }

// Kind returns the payload kind; KindNull for an untyped (all-NULL or empty)
// vector. Meaningless when Generic() is true.
func (v *Vec) Kind() Kind { return v.kind }

// Generic reports whether the payload is the generic []Value form.
func (v *Vec) Generic() bool { return v.generic }

// HasNulls reports whether any NULL has been appended. For generic vectors
// the per-element Values are authoritative; this is a fast pre-check only.
func (v *Vec) HasNulls() bool { return v.hasNulls }

// IsNull reports whether element i is NULL.
func (v *Vec) IsNull(i int) bool {
	if v.generic {
		return v.Any[i].IsNull()
	}
	return v.hasNulls && v.Nulls.Get(i)
}

// Value reconstructs element i as a Value, NULLs included. The result is
// identical (kind and payload) to the Value originally appended.
func (v *Vec) Value(i int) Value {
	if v.generic {
		return v.Any[i]
	}
	if v.hasNulls && v.Nulls.Get(i) {
		return Null
	}
	switch v.kind {
	case KindInt:
		return Value{kind: KindInt, i: v.Ints[i]}
	case KindBool:
		return Value{kind: KindBool, i: v.Ints[i]}
	case KindDate:
		return Value{kind: KindDate, i: v.Ints[i]}
	case KindFloat:
		return Value{kind: KindFloat, f: v.Floats[i]}
	case KindString:
		return Value{kind: KindString, s: v.Strs[i]}
	default: // untyped: every element is NULL
		return Null
	}
}

// AppendNull appends a NULL, keeping the active payload aligned.
func (v *Vec) AppendNull() {
	v.Nulls.Set(v.n)
	v.hasNulls = true
	switch {
	case v.generic:
		v.Any = append(v.Any, Null)
	case v.kind == KindFloat:
		v.Floats = append(v.Floats, 0)
	case v.kind == KindString:
		v.Strs = append(v.Strs, "")
	case v.kind != KindNull:
		v.Ints = append(v.Ints, 0)
	}
	// Untyped vectors carry no payload; length is tracked by n alone and the
	// payload is zero-filled if a typed value arrives later.
	v.n++
}

// AppendValue appends x. The first non-null value fixes the vector's kind;
// appending a different kind later degrades the vector to the generic payload
// (a fresh slice — concurrent frozen readers keep their typed view).
func (v *Vec) AppendValue(x Value) {
	if x.kind == KindNull {
		v.AppendNull()
		return
	}
	if v.generic {
		v.Any = append(v.Any, x)
		v.n++
		return
	}
	if v.kind == KindNull {
		// Adopt the kind; backfill zero payload for any leading NULLs.
		v.kind = x.kind
		switch x.kind {
		case KindFloat:
			v.Floats = make([]float64, v.n, cap64(v.n))
		case KindString:
			v.Strs = make([]string, v.n, cap64(v.n))
		default:
			v.Ints = make([]int64, v.n, cap64(v.n))
		}
	}
	if x.kind != v.kind {
		v.degrade()
		v.Any = append(v.Any, x)
		v.n++
		return
	}
	switch v.kind {
	case KindFloat:
		v.Floats = append(v.Floats, x.f)
	case KindString:
		v.Strs = append(v.Strs, x.s)
	default:
		v.Ints = append(v.Ints, x.i)
	}
	v.n++
}

func cap64(n int) int {
	if n < 64 {
		return 64
	}
	return n
}

// degrade converts the payload to the generic form in a fresh slice.
func (v *Vec) degrade() {
	anyv := make([]Value, v.n, v.n+64)
	for i := 0; i < v.n; i++ {
		anyv[i] = v.Value(i)
	}
	v.generic = true
	v.Any = anyv
	v.Ints, v.Floats, v.Strs = nil, nil, nil
}

// Frozen returns a header copy safe to read concurrently with further
// appends to v: slice lengths pin the current prefix, and the null bitmap —
// whose packed words would otherwise be shared with rows appended later — is
// cloned.
func (v *Vec) Frozen() Vec {
	f := *v
	f.Nulls = v.Nulls.Clone()
	return f
}

// AppendBinKey appends element i's binary grouping key to buf. The encoding
// is an internal fast alternative to AppendGroupKey with the same equivalence
// classes (same kind tags; integral floats below 1e15 collapse onto the
// integer tag, so 1 and 1.0 still share a group) but fixed-width binary
// payloads instead of decimal rendering. Keys from the two encodings are not
// interchangeable — a single grouping operation must use one or the other.
func (v *Vec) AppendBinKey(buf []byte, i int) []byte {
	if v.generic {
		return AppendBinKeyValue(buf, v.Any[i])
	}
	if v.hasNulls && v.Nulls.Get(i) {
		return append(buf, '\x00', 'N')
	}
	switch v.kind {
	case KindInt:
		return appendBE64(append(buf, '\x01'), uint64(v.Ints[i]))
	case KindFloat:
		return appendBinFloat(buf, v.Floats[i])
	case KindString:
		return append(append(buf, '\x03'), v.Strs[i]...)
	case KindBool:
		return append(append(buf, '\x04'), byte(v.Ints[i]))
	case KindDate:
		return appendBE64(append(buf, '\x05'), uint64(v.Ints[i]))
	default:
		return append(buf, '\x00', 'N') // untyped: all NULL
	}
}

// AppendBinKeyValue is AppendBinKey for a boxed Value (generic payloads and
// splatted constants).
func AppendBinKeyValue(buf []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(buf, '\x00', 'N')
	case KindInt:
		return appendBE64(append(buf, '\x01'), uint64(v.i))
	case KindFloat:
		return appendBinFloat(buf, v.f)
	case KindString:
		return append(append(buf, '\x03'), v.s...)
	case KindBool:
		return append(append(buf, '\x04'), byte(v.i))
	case KindDate:
		return appendBE64(append(buf, '\x05'), uint64(v.i))
	default:
		return append(buf, '\x7f', '?')
	}
}

func appendBinFloat(buf []byte, f float64) []byte {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return appendBE64(append(buf, '\x01'), uint64(int64(f)))
	}
	return appendBE64(append(buf, '\x02'), math.Float64bits(f))
}

func appendBE64(buf []byte, x uint64) []byte {
	return append(buf,
		byte(x>>56), byte(x>>48), byte(x>>40), byte(x>>32),
		byte(x>>24), byte(x>>16), byte(x>>8), byte(x))
}

// AppendGroupKey appends element i's grouping key to buf, byte-identical to
// Value.AppendGroupKey on the reconstructed Value (the vectorized GROUP BY
// must land in exactly the groups the row engine builds).
func (v *Vec) AppendGroupKey(buf []byte, i int) []byte {
	if v.generic {
		return v.Any[i].AppendGroupKey(buf)
	}
	if v.hasNulls && v.Nulls.Get(i) {
		return append(buf, '\x00', 'N')
	}
	switch v.kind {
	case KindInt:
		return strconv.AppendInt(append(buf, '\x01'), v.Ints[i], 10)
	case KindFloat:
		f := v.Floats[i]
		if f == math.Trunc(f) && math.Abs(f) < 1e15 {
			return strconv.AppendInt(append(buf, '\x01'), int64(f), 10)
		}
		return strconv.AppendFloat(append(buf, '\x02'), f, 'b', -1, 64)
	case KindString:
		return append(append(buf, '\x03'), v.Strs[i]...)
	case KindBool:
		return strconv.AppendInt(append(buf, '\x04'), v.Ints[i], 10)
	case KindDate:
		return strconv.AppendInt(append(buf, '\x05'), v.Ints[i], 10)
	default:
		return append(buf, '\x00', 'N') // untyped: all NULL
	}
}
