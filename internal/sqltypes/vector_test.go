package sqltypes

import (
	"bytes"
	"math/rand"
	"testing"
)

func randValue(rng *rand.Rand) Value {
	switch rng.Intn(6) {
	case 0:
		return Null
	case 1:
		return NewInt(rng.Int63n(2000) - 1000)
	case 2:
		return NewFloat(rng.NormFloat64() * 100)
	case 3:
		return NewString(string(rune('a' + rng.Intn(26))))
	case 4:
		return NewBool(rng.Intn(2) == 0)
	default:
		return NewDate(1990+rng.Intn(10), 1+rng.Intn(12), 1+rng.Intn(28))
	}
}

// TestVecRoundTrip pins the core Vec contract: appended values come back
// identical (kind and payload), and per-element group keys are byte-identical
// to Value.AppendGroupKey — including across kind-degradations to the generic
// payload.
func TestVecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var v Vec
		vals := make([]Value, 0, 50)
		n := rng.Intn(50)
		homogeneous := rng.Intn(2) == 0
		var pick func() Value
		if homogeneous {
			proto := randValue(rng)
			pick = func() Value {
				if rng.Intn(5) == 0 {
					return Null
				}
				switch proto.Kind() {
				case KindInt:
					return NewInt(rng.Int63n(100))
				case KindFloat:
					return NewFloat(rng.Float64())
				case KindString:
					return NewString(string(rune('a' + rng.Intn(26))))
				case KindBool:
					return NewBool(rng.Intn(2) == 0)
				case KindDate:
					return NewDate(1991, 1+rng.Intn(12), 1+rng.Intn(28))
				default:
					return Null
				}
			}
		} else {
			pick = func() Value { return randValue(rng) }
		}
		for i := 0; i < n; i++ {
			x := pick()
			vals = append(vals, x)
			v.AppendValue(x)
		}
		if v.Len() != len(vals) {
			t.Fatalf("trial %d: Len %d, want %d", trial, v.Len(), len(vals))
		}
		for i, want := range vals {
			got := v.Value(i)
			if got.Kind() != want.Kind() || got.String() != want.String() {
				t.Fatalf("trial %d: Value(%d) = %v (%s), want %v (%s)",
					trial, i, got, got.Kind(), want, want.Kind())
			}
			if got.IsNull() != v.IsNull(i) {
				t.Fatalf("trial %d: IsNull(%d) mismatch", trial, i)
			}
			if gk, wk := v.AppendGroupKey(nil, i), want.AppendGroupKey(nil); !bytes.Equal(gk, wk) {
				t.Fatalf("trial %d: group key of %v: %q vs %q", trial, want, gk, wk)
			}
		}
	}
}

// TestVecFrozenIsolation pins the snapshot contract: a Frozen header keeps
// reading its prefix — values and null bits — unchanged while the live vector
// takes further appends, including a kind-degradation.
func TestVecFrozenIsolation(t *testing.T) {
	var v Vec
	v.AppendValue(NewInt(1))
	v.AppendNull()
	v.AppendValue(NewInt(3))
	f := v.Frozen()

	// Appends past the frozen length, including one that degrades the live
	// payload to generic, must not change what the frozen header reads.
	v.AppendNull()
	v.AppendValue(NewString("x"))
	v.AppendValue(NewInt(9))

	if f.Len() != 3 {
		t.Fatalf("frozen Len = %d, want 3", f.Len())
	}
	want := []Value{NewInt(1), Null, NewInt(3)}
	for i, w := range want {
		if got := f.Value(i); got.Kind() != w.Kind() || got.String() != w.String() {
			t.Fatalf("frozen Value(%d) = %v, want %v", i, got, w)
		}
	}
	if f.IsNull(0) || !f.IsNull(1) || f.IsNull(2) {
		t.Fatalf("frozen null bits drifted: %v %v %v", f.IsNull(0), f.IsNull(1), f.IsNull(2))
	}
	// And the live vector sees everything, post-degradation.
	if v.Len() != 6 || !v.Generic() {
		t.Fatalf("live vec: len %d generic %v", v.Len(), v.Generic())
	}
	if got := v.Value(4); got.Kind() != KindString || got.Str() != "x" {
		t.Fatalf("live Value(4) = %v", got)
	}
}

// TestVecLeadingNulls pins the backfill path: NULLs appended before the first
// typed value must stay NULL once the payload is allocated.
func TestVecLeadingNulls(t *testing.T) {
	var v Vec
	v.AppendNull()
	v.AppendNull()
	v.AppendValue(NewFloat(2.5))
	if !v.IsNull(0) || !v.IsNull(1) || v.IsNull(2) {
		t.Fatalf("null bits wrong after backfill")
	}
	if got := v.Value(2); got.Float() != 2.5 {
		t.Fatalf("Value(2) = %v", got)
	}
	if v.Kind() != KindFloat {
		t.Fatalf("kind = %v", v.Kind())
	}
}
