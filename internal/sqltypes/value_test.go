package sqltypes

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INTEGER", KindFloat: "DOUBLE",
		KindString: "VARCHAR", KindBool: "BOOLEAN", KindDate: "DATE",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if v.String() != "NULL" {
		t.Fatalf("NULL renders as %q", v.String())
	}
}

func TestDateComponents(t *testing.T) {
	d := NewDate(1991, 4, 12)
	if d.DateYear() != 1991 || d.DateMonth() != 4 || d.DateDay() != 12 {
		t.Fatalf("components of %v wrong", d)
	}
	if d.String() != "1991-04-12" {
		t.Fatalf("String() = %q", d.String())
	}
	if d.SQLLiteral() != "DATE '1991-04-12'" {
		t.Fatalf("SQLLiteral() = %q", d.SQLLiteral())
	}
}

func TestParseDate(t *testing.T) {
	good := map[string]Value{
		"1991-04-12": NewDate(1991, 4, 12),
		"2000-12-31": NewDate(2000, 12, 31),
		"0001-01-01": NewDate(1, 1, 1),
	}
	for s, want := range good {
		got, err := ParseDate(s)
		if err != nil {
			t.Errorf("ParseDate(%q): %v", s, err)
			continue
		}
		if !Identical(got, want) {
			t.Errorf("ParseDate(%q) = %v, want %v", s, got, want)
		}
	}
	for _, s := range []string{"", "1991", "1991-13-01", "1991-00-10", "1991-01-32", "abcd-ef-gh", "1991-1", "19910412"} {
		if _, err := ParseDate(s); err == nil {
			t.Errorf("ParseDate(%q) should fail", s)
		}
	}
}

func TestCompareMixedNumeric(t *testing.T) {
	c, err := Compare(NewInt(2), NewFloat(2.0))
	if err != nil || c != 0 {
		t.Fatalf("2 vs 2.0: c=%d err=%v", c, err)
	}
	c, err = Compare(NewFloat(1.5), NewInt(2))
	if err != nil || c != -1 {
		t.Fatalf("1.5 vs 2: c=%d err=%v", c, err)
	}
}

func TestCompareIncompatible(t *testing.T) {
	if _, err := Compare(NewInt(1), NewString("1")); err == nil {
		t.Fatal("int vs string should error")
	}
	if _, err := Compare(Null, NewInt(1)); err == nil {
		t.Fatal("NULL comparison should error (caller handles 3VL)")
	}
}

func TestEqualVsIdenticalOnNull(t *testing.T) {
	if Equal(Null, Null) {
		t.Fatal("SQL equality: NULL = NULL is not true")
	}
	if !Identical(Null, Null) {
		t.Fatal("grouping: NULL is identical to NULL")
	}
	if Identical(Null, NewInt(0)) {
		t.Fatal("NULL is not identical to 0")
	}
}

func TestArithmetic(t *testing.T) {
	check := func(got Value, err error, want Value) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if !Identical(got, want) && !(got.IsNull() && want.IsNull()) {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	v, err := Add(NewInt(2), NewInt(3))
	check(v, err, NewInt(5))
	v, err = Add(NewInt(2), NewFloat(0.5))
	check(v, err, NewFloat(2.5))
	v, err = Sub(NewInt(2), NewInt(5))
	check(v, err, NewInt(-3))
	v, err = Mul(NewFloat(1.5), NewInt(4))
	check(v, err, NewFloat(6))
	v, err = Div(NewInt(7), NewInt(2))
	check(v, err, NewInt(3)) // integer division truncates
	v, err = Div(NewFloat(7), NewInt(2))
	check(v, err, NewFloat(3.5))
	v, err = Mod(NewInt(1993), NewInt(100))
	check(v, err, NewInt(93))
	v, err = Neg(NewInt(5))
	check(v, err, NewInt(-5))

	// NULL propagation.
	v, err = Add(Null, NewInt(1))
	check(v, err, Null)
	v, err = Mul(NewInt(1), Null)
	check(v, err, Null)

	// Errors.
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Fatal("integer division by zero must error")
	}
	if _, err := Div(NewFloat(1), NewFloat(0)); err == nil {
		t.Fatal("float division by zero must error")
	}
	if _, err := Mod(NewInt(1), NewInt(0)); err == nil {
		t.Fatal("modulo by zero must error")
	}
	if _, err := Add(NewString("a"), NewInt(1)); err == nil {
		t.Fatal("string arithmetic must error")
	}
	if _, err := Neg(NewString("a")); err == nil {
		t.Fatal("string negation must error")
	}
}

func TestGroupKeyDistinguishesKinds(t *testing.T) {
	vals := []Value{
		Null, NewInt(1), NewFloat(1.5), NewString("1"), NewBool(true),
		NewDate(1991, 1, 1), NewString(""), NewInt(0), NewBool(false),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.GroupKey()
		if prev, ok := seen[k]; ok {
			t.Errorf("GroupKey collision: %v and %v → %q", prev, v, k)
		}
		seen[k] = v
	}
	// Numerically equal int/float share a key (GROUP BY semantics).
	if NewInt(1).GroupKey() != NewFloat(1.0).GroupKey() {
		t.Error("1 and 1.0 must group together")
	}
}

// Property: Compare is a total order over same-kind values — antisymmetric
// and transitive.
func TestCompareOrderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Value {
		switch rng.Intn(3) {
		case 0:
			return NewInt(int64(rng.Intn(20) - 10))
		case 1:
			return NewFloat(float64(rng.Intn(40))/4 - 5)
		default:
			return NewDate(1990+rng.Intn(3), 1+rng.Intn(12), 1+rng.Intn(28))
		}
	}
	sameKindCmp := func(a, b Value) (int, bool) {
		c, err := Compare(a, b)
		return c, err == nil
	}
	for i := 0; i < 2000; i++ {
		a, b, c := gen(), gen(), gen()
		if ab, ok := sameKindCmp(a, b); ok {
			ba, _ := sameKindCmp(b, a)
			if ab != -ba {
				t.Fatalf("antisymmetry violated: %v vs %v: %d, %d", a, b, ab, ba)
			}
			if bc, ok2 := sameKindCmp(b, c); ok2 && ab <= 0 && bc <= 0 {
				if ac, ok3 := sameKindCmp(a, c); ok3 && ac > 0 {
					t.Fatalf("transitivity violated: %v <= %v <= %v but %v > %v", a, b, c, a, c)
				}
			}
		}
	}
}

// Property (testing/quick): int arithmetic matches Go semantics.
func TestQuickIntArithmetic(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := NewInt(int64(a)), NewInt(int64(b))
		s, err := Add(x, y)
		if err != nil || s.Int() != int64(a)+int64(b) {
			return false
		}
		d, err := Sub(x, y)
		if err != nil || d.Int() != int64(a)-int64(b) {
			return false
		}
		m, err := Mul(x, y)
		if err != nil || m.Int() != int64(a)*int64(b) {
			return false
		}
		if b != 0 {
			q, err := Div(x, y)
			if err != nil || q.Int() != int64(a)/int64(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): GroupKey is injective over int values and
// consistent with Identical.
func TestQuickGroupKeyConsistency(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := NewInt(a), NewInt(b)
		return (x.GroupKey() == y.GroupKey()) == Identical(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloatStringRendering(t *testing.T) {
	if NewFloat(2).String() != "2.0" {
		t.Errorf("float 2 renders as %q, want 2.0", NewFloat(2).String())
	}
	if NewFloat(2.5).String() != "2.5" {
		t.Errorf("float 2.5 renders as %q", NewFloat(2.5).String())
	}
	if NewFloat(math.Inf(1)).String() == "" {
		t.Error("infinity must render")
	}
}

func TestSQLLiteralQuoting(t *testing.T) {
	if got := NewString("O'Hara").SQLLiteral(); got != "'O''Hara'" {
		t.Fatalf("quoting: %q", got)
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("Str on int", func() { NewInt(1).Str() })
	mustPanic("Int on string", func() { _ = NewString("x").Int() })
	mustPanic("Bool on int", func() { NewInt(1).Bool() })
	mustPanic("Float on string", func() { NewString("x").Float() })
}

func TestTriLogic(t *testing.T) {
	tt := []struct {
		a, b    Tri
		and, or Tri
	}{
		{True, True, True, True},
		{True, False, False, True},
		{True, Unknown, Unknown, True},
		{False, False, False, False},
		{False, Unknown, False, Unknown},
		{Unknown, Unknown, Unknown, Unknown},
	}
	for _, c := range tt {
		if got := c.a.And(c.b); got != c.and {
			t.Errorf("%v AND %v = %v, want %v", c.a, c.b, got, c.and)
		}
		if got := c.b.And(c.a); got != c.and {
			t.Errorf("AND not commutative for %v, %v", c.a, c.b)
		}
		if got := c.a.Or(c.b); got != c.or {
			t.Errorf("%v OR %v = %v, want %v", c.a, c.b, got, c.or)
		}
		if got := c.b.Or(c.a); got != c.or {
			t.Errorf("OR not commutative for %v, %v", c.a, c.b)
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("NOT table wrong")
	}
	// De Morgan over the whole domain.
	all := []Tri{True, False, Unknown}
	for _, a := range all {
		for _, b := range all {
			if a.And(b).Not() != a.Not().Or(b.Not()) {
				t.Errorf("De Morgan fails for %v, %v", a, b)
			}
		}
	}
}

func TestTriValueRoundTrip(t *testing.T) {
	if TriFromValue(True.Value()) != True ||
		TriFromValue(False.Value()) != False ||
		TriFromValue(Unknown.Value()) != Unknown {
		t.Fatal("Tri ↔ Value round trip broken")
	}
}

// quick.Value support sanity: Values generated reflectively should never
// break GroupKey (guards the encoding against new kinds).
func TestQuickGroupKeyTotal(t *testing.T) {
	f := func(kind uint8, i int64, s string) bool {
		var v Value
		switch kind % 5 {
		case 0:
			v = Null
		case 1:
			v = NewInt(i)
		case 2:
			v = NewFloat(float64(i) / 7)
		case 3:
			v = NewString(s)
		case 4:
			v = NewBool(i%2 == 0)
		}
		return v.GroupKey() != ""
	}
	cfg := &quick.Config{MaxCount: 300, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(uint8(r.Intn(256)))
		vs[1] = reflect.ValueOf(r.Int63() - r.Int63())
		vs[2] = reflect.ValueOf("s" + string(rune('a'+r.Intn(26))))
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "", false},
		{"", "", true},
		{"", "%", true},
		{"hello", "hell", false},
		{"hello", "hello_", false},
		{"hello", "%x%", false},
		{"aaa", "%a%a%", true},
		{"ab", "%a%a%", false},
		{"mississippi", "%iss%iss%", true},
		{"TV", "TV", true},
		{"TV", "tv", false}, // LIKE is case-sensitive
	}
	for _, c := range cases {
		if got := LikeMatch(c.s, c.p); got != c.want {
			t.Errorf("LikeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestConcat(t *testing.T) {
	v, err := Concat(NewString("a"), NewString("b"))
	if err != nil || v.Str() != "ab" {
		t.Fatalf("concat: %v %v", v, err)
	}
	v, err = Concat(Null, NewString("b"))
	if err != nil || !v.IsNull() {
		t.Fatalf("null concat: %v %v", v, err)
	}
	if _, err := Concat(NewInt(1), NewString("b")); err == nil {
		t.Fatal("int concat must error")
	}
}

func TestAppendGroupKeyMatchesGroupKey(t *testing.T) {
	vals := []Value{
		Null,
		NewInt(0), NewInt(-7), NewInt(1 << 40),
		NewFloat(1), NewFloat(1.5), NewFloat(-0.25), NewFloat(1e18),
		NewString(""), NewString("ca"), NewString("CA"),
		NewBool(true), NewBool(false),
		MustParseDate("1991-04-12"),
	}
	buf := make([]byte, 0, 64)
	for _, v := range vals {
		buf = buf[:0]
		buf = v.AppendGroupKey(buf)
		if string(buf) != v.GroupKey() {
			t.Errorf("AppendGroupKey(%v) = %q, GroupKey = %q", v, buf, v.GroupKey())
		}
	}
	// Int and equal-valued float share a key; distinct values never collide.
	if NewInt(1).GroupKey() != NewFloat(1).GroupKey() {
		t.Error("1 and 1.0 must share a grouping key")
	}
	seen := map[string]Value{}
	for _, v := range vals[:10] { // distinct values above
		k := v.GroupKey()
		if prev, ok := seen[k]; ok && !Identical(prev, v) {
			t.Errorf("collision: %v and %v both map to %q", prev, v, k)
		}
		seen[k] = v
	}
}
