package sqltypes

// Tri is SQL three-valued logic: TRUE, FALSE or UNKNOWN. Predicates over NULL
// operands evaluate to Unknown, and WHERE/HAVING keep a row only when the
// predicate is True.
type Tri uint8

const (
	// False is definitely false.
	False Tri = iota
	// True is definitely true.
	True
	// Unknown is the third truth value produced by NULL comparisons.
	Unknown
)

// String renders the truth value.
func (t Tri) String() string {
	switch t {
	case False:
		return "FALSE"
	case True:
		return "TRUE"
	default:
		return "UNKNOWN"
	}
}

// TriOf lifts a Go bool into Tri.
func TriOf(b bool) Tri {
	if b {
		return True
	}
	return False
}

// And implements Kleene AND.
func (t Tri) And(o Tri) Tri {
	if t == False || o == False {
		return False
	}
	if t == True && o == True {
		return True
	}
	return Unknown
}

// Or implements Kleene OR.
func (t Tri) Or(o Tri) Tri {
	if t == True || o == True {
		return True
	}
	if t == False && o == False {
		return False
	}
	return Unknown
}

// Not implements Kleene NOT.
func (t Tri) Not() Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// Value converts the truth value to a SQL value (Unknown becomes NULL).
func (t Tri) Value() Value {
	switch t {
	case True:
		return NewBool(true)
	case False:
		return NewBool(false)
	default:
		return Null
	}
}

// TriFromValue interprets a value as a truth value: NULL is Unknown, booleans
// map directly, and non-zero numerics are True (permissive, used only by the
// evaluator when a boolean-typed expression is stored and reloaded).
func TriFromValue(v Value) Tri {
	switch v.Kind() {
	case KindNull:
		return Unknown
	case KindBool:
		return TriOf(v.Bool())
	case KindInt:
		return TriOf(v.Int() != 0)
	default:
		return Unknown
	}
}
