// Package sqltypes implements the SQL value system used throughout the
// repository: typed datums (integer, float, string, boolean, date and NULL),
// three-valued logic, arithmetic, comparison with numeric coercion, and
// hashable grouping keys.
//
// Dates are stored as an int64 encoded as yyyymmdd (e.g. 19910412), which
// makes the date extraction functions YEAR, MONTH and DAY pure integer
// arithmetic and gives dates a natural total order. The textual form is
// ISO-8601 ("1991-04-12").
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types of a Value.
type Kind uint8

const (
	// KindNull is the SQL NULL marker. A NULL Value carries no payload.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is a UTF-8 string.
	KindString
	// KindBool is a boolean (produced by predicates, storable).
	KindBool
	// KindDate is a calendar date encoded as yyyymmdd in the integer payload.
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL datum. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{kind: KindNull}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewDate returns a date value from components. It does not validate that the
// combination is a real calendar date beyond simple range clamping; workload
// generators only produce valid dates.
func NewDate(year, month, day int) Value {
	return Value{kind: KindDate, i: int64(year)*10000 + int64(month)*100 + int64(day)}
}

// ParseDate parses an ISO "YYYY-MM-DD" string into a date value.
func ParseDate(s string) (Value, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return Null, fmt.Errorf("sqltypes: malformed date %q", s)
	}
	y, err := strconv.Atoi(parts[0])
	if err != nil {
		return Null, fmt.Errorf("sqltypes: malformed date %q: %v", s, err)
	}
	m, err := strconv.Atoi(parts[1])
	if err != nil {
		return Null, fmt.Errorf("sqltypes: malformed date %q: %v", s, err)
	}
	d, err := strconv.Atoi(parts[2])
	if err != nil {
		return Null, fmt.Errorf("sqltypes: malformed date %q: %v", s, err)
	}
	if m < 1 || m > 12 || d < 1 || d > 31 || y < 0 || y > 9999 {
		return Null, fmt.Errorf("sqltypes: date out of range %q", s)
	}
	return NewDate(y, m, d), nil
}

// MustParseDate is ParseDate that panics on error; for tests and literals.
func MustParseDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Kind reports the runtime type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics unless the kind is KindInt,
// KindDate or KindBool.
func (v Value) Int() int64 {
	switch v.kind {
	case KindInt, KindDate, KindBool:
		return v.i
	default:
		panic(fmt.Sprintf("sqltypes: Int() on %s value", v.kind))
	}
}

// Float returns the float payload, coercing integers.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("sqltypes: Float() on %s value", v.kind))
	}
}

// Str returns the string payload. It panics unless the kind is KindString.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("sqltypes: Str() on %s value", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload. It panics unless the kind is KindBool.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("sqltypes: Bool() on %s value", v.kind))
	}
	return v.i != 0
}

// DateYear returns the year component of a date value.
func (v Value) DateYear() int64 { return v.Int() / 10000 }

// DateMonth returns the month component of a date value.
func (v Value) DateMonth() int64 { return (v.Int() / 100) % 100 }

// DateDay returns the day component of a date value.
func (v Value) DateDay() int64 { return v.Int() % 100 }

// IsNumeric reports whether the value participates in arithmetic.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display and for deterministic test output.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		// Trim trailing zeros but keep at least one decimal so floats are
		// visually distinct from ints in experiment output.
		s := strconv.FormatFloat(v.f, 'f', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return fmt.Sprintf("%04d-%02d-%02d", v.DateYear(), v.DateMonth(), v.DateDay())
	default:
		return fmt.Sprintf("<bad kind %d>", v.kind)
	}
}

// SQLLiteral renders the value as a SQL literal (strings quoted).
func (v Value) SQLLiteral() string {
	switch v.kind {
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindDate:
		return "DATE '" + v.String() + "'"
	default:
		return v.String()
	}
}

// Compare orders two non-NULL values. Numeric kinds coerce to float when
// mixed. It returns -1, 0 or +1, and an error when the kinds are not
// comparable. NULL inputs return an error; callers implement SQL NULL
// semantics above this level.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, fmt.Errorf("sqltypes: Compare on NULL")
	}
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return cmpInt(a.i, b.i), nil
	case a.IsNumeric() && b.IsNumeric():
		return cmpFloat(a.Float(), b.Float()), nil
	case a.kind == KindString && b.kind == KindString:
		return strings.Compare(a.s, b.s), nil
	case a.kind == KindDate && b.kind == KindDate:
		return cmpInt(a.i, b.i), nil
	case a.kind == KindBool && b.kind == KindBool:
		return cmpInt(a.i, b.i), nil
	// Dates compare with ints so date-encoded columns can be compared with
	// integer literals (used by generated workloads).
	case a.kind == KindDate && b.kind == KindInt:
		return cmpInt(a.i, b.i), nil
	case a.kind == KindInt && b.kind == KindDate:
		return cmpInt(a.i, b.i), nil
	default:
		return 0, fmt.Errorf("sqltypes: cannot compare %s with %s", a.kind, b.kind)
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports SQL equality of two values under Compare semantics; NULL is
// never equal to anything (including NULL). Use Identical for grouping.
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Identical reports grouping equality: NULLs are identical to each other, and
// numeric values are identical when they compare equal (so 1 groups with 1.0).
func Identical(a, b Value) bool {
	if a.IsNull() && b.IsNull() {
		return true
	}
	if a.IsNull() || b.IsNull() {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// GroupKey renders a value for use in composite grouping keys. Distinct
// values map to distinct strings; numerically equal int/float values map to
// the same string (GROUP BY treats 1 and 1.0 as one group).
func (v Value) GroupKey() string {
	return string(v.AppendGroupKey(nil))
}

// AppendGroupKey appends the value's grouping key to buf and returns the
// extended slice. It is the allocation-free form of GroupKey for hot loops
// that build composite keys into a reusable scratch buffer.
func (v Value) AppendGroupKey(buf []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(buf, '\x00', 'N')
	case KindInt:
		return strconv.AppendInt(append(buf, '\x01'), v.i, 10)
	case KindFloat:
		if v.f == math.Trunc(v.f) && math.Abs(v.f) < 1e15 {
			return strconv.AppendInt(append(buf, '\x01'), int64(v.f), 10)
		}
		return strconv.AppendFloat(append(buf, '\x02'), v.f, 'b', -1, 64)
	case KindString:
		return append(append(buf, '\x03'), v.s...)
	case KindBool:
		return strconv.AppendInt(append(buf, '\x04'), v.i, 10)
	case KindDate:
		return strconv.AppendInt(append(buf, '\x05'), v.i, 10)
	default:
		return append(buf, '\x7f', '?')
	}
}

// Arithmetic errors.
var errArithNull = fmt.Errorf("sqltypes: arithmetic on NULL (caller must short-circuit)")

func numericPair(a, b Value) (ai, bi int64, af, bf float64, isInt bool, err error) {
	if a.IsNull() || b.IsNull() {
		return 0, 0, 0, 0, false, errArithNull
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return 0, 0, 0, 0, false, fmt.Errorf("sqltypes: arithmetic on %s and %s", a.kind, b.kind)
	}
	if a.kind == KindInt && b.kind == KindInt {
		return a.i, b.i, 0, 0, true, nil
	}
	return 0, 0, a.Float(), b.Float(), false, nil
}

// Add returns a+b with int/float coercion. NULL inputs yield NULL.
func Add(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	ai, bi, af, bf, isInt, err := numericPair(a, b)
	if err != nil {
		return Null, err
	}
	if isInt {
		return NewInt(ai + bi), nil
	}
	return NewFloat(af + bf), nil
}

// Sub returns a-b with int/float coercion. NULL inputs yield NULL.
func Sub(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	ai, bi, af, bf, isInt, err := numericPair(a, b)
	if err != nil {
		return Null, err
	}
	if isInt {
		return NewInt(ai - bi), nil
	}
	return NewFloat(af - bf), nil
}

// Mul returns a*b with int/float coercion. NULL inputs yield NULL.
func Mul(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	ai, bi, af, bf, isInt, err := numericPair(a, b)
	if err != nil {
		return Null, err
	}
	if isInt {
		return NewInt(ai * bi), nil
	}
	return NewFloat(af * bf), nil
}

// Div returns a/b. Integer division truncates (SQL integer division);
// division by zero returns an error. NULL inputs yield NULL.
func Div(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	ai, bi, af, bf, isInt, err := numericPair(a, b)
	if err != nil {
		return Null, err
	}
	if isInt {
		if bi == 0 {
			return Null, fmt.Errorf("sqltypes: integer division by zero")
		}
		return NewInt(ai / bi), nil
	}
	if bf == 0 {
		return Null, fmt.Errorf("sqltypes: division by zero")
	}
	return NewFloat(af / bf), nil
}

// Mod returns a%b for integers. NULL inputs yield NULL.
func Mod(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if a.kind != KindInt || b.kind != KindInt {
		return Null, fmt.Errorf("sqltypes: MOD on %s and %s", a.kind, b.kind)
	}
	if b.i == 0 {
		return Null, fmt.Errorf("sqltypes: modulo by zero")
	}
	return NewInt(a.i % b.i), nil
}

// Concat returns the string concatenation a || b. NULL inputs yield NULL.
func Concat(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if a.Kind() != KindString || b.Kind() != KindString {
		return Null, fmt.Errorf("sqltypes: || on %s and %s", a.Kind(), b.Kind())
	}
	return NewString(a.Str() + b.Str()), nil
}

// LikeMatch implements SQL LIKE: % matches any run (including empty), _
// matches exactly one character. Matching is byte-oriented (the workloads are
// ASCII).
func LikeMatch(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Iterative two-pointer matcher with backtracking on the last %.
	si, pi := 0, 0
	star, sBack := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			sBack = si
			pi++
		case star >= 0:
			sBack++
			si = sBack
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// Neg returns -a. NULL yields NULL.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindNull:
		return Null, nil
	case KindInt:
		return NewInt(-a.i), nil
	case KindFloat:
		return NewFloat(-a.f), nil
	default:
		return Null, fmt.Errorf("sqltypes: negation of %s", a.kind)
	}
}
