package core

import (
	"sort"

	"repro/internal/qgm"
)

// gbView is the matcher's view of a (possibly pseudo-) subsumee GROUP BY box:
// its grouping expressions and aggregate arguments translated into the
// subsumer-child space, plus its grouping-set structure. It abstracts over
// the three sources of subsumees: a query GROUP BY box over an exactly
// matched child (§4.1.2), over a child matched with SELECT compensation
// (§4.2.1), and the lowest GROUP BY box inside a child compensation during
// the recursive pattern (§4.2.2).
type gbView struct {
	box          *qgm.Box // the original box the view describes
	groupExprs   []qgm.Expr
	groupingSets [][]int
	cols         []gbCol
}

type gbCol struct {
	name     string
	isGroup  bool
	groupPos int
	agg      *qgm.Agg // aggregate spec (op/star/distinct); arg in argRspace
	argR     qgm.Expr // aggregate argument in subsumer-child space (nil when Star)
}

// matchGroupBy implements the GROUP BY/GROUP BY patterns. It dispatches on
// the shape of the child compensation: empty (§4.1.2), a single SELECT box
// (§4.2.1), or a stack containing GROUP BY boxes (§4.2.2, handled by a
// recursive core invocation plus copies of the upper compensation boxes and
// of the subsumee itself). Multidimensional grouping sets on either side are
// handled by the core via cuboid matching (§5.1, §5.2).
func (m *Matcher) matchGroupBy(e, r *qgm.Box) *Match {
	cE, cR := e.Child(), r.Child()
	mm := m.MatchOf(cE, cR)
	if mm == nil {
		return m.reject(e, r, "universal condition 1: the children do not match")
	}
	rqc := r.Quantifiers[0]

	if mm.Exact || !mm.hasGroupingComp() {
		var childSel *qgm.Box
		if !mm.Exact {
			if len(mm.Stack) != 1 || mm.Stack[0].Kind != qgm.SelectBox {
				return m.reject(e, r, "child compensation has an unsupported shape")
			}
			childSel = mm.Stack[0]
		}
		view := m.viewFromQueryGB(e, mm, rqc)
		if view == nil {
			return m.reject(e, r, "grouping expressions or aggregate arguments are untranslatable")
		}
		res := m.matchGBCore(view, r, rqc, childSel, mm)
		if res == nil {
			return m.reject(e, r, "no subsumer cuboid satisfies the grouping/aggregate/pull-up conditions (§4.1.2/§4.2.1/§5)")
		}
		match := m.finishGBMatch(e, r, res)
		if match != nil {
			match.Pattern = gbPattern(view, r, mm.Exact)
		}
		return match
	}

	// §4.2.2: the child compensation contains grouping. Recursively match the
	// lowest compensation GROUP BY box with the subsumer, then copy the upper
	// compensation boxes and the subsumee itself on top.
	jg := -1
	for i, b := range mm.Stack {
		if b.Kind == qgm.GroupByBox {
			jg = i
			break
		}
	}
	if jg < 1 {
		return m.reject(e, r, "compensation stack does not start with a SELECT")
	}
	var childSel *qgm.Box
	if jg == 1 {
		childSel = mm.Stack[0]
	} else {
		return m.reject(e, r, "more than one box below the lowest compensation GROUP BY: unsupported shape")
	}
	view := m.viewFromCompGB(mm.Stack[jg], mm, rqc)
	if view == nil {
		return m.reject(e, r, "compensation GROUP BY expressions are untranslatable")
	}
	res := m.matchGBCore(view, r, rqc, childSel, mm)
	if res == nil {
		return m.reject(e, r, "recursive match of the compensation GROUP BY with the subsumer failed (§4.2.2)")
	}

	// Copy the compensation boxes above the matched GROUP BY, re-pointed at
	// the intermediate compensation (positional: the intermediate
	// compensation's top produces mm.Stack[jg]'s columns in order).
	stack := res.stack
	prev := stack[len(stack)-1]
	for i := jg + 1; i < len(mm.Stack); i++ {
		clone, ok := m.cloneStackBox(mm.Stack[i], mm.Stack[i-1], prev, mm)
		if !ok {
			return nil
		}
		stack = append(stack, clone)
		prev = clone
	}
	// Copy the subsumee itself on top (GB-pC(N+1) in Figure 9).
	eCopy, ok := m.cloneStackBox(e, cE, prev, nil)
	if !ok {
		return nil
	}
	stack = append(stack, eCopy)

	match := &Match{Subsumee: e, Subsumer: r, Stack: stack, SubQ: res.qSub, Pattern: "§4.2.2"}
	match.indexComp()
	return match
}

// gbPattern names the paper pattern a GROUP BY match was established under:
// the multidimensional patterns take precedence (a multi-grouping-set
// subsumee is §5.2, a cube AST serving a simple GROUP BY is §5.1), then the
// shape of the child compensation decides §4.1.2 (exact child) vs §4.2.1
// (SELECT-compensated child).
func gbPattern(view *gbView, r *qgm.Box, childExact bool) string {
	switch {
	case len(view.groupingSets) > 1:
		return "§5.2"
	case len(r.GroupingSets) > 1:
		return "§5.1"
	case childExact:
		return "§4.1.2"
	default:
		return "§4.2.1"
	}
}

// viewFromQueryGB builds the subsumee view for a query GROUP BY box whose
// child matched the subsumer's child (exactly or with SELECT compensation).
func (m *Matcher) viewFromQueryGB(e *qgm.Box, mm *Match, rqc *qgm.Quantifier) *gbView {
	eqc := e.Quantifiers[0]
	p := &childPair{eq: eqc, rq: rqc, m: mm}
	tr := func(expr qgm.Expr) qgm.Expr {
		c, ok := expr.(*qgm.ColRef)
		if !ok || c.Q != eqc {
			return nil
		}
		return (&translator{}).translateQNCPair(p, c.Col)
	}
	return buildView(e, tr)
}

// viewFromCompGB builds the subsumee view for the lowest GROUP BY box inside
// a child compensation (§4.2.2): its expressions expand through the
// compensation boxes below it into subsumer-child space.
func (m *Matcher) viewFromCompGB(gb *qgm.Box, mm *Match, rqc *qgm.Quantifier) *gbView {
	tr := func(expr qgm.Expr) qgm.Expr {
		return expandCompExpr(mm, rqc, expr)
	}
	return buildView(gb, tr)
}

// buildView assembles a gbView, translating each grouping column and
// aggregate argument with tr. tr returns nil for untranslatable expressions.
func buildView(b *qgm.Box, tr func(qgm.Expr) qgm.Expr) *gbView {
	v := &gbView{box: b}
	posOf := map[int]int{}
	for pos, g := range b.GroupBy {
		t := tr(b.Cols[g].Expr)
		if t == nil {
			return nil
		}
		v.groupExprs = append(v.groupExprs, t)
		posOf[g] = pos
	}
	for i, c := range b.Cols {
		if b.IsGroupCol(i) {
			v.cols = append(v.cols, gbCol{name: c.Name, isGroup: true, groupPos: posOf[i]})
			continue
		}
		agg, ok := c.Expr.(*qgm.Agg)
		if !ok {
			return nil
		}
		col := gbCol{name: c.Name, agg: agg}
		if !agg.Star {
			col.argR = tr(agg.Arg)
			if col.argR == nil {
				return nil
			}
		}
		v.cols = append(v.cols, col)
	}
	for _, gs := range b.GroupingSets {
		v.groupingSets = append(v.groupingSets, append([]int(nil), gs...))
	}
	if len(v.groupingSets) == 0 {
		all := make([]int, len(v.groupExprs))
		for i := range all {
			all[i] = i
		}
		v.groupingSets = [][]int{all}
	}
	return v
}

// translateQNCPair exposes per-pair QNC translation for view construction.
func (t *translator) translateQNCPair(p *childPair, col int) qgm.Expr {
	return t.translateQNC(p, col)
}

// gbCoreResult is the outcome of the core GROUP BY match: the compensation
// stack ([select] or [select, groupby]) whose top produces the view's columns
// in order, plus exactness information.
type gbCoreResult struct {
	stack  []*qgm.Box
	qSub   *qgm.Quantifier
	exact  bool
	colMap []int
}

// finishGBMatch packages a core result for a direct (non-recursive) GROUP BY
// match.
func (m *Matcher) finishGBMatch(e, r *qgm.Box, res *gbCoreResult) *Match {
	if res.exact {
		return &Match{Subsumee: e, Subsumer: r, Exact: true, ColMap: res.colMap}
	}
	match := &Match{Subsumee: e, Subsumer: r, Stack: res.stack, SubQ: res.qSub}
	match.indexComp()
	return match
}

// cloneStackBox clones one box of a compensation stack (or the subsumee
// itself), re-pointing references from oldChild to newChild positionally.
// origMatch supplies rejoin identification for compensation boxes (nil when
// cloning the subsumee, whose extra quantifiers are rejoins by definition).
func (m *Matcher) cloneStackBox(b, oldChild, newChild *qgm.Box, origMatch *Match) (*qgm.Box, bool) {
	label := "Sel"
	if b.Kind == qgm.GroupByBox {
		label = "GB"
	}
	clone := m.newCompBox(b.Kind, compLabel(label))
	clone.Distinct = b.Distinct
	clone.Regroup = b.Regroup
	qNew := m.newQuant(qgm.ForEach, newChild, "")
	clone.Quantifiers = []*qgm.Quantifier{qNew}

	var rejoinQs []*qgm.Quantifier
	for _, q := range b.Quantifiers {
		if q.Box != oldChild {
			rejoinQs = append(rejoinQs, q)
		}
	}
	rmap, cloned := m.cloneRejoins(rejoinQs)
	clone.Quantifiers = append(clone.Quantifiers, cloned...)

	ok := true
	remap := func(e qgm.Expr) qgm.Expr {
		return qgm.MapExprTopDown(e, func(x qgm.Expr) (qgm.Expr, bool) {
			c, isRef := x.(*qgm.ColRef)
			if !isRef {
				return nil, false
			}
			if c.Q.Box == oldChild {
				return &qgm.ColRef{Q: qNew, Col: c.Col}, true
			}
			if q, isRejoin := rmap[c.Q.ID]; isRejoin {
				return &qgm.ColRef{Q: q, Col: c.Col}, true
			}
			ok = false
			return c, true
		})
	}
	for _, col := range b.Cols {
		clone.Cols = append(clone.Cols, qgm.QCL{Name: col.Name, Expr: remap(col.Expr)})
	}
	for _, p := range b.Preds {
		clone.Preds = append(clone.Preds, remap(p))
	}
	clone.GroupBy = append([]int(nil), b.GroupBy...)
	for _, gs := range b.GroupingSets {
		clone.GroupingSets = append(clone.GroupingSets, append([]int(nil), gs...))
	}
	if !ok {
		return nil, false
	}
	return clone, true
}

// cuboidPlan records how one subsumee grouping set maps onto one subsumer
// grouping set.
type cuboidPlan struct {
	rSet        int         // index into r.GroupingSets
	directMap   map[int]int // subsumee grouping position → subsumer grouping position
	exactSets   bool        // bijective direct mapping
	needRegroup bool
}

// matchGBCore implements the shared conditions and compensation construction
// of §4.1.2, §4.2.1, §5.1 and §5.2 for one subsumee view against the subsumer
// GROUP BY box r (child quantifier rqc), with an optional SELECT child
// compensation childSel belonging to child match mm.
func (m *Matcher) matchGBCore(view *gbView, r *qgm.Box, rqc *qgm.Quantifier, childSel *qgm.Box, mm *Match) *gbCoreResult {
	// Rejoin children of the SELECT child compensation.
	var rejoinQs []*qgm.Quantifier
	if childSel != nil {
		for _, q := range childSel.Quantifiers {
			if q != mm.SubQ {
				rejoinQs = append(rejoinQs, q)
			}
		}
	}
	// The paper's §4.2.1 pattern assumes aggregate arguments originate from
	// non-rejoin columns; its extended version relaxes this, and so do we:
	// deriveAgg handles rejoin-referencing arguments through the
	// derive-and-multiply-by-count rule (SUM/COUNT) or direct re-aggregation
	// (MIN/MAX/DISTINCT), which stays correct under join multiplicity.

	// Equivalences over the subsumer-child space: the child box's own output
	// equivalences, extended with equality predicates from the SELECT child
	// compensation (a rejoin predicate like flid = lid makes the rejoin
	// column and the subsumer column interchangeable — Figure 8).
	eqCR := outputEquiv(rqc)
	var pulledPreds []qgm.Expr
	if childSel != nil {
		for _, p := range childSel.Preds {
			rs := expandCompExpr(mm, rqc, p)
			pulledPreds = append(pulledPreds, rs)
			if b, ok := rs.(*qgm.Bin); ok && b.Op == "=" {
				l, lok := b.L.(*qgm.ColRef)
				r2, rok := b.R.(*qgm.ColRef)
				if lok && rok {
					eqCR.Union(l, r2)
				}
			}
		}
	}

	// Order candidate subsumer cuboids (smallest first per §5.1, unless the
	// ablation asks for declaration order).
	candOrder := make([]int, len(r.GroupingSets))
	for i := range candOrder {
		candOrder[i] = i
	}
	if !m.opts.FirstCuboid {
		sort.SliceStable(candOrder, func(a, b int) bool {
			return len(r.GroupingSets[candOrder[a]]) < len(r.GroupingSets[candOrder[b]])
		})
	}

	hasRejoin := len(rejoinQs) > 0
	rejoin1N := !hasRejoin || (!m.opts.AlwaysRegroup && m.rejoinsAre1N(childSel, rejoinQs))

	// planFor finds the best subsumer cuboid for one subsumee grouping set.
	planFor := func(gse []int, forbidRegroup bool) *cuboidPlan {
		inGSE := map[int]bool{}
		for _, p := range gse {
			inGSE[p] = true
		}
		for _, ri := range candOrder {
			gsr := r.GroupingSets[ri]
			plan := &cuboidPlan{rSet: ri, directMap: map[int]int{}}
			usedR := map[int]bool{}
			allDirect := true
			for _, p := range gse {
				found := -1
				for _, rpos := range gsr {
					rcol := r.GroupBy[rpos]
					if usedR[rpos] {
						continue
					}
					if qgm.ExprEqual(view.groupExprs[p], r.Cols[rcol].Expr, eqCR) {
						found = rpos
						break
					}
				}
				if found >= 0 {
					plan.directMap[p] = found
					usedR[found] = true
				} else {
					allDirect = false
				}
			}
			plan.exactSets = allDirect && len(usedR) == len(gsr)
			plan.needRegroup = !plan.exactSets || !rejoin1N
			if plan.needRegroup && forbidRegroup {
				continue
			}
			if !allDirect {
				// Remaining grouping expressions must be derivable from the
				// cuboid's grouping columns and/or rejoin columns (§4.2.1
				// condition 1).
				d := m.cuboidDeriver(r, nil, gsr, eqCR, rejoinQs, nil)
				ok := true
				for _, p := range gse {
					if _, direct := plan.directMap[p]; direct {
						continue
					}
					if !d.derivable(view.groupExprs[p]) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
			}
			// Slicing feasibility: every grouping column we must test for
			// NULL needs a non-nullable underlying expression.
			if len(r.GroupingSets) > 1 && !m.sliceable(r, gsr) {
				continue
			}
			// Pull-up condition (§4.2.1 condition 3): child-compensation
			// predicates must derive from this cuboid's grouping columns
			// and/or the rejoin columns.
			{
				d := m.cuboidDeriver(r, nil, gsr, eqCR, rejoinQs, nil)
				ok := true
				for _, p := range pulledPreds {
					if !d.derivable(p) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
			}
			// Aggregates must be coverable. Without regrouping they must
			// match subsumer aggregate columns directly; if they don't but
			// regrouping is allowed, fall back to a (trivial) regroup and use
			// the derivation rules.
			if !plan.needRegroup {
				direct := true
				for _, c := range view.cols {
					if c.isGroup {
						continue
					}
					if m.directAggCol(c, r, eqCR) < 0 {
						direct = false
						break
					}
				}
				if !direct {
					if forbidRegroup {
						continue
					}
					plan.needRegroup = true
				}
			}
			if plan.needRegroup {
				d := m.cuboidDeriver(r, nil, gsr, eqCR, rejoinQs, nil)
				dummy := &qgm.Quantifier{ID: -1, Box: r}
				ok := true
				for _, c := range view.cols {
					if c.isGroup {
						continue
					}
					if spec := m.deriveAgg(c, r, dummy, eqCR, d); spec == nil {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
			}
			return plan
		}
		return nil
	}

	multiSubsumee := len(view.groupingSets) > 1

	if !multiSubsumee {
		plan := planFor(view.groupingSets[0], false)
		if plan == nil {
			return nil
		}
		return m.buildGBComp(view, r, rqc, childSel, mm, rejoinQs, eqCR, []*cuboidPlan{plan}, view.groupingSets)
	}

	// §5.2: cube query with cube AST. First try matching every subsumee
	// cuboid independently without regrouping, under a globally consistent
	// column mapping.
	plans := make([]*cuboidPlan, 0, len(view.groupingSets))
	global := map[int]int{}
	consistent := true
	for _, gse := range view.groupingSets {
		plan := planFor(gse, true)
		if plan == nil {
			consistent = false
			break
		}
		for p, rpos := range plan.directMap {
			if prev, seen := global[p]; seen && prev != rpos {
				consistent = false
				break
			}
			global[p] = rpos
		}
		if !consistent {
			break
		}
		plans = append(plans, plan)
	}
	if consistent {
		// Pulled-up predicates must derive from columns present in *every*
		// selected cuboid, or they would misfire on NULL-padded rows.
		d := m.cuboidDeriver(r, nil, m.predSourceSet(plans, r), eqCR, rejoinQs, nil)
		for _, p := range pulledPreds {
			if !d.derivable(p) {
				consistent = false
				break
			}
		}
	}
	if consistent {
		return m.buildGBComp(view, r, rqc, childSel, mm, rejoinQs, eqCR, plans, view.groupingSets)
	}

	// Fallback: treat the subsumee as a simple GROUP BY over the union of its
	// grouping sets, then regroup with the subsumee's own grouping-set
	// structure.
	union := map[int]bool{}
	for _, gse := range view.groupingSets {
		for _, p := range gse {
			union[p] = true
		}
	}
	var ugse []int
	for p := range union {
		ugse = append(ugse, p)
	}
	sort.Ints(ugse)
	plan := planFor(ugse, false)
	if plan == nil {
		return nil
	}
	plan.needRegroup = true
	// "Regrouping is performed not by GSE, but by a multidimensional GROUP BY
	// box that has the same gs function as the subsumee" (§5.2).
	return m.buildGBComp(view, r, rqc, childSel, mm, rejoinQs, eqCR, []*cuboidPlan{plan}, view.groupingSets)
}

// sliceable checks that every subsumer grouping column whose NULL-ness must
// discriminate the selected cuboid has a non-NULL underlying value.
func (m *Matcher) sliceable(r *qgm.Box, gsr []int) bool {
	return cuboidSliceable(r, gsr)
}

// cuboidSliceable is the query-independent core of the sliceability test; the
// signature index also uses it to pre-classify cube ASTs (rule R5).
func cuboidSliceable(r *qgm.Box, gsr []int) bool {
	inSet := map[int]bool{}
	for _, pos := range gsr {
		inSet[pos] = true
	}
	for pos, col := range r.GroupBy {
		inAll := true
		for _, gs := range r.GroupingSets {
			if !containsPos(gs, pos) {
				inAll = false
				break
			}
		}
		if inAll {
			continue // never NULL-padded; no predicate needed
		}
		// A slicing predicate (IS NULL or IS NOT NULL) is required for this
		// column; a nullable underlying value would make it ambiguous.
		if _, nullable := qgm.InferType(r.Cols[col].Expr); nullable {
			return false
		}
	}
	return true
}

func containsPos(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// rejoinsAre1N reports whether every rejoin joins at most one row per
// subsumer row: the rejoin child is a base table whose equality-join columns
// contain a unique key (§4.2.1: "the rejoin is 1:N with the rejoin tables
// being the 1 side").
func (m *Matcher) rejoinsAre1N(childSel *qgm.Box, rejoinQs []*qgm.Quantifier) bool {
	for _, q := range rejoinQs {
		if q.Kind == qgm.Scalar {
			continue // scalar children never affect multiplicity
		}
		if q.Box.Kind != qgm.BaseTableBox {
			return false
		}
		var keyCols []string
		for _, p := range childSel.Preds {
			b, ok := p.(*qgm.Bin)
			if !ok || b.Op != "=" {
				continue
			}
			l, lok := b.L.(*qgm.ColRef)
			r, rok := b.R.(*qgm.ColRef)
			if !lok || !rok {
				continue
			}
			if l.Q == q && r.Q != q {
				keyCols = append(keyCols, q.Box.Table.Columns[l.Col].Name)
			} else if r.Q == q && l.Q != q {
				keyCols = append(keyCols, q.Box.Table.Columns[r.Col].Name)
			}
		}
		if !q.Box.Table.HasUniqueKey(keyCols) {
			return false
		}
	}
	return true
}

// cuboidDeriver builds a deriver whose sources are the grouping columns of
// the selected subsumer cuboid plus rejoin columns. qSub may be nil for
// feasibility checks (the derived output is discarded); rejoinMap may be nil,
// in which case rejoin references map to themselves (feasibility only).
func (m *Matcher) cuboidDeriver(r *qgm.Box, qSub *qgm.Quantifier, gsr []int, eqCR *qgm.Equiv, rejoinQs []*qgm.Quantifier, rejoinMap map[int]*qgm.Quantifier) *deriver {
	if qSub == nil {
		qSub = &qgm.Quantifier{ID: -1, Box: r}
	}
	cols := make([]int, len(gsr))
	for i, pos := range gsr {
		cols[i] = r.GroupBy[pos]
	}
	if rejoinMap == nil {
		rejoinMap = map[int]*qgm.Quantifier{}
		for _, q := range rejoinQs {
			rejoinMap[q.ID] = q
		}
	}
	return &deriver{
		eq:        eqCR,
		sources:   subsumerSources(r, qSub, cols),
		rejoinMap: rejoinMap,
		leafFirst: m.opts.LeafFirstDerivation,
	}
}
