package core

import (
	"repro/internal/qgm"
)

// deriver rewrites a translated (subsumer-space) expression into an
// expression over the compensation's quantifiers: subtrees that the subsumer
// computes as output columns collapse to references through the
// compensation's subsumer quantifier, rejoin references remap to the
// compensation's rejoin quantifiers, and the remaining operators are
// recomputed in the compensation (§6: "derivation is the reverse operation,
// where pieces of the translated expression are collapsed as they are
// computed along the derivation path").
type deriver struct {
	// eq holds the subsumer-space equivalence classes used when comparing
	// subtrees with subsumer output expressions.
	eq *qgm.Equiv
	// sources are the available subsumer outputs: expr is the subsumer-space
	// expression a column computes, ref the compensation-side reference.
	sources []dsource
	// rejoinMap maps original rejoin quantifier IDs to the compensation's
	// cloned quantifiers over the same child boxes.
	rejoinMap map[int]*qgm.Quantifier
	// leafFirst disables the minimal-QCL preference: subtrees are decomposed
	// before consulting subsumer outputs (ablation; see Options).
	leafFirst bool
}

type dsource struct {
	expr qgm.Expr
	ref  qgm.Expr
}

// errUnderivable reports a failed derivation.
type errUnderivable struct{ expr qgm.Expr }

func (e *errUnderivable) Error() string {
	return "core: expression not derivable from subsumer outputs: " + e.expr.String()
}

// derive rewrites t (subsumer-space) over the compensation's quantifiers, or
// fails. With the paper's minimal-QCL preference, whole subtrees are matched
// against subsumer outputs top-down, so the derivation referencing the fewest
// subsumer columns wins (§4.1.1: amt derives as value*(1-disc), two columns,
// rather than qty*price*(1-disc), three).
func (d *deriver) derive(t qgm.Expr) (qgm.Expr, error) {
	// Rejoin references always stay rejoin references: mapping them through
	// column-equivalence classes onto subsumer columns would erase the very
	// join predicates that established the equivalence.
	if x, ok := t.(*qgm.ColRef); ok {
		if q, ok := d.rejoinMap[x.Q.ID]; ok {
			return &qgm.ColRef{Q: q, Col: x.Col}, nil
		}
	}
	if !d.leafFirst {
		if ref, ok := d.lookup(t); ok {
			return ref, nil
		}
	}
	switch x := t.(type) {
	case *qgm.ColRef:
		if d.leafFirst {
			if ref, ok := d.lookup(t); ok {
				return ref, nil
			}
		}
		return nil, &errUnderivable{expr: t}
	case *qgm.Const:
		return x, nil
	case *qgm.Call:
		args := make([]qgm.Expr, len(x.Args))
		for i, a := range x.Args {
			da, err := d.derive(a)
			if err != nil {
				return nil, err
			}
			args[i] = da
		}
		return &qgm.Call{Name: x.Name, Args: args}, nil
	case *qgm.Bin:
		l, err := d.derive(x.L)
		if err != nil {
			return nil, err
		}
		r, err := d.derive(x.R)
		if err != nil {
			return nil, err
		}
		return &qgm.Bin{Op: x.Op, L: l, R: r}, nil
	case *qgm.Not:
		e, err := d.derive(x.E)
		if err != nil {
			return nil, err
		}
		return &qgm.Not{E: e}, nil
	case *qgm.IsNull:
		e, err := d.derive(x.E)
		if err != nil {
			return nil, err
		}
		return &qgm.IsNull{E: e, Neg: x.Neg}, nil
	case *qgm.Like:
		e, err := d.derive(x.E)
		if err != nil {
			return nil, err
		}
		p, err := d.derive(x.Pattern)
		if err != nil {
			return nil, err
		}
		return &qgm.Like{E: e, Pattern: p, Neg: x.Neg}, nil
	case *qgm.Case:
		whens := make([]qgm.CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			cond, err := d.derive(w.Cond)
			if err != nil {
				return nil, err
			}
			then, err := d.derive(w.Then)
			if err != nil {
				return nil, err
			}
			whens[i] = qgm.CaseWhen{Cond: cond, Then: then}
		}
		var els qgm.Expr
		if x.Else != nil {
			var err error
			els, err = d.derive(x.Else)
			if err != nil {
				return nil, err
			}
		}
		return &qgm.Case{Whens: whens, Else: els}, nil
	case *qgm.Agg:
		// Aggregates are derived by the GROUP BY pattern rules, never by the
		// generic scalar deriver.
		return nil, &errUnderivable{expr: t}
	default:
		return nil, &errUnderivable{expr: t}
	}
}

// lookup finds a subsumer output column computing t.
func (d *deriver) lookup(t qgm.Expr) (qgm.Expr, bool) {
	for _, s := range d.sources {
		if s.expr == nil {
			continue
		}
		if qgm.ExprEqual(s.expr, t, d.eq) {
			return s.ref, true
		}
	}
	return nil, false
}

// derivable reports whether t can be derived without materializing anything.
func (d *deriver) derivable(t qgm.Expr) bool {
	_, err := d.derive(t)
	return err == nil
}

// subsumerSources builds the deriver sources for a subsumer box consumed via
// quantifier qSub: output column k computes r.Cols[k].Expr (a subsumer-space
// expression) and is referenced as qSub.k. onlyCols restricts the usable
// columns (e.g. grouping columns of a selected cuboid); nil allows all.
func subsumerSources(r *qgm.Box, qSub *qgm.Quantifier, onlyCols []int) []dsource {
	var allowed map[int]bool
	if onlyCols != nil {
		allowed = make(map[int]bool, len(onlyCols))
		for _, c := range onlyCols {
			allowed[c] = true
		}
	}
	var out []dsource
	for k, c := range r.Cols {
		if allowed != nil && !allowed[k] {
			continue
		}
		if c.Expr == nil {
			// Base-table subsumer column: its "expression" is itself; the
			// caller handles base tables separately.
			continue
		}
		out = append(out, dsource{expr: c.Expr, ref: &qgm.ColRef{Q: qSub, Col: k}})
	}
	return out
}

// cloneRejoins creates compensation quantifiers mirroring the given rejoin
// quantifiers (same child boxes, same kinds) and returns the remapping.
func (m *Matcher) cloneRejoins(rejoins []*qgm.Quantifier) (map[int]*qgm.Quantifier, []*qgm.Quantifier) {
	remap := map[int]*qgm.Quantifier{}
	var clones []*qgm.Quantifier
	for _, q := range rejoins {
		nq := m.newQuant(q.Kind, q.Box, q.Alias)
		remap[q.ID] = nq
		clones = append(clones, nq)
	}
	return remap, clones
}

// addQCL appends (or reuses) an output column computing e on box b, returning
// its ordinal.
func addQCL(b *qgm.Box, name string, e qgm.Expr) int {
	for i, c := range b.Cols {
		if c.Expr != nil && qgm.ExprEqual(c.Expr, e, nil) {
			return i
		}
	}
	if name == "" {
		name = uniqueColName(b, "c")
	} else if b.ColIndex(name) >= 0 {
		name = uniqueColName(b, name)
	}
	b.Cols = append(b.Cols, qgm.QCL{Name: name, Expr: e})
	return len(b.Cols) - 1
}

func uniqueColName(b *qgm.Box, base string) string {
	for i := 0; ; i++ {
		name := base
		if i > 0 || base == "c" {
			name = base + itoa(len(b.Cols)+i)
		}
		if b.ColIndex(name) < 0 {
			return name
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
