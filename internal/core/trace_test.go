package core_test

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/qgm"
)

// TestExplainTable1 checks the EXPLAIN story for the paper's Table 1
// counter-example: the trace must attribute the rejection to the subsumer's
// unmatched HAVING predicate (condition 2), which is exactly what Figure 15's
// translation walkthrough detects.
func TestExplainTable1(t *testing.T) {
	e := newEnv(t, 500)
	ast, err := e.rw.CompileAST(catalog.ASTDef{Name: "astexp", SQL: `
		select flid, year(date) as year, count(*) as cnt
		from trans group by flid, year(date)
		having count(*) > 2`})
	if err != nil {
		t.Fatal(err)
	}
	g, err := qgm.BuildSQL("select flid, count(*) as cnt from trans group by flid", e.cat)
	if err != nil {
		t.Fatal(err)
	}
	entries := e.rw.Explain(g, ast)
	if len(entries) == 0 {
		t.Fatal("no trace entries")
	}
	var sawCondition2, sawMatch bool
	for _, te := range entries {
		if te.Matched {
			sawMatch = true // lower boxes do match
		}
		if !te.Matched && strings.Contains(te.Reason, "condition 2") {
			sawCondition2 = true
		}
	}
	if !sawMatch {
		t.Errorf("expected some lower-level matches in the trace: %+v", entries)
	}
	if !sawCondition2 {
		t.Errorf("expected a condition-2 rejection in the trace: %+v", entries)
	}
}

// TestExplainSuccessfulMatch records compensation shapes for a match.
func TestExplainSuccessfulMatch(t *testing.T) {
	e := newEnv(t, 500)
	ast, err := e.rw.CompileAST(catalog.ASTDef{Name: "astexp2", SQL: `
		select flid, year(date) as year, count(*) as cnt
		from trans group by flid, year(date)`})
	if err != nil {
		t.Fatal(err)
	}
	g, err := qgm.BuildSQL("select flid, count(*) as cnt from trans group by flid", e.cat)
	if err != nil {
		t.Fatal(err)
	}
	entries := e.rw.Explain(g, ast)
	found := false
	for _, te := range entries {
		if te.Matched && strings.Contains(te.Reason, "compensation") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a compensated match in the trace: %+v", entries)
	}
}

// TestTraceOffByDefault: without Options.Trace the matcher records nothing.
func TestTraceOffByDefault(t *testing.T) {
	e := newEnv(t, 300)
	ast, err := e.rw.CompileAST(catalog.ASTDef{Name: "astexp3",
		SQL: "select tid, qty from trans"})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := qgm.BuildSQL("select tid from trans", e.cat)
	matcher := core.NewMatcher(e.cat, g, ast.Graph, core.Options{})
	matcher.Run()
	if len(matcher.Trace()) != 0 {
		t.Fatal("trace should be empty when disabled")
	}
}
