package core

import (
	"repro/internal/catalog"
	"repro/internal/qgm"
)

// ComputeSignature summarizes a compiled graph into the cheap, plain-data
// catalog.Signature the candidate-pruning index matches on (DESIGN.md §10).
// It is computed once per AST at compile time and once per query per rewrite.
// It returns nil — which every index check treats as "always admit" — when
// any referenced base table has no catalog ID, so an exotic graph can never
// cause an unsound prune.
func ComputeSignature(cat *catalog.Catalog, g *qgm.Graph) *catalog.Signature {
	sig := &catalog.Signature{}

	// Table sets: every base table anywhere, and the subset reachable from
	// the root without crossing a Scalar quantifier (those are the tables
	// matching must account for; scalar-subquery extras are exempt from the
	// losslessness proof).
	for _, b := range g.Leaves() {
		id, ok := cat.TableID(b.Table.Name)
		if !ok {
			return nil
		}
		sig.Tables.Add(id)
	}
	seen := map[int]bool{}
	var walkForEach func(b *qgm.Box)
	walkForEach = func(b *qgm.Box) {
		if seen[b.ID] {
			return
		}
		seen[b.ID] = true
		if b.Kind == qgm.BaseTableBox {
			if id, ok := cat.TableID(b.Table.Name); ok {
				sig.Required.Add(id)
			}
			return
		}
		for _, q := range b.Quantifiers {
			if q.Kind == qgm.ForEach {
				walkForEach(q.Box)
			}
		}
	}
	walkForEach(g.Root)

	// Referenced base-table columns, as sorted "table.column" names. The set
	// is informational (observability and EXPLAIN) — DESIGN.md §10 explains
	// why no conservative pruning rule can be built on it.
	cols := map[string]bool{}
	noteCols := func(e qgm.Expr) {
		for _, c := range qgm.ColRefs(e) {
			if c.Q == nil || c.Q.Box.Kind != qgm.BaseTableBox {
				continue
			}
			t := c.Q.Box.Table
			if t != nil && c.Col >= 0 && c.Col < len(t.Columns) {
				cols[t.Name+"."+t.Columns[c.Col].Name] = true
			}
		}
	}
	for _, b := range g.Boxes() {
		for _, c := range b.Cols {
			noteCols(c.Expr)
		}
		for _, p := range b.Preds {
			noteCols(p)
		}
	}
	sig.Columns = catalog.SortedColumns(cols)

	// GROUP BY shape. Built graphs wrap aggregation in a top select box
	// (TopSel → GB → Sel → …), so the interesting GROUP BY boxes are the ones
	// reachable from the root through ForEach quantifiers — those can never be
	// lossless extras (extras must be base tables), so on the AST side each
	// must be matched against a query GROUP BY box.
	gbSumCount := func(b *qgm.Box) bool {
		for i := range b.Cols {
			if b.IsGroupCol(i) {
				continue
			}
			if a, ok := b.Cols[i].Expr.(*qgm.Agg); ok && !a.Distinct && (a.Op == "sum" || a.Op == "count") {
				return true
			}
		}
		return false
	}
	allSumCount := true
	for _, b := range g.Boxes() {
		if b.Kind != qgm.GroupByBox {
			continue
		}
		sig.HasGroupBy = true
		if !gbSumCount(b) {
			allSumCount = false
		}
	}
	sig.AllGroupBySumCount = sig.HasGroupBy && allSumCount

	sig.ReqGBSumCount = true
	seenGB := map[int]bool{}
	var walkGB func(b *qgm.Box)
	walkGB = func(b *qgm.Box) {
		if seenGB[b.ID] {
			return
		}
		seenGB[b.ID] = true
		if b.Kind == qgm.GroupByBox {
			sig.ReqGroupBy = true
			if !gbSumCount(b) {
				sig.ReqGBSumCount = false
			}
			if len(b.GroupingSets) > 1 {
				sliceable := 0
				for _, gs := range b.GroupingSets {
					if cuboidSliceable(b, gs) {
						sliceable++
					}
				}
				if sliceable == 0 {
					sig.UnsliceableCube = true
				}
			}
		}
		for _, q := range b.Quantifiers {
			if q.Kind == qgm.ForEach {
				walkGB(q.Box)
			}
		}
	}
	walkGB(g.Root)
	return sig
}
