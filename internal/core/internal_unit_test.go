package core

// White-box unit tests for the matching internals: the deriver (minimal-QCL
// vs leaf-first), child assignment, output equivalence, aggregate rule
// helpers, and compensation utilities.

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/workload"
)

func starCat(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	workload.Schema(cat)
	return cat
}

func buildG(t testing.TB, cat *catalog.Catalog, sql string) *qgm.Graph {
	t.Helper()
	g, err := qgm.BuildSQL(sql, cat)
	if err != nil {
		t.Fatalf("build %q: %v", sql, err)
	}
	return g
}

// TestDeriverMinimalVsLeafFirst reproduces the §4.1.1 derivation choice on a
// constructed subsumer: value = qty*price available as one column.
func TestDeriverMinimalVsLeafFirst(t *testing.T) {
	cat := starCat(t)
	ast := buildG(t, cat, "select qty, price, disc, qty * price as value from trans")
	r := ast.Root
	qSub := &qgm.Quantifier{ID: 999, Box: r}

	// Target: qty*price*(1-disc) over r's own child quantifier.
	rq := r.Quantifiers[0]
	qty := &qgm.ColRef{Q: rq, Col: 5}
	price := &qgm.ColRef{Q: rq, Col: 6}
	disc := &qgm.ColRef{Q: rq, Col: 7}
	target := &qgm.Bin{Op: "*",
		L: &qgm.Bin{Op: "*", L: qty, R: price},
		R: &qgm.Bin{Op: "-", L: &qgm.Const{Val: sqltypes.NewInt(1)}, R: disc},
	}

	countRefs := func(e qgm.Expr) int {
		n := 0
		qgm.WalkExpr(e, func(x qgm.Expr) bool {
			if c, ok := x.(*qgm.ColRef); ok && c.Q == qSub {
				n++
			}
			return true
		})
		return n
	}

	dMin := &deriver{eq: qgm.NewEquiv(), sources: subsumerSources(r, qSub, nil)}
	got, err := dMin.derive(target)
	if err != nil {
		t.Fatalf("minimal derive: %v", err)
	}
	if n := countRefs(got); n != 2 {
		t.Fatalf("minimal derivation should use 2 subsumer columns (value, disc), used %d: %s", n, got.String())
	}

	dLeaf := &deriver{eq: qgm.NewEquiv(), sources: subsumerSources(r, qSub, nil), leafFirst: true}
	got2, err := dLeaf.derive(target)
	if err != nil {
		t.Fatalf("leaf-first derive: %v", err)
	}
	if n := countRefs(got2); n != 3 {
		t.Fatalf("leaf-first derivation should use 3 columns, used %d: %s", n, got2.String())
	}
}

// TestDeriverRejoinPrecedence: a rejoin column reference stays a rejoin
// reference even when an equivalence class links it to a subsumer column —
// deriving it away would erase the join predicate (the NewQ1 regression).
func TestDeriverRejoinPrecedence(t *testing.T) {
	cat := starCat(t)
	ast := buildG(t, cat, "select flid, qty from trans")
	r := ast.Root
	rq := r.Quantifiers[0]
	qSub := &qgm.Quantifier{ID: 900, Box: r}

	locBox := &qgm.Box{ID: 500, Kind: qgm.BaseTableBox, Label: "Base-loc"}
	tbl, _ := cat.Table("loc")
	locBox.Table = tbl
	for _, c := range tbl.Columns {
		locBox.Cols = append(locBox.Cols, qgm.QCL{Name: c.Name})
	}
	locQ := &qgm.Quantifier{ID: 901, Box: locBox}
	newLocQ := &qgm.Quantifier{ID: 902, Box: locBox}

	eq := qgm.NewEquiv()
	flid := &qgm.ColRef{Q: rq, Col: 3} // trans.flid in base order? ensure via name below
	// locate flid ordinal
	transBox := rq.Box
	flid.Col = transBox.ColIndex("flid")
	lid := &qgm.ColRef{Q: locQ, Col: 0}
	eq.Union(flid, lid)

	d := &deriver{
		eq:        eq,
		sources:   subsumerSources(r, qSub, nil),
		rejoinMap: map[int]*qgm.Quantifier{locQ.ID: newLocQ},
	}
	pred := &qgm.Bin{Op: "=", L: flid, R: lid}
	got, err := d.derive(pred)
	if err != nil {
		t.Fatal(err)
	}
	b := got.(*qgm.Bin)
	lc, lok := b.L.(*qgm.ColRef)
	rc, rok := b.R.(*qgm.ColRef)
	if !lok || !rok {
		t.Fatalf("derived pred shape: %s", got.String())
	}
	if lc.Q == rc.Q {
		t.Fatalf("join predicate collapsed to a tautology: %s", got.String())
	}
	if rc.Q != newLocQ && lc.Q != newLocQ {
		t.Fatalf("rejoin side not remapped: %s", got.String())
	}
}

// TestAssignChildrenInjective: self-joins need an injective child pairing —
// both trans quantifiers of the query must map to distinct AST quantifiers
// for the match to go through.
func TestAssignChildrenInjective(t *testing.T) {
	cat := starCat(t)
	sql := "select a.tid as t1, b.tid as t2, b.qty as q2 from trans a, trans b where a.tid = b.tid"
	q := buildG(t, cat, sql)
	a := buildG(t, cat, sql)
	m := NewMatcher(cat, q, a, Options{})
	matches := m.Run()
	var root *Match
	for _, mm := range matches {
		if mm.Subsumee == q.Root {
			root = mm
		}
	}
	if root == nil {
		t.Fatalf("self-join query should match its own definition; matches: %d", len(matches))
	}
	assign := m.assignChildren(q.Root, a.Root)
	if len(assign.pairs) != 2 {
		t.Fatalf("expected 2 matched child pairs, got %d", len(assign.pairs))
	}
	if assign.pairs[0].rq == assign.pairs[1].rq {
		t.Fatal("assignment must be injective")
	}
}

// TestOutputEquivSelect: the aid↔faid example — a select box whose join
// predicate equates two outputs makes them interchangeable.
func TestOutputEquivSelect(t *testing.T) {
	cat := starCat(t)
	g := buildG(t, cat, "select faid, aid, qty from trans, acct where faid = aid")
	root := g.Root
	q := &qgm.Quantifier{ID: 800, Box: root}
	eq := outputEquiv(q)
	faid := &qgm.ColRef{Q: q, Col: 0}
	aid := &qgm.ColRef{Q: q, Col: 1}
	qty := &qgm.ColRef{Q: q, Col: 2}
	if !eq.Same(faid, aid) {
		t.Fatal("faid and aid should be equivalent through the join predicate")
	}
	if eq.Same(faid, qty) {
		t.Fatal("faid and qty must not be equivalent")
	}
}

// TestOutputEquivGroupBy: equivalence lifts through grouping columns.
func TestOutputEquivGroupBy(t *testing.T) {
	cat := starCat(t)
	g := buildG(t, cat, `select faid, aid, count(*) as c
		from trans, acct where faid = aid group by faid, aid`)
	gb := g.Root.Child()
	q := &qgm.Quantifier{ID: 801, Box: gb}
	eq := outputEquiv(q)
	if !eq.Same(&qgm.ColRef{Q: q, Col: 0}, &qgm.ColRef{Q: q, Col: 1}) {
		t.Fatal("grouping columns faid/aid should stay equivalent above the GROUP BY")
	}
}

// TestCountStarLike: COUNT(*) and COUNT of non-nullable columns are
// whole-group counts; COUNT(DISTINCT) and COUNT of nullable columns are not.
func TestCountStarLike(t *testing.T) {
	cat := starCat(t)
	g := buildG(t, cat, "select faid, count(*) as a, count(qty) as b, count(distinct qty) as c from trans group by faid")
	gb := g.Root.Child()
	var aggs []*qgm.Agg
	for _, i := range gb.AggCols() {
		aggs = append(aggs, gb.Cols[i].Expr.(*qgm.Agg))
	}
	if len(aggs) != 3 {
		t.Fatalf("agg count %d", len(aggs))
	}
	if !countStarLike(aggs[0], aggs[0].Arg) {
		t.Error("count(*)")
	}
	if !countStarLike(aggs[1], aggs[1].Arg) {
		t.Error("count(qty) with non-nullable qty")
	}
	if countStarLike(aggs[2], aggs[2].Arg) {
		t.Error("count(distinct qty) must not be whole-group")
	}
}

// TestIsConstRspace: only scalar-quantifier references count as constant.
func TestIsConstRspace(t *testing.T) {
	scalarQ := &qgm.Quantifier{ID: 1, Kind: qgm.Scalar}
	rowQ := &qgm.Quantifier{ID: 2, Kind: qgm.ForEach}
	c := &qgm.Const{Val: sqltypes.NewInt(1)}
	if !isConstRspace(c) {
		t.Error("literal")
	}
	if !isConstRspace(&qgm.ColRef{Q: scalarQ, Col: 0}) {
		t.Error("scalar ref")
	}
	if isConstRspace(&qgm.ColRef{Q: rowQ, Col: 0}) {
		t.Error("row ref")
	}
	if isConstRspace(&qgm.Bin{Op: "+", L: c, R: &qgm.ColRef{Q: rowQ, Col: 0}}) {
		t.Error("mixed")
	}
	if isConstRspace(&qgm.Agg{Op: "count", Star: true}) {
		t.Error("aggregate")
	}
}

// TestProjectionOnly classifies compensation shapes.
func TestProjectionOnly(t *testing.T) {
	exact := &Match{Exact: true}
	if !projectionOnly(exact) {
		t.Error("exact match is projection-only")
	}
	q := &qgm.Quantifier{ID: 1}
	sel := &qgm.Box{Kind: qgm.SelectBox, Quantifiers: []*qgm.Quantifier{q},
		Cols: []qgm.QCL{{Name: "x", Expr: &qgm.ColRef{Q: q, Col: 0}}}}
	mm := &Match{Stack: []*qgm.Box{sel}, SubQ: q}
	mm.indexComp()
	if !projectionOnly(mm) {
		t.Error("bare projection")
	}
	sel.Preds = []qgm.Expr{&qgm.Const{Val: sqltypes.NewBool(true)}}
	if projectionOnly(mm) {
		t.Error("predicated compensation is not projection-only")
	}
}
