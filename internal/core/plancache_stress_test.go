package core_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// TestPlanCacheStripedConcurrentHits hammers a striped cache (capacity ≥
// planCacheStripeMin, so 16 shards) from many goroutines over more distinct
// queries than the cache holds, forcing concurrent hits, misses, inserts, and
// evictions across shards. Run under -race this is the memory-safety proof for
// the striping; the assertions prove the accounting survives the races: every
// lookup is classified exactly once (hits + misses == lookups) and no shard
// ever exceeds its capacity.
func TestPlanCacheStripedConcurrentHits(t *testing.T) {
	e := newEnv(t, 1000)
	ast := e.registerAST(t, "pc_stress", pcAggSQL)
	asts := []*core.CompiledAST{ast}
	const capacity = 64 // striped: 16 shards × 4 entries
	cache := core.NewPlanCache(capacity)

	// More distinct queries than capacity, each parseable and rewriteable, so
	// the storm exercises eviction as well as hit promotion.
	queries := make([]string, 96)
	for i := range queries {
		queries[i] = fmt.Sprintf(
			"select faid, count(*) as cnt from trans where faid <= %d group by faid", i+1)
	}

	const workers = 8
	const opsPer = 120
	var lookups atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < opsPer; i++ {
				q := queries[(w*31+i)%len(queries)]
				cr, err := e.rw.RewriteSQLCached(ctx, cache, q, asts, e.store)
				if err != nil {
					errc <- err
					return
				}
				if cr.Plan == nil {
					errc <- fmt.Errorf("worker %d: nil plan for %q", w, q)
					return
				}
				lookups.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	if n := cache.Len(); n > capacity {
		t.Fatalf("cache holds %d entries, capacity %d", n, capacity)
	}
	hits, misses := cache.Stats()
	if hits+misses != lookups.Load() {
		t.Fatalf("hits %d + misses %d != lookups %d", hits, misses, lookups.Load())
	}
	if misses < int64(len(queries)) {
		t.Fatalf("misses %d < distinct queries %d", misses, len(queries))
	}
}

// TestPlanCacheConcurrentInvalidation races cache lookups against the status
// transitions that re-key entries (MarkStale / MarkFresh bump the freshness
// fingerprint): readers must always get a runnable plan mid-flip, and once the
// writer quiesces with the AST fresh, the very next miss repopulates the
// fresh-era entry and subsequent lookups hit it with the rewrite intact.
func TestPlanCacheConcurrentInvalidation(t *testing.T) {
	e := newEnv(t, 1000)
	ast := e.registerAST(t, "pc_flip", pcAggSQL)
	asts := []*core.CompiledAST{ast}
	cache := core.NewPlanCache(core.DefaultPlanCacheSize)
	ctx := context.Background()
	sql := "select faid, count(*) as cnt from trans group by faid"

	const readers = 6
	const readsPer = 80
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)
	stop := make(chan struct{})

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < readsPer; i++ {
				cr, err := e.rw.RewriteSQLCached(ctx, cache, sql, asts, e.store)
				if err != nil {
					errc <- err
					return
				}
				if cr.Plan == nil {
					errc <- fmt.Errorf("reader %d: nil plan", r)
					return
				}
				// A hit that claims the AST must have come from an era whose
				// fingerprint admitted it; a base-plan answer is always legal.
				if cr.Hit && cr.AST != "" && cr.AST != "pc_flip" {
					errc <- fmt.Errorf("reader %d: hit names unknown AST %q", r, cr.AST)
					return
				}
			}
		}(r)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 60; i++ {
			if i%2 == 0 {
				e.cat.MarkStale("pc_flip")
			} else {
				e.cat.MarkFresh("pc_flip")
			}
		}
		e.cat.MarkFresh("pc_flip")
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	<-stop

	// Quiesced fresh: the fresh-era key either already exists or repopulates
	// on this miss; the follow-up lookup must hit and carry the rewrite.
	if _, err := e.rw.RewriteSQLCached(ctx, cache, sql, asts, e.store); err != nil {
		t.Fatal(err)
	}
	cr, err := e.rw.RewriteSQLCached(ctx, cache, sql, asts, e.store)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Hit || cr.AST != "pc_flip" {
		t.Fatalf("after quiesce: want fresh-era hit on pc_flip, got %+v", cr)
	}
}
