package core_test

// Integration tests reproducing every worked example of the paper: each test
// registers the figure's AST, rewrites the figure's query, checks the rewrite
// happened (or, for the negative examples, that it did not), and verifies
// that the original and rewritten queries produce identical results on
// generated data.

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/workload"
)

// env bundles a catalog, store and engine with the star schema loaded.
type env struct {
	cat    *catalog.Catalog
	store  *storage.Store
	engine *exec.Engine
	rw     *core.Rewriter
}

func newEnv(t testing.TB, numTrans int) *env {
	t.Helper()
	cat := catalog.New()
	workload.Schema(cat)
	store := storage.NewStore()
	workload.Load(cat, store, workload.StarConfig{NumTrans: numTrans, Seed: 7})
	return &env{
		cat:    cat,
		store:  store,
		engine: exec.NewEngine(store),
		rw:     core.NewRewriter(cat, core.Options{}),
	}
}

// registerAST compiles an AST, materializes it into the store, and returns it.
func (e *env) registerAST(t testing.TB, name, sql string) *core.CompiledAST {
	t.Helper()
	ca, err := e.rw.CompileAST(catalog.ASTDef{Name: name, SQL: sql})
	if err != nil {
		t.Fatalf("compile AST %s: %v", name, err)
	}
	res, err := e.engine.Run(ca.Graph)
	if err != nil {
		t.Fatalf("materialize AST %s: %v", name, err)
	}
	e.store.Put(ca.Table, res.Rows)
	return ca
}

// mustRewrite asserts the query rewrites against the AST and that original
// and rewritten results agree. It returns the rewritten SQL.
func (e *env) mustRewrite(t *testing.T, querySQL string, ast *core.CompiledAST) string {
	t.Helper()
	orig, err := qgm.BuildSQL(querySQL, e.cat)
	if err != nil {
		t.Fatalf("build query: %v", err)
	}
	origRes, err := e.engine.Run(orig)
	if err != nil {
		t.Fatalf("run original: %v", err)
	}

	q2, err := qgm.BuildSQL(querySQL, e.cat)
	if err != nil {
		t.Fatalf("rebuild query: %v", err)
	}
	res := e.rw.Rewrite(q2, ast)
	if res == nil {
		t.Fatalf("expected a rewrite against %s for:\n  %s", ast.Def.Name, querySQL)
	}
	if !usesTable(q2, ast.Def.Name) {
		t.Fatalf("rewritten graph does not read %s:\n%s", ast.Def.Name, q2.Dump())
	}
	if err := q2.Validate(); err != nil {
		t.Fatalf("rewritten graph invalid: %v\n%s", err, q2.Dump())
	}
	newRes, err := e.engine.Run(q2)
	if err != nil {
		t.Fatalf("run rewritten (%s): %v\nSQL: %s\nGraph:\n%s", ast.Def.Name, err, q2.SQL(), q2.Dump())
	}
	if diff := exec.EqualResults(origRes, newRes); diff != "" {
		t.Fatalf("rewritten result differs: %s\noriginal SQL: %s\nrewritten SQL: %s\nrewritten graph:\n%s",
			diff, querySQL, q2.SQL(), q2.Dump())
	}
	return q2.SQL()
}

// mustNotRewrite asserts no rewrite happens.
func (e *env) mustNotRewrite(t *testing.T, querySQL string, ast *core.CompiledAST) {
	t.Helper()
	q, err := qgm.BuildSQL(querySQL, e.cat)
	if err != nil {
		t.Fatalf("build query: %v", err)
	}
	if res := e.rw.Rewrite(q, ast); res != nil {
		t.Fatalf("unexpected rewrite against %s:\n  %s\n→ %s", ast.Def.Name, querySQL, q.SQL())
	}
}

func usesTable(g *qgm.Graph, name string) bool {
	for _, b := range g.Boxes() {
		if b.Kind == qgm.BaseTableBox && b.Table.Name == name {
			return true
		}
	}
	return false
}

// TestFigure2_Q1 is the paper's introductory example: Q1 regroups AST1's
// (faid, flid, year) counts by (faid, state, year) after rejoining Loc.
func TestFigure2_Q1(t *testing.T) {
	e := newEnv(t, 4000)
	ast1 := e.registerAST(t, "ast1", `
		select faid, flid, year(date) as year, count(*) as cnt
		from trans
		group by faid, flid, year(date)`)
	sql := e.mustRewrite(t, `
		select faid, state, year(date) as year, count(*) as cnt
		from trans, loc
		where flid = lid and country = 'USA'
		group by faid, state, year(date)
		having count(*) > 3`, ast1)
	if !strings.Contains(strings.ToLower(sql), "sum(") {
		t.Errorf("expected re-summed counts in NewQ1, got: %s", sql)
	}
}

// TestFigure5_Q2 exercises §4.1.1: rejoin child (PGroup), lossless extra join
// (Loc via the flid→lid RI constraint), column equivalence (aid ↔ faid), and
// minimal-QCL derivation of qty*price*(1-disc) from the value column.
func TestFigure5_Q2(t *testing.T) {
	e := newEnv(t, 2000)
	ast2 := e.registerAST(t, "ast2", `
		select tid, faid, fpgid, status, country, price, qty, disc, qty * price as value
		from trans, loc, acct
		where lid = flid and faid = aid and disc > 0.1`)
	sql := e.mustRewrite(t, `
		select aid, status, qty * price * (1 - disc) as amt
		from trans, pgroup, acct
		where pgid = fpgid and faid = aid
		and price > 100 and disc > 0.1 and pgname = 'TV'`, ast2)
	low := strings.ToLower(sql)
	if !strings.Contains(low, "value") {
		t.Errorf("expected amt derived via the value column, got: %s", sql)
	}
	if !strings.Contains(low, "pgroup") {
		t.Errorf("expected PGroup rejoin, got: %s", sql)
	}
}

// TestFigure6_Q4 exercises §4.1.2: exact child match, regrouping monthly sums
// into yearly sums via derivation rule (c).
func TestFigure6_Q4(t *testing.T) {
	e := newEnv(t, 2000)
	ast4 := e.registerAST(t, "ast4", `
		select year(date) as year, month(date) as month, sum(qty * price) as value
		from trans
		group by year(date), month(date)`)
	e.mustRewrite(t, `
		select year(date) as year, sum(qty * price) as value
		from trans
		group by year(date)`, ast4)
}

// TestFigure7_Q6 exercises §4.2.1 example 1: SELECT child compensation with
// predicate pull-up (month >= 6) and a grouping expression (year % 100)
// derived from the subsumer's grouping columns.
func TestFigure7_Q6(t *testing.T) {
	e := newEnv(t, 2000)
	ast6 := e.registerAST(t, "ast6", `
		select year(date) as year, month(date) as month, sum(qty * price) as value
		from trans
		group by year(date), month(date)`)
	e.mustRewrite(t, `
		select year(date) % 100 as yy, sum(qty * price) as value
		from trans
		where month(date) >= 6
		group by year(date) % 100`, ast6)
}

// TestFigure8_Q7 exercises §4.2.1 example 2: a rejoin (Loc) inside the child
// compensation. Because the rejoin is 1:N on Loc's key, no regrouping box is
// needed; the counts read off the AST directly.
func TestFigure8_Q7(t *testing.T) {
	e := newEnv(t, 2000)
	ast7 := e.registerAST(t, "ast7", `
		select flid, year(date) as year, count(*) as cnt
		from trans
		group by flid, year(date)`)
	sql := e.mustRewrite(t, `
		select lid, year(date) as year, count(*) as cnt
		from trans, loc
		where flid = lid and country = 'USA'
		group by lid, year(date)`, ast7)
	if strings.Contains(strings.ToLower(sql), "sum(") {
		t.Errorf("1:N rejoin should avoid regrouping, got: %s", sql)
	}
}

// TestFigure10_Q8 exercises §4.2.2: histogram query over a histogram AST —
// the child compensation itself contains a GROUP BY, triggering the recursive
// match and the copy construction of Figure 9.
func TestFigure10_Q8(t *testing.T) {
	e := newEnv(t, 3000)
	ast8 := e.registerAST(t, "ast8", `
		select year, tcnt, count(*) as mcnt
		from (select year(date) as year, month(date) as month, count(*) as tcnt
		      from trans
		      group by year(date), month(date)) m
		group by year, tcnt`)
	e.mustRewrite(t, `
		select tcnt, count(*) as ycnt
		from (select year(date) as year, month(date) as month, count(*) as tcnt
		      from trans
		      group by year(date), month(date)) m
		group by tcnt`, ast8)
}

// TestFigure11_Q10 exercises §4.2.4 and the §6 derivation walkthrough: a
// SELECT subsumee with grouping child compensation plus a scalar subquery
// block that must be matched and threaded through the pulled-up stack.
func TestFigure11_Q10(t *testing.T) {
	e := newEnv(t, 2000)
	ast10 := e.registerAST(t, "ast10", `
		select flid, year(date) as year, count(*) as cnt,
		       (select count(*) from trans) as totcnt
		from trans
		group by flid, year(date)`)
	e.mustRewrite(t, `
		select flid, count(*) as cnt, (select count(*) from trans) as totcnt
		from trans, loc
		where flid = lid and country = 'USA'
		group by flid
		having count(*) > 2`, ast10)
}

// TestFigure11_Q10_Ratio is the paper's exact Q10: the output column is the
// ratio cnt/totcnt whose derivation is traced in §6.
func TestFigure11_Q10_Ratio(t *testing.T) {
	e := newEnv(t, 2000)
	ast10 := e.registerAST(t, "ast10r", `
		select flid, year(date) as year, count(*) as cnt,
		       (select count(*) from trans) as totcnt
		from trans
		group by flid, year(date)`)
	e.mustRewrite(t, `
		select flid, count(*) * 100 / (select count(*) from trans) as cntpct
		from trans, loc
		where flid = lid and country = 'USA'
		group by flid
		having count(*) > 2`, ast10)
}

// TestFigure13_Q11 exercises §5.1: simple GROUP BY queries against a
// GROUPING SETS AST — an exact-cuboid slice (Q11.1), a sliced cuboid with
// regrouping (Q11.2), and the COUNT(DISTINCT) no-match (Q11.3).
func TestFigure13_Q11(t *testing.T) {
	e := newEnv(t, 3000)
	ast11 := e.registerAST(t, "ast11", `
		select flid, faid, year(date) as year, month(date) as month, count(*) as cnt
		from trans
		group by grouping sets((flid, faid, year(date)), (flid, year(date)),
		                       (flid, year(date), month(date)), (year(date)))`)

	t.Run("Q11.1_exact_cuboid", func(t *testing.T) {
		sql := e.mustRewrite(t, `
			select flid, year(date) as year, count(*) as cnt
			from trans
			where year(date) > 1990
			group by flid, year(date)`, ast11)
		low := strings.ToLower(sql)
		if !strings.Contains(low, "is null") || !strings.Contains(low, "is not null") {
			t.Errorf("expected slicing predicates, got: %s", sql)
		}
		if strings.Contains(low, "group by") {
			t.Errorf("Q11.1 should not regroup, got: %s", sql)
		}
	})

	t.Run("Q11.2_regrouped_cuboid", func(t *testing.T) {
		sql := e.mustRewrite(t, `
			select flid, year(date) as year, count(*) as cnt
			from trans
			where month(date) >= 6
			group by flid, year(date)`, ast11)
		low := strings.ToLower(sql)
		if !strings.Contains(low, "sum(") || !strings.Contains(low, "group by") {
			t.Errorf("Q11.2 should regroup with summed counts, got: %s", sql)
		}
	})

	t.Run("Q11.3_no_match", func(t *testing.T) {
		e.mustNotRewrite(t, `
			select flid, year(date) as year, month(date) as month,
			       count(distinct faid) as custcnt
			from trans
			group by flid, year(date), month(date)`, ast11)
	})
}

// TestFigure14_Q12 exercises §5.2: cube queries against a cube AST — all
// cuboids matched without regrouping (Q12.1, disjunctive slicing) and the
// union-grouping-set fallback with multidimensional regrouping (Q12.2).
func TestFigure14_Q12(t *testing.T) {
	e := newEnv(t, 3000)
	ast12 := e.registerAST(t, "ast12", `
		select flid, faid, year(date) as year, month(date) as month, count(*) as cnt
		from trans
		group by grouping sets((flid, faid, year(date)), (flid, year(date)),
		                       (flid, year(date), month(date)), (year(date)))`)

	t.Run("Q12.1_sliced_cuboids", func(t *testing.T) {
		sql := e.mustRewrite(t, `
			select flid, year(date) as year, count(*) as cnt
			from trans
			where year(date) > 1990
			group by grouping sets((flid, year(date)), (year(date)))`, ast12)
		low := strings.ToLower(sql)
		if !strings.Contains(low, " or ") {
			t.Errorf("expected disjunctive slicing, got: %s", sql)
		}
	})

	t.Run("Q12.2_union_fallback", func(t *testing.T) {
		sql := e.mustRewrite(t, `
			select flid, year(date) as year, count(*) as cnt
			from trans
			where year(date) > 1990
			group by grouping sets((flid), (year(date)))`, ast12)
		low := strings.ToLower(sql)
		if !strings.Contains(low, "grouping sets") {
			t.Errorf("expected multidimensional regrouping, got: %s", sql)
		}
	})
}

// TestTable1_HavingMismatch reproduces the paper's Table 1/Figure 15
// counter-example: adding HAVING count(*) > 2 to the AST must prevent the
// match, because the AST's monthly HAVING eliminates partial groups the
// yearly query still needs — the translated predicate sum(cnt) > 2 differs
// semantically from the AST's cnt > 2.
func TestTable1_HavingMismatch(t *testing.T) {
	e := newEnv(t, 2000)
	astBad := e.registerAST(t, "astbad", `
		select flid, year(date) as year, count(*) as cnt
		from trans
		group by flid, year(date)
		having count(*) > 2`)
	e.mustNotRewrite(t, `
		select flid, count(*) as cnt
		from trans
		group by flid`, astBad)

	// The paper's exact 4-row example, for good measure.
	cat := catalog.New()
	cat.MustAddTable(&catalog.Table{
		Name: "trans",
		Columns: []catalog.Column{
			{Name: "flid", Type: sqltypes.KindInt},
			{Name: "date", Type: sqltypes.KindDate},
		},
	})
	store := storage.NewStore()
	td := store.Create(mustTab(cat, "trans"))
	for _, d := range []string{"1990-01-03", "1990-02-10", "1990-04-12", "1991-10-20"} {
		td.MustInsert(sqltypes.NewInt(1), sqltypes.MustParseDate(d))
	}
	engine := exec.NewEngine(store)
	rw := core.NewRewriter(cat, core.Options{})
	ca, err := rw.CompileAST(catalog.ASTDef{Name: "astbad2", SQL: `
		select flid, year(date) as year, count(*) as cnt
		from trans group by flid, year(date) having count(*) > 2`})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(ca.Graph)
	if err != nil {
		t.Fatal(err)
	}
	// AST result: only (1, 1990, 3) — the (1, 1991, 1) group is eliminated.
	if len(res.Rows) != 1 || res.Rows[0][2].Int() != 3 {
		t.Fatalf("AST result unexpected: %v", res.Rows)
	}
	q, err := qgm.BuildSQL("select flid, count(*) as cnt from trans group by flid", cat)
	if err != nil {
		t.Fatal(err)
	}
	if r := rw.Rewrite(q, ca); r != nil {
		t.Fatalf("unsound rewrite accepted: %s", q.SQL())
	}
}

func mustTab(cat *catalog.Catalog, name string) *catalog.Table {
	tb, ok := cat.Table(name)
	if !ok {
		panic("missing " + name)
	}
	return tb
}

// TestExactMatch checks the identity case: the query equals the AST modulo
// column order and extra AST columns (footnote 5).
func TestExactMatch(t *testing.T) {
	e := newEnv(t, 1000)
	ast := e.registerAST(t, "astx", `
		select flid, year(date) as year, count(*) as cnt, sum(qty) as q
		from trans
		group by flid, year(date)`)
	e.mustRewrite(t, `
		select year(date) as year, flid, count(*) as cnt
		from trans
		group by flid, year(date)`, ast)
}

// TestNonSubsumingPredicate checks that an AST filtering rows the query needs
// is rejected, while a strictly weaker AST predicate is compensated.
func TestNonSubsumingPredicate(t *testing.T) {
	e := newEnv(t, 1000)
	astNarrow := e.registerAST(t, "astnarrow",
		"select tid, faid, qty, price from trans where qty > 3")
	e.mustNotRewrite(t, "select tid, qty from trans where qty > 1", astNarrow)
	// Subsumption the other way: AST keeps more rows; predicate re-applied.
	e.mustRewrite(t, "select tid, qty from trans where qty > 4", astNarrow)
}

// TestLossyExtraJoinRejected: the AST joins a dimension with a local filter,
// losing rows — no RI constraint covers that, so the match must fail.
func TestLossyExtraJoinRejected(t *testing.T) {
	e := newEnv(t, 1000)
	astLossy := e.registerAST(t, "astlossy", `
		select tid, faid, qty from trans, loc
		where flid = lid and country = 'USA'`)
	e.mustNotRewrite(t, "select tid, qty from trans", astLossy)
}

// TestExtraJoinLossless: an AST with a pure RI extra join is usable.
func TestExtraJoinLossless(t *testing.T) {
	e := newEnv(t, 1000)
	ast := e.registerAST(t, "astextra", `
		select tid, faid, qty, price, country from trans, loc
		where flid = lid`)
	e.mustRewrite(t, "select tid, qty from trans where price > 100", ast)
}
