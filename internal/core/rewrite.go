package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/qgm"
	"repro/internal/qgmcheck"
)

// Observability counter names reported by the rewriter. Constant strings keep
// the disabled fast path allocation-free; the taxonomy is documented in
// DESIGN.md §9.
const (
	CtrMatchCandidates = "core.match.candidates"
	CtrMatchAccepts    = "core.match.accepts"
	CtrMatchRejects    = "core.match.rejects"
	CtrMatchPanics     = "core.match.panics"
	CtrPruned          = "core.prune.pruned"
	CtrPruneAdmitted   = "core.prune.admitted"
	CtrDegradations    = "core.degradations"
	CtrCacheHits       = "core.plancache.hits"
	CtrCacheMisses     = "core.plancache.misses"
	CtrCacheEvictions  = "core.plancache.evictions"
)

// CompiledAST is a registered Automatic Summary Table ready for matching: its
// definition, its QGM graph, and the schema of its materialized table.
type CompiledAST struct {
	Def   catalog.ASTDef
	Graph *qgm.Graph
	Table *catalog.Table
	// Sig is the pruning signature computed at compile time and registered in
	// the catalog's signature index; nil disables pruning for this AST.
	Sig *catalog.Signature
}

// Rewriter rewrites queries to read ASTs instead of base tables. It holds no
// per-query state; one Rewriter serves many rewrites. Matching is
// best-effort: a panic inside one candidate's match attempt is recovered,
// recorded, and treated as "no match", so a single broken AST can cost
// rewrite opportunities but never the query.
type Rewriter struct {
	cat  *catalog.Catalog
	opts Options
	obsv *obs.Observer // nil = observability disabled

	mu       sync.Mutex
	degraded []DegradationEvent
	dropped  int // degradation events evicted since the last drain
}

// DegradationEvent is one recorded degradation, stamped with a process-wide
// monotonic sequence number (obs.NextSeq) so it can be ordered against
// catalog and maintenance events on one total order.
type DegradationEvent struct {
	Seq uint64
	Err error
}

// maxDegradations bounds the degradation events retained between drains. A
// long-running server with a persistently broken AST degrades on every query;
// without the cap an undrained Rewriter would leak memory. The newest events
// are kept (they are the ones worth diagnosing) and evictions are counted.
const maxDegradations = 128

// NewRewriter returns a rewriter over the catalog with the given options.
func NewRewriter(cat *catalog.Catalog, opts Options) *Rewriter {
	return &Rewriter{cat: cat, opts: opts}
}

// Catalog returns the rewriter's catalog.
func (rw *Rewriter) Catalog() *catalog.Catalog { return rw.cat }

// SetObserver attaches an observer recording match counters, cache
// statistics, and the degradation event stream; nil detaches. Not safe to
// call concurrently with rewrites.
func (rw *Rewriter) SetObserver(o *obs.Observer) { rw.obsv = o }

// CompileAST parses and compiles an AST definition. The returned Table
// describes the materialized result (callers register it in the catalog and
// populate it in storage before executing rewritten queries).
func (rw *Rewriter) CompileAST(def catalog.ASTDef) (*CompiledAST, error) {
	stmt, err := parser.Parse(def.SQL)
	if err != nil {
		return nil, fmt.Errorf("core: AST %q: %w", def.Name, err)
	}
	g, err := qgm.Build(stmt, rw.cat)
	if err != nil {
		return nil, fmt.Errorf("core: AST %q: %w", def.Name, err)
	}
	sig := ComputeSignature(rw.cat, g)
	rw.cat.SetASTSignature(def.Name, sig)
	return &CompiledAST{Def: def, Graph: g, Table: g.Root.OutputTable(def.Name), Sig: sig}, nil
}

// CompileAll compiles every AST registered in the catalog. A definition that
// fails to compile is skipped, not fatal: the successfully compiled ASTs are
// always returned, alongside a joined error carrying one entry per broken
// definition (nil when all compiled). Callers should use the returned slice
// even when err != nil.
func (rw *Rewriter) CompileAll() ([]*CompiledAST, error) {
	var out []*CompiledAST
	var errs []error
	for _, def := range rw.cat.ASTs() {
		ca, err := rw.CompileAST(def)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		out = append(out, ca)
	}
	return out, errors.Join(errs...)
}

// MatchPanicError records a panic recovered during one AST's match attempt.
type MatchPanicError struct {
	AST   string
	Value any
}

func (e *MatchPanicError) Error() string {
	return fmt.Sprintf("core: match against AST %q panicked: %v", e.AST, e.Value)
}

// noteDegraded records a degradation event for later inspection, evicting the
// oldest retained event once the buffer holds maxDegradations. Each event
// draws a process-wide sequence number and, when an observer is attached, is
// mirrored into its event stream under the same number.
func (rw *Rewriter) noteDegraded(err error) {
	ev := DegradationEvent{Seq: obs.NextSeq(), Err: err}
	rw.mu.Lock()
	if len(rw.degraded) >= maxDegradations {
		copy(rw.degraded, rw.degraded[1:])
		rw.degraded[len(rw.degraded)-1] = ev
		rw.dropped++
	} else {
		rw.degraded = append(rw.degraded, ev)
	}
	rw.mu.Unlock()
	rw.obsv.Add(CtrDegradations, 1)
	if rw.obsv.Enabled() {
		rw.obsv.EmitSeq(ev.Seq, "core.degraded", err.Error())
	}
}

// Degradations drains and returns the degradation errors (recovered match
// panics, discarded invalid rewrites) recorded since the last call. At most
// maxDegradations events are retained between drains; when older events were
// evicted, the first entry is a synthetic error reporting how many. Use
// DegradationEvents to also get the sequence numbers.
func (rw *Rewriter) Degradations() []error {
	events, dropped := rw.DegradationEvents()
	out := make([]error, 0, len(events)+1)
	if dropped > 0 {
		out = append(out, fmt.Errorf("core: %d older degradation events dropped", dropped))
	}
	for _, ev := range events {
		out = append(out, ev.Err)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// DegradationEvents drains and returns the sequenced degradation events
// recorded since the last call, plus how many older events were evicted from
// the bounded buffer before this drain.
func (rw *Rewriter) DegradationEvents() ([]DegradationEvent, int) {
	rw.mu.Lock()
	events := rw.degraded
	dropped := rw.dropped
	rw.degraded, rw.dropped = nil, 0
	rw.mu.Unlock()
	return events, dropped
}

// usable reports whether an AST may serve rewrites right now: quarantined
// ASTs never, stale ones only under Options.AllowStale.
func (rw *Rewriter) usable(ast *CompiledAST) bool {
	return rw.cat.Usable(ast.Def.Name, rw.opts.AllowStale)
}

// querySig computes the query's pruning signature once per rewrite, or nil
// when pruning is disabled (Options.NoPrune) so every candidate is admitted.
func (rw *Rewriter) querySig(query *qgm.Graph) *catalog.Signature {
	if rw.opts.NoPrune {
		return nil
	}
	return ComputeSignature(rw.cat, query)
}

// admit consults the catalog signature index for one candidate before the
// full match is attempted. A nil query signature admits everything (pruning
// disabled or the query references tables the index cannot map).
func (rw *Rewriter) admit(qsig *catalog.Signature, ast *CompiledAST) bool {
	if qsig == nil {
		return true
	}
	if !rw.cat.AdmitsAST(ast.Def.Name, qsig, rw.opts.AllowStale) {
		rw.obsv.Add(CtrPruned, 1)
		return false
	}
	rw.obsv.Add(CtrPruneAdmitted, 1)
	return true
}

// safeMatches runs the matcher for one candidate AST, converting a panic in
// the match machinery (or an injected fault at "core.match:<name>") into "no
// matches", so the rewrite moves on to the next candidate or the base plan.
// Compensation boxes allocated before a panic are unreachable from the query
// root and therefore inert.
func (rw *Rewriter) safeMatches(ctx context.Context, query *qgm.Graph, ast *CompiledAST) (out []*Match) {
	defer func() {
		if r := recover(); r != nil {
			out = nil
			rw.obsv.Add(CtrMatchPanics, 1)
			rw.noteDegraded(&MatchPanicError{AST: ast.Def.Name, Value: r})
		}
	}()
	rw.obsv.Add(CtrMatchCandidates, 1)
	if err := faultinject.Hit("core.match:" + ast.Def.Name); err != nil {
		rw.noteDegraded(err)
		return nil
	}
	matcher := NewMatcher(rw.cat, query, ast.Graph, rw.opts)
	matcher.obsv = rw.obsv
	return matcher.RunCtx(ctx)
}

// Result describes one successful rewrite.
type Result struct {
	AST      *CompiledAST
	Match    *Match
	Replaced *qgm.Box // the query box that was replaced
}

// Rewrite attempts to rewrite the query graph to read the given AST. On
// success it splices the AST's materialized table plus the compensation into
// the graph (mutating it) and returns a Result; it returns nil when no match
// exists, when the AST is stale/quarantined, or when matching panicked
// (recovered and recorded). When several query boxes match the AST's root,
// the highest (largest-subtree) one is replaced, maximizing the work the AST
// absorbs.
func (rw *Rewriter) Rewrite(query *qgm.Graph, ast *CompiledAST) *Result {
	if !rw.usable(ast) {
		return nil
	}
	matches := rw.safeMatches(context.Background(), query, ast)
	if len(matches) == 0 {
		return nil
	}

	heights := boxHeights(query)
	var best *Match
	for _, mm := range matches {
		if best == nil || heights[mm.Subsumee.ID] > heights[best.Subsumee.ID] {
			best = mm
		}
	}

	rw.splice(query, ast, best)
	return &Result{AST: ast, Match: best, Replaced: best.Subsumee}
}

// RewriteBest tries every compiled AST and applies the one matching the
// highest query box; it returns nil when none match. (The paper routes a
// query towards multiple ASTs by iterating; RewriteBest is one iteration.)
// Stale and quarantined ASTs are skipped; a candidate whose match attempt
// panics is skipped (recovered and recorded), never fatal.
func (rw *Rewriter) RewriteBest(query *qgm.Graph, asts []*CompiledAST) *Result {
	return rw.RewriteBestCtx(context.Background(), query, asts)
}

// RewriteBestCtx is RewriteBest bounded by a context; when the context
// expires, matching stops and whatever best candidate was established so far
// is applied (or none).
func (rw *Rewriter) RewriteBestCtx(ctx context.Context, query *qgm.Graph, asts []*CompiledAST) *Result {
	span := obs.SpanFromContext(ctx).Child("match")
	defer span.End()
	type cand struct {
		ast *CompiledAST
		mm  *Match
	}
	heights := boxHeights(query)
	qsig := rw.querySig(query)
	var best *cand
	for _, ast := range asts {
		if !rw.usable(ast) || !rw.admit(qsig, ast) {
			continue
		}
		for _, mm := range rw.safeMatches(ctx, query, ast) {
			if best == nil || heights[mm.Subsumee.ID] > heights[best.mm.Subsumee.ID] {
				best = &cand{ast: ast, mm: mm}
			}
		}
	}
	if best == nil {
		return nil
	}
	rw.splice(query, best.ast, best.mm)
	return &Result{AST: best.ast, Match: best.mm, Replaced: best.mm.Subsumee}
}

// RewriteOrFallback is the resilient rewrite entry point: it always returns
// a runnable graph. It attempts the best rewrite on a clone of the query; if
// no usable AST matches, matching panics, or the rewritten graph fails
// validation, the original graph is returned untouched with a nil Result.
// The input graph is never mutated, so callers can re-run it as the base
// plan if executing the rewritten plan later fails.
func (rw *Rewriter) RewriteOrFallback(ctx context.Context, query *qgm.Graph, asts []*CompiledAST) (*qgm.Graph, *Result) {
	clone := query.Clone()
	res := rw.RewriteBestCtx(ctx, clone, asts)
	if res == nil {
		return query, nil
	}
	if err := rw.verifyRewrite(clone, asts); err != nil {
		rw.noteDegraded(fmt.Errorf("core: discarding invalid rewrite against %q: %w", res.AST.Def.Name, err))
		return query, nil
	}
	return clone, res
}

// verifyRewrite gates an accepted rewrite. The structural check (a strict
// superset of the legacy shallow qgm.Validate: pointer-identity bindings,
// grouping-set canonicalization, scalar arity) always runs; with
// Options.VerifyPlans the full semantic checker runs too — type inference and
// the compensation post-conditions of internal/qgmcheck, classified against
// the candidate AST definitions. Verification failures discard the rewrite
// (the caller degrades to the base plan); they are never query failures.
func (rw *Rewriter) verifyRewrite(g *qgm.Graph, asts []*CompiledAST) error {
	if err := qgmcheck.Structural(g); err != nil {
		return err
	}
	if !rw.opts.VerifyPlans {
		return nil
	}
	defs := make(map[string]*qgm.Graph, len(asts))
	for _, ca := range asts {
		defs[ca.Def.Name] = ca.Graph
	}
	ck := &qgmcheck.Checker{ASTDefs: defs}
	return qgmcheck.AsError(ck.Check(g))
}

// Explain runs the matcher with tracing enabled (without rewriting) and
// returns the per-candidate-pair decision log: which box pairs matched, which
// failed, and which of the paper's conditions rejected them.
func (rw *Rewriter) Explain(query *qgm.Graph, ast *CompiledAST) []TraceEntry {
	_, trace := rw.ExplainMatches(query, ast)
	return trace
}

// ExplainMatches is Explain returning the established root matches alongside
// the decision log, so callers (EXPLAIN reports) can also cost the candidate.
// Matching allocates compensation boxes in the query graph; pass a throwaway
// graph.
func (rw *Rewriter) ExplainMatches(query *qgm.Graph, ast *CompiledAST) ([]*Match, []TraceEntry) {
	opts := rw.opts
	opts.Trace = true
	matcher := NewMatcher(rw.cat, query, ast.Graph, opts)
	matches := matcher.Run()
	return matches, matcher.Trace()
}

// Options returns the rewriter's option set.
func (rw *Rewriter) Options() Options { return rw.opts }

// Sizer estimates table cardinalities for cost-based AST applicability —
// problem (b) of the paper's introduction ("deciding whether an AST should
// actually be used in answering a query", citing Chaudhuri et al.).
// *storage.Store implements it.
type Sizer interface {
	TableRows(name string) int
}

// RewriteBestCost chooses among all (AST, matched box) candidates by a simple
// scan-cost model — rows read from the AST's materialized table plus its
// rejoined base tables, versus the base-table rows the replaced subtree would
// read — and applies the cheapest candidate only if it actually beats the
// base plan. It returns nil when no candidate matches or none is estimated
// cheaper.
func (rw *Rewriter) RewriteBestCost(query *qgm.Graph, asts []*CompiledAST, sizer Sizer) *Result {
	return rw.RewriteBestCostCtx(context.Background(), query, asts, sizer)
}

// RewriteBestCostCtx is cost-based rewrite selection with the candidate
// matching fanned out across goroutines: each usable AST is matched against a
// private clone of the query graph (the matcher allocates compensation boxes
// in the query graph, so candidates cannot share one), its best cost gain is
// computed, and the winner — by gain, then AST name, so the outcome does not
// depend on goroutine scheduling — is re-matched against the real graph and
// spliced. Each candidate's match runs behind the usual safeMatches recover
// barrier; a panicking candidate drops out of the race, never the query.
func (rw *Rewriter) RewriteBestCostCtx(ctx context.Context, query *qgm.Graph, asts []*CompiledAST, sizer Sizer) *Result {
	span := obs.SpanFromContext(ctx).Child("match")
	defer span.End()
	qsig := rw.querySig(query)
	var usable []*CompiledAST
	for _, ast := range asts {
		if rw.usable(ast) && rw.admit(qsig, ast) {
			usable = append(usable, ast)
		}
	}
	if len(usable) == 0 {
		return nil
	}

	gains := make([]int, len(usable)) // <= 0: no beneficial match
	if len(usable) == 1 {
		gains[0] = rw.bestGain(ctx, query.Clone(), usable[0], sizer)
	} else {
		var wg sync.WaitGroup
		for i, ast := range usable {
			wg.Add(1)
			go func(i int, ast *CompiledAST) {
				defer wg.Done()
				gains[i] = rw.bestGain(ctx, query.Clone(), ast, sizer)
			}(i, ast)
		}
		wg.Wait()
	}

	winner := -1
	for i, ast := range usable {
		if gains[i] <= 0 {
			continue
		}
		if winner < 0 || gains[i] > gains[winner] ||
			(gains[i] == gains[winner] && ast.Def.Name < usable[winner].Def.Name) {
			winner = i
		}
	}
	if winner < 0 {
		return nil
	}

	// Re-match the winner on the real graph (matching is deterministic, so
	// this reproduces the probed gain) and splice its best match in place.
	type cand struct {
		mm   *Match
		gain int
	}
	var best *cand
	for _, mm := range rw.safeMatches(ctx, query, usable[winner]) {
		gain := rw.costGain(mm, usable[winner], sizer)
		if gain <= 0 {
			continue
		}
		if best == nil || gain > best.gain {
			best = &cand{mm: mm, gain: gain}
		}
	}
	if best == nil {
		return nil
	}
	rw.splice(query, usable[winner], best.mm)
	return &Result{AST: usable[winner], Match: best.mm, Replaced: best.mm.Subsumee}
}

// bestGain probes one candidate on a throwaway clone of the query and returns
// its best positive cost gain (0 when it has no beneficial match).
func (rw *Rewriter) bestGain(ctx context.Context, clone *qgm.Graph, ast *CompiledAST, sizer Sizer) int {
	best := 0
	for _, mm := range rw.safeMatches(ctx, clone, ast) {
		if gain := rw.costGain(mm, ast, sizer); gain > best {
			best = gain
		}
	}
	return best
}

// costGain estimates base-plan cost minus rewritten cost for one match, in
// rows scanned.
func (rw *Rewriter) costGain(mm *Match, ast *CompiledAST, sizer Sizer) int {
	base, rewritten := rw.CostEstimate(mm, ast, sizer)
	return base - rewritten
}

// CostEstimate returns the scan-cost model behind cost-based rewrite
// selection, in rows read: the base plan's cost counts each base-table
// quantifier under the replaced subtree once (a scan per join operand); the
// rewritten plan's cost is the materialized AST's rows plus any rejoined base
// tables in the compensation. EXPLAIN surfaces both numbers per candidate.
func (rw *Rewriter) CostEstimate(mm *Match, ast *CompiledAST, sizer Sizer) (baseRows, rewrittenRows int) {
	seen := map[int]bool{}
	var walk func(b *qgm.Box)
	walk = func(b *qgm.Box) {
		if seen[b.ID] {
			return
		}
		seen[b.ID] = true
		for _, q := range b.Quantifiers {
			if q.Box.Kind == qgm.BaseTableBox {
				baseRows += sizer.TableRows(q.Box.Table.Name)
			} else {
				walk(q.Box)
			}
		}
	}
	walk(mm.Subsumee)

	rewrittenRows = sizer.TableRows(ast.Def.Name)
	for _, b := range mm.Stack {
		for _, q := range b.Quantifiers {
			if q != mm.SubQ && q.Box.Kind == qgm.BaseTableBox {
				rewrittenRows += sizer.TableRows(q.Box.Table.Name)
			}
		}
	}
	return baseRows, rewrittenRows
}

// RewriteAll routes the query towards multiple ASTs by the paper's iterative
// process (§7): at each iteration the result of the previous rewrite is
// matched against the remaining ASTs, until no AST matches. It returns the
// applied rewrites in order.
func (rw *Rewriter) RewriteAll(query *qgm.Graph, asts []*CompiledAST) []*Result {
	var out []*Result
	remaining := append([]*CompiledAST(nil), asts...)
	// Each successful iteration consumes base-table regions; bound the loop
	// defensively anyway.
	for iter := 0; iter <= len(asts); iter++ {
		res := rw.RewriteBest(query, remaining)
		if res == nil {
			return out
		}
		out = append(out, res)
		// An AST applied once is unlikely to apply again (its region now
		// reads the materialized table); drop it to guarantee progress.
		next := remaining[:0]
		for _, a := range remaining {
			if a != res.AST {
				next = append(next, a)
			}
		}
		remaining = next
	}
	return out
}

// splice replaces the matched subsumee box with the compensation over the
// AST's materialized table.
func (rw *Rewriter) splice(query *qgm.Graph, ast *CompiledAST, mm *Match) {
	astBase := query.BaseTableBox(ast.Table)

	var top *qgm.Box
	if mm.Exact {
		// Pure projection of the materialized table.
		proj := query.NewBox(qgm.SelectBox, compLabel("Sel"))
		q := query.NewQuantifier(qgm.ForEach, astBase, "")
		proj.Quantifiers = []*qgm.Quantifier{q}
		for i, col := range mm.Subsumee.Cols {
			proj.Cols = append(proj.Cols, qgm.QCL{
				Name: col.Name,
				Expr: &qgm.ColRef{Q: q, Col: mm.ColMap[i]},
			})
		}
		top = proj
	} else {
		// Re-point the compensation's subsumer quantifier at the
		// materialized table (its columns align with the AST root's output
		// columns by construction).
		mm.SubQ.Box = astBase
		top = mm.Comp()
	}

	if query.Root == mm.Subsumee {
		query.Root = top
		return
	}
	for _, b := range query.Boxes() {
		for _, q := range b.Quantifiers {
			if q.Box == mm.Subsumee {
				q.Box = top
			}
		}
	}
}

// boxHeights computes each box's height (longest path to a leaf), used to
// prefer replacing the largest matched subtree.
func boxHeights(g *qgm.Graph) map[int]int {
	h := map[int]int{}
	for _, b := range g.Boxes() { // bottom-up order
		best := 0
		for _, q := range b.Quantifiers {
			if hh := h[q.Box.ID] + 1; hh > best {
				best = hh
			}
		}
		h[b.ID] = best
	}
	return h
}
