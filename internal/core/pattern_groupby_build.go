package core

import (
	"repro/internal/qgm"
)

// aggSpec describes how a subsumee aggregate is recomputed after regrouping:
// the bottom compensation SELECT computes arg, and the compensation GROUP BY
// applies op (§4.1.2 rules (a)–(g)).
type aggSpec struct {
	op       string
	distinct bool
	arg      qgm.Expr
}

// directAggCol finds a subsumer aggregate column that computes exactly the
// subsumee aggregate (used when no regrouping happens: §4.1.2 condition 2,
// "every aggregate subsumee QCL matches with some subsumer aggregate QCL").
// COUNT(*) and COUNT(z) with non-nullable z are interchangeable.
func (m *Matcher) directAggCol(c gbCol, r *qgm.Box, eqCR *qgm.Equiv) int {
	for k, col := range r.Cols {
		if r.IsGroupCol(k) {
			continue
		}
		ra, ok := col.Expr.(*qgm.Agg)
		if !ok {
			continue
		}
		if countStarLike(c.agg, c.argR) && countStarLike(ra, ra.Arg) {
			return k
		}
		if ra.Op != c.agg.Op || ra.Distinct != c.agg.Distinct || ra.Star != c.agg.Star {
			continue
		}
		if c.agg.Star || qgm.ExprEqual(c.argR, ra.Arg, eqCR) {
			return k
		}
	}
	return -1
}

// countStarLike reports whether an aggregate counts every row: COUNT(*) or
// COUNT(z) with non-nullable non-distinct z.
func countStarLike(a *qgm.Agg, arg qgm.Expr) bool {
	if a.Op != "count" || a.Distinct {
		return false
	}
	if a.Star {
		return true
	}
	_, nullable := qgm.InferType(arg)
	return !nullable
}

// countRowsCol finds a subsumer column recording the size of each subsumer
// group (COUNT(*) or COUNT of a non-nullable column).
func countRowsCol(r *qgm.Box) int {
	for k, col := range r.Cols {
		if r.IsGroupCol(k) {
			continue
		}
		if ra, ok := col.Expr.(*qgm.Agg); ok && countStarLike(ra, ra.Arg) {
			return k
		}
	}
	return -1
}

// deriveAgg applies the aggregate derivation rules of §4.1.2 (a)–(g) for a
// regrouping compensation: it returns the aggregate to apply on top of the
// bottom SELECT box, or nil when the subsumee aggregate is not derivable.
// qSub references the subsumer; d derives from the selected cuboid's grouping
// columns and rejoins.
func (m *Matcher) deriveAgg(c gbCol, r *qgm.Box, qSub *qgm.Quantifier, eqCR *qgm.Equiv, d *deriver) *aggSpec {
	findAgg := func(pred func(*qgm.Agg) bool) int {
		for k, col := range r.Cols {
			if r.IsGroupCol(k) {
				continue
			}
			if ra, ok := col.Expr.(*qgm.Agg); ok && pred(ra) {
				return k
			}
		}
		return -1
	}
	ref := func(k int) qgm.Expr { return &qgm.ColRef{Q: qSub, Col: k} }

	a := c.agg
	switch {
	case a.Op == "count" && !a.Distinct:
		// Rules (a) and (b): COUNT(*) is SUM of any whole-group count;
		// COUNT(x) is SUM(COUNT(y)) for y ≡ x, or of a whole-group count when
		// x is non-nullable.
		if !a.Star {
			if k := findAgg(func(ra *qgm.Agg) bool {
				return ra.Op == "count" && !ra.Distinct && !ra.Star && qgm.ExprEqual(ra.Arg, c.argR, eqCR)
			}); k >= 0 {
				return &aggSpec{op: "sum", arg: ref(k)}
			}
			if _, nullable := qgm.InferType(c.argR); nullable {
				return nil
			}
		}
		if k := countRowsCol(r); k >= 0 {
			return &aggSpec{op: "sum", arg: ref(k)}
		}
		return nil

	case a.Op == "sum" && !a.Distinct:
		// Rule (c): SUM(x) is SUM(SUM(y)); or, when x derives from grouping
		// columns, SUM(x' * cnt) with the expression computed below the
		// regrouping.
		if k := findAgg(func(ra *qgm.Agg) bool {
			return ra.Op == "sum" && !ra.Distinct && qgm.ExprEqual(ra.Arg, c.argR, eqCR)
		}); k >= 0 {
			return &aggSpec{op: "sum", arg: ref(k)}
		}
		da, err := d.derive(c.argR)
		if err != nil {
			return nil
		}
		k := countRowsCol(r)
		if k < 0 {
			return nil
		}
		return &aggSpec{op: "sum", arg: &qgm.Bin{Op: "*", L: da, R: ref(k)}}

	case (a.Op == "min" || a.Op == "max") && !a.Distinct:
		// Rules (d) and (e): MIN/MAX re-aggregate their partial extremes, or
		// apply directly to values derived from grouping columns.
		if k := findAgg(func(ra *qgm.Agg) bool {
			return ra.Op == a.Op && qgm.ExprEqual(ra.Arg, c.argR, eqCR)
		}); k >= 0 {
			return &aggSpec{op: a.Op, arg: ref(k)}
		}
		da, err := d.derive(c.argR)
		if err != nil {
			return nil
		}
		return &aggSpec{op: a.Op, arg: da}

	case a.Distinct:
		// Rules (f) and (g): COUNT/SUM(DISTINCT x) require x to derive from
		// grouping columns; the compensation re-aggregates with DISTINCT
		// (a strengthening of the paper's COUNT(y), which miscounts when the
		// subsumer groups by columns beyond x — see DESIGN.md).
		switch a.Op {
		case "count", "sum", "min", "max":
			da, err := d.derive(c.argR)
			if err != nil {
				return nil
			}
			return &aggSpec{op: a.Op, distinct: a.Op == "count" || a.Op == "sum", arg: da}
		}
		return nil

	default:
		return nil
	}
}

// buildGBComp constructs the GROUP BY compensation: a bottom SELECT box over
// the subsumer (slicing predicates for cube subsumers, pulled-up child
// compensation predicates, rejoins, derived grouping expressions and
// aggregate arguments), followed by a regrouping GROUP BY box when required.
func (m *Matcher) buildGBComp(
	view *gbView, r *qgm.Box, rqc *qgm.Quantifier,
	childSel *qgm.Box, mm *Match,
	rejoinQs []*qgm.Quantifier, eqCR *qgm.Equiv,
	plans []*cuboidPlan, gsets [][]int,
) *gbCoreResult {
	regroup := false
	for _, p := range plans {
		if p.needRegroup {
			regroup = true
		}
	}

	s := m.newCompBox(qgm.SelectBox, compLabel("Sel"))
	qSub := m.newQuant(qgm.ForEach, r, "")
	rmap, cloneQs := m.cloneRejoins(rejoinQs)
	s.Quantifiers = append([]*qgm.Quantifier{qSub}, cloneQs...)

	// Slicing predicates (§5.1): select the chosen cuboid(s) out of the cube
	// subsumer by testing the NULL-padding of its grouping columns. Skipped
	// when the selected cuboids cover every subsumer grouping set.
	slicing := m.slicingPred(r, qSub, plans)
	if slicing != nil {
		s.Preds = append(s.Preds, slicing)
	}

	// Pull up the child compensation's predicates (§4.2.1 condition 3),
	// derived from the selected cuboid's grouping columns and rejoins.
	if childSel != nil {
		dPred := m.cuboidDeriver(r, qSub, m.predSourceSet(plans, r), eqCR, rejoinQs, rmap)
		for _, p := range childSel.Preds {
			rs := expandCompExpr(mm, rqc, p)
			dp, err := dPred.derive(rs)
			if err != nil {
				return nil
			}
			s.Preds = append(s.Preds, dp)
		}
	}

	plan0 := plans[0]
	gsr := r.GroupingSets[plan0.rSet]
	dFull := m.cuboidDeriver(r, qSub, gsr, eqCR, rejoinQs, rmap)

	if !regroup {
		// Column-level pass-through: grouping columns map to the (globally
		// consistent) subsumer grouping columns, aggregates to matching
		// subsumer aggregate columns.
		global := map[int]int{}
		for _, p := range plans {
			for ep, rpos := range p.directMap {
				global[ep] = rpos
			}
		}
		colMap := make([]int, len(view.cols))
		for i, c := range view.cols {
			var rcol int
			if c.isGroup {
				rpos, ok := global[c.groupPos]
				if !ok {
					return nil
				}
				rcol = r.GroupBy[rpos]
			} else {
				rcol = m.directAggCol(c, r, eqCR)
				if rcol < 0 {
					return nil
				}
			}
			s.Cols = append(s.Cols, qgm.QCL{Name: c.name, Expr: &qgm.ColRef{Q: qSub, Col: rcol}})
			colMap[i] = rcol
		}
		exact := childSel == nil && len(s.Preds) == 0 && len(rejoinQs) == 0
		return &gbCoreResult{stack: []*qgm.Box{s}, qSub: qSub, exact: exact, colMap: colMap}
	}

	// Regrouping compensation: the bottom SELECT computes the grouping
	// expressions and aggregate arguments; the GROUP BY above re-groups by
	// the subsumee's grouping structure and applies the derivation rules.
	specs := make([]*aggSpec, len(view.cols))
	for i, c := range view.cols {
		if c.isGroup {
			var expr qgm.Expr
			if rpos, ok := plan0.directMap[c.groupPos]; ok {
				expr = &qgm.ColRef{Q: qSub, Col: r.GroupBy[rpos]}
			} else {
				var err error
				expr, err = dFull.derive(view.groupExprs[c.groupPos])
				if err != nil {
					return nil
				}
			}
			s.Cols = append(s.Cols, qgm.QCL{Name: c.name, Expr: expr})
			continue
		}
		spec := m.deriveAgg(c, r, qSub, eqCR, dFull)
		if spec == nil {
			return nil
		}
		specs[i] = spec
		s.Cols = append(s.Cols, qgm.QCL{Name: c.name, Expr: spec.arg})
	}

	g := m.newCompBox(qgm.GroupByBox, compLabel("GB"))
	g.Regroup = true
	qS := m.newQuant(qgm.ForEach, s, "")
	g.Quantifiers = []*qgm.Quantifier{qS}
	posToCol := make([]int, len(view.groupExprs))
	for i, c := range view.cols {
		if c.isGroup {
			g.Cols = append(g.Cols, qgm.QCL{Name: c.name, Expr: &qgm.ColRef{Q: qS, Col: i}})
			posToCol[c.groupPos] = i
		} else {
			spec := specs[i]
			g.Cols = append(g.Cols, qgm.QCL{
				Name: c.name,
				Expr: &qgm.Agg{Op: spec.op, Arg: &qgm.ColRef{Q: qS, Col: i}, Distinct: spec.distinct},
			})
		}
	}
	for p := range view.groupExprs {
		g.GroupBy = append(g.GroupBy, posToCol[p])
	}
	for _, gs := range gsets {
		g.GroupingSets = append(g.GroupingSets, append([]int(nil), gs...))
	}
	return &gbCoreResult{stack: []*qgm.Box{s, g}, qSub: qSub}
}

// slicingPred builds the disjunction of per-plan slicing conjunctions, or nil
// when no slicing is needed (simple subsumer, or all cuboids selected).
func (m *Matcher) slicingPred(r *qgm.Box, qSub *qgm.Quantifier, plans []*cuboidPlan) qgm.Expr {
	if len(r.GroupingSets) <= 1 {
		return nil
	}
	selected := map[int]bool{}
	for _, p := range plans {
		selected[p.rSet] = true
	}
	if len(selected) == len(r.GroupingSets) {
		return nil
	}
	var disjuncts []qgm.Expr
	for ri := range r.GroupingSets {
		if !selected[ri] {
			continue
		}
		gsr := r.GroupingSets[ri]
		inSet := map[int]bool{}
		for _, pos := range gsr {
			inSet[pos] = true
		}
		var conj []qgm.Expr
		for pos, col := range r.GroupBy {
			if inSet[pos] {
				// IS NOT NULL needed only when some other set omits it.
				omitted := false
				for _, gs := range r.GroupingSets {
					if !containsPos(gs, pos) {
						omitted = true
						break
					}
				}
				if omitted {
					conj = append(conj, &qgm.IsNull{E: &qgm.ColRef{Q: qSub, Col: col}, Neg: true})
				}
			} else {
				conj = append(conj, &qgm.IsNull{E: &qgm.ColRef{Q: qSub, Col: col}})
			}
		}
		if len(conj) == 0 {
			// Degenerate: this cuboid is indistinguishable; slicing would be
			// wrong, but selected==all was ruled out above, so fail safe by
			// keeping a TRUE conjunct.
			continue
		}
		disjuncts = append(disjuncts, qgm.AndAll(conj))
	}
	return qgm.OrAll(disjuncts)
}

// predSourceSet returns the subsumer grouping positions usable for pulled-up
// predicates: with several selected cuboids, only columns present in all of
// them are safe (a predicate over a NULL-padded column would wrongly drop the
// row).
func (m *Matcher) predSourceSet(plans []*cuboidPlan, r *qgm.Box) []int {
	counts := map[int]int{}
	for _, p := range plans {
		for _, pos := range r.GroupingSets[p.rSet] {
			counts[pos]++
		}
	}
	var out []int
	for pos, n := range counts {
		if n == len(plans) {
			out = append(out, pos)
		}
	}
	return out
}
