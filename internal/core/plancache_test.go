package core_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
)

const pcAggSQL = `select faid, year(date) as year, count(*) as cnt
                  from trans group by faid, year(date)`

// TestPlanCacheHit: the second identical query is answered from the cache —
// no matching runs — and executes to the same result; textual variants of
// the same query (case, whitespace) hit the same entry.
func TestPlanCacheHit(t *testing.T) {
	e := newEnv(t, 2000)
	ast := e.registerAST(t, "pc_agg", pcAggSQL)
	asts := []*core.CompiledAST{ast}
	cache := core.NewPlanCache(8)
	ctx := context.Background()
	sql := "select faid, count(*) as cnt from trans group by faid"

	cr1, err := e.rw.RewriteSQLCached(ctx, cache, sql, asts, e.store)
	if err != nil {
		t.Fatal(err)
	}
	if cr1.Hit || cr1.AST != "pc_agg" || cr1.Rewrite == nil {
		t.Fatalf("first lookup: want rewritten miss, got %+v", cr1)
	}

	cr2, err := e.rw.RewriteSQLCached(ctx, cache, sql, asts, e.store)
	if err != nil {
		t.Fatal(err)
	}
	if !cr2.Hit || cr2.AST != "pc_agg" {
		t.Fatalf("second lookup: want hit, got %+v", cr2)
	}
	if diff := exec.EqualResults(mustRun(t, e, cr1.Plan), mustRun(t, e, cr2.Plan)); diff != "" {
		t.Fatalf("cached plan result differs: %s", diff)
	}

	// Normalized-equivalent text reuses the entry.
	variant := "SELECT   faid,\n\tCOUNT(*) AS cnt  FROM trans  GROUP BY faid"
	cr3, err := e.rw.RewriteSQLCached(ctx, cache, variant, asts, e.store)
	if err != nil {
		t.Fatal(err)
	}
	if !cr3.Hit {
		t.Fatalf("normalized variant missed the cache")
	}
	if hits, misses := cache.Stats(); hits != 2 || misses != 1 {
		t.Fatalf("stats: hits=%d misses=%d", hits, misses)
	}

	// Hits hand out private clones: mutating one must not poison the cache.
	cr2.Plan.Root = nil
	cr4, err := e.rw.RewriteSQLCached(ctx, cache, sql, asts, e.store)
	if err != nil {
		t.Fatal(err)
	}
	if cr4.Plan.Root == nil {
		t.Fatal("cache returned the caller-mutated plan")
	}
}

// TestPlanCacheStalenessInvalidation is the safety test the cache exists to
// pass: once an AST goes stale (or is quarantined), a previously cached plan
// reading it must never be served to a rewriter whose Options.AllowStale
// would refuse that AST. Freshness transitions bump the key's fingerprint,
// so each status era gets its own entry.
func TestPlanCacheStalenessInvalidation(t *testing.T) {
	e := newEnv(t, 2000)
	ast := e.registerAST(t, "pc_stale", pcAggSQL)
	asts := []*core.CompiledAST{ast}
	cache := core.NewPlanCache(8)
	ctx := context.Background()
	sql := "select faid, count(*) as cnt from trans group by faid"

	cr1, err := e.rw.RewriteSQLCached(ctx, cache, sql, asts, e.store)
	if err != nil {
		t.Fatal(err)
	}
	if cr1.AST != "pc_stale" {
		t.Fatalf("setup: query did not rewrite: %+v", cr1)
	}

	// Stale: the cached AST-reading plan must not surface; the query answers
	// from base tables.
	e.cat.MarkStale("pc_stale")
	cr2, err := e.rw.RewriteSQLCached(ctx, cache, sql, asts, e.store)
	if err != nil {
		t.Fatal(err)
	}
	if cr2.Hit || cr2.AST != "" {
		t.Fatalf("stale AST served from cache: %+v", cr2)
	}

	// Fresh again (epoch bumped): the stale-era base plan must not stick
	// either — the rewrite comes back.
	e.cat.MarkFresh("pc_stale")
	cr3, err := e.rw.RewriteSQLCached(ctx, cache, sql, asts, e.store)
	if err != nil {
		t.Fatal(err)
	}
	if cr3.Hit || cr3.AST != "pc_stale" {
		t.Fatalf("refreshed AST not re-chosen: %+v", cr3)
	}
	cr4, err := e.rw.RewriteSQLCached(ctx, cache, sql, asts, e.store)
	if err != nil {
		t.Fatal(err)
	}
	if !cr4.Hit || cr4.AST != "pc_stale" {
		t.Fatalf("fresh-era entry not cached: %+v", cr4)
	}

	// Quarantine: same contract as stale, reached via refresh failures.
	e.cat.SetQuarantineThreshold(1)
	if st := e.cat.RecordRefreshFailure("pc_stale"); !st.Quarantined {
		t.Fatalf("setup: AST not quarantined: %+v", st)
	}
	cr5, err := e.rw.RewriteSQLCached(ctx, cache, sql, asts, e.store)
	if err != nil {
		t.Fatal(err)
	}
	if cr5.Hit || cr5.AST != "" {
		t.Fatalf("quarantined AST served from cache: %+v", cr5)
	}
}

// TestPlanCacheEviction: the cache is bounded LRU — the oldest entry falls
// out at capacity and misses on its next lookup.
func TestPlanCacheEviction(t *testing.T) {
	e := newEnv(t, 1000)
	ast := e.registerAST(t, "pc_evict", pcAggSQL)
	asts := []*core.CompiledAST{ast}
	cache := core.NewPlanCache(2)
	ctx := context.Background()

	queries := []string{
		"select faid, count(*) as cnt from trans group by faid",
		"select year(date) as year, count(*) as cnt from trans group by year(date)",
		"select faid, year(date) as year, count(*) as cnt from trans group by faid, year(date)",
	}
	for _, q := range queries {
		if _, err := e.rw.RewriteSQLCached(ctx, cache, q, asts, e.store); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 2 {
		t.Fatalf("cache len %d, want 2", cache.Len())
	}
	cr, err := e.rw.RewriteSQLCached(ctx, cache, queries[0], asts, e.store)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Hit {
		t.Fatal("evicted entry still hit")
	}
	cr2, err := e.rw.RewriteSQLCached(ctx, cache, queries[2], asts, e.store)
	if err != nil {
		t.Fatal(err)
	}
	if !cr2.Hit {
		t.Fatal("recent entry evicted")
	}
}

func TestNormalizeSQL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT  X\n FROM t", "select x from t"},
		{"select x from t where s = 'CA'", "select x from t where s = 'CA'"},
		{"SELECT X FROM T WHERE S = 'CA'", "select x from t where s = 'CA'"},
		{"  select 1  ", "select 1"},
	}
	for _, c := range cases {
		if got := core.NormalizeSQL(c.in); got != c.want {
			t.Errorf("NormalizeSQL(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Literal contents must stay significant: 'CA' and 'ca' are different
	// queries even though everything around them case-folds.
	if core.NormalizeSQL("select 'CA' from t") == core.NormalizeSQL("select 'ca' from t") {
		t.Fatal("literal case folded away")
	}
}

// TestParallelCostRewriteMatchesSerial: the concurrent candidate race picks
// the same AST as the serial cost-based path and produces an equivalent plan,
// with ties broken by AST name regardless of goroutine scheduling.
func TestParallelCostRewriteMatchesSerial(t *testing.T) {
	e := newEnv(t, 2000)
	wide := e.registerAST(t, "pcc_wide", `
		select tid, faid, flid, date, qty, price, disc, fpgid from trans`)
	small := e.registerAST(t, "pcc_small", pcAggSQL)
	asts := []*core.CompiledAST{wide, small}
	sql := "select faid, count(*) as cnt from trans group by faid"

	orig, err := qgm.BuildSQL(sql, e.cat)
	if err != nil {
		t.Fatal(err)
	}
	origRes := mustRun(t, e, orig)

	for i := 0; i < 5; i++ { // scheduling-independence: repeat the race
		g, _ := qgm.BuildSQL(sql, e.cat)
		res := e.rw.RewriteBestCostCtx(context.Background(), g, asts, e.store)
		if res == nil || res.AST.Def.Name != "pcc_small" {
			t.Fatalf("iteration %d: want pcc_small, got %+v", i, res)
		}
		if diff := exec.EqualResults(origRes, mustRun(t, e, g)); diff != "" {
			t.Fatalf("iteration %d: %s", i, diff)
		}
	}

	// Deterministic tie-break: two copies of the same definition have equal
	// gain; the lexicographically smaller name must win every time.
	tieB := e.registerAST(t, "tie_b", pcAggSQL)
	tieA := e.registerAST(t, "tie_a", pcAggSQL)
	for i := 0; i < 5; i++ {
		g, _ := qgm.BuildSQL(sql, e.cat)
		res := e.rw.RewriteBestCostCtx(context.Background(), g, []*core.CompiledAST{tieB, tieA}, e.store)
		if res == nil || res.AST.Def.Name != "tie_a" {
			name := "<none>"
			if res != nil {
				name = res.AST.Def.Name
			}
			t.Fatalf("iteration %d: tie broken to %s, want tie_a", i, name)
		}
	}
}
