package core_test

// Property-based conservatism testing for the candidate-pruning signature
// index: for every (query, AST) pair, the set of candidates the index admits
// must be a superset of the set the full matcher accepts — pruning may only
// refute, never drop a legitimate rewrite. This is the fuzz-style randomized
// companion to the paper-suite sweep in internal/bench.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/qgm"
)

// plainQueries are GROUP-BY-free queries mixed into the random sweep so the
// root-kind rule (R1) is exercised in both directions.
var plainQueries = []string{
	"select faid, qty from trans where qty > 2",
	"select faid, flid, price from trans where year(date) > 1990",
	"select cid, cname from cust",
	"select state, city from loc where country = 'USA'",
}

func TestPrunePropertyRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	e := newEnv(t, 300)
	rng := rand.New(rand.NewSource(20000521))
	g := &qgen{rng: rng}

	const trials = 600
	pruned, admitted, matched := 0, 0, 0
	for i := 0; i < trials; i++ {
		astSQL := g.genAST()
		querySQL := g.genQuery()
		if rng.Intn(6) == 0 {
			querySQL = plainQueries[rng.Intn(len(plainQueries))]
		}

		astName := fmt.Sprintf("prune%d", i)
		ca, err := e.rw.CompileAST(catalog.ASTDef{Name: astName, SQL: astSQL})
		if err != nil {
			t.Fatalf("trial %d: compile AST %q: %v", i, astSQL, err)
		}

		q, err := qgm.BuildSQL(querySQL, e.cat)
		if err != nil {
			t.Fatalf("trial %d: build %q: %v", i, querySQL, err)
		}
		qsig := core.ComputeSignature(e.cat, q)
		if qsig == nil {
			t.Fatalf("trial %d: query signature should always be computable over the star schema", i)
		}
		admit := e.cat.AdmitsAST(astName, qsig, false)

		// Matching mutates the query graph (compensation boxes), so run it on
		// the graph we just built; each trial builds a fresh one.
		matches := core.NewMatcher(e.cat, q, ca.Graph, core.Options{}).Run()

		if len(matches) > 0 {
			matched++
			if !admit {
				t.Fatalf("trial %d: UNSOUND PRUNE — matcher accepts but index refuses\nquery: %s\nast:   %s\nqsig: %+v\nasig: %+v",
					i, querySQL, astSQL, qsig, ca.Sig)
			}
		}
		if admit {
			admitted++
		} else {
			pruned++
		}
	}
	t.Logf("randomized sweep: %d trials, %d matched, %d admitted, %d pruned", trials, matched, admitted, pruned)
	if pruned == 0 {
		t.Fatal("sweep never pruned anything: the index is vacuous for this generator")
	}
}

// TestPruneSignatureRules pins each refutation rule with a directed pair: an
// AST the rule must prune and a near-identical one it must admit.
func TestPruneSignatureRules(t *testing.T) {
	e := newEnv(t, 100)
	mustSig := func(sql string) *catalog.Signature {
		g, err := qgm.BuildSQL(sql, e.cat)
		if err != nil {
			t.Fatalf("build %q: %v", sql, err)
		}
		sig := core.ComputeSignature(e.cat, g)
		if sig == nil {
			t.Fatalf("nil signature for %q", sql)
		}
		return sig
	}
	compile := func(name, sql string) *core.CompiledAST {
		ca, err := e.rw.CompileAST(catalog.ASTDef{Name: name, SQL: sql})
		if err != nil {
			t.Fatalf("compile %q: %v", sql, err)
		}
		return ca
	}

	gbAST := compile("r1gb", "select faid as f, count(*) as c from trans group by faid")
	plainQ := mustSig("select faid, qty from trans where qty > 2")
	if e.cat.SignatureAdmits(gbAST.Sig, plainQ) {
		t.Error("R1: GROUP BY-rooted AST must be pruned for a GROUP BY-free query")
	}

	custAST := compile("r2cust", "select cid as c, count(*) as n from cust group by cid")
	transQ := mustSig("select faid, count(*) as c from trans group by faid")
	if e.cat.SignatureAdmits(custAST.Sig, transQ) {
		t.Error("R2: AST over disjoint tables must be pruned")
	}

	// R3: trans ⋈ loc AST against a trans-only query — loc is an FK parent of
	// trans over non-nullable columns, so it is a legitimate lossless extra
	// and must be ADMITTED; cust is reachable by no FK from trans, so a
	// trans ⋈ cust AST must be pruned.
	locAST := compile("r3loc", "select faid as f, count(*) as c from trans, loc where flid = lid group by faid")
	if !e.cat.SignatureAdmits(locAST.Sig, transQ) {
		t.Error("R3: FK-droppable extra table must be admitted")
	}
	custJoinAST := compile("r3cust", "select faid as f, count(*) as c from trans, cust where qty = cid group by faid")
	if e.cat.SignatureAdmits(custJoinAST.Sig, transQ) {
		t.Error("R3: non-droppable extra table must be pruned")
	}

	// R4: an AST exposing only MIN/MAX cannot serve a query whose every GROUP
	// BY box needs a non-distinct COUNT; one with a COUNT column can.
	minmaxAST := compile("r4minmax", "select faid as f, min(price) as mn, max(price) as mx from trans group by faid")
	countQ := mustSig("select faid, count(*) as c from trans group by faid")
	if e.cat.SignatureAdmits(minmaxAST.Sig, countQ) {
		t.Error("R4: SUM/COUNT-free AST must be pruned for a COUNT query")
	}
	minmaxQ := mustSig("select faid, min(price) as mn from trans group by faid")
	if !e.cat.SignatureAdmits(minmaxAST.Sig, minmaxQ) {
		t.Error("R4: SUM/COUNT-free AST must be admitted for a MIN-only query")
	}
}

// TestPruneDisabledByOption: Options.NoPrune must bypass the index entirely
// (the ablation/benchmark escape hatch).
func TestPruneDisabledByOption(t *testing.T) {
	e := newEnv(t, 100)
	rw := core.NewRewriter(e.cat, core.Options{NoPrune: true})
	ca, err := rw.CompileAST(catalog.ASTDef{Name: "nopr", SQL: "select cid as c, count(*) as n from cust group by cid"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.engine.Run(ca.Graph)
	if err != nil {
		t.Fatal(err)
	}
	e.store.Put(ca.Table, res.Rows)
	q, err := qgm.BuildSQL("select cid, count(*) as n from cust group by cid", e.cat)
	if err != nil {
		t.Fatal(err)
	}
	// RewriteBest rather than RewriteBestCost: the AST has as many groups as
	// cust has rows, so the cost model sees no gain; NoPrune is about the
	// matching gate, not the cost gate.
	if rw.RewriteBest(q, []*core.CompiledAST{ca}) == nil {
		t.Fatal("NoPrune rewriter should still rewrite a matching pair")
	}
}
