package core_test

// Necessity tests: for each matching condition, show by direct execution that
// the rewrite the condition forbids would produce a wrong answer — i.e. the
// conditions are not merely conservative, they block real unsoundness.

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
)

// TestNecessityLosslessExtraJoin: the AST's extra join filtered to USA
// locations; pretending it were usable loses every non-USA transaction.
func TestNecessityLosslessExtraJoin(t *testing.T) {
	e := newEnv(t, 1500)
	astLossy := e.registerAST(t, "nec_lossy", `
		select tid, faid, qty from trans, loc
		where flid = lid and country = 'USA'`)

	// The match is rejected...
	e.mustNotRewrite(t, "select tid, qty from trans", astLossy)

	// ...and would be wrong: the AST has strictly fewer rows than trans.
	full, err := qgm.BuildSQL("select tid, qty from trans", e.cat)
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := e.engine.Run(full)
	if err != nil {
		t.Fatal(err)
	}
	astRows := e.store.MustTable("nec_lossy").Cardinality()
	if astRows >= len(fullRes.Rows) {
		t.Fatalf("fixture defect: lossy AST (%d rows) should be smaller than trans (%d)",
			astRows, len(fullRes.Rows))
	}
}

// TestNecessityHavingTranslation reproduces Table 1 numerically: the naive
// "syntactic" rewrite (read the HAVING-filtered AST, regroup, reapply
// count>2) yields 4 for location 1 in the paper's sample — but the right
// answer counts the 1991 transaction too, and the filtered AST lost it.
func TestNecessityHavingTranslation(t *testing.T) {
	e := newEnv(t, 0) // catalog only; we use a private table below
	_ = e

	// Paper's 4-row Trans sample (flid, date).
	cat := e.cat
	store := e.store
	cat.MustAddTable(&catalog.Table{
		Name: "sample",
		Columns: []catalog.Column{
			{Name: "flid", Type: sqltypes.KindInt},
			{Name: "date2", Type: sqltypes.KindDate},
		},
	})
	meta, _ := cat.Table("sample")
	td := store.Create(meta)
	for _, d := range []string{"1990-01-03", "1990-02-10", "1990-04-12", "1991-10-20"} {
		td.MustInsert(sqltypes.NewInt(1), sqltypes.MustParseDate(d))
	}

	// Correct per-location counts.
	q, err := qgm.BuildSQL("select flid, count(*) as cnt from sample group by flid", cat)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.engine.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 1 || want.Rows[0][1].Int() != 4 {
		t.Fatalf("query result should be (1, 4): %v", want.Rows)
	}

	// The HAVING-filtered AST keeps only the 1990 group (count 3): a naive
	// regroup over it would report 3, not 4.
	a, err := qgm.BuildSQL(`
		select flid, year(date2) as year, count(*) as cnt
		from sample group by flid, year(date2) having count(*) > 2`, cat)
	if err != nil {
		t.Fatal(err)
	}
	astRes, err := e.engine.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	var naive int64
	for _, r := range astRes.Rows {
		naive += r[2].Int()
	}
	if naive == want.Rows[0][1].Int() {
		t.Fatalf("fixture defect: the naive rewrite would accidentally be right (%d)", naive)
	}
}

// TestNecessityCountDistinctCuboid: Q11.3's rejection is necessary — deriving
// COUNT(DISTINCT faid) from a cuboid lacking faid is impossible, and the
// closest available aggregate (cnt) genuinely differs from the right answer.
func TestNecessityCountDistinctCuboid(t *testing.T) {
	e := newEnv(t, 2000)
	q, err := qgm.BuildSQL(`
		select flid, count(distinct faid) as buyers, count(*) as cnt
		from trans group by flid`, e.cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.engine.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for _, r := range res.Rows {
		if r[1].Int() != r[2].Int() {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("fixture defect: COUNT(DISTINCT faid) coincides with COUNT(*) everywhere")
	}
}

// TestNecessityRegroupWithNMRejoin: with an N:M rejoin, skipping the
// regrouping step (what the 1:N optimization would wrongly do) changes counts
// — demonstrated by comparing the optimized and always-regroup plans, which
// agree only because the rejoin here is provably 1:N.
func TestNecessityRegroupWithNMRejoin(t *testing.T) {
	e := newEnv(t, 1500)
	ast := e.registerAST(t, "nec_nm", `
		select flid, year(date) as year, count(*) as cnt
		from trans group by flid, year(date)`)

	// Join on state (not Loc's key): N:M — every location row with the same
	// state multiplies the AST rows. The matcher must regroup.
	sql := `select state, count(*) as cnt
	        from trans, loc
	        where flid = lid
	        group by state`
	newSQL := e.mustRewrite(t, sql, ast)
	if !containsLower(newSQL, "group by") {
		t.Fatalf("regrouping required for aggregation over the rejoin: %s", newSQL)
	}
}

func containsLower(s, sub string) bool {
	ls := make([]rune, 0, len(s))
	for _, r := range s {
		if 'A' <= r && r <= 'Z' {
			r += 'a' - 'A'
		}
		ls = append(ls, r)
	}
	return indexOf(string(ls), sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
