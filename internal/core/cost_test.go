package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
)

// TestCostBasedPrefersSmallerAST: between a projection AST (same size as the
// fact table) and an aggregated AST, the cost-based router picks the smaller.
func TestCostBasedPrefersSmallerAST(t *testing.T) {
	e := newEnv(t, 2000)
	wide := e.registerAST(t, "cb_wide", `
		select tid, faid, flid, date, qty, price, disc, fpgid from trans`)
	small := e.registerAST(t, "cb_small", `
		select faid, year(date) as year, count(*) as cnt
		from trans group by faid, year(date)`)

	sql := "select faid, count(*) as cnt from trans group by faid"
	orig, err := qgm.BuildSQL(sql, e.cat)
	if err != nil {
		t.Fatal(err)
	}
	origRes := mustRun(t, e, orig)

	g, _ := qgm.BuildSQL(sql, e.cat)
	res := e.rw.RewriteBestCost(g, []*core.CompiledAST{wide, small}, e.store)
	if res == nil {
		t.Fatal("no rewrite")
	}
	if res.AST.Def.Name != "cb_small" {
		t.Fatalf("cost-based choice: got %s", res.AST.Def.Name)
	}
	if diff := exec.EqualResults(origRes, mustRun(t, e, g)); diff != "" {
		t.Fatal(diff)
	}
}

// TestCostBasedRefusesUnprofitableAST: an AST as large as the base table
// offers no gain; the router declines even though a match exists.
func TestCostBasedRefusesUnprofitableAST(t *testing.T) {
	e := newEnv(t, 1000)
	wide := e.registerAST(t, "cb_only_wide", `
		select tid, faid, flid, date, qty, price, disc, fpgid from trans`)

	sql := "select tid, qty from trans where qty > 2"
	// A plain match exists...
	g1, _ := qgm.BuildSQL(sql, e.cat)
	if e.rw.Rewrite(g1, wide) == nil {
		t.Fatal("plain rewrite should match")
	}
	// ...but the cost-based router refuses (AST rows == base rows).
	g2, _ := qgm.BuildSQL(sql, e.cat)
	if res := e.rw.RewriteBestCost(g2, []*core.CompiledAST{wide}, e.store); res != nil {
		t.Fatalf("unprofitable rewrite accepted: %s", g2.SQL())
	}
}

// TestCostBasedCountsRejoins: an AST that forces an expensive rejoin gets
// charged for it.
func TestCostBasedCountsRejoins(t *testing.T) {
	e := newEnv(t, 1500)
	agg := e.registerAST(t, "cb_rejoin", `
		select flid, year(date) as year, count(*) as cnt
		from trans group by flid, year(date)`)
	sql := `select state, year(date) as year, count(*) as cnt
	        from trans, loc where flid = lid
	        group by state, year(date)`
	orig, _ := qgm.BuildSQL(sql, e.cat)
	origRes := mustRun(t, e, orig)

	g, _ := qgm.BuildSQL(sql, e.cat)
	res := e.rw.RewriteBestCost(g, []*core.CompiledAST{agg}, e.store)
	if res == nil {
		t.Fatal("profitable rejoin rewrite refused")
	}
	if diff := exec.EqualResults(origRes, mustRun(t, e, g)); diff != "" {
		t.Fatal(diff)
	}
}
