package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/qgm"
)

// matchSelect implements the SELECT/SELECT patterns:
//
//   - §4.1.1 — exact child matches: rejoin children, lossless extra joins
//     (via RI constraints), predicate matching/subsumption, derivation of
//     subsumee predicates and output columns from subsumer outputs;
//   - §4.2.3 — SELECT-only child compensations: child-compensation predicates
//     join the predicate pool (condition 2) and are pulled up (condition 5);
//   - §4.2.4 — one child match whose compensation includes grouping: the
//     grouping compensation stack is pulled up above the subsumer, and a
//     final SELECT compensates the subsumee's own predicates and columns.
func (m *Matcher) matchSelect(e, r *qgm.Box) *Match {
	a := m.assignChildren(e, r)
	if len(a.pairs) == 0 {
		return m.reject(e, r, "universal condition 1: no pair of children matches")
	}
	// DISTINCT: a duplicate-eliminating subsumer cannot serve a
	// duplicate-preserving subsumee. The converse is fine — the compensation
	// re-applies DISTINCT, which also makes rejoin multiplicity irrelevant.
	if !e.Distinct && r.Distinct {
		return m.reject(e, r, "subsumer is DISTINCT: duplicates the subsumee needs were eliminated")
	}

	// Classify child matches.
	var gbPair *childPair
	var selPairs []*childPair
	for _, p := range a.pairs {
		if p.m.Exact {
			continue
		}
		if p.eq.Kind == qgm.Scalar && !projectionOnly(p.m) {
			// A filtered scalar-subquery compensation cannot be pulled up
			// (it would change the empty-result NULL semantics).
			return m.reject(e, r, "scalar-subquery child matched with non-projection compensation")
		}
		if p.m.hasGroupingComp() {
			if gbPair != nil {
				return m.reject(e, r, "more than one grouping child compensation (§4.2.4 allows one)")
			}
			gbPair = p
		} else {
			selPairs = append(selPairs, p)
		}
	}
	if gbPair != nil {
		// §4.2.4 applies to subsumee/subsumer pairs with no common joins: the
		// grouping-compensated child must be the only matched ForEach child.
		for _, p := range a.pairs {
			if p != gbPair && p.eq.Kind == qgm.ForEach {
				return m.reject(e, r, "§4.2.4 requires no common joins besides the grouping-compensated child")
			}
		}
	}
	if e.Distinct && gbPair != nil {
		return m.reject(e, r, "DISTINCT over pulled-up grouping stacks: out of scope")
	}

	// Condition 1 (§4.1.1): every extra join must be lossless.
	extraJoinPreds := m.extrasLossless(r, a)
	if extraJoinPreds == nil {
		return m.reject(e, r, "condition 1 (§4.1.1): an extra subsumer join is not provably lossless")
	}

	t := &translator{assign: a}
	eqR := subsumerEquiv(r)

	// Build the subsumee-side predicate pool: the subsumee's own predicates
	// and all child-compensation predicates, translated into the subsumer's
	// context (§6). Translation failure fails the match.
	var pool []*poolEntry
	for i, p := range e.Preds {
		rs, err := t.translate(p)
		if err != nil {
			return m.reject(e, r, "predicate %s is untranslatable into the subsumer context", p.String())
		}
		pool = append(pool, &poolEntry{rspace: rs, fromE: true, origIdx: i})
	}
	compPairs := append([]*childPair(nil), selPairs...)
	if gbPair != nil {
		compPairs = append(compPairs, gbPair)
	}
	for _, cp := range compPairs {
		for _, box := range cp.m.Stack {
			for pi, p := range box.Preds {
				rs := expandCompExpr(cp.m, cp.rq, p)
				pool = append(pool, &poolEntry{rspace: rs, compPair: cp, compBox: box, compIdx: pi})
			}
		}
	}

	// Condition 2: every subsumer predicate that is not an extra-join
	// predicate must match (or subsume) a pool predicate.
	for i, rp := range r.Preds {
		if extraJoinPreds[i] {
			continue
		}
		ok := false
		for _, pe := range pool {
			if qgm.ExprEqual(rp, pe.rspace, eqR) {
				pe.satisfied = true
				ok = true
				break
			}
		}
		if !ok {
			// Weaker form: the subsumer predicate subsumes a pool predicate
			// (footnote 4) — the pool predicate stays unsatisfied and is
			// re-applied in the compensation.
			for _, pe := range pool {
				if qgm.Subsumes(rp, pe.rspace, eqR) {
					ok = true
					break
				}
			}
		}
		if !ok {
			return m.reject(e, r, "condition 2 (§4.1.1/§4.2.3): subsumer predicate %s matches no subsumee or child-compensation predicate", rp.String())
		}
	}

	if gbPair == nil {
		mm := m.buildSelectComp(e, r, a, t, eqR, pool)
		if mm != nil {
			if len(selPairs) > 0 {
				mm.Pattern = "§4.2.3"
			} else {
				mm.Pattern = "§4.1.1"
			}
		}
		return mm
	}
	mm := m.buildSelectGBComp(e, r, a, gbPair, t, eqR, pool)
	if mm != nil {
		mm.Pattern = "§4.2.4"
	}
	return mm
}

// poolEntry is one subsumee-side predicate (from the subsumee itself or from
// a child compensation), translated into the subsumer's context. Entries left
// unsatisfied by condition 2 must be re-applied in the compensation
// (conditions 3 and 5).
type poolEntry struct {
	rspace    qgm.Expr
	satisfied bool // exactly matched by a subsumer predicate

	fromE    bool // subsumee predicate (vs child-compensation)
	origIdx  int  // index into e.Preds when fromE
	compPair *childPair
	compBox  *qgm.Box // stack box holding the predicate when !fromE
	compIdx  int
}

// extrasLossless verifies §4.1.1 condition 1 for every extra subsumer child:
// all subsumer predicates referencing an extra child must be RI equi-join
// predicates whose child (foreign-key) side is a matched — or already
// verified extra — base table, with the catalog proving losslessness. It
// returns the set of subsumer predicate indices that are extra-join
// predicates, or nil if some extra join may lose or duplicate rows.
func (m *Matcher) extrasLossless(r *qgm.Box, a *assignment) map[int]bool {
	extraJoin := map[int]bool{}
	// Quantifiers considered "safe" multiplicity anchors.
	safe := map[int]bool{}
	for _, p := range a.pairs {
		safe[p.rq.ID] = true
	}
	pending := []*qgm.Quantifier{}
	for _, x := range a.extras {
		if x.Kind == qgm.Scalar {
			// An (uncorrelated) scalar child contributes one value, never
			// multiplicity; nothing to verify.
			continue
		}
		pending = append(pending, x)
	}
	for len(pending) > 0 {
		progress := false
		for i := 0; i < len(pending); i++ {
			x := pending[i]
			if m.extraLossless(r, x, safe, extraJoin) {
				safe[x.ID] = true
				pending = append(pending[:i], pending[i+1:]...)
				progress = true
				i--
			}
		}
		if !progress {
			return nil
		}
	}
	return extraJoin
}

// extraLossless checks one extra child: every subsumer predicate referencing
// it must be an equality to a safe base-table child, and together those
// equalities must be covered by an RI constraint with non-nullable FK side.
func (m *Matcher) extraLossless(r *qgm.Box, x *qgm.Quantifier, safe map[int]bool, extraJoin map[int]bool) bool {
	if x.Box.Kind != qgm.BaseTableBox {
		return false
	}
	xSet := quantSet(x)
	type pair struct {
		childCol, parentCol string
		childQ              *qgm.Quantifier
	}
	var pairs []pair
	var predIdx []int
	for i, p := range r.Preds {
		if !refersToAny(p, xSet) {
			continue
		}
		b, ok := p.(*qgm.Bin)
		if !ok || b.Op != "=" {
			return false
		}
		l, lok := b.L.(*qgm.ColRef)
		rr, rok := b.R.(*qgm.ColRef)
		if !lok || !rok {
			return false
		}
		var xc, oc *qgm.ColRef
		switch {
		case l.Q == x && rr.Q != x:
			xc, oc = l, rr
		case rr.Q == x && l.Q != x:
			xc, oc = rr, l
		default:
			return false // local predicate on the extra child, or self-equality
		}
		if !safe[oc.Q.ID] || oc.Q.Box.Kind != qgm.BaseTableBox {
			return false
		}
		pairs = append(pairs, pair{
			childCol:  oc.Q.Box.Table.Columns[oc.Col].Name,
			parentCol: x.Box.Table.Columns[xc.Col].Name,
			childQ:    oc.Q,
		})
		predIdx = append(predIdx, i)
	}
	if len(pairs) == 0 {
		return false // cartesian extra child duplicates rows
	}
	// All FK-side columns must come from one child quantifier.
	childQ := pairs[0].childQ
	childCols := make([]string, len(pairs))
	parentCols := make([]string, len(pairs))
	for i, pr := range pairs {
		if pr.childQ != childQ {
			return false
		}
		childCols[i] = pr.childCol
		parentCols[i] = pr.parentCol
	}
	if !m.cat.LosslessJoin(childQ.Box.Table.Name, childCols, x.Box.Table.Name, parentCols) {
		return false
	}
	for _, i := range predIdx {
		extraJoin[i] = true
	}
	return true
}

// projectionOnly reports whether a match's compensation is a pure projection:
// a single SELECT box over the subsumer with no predicates, no rejoins and
// only simple column references.
func projectionOnly(mm *Match) bool {
	if mm.Exact {
		return true
	}
	if len(mm.Stack) != 1 {
		return false
	}
	c := mm.Stack[0]
	if c.Kind != qgm.SelectBox || len(c.Preds) > 0 || c.Distinct || len(c.Quantifiers) != 1 {
		return false
	}
	for _, col := range c.Cols {
		if _, ok := col.Expr.(*qgm.ColRef); !ok {
			return false
		}
	}
	return true
}

// compCounter is atomic: parallel candidate matching (RewriteBestCostCtx)
// runs matchers concurrently, and each allocates compensation labels.
var compCounter atomic.Int64

func compLabel(kind string) string {
	return fmt.Sprintf("%s-C%d", kind, compCounter.Add(1))
}
