package core

import (
	"repro/internal/qgm"
)

// buildSelectComp constructs the compensation for the SELECT patterns without
// grouping child compensation (§4.1.1, §4.2.3): a single SELECT box over the
// subsumer that rejoins the rejoin children, re-applies all unsatisfied
// subsumee and child-compensation predicates, and derives the subsumee's
// output columns.
func (m *Matcher) buildSelectComp(e, r *qgm.Box, a *assignment, t *translator, eqR *qgm.Equiv, pool []*poolEntry) *Match {
	// Collect rejoin quantifiers: the subsumee's own rejoin children plus the
	// rejoin children inside SELECT-only child compensations (§4.2.3: the
	// compensation "includes the rejoin children (if any)").
	rejoins := append([]*qgm.Quantifier(nil), a.rejoins...)
	for _, p := range a.pairs {
		if p.m.Exact {
			continue
		}
		for _, b := range p.m.Stack {
			for _, q := range b.Quantifiers {
				if q != p.m.SubQ {
					rejoins = append(rejoins, q)
				}
			}
		}
	}

	c := m.newCompBox(qgm.SelectBox, compLabel("Sel"))
	qSub := m.newQuant(qgm.ForEach, r, "")
	rmap, cloneQs := m.cloneRejoins(rejoins)
	c.Quantifiers = append([]*qgm.Quantifier{qSub}, cloneQs...)

	d := &deriver{
		eq:        eqR,
		sources:   subsumerSources(r, qSub, nil),
		rejoinMap: rmap,
		leafFirst: m.opts.LeafFirstDerivation,
	}

	// Conditions 3 and 5: re-apply unsatisfied predicates, derived from the
	// subsumer's outputs and rejoin columns.
	for _, pe := range pool {
		if pe.satisfied {
			continue
		}
		dp, err := d.derive(pe.rspace)
		if err != nil {
			return nil
		}
		c.Preds = append(c.Preds, dp)
	}

	// Condition 4: every subsumee output column must be derivable.
	for _, col := range e.Cols {
		rs, err := t.translate(col.Expr)
		if err != nil {
			return nil
		}
		dp, err := d.derive(rs)
		if err != nil {
			return nil
		}
		c.Cols = append(c.Cols, qgm.QCL{Name: col.Name, Expr: dp})
	}
	c.Distinct = e.Distinct

	// Exactness: empty compensation modulo projection (footnote 5). With
	// DISTINCT, the subsumer must itself be DISTINCT and the projection must
	// keep all subsumer columns, otherwise projecting could re-introduce
	// duplicates the compensation must remove.
	if len(rejoins) == 0 && len(c.Preds) == 0 && e.Distinct == r.Distinct {
		colMap := make([]int, len(c.Cols))
		pure := true
		seen := map[int]bool{}
		for i, col := range c.Cols {
			cr, ok := col.Expr.(*qgm.ColRef)
			if !ok || cr.Q != qSub || seen[cr.Col] {
				pure = false
				break
			}
			seen[cr.Col] = true
			colMap[i] = cr.Col
		}
		if pure && (!e.Distinct || len(seen) == len(r.Cols)) {
			return &Match{Subsumee: e, Subsumer: r, Exact: true, ColMap: colMap}
		}
	}

	mm := &Match{Subsumee: e, Subsumer: r, Stack: []*qgm.Box{c}, SubQ: qSub}
	mm.indexComp()
	return mm
}

// buildSelectGBComp constructs the compensation for §4.2.4: the grouping
// child compensation stack is pulled up above the subsumer (cloned level by
// level, deriving the bottom level from the subsumer's outputs and creating
// pass-through columns on demand, per the §6 walkthrough of Figure 11), and a
// final SELECT box compensates the subsumee's own predicates and columns.
func (m *Matcher) buildSelectGBComp(e, r *qgm.Box, a *assignment, gp *childPair, t *translator, eqR *qgm.Equiv, pool []*poolEntry) *Match {
	pu := newPullup(m, r, gp, eqR)
	if pu == nil {
		return nil
	}

	// Re-apply unsatisfied child-compensation predicates at their own level;
	// remember unsatisfied subsumee predicates for the top box.
	var ePreds []qgm.Expr
	for _, pe := range pool {
		if pe.satisfied {
			continue
		}
		if pe.fromE {
			ePreds = append(ePreds, e.Preds[pe.origIdx])
			continue
		}
		if !pu.addPredAt(pe.compBox, pe.compIdx) {
			return nil
		}
	}

	// Top compensation box: rejoins the subsumee's rejoin children, applies
	// the remaining subsumee predicates, and derives the output columns.
	top := m.newCompBox(qgm.SelectBox, compLabel("Sel"))
	qTop := m.newQuant(qgm.ForEach, pu.topBox(), "")
	rmapE, cloneQs := m.cloneRejoins(a.rejoins)
	top.Quantifiers = append([]*qgm.Quantifier{qTop}, cloneQs...)

	remap := func(expr qgm.Expr) (qgm.Expr, bool) {
		ok := true
		out := qgm.MapExprTopDown(expr, func(x qgm.Expr) (qgm.Expr, bool) {
			c, isRef := x.(*qgm.ColRef)
			if !isRef {
				return nil, false
			}
			if q, cloned := rmapE[c.Q.ID]; cloned {
				return &qgm.ColRef{Q: q, Col: c.Col}, true
			}
			p := a.byEQ[c.Q.ID]
			if p == nil {
				ok = false
				return c, true
			}
			if p == gp {
				idx, err := pu.ensureOrig(len(pu.src)-1, c.Col)
				if err != nil {
					ok = false
					return c, true
				}
				return &qgm.ColRef{Q: qTop, Col: idx}, true
			}
			// Exactly matched (or projection-only) sibling child: translate
			// to subsumer space and thread the value up through the stack.
			rs := t.translateQNC(p, c.Col)
			idx, err := pu.ensureRspace(len(pu.src)-1, rs)
			if err != nil {
				ok = false
				return c, true
			}
			return &qgm.ColRef{Q: qTop, Col: idx}, true
		})
		return out, ok
	}

	for _, p := range ePreds {
		dp, ok := remap(p)
		if !ok {
			return nil
		}
		top.Preds = append(top.Preds, dp)
	}
	for _, col := range e.Cols {
		dp, ok := remap(col.Expr)
		if !ok {
			return nil
		}
		top.Cols = append(top.Cols, qgm.QCL{Name: col.Name, Expr: dp})
	}
	top.Distinct = e.Distinct

	stack := append(pu.stack(), top)
	mm := &Match{Subsumee: e, Subsumer: r, Stack: stack, SubQ: pu.qSub}
	mm.indexComp()
	return mm
}
