package core

import (
	"fmt"

	"repro/internal/qgm"
)

// pullup clones a child-compensation stack above the subsumer box (§4.2.4 and
// the copy phase of §4.2.2). The bottom level re-derives its expressions from
// the subsumer's outputs; every level above is cloned with its references
// re-pointed to the clone below. Output columns are created on demand — the
// paper's pull-up tactic ("the QCLs that appear in Sel-2C1 are created there
// as a side effect of deriving the subsumee's expressions") — including
// pass-through columns threading subsumer outputs (such as Figure 11's totcnt)
// up through intermediate GROUP BY boxes.
type pullup struct {
	m   *Matcher
	r   *qgm.Box
	gp  *childPair
	src []*qgm.Box // original child-compensation stack, bottom to top

	clones  []*qgm.Box
	cloneQ  []*qgm.Quantifier // cloneQ[i] consumes clones[i] (used by level i+1 and the caller's top box)
	colMap  []map[int]int     // per level: original column → clone column
	rsCache []map[string]int  // per level: subsumer-space expression → clone column
	rejoins []map[int]*qgm.Quantifier

	qSub   *qgm.Quantifier
	d0     *deriver
	failed bool
}

// newPullup clones the stack skeleton (boxes, quantifiers, grouping
// structure). It returns nil when a grouping column cannot be derived.
func newPullup(m *Matcher, r *qgm.Box, gp *childPair, eqR *qgm.Equiv) *pullup {
	src := gp.m.Stack
	if len(src) == 0 || src[0].Kind != qgm.SelectBox {
		return nil
	}
	pu := &pullup{
		m: m, r: r, gp: gp, src: src,
		clones:  make([]*qgm.Box, len(src)),
		cloneQ:  make([]*qgm.Quantifier, len(src)),
		colMap:  make([]map[int]int, len(src)),
		rsCache: make([]map[string]int, len(src)),
		rejoins: make([]map[int]*qgm.Quantifier, len(src)),
	}
	for i := range src {
		pu.colMap[i] = map[int]int{}
		pu.rsCache[i] = map[string]int{}
	}

	// Level 0: a SELECT over the subsumer, with the original bottom level's
	// rejoin children cloned.
	c0 := m.newCompBox(qgm.SelectBox, compLabel("Sel"))
	pu.qSub = m.newQuant(qgm.ForEach, r, "")
	var rejoinQs []*qgm.Quantifier
	for _, q := range src[0].Quantifiers {
		if q != gp.m.SubQ {
			rejoinQs = append(rejoinQs, q)
		}
	}
	rmap0, clones0 := m.cloneRejoins(rejoinQs)
	c0.Quantifiers = append([]*qgm.Quantifier{pu.qSub}, clones0...)
	pu.rejoins[0] = rmap0
	pu.clones[0] = c0
	pu.cloneQ[0] = m.newQuant(qgm.ForEach, c0, "")
	pu.d0 = &deriver{
		eq:        eqR,
		sources:   subsumerSources(r, pu.qSub, nil),
		rejoinMap: rmap0,
		leafFirst: m.opts.LeafFirstDerivation,
	}

	for i := 1; i < len(src); i++ {
		b := src[i]
		switch b.Kind {
		case qgm.SelectBox:
			ci := m.newCompBox(qgm.SelectBox, compLabel("Sel"))
			var rq []*qgm.Quantifier
			for _, q := range b.Quantifiers {
				if q.Box != src[i-1] {
					rq = append(rq, q)
				}
			}
			rmap, cloned := m.cloneRejoins(rq)
			ci.Quantifiers = append([]*qgm.Quantifier{pu.cloneQ[i-1]}, cloned...)
			ci.Distinct = b.Distinct
			pu.rejoins[i] = rmap
			pu.clones[i] = ci
		case qgm.GroupByBox:
			ci := m.newCompBox(qgm.GroupByBox, compLabel("GB"))
			ci.Regroup = b.Regroup
			ci.Quantifiers = []*qgm.Quantifier{pu.cloneQ[i-1]}
			pu.rejoins[i] = map[int]*qgm.Quantifier{}
			pu.clones[i] = ci
			// Grouping columns are cloned eagerly: they define the groups.
			for _, g := range b.GroupBy {
				cr, ok := b.Cols[g].Expr.(*qgm.ColRef)
				if !ok || cr.Q.Box != src[i-1] {
					return nil
				}
				below, err := pu.ensureOrig(i-1, cr.Col)
				if err != nil {
					return nil
				}
				idx := len(ci.Cols)
				ci.Cols = append(ci.Cols, qgm.QCL{
					Name: b.Cols[g].Name,
					Expr: &qgm.ColRef{Q: pu.cloneQ[i-1], Col: below},
				})
				ci.GroupBy = append(ci.GroupBy, idx)
				pu.colMap[i][g] = idx
			}
			for _, gs := range b.GroupingSets {
				ci.GroupingSets = append(ci.GroupingSets, append([]int(nil), gs...))
			}
		default:
			return nil
		}
		pu.cloneQ[i] = m.newQuant(qgm.ForEach, pu.clones[i], "")
	}
	return pu
}

// topBox returns the top clone.
func (pu *pullup) topBox() *qgm.Box { return pu.clones[len(pu.clones)-1] }

// stack returns the clone chain bottom to top.
func (pu *pullup) stack() []*qgm.Box { return pu.clones }

// addPredAt re-applies one original stack predicate at its own level,
// deriving the bottom level from the subsumer (§4.2.3 condition 5 / §4.2.4
// pull-up conditions).
func (pu *pullup) addPredAt(origBox *qgm.Box, predIdx int) bool {
	level := -1
	for i, b := range pu.src {
		if b == origBox {
			level = i
			break
		}
	}
	if level < 0 {
		return false
	}
	p := origBox.Preds[predIdx]
	if level == 0 {
		rs := expandCompExpr(pu.gp.m, pu.gp.rq, p)
		dv, err := pu.d0.derive(rs)
		if err != nil {
			return false
		}
		pu.clones[0].Preds = append(pu.clones[0].Preds, dv)
		return true
	}
	dv, err := pu.remapLevel(p, level)
	if err != nil {
		return false
	}
	pu.clones[level].Preds = append(pu.clones[level].Preds, dv)
	return true
}

// ensureOrig makes original column j of stack level i available in the clone
// and returns its clone ordinal.
func (pu *pullup) ensureOrig(i, j int) (int, error) {
	if idx, ok := pu.colMap[i][j]; ok {
		return idx, nil
	}
	b := pu.src[i]
	if j >= len(b.Cols) {
		return 0, fmt.Errorf("core: column %d out of range in %s", j, fmtBox(b))
	}
	var idx int
	switch {
	case i == 0:
		rs := expandCompExpr(pu.gp.m, pu.gp.rq, b.Cols[j].Expr)
		dv, err := pu.d0.derive(rs)
		if err != nil {
			return 0, err
		}
		idx = addQCL(pu.clones[0], b.Cols[j].Name, dv)
	case b.Kind == qgm.SelectBox:
		dv, err := pu.remapLevel(b.Cols[j].Expr, i)
		if err != nil {
			return 0, err
		}
		idx = addQCL(pu.clones[i], b.Cols[j].Name, dv)
	case b.Kind == qgm.GroupByBox:
		// Grouping columns were pre-mapped; this must be an aggregate.
		agg, ok := b.Cols[j].Expr.(*qgm.Agg)
		if !ok {
			return 0, fmt.Errorf("core: unexpected non-aggregate column %q in %s", b.Cols[j].Name, fmtBox(b))
		}
		var arg qgm.Expr
		if !agg.Star {
			var err error
			arg, err = pu.remapLevel(agg.Arg, i)
			if err != nil {
				return 0, err
			}
		}
		idx = len(pu.clones[i].Cols)
		pu.clones[i].Cols = append(pu.clones[i].Cols, qgm.QCL{
			Name: b.Cols[j].Name,
			Expr: &qgm.Agg{Op: agg.Op, Arg: arg, Star: agg.Star, Distinct: agg.Distinct},
		})
	default:
		return 0, fmt.Errorf("core: unsupported stack box kind in %s", fmtBox(b))
	}
	pu.colMap[i][j] = idx
	return idx, nil
}

// remapLevel rewrites an expression of original stack level i (references to
// level i-1 and level-local rejoins) into the clone's space.
func (pu *pullup) remapLevel(e qgm.Expr, i int) (qgm.Expr, error) {
	var fail error
	out := qgm.MapExprTopDown(e, func(x qgm.Expr) (qgm.Expr, bool) {
		c, ok := x.(*qgm.ColRef)
		if !ok {
			return nil, false
		}
		if q, cloned := pu.rejoins[i][c.Q.ID]; cloned {
			return &qgm.ColRef{Q: q, Col: c.Col}, true
		}
		if c.Q.Box == pu.src[i-1] {
			below, err := pu.ensureOrig(i-1, c.Col)
			if err != nil {
				fail = err
				return c, true
			}
			return &qgm.ColRef{Q: pu.cloneQ[i-1], Col: below}, true
		}
		fail = fmt.Errorf("core: unresolvable reference %s at stack level %d", c.String(), i)
		return c, true
	})
	if fail != nil {
		return nil, fail
	}
	return out, nil
}

// ensureRspace threads a subsumer-space expression up to stack level i,
// deriving it from the subsumer at the bottom and creating pass-through
// columns in between. Through GROUP BY levels the value must either already
// be a grouping column or be constant per group (it derives from scalar
// subquery columns only, like Figure 11's totcnt) — in the latter case it is
// added as an extra grouping column, which the paper's NewQ10 does with
// "group by flid, totcnt".
func (pu *pullup) ensureRspace(i int, t qgm.Expr) (int, error) {
	key := t.String()
	if idx, ok := pu.rsCache[i][key]; ok {
		return idx, nil
	}
	var idx int
	if i == 0 {
		dv, err := pu.d0.derive(t)
		if err != nil {
			return 0, err
		}
		idx = addQCL(pu.clones[0], "", dv)
	} else {
		below, err := pu.ensureRspace(i-1, t)
		if err != nil {
			return 0, err
		}
		ref := &qgm.ColRef{Q: pu.cloneQ[i-1], Col: below}
		ci := pu.clones[i]
		switch ci.Kind {
		case qgm.SelectBox:
			idx = addQCL(ci, "", ref)
		case qgm.GroupByBox:
			// Reuse an existing grouping column when it already carries the
			// value.
			found := -1
			for _, g := range ci.GroupBy {
				if qgm.ExprEqual(ci.Cols[g].Expr, ref, nil) {
					found = g
					break
				}
			}
			if found >= 0 {
				idx = found
				break
			}
			if !isConstRspace(t) {
				return 0, fmt.Errorf("core: cannot thread non-constant %s through GROUP BY compensation", t.String())
			}
			idx = len(ci.Cols)
			ci.Cols = append(ci.Cols, qgm.QCL{Name: uniqueColName(ci, "c"), Expr: ref})
			pos := len(ci.GroupBy)
			ci.GroupBy = append(ci.GroupBy, idx)
			// The new column joins every grouping set: being constant, it
			// never changes the groups and is never NULL-padded.
			for k := range ci.GroupingSets {
				ci.GroupingSets[k] = append(ci.GroupingSets[k], pos)
			}
		default:
			return 0, fmt.Errorf("core: unsupported stack box kind")
		}
	}
	pu.rsCache[i][key] = idx
	return idx, nil
}

// isConstRspace reports whether a subsumer-space expression is constant per
// evaluation: every column reference goes through a Scalar (scalar-subquery)
// quantifier.
func isConstRspace(t qgm.Expr) bool {
	ok := true
	qgm.WalkExpr(t, func(x qgm.Expr) bool {
		if c, isRef := x.(*qgm.ColRef); isRef {
			if c.Q == nil || c.Q.Kind != qgm.Scalar {
				ok = false
				return false
			}
		}
		if _, isAgg := x.(*qgm.Agg); isAgg {
			ok = false
			return false
		}
		return ok
	})
	return ok
}
