package core_test

// Tests for the graceful-degradation layer: partial CompileAll, match-panic
// recovery, staleness/quarantine filtering, and RewriteOrFallback's
// always-runnable guarantee.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/qgm"
)

const resAST = `select flid, year(date) as year, count(*) as cnt
	from trans group by flid, year(date)`

const resQuery = `select flid, count(*) as cnt from trans where year(date) > 1990 group by flid`

func TestCompileAllSkipsBrokenASTs(t *testing.T) {
	e := newEnv(t, 200)
	e.cat.MustRegisterAST(catalog.ASTDef{Name: "good1", SQL: resAST})
	e.cat.MustRegisterAST(catalog.ASTDef{Name: "broken_syntax", SQL: "select from where"})
	e.cat.MustRegisterAST(catalog.ASTDef{Name: "broken_table", SQL: "select x from no_such_table"})
	e.cat.MustRegisterAST(catalog.ASTDef{Name: "good2", SQL: "select state, count(*) as c from trans, loc where flid = lid group by state"})

	asts, err := e.rw.CompileAll()
	if err == nil {
		t.Fatal("expected a joined error for the broken definitions")
	}
	if len(asts) != 2 {
		t.Fatalf("got %d compiled ASTs, want 2 (the good ones)", len(asts))
	}
	for _, ca := range asts {
		if !strings.HasPrefix(ca.Def.Name, "good") {
			t.Fatalf("unexpected survivor %q", ca.Def.Name)
		}
	}
	msg := err.Error()
	if !strings.Contains(msg, "broken_syntax") || !strings.Contains(msg, "broken_table") {
		t.Fatalf("joined error misses a broken AST: %v", err)
	}
}

func TestRewriteSkipsStaleAndQuarantined(t *testing.T) {
	e := newEnv(t, 300)
	ca := e.registerAST(t, "staleast", resAST)

	g, err := qgm.BuildSQL(resQuery, e.cat)
	if err != nil {
		t.Fatal(err)
	}
	if e.rw.Rewrite(g, ca) == nil {
		t.Fatal("fresh AST should match")
	}

	e.cat.MarkStale("staleast")
	g2, _ := qgm.BuildSQL(resQuery, e.cat)
	if res := e.rw.Rewrite(g2, ca); res != nil {
		t.Fatal("stale AST used with AllowStale=false")
	}
	if res := e.rw.RewriteBest(g2, []*core.CompiledAST{ca}); res != nil {
		t.Fatal("RewriteBest used a stale AST")
	}

	// AllowStale opts back in.
	rwStale := core.NewRewriter(e.cat, core.Options{AllowStale: true})
	g3, _ := qgm.BuildSQL(resQuery, e.cat)
	if res := rwStale.Rewrite(g3, ca); res == nil {
		t.Fatal("AllowStale rewriter refused a stale AST")
	}

	// Quarantine beats AllowStale.
	e.cat.SetQuarantineThreshold(1)
	e.cat.RecordRefreshFailure("staleast")
	g4, _ := qgm.BuildSQL(resQuery, e.cat)
	if res := rwStale.Rewrite(g4, ca); res != nil {
		t.Fatal("quarantined AST was used")
	}

	// Recovery restores matching.
	e.cat.MarkFresh("staleast")
	g5, _ := qgm.BuildSQL(resQuery, e.cat)
	if res := e.rw.Rewrite(g5, ca); res == nil {
		t.Fatal("recovered AST should match again")
	}
}

func TestMatchPanicIsRecovered(t *testing.T) {
	faultinject.Enable(1)
	defer faultinject.Disable()

	e := newEnv(t, 300)
	bad := e.registerAST(t, "panicky", resAST)
	good := e.registerAST(t, "healthy", resAST)
	faultinject.Set("core.match:panicky", faultinject.Fault{Panic: "injected match panic"})

	g, err := qgm.BuildSQL(resQuery, e.cat)
	if err != nil {
		t.Fatal(err)
	}
	res := e.rw.RewriteBest(g, []*core.CompiledAST{bad, good})
	if res == nil {
		t.Fatal("panicking candidate prevented the healthy one from matching")
	}
	if res.AST.Def.Name != "healthy" {
		t.Fatalf("rewrote against %q, want healthy", res.AST.Def.Name)
	}
	degs := e.rw.Degradations()
	found := false
	for _, d := range degs {
		var mp *core.MatchPanicError
		if errors.As(d, &mp) && mp.AST == "panicky" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no MatchPanicError recorded; degradations: %v", degs)
	}
}

func TestRewriteOrFallbackNeverMutatesInput(t *testing.T) {
	e := newEnv(t, 300)
	ca := e.registerAST(t, "fb", resAST)

	g, err := qgm.BuildSQL(resQuery, e.cat)
	if err != nil {
		t.Fatal(err)
	}
	before := g.SQL()
	plan, res := e.rw.RewriteOrFallback(context.Background(), g, []*core.CompiledAST{ca})
	if res == nil {
		t.Fatal("expected a rewrite")
	}
	if plan == g {
		t.Fatal("rewritten plan aliases the input graph")
	}
	if g.SQL() != before {
		t.Fatal("input graph was mutated")
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("returned plan invalid: %v", err)
	}

	// Original and rewritten plans agree.
	origRes, err := e.engine.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := e.engine.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if diff := exec.EqualResults(origRes, newRes); diff != "" {
		t.Fatalf("results differ: %s", diff)
	}
}

func TestRewriteOrFallbackReturnsBasePlanUnderPanic(t *testing.T) {
	faultinject.Enable(1)
	defer faultinject.Disable()

	e := newEnv(t, 300)
	ca := e.registerAST(t, "allpanic", resAST)
	faultinject.Set("core.match", faultinject.Fault{Panic: "boom"})

	g, err := qgm.BuildSQL(resQuery, e.cat)
	if err != nil {
		t.Fatal(err)
	}
	plan, res := e.rw.RewriteOrFallback(context.Background(), g, []*core.CompiledAST{ca})
	if res != nil {
		t.Fatal("rewrite succeeded despite injected panic")
	}
	if plan != g {
		t.Fatal("fallback should return the original graph")
	}
	if _, err := e.engine.Run(plan); err != nil {
		t.Fatalf("base plan not runnable: %v", err)
	}
}

func TestRewriteBestCtxCanceledFallsBack(t *testing.T) {
	e := newEnv(t, 300)
	ca := e.registerAST(t, "ctxast", resAST)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g, err := qgm.BuildSQL(resQuery, e.cat)
	if err != nil {
		t.Fatal(err)
	}
	plan, _ := e.rw.RewriteOrFallback(ctx, g, []*core.CompiledAST{ca})
	// With a dead context matching stops immediately; whatever plan comes
	// back must still run.
	if _, err := e.engine.Run(plan); err != nil {
		t.Fatalf("plan under canceled context not runnable: %v", err)
	}
}
