package core

import (
	"fmt"

	"repro/internal/qgm"
)

// childPair is one matched (subsumee child, subsumer child) quantifier pair.
type childPair struct {
	eq, rq *qgm.Quantifier
	m      *Match
}

// assignment is the outcome of pairing the children of a candidate
// subsumee/subsumer box pair: matched pairs, rejoin children (subsumee
// children with no subsumer counterpart, §4 terminology) and extra children
// (subsumer children with no subsumee counterpart).
type assignment struct {
	pairs   []*childPair
	byEQ    map[int]*childPair // subsumee quantifier ID → pair
	rejoins []*qgm.Quantifier
	extras  []*qgm.Quantifier
}

// assignChildren computes the best injective pairing of subsumee children to
// subsumer children among established matches, preferring exact matches, via
// backtracking (child lists are small). Quantifier kinds must agree.
func (m *Matcher) assignChildren(e, r *qgm.Box) *assignment {
	eqs := e.Quantifiers
	rqs := r.Quantifiers

	// Candidate subsumer children per subsumee child.
	cands := make([][]int, len(eqs))
	for i, eq := range eqs {
		for j, rq := range rqs {
			if eq.Kind != rq.Kind {
				continue
			}
			if mm := m.MatchOf(eq.Box, rq.Box); mm != nil {
				cands[i] = append(cands[i], j)
			}
		}
	}

	// Enumerate injective pairings (including leaving a child unmatched),
	// scoring by matched count then exact count.
	bestScore := -1
	var bestSel []int
	used := make([]bool, len(rqs))
	sel := make([]int, len(eqs))
	var rec func(i, matched, exact int)
	rec = func(i, matched, exact int) {
		if i == len(eqs) {
			score := matched*1000 + exact
			if score > bestScore {
				bestScore = score
				bestSel = append([]int(nil), sel...)
			}
			return
		}
		for _, j := range cands[i] {
			if used[j] {
				continue
			}
			used[j] = true
			sel[i] = j
			ex := 0
			if m.MatchOf(eqs[i].Box, rqs[j].Box).Exact {
				ex = 1
			}
			rec(i+1, matched+1, exact+ex)
			used[j] = false
		}
		sel[i] = -1
		rec(i+1, matched, exact)
	}
	rec(0, 0, 0)

	a := &assignment{byEQ: map[int]*childPair{}}
	for i, eq := range eqs {
		j := bestSel[i]
		if j < 0 {
			a.rejoins = append(a.rejoins, eq)
			continue
		}
		p := &childPair{eq: eq, rq: rqs[j], m: m.MatchOf(eq.Box, rqs[j].Box)}
		a.pairs = append(a.pairs, p)
		a.byEQ[eq.ID] = p
	}
	usedR := map[int]bool{}
	for _, p := range a.pairs {
		usedR[p.rq.ID] = true
	}
	for _, rq := range rqs {
		if !usedR[rq.ID] {
			a.extras = append(a.extras, rq)
		}
	}
	return a
}

// translator implements the expression translation of §6: rewriting a
// subsumee expression into the subsumer's context. Subsumee QNCs over
// exactly-matched children map directly to the subsumer's QNCs over the
// matching child; QNCs over children matched with compensation are expanded
// through the compensation's output expressions (Figure 15), bottoming out at
// the compensation's subsumer quantifier; QNCs over rejoin children are left
// in place (the compensation re-joins those children).
type translator struct {
	assign *assignment
}

// errUntranslatable marks subsumee QNCs that cannot be brought into the
// subsumer's context.
type errUntranslatable struct{ msg string }

func (e *errUntranslatable) Error() string { return "core: untranslatable: " + e.msg }

// translate rewrites an expression over the subsumee's QNCs into the
// subsumer-children space. Rejoin references are preserved.
func (t *translator) translate(e qgm.Expr) (out qgm.Expr, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ue, ok := r.(*errUntranslatable); ok {
				out, err = nil, ue
				return
			}
			panic(r)
		}
	}()
	out = qgm.MapExprTopDown(e, func(x qgm.Expr) (qgm.Expr, bool) {
		c, ok := x.(*qgm.ColRef)
		if !ok {
			return nil, false
		}
		p := t.assign.byEQ[c.Q.ID]
		if p == nil {
			// Rejoin child (or a reference already outside the subsumee box):
			// keep as-is.
			return c, true
		}
		return t.translateQNC(p, c.Col), true
	})
	return out, nil
}

// translateQNC translates one subsumee QNC over a matched child.
func (t *translator) translateQNC(p *childPair, col int) qgm.Expr {
	if p.m.Exact {
		return &qgm.ColRef{Q: p.rq, Col: p.m.ColMap[col]}
	}
	// Expand through the compensation: start from the compensation top's QCL
	// for this column (equivalent to the subsumee child's QCL, by the match
	// definition) and recursively expand compensation-internal references.
	return t.expandComp(p.m, p.rq, p.m.Comp().Cols[col].Expr)
}

// expandComp rewrites a compensation-internal expression into subsumer-
// children space: references into compensation boxes are expanded through
// their QCLs; references through the compensation's subsumer quantifier remap
// to the subsumer's own quantifier rq; rejoin references stay.
func (t *translator) expandComp(mm *Match, rq *qgm.Quantifier, e qgm.Expr) qgm.Expr {
	return qgm.MapExprTopDown(e, func(x qgm.Expr) (qgm.Expr, bool) {
		c, ok := x.(*qgm.ColRef)
		if !ok {
			return nil, false
		}
		if c.Q == mm.SubQ {
			return &qgm.ColRef{Q: rq, Col: c.Col}, true
		}
		if mm.isCompBox(c.Q.Box) {
			return t.expandComp(mm, rq, c.Q.Box.Cols[c.Col].Expr), true
		}
		// Rejoin reference within the compensation: keep.
		return c, true
	})
}

// expandCompExpr is the standalone form used by the recursive GROUP BY
// pattern (§4.2.2): it expands an expression that lives inside a compensation
// stack into subsumer-children space.
func expandCompExpr(mm *Match, rq *qgm.Quantifier, e qgm.Expr) qgm.Expr {
	t := &translator{}
	return t.expandComp(mm, rq, e)
}

// outputEquiv builds column-equivalence classes over the *output* columns of
// a box, lifted to QNC references through quantifier q. For a SELECT box,
// output columns are equivalent when their defining expressions are equal
// modulo the box's internal equality-predicate classes — this recognizes the
// paper's aid↔faid example (§4.1.1: "our algorithm is able to recognize such
// column equivalence").
func outputEquiv(q *qgm.Quantifier) *qgm.Equiv {
	eq := qgm.NewEquiv()
	b := q.Box
	if b == nil {
		return eq
	}
	var inner *qgm.Equiv
	switch b.Kind {
	case qgm.SelectBox:
		inner = qgm.EquivFromPreds(b.Preds)
	case qgm.GroupByBox:
		// Grouping columns are pass-throughs of the child box; lift the
		// child's output equivalence through them.
		child := b.Quantifiers[0]
		childEq := outputEquiv(child)
		for _, i := range b.GroupBy {
			for _, j := range b.GroupBy {
				if i >= j {
					continue
				}
				ci, iok := b.Cols[i].Expr.(*qgm.ColRef)
				cj, jok := b.Cols[j].Expr.(*qgm.ColRef)
				if iok && jok && childEq.Same(ci, cj) {
					eq.Union(&qgm.ColRef{Q: q, Col: i}, &qgm.ColRef{Q: q, Col: j})
				}
			}
		}
		return eq
	default:
		return eq
	}
	for i := range b.Cols {
		for j := i + 1; j < len(b.Cols); j++ {
			if b.Cols[i].Expr == nil || b.Cols[j].Expr == nil {
				continue
			}
			if qgm.ExprEqual(b.Cols[i].Expr, b.Cols[j].Expr, inner) {
				eq.Union(&qgm.ColRef{Q: q, Col: i}, &qgm.ColRef{Q: q, Col: j})
			}
		}
	}
	return eq
}

// mergeEquiv unions several equivalence relations (over disjoint QNC spaces)
// plus the subsumer box's own equality predicates into one relation usable
// for comparing translated subsumee expressions with subsumer expressions.
func subsumerEquiv(r *qgm.Box) *qgm.Equiv {
	eq := qgm.NewEquiv()
	// Equalities implied by each child's output structure (probing pairs of
	// columns is cheap: column counts are small).
	for _, q := range r.Quantifiers {
		if q.Box == nil {
			continue
		}
		child := outputEquiv(q)
		n := len(q.Box.Cols)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				a := &qgm.ColRef{Q: q, Col: i}
				b := &qgm.ColRef{Q: q, Col: j}
				if child.Same(a, b) {
					eq.Union(a, b)
				}
			}
		}
	}
	// Equalities from the subsumer's own join predicates.
	if r.Kind == qgm.SelectBox {
		for _, p := range r.Preds {
			if b, ok := p.(*qgm.Bin); ok && b.Op == "=" {
				l, lok := b.L.(*qgm.ColRef)
				rr, rok := b.R.(*qgm.ColRef)
				if lok && rok {
					eq.Union(l, rr)
				}
			}
		}
	}
	return eq
}

// refersToAny reports whether e references any of the given quantifiers.
func refersToAny(e qgm.Expr, qs map[int]bool) bool {
	found := false
	qgm.WalkExpr(e, func(x qgm.Expr) bool {
		if c, ok := x.(*qgm.ColRef); ok && c.Q != nil && qs[c.Q.ID] {
			found = true
			return false
		}
		return !found
	})
	return found
}

// refersOnly reports whether every QNC in e is over one of the given
// quantifiers.
func refersOnly(e qgm.Expr, qs map[int]bool) bool {
	ok := true
	qgm.WalkExpr(e, func(x qgm.Expr) bool {
		if c, isRef := x.(*qgm.ColRef); isRef && c.Q != nil && !qs[c.Q.ID] {
			ok = false
			return false
		}
		return ok
	})
	return ok
}

func quantSet(qs ...*qgm.Quantifier) map[int]bool {
	out := make(map[int]bool, len(qs))
	for _, q := range qs {
		if q != nil {
			out[q.ID] = true
		}
	}
	return out
}

func fmtBox(b *qgm.Box) string { return fmt.Sprintf("%s(#%d)", b.Label, b.ID) }
