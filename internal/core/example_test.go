package core_test

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// Example demonstrates the end-to-end flow on a tiny deterministic table:
// define a summary table, rewrite a coarser query to read it, and execute.
func Example() {
	cat := catalog.New()
	cat.MustAddTable(&catalog.Table{
		Name: "sales",
		Columns: []catalog.Column{
			{Name: "region", Type: sqltypes.KindString},
			{Name: "year", Type: sqltypes.KindInt},
			{Name: "amount", Type: sqltypes.KindInt},
		},
	})
	store := storage.NewStore()
	meta, _ := cat.Table("sales")
	td := store.Create(meta)
	for _, r := range []struct {
		region string
		year   int64
		amount int64
	}{
		{"west", 1990, 5}, {"west", 1990, 7}, {"west", 1991, 11},
		{"east", 1990, 3}, {"east", 1991, 2}, {"east", 1991, 4},
	} {
		td.MustInsert(sqltypes.NewString(r.region), sqltypes.NewInt(r.year), sqltypes.NewInt(r.amount))
	}
	engine := exec.NewEngine(store)

	// Register and materialize the summary table.
	rw := core.NewRewriter(cat, core.Options{})
	ast, err := rw.CompileAST(catalog.ASTDef{Name: "by_region_year", SQL: `
		select region, year, count(*) as cnt, sum(amount) as total
		from sales group by region, year`})
	if err != nil {
		panic(err)
	}
	rows, err := engine.Run(ast.Graph)
	if err != nil {
		panic(err)
	}
	store.Put(ast.Table, rows.Rows)

	// A coarser query rewrites to re-aggregate the summary.
	g, err := qgm.BuildSQL("select region, sum(amount) as total from sales group by region", cat)
	if err != nil {
		panic(err)
	}
	if res := rw.Rewrite(g, ast); res == nil {
		panic("no rewrite")
	}
	fmt.Println(g.SQL())

	result, err := engine.Run(g)
	if err != nil {
		panic(err)
	}
	exec.SortRows(result.Rows)
	for _, r := range result.Rows {
		fmt.Printf("%s %s\n", r[0], r[1])
	}
	// Output:
	// SELECT by_region_year.region, sum(by_region_year.total) AS total FROM by_region_year GROUP BY by_region_year.region
	// east 9
	// west 23
}

// ExampleRewriter_Explain shows the per-pair decision log for a rejected
// match: the AST's HAVING filtered partial groups the query still needs
// (the paper's Table 1).
func ExampleRewriter_Explain() {
	cat := catalog.New()
	cat.MustAddTable(&catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "k", Type: sqltypes.KindInt},
			{Name: "g", Type: sqltypes.KindInt},
		},
	})
	rw := core.NewRewriter(cat, core.Options{})
	ast, err := rw.CompileAST(catalog.ASTDef{Name: "filtered", SQL: `
		select k, g, count(*) as cnt from t group by k, g having count(*) > 2`})
	if err != nil {
		panic(err)
	}
	g, err := qgm.BuildSQL("select k, count(*) as cnt from t group by k", cat)
	if err != nil {
		panic(err)
	}
	for _, te := range rw.Explain(g, ast) {
		status := "reject"
		if te.Matched {
			status = "match"
		}
		fmt.Printf("%s %s vs %s\n", status, te.Subsumee, te.Subsumer)
	}
	// Output:
	// match Base-t vs Base-t
	// match Sel-Q vs Sel-Q
	// match GB-Q vs GB-Q
	// reject TopSel-Q vs TopSel-Q
}
