package core
