// Package core implements the paper's contribution: the AST matching and
// query-rewrite algorithm (§3–§6). It consists of
//
//   - the navigator (§3), which scans the query and AST QGM graphs bottom-up,
//     pairing candidate subsumee/subsumer boxes and invoking the match
//     function until the AST's root box is matched with one or more query
//     boxes;
//   - the match function, with sufficient matching conditions and
//     compensation construction for the paper's patterns: SELECT/SELECT with
//     exact child matches (§4.1.1), GROUP BY/GROUP BY (§4.1.2), GROUP BY with
//     SELECT-only child compensation (§4.2.1), GROUP BY with GROUP BY child
//     compensation (§4.2.2, recursive), SELECT with SELECT-only (§4.2.3) and
//     with GROUP BY (§4.2.4) child compensation, and the multidimensional
//     patterns cube-AST (§5.1) and cube-query/cube-AST (§5.2);
//   - the expression translation and derivation machinery (§6) that rewrites
//     subsumee expressions into the subsumer's column space, tests semantic
//     predicate equivalence/subsumption, and computes compensating
//     expressions from the subsumer's output columns.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/qgm"
)

// Options tune documented design choices of the algorithm; the defaults
// reproduce the paper. Each deviation is exercised by an ablation benchmark.
type Options struct {
	// LeafFirstDerivation disables the paper's minimal-QCL derivation
	// preference (§4.1.1 example: derive amt as value*(1-disc), not
	// qty*price*(1-disc)); instead expressions are decomposed to leaf columns
	// before consulting subsumer QCLs.
	LeafFirstDerivation bool

	// AlwaysRegroup disables the 1:N-rejoin regrouping elimination of §4.2.1
	// (example 2: NewQ7 needs no GROUP BY because Loc joins 1:N on its key).
	AlwaysRegroup bool

	// FirstCuboid disables the smallest-cuboid selection of §5.1 and takes
	// the first matching subsumer grouping set instead.
	FirstCuboid bool

	// Trace records a decision log (TraceEntry per candidate pair) for
	// EXPLAIN-style diagnostics.
	Trace bool

	// AllowStale lets the rewriter use ASTs whose materialization is marked
	// stale in the catalog (e.g. after a failed refresh). Quarantined ASTs
	// are never used regardless. Default false: staleness disables an AST.
	AllowStale bool

	// NoPrune disables the catalog signature index, so every usable AST goes
	// through full matching. For ablation and the pruned-vs-unpruned
	// benchmarks; pruning is conservative, so results are identical either
	// way.
	NoPrune bool

	// VerifyPlans runs the deep plan-soundness checker (internal/qgmcheck:
	// type inference, compensation post-conditions, re-aggregation validity)
	// over every accepted rewrite, in addition to the structural check that
	// always gates rewrites. A failing plan is discarded and recorded as a
	// degradation, never an error. Default false: the deep checker allocates
	// per plan, and the rewrite hot paths stay allocation-free without it.
	VerifyPlans bool
}

// Match records an established subsumption relationship between a query box
// (the subsumee) and an AST box (the subsumer), per the paper's definition in
// §3: a graph containing the subsumer subgraph plus the compensation is
// semantically equivalent to the subsumee subgraph.
type Match struct {
	Subsumee *qgm.Box
	Subsumer *qgm.Box

	// Pattern names the paper pattern that established the match ("§4.1.1" …
	// "§4.2.4", "§5.1", "§5.2", "base table"); EXPLAIN and the per-pattern
	// match counters report it.
	Pattern string

	// Exact marks an empty compensation: subsumee output column i is
	// subsumer output column ColMap[i] (the subsumer may produce extra
	// columns, footnote 5).
	Exact  bool
	ColMap []int

	// Stack is the compensation for non-exact matches: a bottom-to-top chain
	// of newly created boxes. The bottom box consumes the subsumer through
	// SubQ; boxes may additionally consume rejoin children (query-side
	// boxes). The top box's column i computes subsumee column i.
	Stack []*qgm.Box
	SubQ  *qgm.Quantifier

	// compBoxes indexes every box in Stack by ID, for translation.
	compBoxes map[int]bool
}

// Comp returns the top compensation box (nil for exact matches).
func (m *Match) Comp() *qgm.Box {
	if len(m.Stack) == 0 {
		return nil
	}
	return m.Stack[len(m.Stack)-1]
}

func (m *Match) indexComp() {
	m.compBoxes = make(map[int]bool, len(m.Stack))
	for _, b := range m.Stack {
		m.compBoxes[b.ID] = true
	}
}

func (m *Match) isCompBox(b *qgm.Box) bool { return b != nil && m.compBoxes[b.ID] }

// hasGroupingComp reports whether the compensation contains a GROUP BY box.
func (m *Match) hasGroupingComp() bool {
	for _, b := range m.Stack {
		if b.Kind == qgm.GroupByBox {
			return true
		}
	}
	return false
}

type pairKey struct{ e, r int }

// TraceEntry records one candidate-pair decision for EXPLAIN-style output.
type TraceEntry struct {
	Subsumee string // query box label
	Subsumer string // AST box label
	Matched  bool
	Exact    bool
	Pattern  string // paper pattern that matched ("§4.1.1" …); empty on rejects
	Reason   string // failure reason (references the paper's condition) or compensation summary
}

// Matcher runs the navigator over one (query graph, AST graph) pair.
type Matcher struct {
	cat  *catalog.Catalog
	opts Options
	obsv *obs.Observer // set by the Rewriter; nil when observability is off

	eg *qgm.Graph // subsumee (query) graph; compensation boxes allocate here
	rg *qgm.Graph // subsumer (AST) graph

	memo  map[pairKey]*Match
	trace []TraceEntry
}

// NewMatcher prepares a matcher for a query graph and an AST graph.
func NewMatcher(cat *catalog.Catalog, query, ast *qgm.Graph, opts Options) *Matcher {
	return &Matcher{cat: cat, opts: opts, eg: query, rg: ast, memo: map[pairKey]*Match{}}
}

// Trace returns the decision log when tracing is enabled (Options.Trace).
func (m *Matcher) Trace() []TraceEntry { return m.trace }

// reject records a failed candidate pair and returns nil, for use as a
// one-line failure return in the pattern implementations.
func (m *Matcher) reject(e, r *qgm.Box, format string, args ...any) *Match {
	m.obsv.Add(CtrMatchRejects, 1)
	if m.opts.Trace {
		m.trace = append(m.trace, TraceEntry{
			Subsumee: e.Label, Subsumer: r.Label,
			Reason: fmt.Sprintf(format, args...),
		})
	}
	return nil
}

func (m *Matcher) accept(match *Match) *Match {
	if match != nil {
		m.obsv.Add(CtrMatchAccepts, 1)
		if m.obsv.Enabled() && match.Pattern != "" {
			m.obsv.Add("core.match.accept."+match.Pattern, 1)
		}
	}
	if m.opts.Trace && match != nil {
		te := TraceEntry{
			Subsumee: match.Subsumee.Label, Subsumer: match.Subsumer.Label,
			Matched: true, Exact: match.Exact, Pattern: match.Pattern,
		}
		if match.Exact {
			te.Reason = "exact (projection only)"
		} else {
			kinds := make([]string, len(match.Stack))
			for i, b := range match.Stack {
				kinds[i] = b.Kind.String()
			}
			te.Reason = "compensation: " + strings.Join(kinds, " → ")
		}
		m.trace = append(m.trace, te)
	}
	return match
}

// Run executes the navigator (§3): it seeds the candidate set with all pairs
// of leaf boxes, and after each successful match enqueues all pairs of
// parents of the matched boxes, so that whenever the match function runs, the
// matches between the input boxes' children are already known. It returns all
// matches whose subsumer is the AST's root box, i.e. the points where the
// whole AST can be substituted into the query.
func (m *Matcher) Run() []*Match {
	return m.RunCtx(context.Background())
}

// RunCtx is Run bounded by a context: when the context expires mid-search the
// navigator stops and returns the root matches established so far (matching
// is best-effort — a truncated search costs rewrite opportunities, never
// correctness).
func (m *Matcher) RunCtx(ctx context.Context) []*Match {
	eParents := m.eg.Parents()
	rParents := m.rg.Parents()

	type pair struct{ e, r *qgm.Box }
	var queue []pair
	inQueue := map[pairKey]bool{}
	push := func(e, r *qgm.Box) {
		k := pairKey{e.ID, r.ID}
		if !inQueue[k] {
			inQueue[k] = true
			queue = append(queue, pair{e, r})
		}
	}

	for _, el := range m.eg.Leaves() {
		for _, rl := range m.rg.Leaves() {
			push(el, rl)
		}
	}

	done := ctx.Done()
	for len(queue) > 0 {
		select {
		case <-done:
			return m.rootMatches()
		default:
		}
		p := queue[0]
		queue = queue[1:]
		delete(inQueue, pairKey{p.e.ID, p.r.ID})

		if _, done := m.memo[pairKey{p.e.ID, p.r.ID}]; done {
			continue
		}
		match := m.matchPair(p.e, p.r)
		if match == nil {
			continue
		}
		m.memo[pairKey{p.e.ID, p.r.ID}] = match
		for _, pe := range eParents[p.e.ID] {
			for _, pr := range rParents[p.r.ID] {
				push(pe.Parent, pr.Parent)
			}
		}
	}

	return m.rootMatches()
}

// rootMatches collects the established matches whose subsumer is the AST's
// root box, in deterministic order.
func (m *Matcher) rootMatches() []*Match {
	var out []*Match
	for k, match := range m.memo {
		if k.r == m.rg.Root.ID {
			out = append(out, match)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Subsumee.ID < out[j].Subsumee.ID })
	return out
}

// MatchOf returns the established match for a box pair, if any.
func (m *Matcher) MatchOf(e, r *qgm.Box) *Match {
	return m.memo[pairKey{e.ID, r.ID}]
}

// matchPair is the match function (§3): it applies the two universal
// conditions — same box type, and at least one pair of matching children —
// then dispatches to the pattern implementations. It returns nil when no
// match can be established (the conditions are sufficient, not necessary).
func (m *Matcher) matchPair(e, r *qgm.Box) *Match {
	if e.Kind != r.Kind {
		return m.reject(e, r, "universal condition 2: box types differ (%s vs %s)", e.Kind, r.Kind)
	}
	switch e.Kind {
	case qgm.BaseTableBox:
		if e.Table.Name != r.Table.Name {
			return nil // different tables: not worth tracing
		}
		colMap := make([]int, len(e.Cols))
		for i := range colMap {
			colMap[i] = i
		}
		return m.accept(&Match{Subsumee: e, Subsumer: r, Exact: true, ColMap: colMap, Pattern: "base table"})
	case qgm.SelectBox:
		return m.accept(m.matchSelect(e, r))
	case qgm.GroupByBox:
		return m.accept(m.matchGroupBy(e, r))
	default:
		return nil
	}
}

// newCompBox allocates a compensation box in the query graph.
func (m *Matcher) newCompBox(kind qgm.BoxKind, label string) *qgm.Box {
	return m.eg.NewBox(kind, label)
}

// newQuant allocates a compensation quantifier in the query graph.
func (m *Matcher) newQuant(kind qgm.QuantKind, child *qgm.Box, alias string) *qgm.Quantifier {
	return m.eg.NewQuantifier(kind, child, alias)
}
