package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
)

// TestRewriteBestPicksHighestBox: with two applicable ASTs, the one matching
// a higher query box (absorbing more of the query) wins.
func TestRewriteBestPicksHighestBox(t *testing.T) {
	e := newEnv(t, 1500)
	fine := e.registerAST(t, "fine_detail", `
		select tid, faid, flid, date, qty, price, disc, fpgid from trans`)
	coarse := e.registerAST(t, "coarse_agg", `
		select faid, year(date) as year, count(*) as cnt
		from trans group by faid, year(date)`)

	sql := `select faid, count(*) as cnt from trans group by faid`
	orig, err := qgm.BuildSQL(sql, e.cat)
	if err != nil {
		t.Fatal(err)
	}
	origRes := mustRun(t, e, orig)

	g, _ := qgm.BuildSQL(sql, e.cat)
	res := e.rw.RewriteBest(g, []*core.CompiledAST{fine, coarse})
	if res == nil {
		t.Fatal("no rewrite")
	}
	if res.AST.Def.Name != "coarse_agg" {
		t.Fatalf("expected the aggregated AST to win, got %s:\n%s", res.AST.Def.Name, g.SQL())
	}
	if diff := exec.EqualResults(origRes, mustRun(t, e, g)); diff != "" {
		t.Fatalf("mismatch: %s", diff)
	}
}

// TestRewriteAllMultipleASTs: a query whose main block matches one AST and
// whose scalar subquery block matches another gets both rewrites through the
// paper's iterative process.
func TestRewriteAllMultipleASTs(t *testing.T) {
	e := newEnv(t, 1500)
	yearly := e.registerAST(t, "it_yearly", `
		select flid, year(date) as year, count(*) as cnt
		from trans group by flid, year(date)`)
	byAcct := e.registerAST(t, "it_byacct", `
		select faid, count(*) as cnt from trans group by faid`)

	sql := `select flid, count(*) as cnt
	        from trans
	        where qty > (select min(cnt) from (select faid, count(*) as cnt from trans group by faid) s) % 7
	        group by flid`
	orig, err := qgm.BuildSQL(sql, e.cat)
	if err != nil {
		t.Fatal(err)
	}
	origRes := mustRun(t, e, orig)

	g, _ := qgm.BuildSQL(sql, e.cat)
	results := e.rw.RewriteAll(g, []*core.CompiledAST{yearly, byAcct})
	if len(results) < 1 {
		t.Fatalf("expected at least one rewrite, got %d\n%s", len(results), g.Dump())
	}
	if diff := exec.EqualResults(origRes, mustRun(t, e, g)); diff != "" {
		t.Fatalf("mismatch after %d rewrites: %s\n%s", len(results), diff, g.SQL())
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.AST.Def.Name] = true
	}
	if !names["it_byacct"] {
		t.Fatalf("inner block should route to it_byacct; applied: %v\n%s", names, g.SQL())
	}
}

// TestInnerBlockOnlyRewrite: when only the derived-table block matches, the
// outer query is preserved around the rewritten inner block.
func TestInnerBlockOnlyRewrite(t *testing.T) {
	e := newEnv(t, 1500)
	ast := e.registerAST(t, "inner_only", `
		select faid, year(date) as year, count(*) as cnt
		from trans group by faid, year(date)`)
	sql := `select year, count(*) as busy
	        from (select faid, year(date) as year, count(*) as n
	              from trans group by faid, year(date)) a
	        where n > 10
	        group by year`
	newSQL := e.mustRewrite(t, sql, ast)
	if !strings.Contains(newSQL, "inner_only") {
		t.Fatalf("inner block not rewritten: %s", newSQL)
	}
}

// TestScalarSubqueryBlocks: a scalar subquery the AST lacks is legitimately
// re-joined (re-evaluated) by the compensation; but an AST whose HAVING
// references its own scalar subquery has filtered rows and must be rejected.
func TestScalarSubqueryBlocks(t *testing.T) {
	e := newEnv(t, 800)
	ast := e.registerAST(t, "scalar_loc", `
		select flid, count(*) as cnt, (select count(*) from loc) as denom
		from trans group by flid`)
	// The acct-counting subquery has no AST counterpart: it becomes a rejoin
	// (re-evaluated scalar) in the compensation — sound and verified.
	e.mustRewrite(t, `
		select flid, count(*) * 100 / (select count(*) from acct) as pct
		from trans group by flid`, ast)
	// With the matching denominator it rewrites too.
	e.mustRewrite(t, `
		select flid, count(*) * 100 / (select count(*) from loc) as pct
		from trans group by flid`, ast)

	// An AST that filtered on its scalar subquery keeps fewer rows than the
	// query needs: no match.
	filtered := e.registerAST(t, "scalar_filtered", `
		select flid, count(*) as cnt
		from trans group by flid
		having count(*) > (select count(*) from loc) % 5`)
	e.mustNotRewrite(t, `select flid, count(*) as cnt from trans group by flid`, filtered)
}

// TestDistinctHandling: SELECT DISTINCT matches only a DISTINCT AST (footnote
// 2 restricts matching to same-type boxes), and results stay correct.
func TestDistinctHandling(t *testing.T) {
	e := newEnv(t, 800)
	plain := e.registerAST(t, "plain_pairs", "select faid, flid from trans")
	e.mustRewrite(t, "select distinct faid, flid from trans", plain)

	// DISTINCT AST answering a DISTINCT query.
	dist := e.registerAST(t, "dist_pairs", "select distinct faid, flid, qty from trans")
	e.mustRewrite(t, "select distinct faid, flid, qty from trans where qty > 2", dist)

	// A plain (duplicate-preserving) query must not read a DISTINCT AST.
	e.mustNotRewrite(t, "select faid, flid, qty from trans", dist)
}

// TestSubsumedPredicateReapplied: AST keeps more rows (qty > 1); the query's
// stricter qty > 3 must appear in the compensation.
func TestSubsumedPredicateReapplied(t *testing.T) {
	e := newEnv(t, 800)
	ast := e.registerAST(t, "wide_pred", "select tid, qty, price from trans where qty > 1")
	newSQL := e.mustRewrite(t, "select tid from trans where qty > 3", ast)
	if !strings.Contains(newSQL, "> 3") {
		t.Fatalf("stricter predicate missing from compensation: %s", newSQL)
	}
}

// TestMinMaxDerivation covers rules (d)/(e): MAX re-aggregates partial
// maxima; MIN of a grouping column derives directly.
func TestMinMaxDerivation(t *testing.T) {
	e := newEnv(t, 1200)
	ast := e.registerAST(t, "mm", `
		select flid, year(date) as year, qty, max(price) as mx, min(price) as mn, count(*) as cnt
		from trans group by flid, year(date), qty`)
	e.mustRewrite(t, `
		select flid, max(price) as mx, min(price) as mn
		from trans group by flid`, ast)
	// MIN over a grouping column (qty) of the AST.
	e.mustRewrite(t, `
		select flid, min(qty) as mq, max(qty) as xq
		from trans group by flid`, ast)
}

// TestSumViaCountRule covers rule (c) second form: SUM(x) where x derives
// from grouping columns uses SUM(x * cnt).
func TestSumViaCountRule(t *testing.T) {
	e := newEnv(t, 1200)
	ast := e.registerAST(t, "sumviacnt", `
		select flid, qty, count(*) as cnt
		from trans group by flid, qty`)
	newSQL := e.mustRewrite(t, `
		select flid, sum(qty) as total, sum(qty * 2) as dbl
		from trans group by flid`, ast)
	if !strings.Contains(strings.ToLower(newSQL), "* sumviacnt.cnt") &&
		!strings.Contains(strings.ToLower(newSQL), "cnt)") {
		t.Logf("NewQ: %s", newSQL)
	}
}

// TestCountDistinctViaGroupingColumn covers rules (f)/(g): COUNT(DISTINCT x)
// derives when x is a grouping column of the AST — including when the AST
// groups by additional columns, which the strengthened rule handles soundly.
func TestCountDistinctViaGroupingColumn(t *testing.T) {
	e := newEnv(t, 1200)
	ast := e.registerAST(t, "cdgc", `
		select flid, faid, year(date) as year, count(*) as cnt
		from trans group by flid, faid, year(date)`)
	// The extra `year` grouping column would make the paper's literal
	// COUNT(y) rule overcount; the implementation re-aggregates DISTINCT.
	e.mustRewrite(t, `
		select flid, count(distinct faid) as buyers, sum(distinct faid) as s
		from trans group by flid`, ast)
}

// TestAvgDerivation: AVG canonicalizes to SUM/COUNT and derives through the
// standard rules.
func TestAvgDerivation(t *testing.T) {
	e := newEnv(t, 1200)
	ast := e.registerAST(t, "avgast", `
		select flid, year(date) as year, sum(qty) as sq, count(qty) as cq, count(*) as cnt
		from trans group by flid, year(date)`)
	e.mustRewrite(t, `select flid, avg(qty) as aq from trans group by flid`, ast)
}

// TestNoMatchDifferentAggregate: the AST lacks the needed aggregate and its
// argument is not derivable → reject.
func TestNoMatchDifferentAggregate(t *testing.T) {
	e := newEnv(t, 800)
	ast := e.registerAST(t, "onlycnt", `
		select flid, count(*) as cnt from trans group by flid`)
	e.mustNotRewrite(t, "select flid, sum(price) as s from trans group by flid", ast)
	e.mustNotRewrite(t, "select flid, max(price) as m from trans group by flid", ast)
}

// TestNoMatchFinerGrouping: the query groups finer than the AST → reject.
func TestNoMatchFinerGrouping(t *testing.T) {
	e := newEnv(t, 800)
	ast := e.registerAST(t, "coarse2", `
		select flid, count(*) as cnt from trans group by flid`)
	e.mustNotRewrite(t, `
		select flid, year(date) as y, count(*) as cnt
		from trans group by flid, year(date)`, ast)
}

// TestExactMatchProjectionOnly: identical definitions yield an exact match
// with a pure projection splice.
func TestExactMatchProjectionOnly(t *testing.T) {
	e := newEnv(t, 800)
	ast := e.registerAST(t, "ident", `
		select flid, year(date) as year, count(*) as cnt
		from trans group by flid, year(date)`)
	newSQL := e.mustRewrite(t, `
		select flid, year(date) as year, count(*) as cnt
		from trans group by flid, year(date)`, ast)
	low := strings.ToLower(newSQL)
	if strings.Contains(low, "group by") || strings.Contains(low, "where") {
		t.Fatalf("exact match should need no compensation: %s", newSQL)
	}
}

func mustRun(t *testing.T, e *env, g *qgm.Graph) *exec.Result {
	t.Helper()
	res, err := e.engine.Run(g)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, g.Dump())
	}
	return res
}

// TestDetailASTUnderAggregation: a select-only (detail) AST matches the
// query's lower join block; the query's own GROUP BY stays on top of the
// spliced compensation.
func TestDetailASTUnderAggregation(t *testing.T) {
	e := newEnv(t, 1200)
	ast := e.registerAST(t, "detail", `
		select tid, faid, flid, date, qty, price, country
		from trans, loc where flid = lid`)
	newSQL := e.mustRewrite(t, `
		select faid, year(date) as year, count(*) as cnt, sum(qty) as items
		from trans, loc
		where flid = lid and country = 'USA' and price > 50
		group by faid, year(date)`, ast)
	low := strings.ToLower(newSQL)
	if !strings.Contains(low, "group by") || !strings.Contains(low, "detail") {
		t.Fatalf("expected aggregation over the detail AST: %s", newSQL)
	}
}

// TestBetweenPredicateSubsumption: BETWEEN desugars to a conjunction whose
// halves participate in predicate matching and compensation.
func TestBetweenPredicateSubsumption(t *testing.T) {
	e := newEnv(t, 1000)
	ast := e.registerAST(t, "rangeast", `
		select tid, qty, price from trans where qty between 1 and 5`)
	e.mustRewrite(t, "select tid from trans where qty between 2 and 4", ast)
	e.mustNotRewrite(t, "select tid from trans where qty between 0 and 9", ast)
}

// TestInListHandling: IN desugars to ORs; identical lists match, a narrower
// query list is subsumed (the stricter IN is re-applied in the compensation),
// and a wider query list is rejected.
func TestInListHandling(t *testing.T) {
	e := newEnv(t, 1000)
	ast := e.registerAST(t, "inast", `
		select tid, qty from trans where qty in (1, 2, 3)`)
	e.mustRewrite(t, "select tid from trans where qty in (1, 2, 3)", ast)
	newSQL := e.mustRewrite(t, "select tid from trans where qty in (1, 2)", ast)
	if !strings.Contains(newSQL, "= 1") || !strings.Contains(newSQL, "= 2") {
		t.Fatalf("narrower IN must be re-applied: %s", newSQL)
	}
	e.mustNotRewrite(t, "select tid from trans where qty in (1, 2, 3, 4)", ast)
	// A single equality inside the AST list is subsumed too.
	e.mustRewrite(t, "select tid from trans where qty = 2", ast)
}

// TestDistinctMatchesGroupByAST is the paper's footnote-2 capability: SELECT
// DISTINCT canonicalizes to GROUP BY over all output columns, so a DISTINCT
// query matches an aggregation AST with the same grouping (the AST's extra
// aggregate columns are simply not used).
func TestDistinctMatchesGroupByAST(t *testing.T) {
	e := newEnv(t, 1000)
	ast := e.registerAST(t, "fn2", `
		select faid, flid, count(*) as cnt, sum(qty) as sq
		from trans group by faid, flid`)
	newSQL := e.mustRewrite(t, "select distinct faid, flid from trans", ast)
	low := strings.ToLower(newSQL)
	if !strings.Contains(low, "fn2") {
		t.Fatalf("expected the aggregation AST to serve the DISTINCT query: %s", newSQL)
	}
	// Coarser DISTINCT regroups the AST.
	e.mustRewrite(t, "select distinct faid from trans", ast)
	// And the reverse: an aggregation query over a DISTINCT AST matches when
	// the aggregates are derivable (COUNT(*) is not — duplicates were lost).
	dist := e.registerAST(t, "fn2b", "select distinct faid, flid from trans")
	e.mustNotRewrite(t, "select faid, count(*) as cnt from trans group by faid", dist)
	e.mustRewrite(t, "select faid, count(distinct flid) as locs from trans group by faid", dist)
}

// TestHavingVariants: HAVING over grouping columns, over arithmetic of
// aggregates, and mixed — all translated and compensated correctly.
func TestHavingVariants(t *testing.T) {
	e := newEnv(t, 1500)
	ast := e.registerAST(t, "hv", `
		select flid, year(date) as year, count(*) as cnt, sum(qty) as sq
		from trans group by flid, year(date)`)

	// HAVING over a grouping column only (whole groups pass or fail).
	e.mustRewrite(t, `
		select flid, count(*) as cnt from trans
		group by flid having flid > 100`, ast)

	// HAVING over arithmetic of aggregates, with regrouping.
	e.mustRewrite(t, `
		select flid, sum(qty) as sq from trans
		group by flid having sum(qty) * 2 > count(*) + 10`, ast)

	// HAVING matching the AST's grouping plus residual comparisons.
	e.mustRewrite(t, `
		select flid, year(date) as year, count(*) as cnt from trans
		group by flid, year(date)
		having count(*) > 3 and year(date) > 1990`, ast)
}

// TestExpressionHeavyQueries: arbitrary expressions in SELECT and GROUP BY
// (contribution 2 of the paper) flow through translation and derivation.
func TestExpressionHeavyQueries(t *testing.T) {
	e := newEnv(t, 1500)
	ast := e.registerAST(t, "exprast", `
		select flid, year(date) as year, qty,
		       count(*) as cnt, sum(qty * price) as rev, sum(price) as sp
		from trans group by flid, year(date), qty`)

	// Grouping on an expression of AST grouping columns; output arithmetic
	// over derived aggregates.
	e.mustRewrite(t, `
		select year(date) % 100 as yy, qty * 10 as q10,
		       sum(qty * price) / count(*) as avg_rev
		from trans
		group by year(date) % 100, qty * 10`, ast)

	// CASE over grouping columns.
	e.mustRewrite(t, `
		select case when qty > 3 then 1 else 0 end as bulk, count(*) as cnt
		from trans
		group by case when qty > 3 then 1 else 0 end`, ast)
}

// TestCubeQueryOverSimpleAST: a ROLLUP query matches a plain (simple GROUP
// BY) AST through the §5.2 union fallback — the AST's grouping set covers the
// rollup's union, and the compensation regroups with the rollup's own sets.
func TestCubeQueryOverSimpleAST(t *testing.T) {
	e := newEnv(t, 1500)
	ast := e.registerAST(t, "simplegb", `
		select flid, year(date) as year, count(*) as cnt, sum(qty) as sq
		from trans group by flid, year(date)`)
	newSQL := e.mustRewrite(t, `
		select flid, year(date) as year, count(*) as cnt
		from trans group by rollup(flid, year(date))`, ast)
	if !strings.Contains(strings.ToLower(newSQL), "grouping sets") {
		t.Fatalf("expected multidimensional regrouping over the simple AST: %s", newSQL)
	}
	// CUBE too.
	e.mustRewrite(t, `
		select flid, year(date) as year, sum(qty) as sq
		from trans group by cube(flid, year(date))`, ast)
}

// TestAggDerivationWithExactSets: grouping sets match exactly but the AST
// lacks the query's aggregate; the matcher falls back to a trivial regroup
// and derives SUM(qty) as SUM(qty * cnt) from the grouping column (rule (c)).
func TestAggDerivationWithExactSets(t *testing.T) {
	e := newEnv(t, 1200)
	ast := e.registerAST(t, "exactsets", `
		select flid, qty, count(*) as cnt
		from trans group by flid, qty`)
	newSQL := e.mustRewrite(t, `
		select flid, qty, sum(qty) as total
		from trans group by flid, qty`, ast)
	if !strings.Contains(strings.ToLower(newSQL), "cnt") {
		t.Fatalf("expected SUM(qty*cnt) derivation: %s", newSQL)
	}
}

// TestAggregatesOverRejoinColumns relaxes the §4.2.1 assumption: aggregate
// arguments referencing rejoin (dimension) columns derive through
// multiply-by-count (SUM), direct re-aggregation (MIN/MAX) and DISTINCT
// re-aggregation — all verified against base execution.
func TestAggregatesOverRejoinColumns(t *testing.T) {
	e := newEnv(t, 1500)
	ast := e.registerAST(t, "rejagg", `
		select flid, year(date) as year, count(*) as cnt
		from trans group by flid, year(date)`)

	// SUM over a rejoin column: each location's lid summed once per
	// transaction — recomputed as lid * cnt.
	e.mustRewrite(t, `
		select year(date) as year, sum(lid) as s
		from trans, loc where flid = lid
		group by year(date)`, ast)

	// MIN/MAX and COUNT(DISTINCT) over rejoin columns.
	e.mustRewrite(t, `
		select year(date) as year, min(state) as mn, max(state) as mx,
		       count(distinct state) as states
		from trans, loc where flid = lid
		group by year(date)`, ast)

	// COUNT of a non-nullable rejoin column equals the row count.
	e.mustRewrite(t, `
		select year(date) as year, count(city) as c
		from trans, loc where flid = lid
		group by year(date)`, ast)
}

// TestLikePredicateMatching: LIKE predicates participate in condition 2
// (exact match against the AST's predicate) and in compensation derivation.
func TestLikePredicateMatching(t *testing.T) {
	e := newEnv(t, 1200)
	ast := e.registerAST(t, "likeast", `
		select tid, pgname, price from trans, pgroup
		where fpgid = pgid and pgname like 'T%'`)
	// Same LIKE: satisfied by the AST's own predicate.
	e.mustRewrite(t, `
		select tid, price from trans, pgroup
		where fpgid = pgid and pgname like 'T%'`, ast)
	// Additional LIKE applied in the compensation (derivable from pgname).
	newSQL := e.mustRewrite(t, `
		select tid from trans, pgroup
		where fpgid = pgid and pgname like 'T%' and pgname like '%V'`, ast)
	if !strings.Contains(strings.ToLower(newSQL), "like") {
		t.Fatalf("residual LIKE missing: %s", newSQL)
	}
	// A LIKE the AST's predicate does not imply: reject.
	e.mustNotRewrite(t, `
		select tid from trans, pgroup
		where fpgid = pgid and pgname like 'R%'`, ast)
}
