package core

// White-box test for the bounded degradation buffer: an undrained Rewriter
// facing a persistently broken AST must not grow without bound.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/catalog"
)

func TestDegradationsBounded(t *testing.T) {
	rw := NewRewriter(catalog.New(), Options{})
	const extra = 37
	for i := 0; i < maxDegradations+extra; i++ {
		rw.noteDegraded(fmt.Errorf("event %d", i))
	}

	got := rw.Degradations()
	if len(got) != maxDegradations+1 {
		t.Fatalf("retained %d entries, want %d events plus the drop notice", len(got), maxDegradations)
	}
	if want := fmt.Sprintf("%d older degradation events dropped", extra); !strings.Contains(got[0].Error(), want) {
		t.Fatalf("first entry %q should report %q", got[0], want)
	}
	// The newest events survive; the oldest are the ones evicted.
	if want := fmt.Sprintf("event %d", maxDegradations+extra-1); got[len(got)-1].Error() != want {
		t.Fatalf("newest event lost: got %q, want %q", got[len(got)-1], want)
	}
	if want := fmt.Sprintf("event %d", extra); got[1].Error() != want {
		t.Fatalf("oldest retained event: got %q, want %q", got[1], want)
	}

	if rest := rw.Degradations(); len(rest) != 0 {
		t.Fatalf("drain should reset the buffer and counter: %v", rest)
	}
}
