package core_test

// Property-based soundness testing: generate random aggregation queries and
// random AST definitions over the star schema; whenever the matcher produces
// a rewrite, executing it must give exactly the original result. This is the
// paper's correctness obligation ("the matching conditions are correct only
// when viewed together with the associated compensation") checked
// mechanically over thousands of query/AST pairs.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
)

// qgen generates random single-block aggregation queries over trans (and
// optionally loc).
type qgen struct {
	rng *rand.Rand
}

var dims = []string{"faid", "flid", "fpgid", "qty", "year(date)", "month(date)"}
var aggs = []string{"count(*)", "sum(qty)", "sum(qty * price)", "min(price)", "max(price)", "count(qty)"}
var preds = []string{"year(date) > 1990", "month(date) >= 6", "qty > 2", "price > 250", "qty > 1"}

func (g *qgen) pickDims(n int) []string {
	perm := g.rng.Perm(len(dims))
	out := make([]string, 0, n)
	for _, i := range perm[:n] {
		out = append(out, dims[i])
	}
	return out
}

func (g *qgen) genQuery() string {
	nd := 1 + g.rng.Intn(3)
	ds := g.pickDims(nd)
	// Occasionally generate a SELECT DISTINCT query (canonicalized to GROUP
	// BY at build time — the footnote-2 path).
	if g.rng.Intn(8) == 0 {
		var cols []string
		for i, d := range ds {
			cols = append(cols, fmt.Sprintf("%s as d%d", d, i))
		}
		sql := "select distinct " + strings.Join(cols, ", ") + " from trans"
		if g.rng.Intn(2) == 0 {
			sql += " where " + preds[g.rng.Intn(len(preds))]
		}
		return sql
	}
	na := 1 + g.rng.Intn(2)
	var cols []string
	var gb []string
	for i, d := range ds {
		cols = append(cols, fmt.Sprintf("%s as d%d", d, i))
		gb = append(gb, d)
	}
	joinLoc := g.rng.Intn(4) == 0
	pool := aggs
	if joinLoc {
		// Stress the rejoin-column aggregate relaxation.
		pool = append(append([]string(nil), aggs...),
			"sum(lid)", "min(state)", "max(city)", "count(distinct state)")
	}
	for i := 0; i < na; i++ {
		cols = append(cols, fmt.Sprintf("%s as a%d", pool[g.rng.Intn(len(pool))], i))
	}
	var sb strings.Builder
	sb.WriteString("select " + strings.Join(cols, ", ") + " from trans")
	if joinLoc {
		sb.WriteString(", loc")
	}
	var ws []string
	if joinLoc {
		ws = append(ws, "flid = lid")
		if g.rng.Intn(2) == 0 {
			ws = append(ws, "country = 'USA'")
		}
	}
	np := g.rng.Intn(3)
	for i := 0; i < np; i++ {
		ws = append(ws, preds[g.rng.Intn(len(preds))])
	}
	if len(ws) > 0 {
		sb.WriteString(" where " + strings.Join(ws, " and "))
	}
	switch g.rng.Intn(5) {
	case 0:
		sb.WriteString(" group by rollup(" + strings.Join(gb, ", ") + ")")
	case 1:
		if len(gb) >= 2 {
			sb.WriteString(fmt.Sprintf(" group by grouping sets((%s), (%s))",
				strings.Join(gb, ", "), gb[0]))
		} else {
			sb.WriteString(" group by " + strings.Join(gb, ", "))
		}
	default:
		sb.WriteString(" group by " + strings.Join(gb, ", "))
	}
	if g.rng.Intn(3) == 0 {
		sb.WriteString(" having count(*) > 1")
	}
	return sb.String()
}

// genAST generates a random AST definition: usually finer-grained than the
// queries (more dimensions, no filters) so that matches are common — but not
// always, so no-match paths are exercised too.
func (g *qgen) genAST() string {
	nd := 2 + g.rng.Intn(3)
	ds := g.pickDims(nd)
	var cols []string
	for i, d := range ds {
		name := fmt.Sprintf("g%d", i)
		cols = append(cols, fmt.Sprintf("%s as %s", d, name))
	}
	cols = append(cols, "count(*) as cnt", "sum(qty) as sq", "sum(qty * price) as sv",
		"min(price) as mn", "max(price) as mx", "count(qty) as cq")
	var sb strings.Builder
	sb.WriteString("select " + strings.Join(cols, ", ") + " from trans")
	if g.rng.Intn(4) == 0 {
		sb.WriteString(" where " + preds[g.rng.Intn(len(preds))])
	}
	if g.rng.Intn(4) == 0 {
		sb.WriteString(" group by rollup(" + strings.Join(ds, ", ") + ")")
	} else {
		sb.WriteString(" group by " + strings.Join(ds, ", "))
	}
	return sb.String()
}

func TestPropertyRewriteSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	e := newEnv(t, 1500)
	rng := rand.New(rand.NewSource(20000521))
	g := &qgen{rng: rng}

	const trials = 400
	matched, verified := 0, 0
	for i := 0; i < trials; i++ {
		astSQL := g.genAST()
		querySQL := g.genQuery()

		astName := fmt.Sprintf("past%d", i)
		ca, err := e.rw.CompileAST(catalog.ASTDef{Name: astName, SQL: astSQL})
		if err != nil {
			t.Fatalf("trial %d: compile AST %q: %v", i, astSQL, err)
		}
		astRes, err := e.engine.Run(ca.Graph)
		if err != nil {
			t.Fatalf("trial %d: materialize %q: %v", i, astSQL, err)
		}
		e.store.Put(ca.Table, astRes.Rows)

		orig, err := qgm.BuildSQL(querySQL, e.cat)
		if err != nil {
			t.Fatalf("trial %d: build %q: %v", i, querySQL, err)
		}
		origRes, err := e.engine.Run(orig)
		if err != nil {
			t.Fatalf("trial %d: run %q: %v", i, querySQL, err)
		}

		q2, _ := qgm.BuildSQL(querySQL, e.cat)
		res := e.rw.Rewrite(q2, ca)
		e.store.Drop(astName)
		if res == nil {
			continue
		}
		matched++
		if verr := q2.Validate(); verr != nil {
			t.Fatalf("trial %d: invalid rewritten graph: %v\nquery: %s\nast: %s\n%s",
				i, verr, querySQL, astSQL, q2.Dump())
		}
		newRes, err := e.engine.Run(q2)
		if err != nil {
			// The AST table was dropped above; re-materialize for execution.
			e.store.Put(ca.Table, astRes.Rows)
			newRes, err = e.engine.Run(q2)
			e.store.Drop(astName)
			if err != nil {
				t.Fatalf("trial %d: run rewritten: %v\nquery: %s\nast: %s\nnew: %s",
					i, err, querySQL, astSQL, q2.SQL())
			}
		}
		if diff := exec.EqualResults(origRes, newRes); diff != "" {
			t.Fatalf("trial %d: UNSOUND rewrite: %s\nquery: %s\nast:   %s\nnewq:  %s\ngraph:\n%s",
				i, diff, querySQL, astSQL, q2.SQL(), q2.Dump())
		}
		verified++
	}
	t.Logf("matched %d/%d random query/AST pairs, all verified", matched, trials)
	if matched < trials/20 {
		t.Fatalf("generator too weak: only %d/%d matched", matched, trials)
	}
}

// TestPropertyRewriteSoundnessAblations re-runs a smaller sweep under each
// ablation option: the alternatives must stay sound (they change plan shape,
// never results).
func TestPropertyRewriteSoundnessAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"leafFirst", core.Options{LeafFirstDerivation: true}},
		{"alwaysRegroup", core.Options{AlwaysRegroup: true}},
		{"firstCuboid", core.Options{FirstCuboid: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			e := newEnv(t, 800)
			e.rw = core.NewRewriter(e.cat, mode.opts)
			rng := rand.New(rand.NewSource(77))
			g := &qgen{rng: rng}
			matched := 0
			for i := 0; i < 120; i++ {
				astSQL := g.genAST()
				querySQL := g.genQuery()
				astName := fmt.Sprintf("p%s%d", mode.name, i)
				ca, err := e.rw.CompileAST(catalog.ASTDef{Name: astName, SQL: astSQL})
				if err != nil {
					t.Fatal(err)
				}
				astRes, err := e.engine.Run(ca.Graph)
				if err != nil {
					t.Fatal(err)
				}
				e.store.Put(ca.Table, astRes.Rows)
				orig, err := qgm.BuildSQL(querySQL, e.cat)
				if err != nil {
					t.Fatal(err)
				}
				origRes, err := e.engine.Run(orig)
				if err != nil {
					t.Fatal(err)
				}
				q2, _ := qgm.BuildSQL(querySQL, e.cat)
				if e.rw.Rewrite(q2, ca) == nil {
					e.store.Drop(astName)
					continue
				}
				matched++
				newRes, err := e.engine.Run(q2)
				if err != nil {
					t.Fatalf("trial %d: %v\nquery: %s\nast: %s", i, err, querySQL, astSQL)
				}
				if diff := exec.EqualResults(origRes, newRes); diff != "" {
					t.Fatalf("trial %d UNSOUND under %s: %s\nquery: %s\nast: %s\nnewq: %s",
						i, mode.name, diff, querySQL, astSQL, q2.SQL())
				}
				e.store.Drop(astName)
			}
			t.Logf("%s: %d/120 matched, all verified", mode.name, matched)
		})
	}
}
