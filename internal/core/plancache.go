package core

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/qgm"
)

// PlanCache memoizes rewrite results across repeated queries (multi-query
// workloads re-issue the same report queries constantly; matching every AST
// every time is pure overhead). It is a bounded LRU keyed by the normalized
// query SQL plus a freshness fingerprint of the candidate AST set.
//
// The fingerprint is what makes a hit safe: it folds in every candidate's
// name, refresh epoch, stale flag, and quarantine flag (plus the rewriter's
// AllowStale policy). Any status transition — MarkStale, MarkFresh (which
// bumps the epoch), quarantine — changes the fingerprint and therefore the
// key, so a cached plan can never serve a stale AST that Options.AllowStale
// would refuse: the stale-era entry simply stops being found and ages out.
//
// Concurrency: the cache is striped. Keys hash (FNV-1a over the full key,
// fingerprint included) onto independent LRU shards, each behind its own
// mutex, so concurrent sessions hitting different queries never contend on
// one lock; lifetime statistics are lock-free atomics. Small caches
// (capacity < planCacheStripeMin) collapse to a single shard, which keeps
// exact global LRU order where capacity is tight enough for eviction order
// to be observable. The freshness-fingerprint contract is untouched by
// striping: invalidation is by key construction, not by mutation, and a
// status transition re-keys the entry — possibly onto a different shard —
// while the stale-era entry ages out of its own shard's LRU.
type PlanCache struct {
	shards []planShard

	hits, misses, evictions atomic.Int64
}

// planShard is one independent LRU stripe of the cache.
type planShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	// Pad to a cache line so neighboring shards' mutexes do not false-share.
	_ [64]byte
}

type cacheEntry struct {
	key  string
	plan *qgm.Graph // pristine copy; cloned on every hit
	ast  string     // AST name the plan reads; "" = base plan
}

// DefaultPlanCacheSize bounds a cache constructed with capacity <= 0.
const DefaultPlanCacheSize = 256

// planCacheStripes is the shard count for caches large enough to stripe
// (power of two, so shard selection is a mask).
const planCacheStripes = 16

// planCacheStripeMin is the smallest capacity that stripes: below it a
// per-shard capacity would round to a handful of entries and hash skew could
// evict hot plans a global LRU would keep.
const planCacheStripeMin = 4 * planCacheStripes

// NewPlanCache returns an empty cache holding at most capacity plans.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	n := 1
	if capacity >= planCacheStripeMin {
		n = planCacheStripes
	}
	c := &PlanCache{shards: make([]planShard, n)}
	base, rem := capacity/n, capacity%n
	for i := range c.shards {
		sc := base
		if i < rem {
			sc++
		}
		c.shards[i] = planShard{cap: sc, ll: list.New(), byKey: map[string]*list.Element{}}
	}
	return c
}

// shard maps a key to its stripe by FNV-1a hash. The fingerprint prefix is
// part of the hashed key, so a status transition re-keys (and may re-shard)
// an entry — exactly the invalidation-by-construction the fingerprint
// contract relies on.
func (c *PlanCache) shard(key string) *planShard {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h&uint64(len(c.shards)-1)]
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns lifetime hit and miss counts.
func (c *PlanCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Evictions returns how many entries capacity pressure has evicted over the
// cache's lifetime.
func (c *PlanCache) Evictions() int64 {
	return c.evictions.Load()
}

// get returns a private clone of the cached plan for key, promoting the entry.
func (c *PlanCache) get(key string) (*qgm.Graph, string, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.byKey[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, "", false
	}
	s.ll.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	plan, ast := ent.plan, ent.ast
	s.mu.Unlock()
	c.hits.Add(1)
	// Clone outside the lock: callers execute (and may mutate) their copy,
	// the cached plan stays pristine.
	return plan.Clone(), ast, true
}

// put stores a private clone of plan under key, evicting the least recently
// used entries of the key's shard past its capacity; it returns how many
// entries were evicted.
func (c *PlanCache) put(key string, plan *qgm.Graph, ast string) int {
	stored := plan.Clone()
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*cacheEntry).plan = stored
		el.Value.(*cacheEntry).ast = ast
		s.mu.Unlock()
		return 0
	}
	s.byKey[key] = s.ll.PushFront(&cacheEntry{key: key, plan: stored, ast: ast})
	evicted := 0
	for s.ll.Len() > s.cap {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.byKey, back.Value.(*cacheEntry).key)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
	}
	return evicted
}

// NormalizeSQL canonicalizes a query string for cache keying: runs of
// whitespace collapse to one space and keywords/identifiers fold to lower
// case — but the contents of single-quoted string literals are preserved
// byte-for-byte, so `WHERE region = 'CA'` and `where region = 'ca'` remain
// distinct queries.
func NormalizeSQL(sql string) string {
	var sb strings.Builder
	sb.Grow(len(sql))
	inStr := false
	pendingSpace := false
	for i := 0; i < len(sql); i++ {
		ch := sql[i]
		if inStr {
			sb.WriteByte(ch)
			if ch == '\'' {
				inStr = false
			}
			continue
		}
		switch {
		case ch == '\'':
			if pendingSpace && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			pendingSpace = false
			inStr = true
			sb.WriteByte(ch)
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			pendingSpace = true
		default:
			if pendingSpace && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			pendingSpace = false
			if 'A' <= ch && ch <= 'Z' {
				ch += 'a' - 'A'
			}
			sb.WriteByte(ch)
		}
	}
	return sb.String()
}

// cacheKey builds the cache key for one query against the current AST set:
// normalized SQL plus the sorted per-AST freshness fingerprint and the
// staleness policy in force.
func (rw *Rewriter) cacheKey(sql string, asts []*CompiledAST) string {
	parts := make([]string, 0, len(asts))
	for _, ast := range asts {
		st := rw.cat.Status(ast.Def.Name)
		parts = append(parts, fmt.Sprintf("%s:%d:%t:%t", ast.Def.Name, st.Epoch, st.Stale, st.Quarantined))
	}
	sort.Strings(parts)
	return fmt.Sprintf("allowstale=%t|%s|%s", rw.opts.AllowStale, strings.Join(parts, ";"), NormalizeSQL(sql))
}

// CachedRewrite is the outcome of a cache-aware rewrite.
type CachedRewrite struct {
	// Plan is runnable and owned by the caller (on a hit it is a fresh clone
	// of the cached plan).
	Plan *qgm.Graph
	// AST names the summary table the plan reads; "" means the base plan.
	AST string
	// Hit reports whether the plan came from the cache (no matching ran).
	Hit bool
	// Rewrite carries the match details on a cache miss that rewrote; nil on
	// hits and on base plans.
	Rewrite *Result
}

// RewriteSQLCached answers "what plan should run for this SQL" through the
// cache: on a hit it returns a clone of the cached plan without running the
// matcher at all; on a miss it builds the query, picks the cheapest rewrite
// via parallel cost-based matching (validated, falling back to the base plan
// like RewriteOrFallback), and caches the outcome — including negative
// outcomes, so a query no AST serves stops paying match overhead too.
func (rw *Rewriter) RewriteSQLCached(ctx context.Context, cache *PlanCache, sql string, asts []*CompiledAST, sizer Sizer) (*CachedRewrite, error) {
	span := obs.SpanFromContext(ctx)
	lookup := span.Child("plancache.lookup")
	key := rw.cacheKey(sql, asts)
	plan, astName, ok := cache.get(key)
	lookup.End()
	if ok {
		rw.obsv.Add(CtrCacheHits, 1)
		return &CachedRewrite{Plan: plan, AST: astName, Hit: true}, nil
	}
	rw.obsv.Add(CtrCacheMisses, 1)
	parse := span.Child("parse")
	query, err := qgm.BuildSQL(sql, rw.cat)
	parse.End()
	if err != nil {
		return nil, err
	}
	clone := query.Clone()
	var res *Result
	if sizer != nil {
		res = rw.RewriteBestCostCtx(ctx, clone, asts, sizer)
	} else {
		res = rw.RewriteBestCtx(ctx, clone, asts)
	}
	plan, astName = query, ""
	if res != nil {
		if err := rw.verifyRewrite(clone, asts); err != nil {
			rw.noteDegraded(fmt.Errorf("core: discarding invalid rewrite against %q: %w", res.AST.Def.Name, err))
			res = nil
		} else {
			plan, astName = clone, res.AST.Def.Name
		}
	}
	rw.obsv.Add(CtrCacheEvictions, int64(cache.put(key, plan, astName)))
	return &CachedRewrite{Plan: plan, AST: astName, Rewrite: res}, nil
}
