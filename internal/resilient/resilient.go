// Package resilient is the former home of the degrade-gracefully query
// pipeline, kept as a thin compatibility wrapper.
//
// Deprecated: the contract now lives in the astdb facade — astdb.Engine's
// Query and QueryGraph answer from a fresh summary table when one matches and
// from base tables in every other case, surfacing only typed budget errors
// and base-table failures. New code should construct an astdb.Engine (Open or
// Wrap) instead of calling Query here.
package resilient

import (
	"context"

	"repro/astdb"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
)

// Answer is the outcome of one resilient query.
//
// Deprecated: use astdb.Answer.
type Answer struct {
	Result *exec.Result
	// Plan is the graph that produced Result: the rewritten clone when a
	// summary table served the query, the caller's graph otherwise.
	Plan *qgm.Graph
	// Rewrite is non-nil when the rewriter matched a summary table. When
	// FellBack is also set, the match existed but its plan failed to execute.
	Rewrite *core.Result
	// FellBack marks a query that was rewritten but answered from base
	// tables because executing the rewritten plan failed.
	FellBack bool
}

// Query answers one query with graceful degradation. The input graph is
// never mutated (the rewrite works on a clone), so the base plan stays
// available as the fallback.
//
// Deprecated: use astdb.Wrap(rw, eng, asts, astdb.WithLimits(lim)) once and
// call its QueryGraph.
func Query(ctx context.Context, eng *exec.Engine, rw *core.Rewriter, query *qgm.Graph, asts []*core.CompiledAST, lim exec.Config) (*Answer, error) {
	db := astdb.Wrap(rw, eng, asts, astdb.WithLimits(lim), astdb.WithPlanCache(-1))
	ans, err := db.QueryGraph(ctx, query)
	if err != nil {
		return nil, err
	}
	return &Answer{Result: ans.Result, Plan: ans.Plan, Rewrite: ans.Rewrite, FellBack: ans.FellBack}, nil
}
