// Package resilient composes the rewrite and execution layers into a
// degrade-gracefully query pipeline, mirroring DB2's contract for Automatic
// Summary Tables: routing a query through an AST is an optimization, never a
// source of failure. A query is answered from a summary table when a fresh
// one matches, and from base tables in every other case — broken AST
// definitions, match panics, stale or quarantined materializations, and
// unreadable materialized tables all degrade to the base plan. Only typed
// budget errors (exec.ErrBudgetExceeded, exec.ErrCanceled) and base-table
// failures surface to the caller.
package resilient

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
)

// Answer is the outcome of one resilient query.
type Answer struct {
	Result *exec.Result
	// Plan is the graph that produced Result: the rewritten clone when a
	// summary table served the query, the caller's graph otherwise.
	Plan *qgm.Graph
	// Rewrite is non-nil when the rewriter matched a summary table. When
	// FellBack is also set, the match existed but its plan failed to execute.
	Rewrite *core.Result
	// FellBack marks a query that was rewritten but answered from base
	// tables because executing the rewritten plan failed.
	FellBack bool
}

// Query answers one query with graceful degradation. The input graph is
// never mutated (the rewrite works on a clone), so the base plan stays
// available as the fallback.
func Query(ctx context.Context, eng *exec.Engine, rw *core.Rewriter, query *qgm.Graph, asts []*core.CompiledAST, lim exec.Limits) (*Answer, error) {
	plan, res := rw.RewriteOrFallback(ctx, query, asts)
	r, err := runPlan(ctx, eng, plan, lim)
	if err == nil {
		return &Answer{Result: r, Plan: plan, Rewrite: res}, nil
	}
	// Budget exhaustion and cancellation surface typed: retrying on base
	// tables could only be slower.
	if res == nil || errors.Is(err, exec.ErrBudgetExceeded) || errors.Is(err, exec.ErrCanceled) {
		return nil, err
	}
	// The rewritten plan failed (e.g. the materialized table is unreadable).
	// Mark the AST stale so later rewrites avoid it, and answer from base.
	rw.Catalog().MarkStale(res.AST.Def.Name)
	r, err = runPlan(ctx, eng, query, lim)
	if err != nil {
		return nil, err
	}
	return &Answer{Result: r, Plan: query, Rewrite: res, FellBack: true}, nil
}

// runPlan executes one graph, converting a panic anywhere under the engine
// into an error so the caller's fallback logic always gets control back.
func runPlan(ctx context.Context, eng *exec.Engine, g *qgm.Graph, lim exec.Limits) (r *exec.Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			r, err = nil, fmt.Errorf("resilient: execution panicked: %v", rec)
		}
	}()
	return eng.RunCtx(ctx, g, lim)
}
