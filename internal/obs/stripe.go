package obs

import (
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// The observability hot path (Add, Observe) used to funnel every increment
// from every session through one Observer mutex; under a concurrent serving
// workload the "zero-alloc" guarantee was not a zero-contention guarantee.
// Counters and histograms are now striped: each named instrument holds
// numStripes independent cells, a writer picks a stripe keyed off its own
// goroutine (stack address — see stripeIdx), and only Snapshot/Counter reads
// merge the stripes. Writers on different goroutines therefore touch
// different cache lines instead of one shared word behind one shared lock.

// numStripes is the stripe count per instrument (power of two, so stripe
// selection is a mask). Eight stripes keep one counter at 8×64 B = half a KiB
// while giving typical GOMAXPROCS values contention-free increments.
const numStripes = 8

// stripeIdx picks this goroutine's stripe. Go does not expose a goroutine or
// P identity, so we hash the address of a stack variable: every goroutine has
// its own stack, addresses within it are far apart from other goroutines',
// and taking the address costs nothing (the variable does not escape — the
// pointer is converted to an integer immediately, asserted by the zero-alloc
// tests). The shift skips the low in-frame bits so recursion depth does not
// churn the index; any residual imbalance only shifts load between stripes,
// never correctness, because every stripe is merged on read.
func stripeIdx() uint64 {
	var b byte
	return (uint64(uintptr(unsafe.Pointer(&b))) >> 10) & (numStripes - 1)
}

// padCell is one stripe of a counter, padded to a cache line so neighboring
// stripes never false-share.
type padCell struct {
	v atomic.Int64
	_ [56]byte
}

// counterCell is one named counter: numStripes independently updated cells.
// The cell map it lives in is immutable (copy-on-write in Observer.counter),
// so the cell pointer itself is stable for the Observer's lifetime.
type counterCell struct {
	stripes [numStripes]padCell
}

// add increments the calling goroutine's stripe.
func (c *counterCell) add(n int64) {
	c.stripes[stripeIdx()].v.Add(n)
}

// load sums the stripes. Each stripe read is atomic; a concurrent add lands
// either before or after its stripe is read, so the sum of a monotonic
// counter is monotonic across successive loads.
func (c *counterCell) load() int64 {
	var sum int64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

// histStripe is one stripe of a histogram: a mutex-guarded bucket set. The
// mutex (rather than per-field atomics) is what makes a merged snapshot
// consistent per stripe — count, sum, max, and buckets are always observed
// together, so a merged histogram can never report count ≠ Σbuckets.
type histStripe struct {
	mu sync.Mutex
	h  histogram
	_  [32]byte // pad: keep neighboring stripes off one cache line
}

// histCell is one named histogram: numStripes independently locked stripes.
type histCell struct {
	stripes [numStripes]histStripe
}

// record adds one duration to the calling goroutine's stripe.
func (c *histCell) record(d time.Duration) {
	s := &c.stripes[stripeIdx()]
	s.mu.Lock()
	s.h.record(d)
	s.mu.Unlock()
}

// merged returns the histogram summed over all stripes. Each stripe is read
// under its own mutex, so every stripe contributes an internally consistent
// view; concurrent writers may land in a not-yet-read stripe (they appear in
// the next snapshot) but can never tear one.
func (c *histCell) merged() Histogram {
	var out Histogram
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		h := s.h.snapshot()
		s.mu.Unlock()
		for b := range out.Buckets {
			out.Buckets[b] += h.Buckets[b]
		}
		out.Count += h.Count
		out.Sum += h.Sum
		if h.Max > out.Max {
			out.Max = h.Max
		}
	}
	return out
}
