package obs

import (
	"context"
	"time"
)

// SpanRecord is one finished span: a named pipeline stage with wall-clock
// timing and a parent index forming the hierarchy.
type SpanRecord struct {
	Name   string
	Parent int // index into Snapshot.Spans; -1 for roots
	Start  time.Time
	Dur    time.Duration
	Ended  bool
}

// Span is a live pipeline stage. The zero Span is the disabled span: Child
// returns another disabled span and End is a no-op, so instrumented code
// never branches on whether observability is on. Spans are value types —
// starting one on the disabled path allocates nothing.
type Span struct {
	o   *Observer
	idx int // index into o.spans
}

// Enabled reports whether the span records anything (false for the disabled
// zero span).
func (s Span) Enabled() bool { return s.o != nil }

// Start begins a root span.
func (o *Observer) Start(name string) Span {
	if o == nil {
		return Span{}
	}
	return o.startSpan(name, -1)
}

func (o *Observer) startSpan(name string, parent int) Span {
	// Saturation fast path: once the span buffer is full — the steady state of
	// any long-lived serving process — count the drop with one atomic instead
	// of funneling every would-be span through the Observer mutex. spanLen only
	// grows, so a stale read can at worst take the slow path below.
	if o.spanLen.Load() >= maxSpans {
		o.dropped.Add(1)
		return Span{}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.spans) >= maxSpans {
		o.dropped.Add(1)
		return Span{}
	}
	o.spans = append(o.spans, SpanRecord{Name: name, Parent: parent, Start: time.Now()})
	o.spanLen.Store(int64(len(o.spans)))
	return Span{o: o, idx: len(o.spans) - 1}
}

// Child begins a span nested under s.
func (s Span) Child(name string) Span {
	if s.o == nil {
		return Span{}
	}
	return s.o.startSpan(name, s.idx)
}

// End finishes the span, recording its duration and feeding the latency
// histogram of the span's name.
func (s Span) End() {
	if s.o == nil {
		return
	}
	s.o.mu.Lock()
	rec := &s.o.spans[s.idx]
	first := !rec.Ended
	if first {
		rec.Dur = time.Since(rec.Start)
		rec.Ended = true
	}
	name, dur := rec.Name, rec.Dur
	s.o.mu.Unlock()
	if first {
		s.o.Observe(name, dur)
	}
}

// spanKey is the context key for span propagation.
type spanKey struct{}

// ContextWithSpan returns a context carrying the span so deeper pipeline
// stages (matching, execution) can nest under it. A disabled span returns ctx
// unchanged — the disabled path allocates nothing.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	if s.o == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or the disabled span.
func SpanFromContext(ctx context.Context) Span {
	if s, ok := ctx.Value(spanKey{}).(Span); ok {
		return s
	}
	return Span{}
}
