package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersAndHistograms(t *testing.T) {
	o := New()
	o.Add("a.b", 2)
	o.Add("a.b", 3)
	o.Add("a.c", 1)
	o.Observe("lat", 5*time.Microsecond)
	o.Observe("lat", 5*time.Millisecond)

	if got := o.Counter("a.b"); got != 5 {
		t.Fatalf("a.b = %d, want 5", got)
	}
	if got := o.Counter("missing"); got != 0 {
		t.Fatalf("missing = %d, want 0", got)
	}
	s := o.Snapshot()
	if got := s.CounterNames(); strings.Join(got, ",") != "a.b,a.c" {
		t.Fatalf("counter names = %v", got)
	}
	h := s.Histograms["lat"]
	if h.Count != 2 || h.Max != 5*time.Millisecond {
		t.Fatalf("histogram = %+v", h)
	}
	total := int64(0)
	for _, b := range h.Buckets {
		total += b
	}
	if total != 2 {
		t.Fatalf("bucket sum = %d, want 2", total)
	}
}

func TestSpanHierarchy(t *testing.T) {
	o := New()
	root := o.Start("query")
	child := root.Child("rewrite")
	grand := child.Child("match")
	grand.End()
	child.End()
	root.End()

	s := o.Snapshot()
	if len(s.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(s.Spans))
	}
	if s.Spans[0].Parent != -1 || s.Spans[1].Parent != 0 || s.Spans[2].Parent != 1 {
		t.Fatalf("span parents wrong: %+v", s.Spans)
	}
	for i, sp := range s.Spans {
		if !sp.Ended {
			t.Fatalf("span %d not ended", i)
		}
	}
	// Ending a span feeds its name's histogram.
	if s.Histograms["match"].Count != 1 {
		t.Fatalf("span end did not feed histogram: %+v", s.Histograms)
	}
}

func TestSpanContextPropagation(t *testing.T) {
	o := New()
	root := o.Start("outer")
	ctx := ContextWithSpan(context.Background(), root)
	inner := SpanFromContext(ctx).Child("inner")
	inner.End()
	root.End()
	s := o.Snapshot()
	if len(s.Spans) != 2 || s.Spans[1].Parent != 0 {
		t.Fatalf("context propagation broken: %+v", s.Spans)
	}
	// A context without a span yields the disabled span.
	if sp := SpanFromContext(context.Background()); sp.o != nil {
		t.Fatal("expected disabled span from empty context")
	}
}

func TestEventsSequencedAndBounded(t *testing.T) {
	o := New()
	first := o.Emit("k", "first")
	second := o.Emit("k", "second")
	if second <= first {
		t.Fatalf("sequence not monotonic: %d then %d", first, second)
	}
	for i := 0; i < maxEvents+10; i++ {
		o.Emit("fill", fmt.Sprintf("e%d", i))
	}
	s := o.Snapshot()
	if len(s.Events) != maxEvents {
		t.Fatalf("retained %d events, want %d", len(s.Events), maxEvents)
	}
	if s.EvictedEvents != 12 {
		t.Fatalf("evicted = %d, want 12", s.EvictedEvents)
	}
	// Newest events are the ones kept.
	if got := s.Events[len(s.Events)-1].Detail; got != fmt.Sprintf("e%d", maxEvents+9) {
		t.Fatalf("last retained event = %q", got)
	}
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].Seq <= s.Events[i-1].Seq {
			t.Fatalf("event stream out of order at %d", i)
		}
	}
}

// TestDisabledObserverZeroAlloc locks the nil-sink fast path: every
// instrumentation entry point, called on a disabled observer, allocates
// nothing. This is what lets the hot paths (cached rewrites, exec row loops)
// carry observer calls unconditionally.
func TestDisabledObserverZeroAlloc(t *testing.T) {
	var o *Observer
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		o.Add("exec.rows.scanned", 128)
		o.Observe("exec.run", time.Millisecond)
		o.EmitSeq(7, "core.degraded", "detail")
		sp := o.Start("query")
		c := sp.Child("rewrite")
		c.End()
		sp.End()
		ctx2 := ContextWithSpan(ctx, sp)
		_ = SpanFromContext(ctx2).Child("exec.run")
		_ = o.Counter("exec.rows.scanned")
		_ = o.Enabled()
		_ = o.Snapshot()
	})
	if allocs != 0 {
		t.Fatalf("disabled observer allocated %.1f per run, want 0", allocs)
	}
}

func TestConcurrentUse(t *testing.T) {
	o := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				o.Add("c", 1)
				o.Observe("h", time.Microsecond)
				o.Emit("e", "x")
				sp := o.Start("s")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := o.Counter("c"); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
	s := o.Snapshot()
	if s.Histograms["h"].Count != 4000 {
		t.Fatalf("histogram count = %d", s.Histograms["h"].Count)
	}
}

func TestRenderDeterministicCounters(t *testing.T) {
	o := New()
	o.Add("z.last", 1)
	o.Add("a.first", 2)
	var sb strings.Builder
	o.Snapshot().Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "a.first") || strings.Index(out, "a.first") > strings.Index(out, "z.last") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
}

func TestHistogramQuantile(t *testing.T) {
	o := New()
	// 90 fast ops (~5µs), 10 slow ones (~50ms): p50 must land in the fast
	// decade, p99 in the slow one.
	for i := 0; i < 90; i++ {
		o.Observe("h", 5*time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		o.Observe("h", 50*time.Millisecond)
	}
	h := o.Snapshot().Histograms["h"]
	if h.Count != 100 {
		t.Fatalf("count = %d", h.Count)
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < time.Microsecond || p50 >= 10*time.Microsecond {
		t.Fatalf("p50 = %v, want inside [1µs, 10µs)", p50)
	}
	if p99 < 10*time.Millisecond || p99 > 100*time.Millisecond {
		t.Fatalf("p99 = %v, want inside [10ms, 100ms]", p99)
	}
	if p99 < p50 {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v", p50, p99)
	}
	if got := (Histogram{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v", got)
	}
	// All mass in the overflow bucket reports Max.
	o2 := New()
	o2.Observe("h", 3*time.Second)
	h2 := o2.Snapshot().Histograms["h"]
	if got := h2.Quantile(0.5); got != h2.Max {
		t.Fatalf("overflow quantile = %v, want Max %v", got, h2.Max)
	}
}
