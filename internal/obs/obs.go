// Package obs is the pipeline observability subsystem: hierarchical spans
// with wall-clock timings, monotonic counters, latency histograms, and a
// sequenced event stream. Every stage of the rewrite pipeline (parse → match
// → translate/derive → compensation → plan-cache lookup → exec → maintain)
// reports here when an Observer is attached.
//
// The package is designed around a nil-sink fast path: a nil *Observer is a
// valid, fully disabled observer. Every method checks the receiver first, the
// disabled Span and disabled context helpers are zero values, and none of the
// disabled paths allocate — production code holds a possibly-nil *Observer
// and calls it unconditionally, paying one predictable branch when
// observability is off (asserted by TestDisabledObserverZeroAlloc).
//
// Sequence numbers come from one package-global monotonic counter (NextSeq),
// not per-Observer state, so events recorded by different components — a
// rewriter degradation, a catalog staleness transition, a maintenance
// failure — interleave on a single total order even when they flow through
// different observers or none at all.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// globalSeq is the process-wide monotonic event sequence.
var globalSeq atomic.Uint64

// NextSeq returns the next process-wide monotonic sequence number. Components
// that must order their records against the event stream without an observer
// attached (e.g. core.DegradationEvent) draw from the same counter.
func NextSeq() uint64 { return globalSeq.Add(1) }

// maxEvents bounds the retained event stream; the newest events are kept
// (they are the ones worth diagnosing) and evictions are counted.
const maxEvents = 1024

// maxSpans bounds the retained span records; past the cap new spans are
// counted but not recorded.
const maxSpans = 4096

// Observer collects counters, latency histograms, spans and events. The zero
// value is not used directly — construct with New. A nil *Observer is the
// disabled observer: every method is a cheap no-op.
//
// All methods are safe for concurrent use.
type Observer struct {
	mu       sync.Mutex
	counters map[string]*atomic.Int64
	hists    map[string]*histogram
	events   []Event
	evictedE int64
	spans    []SpanRecord
	dropped  int64 // spans not recorded past maxSpans
	began    time.Time
}

// New returns an enabled, empty observer.
func New() *Observer {
	return &Observer{
		counters: map[string]*atomic.Int64{},
		hists:    map[string]*histogram{},
		began:    time.Now(),
	}
}

// Enabled reports whether the observer records anything.
func (o *Observer) Enabled() bool { return o != nil }

// counter returns the named counter cell, creating it on first use.
func (o *Observer) counter(name string) *atomic.Int64 {
	o.mu.Lock()
	c := o.counters[name]
	if c == nil {
		c = &atomic.Int64{}
		o.counters[name] = c
	}
	o.mu.Unlock()
	return c
}

// Add increments a monotonic counter. Counter names are dot-separated and
// documented in DESIGN.md §9; call sites on hot paths must pass constant
// strings so the disabled path stays allocation-free.
func (o *Observer) Add(name string, n int64) {
	if o == nil {
		return
	}
	o.counter(name).Add(n)
}

// Counter reads a counter's current value (0 when never incremented).
func (o *Observer) Counter(name string) int64 {
	if o == nil {
		return 0
	}
	o.mu.Lock()
	c := o.counters[name]
	o.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// Now returns the current wall-clock time when the observer is enabled and
// the zero Time otherwise. It is the sanctioned clock for instrumented
// packages: internal/core, internal/exec, and internal/qgm are lint-enforced
// deterministic (no direct time.Now), so latency measurement goes through the
// observer, costing nothing when observability is off.
func (o *Observer) Now() time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the time elapsed since began into the named latency
// histogram. It is a no-op when the observer is disabled or began is the zero
// Time (the disabled Now), so the Now/ObserveSince pair brackets a measured
// region without any Enabled check at the call site.
func (o *Observer) ObserveSince(name string, began time.Time) {
	if o == nil || began.IsZero() {
		return
	}
	o.Observe(name, time.Since(began))
}

// Observe records one duration into the named latency histogram.
func (o *Observer) Observe(name string, d time.Duration) {
	if o == nil {
		return
	}
	o.mu.Lock()
	h := o.hists[name]
	if h == nil {
		h = &histogram{}
		o.hists[name] = h
	}
	h.record(d)
	o.mu.Unlock()
}

// Event is one entry of the sequenced event stream: degradations, staleness
// transitions, fault injections, cache evictions, fallbacks.
type Event struct {
	// Seq is the process-wide monotonic sequence number (NextSeq); records
	// from different subsystems interleave on it.
	Seq    uint64
	Kind   string // dot-separated taxonomy, e.g. "core.degraded"
	Detail string
	At     time.Time
}

// Emit records an event, assigning it the next global sequence number, and
// returns that number (0 when disabled).
func (o *Observer) Emit(kind, detail string) uint64 {
	if o == nil {
		return 0
	}
	seq := NextSeq()
	o.EmitSeq(seq, kind, detail)
	return seq
}

// EmitSeq records an event under a sequence number the caller already drew
// from NextSeq — used when the same number must also tag a record kept
// outside the observer (e.g. core.DegradationEvent).
func (o *Observer) EmitSeq(seq uint64, kind, detail string) {
	if o == nil {
		return
	}
	ev := Event{Seq: seq, Kind: kind, Detail: detail, At: time.Now()}
	o.mu.Lock()
	if len(o.events) >= maxEvents {
		copy(o.events, o.events[1:])
		o.events[len(o.events)-1] = ev
		o.evictedE++
	} else {
		o.events = append(o.events, ev)
	}
	o.mu.Unlock()
}

// Snapshot is a point-in-time copy of everything the observer holds, for
// programmatic scraping and the -obs CLI surface.
type Snapshot struct {
	Counters      map[string]int64
	Histograms    map[string]Histogram
	Events        []Event
	EvictedEvents int64
	Spans         []SpanRecord
	DroppedSpans  int64
}

// Snapshot copies the observer's current state. Counters and histograms are
// deep copies; mutating the snapshot never touches the live observer.
func (o *Observer) Snapshot() Snapshot {
	if o == nil {
		return Snapshot{}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	s := Snapshot{
		Counters:      make(map[string]int64, len(o.counters)),
		Histograms:    make(map[string]Histogram, len(o.hists)),
		Events:        append([]Event(nil), o.events...),
		EvictedEvents: o.evictedE,
		Spans:         append([]SpanRecord(nil), o.spans...),
		DroppedSpans:  o.dropped,
	}
	for name, c := range o.counters {
		s.Counters[name] = c.Load()
	}
	for name, h := range o.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// CounterNames returns the snapshot's counter names in sorted order, for
// deterministic rendering.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the snapshot's histogram names in sorted order.
func (s Snapshot) HistogramNames() []string {
	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
