// Package obs is the pipeline observability subsystem: hierarchical spans
// with wall-clock timings, monotonic counters, latency histograms, and a
// sequenced event stream. Every stage of the rewrite pipeline (parse → match
// → translate/derive → compensation → plan-cache lookup → exec → maintain)
// reports here when an Observer is attached.
//
// The package is designed around a nil-sink fast path: a nil *Observer is a
// valid, fully disabled observer. Every method checks the receiver first, the
// disabled Span and disabled context helpers are zero values, and none of the
// disabled paths allocate — production code holds a possibly-nil *Observer
// and calls it unconditionally, paying one predictable branch when
// observability is off (asserted by TestDisabledObserverZeroAlloc).
//
// Sequence numbers come from one package-global monotonic counter (NextSeq),
// not per-Observer state, so events recorded by different components — a
// rewriter degradation, a catalog staleness transition, a maintenance
// failure — interleave on a single total order even when they flow through
// different observers or none at all.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// globalSeq is the process-wide monotonic event sequence.
var globalSeq atomic.Uint64

// NextSeq returns the next process-wide monotonic sequence number. Components
// that must order their records against the event stream without an observer
// attached (e.g. core.DegradationEvent) draw from the same counter.
func NextSeq() uint64 { return globalSeq.Add(1) }

// maxEvents bounds the retained event stream; the newest events are kept
// (they are the ones worth diagnosing) and evictions are counted.
const maxEvents = 1024

// maxSpans bounds the retained span records; past the cap new spans are
// counted but not recorded.
const maxSpans = 4096

// Observer collects counters, latency histograms, spans and events. The zero
// value is not used directly — construct with New. A nil *Observer is the
// disabled observer: every method is a cheap no-op.
//
// All methods are safe for concurrent use, and the counter/histogram write
// path is contention-free: the name→cell registries are immutable maps
// republished copy-on-write behind atomic pointers (the Observer mutex is
// taken only the first time a name is seen), and each cell is striped per
// goroutine (see stripe.go), so two sessions bumping the same counter touch
// different cache lines. Reads (Counter, Snapshot) merge the stripes.
type Observer struct {
	mu       sync.Mutex // guards events, spans, and registry growth
	counters atomic.Pointer[map[string]*counterCell]
	hists    atomic.Pointer[map[string]*histCell]
	events   []Event
	evictedE int64
	spans    []SpanRecord
	spanLen  atomic.Int64 // published len(spans): lock-free saturation check
	dropped  atomic.Int64 // spans not recorded past maxSpans
	began    time.Time
}

// New returns an enabled, empty observer.
func New() *Observer {
	o := &Observer{began: time.Now()}
	cm := map[string]*counterCell{}
	hm := map[string]*histCell{}
	o.counters.Store(&cm)
	o.hists.Store(&hm)
	return o
}

// Enabled reports whether the observer records anything.
func (o *Observer) Enabled() bool { return o != nil }

// counter returns the named counter cell, creating it on first use. The fast
// path is one atomic load plus a read of an immutable map; the slow path
// (first sighting of a name) copies the registry under mu and republishes.
func (o *Observer) counter(name string) *counterCell {
	if c := (*o.counters.Load())[name]; c != nil {
		return c
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	old := *o.counters.Load()
	if c := old[name]; c != nil {
		return c
	}
	next := make(map[string]*counterCell, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	c := &counterCell{}
	next[name] = c
	o.counters.Store(&next)
	return c
}

// Add increments a monotonic counter. Counter names are dot-separated and
// documented in DESIGN.md §9; call sites on hot paths must pass constant
// strings so the disabled path stays allocation-free.
func (o *Observer) Add(name string, n int64) {
	if o == nil {
		return
	}
	o.counter(name).add(n)
}

// Counter reads a counter's current value (0 when never incremented).
func (o *Observer) Counter(name string) int64 {
	if o == nil {
		return 0
	}
	c := (*o.counters.Load())[name]
	if c == nil {
		return 0
	}
	return c.load()
}

// Now returns the current wall-clock time when the observer is enabled and
// the zero Time otherwise. It is the sanctioned clock for instrumented
// packages: internal/core, internal/exec, and internal/qgm are lint-enforced
// deterministic (no direct time.Now), so latency measurement goes through the
// observer, costing nothing when observability is off.
func (o *Observer) Now() time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the time elapsed since began into the named latency
// histogram. It is a no-op when the observer is disabled or began is the zero
// Time (the disabled Now), so the Now/ObserveSince pair brackets a measured
// region without any Enabled check at the call site.
func (o *Observer) ObserveSince(name string, began time.Time) {
	if o == nil || began.IsZero() {
		return
	}
	o.Observe(name, time.Since(began))
}

// hist returns the named histogram cell, creating it on first use; same
// copy-on-write registry discipline as counter.
func (o *Observer) hist(name string) *histCell {
	if h := (*o.hists.Load())[name]; h != nil {
		return h
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	old := *o.hists.Load()
	if h := old[name]; h != nil {
		return h
	}
	next := make(map[string]*histCell, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	h := &histCell{}
	next[name] = h
	o.hists.Store(&next)
	return h
}

// Observe records one duration into the named latency histogram. Only the
// calling goroutine's stripe is locked, so concurrent sessions recording into
// the same histogram do not serialize.
func (o *Observer) Observe(name string, d time.Duration) {
	if o == nil {
		return
	}
	o.hist(name).record(d)
}

// Event is one entry of the sequenced event stream: degradations, staleness
// transitions, fault injections, cache evictions, fallbacks.
type Event struct {
	// Seq is the process-wide monotonic sequence number (NextSeq); records
	// from different subsystems interleave on it.
	Seq    uint64
	Kind   string // dot-separated taxonomy, e.g. "core.degraded"
	Detail string
	At     time.Time
}

// Emit records an event, assigning it the next global sequence number, and
// returns that number (0 when disabled).
func (o *Observer) Emit(kind, detail string) uint64 {
	if o == nil {
		return 0
	}
	seq := NextSeq()
	o.EmitSeq(seq, kind, detail)
	return seq
}

// EmitSeq records an event under a sequence number the caller already drew
// from NextSeq — used when the same number must also tag a record kept
// outside the observer (e.g. core.DegradationEvent).
func (o *Observer) EmitSeq(seq uint64, kind, detail string) {
	if o == nil {
		return
	}
	ev := Event{Seq: seq, Kind: kind, Detail: detail, At: time.Now()}
	o.mu.Lock()
	if len(o.events) >= maxEvents {
		copy(o.events, o.events[1:])
		o.events[len(o.events)-1] = ev
		o.evictedE++
	} else {
		o.events = append(o.events, ev)
	}
	o.mu.Unlock()
}

// Snapshot is a point-in-time copy of everything the observer holds, for
// programmatic scraping and the -obs CLI surface.
type Snapshot struct {
	Counters      map[string]int64
	Histograms    map[string]Histogram
	Events        []Event
	EvictedEvents int64
	Spans         []SpanRecord
	DroppedSpans  int64
}

// Snapshot copies the observer's current state. Counters and histograms are
// deep copies; mutating the snapshot never touches the live observer. Counter
// and histogram stripes are merged here: each histogram stripe is read under
// its own mutex, so every stripe contributes an internally consistent view
// (count always equals the bucket sum) even with writers running.
func (o *Observer) Snapshot() Snapshot {
	if o == nil {
		return Snapshot{}
	}
	counters := *o.counters.Load()
	hists := *o.hists.Load()
	o.mu.Lock()
	s := Snapshot{
		Counters:      make(map[string]int64, len(counters)),
		Histograms:    make(map[string]Histogram, len(hists)),
		Events:        append([]Event(nil), o.events...),
		EvictedEvents: o.evictedE,
		Spans:         append([]SpanRecord(nil), o.spans...),
		DroppedSpans:  o.dropped.Load(),
	}
	o.mu.Unlock()
	for name, c := range counters {
		s.Counters[name] = c.load()
	}
	for name, h := range hists {
		s.Histograms[name] = h.merged()
	}
	return s
}

// CounterNames returns the snapshot's counter names in sorted order, for
// deterministic rendering.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the snapshot's histogram names in sorted order.
func (s Snapshot) HistogramNames() []string {
	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
