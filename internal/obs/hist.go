package obs

import "time"

// histBounds are the upper bounds of the latency buckets (the last bucket is
// unbounded). Power-of-ten decades cover everything from sub-microsecond
// counter bumps to multi-second full recomputes.
var histBounds = [...]time.Duration{
	time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// NumHistBuckets is the bucket count of every latency histogram: one per
// bound plus the unbounded overflow bucket.
const NumHistBuckets = len(histBounds) + 1

// HistBucketLabel names bucket i for rendering ("<1ms", ">=1s").
func HistBucketLabel(i int) string {
	if i < len(histBounds) {
		return "<" + histBounds[i].String()
	}
	return ">=" + histBounds[len(histBounds)-1].String()
}

// histogram is the live, mutex-guarded (by Observer.mu) latency histogram.
type histogram struct {
	buckets [NumHistBuckets]int64
	count   int64
	sum     time.Duration
	max     time.Duration
}

func (h *histogram) record(d time.Duration) {
	i := 0
	for i < len(histBounds) && d >= histBounds[i] {
		i++
	}
	h.buckets[i]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

func (h *histogram) snapshot() Histogram {
	return Histogram{Buckets: h.buckets, Count: h.count, Sum: h.sum, Max: h.max}
}

// Histogram is an immutable latency histogram snapshot.
type Histogram struct {
	Buckets [NumHistBuckets]int64
	Count   int64
	Sum     time.Duration
	Max     time.Duration
}

// Mean returns the average recorded duration (0 when empty).
func (h Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) of the recorded durations
// from the bucket counts. The estimate interpolates linearly inside the
// bucket holding the quantile rank — coarse (buckets are decades) but
// monotone, and good enough for the server's p50/p99 snapshot lines; exact
// percentiles need the raw samples (the load generator keeps those). The
// overflow bucket reports Max. Returns 0 when the histogram is empty.
func (h Histogram) Quantile(q float64) time.Duration {
	if h.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var seen float64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = histBounds[i-1]
			}
			if i >= len(histBounds) {
				// Overflow bucket: no upper bound to interpolate toward.
				return h.Max
			}
			hi := histBounds[i]
			frac := (rank - seen) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		seen += float64(c)
	}
	return h.Max
}
