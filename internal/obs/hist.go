package obs

import "time"

// histBounds are the upper bounds of the latency buckets (the last bucket is
// unbounded). Power-of-ten decades cover everything from sub-microsecond
// counter bumps to multi-second full recomputes.
var histBounds = [...]time.Duration{
	time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// NumHistBuckets is the bucket count of every latency histogram: one per
// bound plus the unbounded overflow bucket.
const NumHistBuckets = len(histBounds) + 1

// HistBucketLabel names bucket i for rendering ("<1ms", ">=1s").
func HistBucketLabel(i int) string {
	if i < len(histBounds) {
		return "<" + histBounds[i].String()
	}
	return ">=" + histBounds[len(histBounds)-1].String()
}

// histogram is the live, mutex-guarded (by Observer.mu) latency histogram.
type histogram struct {
	buckets [NumHistBuckets]int64
	count   int64
	sum     time.Duration
	max     time.Duration
}

func (h *histogram) record(d time.Duration) {
	i := 0
	for i < len(histBounds) && d >= histBounds[i] {
		i++
	}
	h.buckets[i]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

func (h *histogram) snapshot() Histogram {
	return Histogram{Buckets: h.buckets, Count: h.count, Sum: h.sum, Max: h.max}
}

// Histogram is an immutable latency histogram snapshot.
type Histogram struct {
	Buckets [NumHistBuckets]int64
	Count   int64
	Sum     time.Duration
	Max     time.Duration
}

// Mean returns the average recorded duration (0 when empty).
func (h Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}
