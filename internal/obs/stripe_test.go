package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestStripedCountersConcurrentWriters proves the striped counter path loses
// nothing: many goroutines increment the same counter (same cell, usually
// different stripes) and different counters (registry growth mid-storm), and
// the merged totals equal exactly what was written.
func TestStripedCountersConcurrentWriters(t *testing.T) {
	o := New()
	const workers = 8
	const addsPer = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := fmt.Sprintf("stress.private.%d", w)
			for i := 0; i < addsPer; i++ {
				o.Add("stress.shared", 1)
				o.Add(mine, 2)
			}
		}(w)
	}
	wg.Wait()

	if got := o.Counter("stress.shared"); got != workers*addsPer {
		t.Fatalf("shared counter %d, want %d", got, workers*addsPer)
	}
	for w := 0; w < workers; w++ {
		name := fmt.Sprintf("stress.private.%d", w)
		if got := o.Counter(name); got != 2*addsPer {
			t.Fatalf("%s = %d, want %d", name, got, 2*addsPer)
		}
	}
}

// TestStripedHistogramSnapshotConsistency races histogram writers against a
// snapshot reader. Each stripe is merged under its own mutex, so every
// snapshot must be internally consistent — Count equals the bucket sum, Sum
// and Max only grow — even while recordings land concurrently; the final
// quiesced snapshot must account for every recording, and Quantile must stay
// well-defined on every intermediate merge.
func TestStripedHistogramSnapshotConsistency(t *testing.T) {
	o := New()
	const workers = 6
	const recsPer = 3000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 1)

	go func() {
		var lastCount int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			h := o.Snapshot().Histograms["stress.lat"]
			var bucketSum int64
			for _, b := range h.Buckets {
				bucketSum += b
			}
			if bucketSum != h.Count {
				select {
				case errc <- fmt.Errorf("torn snapshot: count %d != bucket sum %d", h.Count, bucketSum):
				default:
				}
				return
			}
			if h.Count < lastCount {
				select {
				case errc <- fmt.Errorf("count went backwards: %d after %d", h.Count, lastCount):
				default:
				}
				return
			}
			lastCount = h.Count
			if h.Count > 0 {
				if q := h.Quantile(0.99); q < 0 {
					select {
					case errc <- fmt.Errorf("quantile went negative: %v", q):
					default:
					}
					return
				}
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < recsPer; i++ {
				o.Observe("stress.lat", time.Duration(1+i%1000)*time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	h := o.Snapshot().Histograms["stress.lat"]
	if h.Count != workers*recsPer {
		t.Fatalf("final count %d, want %d", h.Count, workers*recsPer)
	}
	var bucketSum int64
	for _, b := range h.Buckets {
		bucketSum += b
	}
	if bucketSum != h.Count {
		t.Fatalf("final snapshot torn: count %d != bucket sum %d", h.Count, bucketSum)
	}
}
