package obs

import (
	"fmt"
	"io"
	"sort"
)

// Render writes a human-readable dump of the snapshot: counters sorted by
// name, histograms with mean/max and non-empty buckets, the span tree with
// timings, and the event stream in sequence order. Counter lines are
// deterministic for a deterministic workload; span and histogram lines carry
// wall-clock timings and are for eyes, not golden files.
func (s Snapshot) Render(w io.Writer) {
	fmt.Fprintln(w, "== counters ==")
	for _, name := range s.CounterNames() {
		fmt.Fprintf(w, "%-44s %d\n", name, s.Counters[name])
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "== latency histograms ==")
		for _, name := range s.HistogramNames() {
			h := s.Histograms[name]
			fmt.Fprintf(w, "%-44s n=%d mean=%s max=%s", name, h.Count, h.Mean(), h.Max)
			for i, c := range h.Buckets {
				if c > 0 {
					fmt.Fprintf(w, " %s:%d", HistBucketLabel(i), c)
				}
			}
			fmt.Fprintln(w)
		}
	}
	if len(s.Spans) > 0 {
		fmt.Fprintln(w, "== spans ==")
		s.renderSpanTree(w)
		if s.DroppedSpans > 0 {
			fmt.Fprintf(w, "(%d spans dropped past the %d-record cap)\n", s.DroppedSpans, maxSpans)
		}
	}
	if len(s.Events) > 0 {
		fmt.Fprintln(w, "== events ==")
		if s.EvictedEvents > 0 {
			fmt.Fprintf(w, "(%d older events evicted)\n", s.EvictedEvents)
		}
		for _, ev := range s.Events {
			fmt.Fprintf(w, "#%d %s: %s\n", ev.Seq, ev.Kind, ev.Detail)
		}
	}
}

// renderSpanTree prints spans indented under their parents, children in
// record order (which is start order).
func (s Snapshot) renderSpanTree(w io.Writer) {
	children := make(map[int][]int, len(s.Spans))
	var roots []int
	for i, sp := range s.Spans {
		if sp.Parent < 0 {
			roots = append(roots, i)
		} else {
			children[sp.Parent] = append(children[sp.Parent], i)
		}
	}
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		sp := s.Spans[idx]
		dur := "unfinished"
		if sp.Ended {
			dur = sp.Dur.String()
		}
		fmt.Fprintf(w, "%*s%s (%s)\n", 2*depth, "", sp.Name, dur)
		kids := children[idx]
		sort.Ints(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}
