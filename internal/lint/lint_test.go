package lint_test

// Two halves: every analyzer fires on a seeded violation (the rules are not
// vacuous), and the whole suite is clean over this repository (the gate
// passes). CI runs the same suite through cmd/astlint.

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// findings parses one seeded source file and runs one analyzer over it.
func findings(t *testing.T, a *lint.Analyzer, importPath, filename, src string) []lint.Finding {
	t.Helper()
	p, err := lint.ParseSource(importPath, filename, src)
	if err != nil {
		t.Fatalf("parse seeded source: %v", err)
	}
	return lint.Run([]*lint.Package{p}, []*lint.Analyzer{a})
}

// wantFinding asserts exactly one finding carrying the analyzer's name.
func wantFinding(t *testing.T, fs []lint.Finding, analyzer, substr string) {
	t.Helper()
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %d: %v", len(fs), fs)
	}
	if fs[0].Analyzer != analyzer {
		t.Fatalf("finding from %q, want %q", fs[0].Analyzer, analyzer)
	}
	if !strings.Contains(fs[0].Message, substr) {
		t.Fatalf("finding %q does not mention %q", fs[0].Message, substr)
	}
}

func TestDeterminismFlagsTimeNow(t *testing.T) {
	src := `package core
import "time"
func stamp() int64 { return time.Now().UnixNano() }
`
	fs := findings(t, lint.Determinism, "repro/internal/core", "core/seed.go", src)
	wantFinding(t, fs, "determinism", "time.Now")
}

func TestDeterminismFlagsMathRand(t *testing.T) {
	src := `package qgm
import "math/rand"
func jitter() int { return rand.Int() }
`
	fs := findings(t, lint.Determinism, "repro/internal/qgm", "qgm/seed.go", src)
	wantFinding(t, fs, "determinism", "math/rand")
}

func TestDeterminismIgnoresOtherPackagesAndTests(t *testing.T) {
	src := `package bench
import "time"
func stamp() int64 { return time.Now().UnixNano() }
`
	if fs := findings(t, lint.Determinism, "repro/internal/bench", "bench/ok.go", src); len(fs) != 0 {
		t.Fatalf("non-deterministic package flagged: %v", fs)
	}
	tsrc := `package core
import "time"
func stamp() int64 { return time.Now().UnixNano() }
`
	if fs := findings(t, lint.Determinism, "repro/internal/core", "core/x_test.go", tsrc); len(fs) != 0 {
		t.Fatalf("test file flagged: %v", fs)
	}
}

func TestDeprecatedAPIFlagsResilientImport(t *testing.T) {
	src := `package somepkg
import _ "repro/internal/resilient"
`
	fs := findings(t, lint.DeprecatedAPI, "repro/internal/somepkg", "somepkg/seed.go", src)
	wantFinding(t, fs, "deprecated-api", "internal/resilient")
}

func TestDeprecatedAPIFlagsExecLimits(t *testing.T) {
	src := `package somepkg
import "repro/internal/exec"
var lim exec.Limits
`
	fs := findings(t, lint.DeprecatedAPI, "repro/internal/somepkg", "somepkg/seed.go", src)
	wantFinding(t, fs, "deprecated-api", "exec.Limits")
}

func TestDeprecatedAPIFlagsLimitsRedeclaration(t *testing.T) {
	src := `package exec
type Config struct{}
type Limits = Config
`
	fs := findings(t, lint.DeprecatedAPI, "repro/internal/exec", "exec/seed.go", src)
	wantFinding(t, fs, "deprecated-api", "reintroduces")

	vsrc := `package exec
var Limits int
`
	fs = findings(t, lint.DeprecatedAPI, "repro/internal/exec", "exec/seed2.go", vsrc)
	wantFinding(t, fs, "deprecated-api", "reintroduces")

	ok := `package exec
type Config struct{}
func limits() int { return 0 } // lower-case: fine
`
	if fs := findings(t, lint.DeprecatedAPI, "repro/internal/exec", "exec/ok.go", ok); len(fs) != 0 {
		t.Fatalf("compliant exec source flagged: %v", fs)
	}
}

func TestCtxFirstFlagsLateContext(t *testing.T) {
	src := `package exec
import "context"
type E struct{}
func (e *E) Run(name string, ctx context.Context) error { return ctx.Err() }
`
	fs := findings(t, lint.CtxFirst, "repro/internal/exec", "exec/seed.go", src)
	wantFinding(t, fs, "ctx-first", "Run")
}

func TestCtxFirstAcceptsContextFirst(t *testing.T) {
	src := `package exec
import "context"
type E struct{}
func (e *E) Run(ctx context.Context, name string) error { return ctx.Err() }
func helper(name string, ctx context.Context) error { return ctx.Err() } // unexported: allowed
`
	if fs := findings(t, lint.CtxFirst, "repro/internal/exec", "exec/ok.go", src); len(fs) != 0 {
		t.Fatalf("compliant source flagged: %v", fs)
	}
}

func TestObsNilGuardFlagsUnguardedMethod(t *testing.T) {
	src := `package obs
type Observer struct{ n int }
func (o *Observer) Bump() { o.n++ }
`
	fs := findings(t, lint.ObsNilGuard, "repro/internal/obs", "obs/seed.go", src)
	wantFinding(t, fs, "obs-nil-guard", "Bump")
}

func TestObsNilGuardAcceptsGuardIdioms(t *testing.T) {
	src := `package obs
type Observer struct{ n int }
func (o *Observer) Bump() {
	if o == nil {
		return
	}
	o.n++
}
func (o *Observer) Enabled() bool { return o != nil }
func (o *Observer) bump() { o.n++ } // unexported: callers already guarded
`
	if fs := findings(t, lint.ObsNilGuard, "repro/internal/obs", "obs/ok.go", src); len(fs) != 0 {
		t.Fatalf("guarded source flagged: %v", fs)
	}
}

func TestMutexDisciplineFlagsUnlockedFieldAccess(t *testing.T) {
	src := `package storage
import "sync"
type TableData struct {
	mu     sync.Mutex
	chunks []int
}
func (t *TableData) Size() int { return len(t.chunks) }
`
	fs := findings(t, lint.MutexDiscipline, "repro/internal/storage", "storage/seed.go", src)
	wantFinding(t, fs, "mutex-discipline", "Size")
}

func TestMutexDisciplineAcceptsLockedAccess(t *testing.T) {
	src := `package storage
import "sync"
type TableData struct {
	mu     sync.Mutex
	chunks []int
}
func (t *TableData) Size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.chunks)
}
`
	if fs := findings(t, lint.MutexDiscipline, "repro/internal/storage", "storage/ok.go", src); len(fs) != 0 {
		t.Fatalf("locked source flagged: %v", fs)
	}
}

func TestMutexDisciplineFlagsUnlockedPublish(t *testing.T) {
	// RCU publish rule: Store on a configured atomic.Pointer field without
	// the writer mutex is the bug the rule exists to catch (Load is free).
	src := `package storage
import (
	"sync"
	"sync/atomic"
)
type Store struct {
	mu     sync.Mutex
	tables atomic.Pointer[map[string]int]
}
func (s *Store) swap(m *map[string]int) { s.tables.Store(m) }
func (s *Store) read() *map[string]int  { return s.tables.Load() }
`
	fs := findings(t, lint.MutexDiscipline, "repro/internal/storage", "storage/seed.go", src)
	wantFinding(t, fs, "mutex-discipline", "swap")
	for _, f := range fs {
		if strings.Contains(f.Message, "read") {
			t.Fatalf("lock-free Load flagged: %v", f)
		}
	}
}

func TestMutexDisciplineAcceptsLockedPublishAndEscapes(t *testing.T) {
	// Locked publishes pass; so do the two documented escapes — constructors
	// (pre-publication ownership) and helpers whose doc comment transfers the
	// lock obligation to callers.
	src := `package storage
import (
	"sync"
	"sync/atomic"
)
type Store struct {
	mu     sync.Mutex
	tables atomic.Pointer[map[string]int]
}
func NewStore() *Store {
	s := &Store{}
	m := map[string]int{}
	s.tables.Store(&m)
	return s
}
func (s *Store) swap(m *map[string]int) {
	s.mu.Lock()
	s.tables.Store(m)
	s.mu.Unlock()
}
// setTable publishes the map. Callers must hold s.mu.
func (s *Store) setTable(m *map[string]int) { s.tables.Store(m) }
`
	if fs := findings(t, lint.MutexDiscipline, "repro/internal/storage", "storage/ok.go", src); len(fs) != 0 {
		t.Fatalf("compliant source flagged: %v", fs)
	}
}

func TestMutexDisciplineCoversStripedShards(t *testing.T) {
	// Identifier-based matching reaches beyond receivers: a shard picked out
	// of an array must lock its own mutex before touching guarded fields.
	src := `package core
import "sync"
type shard struct {
	mu    sync.Mutex
	byKey map[string]int
}
type cache struct{ shards []shard }
func (c *cache) get(k string) int {
	s := &c.shards[0]
	return s.byKey[k]
}
func (c *cache) put(k string, v int) {
	s := &c.shards[0]
	s.mu.Lock()
	s.byKey[k] = v
	s.mu.Unlock()
}
`
	fs := findings(t, lint.MutexDiscipline, "repro/internal/core", "core/seed.go", src)
	wantFinding(t, fs, "mutex-discipline", "get")
	for _, f := range fs {
		if strings.Contains(f.Message, "put ") {
			t.Fatalf("locked shard access flagged: %v", f)
		}
	}
}

func TestStorageRowsFlagsTypedIdent(t *testing.T) {
	src := `package maintain
import "repro/internal/storage"
func rowCount(td *storage.TableData) int { return len(td.Rows) }
`
	fs := findings(t, lint.StorageRows, "repro/internal/maintain", "maintain/seed.go", src)
	wantFinding(t, fs, "storage-rows", "TableData.Rows")
}

func TestStorageRowsFlagsStoreChain(t *testing.T) {
	src := `package maintain
import "repro/internal/storage"
func rowCount(s *storage.Store) int { return len(s.Table("t").Rows) }
`
	fs := findings(t, lint.StorageRows, "repro/internal/maintain", "maintain/seed.go", src)
	wantFinding(t, fs, "storage-rows", "TableData.Rows")
}

func TestStorageRowsIgnoresStorageTestsAndOtherRows(t *testing.T) {
	// The storage package itself, test files, and unrelated Rows fields
	// (e.g. exec.Result.Rows) all stay clean.
	inStorage := `package storage
type TableData struct{ Rows int }
func (td *TableData) n() int { return td.Rows }
`
	if fs := findings(t, lint.StorageRows, "repro/internal/storage", "storage/ok.go", inStorage); len(fs) != 0 {
		t.Fatalf("storage package flagged: %v", fs)
	}
	inTest := `package maintain
import "repro/internal/storage"
func rowCount(td *storage.TableData) int { return len(td.Rows) }
`
	if fs := findings(t, lint.StorageRows, "repro/internal/maintain", "maintain/x_test.go", inTest); len(fs) != 0 {
		t.Fatalf("test file flagged: %v", fs)
	}
	otherRows := `package astdb
import "repro/internal/storage"
func use(s *storage.Store, r struct{ Rows [][]int }) int { _ = s; return len(r.Rows) }
`
	if fs := findings(t, lint.StorageRows, "repro/astdb", "astdb/ok.go", otherRows); len(fs) != 0 {
		t.Fatalf("unrelated Rows field flagged: %v", fs)
	}
}

// TestRepositoryIsClean is the dogfood gate: the full analyzer suite over the
// whole module must report nothing. cmd/astlint enforces the same in CI; this
// keeps `go test ./...` sufficient locally.
func TestRepositoryIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; module walk is broken", len(pkgs))
	}
	fs := lint.Run(pkgs, lint.All())
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}
