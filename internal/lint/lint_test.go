package lint_test

// Two halves: every analyzer fires on a seeded violation (the rules are not
// vacuous), and the whole suite is clean over this repository (the gate
// passes). CI runs the same suite through cmd/astlint.

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// findings parses one seeded source file and runs one analyzer over it.
func findings(t *testing.T, a *lint.Analyzer, importPath, filename, src string) []lint.Finding {
	t.Helper()
	p, err := lint.ParseSource(importPath, filename, src)
	if err != nil {
		t.Fatalf("parse seeded source: %v", err)
	}
	return lint.Run([]*lint.Package{p}, []*lint.Analyzer{a})
}

// wantFinding asserts exactly one finding carrying the analyzer's name.
func wantFinding(t *testing.T, fs []lint.Finding, analyzer, substr string) {
	t.Helper()
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %d: %v", len(fs), fs)
	}
	if fs[0].Analyzer != analyzer {
		t.Fatalf("finding from %q, want %q", fs[0].Analyzer, analyzer)
	}
	if !strings.Contains(fs[0].Message, substr) {
		t.Fatalf("finding %q does not mention %q", fs[0].Message, substr)
	}
}

func TestDeterminismFlagsTimeNow(t *testing.T) {
	src := `package core
import "time"
func stamp() int64 { return time.Now().UnixNano() }
`
	fs := findings(t, lint.Determinism, "repro/internal/core", "core/seed.go", src)
	wantFinding(t, fs, "determinism", "time.Now")
}

func TestDeterminismFlagsMathRand(t *testing.T) {
	src := `package qgm
import "math/rand"
func jitter() int { return rand.Int() }
`
	fs := findings(t, lint.Determinism, "repro/internal/qgm", "qgm/seed.go", src)
	wantFinding(t, fs, "determinism", "math/rand")
}

func TestDeterminismIgnoresOtherPackages(t *testing.T) {
	src := `package bench
import "time"
func stamp() int64 { return time.Now().UnixNano() }
`
	if fs := findings(t, lint.Determinism, "repro/internal/bench", "bench/ok.go", src); len(fs) != 0 {
		t.Fatalf("non-deterministic package flagged: %v", fs)
	}
}

func TestDeterminismCoversTestFiles(t *testing.T) {
	// Property tests drive the planner and must replay identically, so test
	// files are covered too: wall-clock is always a finding.
	tsrc := `package core
import "time"
func stamp() int64 { return time.Now().UnixNano() }
`
	fs := findings(t, lint.Determinism, "repro/internal/core", "core/x_test.go", tsrc)
	wantFinding(t, fs, "determinism", "time.Now")
}

func TestDeterminismSeededRandCarveOut(t *testing.T) {
	// The one sanctioned randomness in tests: a *rand.Rand built from a
	// compile-time constant seed is deterministic by construction.
	seeded := `package core
import "math/rand"
func jitter() int { return rand.New(rand.NewSource(42)).Intn(10) }
`
	if fs := findings(t, lint.Determinism, "repro/internal/core", "core/seeded_test.go", seeded); len(fs) != 0 {
		t.Fatalf("constant-seeded rand flagged: %v", fs)
	}

	// Global rand functions and non-constant seeds stay findings even in
	// tests — they read the shared source or an unpredictable seed.
	bad := `package core
import "math/rand"
func jitter(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	_ = r
	return rand.Intn(10)
}
`
	fs := findings(t, lint.Determinism, "repro/internal/core", "core/bad_test.go", bad)
	if len(fs) != 2 {
		t.Fatalf("want 2 findings (variable seed, global Intn), got %d: %v", len(fs), fs)
	}
	var sawSeed, sawGlobal bool
	for _, f := range fs {
		if strings.Contains(f.Message, "NewSource seed") {
			sawSeed = true
		}
		if strings.Contains(f.Message, "global rand.Intn") {
			sawGlobal = true
		}
	}
	if !sawSeed || !sawGlobal {
		t.Fatalf("missing expected messages in %v", fs)
	}
}

func TestDeprecatedAPIFlagsResilientImport(t *testing.T) {
	src := `package somepkg
import _ "repro/internal/resilient"
`
	fs := findings(t, lint.DeprecatedAPI, "repro/internal/somepkg", "somepkg/seed.go", src)
	wantFinding(t, fs, "deprecated-api", "internal/resilient")
}

func TestDeprecatedAPIFlagsExecLimits(t *testing.T) {
	src := `package somepkg
import "repro/internal/exec"
var lim exec.Limits
`
	fs := findings(t, lint.DeprecatedAPI, "repro/internal/somepkg", "somepkg/seed.go", src)
	wantFinding(t, fs, "deprecated-api", "exec.Limits")
}

func TestDeprecatedAPIFlagsLimitsRedeclaration(t *testing.T) {
	src := `package exec
type Config struct{}
type Limits = Config
`
	fs := findings(t, lint.DeprecatedAPI, "repro/internal/exec", "exec/seed.go", src)
	wantFinding(t, fs, "deprecated-api", "reintroduces")

	vsrc := `package exec
var Limits int
`
	fs = findings(t, lint.DeprecatedAPI, "repro/internal/exec", "exec/seed2.go", vsrc)
	wantFinding(t, fs, "deprecated-api", "reintroduces")

	ok := `package exec
type Config struct{}
func limits() int { return 0 } // lower-case: fine
`
	if fs := findings(t, lint.DeprecatedAPI, "repro/internal/exec", "exec/ok.go", ok); len(fs) != 0 {
		t.Fatalf("compliant exec source flagged: %v", fs)
	}
}

func TestCtxFirstFlagsLateContext(t *testing.T) {
	src := `package exec
import "context"
type E struct{}
func (e *E) Run(name string, ctx context.Context) error { return ctx.Err() }
`
	fs := findings(t, lint.CtxFirst, "repro/internal/exec", "exec/seed.go", src)
	wantFinding(t, fs, "ctx-first", "Run")
}

func TestCtxFirstAcceptsContextFirst(t *testing.T) {
	src := `package exec
import "context"
type E struct{}
func (e *E) Run(ctx context.Context, name string) error { return ctx.Err() }
func helper(name string, ctx context.Context) error { return ctx.Err() } // unexported: allowed
`
	if fs := findings(t, lint.CtxFirst, "repro/internal/exec", "exec/ok.go", src); len(fs) != 0 {
		t.Fatalf("compliant source flagged: %v", fs)
	}
}

func TestObsNilGuardFlagsUnguardedMethod(t *testing.T) {
	src := `package obs
type Observer struct{ n int }
func (o *Observer) Bump() { o.n++ }
`
	fs := findings(t, lint.ObsNilGuard, "repro/internal/obs", "obs/seed.go", src)
	wantFinding(t, fs, "obs-nil-guard", "Bump")
}

func TestObsNilGuardAcceptsGuardIdioms(t *testing.T) {
	src := `package obs
type Observer struct{ n int }
func (o *Observer) Bump() {
	if o == nil {
		return
	}
	o.n++
}
func (o *Observer) Enabled() bool { return o != nil }
func (o *Observer) bump() { o.n++ } // unexported: callers already guarded
`
	if fs := findings(t, lint.ObsNilGuard, "repro/internal/obs", "obs/ok.go", src); len(fs) != 0 {
		t.Fatalf("guarded source flagged: %v", fs)
	}
}

func TestMutexDisciplineFlagsUnlockedFieldAccess(t *testing.T) {
	src := `package storage
import "sync"
type TableData struct {
	mu     sync.Mutex
	chunks []int
}
func (t *TableData) Size() int { return len(t.chunks) }
`
	fs := findings(t, lint.MutexDiscipline, "repro/internal/storage", "storage/seed.go", src)
	wantFinding(t, fs, "mutex-discipline", "Size")
}

func TestMutexDisciplineAcceptsLockedAccess(t *testing.T) {
	src := `package storage
import "sync"
type TableData struct {
	mu     sync.Mutex
	chunks []int
}
func (t *TableData) Size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.chunks)
}
`
	if fs := findings(t, lint.MutexDiscipline, "repro/internal/storage", "storage/ok.go", src); len(fs) != 0 {
		t.Fatalf("locked source flagged: %v", fs)
	}
}

func TestMutexDisciplineFlagsUnlockedPublish(t *testing.T) {
	// RCU publish rule: Store on a configured atomic.Pointer field without
	// the writer mutex is the bug the rule exists to catch (Load is free).
	src := `package storage
import (
	"sync"
	"sync/atomic"
)
type Store struct {
	mu     sync.Mutex
	tables atomic.Pointer[map[string]int]
}
func (s *Store) swap(m *map[string]int) { s.tables.Store(m) }
func (s *Store) read() *map[string]int  { return s.tables.Load() }
`
	fs := findings(t, lint.MutexDiscipline, "repro/internal/storage", "storage/seed.go", src)
	wantFinding(t, fs, "mutex-discipline", "swap")
	for _, f := range fs {
		if strings.Contains(f.Message, "read") {
			t.Fatalf("lock-free Load flagged: %v", f)
		}
	}
}

func TestMutexDisciplineAcceptsLockedPublishAndEscapes(t *testing.T) {
	// Locked publishes pass; so do the two flow-based escapes — freshly
	// allocated values (constructor ownership) and helpers listed in the
	// requiresHeld table, whose bodies run under a caller-held lock.
	src := `package storage
import (
	"sync"
	"sync/atomic"
)
type Store struct {
	mu     sync.Mutex
	tables atomic.Pointer[map[string]int]
}
func NewStore() *Store {
	s := &Store{}
	m := map[string]int{}
	s.tables.Store(&m)
	return s
}
func (s *Store) swap(m *map[string]int) {
	s.mu.Lock()
	s.tables.Store(m)
	s.mu.Unlock()
}
// setTable publishes the map. Callers must hold s.mu.
func (s *Store) setTable(m *map[string]int) { s.tables.Store(m) }
`
	if fs := findings(t, lint.MutexDiscipline, "repro/internal/storage", "storage/ok.go", src); len(fs) != 0 {
		t.Fatalf("compliant source flagged: %v", fs)
	}
}

func TestMutexDisciplineCoversStripedShards(t *testing.T) {
	// Type-based matching reaches beyond receivers: a planShard picked out
	// of an array must lock its own mutex before touching guarded fields.
	// (The stand-in type uses the production name so the typed lockSpecs
	// entry for repro/internal/core.planShard matches.)
	src := `package core
import "sync"
type planShard struct {
	mu    sync.Mutex
	byKey map[string]int
}
type cache struct{ shards []planShard }
func (c *cache) get(k string) int {
	s := &c.shards[0]
	return s.byKey[k]
}
func (c *cache) put(k string, v int) {
	s := &c.shards[0]
	s.mu.Lock()
	s.byKey[k] = v
	s.mu.Unlock()
}
`
	fs := findings(t, lint.MutexDiscipline, "repro/internal/core", "core/seed.go", src)
	wantFinding(t, fs, "mutex-discipline", "get")
	for _, f := range fs {
		if strings.Contains(f.Message, "put ") {
			t.Fatalf("locked shard access flagged: %v", f)
		}
	}
}

func TestStorageRowsFlagsTypedIdent(t *testing.T) {
	src := `package maintain
import "repro/internal/storage"
func rowCount(td *storage.TableData) int { return len(td.Rows) }
`
	fs := findings(t, lint.StorageRows, "repro/internal/maintain", "maintain/seed.go", src)
	wantFinding(t, fs, "storage-rows", "TableData.Rows")
}

func TestStorageRowsFlagsStoreChain(t *testing.T) {
	src := `package maintain
import "repro/internal/storage"
func rowCount(s *storage.Store) int { return len(s.Table("t").Rows) }
`
	fs := findings(t, lint.StorageRows, "repro/internal/maintain", "maintain/seed.go", src)
	wantFinding(t, fs, "storage-rows", "TableData.Rows")
}

func TestStorageRowsIgnoresStorageTestsAndOtherRows(t *testing.T) {
	// The storage package itself, test files, and unrelated Rows fields
	// (e.g. exec.Result.Rows) all stay clean.
	inStorage := `package storage
type TableData struct{ Rows int }
func (td *TableData) n() int { return td.Rows }
`
	if fs := findings(t, lint.StorageRows, "repro/internal/storage", "storage/ok.go", inStorage); len(fs) != 0 {
		t.Fatalf("storage package flagged: %v", fs)
	}
	inTest := `package maintain
import "repro/internal/storage"
func rowCount(td *storage.TableData) int { return len(td.Rows) }
`
	if fs := findings(t, lint.StorageRows, "repro/internal/maintain", "maintain/x_test.go", inTest); len(fs) != 0 {
		t.Fatalf("test file flagged: %v", fs)
	}
	otherRows := `package astdb
import "repro/internal/storage"
func use(s *storage.Store, r struct{ Rows [][]int }) int { _ = s; return len(r.Rows) }
`
	if fs := findings(t, lint.StorageRows, "repro/astdb", "astdb/ok.go", otherRows); len(fs) != 0 {
		t.Fatalf("unrelated Rows field flagged: %v", fs)
	}
}

// ---- flow-sensitive analyzers: seeded violations per rule ----

func TestPublishFreezeFlagsPostPublishWrite(t *testing.T) {
	src := `package storage
import "sync/atomic"
type view struct{ rows []int }
type Box struct{ v atomic.Pointer[view] }
func (b *Box) bad(x int) {
	nv := &view{rows: make([]int, 1)}
	b.v.Store(nv)
	nv.rows[0] = x
}
`
	fs := findings(t, lint.PublishFreeze, "repro/internal/storage", "storage/seed.go", src)
	wantFinding(t, fs, "publish-freeze", "after it was published")
}

func TestPublishFreezeFlagsAppendAliasingPublishedSlice(t *testing.T) {
	// The Insert anti-pattern: publishing &rows and then appending to rows
	// may write into the published backing array in place.
	src := `package storage
import "sync/atomic"
type Box struct{ tables atomic.Pointer[[]string] }
func (b *Box) bad(rows []string, r string) {
	b.tables.Store(&rows)
	rows = append(rows, r)
}
`
	fs := findings(t, lint.PublishFreeze, "repro/internal/storage", "storage/seed.go", src)
	wantFinding(t, fs, "publish-freeze", "append into backing")
}

func TestPublishFreezeAcceptsCopyMutatePublish(t *testing.T) {
	// The sanctioned RCU shape: mutate the fresh copy freely, publish last,
	// and rebinding the variable afterwards kills the published fact.
	src := `package storage
import "sync/atomic"
type view struct{ rows []int }
type Box struct{ v atomic.Pointer[view] }
func (b *Box) ok(r int) {
	old := b.v.Load()
	nv := &view{}
	if old != nil {
		nv.rows = append(nv.rows, old.rows...)
	}
	nv.rows = append(nv.rows, r)
	b.v.Store(nv)
	nv = &view{}
	nv.rows = append(nv.rows, r)
	b.v.Store(nv)
}
`
	if fs := findings(t, lint.PublishFreeze, "repro/internal/storage", "storage/ok.go", src); len(fs) != 0 {
		t.Fatalf("copy-mutate-publish flagged: %v", fs)
	}
}

func TestChunkFreezeFlagsWriteAfterFreeze(t *testing.T) {
	// Inside internal/storage: a chunk is mutable from allocation until its
	// freeze call; writing through the frozen view is the seeded bug. The
	// stand-in Chunk reuses the production method name so the funcKey-driven
	// frozenReturning table matches.
	src := `package storage
type Chunk struct{ vals []int }
func (c *Chunk) frozen() *Chunk { return c }
func bad() int {
	c := &Chunk{vals: make([]int, 4)}
	c.vals[0] = 1
	f := c.frozen()
	f.vals[1] = 2
	return f.vals[1]
}
`
	fs := findings(t, lint.ChunkFreeze, "repro/internal/storage", "storage/seed.go", src)
	wantFinding(t, fs, "chunk-freeze", "after freeze")
}

func TestChunkFreezeFlagsWriteToFrozenParamOutsideStorage(t *testing.T) {
	// Outside internal/storage, chunk-typed parameters are frozen views —
	// consumers only ever receive snapshots.
	src := `package exec
type Chunk struct{ vals []int }
func bad(c *Chunk) { c.vals[0] = 9 }
`
	fs := findings(t, lint.ChunkFreeze, "repro/internal/exec", "exec/seed.go", src)
	wantFinding(t, fs, "chunk-freeze", "after freeze")
}

func TestChunkFreezeAcceptsFreshBuildAndReadOnlyUse(t *testing.T) {
	// Regression for two bring-up false positives: a locally allocated chunk
	// stays writable outside storage (the columnarize shape), and builtins
	// like len are not "callees that may mutate".
	src := `package exec
type Vec struct{ n int }
func (v *Vec) AppendValue(x int) { v.n++ }
type Chunk struct{ Cols []Vec }
func build(rows [][]int) []*Chunk {
	var out []*Chunk
	c := &Chunk{Cols: make([]Vec, 2)}
	for _, r := range rows {
		c.Cols[0].AppendValue(r[0])
	}
	out = append(out, c)
	return out
}
func count(c *Chunk) int { return len(c.Cols) }
`
	if fs := findings(t, lint.ChunkFreeze, "repro/internal/exec", "exec/ok.go", src); len(fs) != 0 {
		t.Fatalf("fresh chunk build or len() flagged: %v", fs)
	}
}

func TestUnlockPathsFlagsMissedUnlockOnEarlyReturn(t *testing.T) {
	src := `package astdb
import "sync"
type T struct {
	mu sync.Mutex
	n  int
}
func (t *T) bad(x int) int {
	t.mu.Lock()
	if x > 0 {
		return x
	}
	t.mu.Unlock()
	return t.n
}
`
	fs := findings(t, lint.UnlockPaths, "repro/astdb", "astdb/seed.go", src)
	wantFinding(t, fs, "unlock-paths", "not released")
}

func TestUnlockPathsAcceptsDeferAndBalancedPaths(t *testing.T) {
	// Deferred unlocks (direct or inside a deferred closure) credit every
	// exit, including the panic edge; manual unlock-before-return balances.
	src := `package astdb
import "sync"
type T struct {
	mu sync.Mutex
	n  int
}
func (t *T) okDefer(x int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if x > 0 {
		panic("boom")
	}
	return t.n
}
func (t *T) okClosure() int {
	t.mu.Lock()
	defer func() { t.mu.Unlock() }()
	return t.n
}
func (t *T) okManual() int {
	t.mu.Lock()
	n := t.n
	t.mu.Unlock()
	return n
}
`
	if fs := findings(t, lint.UnlockPaths, "repro/astdb", "astdb/ok.go", src); len(fs) != 0 {
		t.Fatalf("balanced locking flagged: %v", fs)
	}
}

func TestMutexDisciplineFlagsRequiresHeldCallSite(t *testing.T) {
	// Helpers in the requiresHeld table discharge their lock obligation to
	// call sites: calling one without the mutex held is the finding.
	src := `package storage
import (
	"sync"
	"sync/atomic"
)
type Store struct {
	mu     sync.Mutex
	tables atomic.Pointer[int]
}
func (s *Store) setTable(m *int) { s.tables.Store(m) }
func bad(s *Store, m *int) { s.setTable(m) }
func good(s *Store, m *int) {
	s.mu.Lock()
	s.setTable(m)
	s.mu.Unlock()
}
`
	fs := findings(t, lint.MutexDiscipline, "repro/internal/storage", "storage/seed.go", src)
	wantFinding(t, fs, "mutex-discipline", "setTable")
	if !strings.Contains(fs[0].Message, "bad") {
		t.Fatalf("finding should be at the unlocked call site: %v", fs[0])
	}
}

func TestMutexDisciplineAcceptsFreshFuncConstructor(t *testing.T) {
	// Regression: values returned by certified constructors (freshFuncs, e.g.
	// astdb.assemble) carry constructor ownership, so calling requires-held
	// helpers on them pre-publication needs no lock.
	src := `package astdb
import (
	"sync"
	"sync/atomic"
)
type Engine struct {
	mu   sync.Mutex
	asts atomic.Pointer[int]
}
func assemble() *Engine { return &Engine{} }
func (e *Engine) setASTs(v *int) { e.asts.Store(v) }
func Open(v *int) *Engine {
	e := assemble()
	e.setASTs(v)
	return e
}
`
	if fs := findings(t, lint.MutexDiscipline, "repro/astdb", "astdb/ok.go", src); len(fs) != 0 {
		t.Fatalf("constructor-owned engine flagged: %v", fs)
	}
}

// ---- suppressions ----

func TestSuppressionsSilenceAndAreCounted(t *testing.T) {
	src := `package core
import "time"
//lint:ignore determinism fixture exercises the suppression path
func stamp() int64 { return time.Now().UnixNano() }
`
	p, err := lint.ParseSource("repro/internal/core", "core/seed.go", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fs, sup := lint.RunDetailed([]*lint.Package{p}, []*lint.Analyzer{lint.Determinism})
	if len(fs) != 0 {
		t.Fatalf("suppressed finding still reported: %v", fs)
	}
	if len(sup) != 1 {
		t.Fatalf("want 1 suppression, got %d: %v", len(sup), sup)
	}
	if sup[0].Finding.Analyzer != "determinism" {
		t.Fatalf("suppressed wrong analyzer: %v", sup[0])
	}
	if sup[0].Reason != "fixture exercises the suppression path" {
		t.Fatalf("reason not preserved: %q", sup[0].Reason)
	}
}

func TestSuppressionsRejectMissingReason(t *testing.T) {
	src := `package core
import "time"
//lint:ignore determinism
func stamp() int64 { return time.Now().UnixNano() }
`
	p, err := lint.ParseSource("repro/internal/core", "core/seed.go", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fs, sup := lint.RunDetailed([]*lint.Package{p}, []*lint.Analyzer{lint.Determinism})
	if len(sup) != 0 {
		t.Fatalf("malformed ignore suppressed something: %v", sup)
	}
	var sawBadIgnore, sawOriginal bool
	for _, f := range fs {
		if f.Analyzer == "lint-ignore" {
			sawBadIgnore = true
		}
		if f.Analyzer == "determinism" {
			sawOriginal = true
		}
	}
	if !sawBadIgnore || !sawOriginal {
		t.Fatalf("want lint-ignore + unsuppressed determinism findings, got %v", fs)
	}
}

// TestRepositoryIsClean is the dogfood gate: the full analyzer suite over the
// whole module must report nothing. cmd/astlint enforces the same in CI; this
// keeps `go test ./...` sufficient locally.
func TestRepositoryIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; module walk is broken", len(pkgs))
	}
	fs := lint.Run(pkgs, lint.All())
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}
