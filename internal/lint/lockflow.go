// Lock dataflow: the shared engine behind unlock-paths (every mutex acquired
// on a path is released on all CFG exits, with defer recognition covering
// panic unwinds) and the typed mutex-discipline analyzer (guarded fields and
// RCU publishes happen with the owning mutex in the must-held set).
//
// Lock identity is the access path of the mutex expression rooted at a
// types.Object — `t.mu`, `s.shards[i].mu`, `x.statusMu` — so two names for
// the same variable key identically and distinct stripes keyed through a
// local pointer stay distinct. Read locks key separately (suffix "/R").
//
// The state carries three sets: must-held (intersection join — what every
// path holds; authorizes guarded accesses), may-held (union join — what some
// path holds; a may-held lock with no deferred unlock at an exit is a leak),
// and deferred unlocks (union join; credited at every exit, including panic
// edges, because deferred calls run during unwind).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnlockPaths proves every acquired mutex is released on all exits.
var UnlockPaths = &Analyzer{
	Name: "unlock-paths",
	Doc:  "every mutex acquired on a path is released on all CFG exits",
	Run:  runUnlockPaths,
}

// MutexDiscipline enforces the typed locking contracts in lockSpecs:
// guarded-field access and RCU-pointer publication only with the owning
// mutex in the must-held set at that program point. Freshly allocated values
// are exempt (flow-based constructor ownership, replacing the old New*/new*
// name heuristic), and helpers listed in requiresHeld discharge the
// obligation to their call sites (replacing doc-comment sniffing).
var MutexDiscipline = &Analyzer{
	Name: "mutex-discipline",
	Doc:  "guarded fields and atomic publishes take the owning mutex (flow-sensitive)",
	Run:  runMutexDiscipline,
}

// lockFacts is the per-point lock state.
type lockFacts struct {
	must map[string]bool
	may  map[string]bool
	def  map[string]bool
}

func newLockFacts() *lockFacts {
	return &lockFacts{must: map[string]bool{}, may: map[string]bool{}, def: map[string]bool{}}
}

func (s *lockFacts) cloneState() flowState {
	n := newLockFacts()
	for k := range s.must {
		n.must[k] = true
	}
	for k := range s.may {
		n.may[k] = true
	}
	for k := range s.def {
		n.def[k] = true
	}
	return n
}

func (s *lockFacts) joinFrom(src flowState) bool {
	o := src.(*lockFacts)
	changed := false
	for k := range s.must {
		if !o.must[k] {
			delete(s.must, k)
			changed = true
		}
	}
	for k := range o.may {
		if !s.may[k] {
			s.may[k] = true
			changed = true
		}
	}
	for k := range o.def {
		if !s.def[k] {
			s.def[k] = true
			changed = true
		}
	}
	return changed
}

// exprKey renders an access path as a stable key rooted at the base object's
// declaration position, plus a display name for messages.
func exprKey(info *types.Info, e ast.Expr) (key, display string, ok bool) {
	var parts []string
	var disp []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			o := info.Uses[x]
			if o == nil {
				o = info.Defs[x]
			}
			if o == nil {
				return "", "", false
			}
			parts = append(parts, fmt.Sprintf("@%d", o.Pos()))
			disp = append(disp, x.Name)
			reverse(parts)
			reverse(disp)
			return strings.Join(parts, "."), strings.Join(disp, "."), true
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			disp = append(disp, x.Sel.Name)
			e = x.X
		case *ast.IndexExpr:
			idx := "?"
			switch ie := ast.Unparen(x.Index).(type) {
			case *ast.BasicLit:
				idx = ie.Value
			case *ast.Ident:
				idx = ie.Name
			}
			parts = append(parts, "["+idx+"]")
			disp = append(disp, "["+idx+"]")
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return "", "", false
		}
	}
}

func reverse(s []string) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// lockOp classifies a call as a mutex operation on a sync.Mutex/RWMutex.
type lockOp struct {
	key     string // path key (with /R suffix for the read half)
	display string
	name    string // Lock, Unlock, RLock, RUnlock, TryLock, TryRLock
}

func mutexOp(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return lockOp{}, false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return lockOp{}, false
	}
	recv := typeKey(s.Recv())
	if recv != "sync.Mutex" && recv != "sync.RWMutex" {
		return lockOp{}, false
	}
	key, disp, ok := exprKey(info, sel.X)
	if !ok {
		return lockOp{}, false
	}
	op := lockOp{key: key, display: disp, name: sel.Sel.Name}
	if op.name == "RLock" || op.name == "RUnlock" || op.name == "TryRLock" {
		op.key += "/R"
		op.display += " (read)"
	}
	return op, true
}

// lockTransfer updates lock facts across one node. TryLock/TryRLock results
// are condition-dependent and the CFG does not model branch conditions, so
// they are ignored (documented in DESIGN.md §16).
func lockTransfer(info *types.Info, displays map[string]string) transferFn {
	return func(n ast.Node, st flowState) flowState {
		s := st.(*lockFacts)
		if d, ok := n.(*ast.DeferStmt); ok {
			// defer x.mu.Unlock() — or a deferred closure containing
			// unlocks — credits the release on every exit path.
			registerDeferredUnlocks(info, d, s, displays)
			return s
		}
		inspectShallow(n, func(call *ast.CallExpr) {
			op, ok := mutexOp(info, call)
			if !ok {
				return
			}
			displays[op.key] = op.display
			switch op.name {
			case "Lock", "RLock":
				s.must[op.key] = true
				s.may[op.key] = true
			case "Unlock", "RUnlock":
				delete(s.must, op.key)
				delete(s.may, op.key)
			}
		})
		return s
	}
}

// registerDeferredUnlocks records unlock calls appearing in a defer
// statement: direct method values and calls inside deferred closures.
func registerDeferredUnlocks(info *types.Info, d *ast.DeferStmt, s *lockFacts, displays map[string]string) {
	record := func(call *ast.CallExpr) {
		op, ok := mutexOp(info, call)
		if !ok {
			return
		}
		displays[op.key] = op.display
		if op.name == "Unlock" || op.name == "RUnlock" {
			s.def[op.key] = true
		}
	}
	record(d.Call)
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				record(call)
			}
			return true
		})
	}
}

func runUnlockPaths(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		forEachFuncBody(f, func(name string, _ *ast.FuncType, _ *ast.FieldList, body *ast.BlockStmt) {
			if !mentionsMutex(p.Info, body) {
				return
			}
			displays := map[string]string{}
			g := buildCFG(body)
			in := forward(g, newLockFacts(), lockTransfer(p.Info, displays))
			for i, b := range g.blocks {
				if in[i] == nil || !b.exit {
					continue
				}
				st := blockOutState(b, in[i], lockTransfer(p.Info, displays)).(*lockFacts)
				for k := range st.may {
					if st.def[k] {
						continue
					}
					pos := body.Pos()
					if b.last != nil {
						pos = b.last.Pos()
					}
					out = append(out, Finding{
						Pos: p.Fset.Position(pos),
						Message: fmt.Sprintf("%s: %s.Lock is not released on this exit path (no unlock or deferred unlock reaches it)",
							name, displays[k]),
					})
				}
			}
		})
	}
	return out
}

// mentionsMutex is the cheap pre-scan: any Lock/Unlock selector at all.
func mentionsMutex(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Lock", "RLock", "Unlock", "RUnlock":
				found = true
			}
		}
		return !found
	})
	return found
}

func runMutexDiscipline(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, mutexDisciplineFunc(p, fd)...)
		}
	}
	return out
}

// freshAllocObjects collects locals assigned from a fresh allocation
// (composite literal, new, make) anywhere in the body — flow-insensitive
// constructor ownership: a value this function allocated is private until
// published, so its guarded fields need no lock.
func freshAllocObjects(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	isFreshExpr := func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			_, lit := ast.Unparen(x.X).(*ast.CompositeLit)
			return x.Op == token.AND && lit
		case *ast.CallExpr:
			if isBuiltin(info, x, "new") || isBuiltin(info, x, "make") {
				return true
			}
			// Constructors certified to return a private, not-yet-published
			// value.
			if f := calleeOf(info, x); f != nil && freshFuncs[funcKey(f)] {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		asn, ok := n.(*ast.AssignStmt)
		if !ok || len(asn.Lhs) != len(asn.Rhs) {
			return true
		}
		for i := range asn.Lhs {
			if !isFreshExpr(asn.Rhs[i]) {
				continue
			}
			if id, ok := ast.Unparen(asn.Lhs[i]).(*ast.Ident); ok {
				if o := rootObj(info, id); o != nil {
					fresh[o] = true
				}
			}
		}
		return true
	})
	return fresh
}

// receiverObj returns the method receiver's object, nil for functions.
func receiverObj(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fd.Recv.List[0].Names[0]]
}

// declaredFuncKey renders the key of the declared function, for requiresHeld
// lookup.
func declaredFuncKey(p *Package, fd *ast.FuncDecl) string {
	if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
		return funcKey(obj)
	}
	return ""
}

func mutexDisciplineFunc(p *Package, fd *ast.FuncDecl) []Finding {
	body := fd.Body
	fresh := freshAllocObjects(p.Info, body)
	recvObj := receiverObj(p.Info, fd)
	ownHeld := requiresHeld[declaredFuncKey(p, fd)] // mutex field this helper's callers hold

	displays := map[string]string{}
	g := buildCFG(body)
	in := forward(g, newLockFacts(), lockTransfer(p.Info, displays))

	var out []Finding
	emit := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:     p.Fset.Position(n.Pos()),
			Message: fd.Name.Name + ": " + fmt.Sprintf(format, args...),
		})
	}

	// exempt reports whether base (the expression owning the guarded field)
	// needs no lock here: freshly allocated, or the receiver of a helper
	// whose contract transfers the obligation to callers.
	exempt := func(base ast.Expr, mutex string) bool {
		o := rootObj(p.Info, base)
		if o == nil {
			return false
		}
		if fresh[o] {
			return true
		}
		return ownHeld == mutex && recvObj != nil && o == recvObj
	}

	check := func(s *lockFacts, n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false // closures are separate functions; see §16
			}
			sel, ok := m.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selInfo, ok := p.Info.Selections[sel]
			if !ok {
				return true
			}
			tkey := typeKey(selInfo.Recv())
			for _, spec := range specsForType(tkey) {
				// Guarded plain fields: need mutex (either half) held.
				if selInfo.Kind() == types.FieldVal && containsStr(spec.guarded, sel.Sel.Name) {
					key, disp, ok := exprKey(p.Info, sel.X)
					if ok && !s.must[key+"."+spec.mutex] && !s.must[key+"."+spec.mutex+"/R"] &&
						!exempt(sel.X, spec.mutex) {
						emit(sel, "accesses %s.%s without holding %s.%s", disp, sel.Sel.Name, disp, spec.mutex)
					}
				}
			}
			return true
		})
		inspectShallow(n, func(call *ast.CallExpr) {
			// RCU publishes: base.field.Store/Swap needs the write lock.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if _, isPub := publishCall(p.Info, call); isPub {
					if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
						if fieldSel, ok := p.Info.Selections[inner]; ok && fieldSel.Kind() == types.FieldVal {
							tkey := typeKey(fieldSel.Recv())
							for _, spec := range specsForType(tkey) {
								if containsStr(spec.publish, inner.Sel.Name) {
									key, disp, ok := exprKey(p.Info, inner.X)
									if ok && !s.must[key+"."+spec.mutex] && !exempt(inner.X, spec.mutex) {
										emit(call, "publishes %s.%s without holding %s.%s", disp, inner.Sel.Name, disp, spec.mutex)
									}
								}
							}
						}
					}
				}
			}
			// Requires-held helpers: the call site must hold the
			// receiver's mutex.
			f := calleeOf(p.Info, call)
			if f == nil {
				return
			}
			mutex, ok := requiresHeld[funcKey(f)]
			if !ok {
				return
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return
			}
			key, disp, ok := exprKey(p.Info, sel.X)
			if !ok {
				return
			}
			if !s.must[key+"."+mutex] && !exempt(sel.X, mutex) {
				emit(call, "calls %s (contract: callers hold %s.%s) without the lock", f.Name(), disp, mutex)
			}
		})
	}

	for i, b := range g.blocks {
		if in[i] == nil {
			continue
		}
		st := in[i].cloneState().(*lockFacts)
		tr := lockTransfer(p.Info, displays)
		for _, n := range b.nodes {
			check(st, n)
			st = tr(n, st).(*lockFacts)
		}
	}
	return out
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
