// Typed helpers and the cross-function summary table shared by the
// flow-sensitive analyzers (publish-freeze, chunk-freeze, unlock-paths,
// mutex-discipline). The summary table is the conservative escape from pure
// intra-procedural analysis: for module-internal callees that take published
// values, chunks, or snapshots, it records whether they may write through
// their receiver or arguments, and which helpers contractually require a
// caller-held mutex. Stdlib callees default to read-only with an explicit
// mutator list (sort, copy); unknown module-internal callees default to
// "may mutate", which is what makes passing a published value to an
// unlisted helper a finding rather than a blind spot.
package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ---- type-driven expression helpers ----

// rootIdent peels selectors, indexes, stars, parens, and type asserts off an
// expression and returns the base identifier, or nil (e.g. call results,
// composite literals).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// rootObj resolves the base identifier's object, nil when untyped or not a
// variable.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil || info == nil {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	return obj
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		case *types.Alias:
			t = types.Unalias(x)
		default:
			return nil
		}
	}
}

// typeKey renders a named type as "pkgpath.Name" ("" for unnamed). Type
// parameters are dropped, so atomic.Pointer[T] keys as "sync/atomic.Pointer".
func typeKey(t types.Type) string {
	n := namedOf(t)
	if n == nil || n.Obj() == nil {
		return ""
	}
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// calleeOf resolves a call expression to the invoked *types.Func (methods
// and package functions), or nil for builtins, conversions, and func values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	if info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.Fn(...).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.IndexExpr: // generic instantiation Fn[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			if f, ok := info.Uses[id].(*types.Func); ok {
				return f
			}
		}
	}
	return nil
}

// harmlessCall reports whether call is a builtin or type conversion that
// cannot write through its arguments (append/copy/delete/clear are handled
// separately by the callers before consulting this).
func harmlessCall(info *types.Info, call *ast.CallExpr) bool {
	if info == nil {
		return false
	}
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return true // conversion
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	}
	if _, ok := obj.(*types.Builtin); ok {
		return true // len, cap, min, max, print, ... (mutating builtins pre-handled)
	}
	return false
}

// funcKey renders a function as "pkgpath.Name" or "pkgpath.(Type).Name" for
// methods, dropping pointerness and type arguments.
func funcKey(f *types.Func) string {
	if f == nil {
		return ""
	}
	sig, _ := f.Type().(*types.Signature)
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	if sig != nil && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			return fmt.Sprintf("%s.(%s).%s", pkg, n.Obj().Name(), f.Name())
		}
		// Interface method: key on the interface-less form.
		return fmt.Sprintf("%s.(?).%s", pkg, f.Name())
	}
	return pkg + "." + f.Name()
}

// isModulePath reports whether a package path belongs to this module. The
// fixture packages claim repro/... paths on purpose, so they get the same
// strict treatment as production code.
func isModulePath(path string) bool {
	return path == "repro" || strings.HasPrefix(path, "repro/")
}

// ---- publish / freeze callee effects ----

// calleeFact is the summary for one callee: whether calling it may write
// through its receiver or any pointer-reachable argument.
type calleeFact struct {
	mutatesRecv bool
	mutatesArgs []int // arg indices whose pointee may be written; nil = none
	readonly    bool  // explicit read-only entry (module-internal whitelist)
}

func (c calleeFact) mutatesArg(i int) bool {
	for _, a := range c.mutatesArgs {
		if a == i {
			return true
		}
	}
	return false
}

// calleeFacts is the hand-maintained summary for module-internal callees
// that take chunks, snapshots, views, or other publishable values. Keys come
// from funcKey. Anything module-internal and absent defaults to
// "may mutate everything reachable" — add entries here (with review) rather
// than suppressing findings at call sites.
var calleeFacts = map[string]calleeFact{
	// storage.Chunk and its vectors: appendRow/AppendValue/AppendNull are the
	// designated mutators; everything else reads.
	"repro/internal/storage.(Chunk).appendRow":  {mutatesRecv: true},
	"repro/internal/storage.(Chunk).Row":        {mutatesArgs: []int{1}}, // writes dst
	"repro/internal/storage.(Chunk).frozen":     {readonly: true},
	"repro/internal/storage.frozenChunks":       {readonly: true},
	"repro/internal/storage.buildChunks":        {readonly: true},
	"repro/internal/storage.materializeRows":    {readonly: true},
	"repro/internal/storage.lookupFold":         {readonly: true},
	"repro/internal/storage.(TableData).Row":    {readonly: true},
	"repro/internal/sqltypes.(Vec).AppendValue": {mutatesRecv: true},
	"repro/internal/sqltypes.(Vec).AppendNull":  {mutatesRecv: true},
	"repro/internal/sqltypes.(Vec).Frozen":      {readonly: true},
	"repro/internal/sqltypes.(Vec).Value":       {readonly: true},
	"repro/internal/sqltypes.(Vec).IsNull":      {readonly: true},
	"repro/internal/sqltypes.(Vec).Len":         {readonly: true},
	"repro/internal/sqltypes.(Vec).Kind":        {readonly: true},
	"repro/internal/sqltypes.(Vec).HasNulls":    {readonly: true},
	"repro/internal/sqltypes.(Vec).Generic":     {readonly: true},
	// Key renderers write only into their buf argument.
	"repro/internal/sqltypes.(Vec).AppendBinKey":   {mutatesArgs: []int{0}},
	"repro/internal/sqltypes.(Vec).AppendGroupKey": {mutatesArgs: []int{0}},
}

// stdlibMutators are the standard-library callees that write through an
// argument; everything else in the stdlib is treated as read-only with
// respect to tracked values. (Writing into an io.Writer etc. does not write
// *through* the tracked pointer graph we care about.)
var stdlibMutators = map[string][]int{
	"sort.Sort":        {0},
	"sort.Stable":      {0},
	"sort.Slice":       {0},
	"sort.SliceStable": {0},
	"sort.Strings":     {0},
	"sort.Ints":        {0},
	"sort.Float64s":    {0},
	"slices.Sort":      {0},
	"slices.SortFunc":  {0},
	"slices.Reverse":   {0},
}

// calleeEffectOn classifies what calling f may do to a tracked value passed
// as the receiver (argIdx == -1) or as argument argIdx. It returns true when
// the call may write through that value.
func calleeEffectOn(f *types.Func, argIdx int) bool {
	if f == nil {
		// Unknown function value: assume mutation.
		return true
	}
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	key := funcKey(f)
	if fact, ok := calleeFacts[key]; ok {
		if argIdx < 0 {
			return fact.mutatesRecv
		}
		return fact.mutatesArg(argIdx)
	}
	if !isModulePath(pkg) {
		// sync.Mutex.Lock/Unlock, atomic loads/stores, fmt, errors, ...:
		// read-only unless on the explicit mutator list.
		if idxs, ok := stdlibMutators[pkg+"."+f.Name()]; ok {
			for _, i := range idxs {
				if i == argIdx {
					return true
				}
			}
		}
		return false
	}
	// Unlisted module-internal callee: conservatively a mutator.
	return true
}

// ---- RCU publish points ----

// publishCall reports whether call is an RCU publish — a Store or Swap on a
// sync/atomic.Pointer or atomic.Value — returning the published argument.
func publishCall(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || info == nil {
		return nil, false
	}
	if sel.Sel.Name != "Store" && sel.Sel.Name != "Swap" {
		return nil, false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return nil, false
	}
	recv := typeKey(s.Recv())
	if recv != "sync/atomic.Pointer" && recv != "sync/atomic.Value" {
		return nil, false
	}
	if len(call.Args) != 1 {
		return nil, false
	}
	return call.Args[0], true
}

// ---- mutex specs (typed) ----

// lockSpec is one type's locking contract: guarded fields may only be
// touched with the mutex (or its read half) held on the same base value, and
// publish fields are atomic pointers whose Store/Swap requires the full
// write lock.
type lockSpec struct {
	typ     string   // typeKey, e.g. "repro/internal/storage.TableData"
	mutex   string   // mutex field name
	guarded []string // fields needing the mutex (Lock or RLock) held
	publish []string // atomic fields whose Store needs the write lock
}

// lockSpecs enforces the striped and RCU-published structures on the serving
// hot path. Matching is type-based: an access x.field requires key(x).mutex
// in the must-held set at that program point, whatever the variable is
// called. Constructor ownership is flow-based (freshly allocated values are
// exempt), replacing the old New*/new* name heuristic; helpers that
// contractually run under a caller's lock are listed in requiresHeld,
// replacing the old doc-comment sniffing.
var lockSpecs = []lockSpec{
	{typ: "repro/internal/storage.TableData", mutex: "mu",
		guarded: []string{"chunks"}, publish: []string{"view"}},
	{typ: "repro/internal/storage.Store", mutex: "mu",
		publish: []string{"tables"}},
	{typ: "repro/internal/core.planShard", mutex: "mu",
		guarded: []string{"ll", "byKey"}},
	{typ: "repro/internal/obs.Observer", mutex: "mu",
		publish: []string{"counters", "hists"}},
	{typ: "repro/internal/obs.histStripe", mutex: "mu",
		guarded: []string{"h"}},
	{typ: "repro/internal/catalog.Catalog", mutex: "statusMu",
		publish: []string{"status"}},
	{typ: "repro/internal/catalog.sigIndex", mutex: "mu",
		publish: []string{"entries"}},
	{typ: "repro/astdb.Engine", mutex: "mu",
		publish: []string{"asts", "plans"}},
}

// requiresHeld lists helpers whose contract is "callers must hold the
// receiver's mutex": their bodies may touch guarded/publish fields freely,
// and every call site must have the lock in its must-held set.
var requiresHeld = map[string]string{
	"repro/internal/storage.(Store).setTable":   "mu",
	"repro/internal/catalog.(sigIndex).replace": "mu",
	"repro/astdb.(Engine).setASTs":              "mu",
}

// freshFuncs are module-internal constructors certified to return a value no
// other goroutine can reach yet; values assigned from them get the same
// constructor-ownership exemption as composite literals. (newTableData and
// friends need no entry: their composite-literal allocations are recognized
// directly.)
var freshFuncs = map[string]bool{
	"repro/astdb.assemble": true,
}

// specForType returns the lockSpecs entry for a type key.
func specsForType(key string) []lockSpec {
	var out []lockSpec
	for _, s := range lockSpecs {
		if s.typ == key {
			out = append(out, s)
		}
	}
	return out
}
