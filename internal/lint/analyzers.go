package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// All returns the full analyzer suite, in reporting order. The first group
// is syntactic; the last four are the flow-sensitive go/types analyzers
// (publish-freeze, chunk-freeze, unlock-paths, and the typed
// mutex-discipline) built on the CFG dataflow engine.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		DeprecatedAPI,
		CtxFirst,
		ObsNilGuard,
		StorageRows,
		PublishFreeze,
		ChunkFreeze,
		UnlockPaths,
		MutexDiscipline,
	}
}

// deterministicPkgs are the planning packages that must behave identically
// across runs: plan-cache keys, rewrite decisions, and the qgmcheck oracle
// all assume that matching the same query twice yields the same plan.
var deterministicPkgs = map[string]bool{
	"repro/internal/core": true,
	"repro/internal/exec": true,
	"repro/internal/qgm":  true,
}

// Determinism forbids wall-clock and randomness in the planning packages.
// Latency measurement goes through obs.Observer.Now/ObserveSince, which are
// nil-guarded and zero-cost when observability is off.
//
// Test files are covered too (property tests drive the planner and must
// replay identically), with one carve-out: a *rand.Rand built from a
// compile-time constant seed — rand.New(rand.NewSource(42)) — is
// deterministic by construction and allowed; the global rand functions and
// non-constant seeds are not.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall-clock or unseeded randomness in internal/core, internal/exec, internal/qgm",
	Run: func(p *Package) []Finding {
		if !deterministicPkgs[p.Path] {
			return nil
		}
		var out []Finding
		for _, f := range p.Files {
			timeName, randName := "", ""
			for _, imp := range f.AST.Imports {
				switch importPathOf(imp) {
				case "time":
					timeName = importName(imp)
				case "math/rand", "math/rand/v2":
					if !f.Test {
						out = append(out, Finding{
							Pos: p.Fset.Position(imp.Pos()),
							Message: fmt.Sprintf("package %s must stay deterministic: do not import %s",
								p.Path, importPathOf(imp)),
						})
						continue
					}
					randName = importName(imp)
				}
			}
			if (timeName == "" || timeName == "_") && (randName == "" || randName == "_") {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				if id.Name == timeName && (sel.Sel.Name == "Now" || sel.Sel.Name == "Since") {
					out = append(out, Finding{
						Pos: p.Fset.Position(call.Pos()),
						Message: fmt.Sprintf("time.%s in deterministic package %s; use obs.Observer.Now/ObserveSince",
							sel.Sel.Name, p.Path),
					})
				}
				if id.Name == randName && randName != "" {
					// Allowed: rand.New(...) and rand.NewSource(<const>).
					// Everything else on the package (rand.Intn, rand.Shuffle,
					// ...) uses the shared global source.
					switch sel.Sel.Name {
					case "New":
					case "NewSource":
						if len(call.Args) == 1 && !isConstExpr(p, call.Args[0]) {
							out = append(out, Finding{
								Pos: p.Fset.Position(call.Pos()),
								Message: fmt.Sprintf("rand.NewSource seed must be a compile-time constant in deterministic package %s",
									p.Path),
							})
						}
					default:
						out = append(out, Finding{
							Pos: p.Fset.Position(call.Pos()),
							Message: fmt.Sprintf("global rand.%s in deterministic package %s; use rand.New(rand.NewSource(<const>))",
								sel.Sel.Name, p.Path),
						})
					}
				}
				return true
			})
		}
		return out
	},
}

// isConstExpr reports whether e evaluates to a compile-time constant,
// falling back to a literal check when type info is unavailable.
func isConstExpr(p *Package, e ast.Expr) bool {
	if p.Info != nil {
		if tv, ok := p.Info.Types[e]; ok {
			return tv.Value != nil
		}
	}
	_, lit := ast.Unparen(e).(*ast.BasicLit)
	return lit
}

// DeprecatedAPI forbids reintroducing retired surfaces. Both are deleted —
// internal/resilient (folded into the astdb facade) and the exec.Limits
// alias (renamed Config) — so the analyzer now guards against resurrection:
// importing the dead package path, referencing exec.Limits from outside, or
// re-declaring a top-level Limits inside internal/exec itself.
var DeprecatedAPI = &Analyzer{
	Name: "deprecated-api",
	Doc:  "internal/resilient and exec.Limits are deleted; do not reintroduce them",
	Run: func(p *Package) []Finding {
		var out []Finding
		if p.Path == "repro/internal/exec" {
			out = append(out, limitsRedeclared(p)...)
		}
		for _, f := range p.Files {
			execName := ""
			for _, imp := range f.AST.Imports {
				switch importPathOf(imp) {
				case "repro/internal/resilient":
					out = append(out, Finding{
						Pos:     p.Fset.Position(imp.Pos()),
						Message: "internal/resilient is deleted; use the astdb facade (astdb.Open/Wrap, Engine.Query)",
					})
				case "repro/internal/exec":
					execName = importName(imp)
				}
			}
			if execName == "" {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == execName && sel.Sel.Name == "Limits" {
					out = append(out, Finding{
						Pos:     p.Fset.Position(sel.Pos()),
						Message: "exec.Limits is deleted; use exec.Config",
					})
				}
				return true
			})
		}
		return out
	},
}

// limitsRedeclared flags any top-level declaration named Limits inside
// internal/exec — type alias, struct, var, or func — so the retired name
// cannot quietly come back.
func limitsRedeclared(p *Package) []Finding {
	var out []Finding
	flag := func(pos token.Pos, what string) {
		out = append(out, Finding{
			Pos:     p.Fset.Position(pos),
			Message: fmt.Sprintf("%s Limits reintroduces the deleted exec.Limits; keep the Config name", what),
		})
	}
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.Name == "Limits" {
							flag(s.Pos(), "type")
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.Name == "Limits" {
								flag(n.Pos(), "value")
							}
						}
					}
				}
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.Name == "Limits" {
					flag(d.Pos(), "func")
				}
			}
		}
	}
	return out
}

// ctxFirstPkgs are the packages whose exported API is the engine's public
// surface; their entry points follow the standard library convention of
// taking the context first.
var ctxFirstPkgs = map[string]bool{
	"repro/astdb":         true,
	"repro/internal/exec": true,
}

// CtxFirst requires exported functions and methods of the facade and
// executor to take context.Context as their first parameter.
var CtxFirst = &Analyzer{
	Name: "ctx-first",
	Doc:  "exported astdb/exec entry points take context.Context first",
	Run: func(p *Package) []Finding {
		if !ctxFirstPkgs[p.Path] {
			return nil
		}
		var out []Finding
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			ctxName := ""
			for _, imp := range f.AST.Imports {
				if importPathOf(imp) == "context" {
					ctxName = importName(imp)
				}
			}
			if ctxName == "" {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !fd.Name.IsExported() || fd.Type.Params == nil {
					continue
				}
				pos := ctxParamPos(fd.Type.Params, ctxName)
				if pos > 0 {
					out = append(out, Finding{
						Pos: p.Fset.Position(fd.Pos()),
						Message: fmt.Sprintf("exported %s takes context.Context at position %d; contexts go first",
							fd.Name.Name, pos),
					})
				}
			}
		}
		return out
	},
}

// ctxParamPos returns the 0-based position of the first context.Context
// parameter, or -1 when there is none. Grouped parameters (a, b T) each
// count one position.
func ctxParamPos(params *ast.FieldList, ctxName string) int {
	pos := 0
	for _, field := range params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if sel, ok := field.Type.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == ctxName && sel.Sel.Name == "Context" {
				return pos
			}
		}
		pos += n
	}
	return -1
}

// ObsNilGuard requires every exported *obs.Observer method to decide the nil
// receiver in its first statement — the contract that lets every subsystem
// instrument unconditionally with observability off.
var ObsNilGuard = &Analyzer{
	Name: "obs-nil-guard",
	Doc:  "exported *obs.Observer methods begin with a nil-receiver guard",
	Run: func(p *Package) []Finding {
		if p.Path != "repro/internal/obs" {
			return nil
		}
		var out []Finding
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !fd.Name.IsExported() || fd.Body == nil {
					continue
				}
				recv, ptr := receiverType(fd)
				if recv != "Observer" || !ptr {
					continue
				}
				recvName := receiverName(fd)
				if recvName == "" || len(fd.Body.List) == 0 ||
					!stmtComparesNil(fd.Body.List[0], recvName) {
					out = append(out, Finding{
						Pos: p.Fset.Position(fd.Pos()),
						Message: fmt.Sprintf("(*Observer).%s must begin with a nil-receiver guard (if %s == nil / return %s != nil)",
							fd.Name.Name, orElse(recvName, "o"), orElse(recvName, "o")),
					})
				}
			}
		}
		return out
	},
}

// StorageRows forbids reaching into a TableData's row data from outside
// internal/storage. The pre-columnar layout exported Rows as a documented
// single-threaded escape hatch; with the chunked layout a raw row slice is a
// derived cache, so direct access bypasses both the mutex and the row-view
// invalidation. Callers go through Scan/Snapshot/ScanChunks. Without type
// information the rule is syntactic: it flags `.Rows` on identifiers declared
// as storage.TableData (parameters, results, struct fields, var specs) and on
// direct chains through the Store methods returning *TableData (Table,
// Create, Put).
var StorageRows = &Analyzer{
	Name: "storage-rows",
	Doc:  "no direct TableData.Rows access outside internal/storage; use Scan/Snapshot/ScanChunks",
	Run: func(p *Package) []Finding {
		if p.Path == "repro/internal/storage" {
			return nil
		}
		var out []Finding
		for _, f := range p.Files {
			if f.Test {
				continue // tests may reach into fixtures they own
			}
			stName := ""
			for _, imp := range f.AST.Imports {
				if importPathOf(imp) == "repro/internal/storage" {
					stName = importName(imp)
				}
			}
			if stName == "" || stName == "_" {
				continue
			}
			isTD := func(t ast.Expr) bool {
				if star, ok := t.(*ast.StarExpr); ok {
					t = star.X
				}
				sel, ok := t.(*ast.SelectorExpr)
				if !ok {
					return false
				}
				id, ok := sel.X.(*ast.Ident)
				return ok && id.Name == stName && sel.Sel.Name == "TableData"
			}
			tdIdents := map[string]bool{}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch t := n.(type) {
				case *ast.Field: // params, results, struct fields
					if isTD(t.Type) {
						for _, nm := range t.Names {
							tdIdents[nm.Name] = true
						}
					}
				case *ast.ValueSpec:
					if t.Type != nil && isTD(t.Type) {
						for _, nm := range t.Names {
							tdIdents[nm.Name] = true
						}
					}
				}
				return true
			})
			flag := func(n ast.Node) {
				out = append(out, Finding{
					Pos:     p.Fset.Position(n.Pos()),
					Message: "direct TableData.Rows access outside internal/storage; use Scan/Snapshot/ScanChunks",
				})
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Rows" {
					return true
				}
				switch x := sel.X.(type) {
				case *ast.Ident:
					if tdIdents[x.Name] {
						flag(sel)
					}
				case *ast.CallExpr:
					if ms, ok := x.Fun.(*ast.SelectorExpr); ok {
						switch ms.Sel.Name {
						case "Table", "Create", "Put":
							flag(sel)
						}
					}
				}
				return true
			})
		}
		return out
	},
}

// receiverType returns the receiver's named type and whether it is a pointer
// receiver ("" for plain functions).
func receiverType(fd *ast.FuncDecl) (name string, pointer bool) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "", false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		pointer = true
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name, pointer
	}
	return "", pointer
}

// receiverName returns the receiver binding's name ("" when anonymous).
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// stmtComparesNil reports whether the statement contains a comparison of the
// named identifier against nil (the guard idiom: `if o == nil { … }` or
// `return o != nil`).
func stmtComparesNil(s ast.Stmt, name string) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
			return true
		}
		if isIdent(b.X, name) && isIdent(b.Y, "nil") || isIdent(b.Y, name) && isIdent(b.X, "nil") {
			found = true
			return false
		}
		return true
	})
	return found
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func orElse(s, def string) string {
	if strings.TrimSpace(s) == "" {
		return def
	}
	return s
}
