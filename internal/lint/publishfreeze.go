// PublishFreeze: the flow-sensitive verifier for the RCU publish discipline
// ("copy, mutate, then publish; never write after publish"). Per function it
// runs a forward may-analysis over the CFG: the abstract state is the set of
// local roots whose reachable memory has been published through an
// atomic.Pointer/atomic.Value Store or Swap. After a root enters the set,
// any write through it — field assign, index assign, map/slice mutation,
// IncDec, append into its backing, copy onto it, delete from it, or passing
// it to a callee the summary table does not certify read-only — is a
// finding. Rebinding the bare variable kills the fact (the name now refers
// to new memory).
//
// Aliases are tracked with a flow-insensitive union-find over the function:
// plain assignments, &x, composite literals mentioning a root, builtin
// append pass-through, and range binds all merge classes; call results are
// assumed fresh (constructors dominate; an identity-returning helper would
// be a blind spot, noted in DESIGN.md §16). Function literals are analyzed
// as separate functions with an empty published set.
package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// PublishFreeze proves no writes reach published memory after the publish
// statement.
var PublishFreeze = &Analyzer{
	Name: "publish-freeze",
	Doc:  "values published via atomic Store/Swap are never written afterwards",
	Run:  runPublishFreeze,
}

func runPublishFreeze(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		forEachFuncBody(f, func(name string, _ *ast.FuncType, _ *ast.FieldList, body *ast.BlockStmt) {
			out = append(out, publishFreezeFunc(p, name, body)...)
		})
	}
	return out
}

// forEachFuncBody visits every function body in the file: declared functions
// and, separately, each function literal (closures are not inlined). recv is
// nil for functions and literals.
func forEachFuncBody(f *File, visit func(name string, ft *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt)) {
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd.Name.Name, fd.Type, fd.Recv, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				visit(fd.Name.Name+".func", lit.Type, nil, lit.Body)
			}
			return true
		})
	}
}

// pubState is the published-root set.
type pubState struct {
	pub map[types.Object]bool
}

func newPubState() *pubState { return &pubState{pub: map[types.Object]bool{}} }

func (s *pubState) cloneState() flowState {
	n := newPubState()
	for k := range s.pub {
		n.pub[k] = true
	}
	return n
}

func (s *pubState) joinFrom(src flowState) bool {
	o := src.(*pubState)
	changed := false
	for k := range o.pub {
		if !s.pub[k] {
			s.pub[k] = true
			changed = true
		}
	}
	return changed
}

// aliasSets is the union-find over a function's variables.
type aliasSets struct {
	parent map[types.Object]types.Object
}

func newAliasSets() *aliasSets { return &aliasSets{parent: map[types.Object]types.Object{}} }

func (a *aliasSets) find(o types.Object) types.Object {
	p, ok := a.parent[o]
	if !ok || p == o {
		return o
	}
	r := a.find(p)
	a.parent[o] = r
	return r
}

func (a *aliasSets) union(x, y types.Object) {
	rx, ry := a.find(x), a.find(y)
	if rx != ry {
		a.parent[rx] = ry
	}
}

// classOf returns every known object in o's alias class (including o).
func (a *aliasSets) classOf(o types.Object) []types.Object {
	root := a.find(o)
	out := []types.Object{o}
	for k := range a.parent {
		if k != o && a.find(k) == root {
			out = append(out, k)
		}
	}
	return out
}

// aliasRoots collects the identifiers in e whose memory the value of e may
// share: idents through selectors/indexes/addr-of/slices, composite-literal
// elements, and builtin append pass-through. Call results are assumed fresh.
func aliasRoots(info *types.Info, e ast.Expr, out []types.Object) []types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		if o := info.Uses[x]; o != nil {
			if _, ok := o.(*types.Var); ok {
				out = append(out, o)
			}
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.SliceExpr:
		if o := rootObj(info, e); o != nil {
			out = append(out, o)
		}
	case *ast.ParenExpr:
		out = aliasRoots(info, x.X, out)
	case *ast.UnaryExpr:
		out = aliasRoots(info, x.X, out)
	case *ast.TypeAssertExpr:
		out = aliasRoots(info, x.X, out)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = aliasRoots(info, el, out)
		}
	case *ast.CallExpr:
		if isBuiltin(info, x, "append") {
			for _, arg := range x.Args {
				out = aliasRoots(info, arg, out)
			}
		}
	}
	return out
}

// buildAliases runs the flow-insensitive alias pass over a body.
func buildAliases(info *types.Info, body *ast.BlockStmt) *aliasSets {
	a := newAliasSets()
	link := func(lhs ast.Expr, rhs ast.Expr) {
		l := rootObj(info, lhs)
		if l == nil {
			return
		}
		for _, r := range aliasRoots(info, rhs, nil) {
			a.union(l, r)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					link(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i := range vs.Names {
					link(vs.Names[i], vs.Values[i])
				}
			}
		case *ast.RangeStmt:
			// Key/value bind aliases the ranged container's memory.
			if n.Value != nil {
				link(n.Value, n.X)
			}
			if n.Key != nil {
				link(n.Key, n.X)
			}
		}
		return true
	})
	return a
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	if o := info.Uses[id]; o != nil {
		_, isB := o.(*types.Builtin)
		return isB
	}
	return false
}

// publishFreezeFunc analyzes one function body.
func publishFreezeFunc(p *Package, name string, body *ast.BlockStmt) []Finding {
	// Cheap pre-scan: no atomic Store/Swap, no analysis.
	hasPublish := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := publishCall(p.Info, call); ok {
				hasPublish = true
			}
		}
		return !hasPublish
	})
	if !hasPublish {
		return nil
	}
	aliases := buildAliases(p.Info, body)
	g := buildCFG(body)

	transfer := func(emit func(n ast.Node, format string, args ...any)) transferFn {
		return func(n ast.Node, st flowState) flowState {
			s := st.(*pubState)
			if emit != nil {
				checkPublishedWrites(p, aliases, s, n, emit)
			}
			applyPublishTransfer(p, aliases, s, n)
			return s
		}
	}

	in := forward(g, newPubState(), transfer(nil))

	var out []Finding
	emit := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:     p.Fset.Position(n.Pos()),
			Message: name + ": " + fmt.Sprintf(format, args...),
		})
	}
	for i, b := range g.blocks {
		if in[i] == nil {
			continue
		}
		blockOutState(b, in[i], transfer(emit))
	}
	return out
}

// applyPublishTransfer updates the published set across one node: Store/Swap
// publishes the argument's alias class; rebinding a bare identifier kills
// its fact.
func applyPublishTransfer(p *Package, aliases *aliasSets, s *pubState, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, l := range n.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				if o := rootObj(p.Info, id); o != nil {
					delete(s.pub, o)
				}
			}
		}
	}
	inspectShallow(n, func(call *ast.CallExpr) {
		arg, ok := publishCall(p.Info, call)
		if !ok {
			return
		}
		for _, r := range aliasRoots(p.Info, arg, nil) {
			for _, m := range aliases.classOf(r) {
				s.pub[m] = true
			}
		}
	})
}

// checkPublishedWrites reports writes through published roots at one node,
// using the pre-state (publishes in the same statement take effect after).
func checkPublishedWrites(p *Package, aliases *aliasSets, s *pubState, n ast.Node, emit func(ast.Node, string, ...any)) {
	published := func(e ast.Expr) (types.Object, bool) {
		o := rootObj(p.Info, e)
		if o == nil {
			return nil, false
		}
		return o, s.pub[o]
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, l := range n.Lhs {
			if _, ok := ast.Unparen(l).(*ast.Ident); ok {
				continue // rebind, not a write through
			}
			if o, ok := published(l); ok {
				emit(l, "write to %s after it was published", o.Name())
			}
		}
	case *ast.IncDecStmt:
		if _, ok := ast.Unparen(n.X).(*ast.Ident); !ok {
			if o, ok := published(n.X); ok {
				emit(n, "write to %s after it was published", o.Name())
			}
		}
	case *ast.SendStmt:
		// Channel sends do not mutate tracked memory.
	}
	inspectShallow(n, func(call *ast.CallExpr) {
		if _, isPub := publishCall(p.Info, call); isPub {
			return
		}
		switch {
		case isBuiltin(p.Info, call, "append"):
			if len(call.Args) > 0 {
				if o, ok := published(call.Args[0]); ok {
					emit(call, "append into backing of published %s", o.Name())
				}
			}
			return
		case isBuiltin(p.Info, call, "delete"), isBuiltin(p.Info, call, "clear"):
			if len(call.Args) > 0 {
				if o, ok := published(call.Args[0]); ok {
					emit(call, "mutation of published %s", o.Name())
				}
			}
			return
		case isBuiltin(p.Info, call, "copy"):
			if len(call.Args) > 0 {
				if o, ok := published(call.Args[0]); ok {
					emit(call, "copy into backing of published %s", o.Name())
				}
			}
			return
		}
		if harmlessCall(p.Info, call) {
			return
		}
		f := calleeOf(p.Info, call)
		// Method receiver.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if selInfo, ok := p.Info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
				if o, pubbed := published(sel.X); pubbed && calleeEffectOn(f, -1) {
					emit(call, "published %s passed as receiver to %s, which may mutate it", o.Name(), calleeName(f, call))
				}
			}
		}
		for i, arg := range call.Args {
			if !pointerish(p.Info, arg) {
				continue
			}
			if o, ok := published(arg); ok && calleeEffectOn(f, i) {
				emit(call, "published %s passed to %s, which is not certified read-only", o.Name(), calleeName(f, call))
			}
		}
	})
}

// calleeName renders a callee for messages.
func calleeName(f *types.Func, call *ast.CallExpr) string {
	if f != nil {
		return funcKey(f)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return "callee"
}

// pointerish reports whether a value of e's type can carry shared mutable
// memory (pointers, slices, maps, chans, interfaces, funcs, or structs
// containing them). Scalars and strings cannot be written through.
func pointerish(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return true // unresolved: stay conservative
	}
	return typeCarriesPointer(tv.Type, 0)
}

func typeCarriesPointer(t types.Type, depth int) bool {
	if depth > 8 {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return typeCarriesPointer(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeCarriesPointer(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	}
	return true
}

// inspectShallow walks n's subtree calling fn on every call expression,
// without descending into nested function literals.
func inspectShallow(n ast.Node, fn func(*ast.CallExpr)) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}
