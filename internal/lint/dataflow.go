// Forward dataflow over the CFG: a worklist iteration to fixpoint with
// analysis-defined join and transfer. States are finite sets keyed by
// types.Object identity (published roots, chunk seal states, held locks), so
// termination follows from monotone joins over a finite lattice.
package lint

import "go/ast"

// flowState is one analysis's per-program-point fact set.
type flowState interface {
	// cloneState returns an independent copy the transfer function may
	// mutate freely.
	cloneState() flowState
	// joinFrom merges src into the receiver, reporting whether the
	// receiver changed. src is never mutated.
	joinFrom(src flowState) bool
}

// transferFn advances the state across one block node. It may mutate and
// must return the state (same or replacement).
type transferFn func(n ast.Node, st flowState) flowState

// forward iterates the CFG to fixpoint and returns each block's in-state
// (nil for blocks never reached from entry).
func forward(c *cfg, entry flowState, transfer transferFn) []flowState {
	in := make([]flowState, len(c.blocks))
	if len(c.blocks) == 0 {
		return in
	}
	in[c.entry.idx] = entry.cloneState()
	work := []*block{c.entry}
	onWork := make([]bool, len(c.blocks))
	onWork[c.entry.idx] = true
	for iter := 0; len(work) > 0; iter++ {
		if iter > 64*len(c.blocks)+1024 {
			// Safety valve: a non-monotone transfer would loop forever;
			// bail with whatever states have settled.
			break
		}
		b := work[0]
		work = work[1:]
		onWork[b.idx] = false
		st := in[b.idx].cloneState()
		for _, n := range b.nodes {
			st = transfer(n, st)
		}
		for _, s := range b.succs {
			if in[s.idx] == nil {
				in[s.idx] = st.cloneState()
			} else if !in[s.idx].joinFrom(st) {
				continue
			}
			if !onWork[s.idx] {
				onWork[s.idx] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// blockOutState replays the transfer over one block from its in-state,
// returning the out-state — used by reporting passes that need the state at
// a block's exit (e.g. locks still held at a return).
func blockOutState(b *block, in flowState, transfer transferFn) flowState {
	st := in.cloneState()
	for _, n := range b.nodes {
		st = transfer(n, st)
	}
	return st
}
