// ChunkFreeze: flow-sensitive enforcement of the storage seal contract —
// chunks are writable between allocation and their freeze call, and frozen
// views are never written. Abstract state per variable: unknown (untracked),
// mutable (freshly allocated this function), or frozen (result of
// Chunk.frozen / frozenChunks / SnapshotChunks / ScanChunks / Vec.Frozen, a
// read of tableView.frozen, or — outside internal/storage — any chunk-typed
// parameter, since consumers only ever receive frozen views). Joins take the
// maximum, so a value frozen on any path is frozen. Writes through a frozen
// root (field/index assigns, IncDec, append/copy into its backing,
// designated mutator methods like appendRow/AppendValue) are findings.
// Inside internal/storage, passing a frozen value to a module-internal
// callee not certified read-only by the summary table is also a finding;
// other packages only get the direct-write and known-mutator rules, because
// the seal contract's owner is storage.
package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ChunkFreeze proves frozen chunks are only written pre-freeze.
var ChunkFreeze = &Analyzer{
	Name: "chunk-freeze",
	Doc:  "frozen storage chunks are never written after their freeze call",
	Run:  runChunkFreeze,
}

type chunkState uint8

const (
	chunkUnknown chunkState = iota
	chunkMutable
	chunkFrozen
)

// frozenReturning maps callees to the result indices that are frozen views.
var frozenReturning = map[string][]int{
	"repro/internal/storage.(Chunk).frozen":             {0},
	"repro/internal/storage.frozenChunks":               {0},
	"repro/internal/storage.(TableData).SnapshotChunks": {0},
	"repro/internal/storage.(Store).ScanChunks":         {0},
	"repro/internal/sqltypes.(Vec).Frozen":              {0},
}

// freshReturning maps callees to result indices that are freshly allocated
// mutable chunks.
var freshReturning = map[string][]int{
	"repro/internal/storage.newChunk":    {0},
	"repro/internal/storage.buildChunks": {0},
}

func runChunkFreeze(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		forEachFuncBody(f, func(name string, ft *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) {
			out = append(out, chunkFreezeFunc(p, name, ft, recv, body)...)
		})
	}
	return out
}

// isChunkish reports whether t is a module-internal Chunk (or pointer/slice
// of it). Matching by name keeps fixture packages — which declare their own
// stand-in Chunk under a repro/... path — under the same rule.
func isChunkish(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Named:
			obj := u.Obj()
			return obj != nil && obj.Name() == "Chunk" && obj.Pkg() != nil && isModulePath(obj.Pkg().Path())
		case *types.Alias:
			t = types.Unalias(u)
		default:
			return false
		}
	}
}

// chunkFacts is the per-point variable→state map.
type chunkFacts struct {
	st map[types.Object]chunkState
}

func newChunkFacts() *chunkFacts { return &chunkFacts{st: map[types.Object]chunkState{}} }

func (s *chunkFacts) cloneState() flowState {
	n := newChunkFacts()
	for k, v := range s.st {
		n.st[k] = v
	}
	return n
}

func (s *chunkFacts) joinFrom(src flowState) bool {
	o := src.(*chunkFacts)
	changed := false
	for k, v := range o.st {
		if s.st[k] < v {
			s.st[k] = v
			changed = true
		}
	}
	return changed
}

func chunkFreezeFunc(p *Package, name string, ft *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) []Finding {
	// Cheap pre-scan: anything chunk-typed in here at all?
	touches := false
	ast.Inspect(body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			if tv, ok := p.Info.Types[e]; ok && tv.Type != nil && isChunkish(tv.Type) {
				touches = true
			}
		}
		return !touches
	})
	if !touches {
		return nil
	}

	aliases := buildAliases(p.Info, body)
	g := buildCFG(body)
	entry := newChunkFacts()
	// Outside storage, chunk-typed parameters (and receivers) are frozen
	// views — consumers only ever receive snapshots. Locals start unknown;
	// allocations and freeze calls set their states flow-sensitively.
	inStorage := p.Path == "repro/internal/storage"
	if !inStorage {
		seed := func(fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, fld := range fl.List {
				for _, id := range fld.Names {
					o := p.Info.Defs[id]
					if v, ok := o.(*types.Var); ok && isChunkish(v.Type()) {
						entry.st[o] = chunkFrozen
					}
				}
			}
		}
		seed(ft.Params)
		seed(recv)
	}

	transfer := func(emit func(n ast.Node, format string, args ...any)) transferFn {
		return func(n ast.Node, st flowState) flowState {
			s := st.(*chunkFacts)
			if emit != nil {
				checkFrozenWrites(p, aliases, s, n, inStorage, emit)
			}
			applyChunkTransfer(p, s, n)
			return s
		}
	}

	in := forward(g, entry, transfer(nil))
	var out []Finding
	emit := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:     p.Fset.Position(n.Pos()),
			Message: name + ": " + fmt.Sprintf(format, args...),
		})
	}
	for i, b := range g.blocks {
		if in[i] == nil {
			continue
		}
		blockOutState(b, in[i], transfer(emit))
	}
	return out
}

// exprChunkState classifies the state a single-value expression confers on
// its assignee.
func exprChunkState(p *Package, s *chunkFacts, e ast.Expr) chunkState {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := rootObj(p.Info, x); o != nil {
			return s.st[o]
		}
	case *ast.UnaryExpr:
		return exprChunkState(p, s, x.X)
	case *ast.CompositeLit:
		if tv, ok := p.Info.Types[x]; ok && tv.Type != nil && isChunkish(tv.Type) {
			return chunkMutable
		}
	case *ast.SelectorExpr:
		// A read of tableView.frozen (or any field literally named
		// "frozen" on a module-internal type) yields a frozen view.
		if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.FieldVal &&
			x.Sel.Name == "frozen" && isModulePath(pkgPathOfType(sel.Recv())) {
			return chunkFrozen
		}
	case *ast.CallExpr:
		if isBuiltin(p.Info, x, "new") || isBuiltin(p.Info, x, "make") {
			return chunkMutable
		}
		if f := calleeOf(p.Info, x); f != nil {
			key := funcKey(f)
			if idx, ok := frozenReturning[key]; ok && contains(idx, 0) {
				return chunkFrozen
			}
			if idx, ok := freshReturning[key]; ok && contains(idx, 0) {
				return chunkMutable
			}
		}
	}
	return chunkUnknown
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func pkgPathOfType(t types.Type) string {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}

// applyChunkTransfer updates variable states across one node.
func applyChunkTransfer(p *Package, s *chunkFacts, n ast.Node) {
	asn, ok := n.(*ast.AssignStmt)
	if !ok {
		return
	}
	setBare := func(l ast.Expr, st chunkState) {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			return
		}
		o := rootObj(p.Info, id)
		if o == nil {
			return
		}
		if st == chunkUnknown {
			delete(s.st, o)
		} else {
			s.st[o] = st
		}
	}
	if len(asn.Rhs) == 1 && len(asn.Lhs) > 1 {
		// Tuple assign from one call: per-result classification.
		if call, ok := ast.Unparen(asn.Rhs[0]).(*ast.CallExpr); ok {
			var frozenIdx, freshIdx []int
			if f := calleeOf(p.Info, call); f != nil {
				frozenIdx = frozenReturning[funcKey(f)]
				freshIdx = freshReturning[funcKey(f)]
			}
			for i, l := range asn.Lhs {
				switch {
				case contains(frozenIdx, i):
					setBare(l, chunkFrozen)
				case contains(freshIdx, i):
					setBare(l, chunkMutable)
				default:
					setBare(l, chunkUnknown)
				}
			}
		}
		return
	}
	if len(asn.Lhs) == len(asn.Rhs) {
		for i := range asn.Lhs {
			setBare(asn.Lhs[i], exprChunkState(p, s, asn.Rhs[i]))
		}
	}
}

// effectiveState is the class-max state of a root's alias class.
func effectiveState(s *chunkFacts, aliases *aliasSets, o types.Object) chunkState {
	st := s.st[o]
	for _, m := range aliases.classOf(o) {
		if s.st[m] > st {
			st = s.st[m]
		}
	}
	return st
}

// checkFrozenWrites reports writes through frozen roots at one node.
func checkFrozenWrites(p *Package, aliases *aliasSets, s *chunkFacts, n ast.Node, strictCalls bool, emit func(ast.Node, string, ...any)) {
	frozenRoot := func(e ast.Expr) (types.Object, bool) {
		o := rootObj(p.Info, e)
		if o == nil {
			return nil, false
		}
		return o, effectiveState(s, aliases, o) == chunkFrozen
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, l := range n.Lhs {
			if _, bare := ast.Unparen(l).(*ast.Ident); bare {
				continue
			}
			if o, fr := frozenRoot(l); fr {
				emit(l, "write through %s after freeze", o.Name())
			}
		}
	case *ast.IncDecStmt:
		if _, bare := ast.Unparen(n.X).(*ast.Ident); !bare {
			if o, fr := frozenRoot(n.X); fr {
				emit(n, "write through %s after freeze", o.Name())
			}
		}
	}
	inspectShallow(n, func(call *ast.CallExpr) {
		switch {
		case isBuiltin(p.Info, call, "append"), isBuiltin(p.Info, call, "copy"):
			if len(call.Args) > 0 {
				if o, fr := frozenRoot(call.Args[0]); fr {
					emit(call, "append/copy into frozen %s", o.Name())
				}
			}
			return
		case isBuiltin(p.Info, call, "delete"), isBuiltin(p.Info, call, "clear"):
			if len(call.Args) > 0 {
				if o, fr := frozenRoot(call.Args[0]); fr {
					emit(call, "mutation of frozen %s", o.Name())
				}
			}
			return
		}
		if harmlessCall(p.Info, call) {
			return
		}
		f := calleeOf(p.Info, call)
		known := false
		if f != nil {
			_, known = calleeFacts[funcKey(f)]
			if !known {
				pkg := ""
				if f.Pkg() != nil {
					pkg = f.Pkg().Path()
				}
				// Stdlib defaults are known-enough.
				known = !isModulePath(pkg)
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if selInfo, ok := p.Info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
				if o, fr := frozenRoot(sel.X); fr {
					if calleeEffectOn(f, -1) && (known || strictCalls) {
						emit(call, "frozen %s passed as receiver to %s, which may mutate it", o.Name(), calleeName(f, call))
					}
				}
			}
		}
		for i, arg := range call.Args {
			tv, ok := p.Info.Types[arg]
			if !ok || tv.Type == nil || !isChunkish(tv.Type) {
				continue
			}
			if o, fr := frozenRoot(arg); fr && calleeEffectOn(f, i) && (known || strictCalls) {
				emit(call, "frozen %s passed to %s, which is not certified read-only", o.Name(), calleeName(f, call))
			}
		}
	})
}
