// Control-flow graph construction over go/ast function bodies — stdlib only,
// no x/tools. Blocks hold statements (and branch-condition expressions) in
// execution order; edges cover if/for/range/switch/type-switch/select,
// labeled break/continue, goto, and return/panic exits. Deferred calls are
// collected per function: they run on every exit, including panic unwinds,
// which is what lets the unlock-on-all-paths rule credit `defer mu.Unlock()`.
//
// Granularity is the statement: short-circuit && / || operands are not split
// into separate blocks, and function literals are not inlined — each FuncLit
// body is analyzed as its own function. Both limits are documented in
// DESIGN.md §16.
package lint

import (
	"go/ast"
	"go/token"
)

// block is one straight-line run of statements.
type block struct {
	idx   int
	nodes []ast.Node // Stmt and branch-condition Expr nodes in order
	succs []*block

	// ret marks a block ended by an explicit return; exit marks any block
	// from which the function leaves (return, panic, or falling off the
	// end). last is the node position to report exit findings at.
	ret  bool
	exit bool
	last ast.Node
}

// cfg is one function body's graph plus its deferred statements.
type cfg struct {
	blocks []*block
	entry  *block
	defers []*ast.DeferStmt
}

type loopTargets struct {
	label string
	brk   *block // break target
	cont  *block // continue target (nil for switch/select)
}

type cfgBuilder struct {
	c            *cfg
	loops        []loopTargets
	labels       map[string]*block // goto / labeled-statement targets
	pendingLabel string            // label to stamp on the next loop frame
	gotos        []struct {
		from  *block
		label string
	}
}

// takeLabel consumes the pending label for the loop frame being pushed.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{c: &cfg{}, labels: map[string]*block{}}
	entry := b.newBlock()
	b.c.entry = entry
	last := b.stmts(body.List, entry)
	if last != nil {
		// Falling off the end is an implicit return.
		last.exit = true
		if last.last == nil {
			last.last = body
		}
	}
	// Resolve pending gotos.
	for _, g := range b.gotos {
		if t, ok := b.labels[g.label]; ok {
			b.edge(g.from, t)
		}
	}
	return b.c
}

func (b *cfgBuilder) newBlock() *block {
	bl := &block{idx: len(b.c.blocks)}
	b.c.blocks = append(b.c.blocks, bl)
	return bl
}

func (b *cfgBuilder) edge(from, to *block) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// stmts threads the statement list through cur, returning the live block at
// the end (nil when control cannot fall through).
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *block) *block {
	for _, s := range list {
		cur = b.stmt(s, cur)
		if cur == nil {
			// Unreachable continuation: park remaining statements in a
			// predecessor-less block so they still get a (bottom-state)
			// pass and malformed code does not crash the builder.
			cur = b.newBlock()
		}
	}
	return cur
}

// stmt adds one statement to cur, returning the fall-through block (nil if
// control never falls through, e.g. after return).
func (b *cfgBuilder) stmt(s ast.Stmt, cur *block) *block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, cur)

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		cur.ret, cur.exit, cur.last = true, true, s
		return nil

	case *ast.BranchStmt:
		cur.nodes = append(cur.nodes, s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findLoop(s.Label, true); t != nil {
				b.edge(cur, t)
			}
		case token.CONTINUE:
			if t := b.findLoop(s.Label, false); t != nil {
				b.edge(cur, t)
			}
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, struct {
					from  *block
					label string
				}{cur, s.Label.Name})
			}
		case token.FALLTHROUGH:
			// Handled by the switch builder via the fall list.
		}
		return nil

	case *ast.LabeledStmt:
		// Start a fresh block so goto and labeled break/continue have a
		// stable target.
		target := b.newBlock()
		b.edge(cur, target)
		b.labels[s.Label.Name] = target
		return b.labeledStmt(s.Label.Name, s.Stmt, target)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB)
		thenEnd := b.stmts(s.Body.List, thenB)
		join := b.newBlock()
		b.edge(thenEnd, join)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			b.edge(b.stmt(s.Else, elseB), join)
		} else {
			b.edge(cur, join)
		}
		if len(join.succs) == 0 && thenEnd == nil && s.Else != nil {
			// Both arms terminated; join may be dead but harmless.
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		body := b.newBlock()
		b.edge(head, body)
		post := b.newBlock()
		if s.Post != nil {
			post.nodes = append(post.nodes, s.Post)
		}
		b.edge(post, head)
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after) // cond may be false on entry
		}
		b.loops = append(b.loops, loopTargets{label: b.takeLabel(), brk: after, cont: post})
		bodyEnd := b.stmts(s.Body.List, body)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(bodyEnd, post)
		if s.Cond == nil && len(after.succs) == 0 {
			// for{} with no breaks: after is unreachable; keep it as the
			// fall-through so downstream code stays simple.
		}
		return after

	case *ast.RangeStmt:
		// Only the ranged expression enters the graph; the per-iteration
		// key/value bind is handled flow-insensitively by the alias pass.
		head := b.newBlock()
		head.nodes = append(head.nodes, s.X)
		b.edge(cur, head)
		body := b.newBlock()
		b.edge(head, body)
		after := b.newBlock()
		b.edge(head, after) // zero iterations
		b.loops = append(b.loops, loopTargets{label: b.takeLabel(), brk: after, cont: head})
		bodyEnd := b.stmts(s.Body.List, body)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(bodyEnd, head)
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		if s.Tag != nil {
			cur.nodes = append(cur.nodes, s.Tag)
		}
		return b.switchClauses(cur, s.Body.List, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Assign)
		return b.switchClauses(cur, s.Body.List, false)

	case *ast.SelectStmt:
		return b.switchClauses(cur, s.Body.List, true)

	case *ast.DeferStmt:
		cur.nodes = append(cur.nodes, s)
		b.c.defers = append(b.c.defers, s)
		return cur

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, s)
		if isPanicCall(s.X) {
			cur.exit, cur.last = true, s
			return nil
		}
		return cur

	default:
		// Assign, IncDec, Send, Go, Decl, Empty: straight-line.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// labeledStmt handles `L: stmt` by marking L pending so the loop or switch
// frame stmt pushes picks it up, resolving `break L` / `continue L`.
func (b *cfgBuilder) labeledStmt(label string, s ast.Stmt, cur *block) *block {
	b.pendingLabel = label
	out := b.stmt(s, cur)
	b.pendingLabel = ""
	return out
}

// findLoop resolves a break/continue target. isBreak selects the break
// target; otherwise the continue target (skipping switch/select frames).
func (b *cfgBuilder) findLoop(label *ast.Ident, isBreak bool) *block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lt := b.loops[i]
		if label != nil && lt.label != label.Name {
			continue
		}
		if isBreak {
			return lt.brk
		}
		if lt.cont != nil {
			return lt.cont
		}
	}
	return nil
}

// switchClauses wires case/comm clause bodies: every clause branches from
// cur and joins after; fallthrough chains into the next clause body. A
// missing default adds a direct cur→join edge.
func (b *cfgBuilder) switchClauses(cur *block, clauses []ast.Stmt, isSelect bool) *block {
	join := b.newBlock()
	swLabel := b.takeLabel()
	hasDefault := false
	// Build clause entry blocks first so fallthrough can target the next.
	entries := make([]*block, len(clauses))
	bodies := make([][]ast.Stmt, len(clauses))
	for i, cl := range clauses {
		entries[i] = b.newBlock()
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				cur.nodes = append(cur.nodes, e)
			}
			bodies[i] = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				entries[i].nodes = append(entries[i].nodes, cl.Comm)
			}
			bodies[i] = cl.Body
		}
		b.edge(cur, entries[i])
	}
	for i := range clauses {
		b.loops = append(b.loops, loopTargets{label: swLabel, brk: join})
		start := entries[i]
		var body []ast.Stmt
		if isSelect {
			body = bodies[i]
		} else {
			// Split a trailing fallthrough off the body.
			body = bodies[i]
			if n := len(body); n > 0 {
				if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					body = body[:n-1]
					end := b.stmts(body, start)
					if end != nil && i+1 < len(entries) {
						b.edge(end, entries[i+1])
					}
					b.loops = b.loops[:len(b.loops)-1]
					continue
				}
			}
		}
		end := b.stmts(body, start)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(end, join)
	}
	if !hasDefault {
		b.edge(cur, join)
	}
	return join
}

// isPanicCall reports whether e is a direct call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
