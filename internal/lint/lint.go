// Package lint is a stdlib-only static-analysis harness (go/parser + go/ast;
// no go/packages, no go/analysis) enforcing the repo's architectural
// invariants: determinism of the planning packages, no new callers of
// deprecated APIs, context-first entry points, nil-receiver-safe observers,
// and storage mutex discipline. The cmd/astlint CLI runs every analyzer over
// the module and exits non-zero on findings; the analyzers are data, so tests
// seed violations through ParseSource and assert each one fires.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// File is one parsed source file within its package.
type File struct {
	Name string // file path as parsed
	AST  *ast.File
	Test bool // *_test.go
}

// Package is the unit analyzers see: every file of one directory, with the
// directory's import path resolved against the module path.
type Package struct {
	Path  string // import path, e.g. "repro/internal/core"
	Fset  *token.FileSet
	Files []*File
}

// Analyzer is one named rule set. Run inspects a package and reports
// findings; the runner stamps the analyzer name onto each.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Finding
}

// Run applies the analyzers to the packages and returns all findings in
// deterministic (file, line, analyzer) order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, p := range pkgs {
		for _, a := range analyzers {
			for _, f := range a.Run(p) {
				f.Analyzer = a.Name
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		fi, fj := out[i], out[j]
		if fi.Pos.Filename != fj.Pos.Filename {
			return fi.Pos.Filename < fj.Pos.Filename
		}
		if fi.Pos.Line != fj.Pos.Line {
			return fi.Pos.Line < fj.Pos.Line
		}
		return fi.Analyzer < fj.Analyzer
	})
	return out
}

// LoadModule parses every Go package under root (the directory containing
// go.mod), skipping testdata, vendor, and hidden directories. Import paths
// are derived from the module path declared in go.mod.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	byDir := map[string]*Package{}
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		p := byDir[dir]
		if p == nil {
			rel, rerr := filepath.Rel(root, dir)
			if rerr != nil {
				return rerr
			}
			ipath := modPath
			if rel != "." {
				ipath = modPath + "/" + filepath.ToSlash(rel)
			}
			p = &Package{Path: ipath, Fset: token.NewFileSet()}
			byDir[dir] = p
		}
		af, perr := parser.ParseFile(p.Fset, path, nil, parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("lint: parsing %s: %w", path, perr)
		}
		p.Files = append(p.Files, &File{
			Name: path,
			AST:  af,
			Test: strings.HasSuffix(path, "_test.go"),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(byDir))
	for _, p := range byDir {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// ParseSource builds a single-file package from source text — the seam the
// per-analyzer tests use to seed violations.
func ParseSource(importPath, filename, src string) (*Package, error) {
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path: importPath,
		Fset: fset,
		Files: []*File{{
			Name: filename,
			AST:  af,
			Test: strings.HasSuffix(filename, "_test.go"),
		}},
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// importName returns the local name an import spec binds, resolving default
// names from the import path's last element.
func importName(s *ast.ImportSpec) string {
	if s.Name != nil {
		return s.Name.Name
	}
	path := strings.Trim(s.Path.Value, `"`)
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// importPathOf returns the unquoted import path.
func importPathOf(s *ast.ImportSpec) string {
	return strings.Trim(s.Path.Value, `"`)
}
