// Package lint is a stdlib-only static-analysis harness (go/parser, go/ast,
// and go/types via the source importer; no go/packages, no go/analysis, no
// golang.org/x/tools) enforcing the repo's architectural invariants. The
// syntactic analyzers police determinism of the planning packages, deprecated
// APIs, context-first entry points, and nil-receiver-safe observers; the
// flow-sensitive suite (publish-freeze, chunk-freeze, unlock-paths,
// mutex-discipline) builds a control-flow graph per function and runs forward
// dataflow over it to verify the lock-free serving path's publish/freeze
// discipline — see DESIGN.md §16 for the invariant catalogue and the engine's
// limits. The cmd/astlint CLI runs every analyzer over the module and exits
// non-zero on unsuppressed findings; //lint:ignore <rule> <reason> suppresses
// one finding and is counted, never silent. The analyzers are data, so tests
// seed violations through ParseSource and assert each one fires.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// File is one parsed source file within its package.
type File struct {
	Name string // file path as parsed
	AST  *ast.File
	Test bool // *_test.go
}

// Package is the unit analyzers see: every file of one directory sharing one
// package clause, with the directory's import path resolved against the
// module path. A directory with an external test package (package foo_test)
// yields two Packages with the same Path and different Names.
type Package struct {
	Path  string // import path, e.g. "repro/internal/core"
	Name  string // package clause name, e.g. "core" or "core_test"
	Fset  *token.FileSet
	Files []*File

	// Filled by TypeCheck. Types/Info may be nil (or partial) when the
	// package failed to type-check; typed analyzers degrade to silence
	// rather than report on incomplete information.
	Types    *types.Package
	Info     *types.Info
	TypeErrs []error
}

// Analyzer is one named rule set. Run inspects a package and reports
// findings; the runner stamps the analyzer name onto each.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Finding
}

// Run applies the analyzers to the packages and returns the unsuppressed
// findings in deterministic (file, line, analyzer) order. Use RunDetailed to
// also see what //lint:ignore comments silenced.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	out, _ := RunDetailed(pkgs, analyzers)
	return out
}

// LoadModule parses and type-checks every Go package under root (the
// directory containing go.mod), skipping testdata, vendor, and hidden
// directories. Import paths are derived from the module path declared in
// go.mod. Files sharing a directory but not a package clause (external
// foo_test packages) become separate Packages with the same Path.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	byKey := map[string]*Package{}
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		clause, perr := parser.ParseFile(token.NewFileSet(), path, nil, parser.PackageClauseOnly)
		if perr != nil {
			return fmt.Errorf("lint: parsing %s: %w", path, perr)
		}
		key := dir + "\x00" + clause.Name.Name
		p := byKey[key]
		if p == nil {
			rel, rerr := filepath.Rel(root, dir)
			if rerr != nil {
				return rerr
			}
			ipath := modPath
			if rel != "." {
				ipath = modPath + "/" + filepath.ToSlash(rel)
			}
			p = &Package{Path: ipath, Name: clause.Name.Name, Fset: token.NewFileSet()}
			byKey[key] = p
		}
		af, perr := parser.ParseFile(p.Fset, path, nil, parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("lint: parsing %s: %w", path, perr)
		}
		p.Files = append(p.Files, &File{
			Name: path,
			AST:  af,
			Test: strings.HasSuffix(path, "_test.go"),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(byKey))
	for _, p := range byKey {
		sort.Slice(p.Files, func(i, j int) bool { return p.Files[i].Name < p.Files[j].Name })
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool {
		if pkgs[i].Path != pkgs[j].Path {
			return pkgs[i].Path < pkgs[j].Path
		}
		return pkgs[i].Name < pkgs[j].Name
	})
	typeCheckModule(modPath, pkgs)
	return pkgs, nil
}

// ParseSource builds and type-checks a single-file package from source text —
// the seam the per-analyzer tests use to seed violations. The fixture may
// claim any import path (e.g. "repro/internal/storage") so typed rules keyed
// on (package path, type name) match against locally declared stand-in types;
// stdlib imports resolve for real.
func ParseSource(importPath, filename, src string) (*Package, error) {
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	p := &Package{
		Path: importPath,
		Name: af.Name.Name,
		Fset: fset,
		Files: []*File{{
			Name: filename,
			AST:  af,
			Test: strings.HasSuffix(filename, "_test.go"),
		}},
	}
	typeCheckPackage(p, nil)
	return p, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// importName returns the local name an import spec binds, resolving default
// names from the import path's last element.
func importName(s *ast.ImportSpec) string {
	if s.Name != nil {
		return s.Name.Name
	}
	path := strings.Trim(s.Path.Value, `"`)
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// importPathOf returns the unquoted import path.
func importPathOf(s *ast.ImportSpec) string {
	return strings.Trim(s.Path.Value, `"`)
}
