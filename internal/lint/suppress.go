// //lint:ignore suppression comments. A finding is suppressed when the line
// it is reported on — or the line directly above it — carries a comment of
// the form:
//
//	//lint:ignore <rule> <reason>
//
// naming the finding's analyzer. The reason is mandatory: a bare ignore is
// itself a finding (rule "lint-ignore"), and suppressed findings are
// returned separately so cmd/astlint can count and print them — suppressions
// never disappear silently.
package lint

import (
	"sort"
	"strings"
)

// Suppression is one finding silenced by a //lint:ignore comment.
type Suppression struct {
	Finding Finding
	Reason  string
}

// suppressKey identifies a (file, line, rule) suppression site.
type suppressKey struct {
	file string
	line int
	rule string
}

// collectSuppressions scans a package's comments for //lint:ignore
// directives. Malformed directives (missing rule or reason) are returned as
// findings.
func collectSuppressions(p *Package) (map[suppressKey]string, []Finding) {
	sites := map[suppressKey]string{}
	var bad []Finding
	for _, f := range p.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "lint-ignore",
						Message:  "malformed //lint:ignore: want \"//lint:ignore <rule> <reason>\"",
					})
					continue
				}
				rule := fields[0]
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), rule))
				sites[suppressKey{file: pos.Filename, line: pos.Line, rule: rule}] = reason
			}
		}
	}
	return sites, bad
}

// RunDetailed applies the analyzers and splits results into active findings
// and suppressed ones, both in deterministic order.
func RunDetailed(pkgs []*Package, analyzers []*Analyzer) ([]Finding, []Suppression) {
	var out []Finding
	var sup []Suppression
	for _, p := range pkgs {
		sites, bad := collectSuppressions(p)
		out = append(out, bad...)
		for _, a := range analyzers {
			for _, f := range a.Run(p) {
				f.Analyzer = a.Name
				reason, ok := sites[suppressKey{f.Pos.Filename, f.Pos.Line, a.Name}]
				if !ok {
					reason, ok = sites[suppressKey{f.Pos.Filename, f.Pos.Line - 1, a.Name}]
				}
				if ok {
					sup = append(sup, Suppression{Finding: f, Reason: reason})
					continue
				}
				out = append(out, f)
			}
		}
	}
	sortFindings(out)
	sort.Slice(sup, func(i, j int) bool { return findingLess(sup[i].Finding, sup[j].Finding) })
	return out, sup
}

func findingLess(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	return a.Analyzer < b.Analyzer
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool { return findingLess(fs[i], fs[j]) })
}
