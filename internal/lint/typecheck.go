// Type-checking for the lint harness. The module is checked with go/types
// using only the standard library: stdlib imports resolve through the source
// importer (importer.ForCompiler "source", which type-checks $GOROOT/src and
// caches the result), and module-internal imports resolve from packages
// checked earlier in topological order. Type errors are collected, never
// fatal — typed analyzers consult Package.Info and stay silent where
// resolution failed, so a half-broken tree still gets the syntactic rules.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

var (
	stdImporterOnce sync.Once
	stdImporter     types.Importer
)

// stdlibImporter returns the shared source importer for standard-library
// packages. It keeps its own FileSet: stdlib positions never surface in
// findings, and sharing one importer amortizes the (expensive) from-source
// check of sync, sync/atomic, fmt, etc. across packages and tests.
func stdlibImporter() types.Importer {
	stdImporterOnce.Do(func() {
		stdImporter = importer.ForCompiler(token.NewFileSet(), "source", nil)
	})
	return stdImporter
}

// modImporter resolves module-internal paths from already-checked packages
// and everything else through the stdlib source importer.
type modImporter struct {
	modPath string
	done    map[string]*types.Package
}

func (m *modImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.done[path]; ok {
		return p, nil
	}
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		return nil, fmt.Errorf("lint: module package %s not yet type-checked (import cycle?)", path)
	}
	return stdlibImporter().Import(path)
}

// newTypeInfo allocates the Info maps typed analyzers need.
func newTypeInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// typeCheckPackage checks one package against the given importer (nil means
// stdlib-only, the ParseSource fixture path). Errors are recorded on the
// package; Info is filled as far as resolution got.
func typeCheckPackage(p *Package, imp types.Importer) {
	if imp == nil {
		imp = stdlibImporter()
	}
	info := newTypeInfo()
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			p.TypeErrs = append(p.TypeErrs, err)
		},
	}
	files := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		files = append(files, f.AST)
	}
	// Check never returns a useful package on hard failure; the Error hook
	// already captured everything we want to surface.
	tp, _ := conf.Check(p.Path, p.Fset, files, info)
	p.Types = tp
	p.Info = info
}

// typeCheckModule type-checks every package, ordering module-internal
// dependencies first. External test packages (Name foo_test) are checked
// after their base package and may import it. Packages stuck in an import
// cycle (should not happen) are checked last with unresolved imports
// recorded as type errors.
func typeCheckModule(modPath string, pkgs []*Package) {
	isMod := func(path string) bool {
		return path == modPath || strings.HasPrefix(path, modPath+"/")
	}
	// A package is keyed by import path; the external test variant gets a
	// synthetic key so both can coexist in the dependency graph.
	keyOf := func(p *Package) string {
		if strings.HasSuffix(p.Name, "_test") {
			return p.Path + "_test"
		}
		return p.Path
	}
	byKey := map[string]*Package{}
	for _, p := range pkgs {
		byKey[keyOf(p)] = p
	}
	deps := map[string][]string{}
	for _, p := range pkgs {
		k := keyOf(p)
		seen := map[string]bool{}
		for _, f := range p.Files {
			for _, imp := range f.AST.Imports {
				ip := importPathOf(imp)
				if isMod(ip) && byKey[ip] != nil && ip != p.Path && !seen[ip] {
					seen[ip] = true
					deps[k] = append(deps[k], ip)
				}
			}
		}
		if strings.HasSuffix(p.Name, "_test") {
			if _, ok := byKey[p.Path]; ok && !seen[p.Path] {
				deps[k] = append(deps[k], p.Path)
			}
		}
	}
	done := map[string]*types.Package{}
	imp := &modImporter{modPath: modPath, done: done}
	checked := map[string]bool{}
	var order []*Package
	// Kahn-style peeling in deterministic order.
	for len(order) < len(pkgs) {
		progress := false
		for _, p := range pkgs {
			k := keyOf(p)
			if checked[k] {
				continue
			}
			ready := true
			for _, d := range deps[k] {
				if !checked[d] {
					ready = false
					break
				}
			}
			if ready {
				checked[k] = true
				order = append(order, p)
				progress = true
			}
		}
		if !progress {
			// Import cycle: append the rest in sorted order; their
			// module imports will surface as type errors.
			for _, p := range pkgs {
				if !checked[keyOf(p)] {
					checked[keyOf(p)] = true
					order = append(order, p)
				}
			}
		}
	}
	for _, p := range order {
		typeCheckPackage(p, imp)
		if p.Types != nil && !strings.HasSuffix(p.Name, "_test") {
			// In-package test files are part of the same check; only
			// the base result is importable.
			if _, ok := done[p.Path]; !ok {
				done[p.Path] = p.Types
			}
		}
	}
}
