// Package chaos proves the resilience contract end to end: with faults
// injected at every registered site — materialized-table scan errors,
// refresh panics, match panics, slow scans under a timeout — every
// paper-style query still returns base-table-identical results or a typed
// budget error. Never a wrong answer, never an unrecovered panic.
package chaos

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/astdb"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/maintain"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Paper-style workload: two summary tables and queries routed through them.
var chaosASTs = []catalog.ASTDef{
	{Name: "cast1", SQL: `select faid, flid, year(date) as year, count(*) as cnt
		from trans group by faid, flid, year(date)`},
	{Name: "cast2", SQL: `select state, year(date) as y, count(*) as c, sum(qty * price) as rev
		from trans, loc where flid = lid group by state, year(date)`},
}

var chaosQueries = []string{
	`select flid, count(*) as cnt from trans where year(date) > 1990 group by flid`,
	`select faid, count(*) as cnt from trans group by faid`,
	`select state, sum(qty * price) as rev from trans, loc where flid = lid group by state`,
	`select year(date) as y, count(*) as c from trans group by year(date)`,
}

type chaosEnv struct {
	cat    *catalog.Catalog
	store  *storage.Store
	engine *exec.Engine
	rw     *core.Rewriter
	m      *maintain.Maintainer
	asts   []*core.CompiledAST
	plans  []*maintain.Plan
}

func newChaosEnv(t testing.TB) *chaosEnv {
	return newChaosEnvOpts(t, core.Options{})
}

func newChaosEnvOpts(t testing.TB, opts core.Options) *chaosEnv {
	t.Helper()
	cat := catalog.New()
	workload.Schema(cat)
	store := storage.NewStore()
	workload.Load(cat, store, workload.StarConfig{NumTrans: 1200, Seed: 21})
	e := &chaosEnv{
		cat:    cat,
		store:  store,
		engine: exec.NewEngine(store),
		rw:     core.NewRewriter(cat, opts),
		m:      maintain.New(store).WithCatalog(cat),
	}
	for _, def := range chaosASTs {
		cat.MustRegisterAST(def)
	}
	asts, err := e.rw.CompileAll()
	if err != nil {
		t.Fatalf("compile ASTs: %v", err)
	}
	e.asts = asts
	for _, ca := range asts {
		res, err := e.engine.Run(ca.Graph)
		if err != nil {
			t.Fatalf("materialize %s: %v", ca.Def.Name, err)
		}
		e.store.Put(ca.Table, res.Rows)
		e.plans = append(e.plans, e.m.Analyze(ca))
	}
	return e
}

// baselines runs every chaos query directly on base tables (no ASTs, no
// faults must be armed on base scans when calling this).
func (e *chaosEnv) baselines(t testing.TB) []*exec.Result {
	t.Helper()
	out := make([]*exec.Result, len(chaosQueries))
	for i, sql := range chaosQueries {
		g, err := qgm.BuildSQL(sql, e.cat)
		if err != nil {
			t.Fatalf("build %q: %v", sql, err)
		}
		r, err := e.engine.Run(g)
		if err != nil {
			t.Fatalf("baseline %q: %v", sql, err)
		}
		out[i] = r
	}
	return out
}

// db wraps the env's components in the astdb facade (the resilience contract's
// home since internal/resilient was retired) under the given limits.
func (e *chaosEnv) db(lim exec.Config) *astdb.Engine {
	return astdb.Wrap(e.rw, e.engine, e.asts, astdb.WithLimits(lim))
}

// askAll answers every chaos query through the resilient facade and checks
// each against its baseline. A typed budget error is acceptable when
// allowBudgetErr; anything else fails the test.
func (e *chaosEnv) askAll(t *testing.T, want []*exec.Result, lim exec.Config, allowBudgetErr bool) []*astdb.Answer {
	t.Helper()
	db := e.db(lim)
	out := make([]*astdb.Answer, len(chaosQueries))
	for i, sql := range chaosQueries {
		g, err := qgm.BuildSQL(sql, e.cat)
		if err != nil {
			t.Fatalf("build %q: %v", sql, err)
		}
		ans, err := db.QueryGraph(context.Background(), g)
		if err != nil {
			if allowBudgetErr && (errors.Is(err, exec.ErrBudgetExceeded) || errors.Is(err, exec.ErrCanceled)) {
				continue
			}
			t.Fatalf("query %q failed: %v", sql, err)
		}
		if diff := exec.EqualResults(want[i], ans.Result); diff != "" {
			t.Fatalf("WRONG ANSWER for %q: %s", sql, diff)
		}
		out[i] = ans
	}
	return out
}

func randInserts(e *chaosEnv, rng *rand.Rand, n int) [][]sqltypes.Value {
	nextTid := int64(e.store.MustTable("trans").Cardinality() + 1000000)
	accts := e.store.MustTable("acct").Cardinality()
	locs := e.store.MustTable("loc").Cardinality()
	pgs := e.store.MustTable("pgroup").Cardinality()
	var out [][]sqltypes.Value
	for i := 0; i < n; i++ {
		out = append(out, []sqltypes.Value{
			sqltypes.NewInt(nextTid + int64(i)),
			sqltypes.NewInt(int64(1 + rng.Intn(accts))),
			sqltypes.NewInt(int64(1 + rng.Intn(pgs))),
			sqltypes.NewInt(int64(1 + rng.Intn(locs))),
			sqltypes.NewDate(1990+rng.Intn(3), 1+rng.Intn(12), 1+rng.Intn(28)),
			sqltypes.NewInt(int64(1 + rng.Intn(5))),
			sqltypes.NewFloat(float64(1+rng.Intn(5000)) / 10),
			sqltypes.NewFloat(float64(rng.Intn(30)) / 100),
		})
	}
	return out
}

// TestControlRewritesHappen guards the suite's premise: with no faults, the
// summary tables actually serve some of the chaos queries (otherwise the
// fault scenarios would vacuously pass on base-only plans).
func TestControlRewritesHappen(t *testing.T) {
	e := newChaosEnv(t)
	want := e.baselines(t)
	answers := e.askAll(t, want, exec.Config{}, false)
	rewritten := 0
	for _, a := range answers {
		if a != nil && a.Rewrite != nil {
			rewritten++
		}
	}
	if rewritten < 3 {
		t.Fatalf("only %d/%d queries used a summary table; chaos coverage too weak", rewritten, len(chaosQueries))
	}
}

// TestControlUnderVerifyPlans repeats the control scenario with the deep
// static checker (internal/qgmcheck) gating every accepted rewrite: the same
// queries must still be served from the summary tables (sound plans pass
// verification), with identical answers and no recorded degradations.
func TestControlUnderVerifyPlans(t *testing.T) {
	e := newChaosEnvOpts(t, core.Options{VerifyPlans: true})
	want := e.baselines(t)
	answers := e.askAll(t, want, exec.Config{}, false)
	rewritten := 0
	for _, a := range answers {
		if a != nil && a.Rewrite != nil {
			rewritten++
		}
	}
	if rewritten < 3 {
		t.Fatalf("only %d/%d queries used a summary table under verification", rewritten, len(chaosQueries))
	}
	if degs := e.rw.Degradations(); len(degs) != 0 {
		t.Fatalf("verification degraded sound plans: %v", degs)
	}
}

// TestScanErrorOnMaterializedTable: reading any summary table fails; every
// query must fall back to base tables and stay correct.
func TestScanErrorOnMaterializedTable(t *testing.T) {
	e := newChaosEnv(t)
	want := e.baselines(t)

	faultinject.Enable(1)
	defer faultinject.Disable()
	for _, def := range chaosASTs {
		faultinject.Set("storage.scan:"+def.Name, faultinject.Err("storage.scan:"+def.Name))
	}

	answers := e.askAll(t, want, exec.Config{}, false)
	fellBack := 0
	for _, a := range answers {
		if a != nil && a.FellBack {
			fellBack++
		}
	}
	if fellBack == 0 {
		t.Fatal("no query exercised the execution fallback")
	}
	// The read failures marked the ASTs stale: later queries skip them
	// entirely rather than re-trying the broken scan.
	if e.cat.Usable("cast1", false) && e.cat.Usable("cast2", false) {
		t.Fatal("failed materialized reads did not mark any AST stale")
	}
}

// TestMatchPanic: the match machinery panics on every candidate; queries run
// on base plans, results identical.
func TestMatchPanic(t *testing.T) {
	e := newChaosEnv(t)
	want := e.baselines(t)

	faultinject.Enable(1)
	defer faultinject.Disable()
	faultinject.Set("core.match", faultinject.Fault{Panic: "chaos: match panic"})

	answers := e.askAll(t, want, exec.Config{}, false)
	for i, a := range answers {
		if a != nil && a.Rewrite != nil {
			t.Fatalf("query %d claimed a rewrite while matching panics", i)
		}
	}
	if len(e.rw.Degradations()) == 0 {
		t.Fatal("match panics were not recorded")
	}
}

// TestRefreshPanicLeavesStaleUnread: both refresh strategies panic during
// ApplyInsert; the base insert lands, the ASTs stay on their pre-insert
// contents and are marked stale, and — critically — no query reads them, so
// answers match the post-insert base tables.
func TestRefreshPanicLeavesStaleUnread(t *testing.T) {
	e := newChaosEnv(t)

	faultinject.Enable(1)
	defer faultinject.Disable()
	faultinject.Set("maintain.incremental", faultinject.Fault{Panic: "chaos: refresh panic"})
	faultinject.Set("maintain.full", faultinject.Fault{Panic: "chaos: refresh panic"})

	rows := randInserts(e, rand.New(rand.NewSource(31)), 80)
	stats, err := e.m.ApplyInsert(e.plans, "trans", rows)
	if err == nil {
		t.Fatal("expected refresh failures")
	}
	if len(stats) != len(e.plans) {
		t.Fatalf("stats incomplete: %d of %d", len(stats), len(e.plans))
	}
	for _, st := range stats {
		if st.Err == nil {
			t.Fatalf("per-AST error missing: %+v", st)
		}
	}

	// Baselines computed AFTER the insert: a stale AST would give smaller
	// counts, so any read of it is caught as a wrong answer.
	want := e.baselines(t)
	answers := e.askAll(t, want, exec.Config{}, false)
	for i, a := range answers {
		if a != nil && a.Rewrite != nil {
			t.Fatalf("query %d read a deliberately stale AST", i)
		}
	}

	// Recovery: refreshes succeed again (sites disarmed), ASTs serve queries.
	faultinject.Clear("maintain.incremental")
	faultinject.Clear("maintain.full")
	for _, p := range e.plans {
		if _, err := e.m.RefreshFull(p); err != nil {
			t.Fatalf("recovery refresh: %v", err)
		}
	}
	answers = e.askAll(t, want, exec.Config{}, false)
	rewritten := 0
	for _, a := range answers {
		if a != nil && a.Rewrite != nil {
			rewritten++
		}
	}
	if rewritten == 0 {
		t.Fatal("recovered ASTs never served a query")
	}
}

// TestSlowScanTimeout: a delayed base scan under a small timeout yields a
// typed cancellation error, not a hang and not a wrong answer.
func TestSlowScanTimeout(t *testing.T) {
	e := newChaosEnv(t)
	want := e.baselines(t)

	faultinject.Enable(1)
	defer faultinject.Disable()
	// Prefix site: delays every table scan, so neither a base plan nor a
	// summary-table plan can dodge the slowdown.
	faultinject.Set("storage.scan", faultinject.Fault{Delay: 150 * time.Millisecond})

	sawTyped := false
	db := e.db(exec.Config{Timeout: 20 * time.Millisecond})
	for i, sql := range chaosQueries {
		g, err := qgm.BuildSQL(sql, e.cat)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := db.QueryGraph(context.Background(), g)
		if err != nil {
			if !errors.Is(err, exec.ErrCanceled) && !errors.Is(err, exec.ErrBudgetExceeded) {
				t.Fatalf("query %q: untyped failure %v", sql, err)
			}
			sawTyped = true
			continue
		}
		if diff := exec.EqualResults(want[i], ans.Result); diff != "" {
			t.Fatalf("WRONG ANSWER for %q under timeout: %s", sql, diff)
		}
	}
	if !sawTyped {
		t.Fatal("no query hit the timeout; delay site apparently unwired")
	}
}

// TestRowBudget: a tiny row budget yields typed ErrBudgetExceeded through the
// resilient pipeline (no silent truncation).
func TestRowBudget(t *testing.T) {
	e := newChaosEnv(t)
	g, err := qgm.BuildSQL(chaosQueries[0], e.cat)
	if err != nil {
		t.Fatal(err)
	}
	db := astdb.Wrap(e.rw, e.engine, nil, astdb.WithLimits(exec.Config{MaxRows: 10}))
	_, err = db.QueryGraph(context.Background(), g)
	if !errors.Is(err, exec.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

// TestProbabilisticSweep flips every AST-side fault site on with 30%
// probability across repeated rounds of queries and maintenance. Whatever
// fires, answers must equal a base-table recomputation or fail with a typed
// budget error.
func TestProbabilisticSweep(t *testing.T) {
	e := newChaosEnv(t)

	faultinject.Enable(99)
	defer faultinject.Disable()
	for _, def := range chaosASTs {
		faultinject.Set("storage.scan:"+def.Name, faultinject.Fault{Err: errors.New("chaos scan"), Prob: 0.3})
	}
	faultinject.Set("core.match", faultinject.Fault{Panic: "chaos match", Prob: 0.3})
	faultinject.Set("maintain.incremental", faultinject.Fault{Panic: "chaos inc", Prob: 0.3})
	faultinject.Set("maintain.full", faultinject.Fault{Err: errors.New("chaos full"), Prob: 0.3})

	rng := rand.New(rand.NewSource(41))
	for round := 0; round < 6; round++ {
		// Maintenance under chaos: errors allowed, stats must be complete.
		stats, _ := e.m.ApplyInsert(e.plans, "trans", randInserts(e, rng, 30))
		if len(stats) != len(e.plans) {
			t.Fatalf("round %d: stats incomplete", round)
		}
		want := e.baselines(t)
		e.askAll(t, want, exec.Config{}, true)
		// Occasionally recover quarantined/stale ASTs the way an operator
		// would: keep retrying the full recompute until one succeeds.
		if round%2 == 1 {
			for _, p := range e.plans {
				for attempt := 0; attempt < 8; attempt++ {
					if _, err := e.m.RefreshFull(p); err == nil {
						break
					}
				}
			}
		}
	}
}
