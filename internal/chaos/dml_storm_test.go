package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/maintain"
	"repro/internal/parser"
	"repro/internal/qgm"
)

func mustDeleteDML(t *testing.T, e *chaosEnv, sql string) *qgm.DML {
	t.Helper()
	stmt, err := parser.ParseStatement(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	dml, err := qgm.BuildDelete(stmt.(*parser.DeleteStmt), e.cat)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return dml
}

func mustUpdateDML(t *testing.T, e *chaosEnv, sql string) *qgm.DML {
	t.Helper()
	stmt, err := parser.ParseStatement(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	dml, err := qgm.BuildUpdate(stmt.(*parser.UpdateStmt), e.cat)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return dml
}

// assertNeverFreshAndWrong is the PR's acceptance property: after any storm
// round, every AST is either fresh AND equal to a from-scratch recomputation
// of its definition, or explicitly marked stale/quarantined. A fresh AST with
// wrong contents is the one unreachable state.
func assertNeverFreshAndWrong(t *testing.T, e *chaosEnv, round int) {
	t.Helper()
	for _, ca := range e.asts {
		st := e.cat.Status(ca.Def.Name)
		if st.Stale || st.Quarantined {
			continue // honestly degraded: queries will not read it
		}
		want, err := e.engine.Run(ca.Graph)
		if err != nil {
			t.Fatalf("round %d: recompute %s: %v", round, ca.Def.Name, err)
		}
		got := e.store.MustTable(ca.Def.Name)
		if diff := exec.EqualResults(want, &exec.Result{Cols: want.Cols, Rows: got.Rows()}); diff != "" {
			t.Fatalf("round %d: %s is FRESH AND WRONG: %s", round, ca.Def.Name, diff)
		}
	}
}

// TestDMLChaosStorm drives mixed insert/delete/update rounds with faults
// armed at every DML maintenance site — delete/update delta evaluation,
// scoped recompute, insert delta, and the full-recompute fallback itself —
// asserting the never-fresh-and-wrong invariant after every round, and that
// clearing the faults plus one full recompute recovers every AST to fresh
// parity.
func TestDMLChaosStorm(t *testing.T) {
	e := newChaosEnv(t)

	faultinject.Enable(17)
	defer faultinject.Disable()
	faultinject.Set("maintain.delete", faultinject.Fault{Err: errors.New("chaos delete delta"), Prob: 0.35})
	faultinject.Set("maintain.update", faultinject.Fault{Panic: "chaos update delta", Prob: 0.35})
	faultinject.Set("maintain.scoped", faultinject.Fault{Err: errors.New("chaos scoped"), Prob: 0.35})
	faultinject.Set("maintain.incremental", faultinject.Fault{Panic: "chaos insert delta", Prob: 0.25})
	faultinject.Set("maintain.full", faultinject.Fault{Err: errors.New("chaos full"), Prob: 0.35})

	rng := rand.New(rand.NewSource(53))
	for round := 0; round < 10; round++ {
		var stats []maintain.Stats
		n := 1
		switch round % 3 {
		case 0:
			sql := fmt.Sprintf("delete from trans where qty = %d and flid <= %d", 1+rng.Intn(5), 10+rng.Intn(40))
			n, stats, _ = e.m.ApplyDelete(e.plans, mustDeleteDML(t, e, sql))
		case 1:
			sql := fmt.Sprintf("update trans set flid = %d where flid = %d", 1+rng.Intn(60), 1+rng.Intn(60))
			n, stats, _ = e.m.ApplyUpdate(e.plans, mustUpdateDML(t, e, sql))
		default:
			stats, _ = e.m.ApplyInsert(e.plans, "trans", randInserts(e, rng, 30))
		}
		// Failures are expected; incomplete accounting is not. Both chaos
		// ASTs read trans, so every round that touched rows must report on
		// both (a no-match DML legitimately reports nothing).
		if n > 0 && len(stats) != len(e.plans) {
			t.Fatalf("round %d: stats incomplete: %d of %d", round, len(stats), len(e.plans))
		}
		assertNeverFreshAndWrong(t, e, round)

		// Operator-style mid-storm recovery: retry full recomputes so later
		// rounds exercise the incremental path again, not just stale→full.
		if round%3 == 2 {
			for _, p := range e.plans {
				for attempt := 0; attempt < 8; attempt++ {
					if _, err := e.m.RefreshFull(p); err == nil {
						break
					}
				}
			}
			assertNeverFreshAndWrong(t, e, round)
		}
	}

	// Recovery contract: faults gone, one successful full recompute per AST
	// restores fresh parity everywhere.
	for _, site := range []string{"maintain.delete", "maintain.update", "maintain.scoped", "maintain.incremental", "maintain.full"} {
		faultinject.Clear(site)
	}
	for _, p := range e.plans {
		if _, err := e.m.RefreshFull(p); err != nil {
			t.Fatalf("recovery refresh %s: %v", p.Name(), err)
		}
	}
	for _, ca := range e.asts {
		if st := e.cat.Status(ca.Def.Name); st.Stale || st.Quarantined {
			t.Fatalf("%s not recovered: %+v", ca.Def.Name, st)
		}
	}
	assertNeverFreshAndWrong(t, e, -1)
}
