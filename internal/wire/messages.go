package wire

import (
	"fmt"

	"repro/internal/sqltypes"
)

// Rows is the MsgRows payload: a finished result set plus the routing facts
// the engine reports about it (which summary table served the plan, whether
// it came from the plan cache, whether execution fell back to base tables).
type Rows struct {
	Cols []string
	// Kinds is the per-column type, inferred by the server from the first
	// non-NULL value of each column (KindNull when a column is all NULL or
	// the result is empty). The driver surfaces it through
	// ColumnTypeDatabaseTypeName / ColumnTypeScanType.
	Kinds    []sqltypes.Kind
	Rows     [][]sqltypes.Value
	Mode     string // execution mode: vectorized / compiled-row / interpreted
	AST      string // summary table that served the plan; "" = base tables
	CacheHit bool
	FellBack bool
}

// Encode serializes the message into a MsgRows payload.
func (m *Rows) Encode() []byte {
	var e Encoder
	e.Uvarint(uint64(len(m.Cols)))
	for _, c := range m.Cols {
		e.String(c)
	}
	for _, k := range m.Kinds {
		e.Uvarint(uint64(k))
	}
	e.String(m.Mode)
	e.String(m.AST)
	e.Bool(m.CacheHit)
	e.Bool(m.FellBack)
	e.Uvarint(uint64(len(m.Rows)))
	for _, row := range m.Rows {
		for _, v := range row {
			e.Value(v)
		}
	}
	return e.Bytes()
}

// DecodeRows parses a MsgRows payload.
func DecodeRows(p []byte) (*Rows, error) {
	d := NewDecoder(p)
	ncols := d.Uvarint()
	if ncols > uint64(len(p)) { // each column name costs >= 1 byte
		return nil, fmt.Errorf("wire: rows header claims %d columns in %d bytes", ncols, len(p))
	}
	m := &Rows{Cols: make([]string, ncols), Kinds: make([]sqltypes.Kind, ncols)}
	for i := range m.Cols {
		m.Cols[i] = d.String()
	}
	for i := range m.Kinds {
		m.Kinds[i] = sqltypes.Kind(d.Uvarint())
	}
	m.Mode = d.String()
	m.AST = d.String()
	m.CacheHit = d.Bool()
	m.FellBack = d.Bool()
	nrows := d.Uvarint()
	if ncols > 0 && nrows > uint64(len(p)) { // each value costs >= 1 byte
		return nil, fmt.Errorf("wire: rows header claims %d rows in %d bytes", nrows, len(p))
	}
	m.Rows = make([][]sqltypes.Value, 0, nrows)
	for r := uint64(0); r < nrows && d.Err() == nil; r++ {
		row := make([]sqltypes.Value, ncols)
		for c := range row {
			row[c] = d.Value()
		}
		m.Rows = append(m.Rows, row)
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return m, nil
}

// ExecOK is the MsgExecOK payload: one applied DML statement.
type ExecOK struct {
	Table    string
	Affected int64
	// Maintenance summarizes the per-AST refresh outcomes, rendered
	// server-side (strategy, delta rows, retirements); informational only.
	Maintenance string
}

// Encode serializes the message into a MsgExecOK payload.
func (m *ExecOK) Encode() []byte {
	var e Encoder
	e.String(m.Table)
	e.Varint(m.Affected)
	e.String(m.Maintenance)
	return e.Bytes()
}

// DecodeExecOK parses a MsgExecOK payload.
func DecodeExecOK(p []byte) (*ExecOK, error) {
	d := NewDecoder(p)
	m := &ExecOK{Table: d.String(), Affected: d.Varint(), Maintenance: d.String()}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return m, nil
}

// EncodeString serializes a MsgQuery/MsgExec/MsgExplain/MsgText payload
// (they all carry a single string).
func EncodeString(s string) []byte {
	var e Encoder
	e.String(s)
	return e.Bytes()
}

// DecodeString parses a single-string payload.
func DecodeString(p []byte) (string, error) {
	d := NewDecoder(p)
	s := d.String()
	if err := d.Done(); err != nil {
		return "", err
	}
	return s, nil
}

// InferKinds scans a result column-wise for the first non-NULL value of each
// column; all-NULL (or zero-row) columns stay KindNull.
func InferKinds(cols []string, rows [][]sqltypes.Value) []sqltypes.Kind {
	kinds := make([]sqltypes.Kind, len(cols))
	for c := range cols {
		for _, row := range rows {
			if c < len(row) && !row[c].IsNull() {
				kinds[c] = row[c].Kind()
				break
			}
		}
	}
	return kinds
}
