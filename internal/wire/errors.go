package wire

import (
	"errors"
	"fmt"

	"repro/astdb"
)

// Code is a typed wire error code. Codes exist so the driver can rebuild a
// classified error — one that answers errors.Is against the astdb sentinels —
// without parsing message text, and so clients in other languages get a
// stable taxonomy.
type Code uint8

const (
	// CodeInternal is an unclassified server-side failure.
	CodeInternal Code = iota
	// CodeParse: the statement failed to parse, bind, or type-check.
	CodeParse
	// CodeUnknownTable: the statement names a table the catalog lacks.
	CodeUnknownTable
	// CodeBudget: the run exceeded its row-materialization budget.
	CodeBudget
	// CodeCanceled: the run was canceled (client disconnect, per-query
	// timeout, or server drain deadline).
	CodeCanceled
	// CodeWriteProtected: DML targeted a system-maintained summary table.
	CodeWriteProtected
	// CodeOverloaded: admission control rejected the request (all execution
	// slots busy, wait queue full) or the server is at its session cap.
	CodeOverloaded
)

// String names the code for logs and error text.
func (c Code) String() string {
	switch c {
	case CodeInternal:
		return "internal"
	case CodeParse:
		return "parse"
	case CodeUnknownTable:
		return "unknown-table"
	case CodeBudget:
		return "budget-exceeded"
	case CodeCanceled:
		return "canceled"
	case CodeWriteProtected:
		return "write-protected"
	case CodeOverloaded:
		return "overloaded"
	default:
		return fmt.Sprintf("code-%d", uint8(c))
	}
}

// sentinelOf maps a code back to the astdb sentinel it classifies (nil for
// CodeInternal).
func (c Code) sentinelOf() error {
	switch c {
	case CodeParse:
		return astdb.ErrParse
	case CodeUnknownTable:
		return astdb.ErrUnknownTable
	case CodeBudget:
		return astdb.ErrBudgetExceeded
	case CodeCanceled:
		return astdb.ErrCanceled
	case CodeWriteProtected:
		return astdb.ErrWriteProtected
	case CodeOverloaded:
		return astdb.ErrOverloaded
	default:
		return nil
	}
}

// CodeFor classifies an engine error under the wire taxonomy via errors.Is
// on the astdb sentinels.
func CodeFor(err error) Code {
	switch {
	case errors.Is(err, astdb.ErrParse):
		return CodeParse
	case errors.Is(err, astdb.ErrUnknownTable):
		return CodeUnknownTable
	case errors.Is(err, astdb.ErrBudgetExceeded):
		return CodeBudget
	case errors.Is(err, astdb.ErrCanceled):
		return CodeCanceled
	case errors.Is(err, astdb.ErrWriteProtected):
		return CodeWriteProtected
	case errors.Is(err, astdb.ErrOverloaded):
		return CodeOverloaded
	default:
		return CodeInternal
	}
}

// Error is a typed error crossing the wire. Unwrap returns the astdb
// sentinel for the code, so errors.Is(err, astdb.ErrBudgetExceeded) holds on
// the client exactly when it held on the server — the round-trip contract
// the driver conformance suite locks.
type Error struct {
	Code Code
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("astdb wire [%s]: %s", e.Code, e.Msg) }

// Unwrap maps the code back onto the astdb error surface.
func (e *Error) Unwrap() error { return e.Code.sentinelOf() }

// EncodeError serializes an error into a MsgError payload.
func EncodeError(c Code, msg string) []byte {
	var e Encoder
	e.Uvarint(uint64(c))
	e.String(msg)
	return e.Bytes()
}

// DecodeError parses a MsgError payload.
func DecodeError(p []byte) (*Error, error) {
	d := NewDecoder(p)
	m := &Error{Code: Code(d.Uvarint()), Msg: d.String()}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return m, nil
}
