package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"unicode/utf8"

	"repro/internal/sqltypes"
)

// Encoder builds a frame payload. The zero Encoder is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(u uint64) { e.buf = binary.AppendUvarint(e.buf, u) }

// Varint appends a signed (zigzag) varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bool appends one byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Value appends one SQL value: a kind byte then the kind's payload.
func (e *Encoder) Value(v sqltypes.Value) {
	e.buf = append(e.buf, byte(v.Kind()))
	switch v.Kind() {
	case sqltypes.KindNull:
	case sqltypes.KindInt, sqltypes.KindDate:
		e.Varint(v.Int())
	case sqltypes.KindFloat:
		e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v.Float()))
	case sqltypes.KindString:
		e.String(v.Str())
	case sqltypes.KindBool:
		e.Bool(v.Bool())
	}
}

// Decoder consumes a frame payload. Errors are sticky: the first malformed
// read poisons the decoder and every later read returns the zero value, so
// message decoders check Err once at the end.
type Decoder struct {
	buf []byte
	err error
}

// NewDecoder wraps a payload.
func NewDecoder(p []byte) *Decoder { return &Decoder{buf: p} }

// Err returns the first decode error, nil on a clean parse.
func (d *Decoder) Err() error { return d.err }

// fail poisons the decoder.
func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated or malformed %s", what)
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	u, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return u
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// String reads a length-prefixed string, validating UTF-8 and bounding the
// length by the remaining payload.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	if !utf8.ValidString(s) {
		d.fail("string (invalid UTF-8)")
		return ""
	}
	return s
}

// Bool reads one byte.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.buf) == 0 {
		d.fail("bool")
		return false
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b != 0
}

// Value reads one SQL value.
func (d *Decoder) Value() sqltypes.Value {
	if d.err != nil {
		return sqltypes.Value{}
	}
	if len(d.buf) == 0 {
		d.fail("value kind")
		return sqltypes.Value{}
	}
	kind := sqltypes.Kind(d.buf[0])
	d.buf = d.buf[1:]
	switch kind {
	case sqltypes.KindNull:
		return sqltypes.Value{}
	case sqltypes.KindInt:
		return sqltypes.NewInt(d.Varint())
	case sqltypes.KindDate:
		ymd := d.Varint()
		return sqltypes.NewDate(int(ymd/10000), int((ymd/100)%100), int(ymd%100))
	case sqltypes.KindFloat:
		if len(d.buf) < 8 {
			d.fail("float")
			return sqltypes.Value{}
		}
		bits := binary.BigEndian.Uint64(d.buf[:8])
		d.buf = d.buf[8:]
		return sqltypes.NewFloat(math.Float64frombits(bits))
	case sqltypes.KindString:
		return sqltypes.NewString(d.String())
	case sqltypes.KindBool:
		return sqltypes.NewBool(d.Bool())
	default:
		d.fail(fmt.Sprintf("value (unknown kind %d)", kind))
		return sqltypes.Value{}
	}
}

// Done reports whether the payload was fully consumed without error; message
// decoders call it last so trailing garbage is rejected, not ignored.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after message", len(d.buf))
	}
	return nil
}
