// Package wire is the protocol spoken between cmd/astserve and the astdb
// database/sql driver: a length-prefixed binary framing with a small message
// vocabulary (query, exec, explain, obs-snapshot, ping) and typed error
// codes that round-trip the astdb error surface across the network.
//
// One TCP connection is one session. The client sends one request frame at a
// time and reads exactly one response frame for it; there is no pipelining
// and no multiplexing — concurrency comes from pooling connections
// (database/sql does this for free). Cancellation is by disconnect: closing
// the connection aborts the in-flight request server-side, which is exactly
// the contract database/sql drivers implement for context cancellation.
//
// Framing: every frame is a 1-byte message type, a 4-byte big-endian payload
// length, then the payload. Payload encodings are fixed per message type and
// built from four primitives — uvarint, varint, raw float bits, and
// length-prefixed UTF-8 — shared with the sqltypes value codec.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Request message types (client → server).
const (
	// MsgQuery carries one SELECT statement; answered by MsgRows or MsgError.
	MsgQuery byte = 0x01
	// MsgExec carries one DML statement (INSERT/DELETE/UPDATE); answered by
	// MsgExecOK or MsgError.
	MsgExec byte = 0x02
	// MsgExplain carries one SELECT (or EXPLAIN-able DML) statement; answered
	// by MsgText holding the rendered report.
	MsgExplain byte = 0x03
	// MsgObs requests the server's observability snapshot; answered by
	// MsgText.
	MsgObs byte = 0x04
	// MsgPing is a liveness probe; answered by MsgPong.
	MsgPing byte = 0x05
)

// Response message types (server → client).
const (
	MsgRows   byte = 0x81
	MsgExecOK byte = 0x82
	MsgText   byte = 0x83
	MsgPong   byte = 0x84
	MsgError  byte = 0xFF
)

// MaxFrame bounds a frame payload; a peer announcing more is broken or
// hostile and the connection is dropped.
const MaxFrame = 64 << 20

// WriteFrame writes one frame. It performs a single Write call so frames
// from one writer goroutine never interleave.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame payload %d exceeds limit %d", len(payload), MaxFrame)
	}
	buf := make([]byte, 5+len(payload))
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(payload)))
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame, rejecting payloads past MaxFrame.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame payload %d exceeds limit %d", n, MaxFrame)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}
