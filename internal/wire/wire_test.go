package wire

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/astdb"
	"repro/internal/sqltypes"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 70000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, MsgQuery, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != MsgQuery || !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: typ=%#x len=%d want len=%d", typ, len(got), len(want))
		}
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	if err := WriteFrame(&bytes.Buffer{}, MsgQuery, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
	// A header announcing an oversized payload is rejected before allocation.
	hdr := []byte{MsgQuery, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized header accepted")
	}
}

func sampleRows() *Rows {
	rows := [][]sqltypes.Value{
		{sqltypes.NewInt(-42), sqltypes.NewFloat(math.Pi), sqltypes.NewString("héllo"), sqltypes.NewBool(true), sqltypes.MustParseDate("1996-02-29")},
		{sqltypes.Value{}, sqltypes.NewFloat(math.Inf(-1)), sqltypes.NewString(""), sqltypes.NewBool(false), sqltypes.Value{}},
	}
	cols := []string{"i", "f", "s", "b", "d"}
	return &Rows{
		Cols:     cols,
		Kinds:    InferKinds(cols, rows),
		Rows:     rows,
		Mode:     "vectorized",
		AST:      "ast1",
		CacheHit: true,
	}
}

func TestRowsRoundTrip(t *testing.T) {
	want := sampleRows()
	got, err := DecodeRows(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != len(want.Cols) || got.Mode != want.Mode || got.AST != want.AST ||
		got.CacheHit != want.CacheHit || got.FellBack != want.FellBack {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i, k := range want.Kinds {
		if got.Kinds[i] != k {
			t.Fatalf("kind[%d] = %v, want %v", i, got.Kinds[i], k)
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("row count %d, want %d", len(got.Rows), len(want.Rows))
	}
	for r := range want.Rows {
		for c := range want.Rows[r] {
			if !sqltypes.Identical(got.Rows[r][c], want.Rows[r][c]) {
				t.Fatalf("row %d col %d: %v != %v", r, c, got.Rows[r][c], want.Rows[r][c])
			}
		}
	}
}

func TestRowsEmptyResult(t *testing.T) {
	cols := []string{"a"}
	m := &Rows{Cols: cols, Kinds: InferKinds(cols, nil), Mode: "compiled-row"}
	got, err := DecodeRows(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 0 || len(got.Cols) != 1 || got.Kinds[0] != sqltypes.KindNull {
		t.Fatalf("empty result mishandled: %+v", got)
	}
}

// TestDecodeRejectsCorruption truncates and bit-flips an encoded message at
// every position; the decoder must error, never panic or hand back trailing
// garbage silently.
func TestDecodeRejectsCorruption(t *testing.T) {
	p := sampleRows().Encode()
	for cut := 0; cut < len(p); cut++ {
		if _, err := DecodeRows(p[:cut]); err == nil {
			// A prefix that happens to decode cleanly must at least be
			// rejected by Done() for trailing bytes — reaching here means
			// DecodeRows accepted a truncation as a full message.
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeRows(append(append([]byte(nil), p...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestExecOKAndStringRoundTrip(t *testing.T) {
	ok, err := DecodeExecOK((&ExecOK{Table: "trans", Affected: 7, Maintenance: "byloc: incremental"}).Encode())
	if err != nil {
		t.Fatal(err)
	}
	if ok.Table != "trans" || ok.Affected != 7 || !strings.Contains(ok.Maintenance, "byloc") {
		t.Fatalf("execok mismatch: %+v", ok)
	}
	s, err := DecodeString(EncodeString("select 1"))
	if err != nil || s != "select 1" {
		t.Fatalf("string round-trip: %q %v", s, err)
	}
}

// TestErrorCodeRoundTrip locks the error-surface contract: for every astdb
// sentinel, classify → encode → decode → errors.Is against the same sentinel
// holds, and against the others does not.
func TestErrorCodeRoundTrip(t *testing.T) {
	sentinels := []error{
		astdb.ErrParse,
		astdb.ErrUnknownTable,
		astdb.ErrBudgetExceeded,
		astdb.ErrCanceled,
		astdb.ErrWriteProtected,
		astdb.ErrOverloaded,
	}
	for _, s := range sentinels {
		wrapped := errors.Join(s) // simulate the engine wrapping detail around the sentinel
		code := CodeFor(wrapped)
		decoded, err := DecodeError(EncodeError(code, wrapped.Error()))
		if err != nil {
			t.Fatal(err)
		}
		for _, other := range sentinels {
			if got := errors.Is(decoded, other); got != (other == s) {
				t.Fatalf("errors.Is(decoded(%v), %v) = %v", s, other, got)
			}
		}
		var we *Error
		if !errors.As(decoded, &we) || we.Code != code {
			t.Fatalf("errors.As lost the wire error for %v", s)
		}
	}
	// Unknown errors classify as internal and match no sentinel.
	dec, err := DecodeError(EncodeError(CodeFor(errors.New("boom")), "boom"))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Code != CodeInternal {
		t.Fatalf("unclassified error got code %v", dec.Code)
	}
	for _, s := range sentinels {
		if errors.Is(dec, s) {
			t.Fatalf("internal error matches %v", s)
		}
	}
}
