package catalog

import (
	"testing"

	"repro/internal/sqltypes"
)

func sigCatalog(t *testing.T) (*Catalog, *Signature) {
	t.Helper()
	c := New()
	c.MustAddTable(&Table{
		Name: "t",
		Columns: []Column{
			{Name: "id", Type: sqltypes.KindInt},
			{Name: "v", Type: sqltypes.KindInt},
		},
		PrimaryKey: []string{"id"},
	})
	id, ok := c.TableID("t")
	if !ok {
		t.Fatal("table t has no ID")
	}
	sig := &Signature{}
	sig.Tables.Add(id)
	sig.Required.Add(id)
	return c, sig
}

// TestSignatureIndexStaleness: the index's mirrored freshness flags must track
// every status transition, so pruning never admits an AST that Usable would
// reject — and re-admits it as soon as Usable would.
func TestSignatureIndexStaleness(t *testing.T) {
	c, sig := sigCatalog(t)
	c.MustRegisterAST(ASTDef{Name: "a1", SQL: "select id from t"})
	c.SetASTSignature("a1", sig)
	q := sig // identical signature: always structurally admissible

	// check asserts the index agrees with Usable at both allowStale settings.
	check := func(step string) {
		t.Helper()
		for _, allowStale := range []bool{false, true} {
			usable := c.Usable("a1", allowStale)
			admits := c.AdmitsAST("a1", q, allowStale)
			if admits && !usable {
				t.Fatalf("%s: index admits an AST Usable(allowStale=%v) rejects", step, allowStale)
			}
			if usable && !admits {
				t.Fatalf("%s: index refuses a usable, structurally admissible AST (allowStale=%v)", step, allowStale)
			}
		}
	}

	check("fresh")
	if !c.AdmitsAST("a1", q, false) {
		t.Fatal("fresh AST must be admitted")
	}

	c.MarkStale("a1")
	check("stale")
	if c.AdmitsAST("a1", q, false) {
		t.Fatal("stale AST must be pruned when staleness is not allowed")
	}
	if !c.AdmitsAST("a1", q, true) {
		t.Fatal("stale AST must be admitted when staleness is allowed")
	}

	c.MarkFresh("a1")
	check("refreshed")
	if !c.AdmitsAST("a1", q, false) {
		t.Fatal("refreshed AST must be re-admitted")
	}

	for i := 0; i < DefaultQuarantineThreshold; i++ {
		c.RecordRefreshFailure("a1")
	}
	if !c.Status("a1").Quarantined {
		t.Fatal("AST should be quarantined after threshold failures")
	}
	check("quarantined")
	if c.AdmitsAST("a1", q, true) {
		t.Fatal("quarantined AST must be pruned even when staleness is allowed")
	}

	c.MarkFresh("a1")
	check("recovered")
	if !c.AdmitsAST("a1", q, false) {
		t.Fatal("recovered AST must be re-admitted")
	}

	c.UnregisterAST("a1")
	if _, ok := c.ASTSignature("a1"); ok {
		t.Fatal("unregistering must drop the signature entry")
	}
	if !c.AdmitsAST("a1", q, false) {
		t.Fatal("an AST without an index entry is always admitted")
	}
}

// TestSignatureIndexSeedsFromStatus: inserting a signature for an AST that is
// already stale or quarantined must seed the mirrored flags from the current
// status, not assume freshness.
func TestSignatureIndexSeedsFromStatus(t *testing.T) {
	c, sig := sigCatalog(t)
	c.MustRegisterAST(ASTDef{Name: "a2", SQL: "select id from t"})
	c.MarkStale("a2")
	c.SetASTSignature("a2", sig)
	if c.AdmitsAST("a2", sig, false) {
		t.Fatal("signature inserted for an already-stale AST must start stale")
	}
	if !c.AdmitsAST("a2", sig, true) {
		t.Fatal("already-stale AST must still be admitted under allowStale")
	}
}
