package catalog

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the candidate-pruning signature index. At AST compile time the
// rewriter computes a cheap Signature per AST and inserts it here; at rewrite
// time it computes the query's signature once and asks AdmitsAST for every
// registered AST before paying for a full bottom-up QGM match. Pruning is
// strictly conservative: every rule below refutes a *necessary* condition of
// the matching algorithm (see DESIGN.md §10 for the safety argument per rule),
// so a pruned AST is always one the full matcher would reject. An AST without
// an index entry is always admitted — the index is an accelerator, never a
// gate that could cost a legitimate rewrite.

// TableSet is a bitmap over catalog table IDs (assigned by AddTable in
// registration order and stable across DropTable/re-AddTable cycles, so
// re-materializing an AST does not shift other signatures).
type TableSet struct {
	bits []uint64
}

// Add inserts a table ID.
func (s *TableSet) Add(id int) {
	w := id / 64
	for len(s.bits) <= w {
		s.bits = append(s.bits, 0)
	}
	s.bits[w] |= 1 << uint(id%64)
}

// Has reports membership.
func (s TableSet) Has(id int) bool {
	w := id / 64
	return w < len(s.bits) && s.bits[w]&(1<<uint(id%64)) != 0
}

// Remove deletes a table ID.
func (s *TableSet) Remove(id int) {
	w := id / 64
	if w < len(s.bits) {
		s.bits[w] &^= 1 << uint(id%64)
	}
}

// Empty reports whether the set has no members.
func (s TableSet) Empty() bool {
	for _, w := range s.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether the sets share a member.
func (s TableSet) Intersects(o TableSet) bool {
	n := len(s.bits)
	if len(o.bits) < n {
		n = len(o.bits)
	}
	for i := 0; i < n; i++ {
		if s.bits[i]&o.bits[i] != 0 {
			return true
		}
	}
	return false
}

// Intersect returns s ∩ o as a new set.
func (s TableSet) Intersect(o TableSet) TableSet {
	n := len(s.bits)
	if len(o.bits) < n {
		n = len(o.bits)
	}
	out := TableSet{bits: make([]uint64, n)}
	for i := 0; i < n; i++ {
		out.bits[i] = s.bits[i] & o.bits[i]
	}
	return out
}

// Minus returns s \ o as a new set.
func (s TableSet) Minus(o TableSet) TableSet {
	out := TableSet{bits: make([]uint64, len(s.bits))}
	copy(out.bits, s.bits)
	for i := range out.bits {
		if i < len(o.bits) {
			out.bits[i] &^= o.bits[i]
		}
	}
	return out
}

// Clone returns an independent copy.
func (s TableSet) Clone() TableSet {
	out := TableSet{bits: make([]uint64, len(s.bits))}
	copy(out.bits, s.bits)
	return out
}

// IDs returns the member IDs in ascending order.
func (s TableSet) IDs() []int {
	var out []int
	for w, word := range s.bits {
		for b := 0; word != 0; b++ {
			if word&1 != 0 {
				out = append(out, w*64+b)
			}
			word >>= 1
		}
	}
	return out
}

// Signature is the cheap, query-graph-derived summary the index prunes on.
// It is plain data (no qgm dependency — qgm imports catalog, not the other
// way around); internal/core computes it from a compiled graph. The same
// struct describes both ASTs and queries; some fields are only meaningful on
// one side.
type Signature struct {
	// Tables is every base table referenced anywhere in the graph, including
	// under scalar-subquery quantifiers.
	Tables TableSet
	// Required is the base tables reachable from the root through ForEach
	// quantifiers only. For an AST these are the tables that must be matched
	// against the query or proven lossless-droppable; tables only under
	// Scalar quantifiers are exempt (uncorrelated scalar extras skip the
	// losslessness check entirely).
	Required TableSet
	// Columns is the sorted set of "table.column" names referenced anywhere.
	// Informational only (observability, EXPLAIN): column sets cannot prune
	// conservatively — see DESIGN.md §10.
	Columns []string
	// HasGroupBy: some GROUP BY box exists anywhere in the graph (including
	// scalar subqueries — any box can serve as a match subsumee).
	HasGroupBy bool
	// ReqGroupBy: some GROUP BY box is reachable from the root through
	// ForEach quantifiers only. On the AST side these boxes must all be
	// matched against query GROUP BY boxes (they can never be lossless
	// extras, which must be base tables).
	ReqGroupBy bool
	// ReqGBSumCount: every ForEach-reachable GROUP BY box exposes at least
	// one non-distinct SUM or COUNT output column (AST side of the
	// aggregate-derivability rule R4).
	ReqGBSumCount bool
	// AllGroupBySumCount: the graph has at least one GROUP BY box and every
	// one of them computes at least one non-distinct SUM or COUNT aggregate
	// (query side of rule R4).
	AllGroupBySumCount bool
	// UnsliceableCube: some ForEach-reachable GROUP BY box has more than one
	// grouping set and none of its cuboids passes the static §5.2
	// sliceability test — such an AST can never be sliced for any query
	// (rule R5).
	UnsliceableCube bool
}

// sigEntry is one AST's index entry: the signature plus freshness flags
// mirrored from ASTStatus on every transition, so admission checks never take
// the status mutex. Entries are immutable once published — a freshness
// transition replaces the entry (sharing the Signature pointer), never
// mutates it in place.
type sigEntry struct {
	sig         *Signature
	stale       bool
	quarantined bool
}

// sigIndex is the per-catalog signature index. Like AST status, it is
// published RCU-style: the entry map behind the atomic pointer is immutable,
// readers (AdmitsAST — once per candidate per uncached rewrite) load it with
// no lock, and writers serialize on mu, copy, and swap.
type sigIndex struct {
	mu      sync.Mutex // serializes writers; readers use entries
	entries atomic.Pointer[map[string]*sigEntry]
}

// load returns the current immutable entry map (nil when empty).
func (x *sigIndex) load() map[string]*sigEntry {
	if m := x.entries.Load(); m != nil {
		return *m
	}
	return nil
}

// replace publishes a copy of the current map with name set to e (or deleted
// when e is nil). Callers must hold x.mu.
func (x *sigIndex) replace(name string, e *sigEntry) {
	old := x.load()
	next := make(map[string]*sigEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	if e == nil {
		delete(next, name)
	} else {
		next[name] = e
	}
	x.entries.Store(&next)
}

func (x *sigIndex) set(name string, e *sigEntry) {
	x.mu.Lock()
	x.replace(name, e)
	x.mu.Unlock()
}

func (x *sigIndex) remove(name string) {
	x.mu.Lock()
	x.replace(name, nil)
	x.mu.Unlock()
}

// mark updates the mirrored freshness flags of an entry, if present, by
// swapping in a replacement entry sharing the same signature.
func (x *sigIndex) mark(name string, stale, quarantined bool) {
	x.mu.Lock()
	if e := x.load()[name]; e != nil {
		x.replace(name, &sigEntry{sig: e.sig, stale: stale, quarantined: quarantined})
	}
	x.mu.Unlock()
}

// TableID returns the stable numeric ID of a table name. IDs are assigned by
// AddTable and survive DropTable, so a re-materialized AST output table keeps
// its ID.
func (c *Catalog) TableID(name string) (int, bool) {
	id, ok := c.tableIDs[strings.ToLower(name)]
	return id, ok
}

// SetASTSignature inserts (or replaces) the named AST's signature index
// entry, seeding the mirrored freshness flags from the current status.
func (c *Catalog) SetASTSignature(name string, sig *Signature) {
	name = strings.ToLower(name)
	st := c.Status(name)
	c.sigs.set(name, &sigEntry{sig: sig, stale: st.Stale, quarantined: st.Quarantined})
}

// ASTSignature returns the indexed signature for the named AST, if any.
func (c *Catalog) ASTSignature(name string) (*Signature, bool) {
	e := c.sigs.load()[strings.ToLower(name)]
	if e == nil {
		return nil, false
	}
	return e.sig, true
}

// AdmitsAST is the index-side admission check consulted once per (query, AST)
// pair before full matching. It returns false only when the index can prove
// the AST cannot serve the query: its mirrored freshness forbids use
// (quarantined always, stale unless allowStale), or its signature fails one
// of the conservative refutation rules against the query signature q. ASTs
// without an index entry, and nil query signatures, are always admitted.
func (c *Catalog) AdmitsAST(name string, q *Signature, allowStale bool) bool {
	e := c.sigs.load()[strings.ToLower(name)]
	if e == nil {
		return true
	}
	if e.quarantined || (e.stale && !allowStale) {
		return false
	}
	if q == nil || e.sig == nil {
		return true
	}
	return c.SignatureAdmits(e.sig, q)
}

// SignatureAdmits applies the conservative refutation rules R1–R5 (DESIGN.md
// §10) to an (AST signature, query signature) pair. Each rule negates a
// necessary condition of the full matcher, so false means "the matcher would
// certainly reject"; true means "maybe".
func (c *Catalog) SignatureAdmits(ast, q *Signature) bool {
	if ast == nil || q == nil {
		return true
	}
	// R1 — box kinds: every ForEach-reachable AST box must be matched against
	// a query box of the same kind (unmatched extras must be base tables), so
	// an AST carrying a required GROUP BY box cannot serve a GROUP BY-free
	// query.
	if ast.ReqGroupBy && !q.HasGroupBy {
		return false
	}
	// R2 — leaf overlap: every match bottoms out in at least one base-table
	// pair with equal table names, so disjoint table sets can never match.
	if !ast.Tables.Intersects(q.Tables) {
		return false
	}
	// R3 — extras must be droppable: every AST table reachable through
	// ForEach quantifiers is either matched (so it appears in the query) or
	// an extra that must be proven lossless via an RI constraint from an
	// already-safe table (§4.1.1 condition 1). A required table that is
	// neither in the query nor the FK-parent closure of the shared tables
	// refutes every possible match.
	if !c.extrasDroppable(ast, q) {
		return false
	}
	// R4 — aggregate derivability: non-distinct COUNT/SUM aggregates can only
	// be derived from a subsumer SUM or COUNT column (§4.2.2 maps both to
	// SUM upward; MIN/MAX/DISTINCT derive from grouping columns alone). If
	// every query GROUP BY box computes such an aggregate and some required
	// AST GROUP BY box has no non-distinct SUM/COUNT column, that box cannot
	// match any query GROUP BY box, so no match can complete.
	if ast.ReqGroupBy && !ast.ReqGBSumCount && q.AllGroupBySumCount {
		return false
	}
	// R5 — lattice sliceability: a required multi-grouping-set box whose
	// cuboids all fail the static §5.2 sliceability test can never be sliced
	// for any query.
	if ast.UnsliceableCube {
		return false
	}
	return true
}

// extrasDroppable implements rule R3's closure: starting from the tables the
// AST shares with the query (the only possible match anchors), a missing
// required table t is droppable when some RI constraint makes it the parent
// of an already-safe child table over non-nullable child columns — the
// necessary skeleton of LosslessJoin. Admitting t makes it a safe anchor for
// further extras. This over-approximates extraLossless (it ignores which
// predicates actually appear), which is the conservative direction.
func (c *Catalog) extrasDroppable(ast, q *Signature) bool {
	missing := ast.Required.Minus(q.Tables)
	if missing.Empty() {
		return true
	}
	safe := ast.Tables.Intersect(q.Tables)
	for changed := true; changed; {
		changed = false
		for _, t := range missing.IDs() {
			for _, e := range c.fkEdges {
				if e.parent == t && e.nonNullChild && safe.Has(e.child) {
					safe.Add(t)
					missing.Remove(t)
					changed = true
					break
				}
			}
		}
	}
	return missing.Empty()
}

// fkEdge caches one FK as table IDs plus whether every child column is
// non-nullable (a LosslessJoin precondition), so the R3 closure never touches
// table metadata.
type fkEdge struct {
	child, parent int
	nonNullChild  bool
}

// SortedColumns is a helper for deterministic signature rendering in
// diagnostics.
func SortedColumns(cols map[string]bool) []string {
	out := make([]string, 0, len(cols))
	for c := range cols {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
