package catalog

import (
	"fmt"
	"sync"
	"testing"
)

// TestStatusRCUReadersDuringTransitions is the RCU contract test for AST
// status: lock-free readers (Status, Usable, ASTSignature on the signature
// index) run against writers driving the full transition cycle — stale,
// refresh failures up to quarantine, recovery. Each reader checks the
// invariants a published snapshot guarantees:
//
//   - the epoch never moves backwards between two successive reads (snapshots
//     are immutable and swapped whole, so time only flows forward);
//   - a status with Failures at or past the threshold is also Quarantined —
//     failure count and quarantine verdict are written in one snapshot, so a
//     reader can never see the count without the verdict;
//   - Usable and ASTSignature stay callable mid-transition (the -race run is
//     the memory-safety proof for their lock-free read paths).
func TestStatusRCUReadersDuringTransitions(t *testing.T) {
	c := New()
	c.SetQuarantineThreshold(3)
	c.MustRegisterAST(ASTDef{Name: "rcu", SQL: "select faid, count(*) as c from trans group by faid"})

	const readers = 6
	const writers = 2
	const rounds = 300
	errc := make(chan error, readers)
	stop := make(chan struct{})

	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			lastEpoch := int64(-1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := c.Status("rcu")
				if int64(st.Epoch) < lastEpoch {
					errc <- fmt.Errorf("reader %d: epoch went backwards: %d after %d", r, st.Epoch, lastEpoch)
					return
				}
				lastEpoch = int64(st.Epoch)
				if st.Failures >= 3 && !st.Quarantined {
					errc <- fmt.Errorf("reader %d: %d failures past threshold without quarantine: %+v", r, st.Failures, st)
					return
				}
				c.Usable("rcu", false)
				c.ASTSignature("rcu")
			}
		}(r)
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < rounds; i++ {
				switch i % 5 {
				case 0:
					c.MarkStale("rcu")
				case 1, 2, 3:
					c.RecordRefreshFailure("rcu")
				default:
					c.MarkFresh("rcu")
				}
			}
		}()
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiesce: one final recovery publishes a clean snapshot every reader
	// would agree on.
	c.MarkFresh("rcu")
	if st := c.Status("rcu"); st.Stale || st.Quarantined || st.Failures != 0 {
		t.Fatalf("after recovery: %+v", st)
	}
}
