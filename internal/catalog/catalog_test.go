package catalog

import (
	"testing"

	"repro/internal/sqltypes"
)

func twoTables(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	c.MustAddTable(&Table{
		Name: "Parent",
		Columns: []Column{
			{Name: "id", Type: sqltypes.KindInt},
			{Name: "name", Type: sqltypes.KindString, Nullable: true},
		},
		PrimaryKey: []string{"id"},
	})
	c.MustAddTable(&Table{
		Name: "Child",
		Columns: []Column{
			{Name: "cid", Type: sqltypes.KindInt},
			{Name: "pid", Type: sqltypes.KindInt},
			{Name: "optpid", Type: sqltypes.KindInt, Nullable: true},
		},
		PrimaryKey: []string{"cid"},
	})
	return c
}

func TestTableLookupCaseInsensitive(t *testing.T) {
	c := twoTables(t)
	for _, name := range []string{"parent", "PARENT", "Parent"} {
		if _, ok := c.Table(name); !ok {
			t.Errorf("lookup %q failed", name)
		}
	}
	if _, ok := c.Table("missing"); ok {
		t.Error("missing table found")
	}
}

func TestAddTableValidation(t *testing.T) {
	c := twoTables(t)
	if err := c.AddTable(&Table{Name: "parent"}); err == nil {
		t.Error("duplicate table accepted")
	}
	if err := c.AddTable(&Table{
		Name:    "dup",
		Columns: []Column{{Name: "a"}, {Name: "A"}},
	}); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := c.AddTable(&Table{
		Name:       "badpk",
		Columns:    []Column{{Name: "a"}},
		PrimaryKey: []string{"nope"},
	}); err == nil {
		t.Error("bad primary key accepted")
	}
}

func TestColumnHelpers(t *testing.T) {
	c := twoTables(t)
	p, _ := c.Table("parent")
	if p.ColumnIndex("name") != 1 || p.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex wrong")
	}
	col, ok := p.Column("id")
	if !ok || col.Type != sqltypes.KindInt {
		t.Error("Column lookup wrong")
	}
}

func TestHasUniqueKey(t *testing.T) {
	tb := &Table{
		Name:       "t",
		Columns:    []Column{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		PrimaryKey: []string{"a"},
		UniqueKeys: [][]string{{"b", "c"}},
	}
	if !tb.HasUniqueKey([]string{"a"}) {
		t.Error("pk not recognized")
	}
	if !tb.HasUniqueKey([]string{"a", "b"}) {
		t.Error("superset of pk not recognized")
	}
	if !tb.HasUniqueKey([]string{"c", "b"}) {
		t.Error("unique key order-insensitivity")
	}
	if tb.HasUniqueKey([]string{"b"}) {
		t.Error("partial unique key accepted")
	}
	if tb.HasUniqueKey(nil) {
		t.Error("empty set accepted")
	}
	if (&Table{Name: "nokey", Columns: []Column{{Name: "a"}}}).HasUniqueKey([]string{"a"}) {
		t.Error("table without keys claims uniqueness")
	}
}

func TestForeignKeyValidation(t *testing.T) {
	c := twoTables(t)
	good := ForeignKey{ChildTable: "child", ChildCols: []string{"pid"}, ParentTable: "parent", ParentCols: []string{"id"}}
	if err := c.AddForeignKey(good); err != nil {
		t.Fatalf("valid FK rejected: %v", err)
	}
	bad := []ForeignKey{
		{ChildTable: "nope", ChildCols: []string{"pid"}, ParentTable: "parent", ParentCols: []string{"id"}},
		{ChildTable: "child", ChildCols: []string{"pid"}, ParentTable: "nope", ParentCols: []string{"id"}},
		{ChildTable: "child", ChildCols: []string{"nope"}, ParentTable: "parent", ParentCols: []string{"id"}},
		{ChildTable: "child", ChildCols: []string{"pid"}, ParentTable: "parent", ParentCols: []string{"name"}}, // not unique
		{ChildTable: "child", ChildCols: []string{"pid", "cid"}, ParentTable: "parent", ParentCols: []string{"id"}},
		{ChildTable: "child", ChildCols: nil, ParentTable: "parent", ParentCols: nil},
	}
	for i, fk := range bad {
		if err := c.AddForeignKey(fk); err == nil {
			t.Errorf("bad FK %d accepted", i)
		}
	}
}

func TestLosslessJoin(t *testing.T) {
	c := twoTables(t)
	c.MustAddForeignKey(ForeignKey{ChildTable: "child", ChildCols: []string{"pid"}, ParentTable: "parent", ParentCols: []string{"id"}})
	c.MustAddForeignKey(ForeignKey{ChildTable: "child", ChildCols: []string{"optpid"}, ParentTable: "parent", ParentCols: []string{"id"}})

	if !c.LosslessJoin("child", []string{"pid"}, "parent", []string{"id"}) {
		t.Error("RI join with non-nullable FK must be lossless")
	}
	if c.LosslessJoin("child", []string{"optpid"}, "parent", []string{"id"}) {
		t.Error("nullable FK column cannot guarantee losslessness")
	}
	if c.LosslessJoin("child", []string{"cid"}, "parent", []string{"id"}) {
		t.Error("non-FK columns accepted")
	}
	if c.LosslessJoin("parent", []string{"id"}, "child", []string{"pid"}) {
		t.Error("reversed direction accepted")
	}
}

func TestASTRegistry(t *testing.T) {
	c := twoTables(t)
	c.MustRegisterAST(ASTDef{Name: "A1", SQL: "select 1 from parent"})
	if err := c.RegisterAST(ASTDef{Name: "a1", SQL: "x"}); err == nil {
		t.Error("duplicate AST name accepted (case-insensitive)")
	}
	if len(c.ASTs()) != 1 {
		t.Fatalf("ASTs: %v", c.ASTs())
	}
	c.UnregisterAST("A1")
	if len(c.ASTs()) != 0 {
		t.Error("unregister failed")
	}
}

func TestTablesSorted(t *testing.T) {
	c := twoTables(t)
	names := c.Tables()
	if len(names) != 2 || names[0] != "child" || names[1] != "parent" {
		t.Fatalf("Tables() = %v", names)
	}
	c.DropTable("child")
	if len(c.Tables()) != 1 {
		t.Error("drop failed")
	}
}

func TestASTStatusLifecycle(t *testing.T) {
	c := New()
	c.MustRegisterAST(ASTDef{Name: "a1", SQL: "select 1"})

	if st := c.Status("a1"); st != (ASTStatus{}) {
		t.Fatalf("fresh AST has non-zero status: %+v", st)
	}
	if !c.Usable("a1", false) {
		t.Fatal("never-refreshed AST should be usable")
	}

	c.MarkStale("A1") // case-insensitive
	if c.Usable("a1", false) {
		t.Fatal("stale AST usable with AllowStale=false")
	}
	if !c.Usable("a1", true) {
		t.Fatal("stale AST not usable with AllowStale=true")
	}

	c.MarkFresh("a1")
	st := c.Status("a1")
	if st.Stale || st.Epoch != 1 || st.Failures != 0 {
		t.Fatalf("after MarkFresh: %+v", st)
	}
	c.MarkFresh("a1")
	if got := c.Status("a1").Epoch; got != 2 {
		t.Fatalf("epoch = %d, want 2", got)
	}
}

func TestQuarantineCircuitBreaker(t *testing.T) {
	c := New()
	c.SetQuarantineThreshold(2)
	for i := 0; i < 1; i++ {
		st := c.RecordRefreshFailure("q")
		if st.Quarantined {
			t.Fatalf("quarantined after %d failures (threshold 2)", i+1)
		}
	}
	st := c.RecordRefreshFailure("q")
	if !st.Quarantined || st.Failures != 2 || !st.Stale {
		t.Fatalf("after threshold failures: %+v", st)
	}
	// Quarantine ignores AllowStale.
	if c.Usable("q", true) {
		t.Fatal("quarantined AST should never be usable")
	}
	// A successful refresh is the only way out.
	c.MarkFresh("q")
	st = c.Status("q")
	if st.Quarantined || st.Stale || st.Failures != 0 || st.Epoch != 1 {
		t.Fatalf("after recovery: %+v", st)
	}
	if !c.Usable("q", false) {
		t.Fatal("recovered AST should be usable")
	}
}

func TestStatusConcurrentAccess(t *testing.T) {
	c := New()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 200; j++ {
				c.MarkStale("x")
				c.RecordRefreshFailure("x")
				c.MarkFresh("x")
				c.Usable("x", false)
				c.Status("x")
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}

func TestUnregisterASTClearsStatus(t *testing.T) {
	c := New()
	c.MustRegisterAST(ASTDef{Name: "gone", SQL: "select 1"})
	c.MarkStale("gone")
	c.UnregisterAST("gone")
	if st := c.Status("gone"); st.Stale {
		t.Fatalf("status survived unregister: %+v", st)
	}
}
