// Package catalog holds database metadata: table schemas, nullability,
// primary/unique keys, referential-integrity (foreign key) constraints, and
// the registry of Automatic Summary Tables (ASTs). The matching algorithm
// consults the catalog to prove extra-join losslessness (paper §4.1.1
// condition 1) and 1:N rejoin cardinality (paper §4.2.1).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sqltypes"
)

// Column describes one table column.
type Column struct {
	Name     string
	Type     sqltypes.Kind
	Nullable bool
}

// Table describes a base table or a materialized AST's output table.
type Table struct {
	Name       string
	Columns    []Column
	PrimaryKey []string   // empty when no PK
	UniqueKeys [][]string // additional unique constraints (PK not repeated)
}

// ColumnIndex returns the ordinal of a column by name, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Column returns the column metadata by name.
func (t *Table) Column(name string) (Column, bool) {
	i := t.ColumnIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return t.Columns[i], true
}

// HasUniqueKey reports whether the given set of columns contains a unique key
// of the table (primary or declared unique).
func (t *Table) HasUniqueKey(cols []string) bool {
	set := make(map[string]bool, len(cols))
	for _, c := range cols {
		set[c] = true
	}
	contains := func(key []string) bool {
		if len(key) == 0 {
			return false
		}
		for _, k := range key {
			if !set[k] {
				return false
			}
		}
		return true
	}
	if contains(t.PrimaryKey) {
		return true
	}
	for _, uk := range t.UniqueKeys {
		if contains(uk) {
			return true
		}
	}
	return false
}

// ForeignKey is a referential-integrity constraint: every (non-NULL)
// combination of ChildCols values in ChildTable appears in ParentCols of
// ParentTable, and ParentCols is a unique key of ParentTable.
type ForeignKey struct {
	ChildTable  string
	ChildCols   []string
	ParentTable string
	ParentCols  []string
}

// ASTDef is a registered Automatic Summary Table: a name for the materialized
// result plus the defining query text. The rewriter builds its QGM graph on
// registration.
type ASTDef struct {
	Name string
	SQL  string
}

// Catalog is the metadata store. Schema mutation (AddTable, RegisterAST, …)
// is not safe for concurrent use; the read path (lookups) is safe once
// populated. AST freshness state is published RCU-style: readers (Status,
// Usable, plan-cache fingerprinting) load an immutable snapshot through an
// atomic pointer and take no lock; writer transitions (MarkFresh, MarkStale,
// RecordRefreshFailure) serialize on statusMu, build a replacement snapshot,
// and swap it in. Maintenance may therefore mark ASTs stale/fresh while
// every concurrent query-path freshness check stays contention-free.
type Catalog struct {
	tables   map[string]*Table
	tableIDs map[string]int // stable numeric IDs for signature bitmaps
	fks      []ForeignKey
	fkEdges  []fkEdge // fks as table IDs, for the signature index
	asts     []ASTDef

	statusMu        sync.Mutex // serializes status writers; readers use status
	status          atomic.Pointer[statusSnap]
	quarantineAfter int           // guarded by statusMu
	obsv            *obs.Observer // nil = observability disabled

	sigs sigIndex // candidate-pruning signature index (signature.go)
}

// statusSnap is one immutable published generation of every AST's freshness
// state. Readers must not mutate the map; writers replace the whole snapshot
// under statusMu (copy, mutate the copy, atomically publish).
type statusSnap struct {
	byName map[string]ASTStatus
}

// statusNow returns the current snapshot map (nil for a catalog that never
// recorded a transition — every AST then has the zero status).
func (c *Catalog) statusNow() map[string]ASTStatus {
	if s := c.status.Load(); s != nil {
		return s.byName
	}
	return nil
}

// mutateStatus applies f to the named AST's status in a copied snapshot and
// publishes the copy, returning the updated status. It is the single writer
// seam: every transition goes through here, so the published snapshot is
// always a complete, immutable generation.
func (c *Catalog) mutateStatus(name string, f func(*ASTStatus)) ASTStatus {
	name = strings.ToLower(name)
	c.statusMu.Lock()
	old := c.statusNow()
	next := make(map[string]ASTStatus, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	st := next[name]
	f(&st)
	next[name] = st
	c.status.Store(&statusSnap{byName: next})
	c.statusMu.Unlock()
	return st
}

// DefaultQuarantineThreshold is the number of consecutive refresh failures
// after which an AST is quarantined (circuit broken) until a successful full
// recompute.
const DefaultQuarantineThreshold = 3

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:          make(map[string]*Table),
		tableIDs:        make(map[string]int),
		quarantineAfter: DefaultQuarantineThreshold,
	}
}

// AddTable registers a table schema. It returns an error on duplicate names
// or duplicate column names.
func (c *Catalog) AddTable(t *Table) error {
	name := strings.ToLower(t.Name)
	if _, ok := c.tables[name]; ok {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	seen := make(map[string]bool, len(t.Columns))
	for _, col := range t.Columns {
		lc := strings.ToLower(col.Name)
		if seen[lc] {
			return fmt.Errorf("catalog: table %q has duplicate column %q", t.Name, col.Name)
		}
		seen[lc] = true
	}
	for _, k := range t.PrimaryKey {
		if !seen[strings.ToLower(k)] {
			return fmt.Errorf("catalog: table %q primary key references unknown column %q", t.Name, k)
		}
	}
	cp := *t
	cp.Name = name
	c.tables[name] = &cp
	if _, ok := c.tableIDs[name]; !ok {
		c.tableIDs[name] = len(c.tableIDs)
	}
	return nil
}

// MustAddTable is AddTable that panics on error.
func (c *Catalog) MustAddTable(t *Table) {
	if err := c.AddTable(t); err != nil {
		panic(err)
	}
}

// DropTable removes a table (used when re-materializing ASTs).
func (c *Catalog) DropTable(name string) {
	delete(c.tables, strings.ToLower(name))
}

// Table looks up a table by (case-insensitive) name.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all table names in sorted order.
func (c *Catalog) Tables() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AddForeignKey registers an RI constraint after validating that both sides
// exist and that the parent columns form a unique key.
func (c *Catalog) AddForeignKey(fk ForeignKey) error {
	fk.ChildTable = strings.ToLower(fk.ChildTable)
	fk.ParentTable = strings.ToLower(fk.ParentTable)
	child, ok := c.tables[fk.ChildTable]
	if !ok {
		return fmt.Errorf("catalog: FK child table %q not found", fk.ChildTable)
	}
	parent, ok := c.tables[fk.ParentTable]
	if !ok {
		return fmt.Errorf("catalog: FK parent table %q not found", fk.ParentTable)
	}
	if len(fk.ChildCols) != len(fk.ParentCols) || len(fk.ChildCols) == 0 {
		return fmt.Errorf("catalog: FK column lists must be equal-length and non-empty")
	}
	for i := range fk.ChildCols {
		fk.ChildCols[i] = strings.ToLower(fk.ChildCols[i])
		fk.ParentCols[i] = strings.ToLower(fk.ParentCols[i])
		if child.ColumnIndex(fk.ChildCols[i]) < 0 {
			return fmt.Errorf("catalog: FK child column %q not in %q", fk.ChildCols[i], fk.ChildTable)
		}
		if parent.ColumnIndex(fk.ParentCols[i]) < 0 {
			return fmt.Errorf("catalog: FK parent column %q not in %q", fk.ParentCols[i], fk.ParentTable)
		}
	}
	if !parent.HasUniqueKey(fk.ParentCols) {
		return fmt.Errorf("catalog: FK parent columns %v are not a unique key of %q", fk.ParentCols, fk.ParentTable)
	}
	c.fks = append(c.fks, fk)
	nonNull := true
	for _, cc := range fk.ChildCols {
		if col, ok := child.Column(cc); !ok || col.Nullable {
			nonNull = false
			break
		}
	}
	c.fkEdges = append(c.fkEdges, fkEdge{
		child:        c.tableIDs[fk.ChildTable],
		parent:       c.tableIDs[fk.ParentTable],
		nonNullChild: nonNull,
	})
	return nil
}

// MustAddForeignKey is AddForeignKey that panics on error.
func (c *Catalog) MustAddForeignKey(fk ForeignKey) {
	if err := c.AddForeignKey(fk); err != nil {
		panic(err)
	}
}

// ForeignKeys returns all registered RI constraints.
func (c *Catalog) ForeignKeys() []ForeignKey { return c.fks }

// LosslessJoin reports whether a join child→parent over the given column
// pairs is lossless for the child side, i.e. every child row joins with
// exactly one parent row. That requires an RI constraint covering exactly
// those column pairs with all child columns non-nullable.
//
// This implements the extra-join condition of paper §4.1.1 (condition 1).
func (c *Catalog) LosslessJoin(childTable string, childCols []string, parentTable string, parentCols []string) bool {
	childTable = strings.ToLower(childTable)
	parentTable = strings.ToLower(parentTable)
	child, ok := c.tables[childTable]
	if !ok {
		return false
	}
	for _, fk := range c.fks {
		if fk.ChildTable != childTable || fk.ParentTable != parentTable {
			continue
		}
		if !samePairs(fk.ChildCols, fk.ParentCols, childCols, parentCols) {
			continue
		}
		nonNull := true
		for _, cc := range fk.ChildCols {
			col, ok := child.Column(cc)
			if !ok || col.Nullable {
				nonNull = false
				break
			}
		}
		if nonNull {
			return true
		}
	}
	return false
}

func samePairs(aChild, aParent, bChild, bParent []string) bool {
	if len(aChild) != len(bChild) {
		return false
	}
	used := make([]bool, len(bChild))
outer:
	for i := range aChild {
		for j := range bChild {
			if !used[j] && aChild[i] == strings.ToLower(bChild[j]) && aParent[i] == strings.ToLower(bParent[j]) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// RegisterAST records an AST definition. The rewriter compiles the SQL when
// it needs the QGM graph; registration itself only checks for name clashes.
func (c *Catalog) RegisterAST(def ASTDef) error {
	def.Name = strings.ToLower(def.Name)
	for _, a := range c.asts {
		if a.Name == def.Name {
			return fmt.Errorf("catalog: AST %q already registered", def.Name)
		}
	}
	c.asts = append(c.asts, def)
	return nil
}

// MustRegisterAST is RegisterAST that panics on error.
func (c *Catalog) MustRegisterAST(def ASTDef) {
	if err := c.RegisterAST(def); err != nil {
		panic(err)
	}
}

// ASTs returns the registered AST definitions in registration order.
func (c *Catalog) ASTs() []ASTDef { return c.asts }

// UnregisterAST removes an AST definition by name.
func (c *Catalog) UnregisterAST(name string) {
	name = strings.ToLower(name)
	out := c.asts[:0]
	for _, a := range c.asts {
		if a.Name != name {
			out = append(out, a)
		}
	}
	c.asts = out
	c.statusMu.Lock()
	if old := c.statusNow(); len(old) > 0 {
		next := make(map[string]ASTStatus, len(old))
		for k, v := range old {
			if k != name {
				next[k] = v
			}
		}
		c.status.Store(&statusSnap{byName: next})
	}
	c.statusMu.Unlock()
	c.sigs.remove(name)
}

// ASTStatus is the runtime freshness state of one AST. The zero value means
// "fresh, never refreshed": usable, epoch 0.
type ASTStatus struct {
	// Epoch counts successful refreshes; maintenance bumps it so readers can
	// detect that the materialization advanced.
	Epoch int64
	// Stale marks a materialization that no longer reflects the base tables
	// (a failed or partial refresh). The rewriter refuses stale ASTs unless
	// Options.AllowStale.
	Stale bool
	// Quarantined is the tripped circuit breaker: the AST saw too many
	// consecutive refresh failures and is excluded from rewriting until a
	// successful full recompute clears it.
	Quarantined bool
	// Failures counts consecutive refresh failures since the last success.
	Failures int
}

// SetObserver attaches an observer recording AST freshness transitions
// (fresh/stale/quarantine) as counters and sequenced events; nil detaches.
// Not safe to call concurrently with status updates.
func (c *Catalog) SetObserver(o *obs.Observer) { c.obsv = o }

// SetQuarantineThreshold overrides the consecutive-failure count that trips
// the circuit breaker. n <= 0 restores the default.
func (c *Catalog) SetQuarantineThreshold(n int) {
	c.statusMu.Lock()
	defer c.statusMu.Unlock()
	if n <= 0 {
		n = DefaultQuarantineThreshold
	}
	c.quarantineAfter = n
}

// Status returns a copy of the AST's freshness state (zero value when the
// AST was never refreshed or marked). It is lock-free: the query path calls
// it once per registered AST per plan-cache lookup.
func (c *Catalog) Status(name string) ASTStatus {
	return c.statusNow()[strings.ToLower(name)]
}

// MarkFresh records a successful refresh: bumps the epoch, clears staleness
// and quarantine, and resets the failure counter. A successful full
// recompute is the only way out of quarantine.
func (c *Catalog) MarkFresh(name string) {
	c.mutateStatus(name, func(st *ASTStatus) {
		st.Epoch++
		st.Stale = false
		st.Quarantined = false
		st.Failures = 0
	})
	c.sigs.mark(strings.ToLower(name), false, false)
	c.obsv.Add("catalog.ast.fresh", 1)
	if c.obsv.Enabled() {
		c.obsv.Emit("catalog.fresh", name)
	}
}

// MarkStale flags the AST's materialization as out of date without counting
// a refresh failure (used when a read of the materialized table fails, or a
// base insert lands without the AST being refreshed).
func (c *Catalog) MarkStale(name string) {
	st := c.mutateStatus(name, func(st *ASTStatus) {
		st.Stale = true
	})
	c.sigs.mark(strings.ToLower(name), true, st.Quarantined)
	c.obsv.Add("catalog.ast.stale", 1)
	if c.obsv.Enabled() {
		c.obsv.Emit("catalog.stale", name)
	}
}

// RecordRefreshFailure marks the AST stale, increments its consecutive
// failure count, and trips the quarantine breaker when the threshold is
// reached. It returns the updated status.
func (c *Catalog) RecordRefreshFailure(name string) ASTStatus {
	tripped := false
	out := c.mutateStatus(name, func(st *ASTStatus) {
		st.Stale = true
		st.Failures++
		if st.Failures >= c.quarantineAfter { // quarantineAfter: statusMu held
			tripped = !st.Quarantined
			st.Quarantined = true
		}
	})
	c.sigs.mark(strings.ToLower(name), out.Stale, out.Quarantined)
	c.obsv.Add("catalog.ast.refresh_failures", 1)
	if tripped {
		c.obsv.Add("catalog.ast.quarantines", 1)
	}
	if c.obsv.Enabled() {
		c.obsv.Emit("catalog.refresh_failure", name)
		if tripped {
			c.obsv.Emit("catalog.quarantine", name)
		}
	}
	return out
}

// Usable reports whether the rewriter may route queries to the AST:
// quarantined ASTs never, stale ASTs only when the caller allows staleness.
// Lock-free (one atomic snapshot load), so per-candidate checks on the query
// path never serialize against maintenance transitions.
func (c *Catalog) Usable(name string, allowStale bool) bool {
	st := c.statusNow()[strings.ToLower(name)]
	if st.Quarantined {
		return false
	}
	return allowStale || !st.Stale
}
