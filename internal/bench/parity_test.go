package bench

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
	"repro/internal/workload"
)

// parityScale is large enough that the fact table crosses the parallel
// engine's minimum-rows threshold, so the partitioned scan/filter/aggregation
// paths actually execute (worker counts come from Limits.Parallelism, not
// GOMAXPROCS, so this holds on single-core machines too).
const parityScale = 6000

// checkParity runs one plan serially on the row engine (Parallelism=1,
// Vectorize=VecOff — the reference path) and at several worker counts on both
// the row and vectorized engines, and requires identical results each time.
// The serial leg is also run through the tree-walking interpreter
// (Interpret=true) and must agree with the compiled expression kernels bit
// for bit. The vectorized serial leg must be serial-identical — same rows in
// the same order, with tolerance only where parallel float-SUM accumulation
// order already allows divergence.
func checkParity(t *testing.T, eng *exec.Engine, g *qgm.Graph) {
	t.Helper()
	serial, err := eng.RunCtx(context.Background(), g, exec.Config{Parallelism: 1, Vectorize: exec.VecOff})
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	for _, par := range []int{1, 4} {
		interp, err := eng.RunCtx(context.Background(), g, exec.Config{Parallelism: par, Interpret: true})
		if err != nil {
			t.Fatalf("interpreted run (par=%d): %v", par, err)
		}
		if diff := exec.EqualResults(serial, interp); diff != "" {
			t.Fatalf("interpreted (par=%d) differs from compiled serial: %s", par, diff)
		}
	}
	legs := []struct {
		name string
		par  int
		vec  exec.VecMode
	}{
		{"row", 0, exec.VecOff}, {"row", 2, exec.VecOff}, {"row", 3, exec.VecOff}, {"row", 8, exec.VecOff},
		{"vectorized", 1, exec.VecAuto}, {"vectorized", 0, exec.VecAuto}, {"vectorized", 4, exec.VecAuto},
	}
	for _, leg := range legs {
		res, err := eng.RunCtx(context.Background(), g, exec.Config{Parallelism: leg.par, Vectorize: leg.vec})
		if err != nil {
			t.Fatalf("%s run (par=%d): %v", leg.name, leg.par, err)
		}
		if diff := exec.EqualResults(serial, res); diff != "" {
			t.Fatalf("%s par=%d differs from serial: %s", leg.name, leg.par, diff)
		}
		// The engine guarantees more than multiset equality: chunked operators
		// concatenate in order, so row order must match the serial path too.
		for i := range serial.Rows {
			for j := range serial.Rows[i] {
				a, b := serial.Rows[i][j], res.Rows[i][j]
				if a.GroupKey() != b.GroupKey() && !(a.IsNumeric() && b.IsNumeric()) {
					t.Fatalf("%s par=%d row %d differs in order from serial: %v vs %v", leg.name, leg.par, i, serial.Rows[i], res.Rows[i])
				}
			}
		}
	}
}

// TestSerialParallelParity is the result-parity property test for the
// parallel execution engine: every paper query (original and rewritten
// against its paired AST) must produce the same result at every worker count
// as the serial reference path.
func TestSerialParallelParity(t *testing.T) {
	env := NewEnv(parityScale, coreOptions())
	for name, sql := range ASTDefs {
		env.MustRegisterAST(name, sql)
	}
	for _, p := range pairings {
		p := p
		t.Run(p.Query+"/original", func(t *testing.T) {
			g, err := qgm.BuildSQL(Queries[p.Query], env.Cat)
			if err != nil {
				t.Fatal(err)
			}
			checkParity(t, env.Engine, g)
		})
		if !p.WantMatch {
			continue
		}
		t.Run(p.Query+"/rewritten_"+p.AST, func(t *testing.T) {
			g, err := qgm.BuildSQL(Queries[p.Query], env.Cat)
			if err != nil {
				t.Fatal(err)
			}
			if env.RW.Rewrite(g, env.ASTs[p.AST]) == nil {
				t.Fatalf("%s did not rewrite against %s", p.Query, p.AST)
			}
			checkParity(t, env.Engine, g)
		})
	}
}

// TestSerialParallelParityDS extends the parity property to the TPC-D-style
// suite, both against base tables and routed through the deployed AST set.
func TestSerialParallelParityDS(t *testing.T) {
	env := NewEnv(parityScale, coreOptions())
	var asts []*core.CompiledAST
	for _, d := range workload.DSASTs {
		ca, err := env.RegisterAST(d.Name, d.SQL)
		if err != nil {
			t.Fatal(err)
		}
		asts = append(asts, ca)
	}
	for _, q := range workload.DSQueries {
		q := q
		t.Run(q.Name+"/original", func(t *testing.T) {
			g, err := qgm.BuildSQL(q.SQL, env.Cat)
			if err != nil {
				t.Fatal(err)
			}
			checkParity(t, env.Engine, g)
		})
		t.Run(q.Name+"/routed", func(t *testing.T) {
			g, err := qgm.BuildSQL(q.SQL, env.Cat)
			if err != nil {
				t.Fatal(err)
			}
			env.RW.RewriteBestCost(g, asts, env.Store)
			checkParity(t, env.Engine, g)
		})
	}
}

// TestParallelBudgetAndCancellation: the resilience contract holds on the
// parallel paths — MaxRows is charged run-wide through the shared counter and
// context cancellation surfaces as the typed error, at every worker count.
func TestParallelBudgetAndCancellation(t *testing.T) {
	env := NewEnv(parityScale, coreOptions())
	g, err := qgm.BuildSQL(Queries["q1"], env.Cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("budget/par=%d", par), func(t *testing.T) {
			_, err := env.Engine.RunCtx(context.Background(), g, exec.Config{MaxRows: 100, Parallelism: par})
			if err == nil {
				t.Fatal("expected budget error")
			}
			if !isBudget(err) {
				t.Fatalf("want ErrBudgetExceeded, got %v", err)
			}
		})
		t.Run(fmt.Sprintf("cancel/par=%d", par), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := env.Engine.RunCtx(ctx, g, exec.Config{Parallelism: par})
			if err == nil {
				t.Fatal("expected cancellation error")
			}
			if !isCanceled(err) {
				t.Fatalf("want ErrCanceled, got %v", err)
			}
		})
	}
}

func isBudget(err error) bool   { return errors.Is(err, exec.ErrBudgetExceeded) }
func isCanceled(err error) bool { return errors.Is(err, exec.ErrCanceled) }
