package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/maintain"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/workload"
)

// RunE14 reproduces the paper's headline evaluation style: a TPC-D-flavoured
// decision-support suite routed through a small deployed AST set with
// cost-based applicability (intro problem (b)). It reports, per query, which
// AST serves it and the speedup, plus suite-level aggregates — the shape to
// compare with the paper's "dramatic improvements ... using a small number of
// ASTs in each case".
func RunE14(w io.Writer, scale int) error {
	env := NewEnv(scale, core.Options{})
	var asts []*core.CompiledAST
	totalASTRows := 0
	for _, d := range workload.DSASTs {
		ca, err := env.RegisterAST(d.Name, d.SQL)
		if err != nil {
			return err
		}
		asts = append(asts, ca)
		totalASTRows += env.Cardinality(d.Name)
	}
	fmt.Fprintf(w, "fact rows: %d; %d ASTs totalling %d rows (%.1fx compression)\n",
		env.Cardinality("trans"), len(asts), totalASTRows,
		float64(env.Cardinality("trans"))/float64(max(1, totalASTRows)))

	tbl := newTable("query", "served_by", "verified", "t_orig", "t_new", "speedup")
	served := 0
	var sumOrig, sumNew time.Duration
	for _, q := range workload.DSQueries {
		origRes, origDur, err := env.Run(q.SQL)
		if err != nil {
			return fmt.Errorf("%s: %w", q.Name, err)
		}
		sumOrig += origDur

		g, err := qgm.BuildSQL(q.SQL, env.Cat)
		if err != nil {
			return err
		}
		res := env.RW.RewriteBestCost(g, asts, env.Store)
		if res == nil {
			tbl.add(q.Name, "(base tables)", "-", origDur, "-", "-")
			sumNew += origDur
			continue
		}
		start := time.Now()
		newRes, err := env.Engine.Run(g)
		if err != nil {
			return fmt.Errorf("%s rewritten: %w\n%s", q.Name, err, g.SQL())
		}
		newDur := time.Since(start)
		sumNew += newDur
		diff := exec.EqualResults(origRes, newRes)
		if diff != "" {
			return fmt.Errorf("%s: UNSOUND: %s", q.Name, diff)
		}
		served++
		tbl.add(q.Name, res.AST.Def.Name, "yes", origDur, newDur,
			float64(origDur)/float64(newDur))
	}
	tbl.flush(w)
	fmt.Fprintf(w, "%d/%d queries served by ASTs; suite latency %s → %s (%.1fx)\n",
		served, len(workload.DSQueries), formatDur(sumOrig), formatDur(sumNew),
		float64(sumOrig)/float64(max64(1, int64(sumNew))))
	return nil
}

// RunE15 exercises the companion problems end to end: the HRU greedy advisor
// (intro problem (a)) picks cuboids on measured cardinalities, the picked
// ASTs are materialized and kept fresh by incremental maintenance (problem
// (c)) under insert batches, and the suite keeps verifying against them.
func RunE15(w io.Writer, scale int) error {
	env := NewEnv(min(scale, 20000), core.Options{})

	cfg := advisor.Config{
		Fact: "trans",
		Dims: []advisor.Dimension{
			{Name: "flid", Expr: "flid"},
			{Name: "faid", Expr: "faid"},
			{Name: "fpgid", Expr: "fpgid"},
			{Name: "year", Expr: "year(date)"},
		},
		Aggs: []string{"count(*) as cnt", "sum(qty) as sum_qty"},
		K:    3,
	}
	props, lattice, err := advisor.SelectASTs(cfg, env.Cat, env.Store)
	if err != nil {
		return err
	}
	tbl := newTable("pick", "cuboid", "rows", "benefit")
	for i, p := range props {
		tbl.add(i+1, fmt.Sprintf("%v", p.Dims), p.Rows, p.Benefit)
	}
	tbl.flush(w)
	fmt.Fprintf(w, "lattice top (fact) = %d rows\n", lattice.Size[lattice.Top()])

	// Materialize proposals and build maintenance plans.
	m := maintain.New(env.Store)
	var plans []*maintain.Plan
	var asts []*core.CompiledAST
	for _, p := range props {
		ca, err := env.RegisterAST(p.Def.Name, p.Def.SQL)
		if err != nil {
			return err
		}
		asts = append(asts, ca)
		plan := m.Analyze(ca)
		plans = append(plans, plan)
		fmt.Fprintf(w, "%s: maintenance=%s\n", p.Def.Name, plan.Strategy)
	}

	// Insert batches and refresh.
	tbl2 := newTable("batch", "rows", "ast", "strategy", "delta_groups", "merged", "added", "t_refresh")
	nextTid := int64(10_000_000)
	for batch := 1; batch <= 3; batch++ {
		rows := syntheticTransRows(env, nextTid, 500)
		nextTid += int64(len(rows))
		stats, err := m.ApplyInsert(plans, "trans", rows)
		if err != nil {
			return err
		}
		for _, st := range stats {
			tbl2.add(batch, len(rows), st.AST, st.Strategy.String(), st.DeltaRows, st.Merged, st.Added, st.Duration)
		}
	}
	tbl2.flush(w)

	// Queries still verify against the maintained ASTs.
	verified := 0
	for _, q := range []string{
		"select flid, year(date) as year, count(*) as cnt from trans group by flid, year(date)",
		"select fpgid, sum(qty) as s from trans group by fpgid",
		"select year(date) as year, count(*) as cnt from trans group by year(date)",
	} {
		origRes, _, err := env.Run(q)
		if err != nil {
			return err
		}
		g, err := qgm.BuildSQL(q, env.Cat)
		if err != nil {
			return err
		}
		if env.RW.RewriteBest(g, asts) == nil {
			continue
		}
		newRes, err := env.Engine.Run(g)
		if err != nil {
			return err
		}
		if diff := exec.EqualResults(origRes, newRes); diff != "" {
			return fmt.Errorf("post-maintenance mismatch: %s\n%s", diff, g.SQL())
		}
		verified++
	}
	fmt.Fprintf(w, "%d/3 follow-up queries served by maintained ASTs and verified\n", verified)
	return nil
}

// syntheticTransRows builds RI-consistent insert batches.
func syntheticTransRows(env *Env, firstTid int64, n int) [][]sqltypes.Value {
	accts := env.Cardinality("acct")
	locs := env.Cardinality("loc")
	pgs := env.Cardinality("pgroup")
	rows := make([][]sqltypes.Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []sqltypes.Value{
			sqltypes.NewInt(firstTid + int64(i)),
			sqltypes.NewInt(int64(1 + (i*7)%accts)),
			sqltypes.NewInt(int64(1 + (i*5)%pgs)),
			sqltypes.NewInt(int64(1 + (i*3)%locs)),
			sqltypes.NewDate(1990+i%3, 1+i%12, 1+i%28),
			sqltypes.NewInt(int64(1 + i%5)),
			sqltypes.NewFloat(float64(10+i%490) / 2),
			sqltypes.NewFloat(float64(i%30) / 100),
		})
	}
	return rows
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
