package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/qgm"
	"repro/internal/workload"
)

// TestPruneSupersetPaperSuite is the exhaustive conservatism sweep for the
// candidate-pruning signature index over the paper workloads: for every paper
// query (q1–q12) and every TPC-D-style query, against every registered AST,
// whenever the full matcher finds a match the index must have admitted the
// pair. The index may only refute pairs the matcher would reject.
func TestPruneSupersetPaperSuite(t *testing.T) {
	env := NewEnv(400, coreOptions())
	type namedAST struct {
		name string
		ca   *core.CompiledAST
	}
	var asts []namedAST
	for name, sql := range ASTDefs {
		asts = append(asts, namedAST{name, env.MustRegisterAST(name, sql)})
	}
	for _, d := range workload.DSASTs {
		ca, err := env.RegisterAST(d.Name, d.SQL)
		if err != nil {
			t.Fatal(err)
		}
		asts = append(asts, namedAST{d.Name, ca})
	}

	queries := map[string]string{}
	for name, sql := range Queries {
		queries[name] = sql
	}
	for _, q := range workload.DSQueries {
		queries[q.Name] = q.SQL
	}

	pairs, matchedPairs, prunedPairs := 0, 0, 0
	for qname, sql := range queries {
		for _, a := range asts {
			// Matching mutates the query graph (compensation boxes), so each
			// pair gets a fresh build.
			g, err := qgm.BuildSQL(sql, env.Cat)
			if err != nil {
				t.Fatalf("build %s: %v", qname, err)
			}
			qsig := core.ComputeSignature(env.Cat, g)
			if qsig == nil {
				t.Fatalf("%s: query signature must be computable over catalog tables", qname)
			}
			admit := env.Cat.AdmitsAST(a.name, qsig, false)
			matches := core.NewMatcher(env.Cat, g, a.ca.Graph, coreOptions()).Run()
			pairs++
			if len(matches) > 0 {
				matchedPairs++
				if !admit {
					t.Errorf("UNSOUND PRUNE: %s matches %s but the index refused it\nqsig: %+v\nasig: %+v",
						qname, a.name, qsig, a.ca.Sig)
				}
			}
			if !admit {
				prunedPairs++
			}
		}
	}
	t.Logf("paper sweep: %d pairs, %d matched, %d pruned", pairs, matchedPairs, prunedPairs)
	if prunedPairs == 0 {
		t.Error("paper sweep never pruned a pair: the index is vacuous on the paper workloads")
	}
}
