package bench

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/workload"
)

// WideTables is the synthetic catalog width used by the catalog-scaling
// experiment (E15): enough tables that most registered ASTs are disjoint from
// any single-table query, which is exactly the situation the signature index
// is built for.
const WideTables = 64

// NewWideEnv builds an environment over numTables small synthetic tables
// t0 … t{numTables-1}(k, g, v), each loaded with rowsPer rows. E15's
// interesting dimension is the number of registered ASTs, not data volume, so
// the tables stay tiny.
func NewWideEnv(numTables, rowsPer int) *Env {
	cat := catalog.New()
	store := storage.NewStore()
	for i := 0; i < numTables; i++ {
		meta := &catalog.Table{
			Name: fmt.Sprintf("t%d", i),
			Columns: []catalog.Column{
				{Name: "k", Type: sqltypes.KindInt},
				{Name: "g", Type: sqltypes.KindInt},
				{Name: "v", Type: sqltypes.KindInt},
			},
			PrimaryKey: []string{"k"},
		}
		cat.MustAddTable(meta)
		td := store.Create(meta)
		for r := 0; r < rowsPer; r++ {
			td.MustInsert(
				sqltypes.NewInt(int64(r)),
				sqltypes.NewInt(int64(r%8)),
				sqltypes.NewInt(int64(r*3)))
		}
	}
	return &Env{
		Cat:    cat,
		Store:  store,
		Engine: exec.NewEngine(store),
		RW:     core.NewRewriter(cat, core.Options{}),
		Cfg:    workload.StarConfig{},
		ASTs:   map[string]*core.CompiledAST{},
	}
}

// RegisterWideASTs registers count grouping ASTs round-robin across the wide
// tables (AST j summarizes t{j mod numTables}) and returns them in
// registration order. With a query over t0, only every numTables-th AST can
// possibly match — the signature index should refuse the rest without running
// the matcher.
func RegisterWideASTs(e *Env, count, numTables int) ([]*core.CompiledAST, error) {
	asts := make([]*core.CompiledAST, 0, count)
	for j := 0; j < count; j++ {
		name := fmt.Sprintf("w%03d", j)
		sql := fmt.Sprintf("select g as g, count(*) as c, sum(v) as s from t%d group by g", j%numTables)
		ca, err := e.RegisterAST(name, sql)
		if err != nil {
			return nil, err
		}
		asts = append(asts, ca)
	}
	return asts, nil
}

// WideQuery is the probe query for the catalog-scaling experiment: a
// single-table aggregate over t0.
const WideQuery = "select g, count(*) as c from t0 group by g"
