// Package bench is the experiment harness: it reproduces every figure and
// table of the paper (the worked rewrite examples of Figures 2–15, the cube
// semantics of Figure 12, the negative example of Table 1) and quantifies the
// performance claims (§1.1, §8) on the synthetic Figure 1 star schema —
// original vs rewritten latency, AST/base size ratios, matching overhead, and
// ablations of the documented design choices.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/astdb"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Env is a loaded database plus a rewriter: the shared substrate of all
// experiments.
type Env struct {
	Cat    *catalog.Catalog
	Store  *storage.Store
	Engine *exec.Engine
	RW     *core.Rewriter
	Cfg    workload.StarConfig
	ASTs   map[string]*core.CompiledAST
}

// NewEnv builds the star schema at the given fact-table size and seed.
func NewEnv(numTrans int, opts core.Options) *Env {
	cat := catalog.New()
	workload.Schema(cat)
	store := storage.NewStore()
	cfg := workload.Load(cat, store, workload.StarConfig{NumTrans: numTrans, Seed: 20000521})
	return &Env{
		Cat:    cat,
		Store:  store,
		Engine: exec.NewEngine(store),
		RW:     core.NewRewriter(cat, opts),
		Cfg:    cfg,
		ASTs:   map[string]*core.CompiledAST{},
	}
}

// NewEnvDefault is NewEnv with the paper-faithful default options.
func NewEnvDefault(numTrans int) *Env { return NewEnv(numTrans, core.Options{}) }

// DB wraps the environment in the astdb facade, handing it the summary tables
// registered so far in name order (ASTs registered afterwards are not seen).
func (e *Env) DB(opts ...astdb.Option) *astdb.Engine {
	names := make([]string, 0, len(e.ASTs))
	for n := range e.ASTs {
		names = append(names, n)
	}
	sort.Strings(names)
	asts := make([]*core.CompiledAST, 0, len(names))
	for _, n := range names {
		asts = append(asts, e.ASTs[n])
	}
	return astdb.Wrap(e.RW, e.Engine, asts, opts...)
}

// RegisterAST compiles an AST definition, materializes it into the store, and
// records it for matching.
func (e *Env) RegisterAST(name, sql string) (*core.CompiledAST, error) {
	ca, err := e.RW.CompileAST(catalog.ASTDef{Name: name, SQL: sql})
	if err != nil {
		return nil, err
	}
	res, err := e.Engine.Run(ca.Graph)
	if err != nil {
		return nil, fmt.Errorf("bench: materializing %s: %w", name, err)
	}
	e.Store.Put(ca.Table, res.Rows)
	e.ASTs[name] = ca
	return ca, nil
}

// MustRegisterAST is RegisterAST that panics on error.
func (e *Env) MustRegisterAST(name, sql string) *core.CompiledAST {
	ca, err := e.RegisterAST(name, sql)
	if err != nil {
		panic(err)
	}
	return ca
}

// Run parses, builds and executes a query, returning the result and the
// execution latency (excluding parse/build time).
func (e *Env) Run(sql string) (*exec.Result, time.Duration, error) {
	g, err := qgm.BuildSQL(sql, e.Cat)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	res, err := e.Engine.Run(g)
	return res, time.Since(start), err
}

// Trial is the outcome of one original-vs-rewritten measurement.
type Trial struct {
	Query     string
	AST       string
	NewSQL    string
	Rewritten bool
	Verified  bool
	Diff      string // first difference when not verified

	OrigRows int
	OrigDur  time.Duration
	NewDur   time.Duration
	MatchDur time.Duration // time spent matching + splicing
}

// Speedup returns the original/rewritten latency ratio.
func (t *Trial) Speedup() float64 {
	if t.NewDur <= 0 {
		return 0
	}
	return float64(t.OrigDur) / float64(t.NewDur)
}

// RunTrial executes a query both ways against one AST and verifies result
// equality.
func (e *Env) RunTrial(sql string, ast *core.CompiledAST) (*Trial, error) {
	tr := &Trial{Query: sql, AST: ast.Def.Name}

	origRes, origDur, err := e.Run(sql)
	if err != nil {
		return nil, fmt.Errorf("bench: original: %w", err)
	}
	tr.OrigDur = origDur
	tr.OrigRows = len(origRes.Rows)

	g, err := qgm.BuildSQL(sql, e.Cat)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := e.RW.Rewrite(g, ast)
	tr.MatchDur = time.Since(start)
	if res == nil {
		return tr, nil
	}
	tr.Rewritten = true
	tr.NewSQL = g.SQL()

	start = time.Now()
	newRes, err := e.Engine.Run(g)
	if err != nil {
		return nil, fmt.Errorf("bench: rewritten: %w\nSQL: %s", err, tr.NewSQL)
	}
	tr.NewDur = time.Since(start)
	tr.Diff = exec.EqualResults(origRes, newRes)
	tr.Verified = tr.Diff == ""
	return tr, nil
}

// Cardinality returns a loaded table's row count (0 when missing).
func (e *Env) Cardinality(table string) int {
	td, ok := e.Store.Table(table)
	if !ok {
		return 0
	}
	return td.Cardinality()
}

// Experiment is one reproducible unit: a paper figure or claim.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string
	Run      func(w io.Writer, scale int) error
}

// Registry returns all experiments in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{"E01", "Q1/AST1 rewrite and speedup", "Figure 2", RunE01},
		{"E02", "SELECT boxes with exact child matches", "Figure 5", RunE02},
		{"E03", "GROUP BY re-aggregation (month→year)", "Figure 6", RunE03},
		{"E04", "GROUP BY with SELECT child compensation", "Figure 7", RunE04},
		{"E05", "GROUP BY with rejoin child compensation", "Figure 8", RunE05},
		{"E06", "GROUP BY child compensation (histograms)", "Figure 10", RunE06},
		{"E07", "SELECT with grouping compensation + scalar subquery", "Figure 11", RunE07},
		{"E08", "Grouping-sets semantics sample", "Figure 12", RunE08},
		{"E09", "Simple GROUP BY vs cube AST", "Figure 13", RunE09},
		{"E10", "Cube query vs cube AST", "Figure 14", RunE10},
		{"E11", "Semantic HAVING mismatch rejection", "Table 1 / Figure 15", RunE11},
		{"E12", "Speedups and size ratios across scales", "§1.1/§8 claims", RunE12},
		{"E13", "Matching overhead", "§8 practicality claim", RunE13},
		{"E14", "TPC-D-style suite over a deployed AST set", "§1/§8 TPC-D claims", RunE14},
		{"E15", "Advisor + incremental maintenance round trip", "intro problems (a),(b),(c)", RunE15},
		{"E16", "Incremental vs full AST refresh cost", "intro problem (c)", RunE16},
		{"E17", "Verification sensitivity (negative control)", "harness audit", RunE17},
		{"A01", "Ablation: minimal-QCL derivation", "§4.1.1 example", RunA01},
		{"A02", "Ablation: 1:N rejoin regrouping elimination", "§4.2.1 example 2", RunA02},
		{"A03", "Ablation: smallest-cuboid selection", "§5.1", RunA03},
	}
}

// coreOptions returns the default (paper-faithful) options; a helper for
// tests.
func coreOptions() core.Options { return core.Options{} }

// sqltypesAdd adds one to an integer value (E17 corruption helper).
func sqltypesAdd(v sqltypes.Value, n int64) sqltypes.Value {
	out, err := sqltypes.Add(v, sqltypes.NewInt(n))
	if err != nil {
		return v
	}
	return out
}
