package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// runPairs executes a set of (query, AST) trials on one env and prints the
// standard figure table: whether the rewrite happened (and was expected),
// result verification, latencies and speedup.
func runPairs(w io.Writer, env *Env, keys []string) error {
	tbl := newTable("figure", "query", "ast", "rewritten", "verified", "rows", "t_orig", "t_new", "speedup", "t_match")
	var newSQLs []string
	for _, key := range keys {
		var p *Pairing
		for i := range pairings {
			if pairings[i].Query == key {
				p = &pairings[i]
				break
			}
		}
		if p == nil {
			return fmt.Errorf("bench: unknown query %q", key)
		}
		ast, ok := env.ASTs[p.AST]
		if !ok {
			var err error
			ast, err = env.RegisterAST(p.AST, ASTDefs[p.AST])
			if err != nil {
				return err
			}
		}
		tr, err := env.RunTrial(Queries[p.Query], ast)
		if err != nil {
			return err
		}
		if tr.Rewritten != p.WantMatch {
			return fmt.Errorf("bench: %s vs %s: rewritten=%v, paper says %v", p.Query, p.AST, tr.Rewritten, p.WantMatch)
		}
		if tr.Rewritten && !tr.Verified {
			return fmt.Errorf("bench: %s vs %s: UNSOUND rewrite: %s", p.Query, p.AST, tr.Diff)
		}
		if tr.Rewritten {
			tbl.add(p.Figure, p.Query, p.AST, "yes", okMark(tr.Verified), tr.OrigRows, tr.OrigDur, tr.NewDur, tr.Speedup(), tr.MatchDur)
			newSQLs = append(newSQLs, fmt.Sprintf("New%s: %s", strings.ToUpper(p.Query), tr.NewSQL))
		} else {
			tbl.add(p.Figure, p.Query, p.AST, "no (expected)", "-", tr.OrigRows, tr.OrigDur, "-", "-", tr.MatchDur)
		}
	}
	tbl.flush(w)
	for _, s := range newSQLs {
		fmt.Fprintln(w, s)
	}
	return nil
}

func runFigure(w io.Writer, scale int, keys ...string) error {
	env := NewEnv(scale, core.Options{})
	return runPairs(w, env, keys)
}

// RunE01 reproduces Figure 2: Q1 over AST1, including the ~100× AST/base
// size-ratio narrative of §1.1.
func RunE01(w io.Writer, scale int) error {
	env := NewEnv(scale, core.Options{})
	if _, err := env.RegisterAST("ast1", ASTDefs["ast1"]); err != nil {
		return err
	}
	fmt.Fprintf(w, "Trans rows: %d, AST1 rows: %d, size ratio: %.1fx\n",
		env.Cardinality("trans"), env.Cardinality("ast1"),
		float64(env.Cardinality("trans"))/float64(max(1, env.Cardinality("ast1"))))
	return runPairs(w, env, []string{"q1"})
}

// RunE02 reproduces Figure 5 (Q2/AST2).
func RunE02(w io.Writer, scale int) error { return runFigure(w, scale, "q2") }

// RunE03 reproduces Figure 6 (Q4/AST6).
func RunE03(w io.Writer, scale int) error { return runFigure(w, scale, "q4") }

// RunE04 reproduces Figure 7 (Q6/AST6).
func RunE04(w io.Writer, scale int) error { return runFigure(w, scale, "q6") }

// RunE05 reproduces Figure 8 (Q7/AST7).
func RunE05(w io.Writer, scale int) error { return runFigure(w, scale, "q7") }

// RunE06 reproduces Figure 10 (Q8/AST8).
func RunE06(w io.Writer, scale int) error { return runFigure(w, scale, "q8") }

// RunE07 reproduces Figure 11 (Q10/AST10).
func RunE07(w io.Writer, scale int) error { return runFigure(w, scale, "q10") }

// RunE08 reproduces Figure 12 verbatim: the paper's 8-row sample table and
// its grouping-sets result.
func RunE08(w io.Writer, scale int) error {
	cat := catalog.New()
	cat.MustAddTable(&catalog.Table{
		Name: "trans",
		Columns: []catalog.Column{
			{Name: "flid", Type: sqltypes.KindInt},
			{Name: "year", Type: sqltypes.KindInt},
			{Name: "faid", Type: sqltypes.KindInt},
		},
	})
	store := storage.NewStore()
	meta, _ := cat.Table("trans")
	td := store.Create(meta)
	for _, d := range [][3]int64{
		{1, 1990, 100}, {1, 1991, 100}, {1, 1991, 200}, {1, 1991, 300},
		{1, 1992, 100}, {1, 1992, 400}, {2, 1991, 400}, {2, 1991, 400},
	} {
		td.MustInsert(sqltypes.NewInt(d[0]), sqltypes.NewInt(d[1]), sqltypes.NewInt(d[2]))
	}
	g, err := qgm.BuildSQL(`select flid, year, faid, count(*) as cnt
		from trans group by grouping sets((flid, year), (year, faid))`, cat)
	if err != nil {
		return err
	}
	res, err := exec.NewEngine(store).Run(g)
	if err != nil {
		return err
	}
	exec.SortRows(res.Rows)
	tbl := newTable("flid", "year", "faid", "cnt")
	for _, r := range res.Rows {
		tbl.add(r[0].String(), r[1].String(), r[2].String(), r[3].String())
	}
	tbl.flush(w)
	fmt.Fprintf(w, "%d result rows (paper shows 11)\n", len(res.Rows))
	if len(res.Rows) != 11 {
		return fmt.Errorf("bench: Figure 12 expects 11 rows, got %d", len(res.Rows))
	}
	return nil
}

// RunE09 reproduces Figure 13 (Q11.1, Q11.2 match; Q11.3 must not).
func RunE09(w io.Writer, scale int) error {
	return runFigure(w, scale, "q11_1", "q11_2", "q11_3")
}

// RunE10 reproduces Figure 14 (Q12.1, Q12.2).
func RunE10(w io.Writer, scale int) error {
	return runFigure(w, scale, "q12_1", "q12_2")
}

// RunE11 reproduces Table 1 / Figure 15: the HAVING-carrying AST must be
// rejected (the translated predicate sum(cnt) > 2 is not the AST's cnt > 2).
func RunE11(w io.Writer, scale int) error {
	if err := runFigure(w, scale, "qbad"); err != nil {
		return err
	}
	fmt.Fprintln(w, "Translation detected sum(cnt) > 2 ≠ cnt > 2; match correctly rejected.")
	return nil
}

// RunE12 quantifies the §1.1/§8 performance claims: latency and size ratios
// across fact-table scales and AST granularities.
func RunE12(w io.Writer, scale int) error {
	scales := []int{scale / 10, scale / 2, scale}
	tbl := newTable("trans_rows", "ast", "ast_rows", "ratio", "query", "t_orig", "t_new", "speedup")
	for _, n := range scales {
		if n <= 0 {
			continue
		}
		env := NewEnv(n, core.Options{})
		for _, c := range []struct{ ast, query string }{
			{"ast1", "q1"},
			{"ast7", "q7"},
			{"ast11", "q11_1"},
		} {
			ast, err := env.RegisterAST(c.ast, ASTDefs[c.ast])
			if err != nil {
				return err
			}
			tr, err := env.RunTrial(Queries[c.query], ast)
			if err != nil {
				return err
			}
			if !tr.Rewritten || !tr.Verified {
				return fmt.Errorf("bench: E12 %s/%s failed: rewritten=%v diff=%s", c.query, c.ast, tr.Rewritten, tr.Diff)
			}
			tbl.add(env.Cardinality("trans"), c.ast, env.Cardinality(c.ast),
				fmt.Sprintf("%.1fx", float64(env.Cardinality("trans"))/float64(max(1, env.Cardinality(c.ast)))),
				c.query, tr.OrigDur, tr.NewDur, tr.Speedup())
		}
	}
	tbl.flush(w)
	return nil
}

// RunE13 measures matching overhead: microseconds to match and splice each
// paper query, and RewriteBest latency against growing AST pools.
func RunE13(w io.Writer, scale int) error {
	env := NewEnv(min(scale, 5000), core.Options{})
	for name, sql := range ASTDefs {
		if _, err := env.RegisterAST(name, sql); err != nil {
			return err
		}
	}
	const iters = 50
	tbl := newTable("query", "ast", "match+splice", "matched")
	for _, p := range pairings {
		// Pre-parse outside the timed region; rebuild per iteration because
		// Rewrite mutates the graph.
		var total time.Duration
		matched := false
		for i := 0; i < iters; i++ {
			g, err := qgm.BuildSQL(Queries[p.Query], env.Cat)
			if err != nil {
				return err
			}
			start := time.Now()
			res := env.RW.Rewrite(g, env.ASTs[p.AST])
			total += time.Since(start)
			matched = res != nil
		}
		tbl.add(p.Query, p.AST, total/iters, okMark(matched))
	}
	tbl.flush(w)

	// Pool scaling: q1 against 1, 4 and 8 candidate ASTs.
	pools := [][]string{
		{"ast1"},
		{"ast7", "ast6", "ast8", "ast1"},
		{"ast7", "ast6", "ast8", "ast10", "ast11", "ast2", "astbad", "ast1"},
	}
	tbl2 := newTable("pool_size", "t_rewrite_best")
	for _, pool := range pools {
		asts := make([]*core.CompiledAST, len(pool))
		for i, n := range pool {
			asts[i] = env.ASTs[n]
		}
		var total time.Duration
		for i := 0; i < iters; i++ {
			g, err := qgm.BuildSQL(Queries["q1"], env.Cat)
			if err != nil {
				return err
			}
			start := time.Now()
			env.RW.RewriteBest(g, asts)
			total += time.Since(start)
		}
		tbl2.add(len(pool), total/iters)
	}
	tbl2.flush(w)
	return nil
}

// RunA01 ablates the minimal-QCL derivation preference (§4.1.1): with
// leaf-first derivation, amt is recomputed from three base columns instead of
// value*(1-disc).
func RunA01(w io.Writer, scale int) error {
	tbl := newTable("mode", "rewritten", "verified", "amt derivation")
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"minimal-QCL (paper)", core.Options{}},
		{"leaf-first (ablation)", core.Options{LeafFirstDerivation: true}},
	} {
		env := NewEnv(scale, mode.opts)
		ast, err := env.RegisterAST("ast2", ASTDefs["ast2"])
		if err != nil {
			return err
		}
		tr, err := env.RunTrial(Queries["q2"], ast)
		if err != nil {
			return err
		}
		amt := "-"
		if tr.Rewritten {
			low := strings.ToLower(tr.NewSQL)
			if i := strings.Index(low, "as amt"); i > 0 {
				start := strings.LastIndex(low[:i], "select")
				if c := strings.LastIndex(low[:i], ","); c > start {
					start = c
				}
				amt = oneLine(tr.NewSQL[start+1 : i])
			}
		}
		tbl.add(mode.name, okMark(tr.Rewritten), okMark(tr.Verified), truncate(amt, 60))
	}
	tbl.flush(w)
	return nil
}

// RunA02 ablates the 1:N rejoin regrouping elimination (§4.2.1 example 2):
// forcing regrouping on Q7 adds a GROUP BY box and costs latency.
func RunA02(w io.Writer, scale int) error {
	tbl := newTable("mode", "regroups", "verified", "t_new")
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"eliminate 1:N regroup (paper)", core.Options{}},
		{"always regroup (ablation)", core.Options{AlwaysRegroup: true}},
	} {
		env := NewEnv(scale, mode.opts)
		ast, err := env.RegisterAST("ast7", ASTDefs["ast7"])
		if err != nil {
			return err
		}
		tr, err := env.RunTrial(Queries["q7"], ast)
		if err != nil {
			return err
		}
		if !tr.Rewritten || !tr.Verified {
			return fmt.Errorf("bench: A02 %s: rewritten=%v diff=%s", mode.name, tr.Rewritten, tr.Diff)
		}
		regroups := strings.Contains(strings.ToLower(tr.NewSQL), "group by")
		tbl.add(mode.name, okMark(regroups), okMark(tr.Verified), tr.NewDur)
	}
	tbl.flush(w)
	return nil
}

// RunA03 ablates smallest-cuboid selection (§5.1): taking the first matching
// cuboid instead reads a larger slice and may force regrouping.
func RunA03(w io.Writer, scale int) error {
	tbl := newTable("mode", "regroups", "verified", "t_new")
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"smallest cuboid (paper)", core.Options{}},
		{"first cuboid (ablation)", core.Options{FirstCuboid: true}},
	} {
		env := NewEnv(scale, mode.opts)
		ast, err := env.RegisterAST("ast11", ASTDefs["ast11"])
		if err != nil {
			return err
		}
		tr, err := env.RunTrial(Queries["q11_1"], ast)
		if err != nil {
			return err
		}
		if !tr.Rewritten || !tr.Verified {
			return fmt.Errorf("bench: A03 %s: rewritten=%v diff=%s", mode.name, tr.Rewritten, tr.Diff)
		}
		regroups := strings.Contains(strings.ToLower(tr.NewSQL), "group by")
		tbl.add(mode.name, okMark(regroups), okMark(tr.Verified), tr.NewDur)
	}
	tbl.flush(w)
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
