package bench

import (
	"context"
	"database/sql"
	"fmt"
	"sort"
	"sync"
	"time"

	// Register the "astdb" database/sql driver: the load harness measures the
	// full client path — interpolation, wire framing, session pooling — not
	// the in-process facade.
	_ "repro/astdb/driver"
)

// LoadSpec describes one load-generation leg against a running wire server.
type LoadSpec struct {
	// Addr is the server's host:port (a DSN without options).
	Addr string
	// Sessions is the number of concurrent client sessions; the pool is
	// pinned to exactly this many connections.
	Sessions int
	// TotalQueries is the leg's total query count, spread evenly across
	// sessions (a remainder goes to the first workers).
	TotalQueries int
	// Queries is the statement mix; each worker cycles through it starting
	// at its own offset so every leg exercises the full mix.
	Queries []string
	// Warmup queries (cycling through the mix) run on one session before
	// timing starts — they pay the one-time costs (dial, plan-cache fill)
	// that a steady-state throughput number should not include.
	Warmup int
}

// LoadResult is one measured leg.
type LoadResult struct {
	Sessions int
	// Queries that completed successfully and were timed.
	Queries int
	// Errors is the count of failed queries (they are not timed).
	Errors int
	// FirstErr samples one failure for diagnostics.
	FirstErr error
	// Elapsed is wall-clock time for the timed portion of the leg.
	Elapsed time.Duration
	// QPS is successful queries per wall-clock second.
	QPS float64
	// P50 and P99 are exact percentiles over per-query client-side
	// latencies (dial amortized away by warmup and pooling).
	P50, P99 time.Duration
}

// RunLoad drives one leg: Sessions workers over a pinned connection pool,
// each issuing its share of TotalQueries round-robin through the mix.
func RunLoad(ctx context.Context, spec LoadSpec) (*LoadResult, error) {
	if spec.Sessions <= 0 || spec.TotalQueries <= 0 || len(spec.Queries) == 0 {
		return nil, fmt.Errorf("bench: underspecified load leg %+v", spec)
	}
	db, err := sql.Open("astdb", spec.Addr)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	db.SetMaxOpenConns(spec.Sessions)
	db.SetMaxIdleConns(spec.Sessions)
	db.SetConnMaxLifetime(0)

	for i := 0; i < spec.Warmup; i++ {
		if err := drainOne(ctx, db, spec.Queries[i%len(spec.Queries)]); err != nil {
			return nil, fmt.Errorf("bench: warmup query %d: %w", i, err)
		}
	}

	type worker struct {
		lat  []time.Duration
		errs int
		err  error
	}
	workers := make([]worker, spec.Sessions)
	per := spec.TotalQueries / spec.Sessions
	extra := spec.TotalQueries % spec.Sessions

	var wg sync.WaitGroup
	start := time.Now()
	for w := range workers {
		n := per
		if w < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			me := &workers[w]
			me.lat = make([]time.Duration, 0, n)
			for i := 0; i < n; i++ {
				q := spec.Queries[(w+i)%len(spec.Queries)]
				began := time.Now()
				if err := drainOne(ctx, db, q); err != nil {
					me.errs++
					if me.err == nil {
						me.err = err
					}
					continue
				}
				me.lat = append(me.lat, time.Since(began))
			}
		}(w, n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &LoadResult{Sessions: spec.Sessions, Elapsed: elapsed}
	var all []time.Duration
	for i := range workers {
		all = append(all, workers[i].lat...)
		res.Errors += workers[i].errs
		if res.FirstErr == nil {
			res.FirstErr = workers[i].err
		}
	}
	res.Queries = len(all)
	if elapsed > 0 {
		res.QPS = float64(res.Queries) / elapsed.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50 = percentile(all, 0.50)
	res.P99 = percentile(all, 0.99)
	return res, nil
}

// drainOne executes one query and iterates its full result (a client that
// doesn't read the rows hasn't measured the query).
func drainOne(ctx context.Context, db *sql.DB, q string) error {
	rows, err := db.QueryContext(ctx, q)
	if err != nil {
		return err
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		return err
	}
	vals := make([]any, len(cols))
	ptrs := make([]any, len(cols))
	for i := range vals {
		ptrs[i] = &vals[i]
	}
	for rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			return err
		}
	}
	return rows.Err()
}

// percentile takes an exact rank from sorted samples (nearest-rank method).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// LoadReport is the machine-readable concurrency benchmark (BENCH_4.json):
// throughput and tail latency of the wire server at 1/8/64/512 sessions for
// each statement mix. GOMAXPROCS is recorded for the same reason as in the
// earlier BENCH files — on a single-core host the sweep measures admission
// and queueing behavior (p99 growth), not parallel speedup.
type LoadReport struct {
	GOMAXPROCS int       `json:"gomaxprocs"`
	Scale      int       `json:"scale"`
	Legs       []LoadLeg `json:"legs"`
}

// LoadLeg is one (mix, sessions) measurement.
type LoadLeg struct {
	// Mix names the server configuration the leg ran against:
	// "original" (no summary tables, plan cache off), "rewritten" (summary
	// tables, plan cache off — every query pays matching), "cached"
	// (summary tables + plan cache).
	Mix      string  `json:"mix"`
	Sessions int     `json:"sessions"`
	Queries  int     `json:"queries"`
	Errors   int     `json:"errors"`
	QPS      float64 `json:"qps"`
	P50Us    float64 `json:"p50_us"`
	P99Us    float64 `json:"p99_us"`
}

// Leg converts a measured result into its report row.
func (r *LoadResult) Leg(mix string) LoadLeg {
	return LoadLeg{
		Mix:      mix,
		Sessions: r.Sessions,
		Queries:  r.Queries,
		Errors:   r.Errors,
		QPS:      r.QPS,
		P50Us:    float64(r.P50) / float64(time.Microsecond),
		P99Us:    float64(r.P99) / float64(time.Microsecond),
	}
}
