package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/maintain"
	"repro/internal/sqltypes"
)

// RunE16 quantifies the benefit of incremental AST maintenance (intro problem
// (c)): refresh latency for insert batches, incremental delta-merge vs full
// recomputation, across batch sizes. The paper's premise — ASTs are only
// viable if their upkeep is cheap — shows up as the widening gap at small
// batch/large base ratios.
func RunE16(w io.Writer, scale int) error {
	const astSQL = `
		select flid, year(date) as year, month(date) as month,
		       count(*) as cnt, sum(qty) as sq, sum(qty * price) as rev,
		       min(price) as lo, max(price) as hi
		from trans
		group by flid, year(date), month(date)`

	tbl := newTable("base_rows", "batch_rows", "t_incremental", "t_full", "ratio")
	for _, batch := range []int{100, 1000, 10000} {
		// Incremental path.
		envI := NewEnv(scale, core.Options{})
		caI, err := envI.RegisterAST("e16ast", astSQL)
		if err != nil {
			return err
		}
		mI := maintain.New(envI.Store)
		planI := mI.Analyze(caI)
		if planI.Strategy != maintain.Incremental {
			return fmt.Errorf("bench: E16 AST should be incremental: %s", planI.Reason)
		}
		rows := syntheticTransRows(envI, 20_000_000, batch)
		start := time.Now()
		if _, err := mI.ApplyInsert([]*maintain.Plan{planI}, "trans", rows); err != nil {
			return err
		}
		tInc := time.Since(start)

		// Full-recompute path: same insert, then re-evaluate the definition.
		envF := NewEnv(scale, core.Options{})
		caF, err := envF.RegisterAST("e16ast", astSQL)
		if err != nil {
			return err
		}
		rowsF := syntheticTransRows(envF, 20_000_000, batch)
		start = time.Now()
		td := envF.Store.MustTable("trans")
		for _, r := range rowsF {
			if err := td.Insert(r); err != nil {
				return err
			}
		}
		res, err := envF.Engine.Run(caF.Graph)
		if err != nil {
			return err
		}
		envF.Store.Put(caF.Table, res.Rows)
		tFull := time.Since(start)

		tbl.add(scale, batch, tInc, tFull, fmt.Sprintf("%.1fx", float64(tFull)/float64(max64(1, int64(tInc)))))
	}
	tbl.flush(w)
	return nil
}

// RunE17 is a negative control for the whole harness: corrupt one row of a
// materialized AST and confirm the result verification (used by every other
// experiment) detects the divergence. A harness that cannot fail would make
// all the "verified" columns above meaningless.
func RunE17(w io.Writer, scale int) error {
	env := NewEnv(min(scale, 10000), core.Options{})
	ast, err := env.RegisterAST("e17ast", `
		select flid, year(date) as year, count(*) as cnt
		from trans group by flid, year(date)`)
	if err != nil {
		return err
	}
	const sql = `select flid, count(*) as cnt from trans group by flid`

	clean, err := env.RunTrial(sql, ast)
	if err != nil {
		return err
	}
	if !clean.Rewritten || !clean.Verified {
		return fmt.Errorf("bench: E17 clean trial should verify: %+v", clean)
	}

	// Corrupt a single count in the materialized table. The chunked store
	// has no in-place row mutation: copy the snapshot, corrupt one value,
	// and swap the table wholesale (restoring the clean version after).
	td := env.Store.MustTable("e17ast")
	clean0 := td.Snapshot()
	dirtyRows := append([][]sqltypes.Value(nil), clean0...)
	dirtyRows[0] = append([]sqltypes.Value(nil), dirtyRows[0]...)
	dirtyRows[0][2] = sqltypesAdd(dirtyRows[0][2], 1)
	env.Store.Put(td.Meta, dirtyRows)
	dirty, err := env.RunTrial(sql, ast)
	if err != nil {
		return err
	}
	env.Store.Put(td.Meta, clean0)

	tbl := newTable("condition", "rewritten", "verified", "first difference")
	tbl.add("clean AST", okMark(clean.Rewritten), okMark(clean.Verified), "-")
	tbl.add("one corrupted row", okMark(dirty.Rewritten), okMark(dirty.Verified), truncate(dirty.Diff, 60))
	tbl.flush(w)
	if dirty.Verified {
		return fmt.Errorf("bench: E17 verification failed to detect the corruption")
	}
	fmt.Fprintln(w, "verification detects a single corrupted aggregate: the 'verified' columns are live checks")
	return nil
}
