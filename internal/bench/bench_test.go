package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsSmoke runs every registered experiment at a small scale;
// each must succeed and print a table. This keeps the EXPERIMENTS.md pipeline
// from rotting.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments skipped in -short mode")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, 3000); err != nil {
				t.Fatalf("%s (%s): %v\noutput so far:\n%s", e.ID, e.PaperRef, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

// TestPairingsCoverAllFiguresAndQueries: every declared query and AST is used
// by some pairing, and each pairing has SQL.
func TestPairingsCoverAllFiguresAndQueries(t *testing.T) {
	usedQ := map[string]bool{}
	usedA := map[string]bool{}
	for _, p := range pairings {
		if _, ok := Queries[p.Query]; !ok {
			t.Errorf("pairing references unknown query %q", p.Query)
		}
		if _, ok := ASTDefs[p.AST]; !ok {
			t.Errorf("pairing references unknown AST %q", p.AST)
		}
		usedQ[p.Query] = true
		usedA[p.AST] = true
	}
	for q := range Queries {
		if !usedQ[q] {
			t.Errorf("query %q not paired", q)
		}
	}
	for a := range ASTDefs {
		if !usedA[a] {
			t.Errorf("AST %q not paired", a)
		}
	}
}

func TestTrialSpeedup(t *testing.T) {
	env := NewEnv(1000, coreOptions())
	ast, err := env.RegisterAST("ast7", ASTDefs["ast7"])
	if err != nil {
		t.Fatal(err)
	}
	tr, err := env.RunTrial(Queries["q7"], ast)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Rewritten || !tr.Verified {
		t.Fatalf("trial failed: %+v", tr)
	}
	if tr.Speedup() <= 0 {
		t.Fatalf("speedup %f", tr.Speedup())
	}
	if !strings.Contains(strings.ToLower(tr.NewSQL), "ast7") {
		t.Fatalf("NewSQL does not read the AST: %s", tr.NewSQL)
	}
}

func TestTableWriter(t *testing.T) {
	var buf bytes.Buffer
	tbl := newTable("a", "long_header")
	tbl.add("x", 42)
	tbl.add("yy", 3.14159)
	tbl.flush(&buf)
	out := buf.String()
	if !strings.Contains(out, "long_header") || !strings.Contains(out, "3.14") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d", len(lines))
	}
}
