package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// tableWriter prints fixed-width ASCII tables for experiment output.
type tableWriter struct {
	headers []string
	rows    [][]string
}

func newTable(headers ...string) *tableWriter {
	return &tableWriter{headers: headers}
}

func (t *tableWriter) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = formatDur(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func (t *tableWriter) flush(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "| "+strings.Join(parts, " | ")+" |")
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func formatDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

func okMark(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

// oneLine collapses whitespace in SQL text for compact table cells.
func oneLine(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// truncate shortens long strings for table cells.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
