package bench

// The figures' queries and ASTs, adapted to the Figure 1 schema exactly as
// printed in the paper (HAVING thresholds scale with the synthetic data; the
// paper's "count(*) > 100" assumes production volumes).

// ASTDefs maps AST names to their defining SQL.
var ASTDefs = map[string]string{
	// Figure 2.
	"ast1": `select faid, flid, year(date) as year, count(*) as cnt
	         from trans
	         group by faid, flid, year(date)`,

	// Figure 5.
	"ast2": `select tid, faid, fpgid, status, country, price, qty, disc, qty * price as value
	         from trans, loc, acct
	         where lid = flid and faid = aid and disc > 0.1`,

	// Figures 6 and 7 share the monthly-value AST.
	"ast6": `select year(date) as year, month(date) as month, sum(qty * price) as value
	         from trans
	         group by year(date), month(date)`,

	// Figure 8.
	"ast7": `select flid, year(date) as year, count(*) as cnt
	         from trans
	         group by flid, year(date)`,

	// Figure 10 (histogram of monthly transaction counts).
	"ast8": `select year, tcnt, count(*) as mcnt
	         from (select year(date) as year, month(date) as month, count(*) as tcnt
	               from trans
	               group by year(date), month(date)) m
	         group by year, tcnt`,

	// Figure 11 (per-location yearly counts plus the grand total).
	"ast10": `select flid, year(date) as year, count(*) as cnt,
	                 (select count(*) from trans) as totcnt
	          from trans
	          group by flid, year(date)`,

	// Figures 13 and 14 (the multidimensional AST).
	"ast11": `select flid, faid, year(date) as year, month(date) as month, count(*) as cnt
	          from trans
	          group by grouping sets((flid, faid, year(date)), (flid, year(date)),
	                                 (flid, year(date), month(date)), (year(date)))`,

	// Table 1 (the unsound variant: HAVING inside the AST).
	"astbad": `select flid, year(date) as year, count(*) as cnt
	           from trans
	           group by flid, year(date)
	           having count(*) > 2`,
}

// Queries maps query names to their SQL.
var Queries = map[string]string{
	"q1": `select faid, state, year(date) as year, count(*) as cnt
	       from trans, loc
	       where flid = lid and country = 'USA'
	       group by faid, state, year(date)
	       having count(*) > 3`,

	"q2": `select aid, status, qty * price * (1 - disc) as amt
	       from trans, pgroup, acct
	       where pgid = fpgid and faid = aid
	       and price > 100 and disc > 0.1 and pgname = 'TV'`,

	"q4": `select year(date) as year, sum(qty * price) as value
	       from trans
	       group by year(date)`,

	"q6": `select year(date) % 100 as yy, sum(qty * price) as value
	       from trans
	       where month(date) >= 6
	       group by year(date) % 100`,

	"q7": `select lid, year(date) as year, count(*) as cnt
	       from trans, loc
	       where flid = lid and country = 'USA'
	       group by lid, year(date)`,

	"q8": `select tcnt, count(*) as ycnt
	       from (select year(date) as year, month(date) as month, count(*) as tcnt
	             from trans
	             group by year(date), month(date)) m
	       group by tcnt`,

	"q10": `select flid, count(*) * 100 / (select count(*) from trans) as cntpct
	        from trans, loc
	        where flid = lid and country = 'USA'
	        group by flid
	        having count(*) > 2`,

	"q11_1": `select flid, year(date) as year, count(*) as cnt
	          from trans
	          where year(date) > 1990
	          group by flid, year(date)`,

	"q11_2": `select flid, year(date) as year, count(*) as cnt
	          from trans
	          where month(date) >= 6
	          group by flid, year(date)`,

	"q11_3": `select flid, year(date) as year, month(date) as month,
	                 count(distinct faid) as custcnt
	          from trans
	          group by flid, year(date), month(date)`,

	"q12_1": `select flid, year(date) as year, count(*) as cnt
	          from trans
	          where year(date) > 1990
	          group by grouping sets((flid, year(date)), (year(date)))`,

	"q12_2": `select flid, year(date) as year, count(*) as cnt
	          from trans
	          where year(date) > 1990
	          group by grouping sets((flid), (year(date)))`,

	"qbad": `select flid, count(*) as cnt
	         from trans
	         group by flid`,
}

// Pairing is one query/AST pairing of the paper suite: which AST the query
// targets and whether the paper expects the match to succeed.
type Pairing struct {
	Query, AST string
	WantMatch  bool
	Figure     string
}

// Pairings returns the paper suite's query/AST pairings (a copy; callers may
// reorder it). External oracles — the plan-soundness suite in
// internal/qgmcheck, parity tests — iterate it to cover every pattern.
func Pairings() []Pairing {
	return append([]Pairing(nil), pairings...)
}

// pairings lists which AST each paper query targets.
var pairings = []Pairing{
	{"q1", "ast1", true, "Figure 2"},
	{"q2", "ast2", true, "Figure 5"},
	{"q4", "ast6", true, "Figure 6"},
	{"q6", "ast6", true, "Figure 7"},
	{"q7", "ast7", true, "Figure 8"},
	{"q8", "ast8", true, "Figure 10"},
	{"q10", "ast10", true, "Figure 11"},
	{"q11_1", "ast11", true, "Figure 13"},
	{"q11_2", "ast11", true, "Figure 13"},
	{"q11_3", "ast11", false, "Figure 13"},
	{"q12_1", "ast11", true, "Figure 14"},
	{"q12_2", "ast11", true, "Figure 14"},
	{"qbad", "astbad", false, "Table 1"},
}
