package qgm

import (
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

// exprFixture builds a quantifier over a two-column producer for expression
// tests.
func exprFixture() (*Quantifier, *ColRef, *ColRef) {
	box := &Box{ID: 1, Kind: SelectBox, Label: "P",
		Cols: []QCL{{Name: "x"}, {Name: "y"}}}
	q := &Quantifier{ID: 1, Box: box}
	return q, &ColRef{Q: q, Col: 0}, &ColRef{Q: q, Col: 1}
}

func TestExprStringRendering(t *testing.T) {
	q, x, y := exprFixture()
	_ = q
	cases := []struct {
		e    Expr
		want string
	}{
		{x, "q1.x"},
		{&Const{Val: sqltypes.NewInt(5)}, "5"},
		{&Const{Val: sqltypes.NewString("a'b")}, "'a''b'"},
		{&Call{Name: "year", Args: []Expr{x}}, "year(q1.x)"},
		{&Bin{Op: "+", L: x, R: y}, "(q1.x + q1.y)"},
		{&Not{E: x}, "(NOT q1.x)"},
		{&IsNull{E: x}, "(q1.x IS NULL)"},
		{&IsNull{E: x, Neg: true}, "(q1.x IS NOT NULL)"},
		{&Agg{Op: "count", Star: true}, "count(*)"},
		{&Agg{Op: "sum", Arg: x}, "sum(q1.x)"},
		{&Agg{Op: "count", Arg: x, Distinct: true}, "count(DISTINCT q1.x)"},
		{&Case{Whens: []CaseWhen{{Cond: x, Then: y}}, Else: x},
			"CASE WHEN q1.x THEN q1.y ELSE q1.x END"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestMapExprTopDownPrunes(t *testing.T) {
	_, x, y := exprFixture()
	e := &Bin{Op: "+", L: &Bin{Op: "*", L: x, R: y}, R: y}
	// Replace the whole multiplication; its children must not be visited.
	visited := 0
	out := MapExprTopDown(e, func(n Expr) (Expr, bool) {
		visited++
		if b, ok := n.(*Bin); ok && b.Op == "*" {
			return &Const{Val: sqltypes.NewInt(7)}, true
		}
		return nil, false
	})
	if !strings.Contains(out.String(), "7") {
		t.Fatalf("replacement missing: %s", out.String())
	}
	// Visits: +, *, and the right y — but not the children of *.
	if visited != 3 {
		t.Fatalf("visited %d nodes, want 3", visited)
	}
}

func TestMapExprRebuildsCase(t *testing.T) {
	_, x, y := exprFixture()
	e := &Case{Whens: []CaseWhen{{Cond: x, Then: y}}, Else: x}
	out := MapExpr(e, func(n Expr) Expr {
		if c, ok := n.(*ColRef); ok && c.Col == 0 {
			return &Const{Val: sqltypes.NewInt(9)}
		}
		return n
	})
	if got := out.String(); got != "CASE WHEN 9 THEN q1.y ELSE 9 END" {
		t.Fatalf("MapExpr over CASE: %s", got)
	}
}

func TestQuantifiersOfOrdering(t *testing.T) {
	boxA := &Box{ID: 10, Cols: []QCL{{Name: "a"}}}
	boxB := &Box{ID: 11, Cols: []QCL{{Name: "b"}}}
	q2 := &Quantifier{ID: 2, Box: boxA}
	q5 := &Quantifier{ID: 5, Box: boxB}
	e := &Bin{Op: "+", L: &ColRef{Q: q5, Col: 0}, R: &Bin{Op: "*",
		L: &ColRef{Q: q2, Col: 0}, R: &ColRef{Q: q5, Col: 0}}}
	qs := QuantifiersOf(e)
	if len(qs) != 2 || qs[0].ID != 2 || qs[1].ID != 5 {
		t.Fatalf("QuantifiersOf: %v", qs)
	}
}

func TestHasAggNested(t *testing.T) {
	_, x, _ := exprFixture()
	if !HasAgg(&Bin{Op: "+", L: &Agg{Op: "sum", Arg: x}, R: x}) {
		t.Fatal("nested aggregate not detected")
	}
	if HasAgg(&Bin{Op: "+", L: x, R: x}) {
		t.Fatal("false positive")
	}
}

func TestGraphTopology(t *testing.T) {
	cat := testCatalog(t)
	g := MustBuildSQL("select state, count(*) as c from trans, loc where flid = lid group by state", cat)
	leaves := g.Leaves()
	if len(leaves) != 2 {
		t.Fatalf("leaves: %d", len(leaves))
	}
	parents := g.Parents()
	// Each base table has exactly one consumer (the lower select box).
	for _, l := range leaves {
		if len(parents[l.ID]) != 1 {
			t.Fatalf("leaf %s consumers: %d", l.Label, len(parents[l.ID]))
		}
	}
	// Boxes() is bottom-up: children precede parents.
	pos := map[int]int{}
	for i, b := range g.Boxes() {
		pos[b.ID] = i
	}
	for _, b := range g.Boxes() {
		for _, q := range b.Quantifiers {
			if pos[q.Box.ID] >= pos[b.ID] {
				t.Fatalf("not bottom-up: %s before %s", b.Label, q.Box.Label)
			}
		}
	}
}

func TestGroupingColExprsAndKindStrings(t *testing.T) {
	cat := testCatalog(t)
	g := MustBuildSQL("select faid, flid, count(*) as c from trans group by faid, flid", cat)
	gb := g.Root.Child()
	exprs := gb.GroupingColExprs()
	if len(exprs) != 2 {
		t.Fatalf("grouping exprs: %d", len(exprs))
	}
	for _, k := range []BoxKind{BaseTableBox, SelectBox, GroupByBox} {
		if k.String() == "" || strings.HasPrefix(k.String(), "BoxKind") {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}

func TestInferTypeTable(t *testing.T) {
	cat := testCatalog(t)
	g := MustBuildSQL(`select tid + 1 as a, price * 2 as b, qty < 3 as c,
		note is null as d, case when qty > 1 then 'x' else note end as e
		from trans`, cat)
	wantKinds := []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindFloat, sqltypes.KindBool, sqltypes.KindBool, sqltypes.KindString}
	wantNullable := []bool{false, false, false, false, true}
	for i := range wantKinds {
		k, n := g.Root.OutputType(i)
		if k != wantKinds[i] || n != wantNullable[i] {
			t.Errorf("col %d: (%v, %v), want (%v, %v)", i, k, n, wantKinds[i], wantNullable[i])
		}
	}
}
