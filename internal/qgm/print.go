package qgm

import (
	"fmt"
	"strings"
)

// SQL renders the graph back to executable SQL text. The printer merges the
// canonical three-box block shape (upper SELECT over GROUP BY over lower
// SELECT) into a single SQL block, so rewritten queries read like the paper's
// NewQ examples. Boxes that don't fit a block shape render as derived tables.
func (g *Graph) SQL() string {
	return renderQuery(g.Root)
}

// renderQuery renders any box as a standalone SELECT statement.
func renderQuery(b *Box) string {
	switch b.Kind {
	case BaseTableBox:
		return "SELECT * FROM " + b.Table.Name
	case GroupByBox:
		// A GROUP BY box as query root: synthesize the enclosing block.
		return renderBlock(nil, b, b.Child())
	case SelectBox:
		if gb, lower, ok := blockShape(b); ok {
			return renderBlock(b, gb, lower)
		}
		return renderBlock(b, nil, nil)
	default:
		return fmt.Sprintf("/* unsupported box %s */", b.Label)
	}
}

// blockShape recognizes the upper-SELECT → GROUP BY → lower-SELECT pattern.
func blockShape(top *Box) (gb, lower *Box, ok bool) {
	var forEach []*Quantifier
	for _, q := range top.Quantifiers {
		if q.Kind == ForEach {
			forEach = append(forEach, q)
		}
	}
	if len(forEach) != 1 || forEach[0].Box.Kind != GroupByBox {
		return nil, nil, false
	}
	gb = forEach[0].Box
	child := gb.Child()
	if child.Kind != SelectBox {
		return nil, nil, false
	}
	return gb, child, true
}

// renderEnv resolves column references during printing. Quantifiers listed in
// fromAliases render as alias.col; quantifiers in inline have their referenced
// QCL expression substituted and re-rendered.
type renderEnv struct {
	fromAliases map[int]string
	inline      map[int]*Box
}

func renderBlock(top, gb, lower *Box) string {
	// The box holding the FROM children and WHERE predicates.
	fromBox := lower
	if fromBox == nil {
		fromBox = top
	}

	env := &renderEnv{fromAliases: map[int]string{}, inline: map[int]*Box{}}
	var fromItems []string
	used := map[string]int{}
	for _, q := range fromBox.Quantifiers {
		if q.Kind != ForEach {
			continue
		}
		alias := q.Alias
		if alias == "" {
			if q.Box.Kind == BaseTableBox {
				alias = q.Box.Table.Name
			} else {
				alias = fmt.Sprintf("t%d", q.ID)
			}
		}
		if n, ok := used[alias]; ok {
			used[alias] = n + 1
			alias = fmt.Sprintf("%s_%d", alias, n+1)
		} else {
			used[alias] = 0
		}
		env.fromAliases[q.ID] = alias
		if q.Box.Kind == BaseTableBox {
			if alias == q.Box.Table.Name {
				fromItems = append(fromItems, q.Box.Table.Name)
			} else {
				fromItems = append(fromItems, q.Box.Table.Name+" AS "+alias)
			}
		} else {
			fromItems = append(fromItems, "("+renderQuery(q.Box)+") AS "+alias)
		}
	}
	// Inline substitution for the intermediate boxes of a merged block.
	if gb != nil && top != nil {
		for _, q := range top.Quantifiers {
			if q.Kind == ForEach && q.Box == gb {
				env.inline[q.ID] = gb
			}
		}
	}
	if gb != nil && lower != nil {
		for _, q := range gb.Quantifiers {
			if q.Box == lower {
				env.inline[q.ID] = lower
			}
		}
	}

	var sb strings.Builder
	sb.WriteString("SELECT ")
	outBox := top
	if outBox == nil {
		outBox = gb
	}
	if outBox.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, c := range outBox.Cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		rendered := renderExpr(c.Expr, env)
		sb.WriteString(rendered)
		if c.Name != "" && !strings.EqualFold(lastIdent(rendered), c.Name) {
			sb.WriteString(" AS " + c.Name)
		}
	}
	sb.WriteString(" FROM " + strings.Join(fromItems, ", "))

	if len(fromBox.Preds) > 0 {
		sb.WriteString(" WHERE " + renderExpr(AndAll(fromBox.Preds), env))
	}
	if gb != nil && len(gb.GroupBy) > 0 {
		sb.WriteString(" GROUP BY " + renderGrouping(gb, env))
	}
	if top != nil && gb != nil && len(top.Preds) > 0 {
		sb.WriteString(" HAVING " + renderExpr(AndAll(top.Preds), env))
	}
	return sb.String()
}

func renderGrouping(gb *Box, env *renderEnv) string {
	renderPos := func(pos int) string {
		return renderExpr(gb.Cols[gb.GroupBy[pos]].Expr, env)
	}
	if gb.IsSimpleGroupBy() {
		parts := make([]string, len(gb.GroupBy))
		for i := range gb.GroupBy {
			parts[i] = renderPos(i)
		}
		return strings.Join(parts, ", ")
	}
	sets := make([]string, len(gb.GroupingSets))
	for i, gs := range gb.GroupingSets {
		cols := make([]string, len(gs))
		for j, pos := range gs {
			cols[j] = renderPos(pos)
		}
		sets[i] = "(" + strings.Join(cols, ", ") + ")"
	}
	return "GROUPING SETS(" + strings.Join(sets, ", ") + ")"
}

// renderExpr renders an expression, substituting inline boxes and resolving
// FROM aliases.
func renderExpr(e Expr, env *renderEnv) string {
	switch t := e.(type) {
	case *ColRef:
		if t.Q == nil {
			return fmt.Sprintf("?col%d", t.Col)
		}
		if t.Q.Kind == Scalar {
			return "(" + renderQuery(t.Q.Box) + ")"
		}
		if box, ok := env.inline[t.Q.ID]; ok {
			return renderExpr(box.Cols[t.Col].Expr, env)
		}
		if alias, ok := env.fromAliases[t.Q.ID]; ok {
			return alias + "." + t.Q.Box.Cols[t.Col].Name
		}
		return t.String()
	case *Const:
		return t.Val.SQLLiteral()
	case *Call:
		args := make([]string, len(t.Args))
		for i, a := range t.Args {
			args[i] = renderExpr(a, env)
		}
		return t.Name + "(" + strings.Join(args, ", ") + ")"
	case *Bin:
		return "(" + renderExpr(t.L, env) + " " + t.Op + " " + renderExpr(t.R, env) + ")"
	case *Not:
		return "(NOT " + renderExpr(t.E, env) + ")"
	case *IsNull:
		if t.Neg {
			return "(" + renderExpr(t.E, env) + " IS NOT NULL)"
		}
		return "(" + renderExpr(t.E, env) + " IS NULL)"
	case *Like:
		n := ""
		if t.Neg {
			n = "NOT "
		}
		return "(" + renderExpr(t.E, env) + " " + n + "LIKE " + renderExpr(t.Pattern, env) + ")"
	case *Agg:
		if t.Star {
			return t.Op + "(*)"
		}
		d := ""
		if t.Distinct {
			d = "DISTINCT "
		}
		return t.Op + "(" + d + renderExpr(t.Arg, env) + ")"
	case *Case:
		var sb strings.Builder
		sb.WriteString("CASE")
		for _, w := range t.Whens {
			sb.WriteString(" WHEN " + renderExpr(w.Cond, env) + " THEN " + renderExpr(w.Then, env))
		}
		if t.Else != nil {
			sb.WriteString(" ELSE " + renderExpr(t.Else, env))
		}
		sb.WriteString(" END")
		return sb.String()
	default:
		return fmt.Sprintf("/*?%T*/", e)
	}
}

// lastIdent extracts the trailing identifier of a rendered expression, used
// to suppress redundant "AS col" when the expression already ends in the
// column name (e.g. "loc.state AS state").
func lastIdent(s string) string {
	i := strings.LastIndexByte(s, '.')
	if i < 0 {
		return s
	}
	return s[i+1:]
}

// Dump renders the graph structure for debugging: every box with its kind,
// label, columns, predicates and children.
func (g *Graph) Dump() string {
	var sb strings.Builder
	for _, b := range g.Boxes() {
		fmt.Fprintf(&sb, "box %d [%s] %s", b.ID, b.Kind, b.Label)
		if b.Kind == BaseTableBox {
			fmt.Fprintf(&sb, " table=%s", b.Table.Name)
		}
		if b.Distinct {
			sb.WriteString(" DISTINCT")
		}
		sb.WriteString("\n")
		for _, q := range b.Quantifiers {
			kind := "F"
			if q.Kind == Scalar {
				kind = "S"
			}
			fmt.Fprintf(&sb, "  quant q%d(%s) -> box %d (%s)\n", q.ID, kind, q.Box.ID, q.Box.Label)
		}
		for i, c := range b.Cols {
			marker := ""
			if b.Kind == GroupByBox && b.IsGroupCol(i) {
				marker = " [group]"
			}
			if c.Expr != nil {
				fmt.Fprintf(&sb, "  col %d %s = %s%s\n", i, c.Name, c.Expr.String(), marker)
			} else {
				fmt.Fprintf(&sb, "  col %d %s%s\n", i, c.Name, marker)
			}
		}
		for _, p := range b.Preds {
			fmt.Fprintf(&sb, "  pred %s\n", p.String())
		}
		if b.Kind == GroupByBox && !b.IsSimpleGroupBy() {
			fmt.Fprintf(&sb, "  grouping sets %v\n", b.GroupingSets)
		}
	}
	return sb.String()
}
