package qgm

import (
	"fmt"
)

// Validate checks the structural invariants of a graph and returns the first
// violation. It is used by tests to audit every compensation the matcher
// splices in, and by the CLI when loading hand-written definitions:
//
//   - the root exists and every quantifier points at a box;
//   - base-table boxes carry a table and no predicates or quantifiers;
//   - GROUP BY boxes have exactly one ForEach child, grouping columns that
//     are plain input references, aggregate expressions for every other
//     column, and grouping sets whose positions are in range;
//   - every column reference targets a quantifier visible in the referencing
//     box and a column within the producer's arity;
//   - aggregate expressions appear only as GROUP BY output columns.
//
// Deprecated: use internal/qgmcheck, whose Structural check is a strict
// superset of these rules (pointer-identity bindings, grouping-set
// canonicalization, scalar-quantifier arity) and whose full Check adds type
// inference and compensation post-conditions. Validate is retained for
// callers that cannot import qgmcheck (qgmcheck itself imports qgm).
func (g *Graph) Validate() error {
	if g.Root == nil {
		return fmt.Errorf("qgm: graph has no root")
	}
	for _, b := range g.Boxes() {
		if err := validateBox(b); err != nil {
			return fmt.Errorf("box %s(#%d): %w", b.Label, b.ID, err)
		}
	}
	return nil
}

func validateBox(b *Box) error {
	inScope := map[int]*Quantifier{}
	for _, q := range b.Quantifiers {
		if q.Box == nil {
			return fmt.Errorf("quantifier q%d has no child box", q.ID)
		}
		inScope[q.ID] = q
	}

	// checkExpr verifies column references; aggregates are only legal as the
	// top node of a GROUP BY output column, which validateBox checks
	// structurally before descending into the argument.
	checkExpr := func(e Expr) error {
		var err error
		WalkExpr(e, func(x Expr) bool {
			if err != nil {
				return false
			}
			switch t := x.(type) {
			case *ColRef:
				if t.Q == nil {
					err = fmt.Errorf("unbound column reference")
					return false
				}
				q, ok := inScope[t.Q.ID]
				if !ok {
					err = fmt.Errorf("reference to out-of-scope quantifier q%d", t.Q.ID)
					return false
				}
				if t.Col < 0 || t.Col >= len(q.Box.Cols) {
					err = fmt.Errorf("column %d out of range for %s (arity %d)", t.Col, q.Box.Label, len(q.Box.Cols))
					return false
				}
			case *Agg:
				err = fmt.Errorf("aggregate %s outside a GROUP BY output column", t.String())
				return false
			}
			return true
		})
		return err
	}

	switch b.Kind {
	case BaseTableBox:
		if b.Table == nil {
			return fmt.Errorf("base table box without table")
		}
		if len(b.Quantifiers) > 0 || len(b.Preds) > 0 {
			return fmt.Errorf("base table box with children or predicates")
		}
		if len(b.Cols) != len(b.Table.Columns) {
			return fmt.Errorf("base table arity mismatch")
		}
		return nil

	case SelectBox:
		for _, c := range b.Cols {
			if c.Expr == nil {
				return fmt.Errorf("select output %q has no expression", c.Name)
			}
			if err := checkExpr(c.Expr); err != nil {
				return fmt.Errorf("output %q: %w", c.Name, err)
			}
		}
		for i, p := range b.Preds {
			if err := checkExpr(p); err != nil {
				return fmt.Errorf("predicate %d: %w", i, err)
			}
		}
		if len(b.GroupBy) > 0 || len(b.GroupingSets) > 0 {
			return fmt.Errorf("select box with grouping metadata")
		}
		return nil

	case GroupByBox:
		if len(b.Quantifiers) != 1 || b.Quantifiers[0].Kind != ForEach {
			return fmt.Errorf("GROUP BY box must have exactly one ForEach child")
		}
		if len(b.Preds) > 0 {
			return fmt.Errorf("GROUP BY box with predicates")
		}
		seen := map[int]bool{}
		for _, col := range b.GroupBy {
			if col < 0 || col >= len(b.Cols) {
				return fmt.Errorf("grouping ordinal %d out of range", col)
			}
			if seen[col] {
				return fmt.Errorf("duplicate grouping ordinal %d", col)
			}
			seen[col] = true
			if _, ok := b.Cols[col].Expr.(*ColRef); !ok {
				return fmt.Errorf("grouping column %q is not a plain input reference", b.Cols[col].Name)
			}
		}
		for i, c := range b.Cols {
			if b.IsGroupCol(i) {
				if err := checkExpr(c.Expr); err != nil {
					return fmt.Errorf("grouping column %q: %w", c.Name, err)
				}
				continue
			}
			agg, ok := c.Expr.(*Agg)
			if !ok {
				return fmt.Errorf("non-grouping output %q is not an aggregate", c.Name)
			}
			if !agg.Star {
				if err := checkExpr(agg.Arg); err != nil {
					return fmt.Errorf("aggregate %q argument: %w", c.Name, err)
				}
			}
		}
		if len(b.GroupingSets) == 0 {
			return fmt.Errorf("GROUP BY box without grouping sets")
		}
		for _, gs := range b.GroupingSets {
			for _, pos := range gs {
				if pos < 0 || pos >= len(b.GroupBy) {
					return fmt.Errorf("grouping-set position %d out of range (%d grouping columns)", pos, len(b.GroupBy))
				}
			}
		}
		return nil

	default:
		return fmt.Errorf("unknown box kind %d", b.Kind)
	}
}
