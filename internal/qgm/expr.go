// Package qgm implements the Query Graph Model described in §2 of the paper:
// queries are rooted DAGs whose leaf boxes are base tables, whose internal
// boxes are SELECT (select-project-join, predicate application, scalar
// computation) or GROUP BY (grouping + aggregation, possibly over multiple
// grouping sets), and whose edges (quantifiers) carry records from producer
// to consumer boxes.
//
// The package also provides the SQL→QGM builder, a QGM→SQL printer, column
// equivalence classes derived from equality predicates, expression equality,
// and type/nullability inference — the semantic utilities the matching
// algorithm in internal/core relies on.
package qgm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqltypes"
)

// Expr is a scalar or aggregate expression over the input columns (QNCs) of a
// box. Expressions are immutable once built; rewrites create new nodes.
type Expr interface {
	// String renders a debug form. ColRefs render as quantifier alias +
	// column ordinal/name, so two structurally equal expressions over the
	// same quantifiers render identically.
	String() string
	isExpr()
}

// ColRef is a QNC: a reference to output column Col of the box behind
// quantifier Q.
type ColRef struct {
	Q   *Quantifier
	Col int
}

// Const is a literal constant.
type Const struct {
	Val sqltypes.Value
}

// Call is a scalar builtin application. Supported: year, month, day.
type Call struct {
	Name string
	Args []Expr
}

// Bin is a binary operator: + - * / % = <> < <= > >= AND OR.
type Bin struct {
	Op   string
	L, R Expr
}

// Not is logical negation.
type Not struct {
	E Expr
}

// IsNull is `e IS [NOT] NULL`.
type IsNull struct {
	E   Expr
	Neg bool
}

// Like is `e [NOT] LIKE pattern` with SQL % and _ wildcards.
type Like struct {
	E, Pattern Expr
	Neg        bool
}

// Agg is an aggregate function application. Aggregates appear in the output
// columns of GROUP BY boxes and inside translated expressions during
// matching. Star marks COUNT(*). Arg is nil iff Star.
type Agg struct {
	Op       string // count, sum, min, max
	Arg      Expr
	Star     bool
	Distinct bool
}

// Case is a searched CASE expression.
type Case struct {
	Whens []CaseWhen
	Else  Expr // may be nil (implicit NULL)
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

func (*ColRef) isExpr() {}
func (*Const) isExpr()  {}
func (*Call) isExpr()   {}
func (*Bin) isExpr()    {}
func (*Not) isExpr()    {}
func (*IsNull) isExpr() {}
func (*Like) isExpr()   {}
func (*Agg) isExpr()    {}
func (*Case) isExpr()   {}

// String renders the QNC as alias.colname when resolvable.
func (c *ColRef) String() string {
	if c.Q == nil {
		return fmt.Sprintf("?.%d", c.Col)
	}
	name := fmt.Sprintf("#%d", c.Col)
	if c.Q.Box != nil && c.Col < len(c.Q.Box.Cols) {
		name = c.Q.Box.Cols[c.Col].Name
	}
	return fmt.Sprintf("q%d.%s", c.Q.ID, name)
}

// String renders the literal.
func (c *Const) String() string { return c.Val.SQLLiteral() }

// String renders the call.
func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return c.Name + "(" + strings.Join(args, ", ") + ")"
}

// String renders the operator application.
func (b *Bin) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// String renders the negation.
func (n *Not) String() string { return "(NOT " + n.E.String() + ")" }

// String renders the null test.
func (i *IsNull) String() string {
	if i.Neg {
		return "(" + i.E.String() + " IS NOT NULL)"
	}
	return "(" + i.E.String() + " IS NULL)"
}

// String renders the LIKE test.
func (l *Like) String() string {
	if l.Neg {
		return "(" + l.E.String() + " NOT LIKE " + l.Pattern.String() + ")"
	}
	return "(" + l.E.String() + " LIKE " + l.Pattern.String() + ")"
}

// String renders the aggregate.
func (a *Agg) String() string {
	if a.Star {
		return a.Op + "(*)"
	}
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	return a.Op + "(" + d + a.Arg.String() + ")"
}

// String renders the CASE expression.
func (c *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		sb.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Then.String())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

// WalkExpr invokes fn on e and all descendants (pre-order). fn returning
// false prunes descent into that node's children.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch t := e.(type) {
	case *Call:
		for _, a := range t.Args {
			WalkExpr(a, fn)
		}
	case *Bin:
		WalkExpr(t.L, fn)
		WalkExpr(t.R, fn)
	case *Not:
		WalkExpr(t.E, fn)
	case *IsNull:
		WalkExpr(t.E, fn)
	case *Like:
		WalkExpr(t.E, fn)
		WalkExpr(t.Pattern, fn)
	case *Agg:
		if t.Arg != nil {
			WalkExpr(t.Arg, fn)
		}
	case *Case:
		for _, w := range t.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Then, fn)
		}
		if t.Else != nil {
			WalkExpr(t.Else, fn)
		}
	}
}

// MapExpr rebuilds e bottom-up, replacing each node with fn(node) after its
// children have been mapped. fn receives a node whose children are already
// rewritten; returning the input unchanged is allowed.
func MapExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch t := e.(type) {
	case *ColRef, *Const:
		return fn(e)
	case *Call:
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = MapExpr(a, fn)
		}
		return fn(&Call{Name: t.Name, Args: args})
	case *Bin:
		return fn(&Bin{Op: t.Op, L: MapExpr(t.L, fn), R: MapExpr(t.R, fn)})
	case *Not:
		return fn(&Not{E: MapExpr(t.E, fn)})
	case *IsNull:
		return fn(&IsNull{E: MapExpr(t.E, fn), Neg: t.Neg})
	case *Like:
		return fn(&Like{E: MapExpr(t.E, fn), Pattern: MapExpr(t.Pattern, fn), Neg: t.Neg})
	case *Agg:
		var arg Expr
		if t.Arg != nil {
			arg = MapExpr(t.Arg, fn)
		}
		return fn(&Agg{Op: t.Op, Arg: arg, Star: t.Star, Distinct: t.Distinct})
	case *Case:
		whens := make([]CaseWhen, len(t.Whens))
		for i, w := range t.Whens {
			whens[i] = CaseWhen{Cond: MapExpr(w.Cond, fn), Then: MapExpr(w.Then, fn)}
		}
		var els Expr
		if t.Else != nil {
			els = MapExpr(t.Else, fn)
		}
		return fn(&Case{Whens: whens, Else: els})
	default:
		return fn(e)
	}
}

// MapExprTopDown rebuilds e, calling fn on each node before descending; if fn
// returns a replacement (replaced=true), the replacement is used as-is and
// its children are not visited.
func MapExprTopDown(e Expr, fn func(Expr) (Expr, bool)) Expr {
	if e == nil {
		return nil
	}
	if repl, ok := fn(e); ok {
		return repl
	}
	switch t := e.(type) {
	case *ColRef, *Const:
		return e
	case *Call:
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = MapExprTopDown(a, fn)
		}
		return &Call{Name: t.Name, Args: args}
	case *Bin:
		return &Bin{Op: t.Op, L: MapExprTopDown(t.L, fn), R: MapExprTopDown(t.R, fn)}
	case *Not:
		return &Not{E: MapExprTopDown(t.E, fn)}
	case *IsNull:
		return &IsNull{E: MapExprTopDown(t.E, fn), Neg: t.Neg}
	case *Like:
		return &Like{E: MapExprTopDown(t.E, fn), Pattern: MapExprTopDown(t.Pattern, fn), Neg: t.Neg}
	case *Agg:
		var arg Expr
		if t.Arg != nil {
			arg = MapExprTopDown(t.Arg, fn)
		}
		return &Agg{Op: t.Op, Arg: arg, Star: t.Star, Distinct: t.Distinct}
	case *Case:
		whens := make([]CaseWhen, len(t.Whens))
		for i, w := range t.Whens {
			whens[i] = CaseWhen{Cond: MapExprTopDown(w.Cond, fn), Then: MapExprTopDown(w.Then, fn)}
		}
		var els Expr
		if t.Else != nil {
			els = MapExprTopDown(t.Else, fn)
		}
		return &Case{Whens: whens, Else: els}
	default:
		return e
	}
}

// ColRefs returns all QNC references in e, in visit order.
func ColRefs(e Expr) []*ColRef {
	var out []*ColRef
	WalkExpr(e, func(x Expr) bool {
		if c, ok := x.(*ColRef); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// HasAgg reports whether e contains an aggregate function node.
func HasAgg(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if _, ok := x.(*Agg); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}

// QuantifiersOf returns the distinct quantifiers referenced by e, ordered by ID.
func QuantifiersOf(e Expr) []*Quantifier {
	seen := map[int]*Quantifier{}
	for _, c := range ColRefs(e) {
		if c.Q != nil {
			seen[c.Q.ID] = c.Q
		}
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*Quantifier, len(ids))
	for i, id := range ids {
		out[i] = seen[id]
	}
	return out
}

// SplitConjuncts flattens a tree of AND nodes into its conjuncts.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Bin); ok && b.Op == "AND" {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll conjoins a list of predicates (nil for an empty list).
func AndAll(preds []Expr) Expr {
	var out Expr
	for _, p := range preds {
		if out == nil {
			out = p
		} else {
			out = &Bin{Op: "AND", L: out, R: p}
		}
	}
	return out
}

// OrAll disjoins a list of predicates (nil for an empty list).
func OrAll(preds []Expr) Expr {
	var out Expr
	for _, p := range preds {
		if out == nil {
			out = p
		} else {
			out = &Bin{Op: "OR", L: out, R: p}
		}
	}
	return out
}
