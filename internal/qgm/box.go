package qgm

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/sqltypes"
)

// BoxKind enumerates QGM box types.
type BoxKind uint8

const (
	// BaseTableBox is a leaf box wrapping a base (or materialized AST) table.
	BaseTableBox BoxKind = iota
	// SelectBox performs select-project-join: it joins its ForEach children,
	// applies predicates, and computes scalar output expressions.
	SelectBox
	// GroupByBox groups its single child's rows and computes aggregates,
	// possibly over multiple grouping sets (canonicalized supergroups).
	GroupByBox
)

// String names the kind.
func (k BoxKind) String() string {
	switch k {
	case BaseTableBox:
		return "BASE"
	case SelectBox:
		return "SELECT"
	case GroupByBox:
		return "GROUPBY"
	default:
		return fmt.Sprintf("BoxKind(%d)", uint8(k))
	}
}

// QuantKind distinguishes join operands from scalar-subquery children.
type QuantKind uint8

const (
	// ForEach is an ordinary join operand: the parent iterates its rows.
	ForEach QuantKind = iota
	// Scalar is a scalar-subquery child: it must produce at most one row,
	// whose single column value is available as a QNC (NULL when empty).
	Scalar
)

// Quantifier is an edge from a consumer box to a producer (child) box; its
// columns (QNCs) are the producer's output columns.
type Quantifier struct {
	ID    int
	Kind  QuantKind
	Box   *Box
	Alias string // original FROM alias where available, for SQL printing
}

// QCL is an output column of a box: a name plus the expression (over the
// box's QNCs) that computes it. Base-table boxes have nil Exprs.
type QCL struct {
	Name string
	Expr Expr
}

// Box is a QGM node.
type Box struct {
	ID    int
	Kind  BoxKind
	Label string // e.g. "Sel-1Q", "GB-2A"; informational

	// Table is set for BaseTableBox.
	Table *catalog.Table

	// Quantifiers are the edges to child boxes. SELECT boxes may have any
	// number (join operands and scalar subqueries); GROUP BY boxes have
	// exactly one ForEach quantifier.
	Quantifiers []*Quantifier

	// Cols are the output columns. For GroupByBox every column is either a
	// grouping column (listed in GroupBy) or an aggregate expression.
	Cols []QCL

	// Preds are the predicates (WHERE/HAVING conjuncts) of a SELECT box.
	Preds []Expr

	// Distinct marks a duplicate-eliminating SELECT box.
	Distinct bool

	// GroupBy lists the ordinals (into Cols) of the grouping columns of a
	// GROUP BY box, in grouping order. GroupingSets holds the canonicalized
	// supergroup: each set is a sorted list of positions into GroupBy. A
	// simple GROUP BY has exactly one set containing every position.
	GroupBy      []int
	GroupingSets [][]int

	// Regroup marks a GROUP BY box that re-aggregates already-aggregated
	// rows (a second-stage combiner built by the matcher's regrouping
	// compensation, §4.1.2 rules (a)–(g)). Faithful clones of query GROUP BY
	// boxes are not regroupings: they aggregate row-level values and may use
	// any aggregate. The distinction scopes the re-aggregation soundness
	// rules of internal/qgmcheck (Table 1: SUM over SUM, SUM over COUNT, …).
	Regroup bool
}

// Graph is a rooted QGM DAG plus ID allocation state.
type Graph struct {
	Root *Box
	Cat  *catalog.Catalog

	nextBoxID   int
	nextQuantID int
	baseBoxes   map[string]*Box
}

// NewGraph returns an empty graph bound to a catalog.
func NewGraph(cat *catalog.Catalog) *Graph {
	return &Graph{Cat: cat, nextBoxID: 1, nextQuantID: 1, baseBoxes: make(map[string]*Box)}
}

// BaseTableBox returns the (shared, per-graph) leaf box for a base table.
// Sharing one leaf per table gives the QGM its DAG shape: self-joins are two
// quantifiers over the same box.
func (g *Graph) BaseTableBox(t *catalog.Table) *Box {
	if b, ok := g.baseBoxes[t.Name]; ok {
		return b
	}
	b := g.NewBox(BaseTableBox, "Base-"+t.Name)
	b.Table = t
	for _, c := range t.Columns {
		b.Cols = append(b.Cols, QCL{Name: c.Name})
	}
	g.baseBoxes[t.Name] = b
	return b
}

// NewBox allocates a box in the graph.
func (g *Graph) NewBox(kind BoxKind, label string) *Box {
	b := &Box{ID: g.nextBoxID, Kind: kind, Label: label}
	g.nextBoxID++
	return b
}

// NewQuantifier allocates a quantifier edge to child.
func (g *Graph) NewQuantifier(kind QuantKind, child *Box, alias string) *Quantifier {
	q := &Quantifier{ID: g.nextQuantID, Kind: kind, Box: child, Alias: alias}
	g.nextQuantID++
	return q
}

// ColIndex returns the ordinal of an output column by name, or -1.
func (b *Box) ColIndex(name string) int {
	for i, c := range b.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Child returns the single child box of a GROUP BY box.
func (b *Box) Child() *Box {
	if len(b.Quantifiers) != 1 {
		panic(fmt.Sprintf("qgm: Child() on box %s with %d quantifiers", b.Label, len(b.Quantifiers)))
	}
	return b.Quantifiers[0].Box
}

// IsSimpleGroupBy reports whether a GROUP BY box has a single grouping set
// covering all grouping columns (i.e. no supergroup semantics).
func (b *Box) IsSimpleGroupBy() bool {
	return b.Kind == GroupByBox && len(b.GroupingSets) == 1 && len(b.GroupingSets[0]) == len(b.GroupBy)
}

// IsGroupCol reports whether output column col is a grouping column.
func (b *Box) IsGroupCol(col int) bool {
	for _, g := range b.GroupBy {
		if g == col {
			return true
		}
	}
	return false
}

// GroupingColExprs returns the grouping-column expressions in grouping order.
func (b *Box) GroupingColExprs() []Expr {
	out := make([]Expr, len(b.GroupBy))
	for i, g := range b.GroupBy {
		out[i] = b.Cols[g].Expr
	}
	return out
}

// AggCols returns the ordinals of the aggregate output columns.
func (b *Box) AggCols() []int {
	var out []int
	for i := range b.Cols {
		if !b.IsGroupCol(i) {
			out = append(out, i)
		}
	}
	return out
}

// Boxes returns every box reachable from the root in a deterministic
// (bottom-up, child-before-parent) order.
func (g *Graph) Boxes() []*Box {
	var out []*Box
	seen := map[int]bool{}
	var walk func(b *Box)
	walk = func(b *Box) {
		if b == nil || seen[b.ID] {
			return
		}
		seen[b.ID] = true
		for _, q := range b.Quantifiers {
			walk(q.Box)
		}
		out = append(out, b)
	}
	walk(g.Root)
	return out
}

// Parents returns, for every box in the graph, the list of (parent box,
// quantifier) pairs that consume it.
func (g *Graph) Parents() map[int][]ParentEdge {
	out := map[int][]ParentEdge{}
	for _, b := range g.Boxes() {
		for _, q := range b.Quantifiers {
			out[q.Box.ID] = append(out[q.Box.ID], ParentEdge{Parent: b, Quant: q})
		}
	}
	return out
}

// ParentEdge is one consumer of a box.
type ParentEdge struct {
	Parent *Box
	Quant  *Quantifier
}

// Leaves returns the base-table boxes of the graph.
func (g *Graph) Leaves() []*Box {
	var out []*Box
	for _, b := range g.Boxes() {
		if b.Kind == BaseTableBox {
			out = append(out, b)
		}
	}
	return out
}

// OutputType infers the type and nullability of output column col.
func (b *Box) OutputType(col int) (sqltypes.Kind, bool) {
	switch b.Kind {
	case BaseTableBox:
		c := b.Table.Columns[col]
		return c.Type, c.Nullable
	case SelectBox:
		return inferType(b.Cols[col].Expr)
	case GroupByBox:
		k, nullable := inferType(b.Cols[col].Expr)
		// A grouping column is additionally nullable when some grouping set
		// omits it (grouped-out columns are NULL-padded).
		for pos, g := range b.GroupBy {
			if g != col {
				continue
			}
			for _, gs := range b.GroupingSets {
				if !containsInt(gs, pos) {
					nullable = true
					break
				}
			}
		}
		return k, nullable
	default:
		return sqltypes.KindNull, true
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// inferType computes (kind, nullable) for an expression. Unknown inputs
// default to (Null, true) conservatively.
func inferType(e Expr) (sqltypes.Kind, bool) {
	switch t := e.(type) {
	case *ColRef:
		if t.Q == nil || t.Q.Box == nil {
			return sqltypes.KindNull, true
		}
		k, n := t.Q.Box.OutputType(t.Col)
		if t.Q.Kind == Scalar {
			// An empty scalar subquery yields NULL.
			n = true
		}
		return k, n
	case *Const:
		return t.Val.Kind(), t.Val.IsNull()
	case *Call:
		switch t.Name {
		case "year", "month", "day":
			_, n := inferType(t.Args[0])
			return sqltypes.KindInt, n
		default:
			return sqltypes.KindNull, true
		}
	case *Bin:
		switch t.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
			_, ln := inferType(t.L)
			_, rn := inferType(t.R)
			return sqltypes.KindBool, ln || rn
		case "||":
			_, ln := inferType(t.L)
			_, rn := inferType(t.R)
			return sqltypes.KindString, ln || rn
		default: // arithmetic
			lk, ln := inferType(t.L)
			rk, rn := inferType(t.R)
			if lk == sqltypes.KindFloat || rk == sqltypes.KindFloat {
				return sqltypes.KindFloat, ln || rn
			}
			return sqltypes.KindInt, ln || rn
		}
	case *Not:
		_, n := inferType(t.E)
		return sqltypes.KindBool, n
	case *IsNull:
		return sqltypes.KindBool, false
	case *Like:
		_, ln := inferType(t.E)
		_, rn := inferType(t.Pattern)
		return sqltypes.KindBool, ln || rn
	case *Agg:
		if t.Op == "count" {
			return sqltypes.KindInt, false
		}
		if t.Star {
			return sqltypes.KindInt, false
		}
		k, n := inferType(t.Arg)
		// Groups are never empty, so SUM/MIN/MAX over a non-nullable argument
		// is non-nullable within a GROUP BY box.
		return k, n
	case *Case:
		var kind sqltypes.Kind = sqltypes.KindNull
		nullable := t.Else == nil
		for _, w := range t.Whens {
			k, n := inferType(w.Then)
			if kind == sqltypes.KindNull {
				kind = k
			}
			nullable = nullable || n
		}
		if t.Else != nil {
			k, n := inferType(t.Else)
			if kind == sqltypes.KindNull {
				kind = k
			}
			nullable = nullable || n
		}
		return kind, nullable
	default:
		return sqltypes.KindNull, true
	}
}

// InferType exposes type inference for other packages.
func InferType(e Expr) (sqltypes.Kind, bool) { return inferType(e) }

// OutputTable builds a catalog.Table describing a box's output relation
// (used to materialize ASTs and to register derived tables).
func (b *Box) OutputTable(name string) *catalog.Table {
	t := &catalog.Table{Name: name}
	for i, c := range b.Cols {
		k, n := b.OutputType(i)
		t.Columns = append(t.Columns, catalog.Column{Name: c.Name, Type: k, Nullable: n})
	}
	return t
}

// SortGroupingSets canonicalizes grouping sets: each set sorted ascending,
// sets deduplicated and ordered lexicographically.
func SortGroupingSets(sets [][]int) [][]int {
	cp := make([][]int, 0, len(sets))
	seen := map[string]bool{}
	for _, s := range sets {
		ss := append([]int(nil), s...)
		sort.Ints(ss)
		key := fmt.Sprint(ss)
		if seen[key] {
			continue
		}
		seen[key] = true
		cp = append(cp, ss)
	}
	sort.Slice(cp, func(i, j int) bool {
		a, b := cp[i], cp[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return cp
}
