package qgm

import (
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

func TestValidateAcceptsBuiltGraphs(t *testing.T) {
	cat := testCatalog(t)
	for _, sql := range []string{
		"select tid, qty from trans where qty > 1",
		"select faid, count(*) as c from trans group by faid having count(*) > 2",
		"select faid, flid, count(*) as c from trans group by rollup(faid, flid)",
		"select distinct faid, flid from trans",
		"select tid, (select count(*) from loc) as n from trans",
		"select y, count(*) as c from (select year(date) as y from trans) d group by y",
	} {
		g, err := BuildSQL(sql, cat)
		if err != nil {
			t.Fatalf("build %q: %v", sql, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("Validate(%q): %v", sql, err)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cat := testCatalog(t)
	fresh := func() *Graph {
		return MustBuildSQL("select faid, count(*) as c from trans group by faid", cat)
	}

	// Out-of-range column reference.
	g := fresh()
	gb := g.Root.Child()
	g.Root.Cols[0].Expr = &ColRef{Q: g.Root.Quantifiers[0], Col: 99}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range ref: %v", err)
	}

	// Aggregate in a SELECT output.
	g = fresh()
	g.Root.Cols[0].Expr = &Agg{Op: "count", Star: true}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "aggregate") {
		t.Errorf("agg in select: %v", err)
	}

	// Predicate on a GROUP BY box.
	g = fresh()
	gb = g.Root.Child()
	gb.Preds = append(gb.Preds, &Const{Val: sqltypes.NewBool(true)})
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "predicates") {
		t.Errorf("gb pred: %v", err)
	}

	// Grouping set position out of range.
	g = fresh()
	gb = g.Root.Child()
	gb.GroupingSets = [][]int{{5}}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "grouping-set position") {
		t.Errorf("bad grouping set: %v", err)
	}

	// Out-of-scope quantifier.
	g = fresh()
	alien := &Quantifier{ID: 4242, Box: g.Root.Child()}
	g.Root.Cols[0].Expr = &ColRef{Q: alien, Col: 0}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "out-of-scope") {
		t.Errorf("alien quantifier: %v", err)
	}

	// Non-aggregate extra output on a GROUP BY box.
	g = fresh()
	gb = g.Root.Child()
	gb.Cols = append(gb.Cols, QCL{Name: "bad", Expr: &Bin{
		Op: "+",
		L:  &ColRef{Q: gb.Quantifiers[0], Col: 0},
		R:  &Const{Val: sqltypes.NewInt(1)},
	}})
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "not an aggregate") {
		t.Errorf("non-agg output: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	cat := testCatalog(t)
	g := MustBuildSQL(`select state, count(*) as c from trans, loc
		where flid = lid and qty > 2 group by state having count(*) > 1`, cat)
	c := g.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	// Same structure.
	if len(c.Boxes()) != len(g.Boxes()) {
		t.Fatalf("box count differs: %d vs %d", len(c.Boxes()), len(g.Boxes()))
	}
	// No shared boxes or quantifiers.
	origBoxes := map[*Box]bool{}
	for _, b := range g.Boxes() {
		origBoxes[b] = true
	}
	for _, b := range c.Boxes() {
		if origBoxes[b] {
			t.Fatal("clone shares a box with the original")
		}
		for _, q := range b.Quantifiers {
			for _, ob := range g.Boxes() {
				for _, oq := range ob.Quantifiers {
					if q == oq {
						t.Fatal("clone shares a quantifier")
					}
				}
			}
		}
	}
	// Mutating the clone leaves the original printable/intact.
	before := g.SQL()
	c.Root.Preds = nil
	c.Root.Cols = c.Root.Cols[:1]
	if g.SQL() != before {
		t.Fatal("mutating the clone changed the original")
	}
}
