package qgm

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/parser"
	"repro/internal/sqltypes"
)

// DMLKind distinguishes the two mutation statements.
type DMLKind uint8

const (
	// DMLDelete is DELETE FROM.
	DMLDelete DMLKind = iota
	// DMLUpdate is UPDATE ... SET.
	DMLUpdate
)

// String names the kind.
func (k DMLKind) String() string {
	if k == DMLDelete {
		return "DELETE"
	}
	return "UPDATE"
}

// DMLSet is one compiled column assignment: the target column ordinal and the
// value expression over the row's current values.
type DMLSet struct {
	Col  int
	Expr Expr
}

// DML is a compiled DELETE or UPDATE: a single base-table quantifier with the
// WHERE predicate and SET expressions bound to it. Unlike a query it has no
// box tree — the executor evaluates Where/Sets row-at-a-time against Q's
// columns (exec.RowEvaluator).
type DML struct {
	Kind  DMLKind
	Table *catalog.Table
	Q     *Quantifier
	Where Expr // nil = every row
	Sets  []DMLSet
}

// bindDML builds the single-table binding environment shared by BuildDelete
// and BuildUpdate and returns the resolver for its expressions. Scalar
// subqueries are rejected (readOnly resolver) — DML predicates are row-local.
func bindDML(kind DMLKind, table string, cat *catalog.Catalog) (*DML, *resolver, error) {
	tbl, ok := cat.Table(table)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q not in catalog", ErrUnknownTable, strings.ToLower(table))
	}
	g := NewGraph(cat)
	base := g.BaseTableBox(tbl)
	q := g.NewQuantifier(ForEach, base, tbl.Name)
	sc := &scope{}
	if err := sc.add(tbl.Name, q); err != nil {
		return nil, nil, err
	}
	r := &resolver{b: &builder{g: g}, scope: sc, tag: "dml"}
	return &DML{Kind: kind, Table: tbl, Q: q}, r, nil
}

// resolveWhere compiles and type-checks the optional WHERE predicate.
func (d *DML) resolveWhere(r *resolver, where parser.Expr) error {
	if where == nil {
		return nil
	}
	if containsAggregate(where) {
		return fmt.Errorf("qgm: aggregate in %s WHERE", d.Kind)
	}
	w, err := r.resolveReadOnly(where)
	if err != nil {
		return fmt.Errorf("in WHERE: %w", err)
	}
	if issues := TypeIssues(w); len(issues) > 0 {
		return fmt.Errorf("qgm: ill-typed %s WHERE: %v", d.Kind, issues[0])
	}
	if k, _ := InferType(w); !IsBoolKind(k) {
		return fmt.Errorf("qgm: %s WHERE is %v, not boolean", d.Kind, k)
	}
	d.Where = w
	return nil
}

// BuildDelete compiles DELETE FROM t [WHERE ...] against the catalog.
func BuildDelete(stmt *parser.DeleteStmt, cat *catalog.Catalog) (*DML, error) {
	d, r, err := bindDML(DMLDelete, stmt.Table, cat)
	if err != nil {
		return nil, err
	}
	if err := d.resolveWhere(r, stmt.Where); err != nil {
		return nil, err
	}
	return d, nil
}

// BuildUpdate compiles UPDATE t SET ... [WHERE ...] against the catalog. Each
// assignment target must be a distinct column of t, and the value expression
// must type-check against the column's kind (integer expressions may feed
// float columns; the executor coerces).
func BuildUpdate(stmt *parser.UpdateStmt, cat *catalog.Catalog) (*DML, error) {
	d, r, err := bindDML(DMLUpdate, stmt.Table, cat)
	if err != nil {
		return nil, err
	}
	if len(stmt.Sets) == 0 {
		return nil, fmt.Errorf("qgm: UPDATE with no SET assignments")
	}
	seen := make(map[int]bool, len(stmt.Sets))
	for _, s := range stmt.Sets {
		idx := -1
		for i, c := range d.Table.Columns {
			if strings.EqualFold(c.Name, s.Col) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("qgm: column %q not in table %s", s.Col, d.Table.Name)
		}
		if seen[idx] {
			return nil, fmt.Errorf("qgm: column %q assigned twice", s.Col)
		}
		seen[idx] = true
		if containsAggregate(s.Expr) {
			return nil, fmt.Errorf("qgm: aggregate in SET %s", s.Col)
		}
		e, err := r.resolveReadOnly(s.Expr)
		if err != nil {
			return nil, fmt.Errorf("in SET %s: %w", s.Col, err)
		}
		if issues := TypeIssues(e); len(issues) > 0 {
			return nil, fmt.Errorf("qgm: ill-typed SET %s: %v", s.Col, issues[0])
		}
		col := d.Table.Columns[idx]
		if k, _ := InferType(e); !assignableKind(k, col.Type) {
			return nil, fmt.Errorf("qgm: SET %s: %v value into %v column", s.Col, k, col.Type)
		}
		d.Sets = append(d.Sets, DMLSet{Col: idx, Expr: e})
	}
	if err := d.resolveWhere(r, stmt.Where); err != nil {
		return nil, err
	}
	return d, nil
}

// assignableKind reports whether a value of kind k may be stored in a column
// of kind col. Unknown (NULL-typed) expressions pass; nullability is enforced
// at execution time, when the actual value is known.
func assignableKind(k, col sqltypes.Kind) bool {
	if isUnknownKind(k) || k == col {
		return true
	}
	// Widening int → float; dates are stored as ints, so int literals may
	// also land in date columns (yyyymmdd form).
	if col == sqltypes.KindFloat && k == sqltypes.KindInt {
		return true
	}
	if col == sqltypes.KindDate && k == sqltypes.KindInt {
		return true
	}
	return false
}
