package qgm

// Expression-level type discipline, shared by two consumers: Build rejects
// definitely ill-typed queries at the door (a bare `where (date)` or
// `0 like ''` is a semantic error, not a plan), and internal/qgmcheck reports
// the same issues as named types/* violations when verifying plans the
// matcher assembled. Checking is conservative: sqltypes.KindNull acts as an
// unknown wildcard (scalar subqueries, untyped constants, unresolvable
// inputs), and only definite disagreements are issues. Dates are stored as
// int64 yyyymmdd, so the numeric family {Int, Float, Date} is mutually
// comparable and arithmetic-capable; strings and booleans are not.

import (
	"fmt"

	"repro/internal/sqltypes"
)

// TypeIssue is one definite expression-level type error. Class is a short
// slug ("logic", "compare", "concat", "arith", "like", "call", "agg-arg",
// "case"); qgmcheck prefixes it with "types/" for its rule taxonomy.
type TypeIssue struct {
	Class  string
	Detail string
}

func (t TypeIssue) String() string { return t.Class + ": " + t.Detail }

func isUnknownKind(k sqltypes.Kind) bool { return k == sqltypes.KindNull }

func isNumericKind(k sqltypes.Kind) bool {
	return k == sqltypes.KindInt || k == sqltypes.KindFloat || k == sqltypes.KindDate || isUnknownKind(k)
}

// IsBoolKind reports whether a kind may stand where SQL requires a boolean
// (KindNull counts: unknown never convicts).
func IsBoolKind(k sqltypes.Kind) bool { return k == sqltypes.KindBool || isUnknownKind(k) }

func isStringKind(k sqltypes.Kind) bool { return k == sqltypes.KindString || isUnknownKind(k) }

// comparableKinds reports whether two operand kinds may appear on the two
// sides of a comparison operator.
func comparableKinds(a, b sqltypes.Kind) bool {
	if isUnknownKind(a) || isUnknownKind(b) || a == b {
		return true
	}
	return isNumericKind(a) && isNumericKind(b)
}

// TypeIssues walks one expression bottom-up and collects each node whose
// operand kinds are definitely wrong. Resolution failures (dangling
// references) infer as unknown and stay silent here — they are binding
// errors, not type errors.
func TypeIssues(e Expr) []TypeIssue {
	var out []TypeIssue
	add := func(class, format string, args ...any) {
		out = append(out, TypeIssue{Class: class, Detail: fmt.Sprintf(format, args...)})
	}
	WalkExpr(e, func(x Expr) bool {
		switch t := x.(type) {
		case *Bin:
			lk, _ := inferType(t.L)
			rk, _ := inferType(t.R)
			switch t.Op {
			case "AND", "OR":
				if !IsBoolKind(lk) || !IsBoolKind(rk) {
					add("logic", "%s over non-boolean operand (%v, %v)", t.Op, lk, rk)
				}
			case "=", "<>", "<", "<=", ">", ">=":
				if !comparableKinds(lk, rk) {
					add("compare", "comparison %s between incompatible kinds %v and %v", t.Op, lk, rk)
				}
			case "||":
				if !isStringKind(lk) || !isStringKind(rk) {
					add("concat", "|| over non-string operand (%v, %v)", lk, rk)
				}
			case "+", "-", "*", "/", "%":
				if !isNumericKind(lk) || !isNumericKind(rk) {
					add("arith", "arithmetic %s over non-numeric operand (%v, %v)", t.Op, lk, rk)
				}
			default:
				add("arith", "unknown binary operator %q", t.Op)
			}
		case *Not:
			if k, _ := inferType(t.E); !IsBoolKind(k) {
				add("logic", "NOT over non-boolean operand (%v)", k)
			}
		case *Like:
			ek, _ := inferType(t.E)
			pk, _ := inferType(t.Pattern)
			if !isStringKind(ek) || !isStringKind(pk) {
				add("like", "LIKE over non-string operand (%v LIKE %v)", ek, pk)
			}
		case *Call:
			switch t.Name {
			case "year", "month", "day":
				if len(t.Args) != 1 {
					add("call", "%s takes 1 argument, got %d", t.Name, len(t.Args))
					break
				}
				if k, _ := inferType(t.Args[0]); !(k == sqltypes.KindDate || k == sqltypes.KindInt || isUnknownKind(k)) {
					add("call", "%s over non-date argument (%v)", t.Name, k)
				}
			default:
				add("call", "unknown builtin %q", t.Name)
			}
		case *Agg:
			if t.Arg == nil {
				break
			}
			k, _ := inferType(t.Arg)
			switch t.Op {
			case "sum":
				if !isNumericKind(k) && k != sqltypes.KindDate {
					add("agg-arg", "SUM over non-numeric argument (%v)", k)
				}
			case "min", "max":
				if k == sqltypes.KindBool {
					add("agg-arg", "%s over boolean argument", t.Op)
				}
			}
		case *Case:
			var kinds []sqltypes.Kind
			for i, w := range t.Whens {
				if ck, _ := inferType(w.Cond); !IsBoolKind(ck) {
					add("case", "WHEN %d condition has non-boolean type %v", i, ck)
				}
				tk, _ := inferType(w.Then)
				kinds = append(kinds, tk)
			}
			if t.Else != nil {
				ek, _ := inferType(t.Else)
				kinds = append(kinds, ek)
			}
			var rep sqltypes.Kind = sqltypes.KindNull
			for _, k := range kinds {
				if isUnknownKind(k) {
					continue
				}
				if isUnknownKind(rep) {
					rep = k
					continue
				}
				if rep != k && !(isNumericKind(rep) && isNumericKind(k)) {
					add("case", "CASE branches disagree on result kind (%v vs %v)", rep, k)
				}
			}
		}
		return true
	})
	return out
}
