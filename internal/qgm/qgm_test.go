package qgm

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/parser"
	"repro/internal/sqltypes"
)

func testCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	c.MustAddTable(&catalog.Table{
		Name: "trans",
		Columns: []catalog.Column{
			{Name: "tid", Type: sqltypes.KindInt},
			{Name: "faid", Type: sqltypes.KindInt},
			{Name: "flid", Type: sqltypes.KindInt},
			{Name: "date", Type: sqltypes.KindDate},
			{Name: "qty", Type: sqltypes.KindInt},
			{Name: "price", Type: sqltypes.KindFloat},
			{Name: "note", Type: sqltypes.KindString, Nullable: true},
		},
		PrimaryKey: []string{"tid"},
	})
	c.MustAddTable(&catalog.Table{
		Name: "loc",
		Columns: []catalog.Column{
			{Name: "lid", Type: sqltypes.KindInt},
			{Name: "state", Type: sqltypes.KindString},
		},
		PrimaryKey: []string{"lid"},
	})
	return c
}

func build(t testing.TB, sql string) *Graph {
	t.Helper()
	g, err := BuildSQL(sql, testCatalog(t))
	if err != nil {
		t.Fatalf("BuildSQL(%q): %v", sql, err)
	}
	return g
}

func TestBuildPlainSelect(t *testing.T) {
	g := build(t, "select tid, qty + 1 as q1 from trans where qty > 2")
	root := g.Root
	if root.Kind != SelectBox {
		t.Fatalf("root kind %v", root.Kind)
	}
	if len(root.Cols) != 2 || root.Cols[0].Name != "tid" || root.Cols[1].Name != "q1" {
		t.Fatalf("cols: %+v", root.Cols)
	}
	if len(root.Preds) != 1 {
		t.Fatalf("preds: %v", root.Preds)
	}
	if len(g.Boxes()) != 2 { // base + select
		t.Fatalf("box count %d", len(g.Boxes()))
	}
}

func TestBuildAggBlockShape(t *testing.T) {
	g := build(t, `select faid, count(*) as cnt from trans
		where qty > 1 group by faid having count(*) > 5`)
	boxes := g.Boxes()
	if len(boxes) != 4 { // base, lower select, group by, upper select
		t.Fatalf("box count %d:\n%s", len(boxes), g.Dump())
	}
	root := g.Root
	if root.Kind != SelectBox || len(root.Preds) != 1 {
		t.Fatalf("root: %+v", root)
	}
	gb := root.Child()
	if gb.Kind != GroupByBox || len(gb.GroupBy) != 1 || !gb.IsSimpleGroupBy() {
		t.Fatalf("gb: %+v", gb)
	}
	lower := gb.Child()
	if lower.Kind != SelectBox || len(lower.Preds) != 1 {
		t.Fatalf("lower: %+v", lower)
	}
}

func TestBuildStarExpansion(t *testing.T) {
	g := build(t, "select * from loc")
	if len(g.Root.Cols) != 2 {
		t.Fatalf("star expansion: %+v", g.Root.Cols)
	}
}

func TestBuildGroupByAlias(t *testing.T) {
	g := build(t, "select year(date) as y, count(*) as c from trans group by y")
	gb := g.Root.Child()
	if len(gb.GroupBy) != 1 {
		t.Fatalf("alias grouping failed:\n%s", g.Dump())
	}
	if gb.Cols[0].Name != "y" {
		t.Fatalf("grouping column name %q", gb.Cols[0].Name)
	}
}

func TestBuildSharedAggregate(t *testing.T) {
	// count(*) appears in the select list and HAVING: one aggregate column.
	g := build(t, "select faid, count(*) as c from trans group by faid having count(*) > 2")
	gb := g.Root.Child()
	if len(gb.Cols) != 2 {
		t.Fatalf("aggregate dedup failed: %+v", gb.Cols)
	}
}

func TestBuildAvgCanonicalization(t *testing.T) {
	g := build(t, "select faid, avg(qty) as a from trans group by faid")
	gb := g.Root.Child()
	// AVG compiles into SUM and COUNT aggregate columns.
	var ops []string
	for _, i := range gb.AggCols() {
		ops = append(ops, gb.Cols[i].Expr.(*Agg).Op)
	}
	if len(ops) != 2 || !(ops[0] == "sum" && ops[1] == "count") {
		t.Fatalf("avg canonicalization: %v", ops)
	}
	if _, ok := g.Root.Cols[1].Expr.(*Bin); !ok {
		t.Fatalf("avg output should be a division: %s", g.Root.Cols[1].Expr.String())
	}
}

func TestBuildGroupingSetsCanonical(t *testing.T) {
	g := build(t, `select faid, flid, count(*) as c from trans
		group by grouping sets((faid, flid), (faid), ())`)
	gb := g.Root.Child()
	if len(gb.GroupingSets) != 3 {
		t.Fatalf("sets: %v", gb.GroupingSets)
	}
	g2 := build(t, "select faid, flid, count(*) as c from trans group by rollup(faid, flid)")
	gb2 := g2.Root.Child()
	if len(gb2.GroupingSets) != 3 {
		t.Fatalf("rollup sets: %v", gb2.GroupingSets)
	}
	// rollup(a,b) ≡ gs((a,b),(a),()).
	for i := range gb.GroupingSets {
		if len(gb.GroupingSets[i]) != len(gb2.GroupingSets[i]) {
			t.Fatalf("rollup ≠ explicit sets: %v vs %v", gb.GroupingSets, gb2.GroupingSets)
		}
	}
	g3 := build(t, "select faid, flid, count(*) as c from trans group by cube(faid, flid)")
	if len(g3.Root.Child().GroupingSets) != 4 {
		t.Fatalf("cube sets: %v", g3.Root.Child().GroupingSets)
	}
	// Cross product with a plain element.
	g4 := build(t, "select tid, faid, flid, count(*) as c from trans group by tid, cube(faid, flid)")
	if len(g4.Root.Child().GroupingSets) != 4 {
		t.Fatalf("mixed sets: %v", g4.Root.Child().GroupingSets)
	}
	for _, gs := range g4.Root.Child().GroupingSets {
		found := false
		for _, p := range gs {
			if p == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("tid missing from a set: %v", g4.Root.Child().GroupingSets)
		}
	}
}

func TestBuildDuplicateGroupingExprsDeduped(t *testing.T) {
	g := build(t, "select faid, count(*) as c from trans group by faid, faid")
	if n := len(g.Root.Child().GroupBy); n != 1 {
		t.Fatalf("duplicate grouping exprs: %d", n)
	}
}

func TestBuildScalarSubqueryPlacement(t *testing.T) {
	g := build(t, "select tid, (select count(*) from loc) as n from trans")
	root := g.Root
	var scalars int
	for _, q := range root.Quantifiers {
		if q.Kind == Scalar {
			scalars++
		}
	}
	if scalars != 1 {
		t.Fatalf("scalar quantifiers: %d\n%s", scalars, g.Dump())
	}
	// In an aggregated block the scalar subquery attaches to the upper box.
	g2 := build(t, "select faid, count(*) * (select count(*) from loc) as x from trans group by faid")
	var upperScalars int
	for _, q := range g2.Root.Quantifiers {
		if q.Kind == Scalar {
			upperScalars++
		}
	}
	if upperScalars != 1 {
		t.Fatalf("scalar on upper box: %d\n%s", upperScalars, g2.Dump())
	}
}

func TestBuildErrors(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		"select nope from trans",
		"select tid from nope",
		"select t.tid from trans",                                   // unknown qualifier
		"select lid from trans, loc, loc",                           // duplicate alias
		"select qty from trans group by faid",                       // not grouped
		"select faid, qty + count(*) as x from trans group by faid", // qty not grouped
		"select count(count(*)) as x from trans",                    // nested aggregate
		"select * from trans group by faid",                         // star with group by
		"select tid from trans having tid > 1",                      // having without aggregation
		"select (select tid, qty from trans) as s from loc",         // 2-column scalar subquery
		"select unknownfunc(tid) from trans",
		"select sum(*) from trans",
	}
	for _, sql := range bad {
		if _, err := BuildSQL(sql, cat); err == nil {
			t.Errorf("BuildSQL(%q) should fail", sql)
		}
	}
}

func TestBuildAliasScoping(t *testing.T) {
	g := build(t, "select a.tid from trans a, trans b where a.tid = b.tid")
	if len(g.Root.Quantifiers) != 2 {
		t.Fatalf("self join quantifiers: %d", len(g.Root.Quantifiers))
	}
	// Both quantifiers share one base box (QGM is a DAG).
	if g.Root.Quantifiers[0].Box != g.Root.Quantifiers[1].Box {
		t.Fatal("self-join must share the base-table box")
	}
	if _, err := BuildSQL("select tid from trans a, trans b", testCatalog(t)); err == nil {
		t.Error("ambiguous tid accepted")
	}
}

func TestOutputTableTypes(t *testing.T) {
	g := build(t, `select faid, year(date) as y, count(*) as cnt, sum(price) as s, max(note) as mn
		from trans group by faid, year(date)`)
	tab := g.Root.OutputTable("astx")
	wantKinds := []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindInt, sqltypes.KindInt, sqltypes.KindFloat, sqltypes.KindString}
	for i, w := range wantKinds {
		if tab.Columns[i].Type != w {
			t.Errorf("col %d type %v, want %v", i, tab.Columns[i].Type, w)
		}
	}
	if tab.Columns[0].Nullable || tab.Columns[2].Nullable {
		t.Error("faid/cnt must be non-nullable")
	}
	if !tab.Columns[4].Nullable {
		t.Error("max(nullable) must be nullable")
	}
}

func TestGroupingColumnNullabilityInCube(t *testing.T) {
	g := build(t, "select faid, flid, count(*) as c from trans group by grouping sets((faid), (flid))")
	gb := g.Root.Child()
	if k, n := gb.OutputType(0); k != sqltypes.KindInt || !n {
		t.Fatalf("grouped-out column must be nullable: kind=%v nullable=%v", k, n)
	}
}

func TestExprEqualCommutativityAndFlip(t *testing.T) {
	g := build(t, "select tid from trans where faid = flid and qty + 1 > 2")
	sel := g.Root
	q := sel.Quantifiers[0]
	a := &ColRef{Q: q, Col: 1}
	b := &ColRef{Q: q, Col: 2}
	e1 := &Bin{Op: "+", L: a, R: b}
	e2 := &Bin{Op: "+", L: b, R: a}
	if !ExprEqual(e1, e2, nil) {
		t.Error("+ not commutative")
	}
	lt := &Bin{Op: "<", L: a, R: b}
	gt := &Bin{Op: ">", L: b, R: a}
	if !ExprEqual(lt, gt, nil) {
		t.Error("a<b should equal b>a")
	}
	minus1 := &Bin{Op: "-", L: a, R: b}
	minus2 := &Bin{Op: "-", L: b, R: a}
	if ExprEqual(minus1, minus2, nil) {
		t.Error("- must not be commutative")
	}
	// Equivalence classes.
	eq := EquivFromPreds(sel.Preds)
	if !ExprEqual(a, b, eq) {
		t.Error("faid = flid predicate should unify the columns")
	}
	if ExprEqual(a, &ColRef{Q: q, Col: 0}, eq) {
		t.Error("tid is not equivalent to faid")
	}
}

func TestSubsumes(t *testing.T) {
	g := build(t, "select tid from trans")
	q := g.Root.Quantifiers[0]
	x := &ColRef{Q: q, Col: 4} // qty
	mk := func(op string, v int64) Expr {
		return &Bin{Op: op, L: x, R: &Const{Val: sqltypes.NewInt(v)}}
	}
	cases := []struct {
		p1, p2 Expr
		want   bool
	}{
		{mk(">", 10), mk(">", 20), true},
		{mk(">", 20), mk(">", 10), false},
		{mk(">", 10), mk(">", 10), true},
		{mk(">=", 10), mk(">", 10), true},
		{mk(">", 10), mk(">=", 10), false},
		{mk("<", 10), mk("<", 5), true},
		{mk("<", 5), mk("<", 10), false},
		{mk(">", 10), mk("=", 20), true},
		{mk(">", 10), mk("=", 5), false},
		{mk("<>", 7), mk("=", 8), true},
		{mk("<>", 7), mk("=", 7), false},
		{mk(">", 10), mk("<", 20), false},
		// Flipped constant side.
		{&Bin{Op: "<", L: &Const{Val: sqltypes.NewInt(10)}, R: x}, mk(">", 20), true},
	}
	for i, c := range cases {
		if got := Subsumes(c.p1, c.p2, nil); got != c.want {
			t.Errorf("case %d: Subsumes(%s, %s) = %v, want %v", i, c.p1.String(), c.p2.String(), got, c.want)
		}
	}
}

func TestSplitAndAll(t *testing.T) {
	g := build(t, "select tid from trans where qty > 1 and price > 2 and faid > 3")
	if len(g.Root.Preds) != 3 {
		t.Fatalf("conjunct split: %d", len(g.Root.Preds))
	}
	joined := AndAll(g.Root.Preds)
	if len(SplitConjuncts(joined)) != 3 {
		t.Fatal("AndAll/SplitConjuncts round trip")
	}
	if AndAll(nil) != nil || OrAll(nil) != nil {
		t.Fatal("empty combinators must be nil")
	}
}

func TestSQLPrinterRoundTrip(t *testing.T) {
	queries := []string{
		"select tid, qty from trans where qty > 2",
		"select faid, count(*) as cnt from trans group by faid having count(*) > 1",
		"select year(date) as y, sum(qty * price) as v from trans where month(date) >= 6 group by year(date)",
		"select faid, flid, count(*) as c from trans group by grouping sets((faid, flid), (faid))",
		"select state, count(*) as c from trans, loc where flid = lid group by state",
		"select tid, (select count(*) from loc) as n from trans",
		"select y, count(*) as c from (select year(date) as y, faid from trans) d group by y",
	}
	cat := testCatalog(t)
	for _, sql := range queries {
		g1, err := BuildSQL(sql, cat)
		if err != nil {
			t.Errorf("build %q: %v", sql, err)
			continue
		}
		printed := g1.SQL()
		if _, err := BuildSQL(printed, cat); err != nil {
			t.Errorf("printed SQL does not re-parse:\n  orig: %s\n  printed: %s\n  err: %v", sql, printed, err)
		}
	}
}

func TestWalkAndMapExpr(t *testing.T) {
	e, err := parser.ParseExpr("1 + 2")
	if err != nil {
		t.Fatal(err)
	}
	_ = e // parser-level expr; qgm-level walkers tested below
	g := build(t, "select qty * price + 1 as x from trans")
	expr := g.Root.Cols[0].Expr
	count := 0
	WalkExpr(expr, func(Expr) bool { count++; return true })
	if count != 5 { // +, *, qty, price, 1
		t.Fatalf("WalkExpr visited %d nodes", count)
	}
	// MapExpr: replace constants with 0.
	mapped := MapExpr(expr, func(x Expr) Expr {
		if _, ok := x.(*Const); ok {
			return &Const{Val: sqltypes.NewInt(0)}
		}
		return x
	})
	if !strings.Contains(mapped.String(), "+ 0") {
		t.Fatalf("MapExpr: %s", mapped.String())
	}
	if HasAgg(expr) {
		t.Fatal("no aggregate expected")
	}
	if len(ColRefs(expr)) != 2 {
		t.Fatal("ColRefs count")
	}
}

func TestSortGroupingSets(t *testing.T) {
	in := [][]int{{2, 0}, {0, 2}, {1}, {}, {1}}
	out := SortGroupingSets(in)
	if len(out) != 3 {
		t.Fatalf("dedup failed: %v", out)
	}
	if len(out[0]) != 0 || out[1][0] != 0 || out[2][0] != 1 {
		t.Fatalf("order: %v", out)
	}
}

func TestSubsumesInList(t *testing.T) {
	g := build(t, "select tid from trans")
	q := g.Root.Quantifiers[0]
	x := &ColRef{Q: q, Col: 4} // qty
	eqv := func(vals ...int64) Expr {
		var ors []Expr
		for _, v := range vals {
			ors = append(ors, &Bin{Op: "=", L: x, R: &Const{Val: sqltypes.NewInt(v)}})
		}
		return OrAll(ors)
	}
	if !Subsumes(eqv(1, 2, 3), eqv(1, 2), nil) {
		t.Error("wider IN must subsume narrower")
	}
	if Subsumes(eqv(1, 2), eqv(1, 2, 3), nil) {
		t.Error("narrower IN must not subsume wider")
	}
	if !Subsumes(eqv(1, 2, 3), eqv(2), nil) {
		t.Error("IN must subsume a member equality")
	}
	// Different tested expressions never subsume.
	y := &ColRef{Q: q, Col: 0}
	other := &Bin{Op: "=", L: y, R: &Const{Val: sqltypes.NewInt(1)}}
	if Subsumes(eqv(1, 2), other, nil) {
		t.Error("different expressions")
	}
}
