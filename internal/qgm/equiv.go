package qgm

import (
	"repro/internal/sqltypes"
)

// Equiv tracks column-equivalence classes within one SELECT box, derived from
// its equality predicates: the join predicate faid = aid makes the QNCs faid
// and aid interchangeable in expression matching (paper §4.1.1 example,
// "our algorithm is able to recognize such column equivalence").
//
// It is a union-find over QNC keys.
type Equiv struct {
	parent map[int64]int64
}

// NewEquiv returns an empty equivalence relation.
func NewEquiv() *Equiv {
	return &Equiv{parent: make(map[int64]int64)}
}

func qncKey(c *ColRef) int64 {
	if c.Q == nil {
		return -1
	}
	return int64(c.Q.ID)<<32 | int64(uint32(c.Col))
}

func (e *Equiv) find(k int64) int64 {
	p, ok := e.parent[k]
	if !ok || p == k {
		return k
	}
	root := e.find(p)
	e.parent[k] = root
	return root
}

// Union merges the classes of two QNCs.
func (e *Equiv) Union(a, b *ColRef) {
	ka, kb := qncKey(a), qncKey(b)
	if ka < 0 || kb < 0 {
		return
	}
	ra, rb := e.find(ka), e.find(kb)
	if ra != rb {
		e.parent[ra] = rb
	}
}

// Same reports whether two QNCs are in the same class (always true for the
// identical QNC).
func (e *Equiv) Same(a, b *ColRef) bool {
	ka, kb := qncKey(a), qncKey(b)
	if ka == kb {
		return true
	}
	if e == nil {
		return false
	}
	return e.find(ka) == e.find(kb)
}

// EquivFromPreds builds equivalence classes from the equality predicates of a
// SELECT box: every conjunct of the form QNC = QNC merges the two classes.
func EquivFromPreds(preds []Expr) *Equiv {
	eq := NewEquiv()
	for _, p := range preds {
		if b, ok := p.(*Bin); ok && b.Op == "=" {
			l, lok := b.L.(*ColRef)
			r, rok := b.R.(*ColRef)
			if lok && rok {
				eq.Union(l, r)
			}
		}
	}
	return eq
}

// ExprEqual reports semantic equality of two expressions: structural
// equality, modulo commutativity of +, *, =, <>, AND and OR, comparison
// flipping (a < b ≡ b > a), and QNC equivalence classes (eq may be nil for
// purely structural comparison).
func ExprEqual(a, b Expr, eq *Equiv) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case *ColRef:
		y, ok := b.(*ColRef)
		if !ok {
			return false
		}
		if x.Q == y.Q && x.Col == y.Col {
			return true
		}
		return eq != nil && eq.Same(x, y)
	case *Const:
		y, ok := b.(*Const)
		if !ok {
			return false
		}
		if x.Val.IsNull() && y.Val.IsNull() {
			return true
		}
		return sqltypes.Identical(x.Val, y.Val)
	case *Call:
		y, ok := b.(*Call)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !ExprEqual(x.Args[i], y.Args[i], eq) {
				return false
			}
		}
		return true
	case *Bin:
		y, ok := b.(*Bin)
		if !ok {
			return false
		}
		if x.Op == y.Op {
			if ExprEqual(x.L, y.L, eq) && ExprEqual(x.R, y.R, eq) {
				return true
			}
			if isCommutative(x.Op) && ExprEqual(x.L, y.R, eq) && ExprEqual(x.R, y.L, eq) {
				return true
			}
			return false
		}
		// a < b  ≡  b > a, etc.
		if flipCmp(x.Op) == y.Op {
			return ExprEqual(x.L, y.R, eq) && ExprEqual(x.R, y.L, eq)
		}
		return false
	case *Not:
		y, ok := b.(*Not)
		return ok && ExprEqual(x.E, y.E, eq)
	case *IsNull:
		y, ok := b.(*IsNull)
		return ok && x.Neg == y.Neg && ExprEqual(x.E, y.E, eq)
	case *Like:
		y, ok := b.(*Like)
		return ok && x.Neg == y.Neg && ExprEqual(x.E, y.E, eq) && ExprEqual(x.Pattern, y.Pattern, eq)
	case *Agg:
		y, ok := b.(*Agg)
		if !ok || x.Op != y.Op || x.Star != y.Star || x.Distinct != y.Distinct {
			return false
		}
		if x.Star {
			return true
		}
		return ExprEqual(x.Arg, y.Arg, eq)
	case *Case:
		y, ok := b.(*Case)
		if !ok || len(x.Whens) != len(y.Whens) {
			return false
		}
		for i := range x.Whens {
			if !ExprEqual(x.Whens[i].Cond, y.Whens[i].Cond, eq) ||
				!ExprEqual(x.Whens[i].Then, y.Whens[i].Then, eq) {
				return false
			}
		}
		return ExprEqual(x.Else, y.Else, eq)
	default:
		return false
	}
}

func isCommutative(op string) bool {
	switch op {
	case "+", "*", "=", "<>", "AND", "OR":
		return true
	default:
		return false
	}
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	case "=":
		return "="
	case "<>":
		return "<>"
	default:
		return ""
	}
}

// Subsumes reports whether predicate p1 subsumes p2 — every row eliminated by
// p1 is also eliminated by p2 (paper footnote 4: "x > 10 subsumes x > 20").
// It recognizes equal predicates and single-sided range comparisons over
// semantically equal expressions with constant bounds. When p1 subsumes p2
// but they are not equal, the caller must re-apply p2 in the compensation.
func Subsumes(p1, p2 Expr, eq *Equiv) bool {
	if ExprEqual(p1, p2, eq) {
		return true
	}
	// IN-list containment: `x IN (bigger set)` subsumes `x IN (subset)`
	// (IN desugars to a disjunction of equalities at build time).
	if s1, e1, ok1 := asInList(p1); ok1 {
		if s2, e2, ok2 := asInList(p2); ok2 && ExprEqual(e1, e2, eq) {
			for k := range s2 {
				if !s1[k] {
					return false
				}
			}
			return true
		}
		return false
	}
	c1, ok1 := asRangeCmp(p1)
	c2, ok2 := asRangeCmp(p2)
	if !ok1 || !ok2 {
		return false
	}
	if !ExprEqual(c1.expr, c2.expr, eq) {
		return false
	}
	cmp, err := sqltypes.Compare(c1.bound, c2.bound)
	if err != nil {
		return false
	}
	// p1 keeps rows with expr OP1 bound1; it subsumes p2 (expr OP2 bound2)
	// when the p2-interval is contained in the p1-interval.
	switch c1.op {
	case ">":
		return (c2.op == ">" && cmp <= 0) || (c2.op == ">=" && cmp < 0) || (c2.op == "=" && cmp < 0)
	case ">=":
		return (c2.op == ">" && cmp <= 0) || (c2.op == ">=" && cmp <= 0) || (c2.op == "=" && cmp <= 0)
	case "<":
		return (c2.op == "<" && cmp >= 0) || (c2.op == "<=" && cmp > 0) || (c2.op == "=" && cmp > 0)
	case "<=":
		return (c2.op == "<" && cmp >= 0) || (c2.op == "<=" && cmp >= 0) || (c2.op == "=" && cmp >= 0)
	case "=":
		return c2.op == "=" && cmp == 0
	case "<>":
		return (c2.op == "<>" && cmp == 0) ||
			(c2.op == ">" && cmp <= 0) || (c2.op == "<" && cmp >= 0) ||
			(c2.op == ">=" && cmp < 0) || (c2.op == "<=" && cmp > 0) ||
			(c2.op == "=" && cmp != 0)
	default:
		return false
	}
}

// asInList recognizes a disjunction of equalities of one expression with
// constants (the desugared form of IN) — including a single equality — and
// returns the constant set keyed by GroupKey plus the tested expression.
func asInList(p Expr) (map[string]bool, Expr, bool) {
	var testee Expr
	set := map[string]bool{}
	var walk func(e Expr) bool
	walk = func(e Expr) bool {
		b, ok := e.(*Bin)
		if !ok {
			return false
		}
		if b.Op == "OR" {
			return walk(b.L) && walk(b.R)
		}
		if b.Op != "=" {
			return false
		}
		var c *Const
		var x Expr
		if cc, ok := b.R.(*Const); ok {
			c, x = cc, b.L
		} else if cc, ok := b.L.(*Const); ok {
			c, x = cc, b.R
		} else {
			return false
		}
		if c.Val.IsNull() {
			return false
		}
		if testee == nil {
			testee = x
		} else if !ExprEqual(testee, x, nil) {
			return false
		}
		set[c.Val.GroupKey()] = true
		return true
	}
	if !walk(p) || testee == nil {
		return nil, nil, false
	}
	return set, testee, true
}

type rangeCmp struct {
	expr  Expr
	op    string
	bound sqltypes.Value
}

// asRangeCmp recognizes `expr OP const` (or `const OP expr`, flipped).
func asRangeCmp(p Expr) (rangeCmp, bool) {
	b, ok := p.(*Bin)
	if !ok {
		return rangeCmp{}, false
	}
	switch b.Op {
	case "=", "<>", "<", "<=", ">", ">=":
	default:
		return rangeCmp{}, false
	}
	if c, ok := b.R.(*Const); ok && !c.Val.IsNull() {
		return rangeCmp{expr: b.L, op: b.Op, bound: c.Val}, true
	}
	if c, ok := b.L.(*Const); ok && !c.Val.IsNull() {
		return rangeCmp{expr: b.R, op: flipCmp(b.Op), bound: c.Val}, true
	}
	return rangeCmp{}, false
}
