package qgm

// Clone deep-copies the graph: fresh boxes and quantifiers with identical
// structure, expressions rebuilt with references remapped onto the new
// quantifiers. The copy shares only immutable catalog metadata. Use it to
// keep an original graph intact across a (mutating) rewrite.
func (g *Graph) Clone() *Graph {
	out := NewGraph(g.Cat)
	boxMap := map[int]*Box{}          // old box ID → new box
	quantMap := map[int]*Quantifier{} // old quantifier ID → new quantifier

	// First pass (bottom-up): create boxes and quantifiers.
	for _, b := range g.Boxes() {
		nb := out.NewBox(b.Kind, b.Label)
		nb.Table = b.Table
		nb.Distinct = b.Distinct
		nb.Regroup = b.Regroup
		nb.GroupBy = append([]int(nil), b.GroupBy...)
		for _, gs := range b.GroupingSets {
			nb.GroupingSets = append(nb.GroupingSets, append([]int(nil), gs...))
		}
		for _, q := range b.Quantifiers {
			nq := out.NewQuantifier(q.Kind, boxMap[q.Box.ID], q.Alias)
			quantMap[q.ID] = nq
			nb.Quantifiers = append(nb.Quantifiers, nq)
		}
		boxMap[b.ID] = nb
	}

	remap := func(e Expr) Expr {
		return MapExpr(e, func(x Expr) Expr {
			if c, ok := x.(*ColRef); ok {
				if nq, found := quantMap[c.Q.ID]; found {
					return &ColRef{Q: nq, Col: c.Col}
				}
			}
			return x
		})
	}

	// Second pass: rebuild expressions over the new quantifiers.
	for _, b := range g.Boxes() {
		nb := boxMap[b.ID]
		for _, c := range b.Cols {
			nb.Cols = append(nb.Cols, QCL{Name: c.Name, Expr: remap(c.Expr)})
		}
		for _, p := range b.Preds {
			nb.Preds = append(nb.Preds, remap(p))
		}
	}

	out.Root = boxMap[g.Root.ID]
	// Register cloned base boxes so further BaseTableBox calls keep sharing.
	for name, b := range g.baseBoxes {
		if nb, ok := boxMap[b.ID]; ok {
			out.baseBoxes[name] = nb
		}
	}
	return out
}
