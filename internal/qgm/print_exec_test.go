package qgm_test

// Black-box printer test: a printed graph must re-compile to a query that
// produces identical results — the property the CLI and NewQ display rely on.

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/qgm"
	"repro/internal/storage"
	"repro/internal/workload"
)

func TestPrintedSQLExecutesIdentically(t *testing.T) {
	cat := catalog.New()
	workload.Schema(cat)
	store := storage.NewStore()
	workload.Load(cat, store, workload.StarConfig{NumTrans: 1500, Seed: 31})
	engine := exec.NewEngine(store)

	queries := []string{
		"select tid, qty * price as v from trans where qty > 2 and disc > 0.1",
		"select faid, count(*) as cnt, sum(qty) as s from trans group by faid having count(*) > 3",
		"select state, year(date) as year, count(*) as cnt from trans, loc where flid = lid and country = 'USA' group by state, year(date)",
		"select faid, flid, count(*) as c from trans group by grouping sets((faid, flid), (faid), ())",
		"select distinct faid, qty from trans where price > 100",
		"select tid, (select count(*) from loc) as n from trans where qty = 1",
		"select y, count(*) as c from (select year(date) as y, faid from trans where month(date) > 3) d group by y",
		"select faid, avg(price) as ap from trans group by faid",
		"select year(date) % 100 as yy, max(price) as mx, min(qty) as mq from trans group by year(date) % 100",
	}
	for _, sql := range queries {
		g1, err := qgm.BuildSQL(sql, cat)
		if err != nil {
			t.Errorf("build %q: %v", sql, err)
			continue
		}
		r1, err := engine.Run(g1)
		if err != nil {
			t.Errorf("run %q: %v", sql, err)
			continue
		}
		printed := g1.SQL()
		g2, err := qgm.BuildSQL(printed, cat)
		if err != nil {
			t.Errorf("printed SQL does not compile:\n  orig:    %s\n  printed: %s\n  err: %v", sql, printed, err)
			continue
		}
		r2, err := engine.Run(g2)
		if err != nil {
			t.Errorf("printed SQL does not run: %s: %v", printed, err)
			continue
		}
		if diff := exec.EqualResults(r1, r2); diff != "" {
			t.Errorf("printed SQL diverges: %s\n  orig:    %s\n  printed: %s", diff, sql, printed)
		}
	}
}
