package qgm

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/parser"
	"repro/internal/sqltypes"
)

// ErrUnknownTable marks a build failure caused by a FROM or DML target table
// that is not registered in the catalog. Builders wrap it so callers (the
// astdb facade, and through it the wire server) can classify the failure with
// errors.Is without matching message text.
var ErrUnknownTable = errors.New("qgm: unknown table")

// Build compiles a parsed SELECT statement into a QGM graph against the given
// catalog. Per the paper (§2), each SQL block becomes:
//
//   - a lower SELECT box joining the FROM children, applying WHERE conjuncts
//     and computing the grouping expressions and aggregate arguments;
//   - a GROUP BY box (when the block aggregates) grouping by simple QNCs over
//     the lower box, with supergroup clauses canonicalized to grouping sets;
//   - an upper SELECT box applying HAVING and computing the select list.
//
// Blocks without aggregation compile to a single SELECT box. Scalar
// subqueries become extra children (Scalar quantifiers) of the SELECT box in
// which they appear; derived tables become ForEach children.
func Build(stmt *parser.SelectStmt, cat *catalog.Catalog) (*Graph, error) {
	g := NewGraph(cat)
	b := &builder{g: g}
	root, err := b.buildBlock(stmt, "Q")
	if err != nil {
		return nil, err
	}
	g.Root = root
	// Reject definitely ill-typed queries at the door (`where (date)`,
	// `0 like ''`): the executor and the qgmcheck oracle are entitled to
	// well-typed graphs. KindNull means unknown and always passes — only
	// definite disagreements reject.
	for _, box := range g.Boxes() {
		for i, p := range box.Preds {
			if iss := TypeIssues(p); len(iss) > 0 {
				return nil, fmt.Errorf("qgm: predicate %d of %s: %s", i, box.Label, iss[0])
			}
			if k, _ := inferType(p); !IsBoolKind(k) {
				return nil, fmt.Errorf("qgm: predicate %d of %s has non-boolean type %s", i, box.Label, k)
			}
		}
		for _, c := range box.Cols {
			if c.Expr == nil {
				continue
			}
			if iss := TypeIssues(c.Expr); len(iss) > 0 {
				return nil, fmt.Errorf("qgm: output %q of %s: %s", c.Name, box.Label, iss[0])
			}
		}
	}
	return g, nil
}

// MustBuild is Build that panics on error; for tests and built-in workloads.
func MustBuild(stmt *parser.SelectStmt, cat *catalog.Catalog) *Graph {
	g, err := Build(stmt, cat)
	if err != nil {
		panic(err)
	}
	return g
}

// BuildSQL parses and compiles in one step.
func BuildSQL(sql string, cat *catalog.Catalog) (*Graph, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return Build(stmt, cat)
}

// MustBuildSQL is BuildSQL that panics on error.
func MustBuildSQL(sql string, cat *catalog.Catalog) *Graph {
	g, err := BuildSQL(sql, cat)
	if err != nil {
		panic(err)
	}
	return g
}

type builder struct {
	g *Graph
}

// scopeEntry binds a FROM alias to the quantifier carrying its rows.
type scopeEntry struct {
	alias string
	quant *Quantifier
}

type scope struct {
	entries []scopeEntry
}

func (s *scope) add(alias string, q *Quantifier) error {
	alias = strings.ToLower(alias)
	for _, e := range s.entries {
		if e.alias == alias {
			return fmt.Errorf("qgm: duplicate table alias %q", alias)
		}
	}
	s.entries = append(s.entries, scopeEntry{alias: alias, quant: q})
	return nil
}

// resolveColumn finds the QNC for a (possibly qualified) column name.
func (s *scope) resolveColumn(qualifier, name string) (*ColRef, error) {
	qualifier = strings.ToLower(qualifier)
	name = strings.ToLower(name)
	var found *ColRef
	for _, e := range s.entries {
		if qualifier != "" && e.alias != qualifier {
			continue
		}
		idx := e.quant.Box.ColIndex(name)
		if idx < 0 {
			continue
		}
		if found != nil {
			return nil, fmt.Errorf("qgm: ambiguous column reference %q", name)
		}
		found = &ColRef{Q: e.quant, Col: idx}
	}
	if found == nil {
		if qualifier != "" {
			return nil, fmt.Errorf("qgm: column %s.%s not found", qualifier, name)
		}
		return nil, fmt.Errorf("qgm: column %q not found", name)
	}
	return found, nil
}

var aggNames = map[string]bool{"count": true, "sum": true, "min": true, "max": true, "avg": true}

var scalarBuiltins = map[string]int{"year": 1, "month": 1, "day": 1}

// containsAggregate reports whether a parse expression contains an aggregate
// function call (at any depth, not descending into subqueries).
func containsAggregate(e parser.Expr) bool {
	switch t := e.(type) {
	case nil:
		return false
	case *parser.ColRef, *parser.Lit, *parser.SubqueryExpr:
		return false
	case *parser.BinExpr:
		return containsAggregate(t.L) || containsAggregate(t.R)
	case *parser.UnaryExpr:
		return containsAggregate(t.E)
	case *parser.FuncCall:
		if aggNames[t.Name] {
			return true
		}
		for _, a := range t.Args {
			if containsAggregate(a) {
				return true
			}
		}
		return false
	case *parser.IsNullExpr:
		return containsAggregate(t.E)
	case *parser.LikeExpr:
		return containsAggregate(t.E) || containsAggregate(t.Pattern)
	case *parser.BetweenExpr:
		return containsAggregate(t.E) || containsAggregate(t.Lo) || containsAggregate(t.Hi)
	case *parser.InExpr:
		if containsAggregate(t.E) {
			return true
		}
		for _, x := range t.List {
			if containsAggregate(x) {
				return true
			}
		}
		return false
	case *parser.CaseExpr:
		for _, w := range t.Whens {
			if containsAggregate(w.Cond) || containsAggregate(w.Then) {
				return true
			}
		}
		return containsAggregate(t.Else)
	default:
		return false
	}
}

// buildBlock compiles one SQL block and returns its top box.
func (b *builder) buildBlock(stmt *parser.SelectStmt, tag string) (*Box, error) {
	sel := b.g.NewBox(SelectBox, "Sel-"+tag)
	sc := &scope{}

	for i, ref := range stmt.From {
		var child *Box
		if ref.Subquery != nil {
			sub, err := b.buildBlock(ref.Subquery, fmt.Sprintf("%s.f%d", tag, i))
			if err != nil {
				return nil, err
			}
			child = sub
		} else {
			tbl, ok := b.g.Cat.Table(ref.Table)
			if !ok {
				return nil, fmt.Errorf("%w: %q not in catalog", ErrUnknownTable, ref.Table)
			}
			child = b.g.BaseTableBox(tbl)
		}
		q := b.g.NewQuantifier(ForEach, child, ref.Alias)
		sel.Quantifiers = append(sel.Quantifiers, q)
		if err := sc.add(ref.Alias, q); err != nil {
			return nil, err
		}
	}

	r := &resolver{b: b, scope: sc, box: sel, tag: tag}

	if stmt.Where != nil {
		w, err := r.resolve(stmt.Where)
		if err != nil {
			return nil, fmt.Errorf("in WHERE: %w", err)
		}
		sel.Preds = SplitConjuncts(w)
	}

	hasAgg := len(stmt.GroupBy) > 0 || containsAggregate(stmt.Having)
	if !hasAgg {
		for _, it := range stmt.Items {
			if !it.Star && containsAggregate(it.Expr) {
				hasAgg = true
				break
			}
		}
	}

	if !hasAgg {
		if stmt.Having != nil {
			return nil, fmt.Errorf("qgm: HAVING without aggregation is not supported")
		}
		if err := b.buildPlainOutput(stmt, sel, sc, r); err != nil {
			return nil, err
		}
		if stmt.Distinct {
			return b.wrapDistinct(sel, tag), nil
		}
		return sel, nil
	}

	top, err := b.buildAggBlock(stmt, sel, sc, r, tag)
	if err != nil {
		return nil, err
	}
	if stmt.Distinct {
		return b.wrapDistinct(top, tag), nil
	}
	return top, nil
}

// wrapDistinct canonicalizes SELECT DISTINCT into a GROUP BY over all output
// columns plus a projection — the representation the paper's footnote 2
// alludes to ("a SELECT DISTINCT box may match with a GROUP-BY box, as they
// both eliminate duplicates"). With this canonical form, DISTINCT queries
// match aggregation ASTs (and vice versa) through the ordinary GROUP BY
// patterns, without violating the same-type condition.
func (b *builder) wrapDistinct(inner *Box, tag string) *Box {
	gb := b.g.NewBox(GroupByBox, "GBDist-"+tag)
	qIn := b.g.NewQuantifier(ForEach, inner, "")
	gb.Quantifiers = []*Quantifier{qIn}
	for i, c := range inner.Cols {
		gb.Cols = append(gb.Cols, QCL{Name: c.Name, Expr: &ColRef{Q: qIn, Col: i}})
		gb.GroupBy = append(gb.GroupBy, i)
	}
	all := make([]int, len(gb.GroupBy))
	for i := range all {
		all[i] = i
	}
	gb.GroupingSets = [][]int{all}

	top := b.g.NewBox(SelectBox, "SelDist-"+tag)
	qGb := b.g.NewQuantifier(ForEach, gb, "")
	top.Quantifiers = []*Quantifier{qGb}
	for i, c := range gb.Cols {
		top.Cols = append(top.Cols, QCL{Name: c.Name, Expr: &ColRef{Q: qGb, Col: i}})
	}
	return top
}

// buildPlainOutput fills the output columns of a non-aggregating block.
func (b *builder) buildPlainOutput(stmt *parser.SelectStmt, sel *Box, sc *scope, r *resolver) error {
	for _, it := range stmt.Items {
		if it.Star {
			for _, e := range sc.entries {
				for i := 0; i < len(e.quant.Box.Cols); i++ {
					sel.Cols = append(sel.Cols, QCL{
						Name: e.quant.Box.Cols[i].Name,
						Expr: &ColRef{Q: e.quant, Col: i},
					})
				}
			}
			continue
		}
		e, err := r.resolve(it.Expr)
		if err != nil {
			return fmt.Errorf("in select list: %w", err)
		}
		sel.Cols = append(sel.Cols, QCL{Name: outName(it, e, len(sel.Cols)), Expr: e})
	}
	uniquifyNames(sel)
	return nil
}

// buildAggBlock compiles an aggregating block: lower SELECT (already holds
// FROM/WHERE), a GROUP BY box, and an upper SELECT for HAVING + select list.
func (b *builder) buildAggBlock(stmt *parser.SelectStmt, sel *Box, sc *scope, r *resolver, tag string) (*Box, error) {
	// Substitute select-list aliases inside GROUP BY elements (SQL allows
	// GROUP BY to reference output aliases).
	aliasMap := map[string]parser.Expr{}
	for _, it := range stmt.Items {
		if !it.Star && it.Alias != "" && !containsAggregate(it.Expr) {
			aliasMap[strings.ToLower(it.Alias)] = it.Expr
		}
	}
	substAlias := func(e parser.Expr) parser.Expr {
		if c, ok := e.(*parser.ColRef); ok && c.Qualifier == "" {
			if _, err := sc.resolveColumn("", c.Name); err != nil {
				if repl, ok := aliasMap[strings.ToLower(c.Name)]; ok {
					return repl
				}
			}
		}
		return e
	}

	// Collect and deduplicate grouping expressions across all elements,
	// then canonicalize the supergroup structure into grouping sets
	// (paper §5: every supergroup expression has an equivalent single
	// GROUPING SETS form).
	var gexprs []Expr   // resolved grouping expressions, deduplicated
	var gnames []string // output names for grouping columns
	indexOf := func(pe parser.Expr) (int, error) {
		pe = substAlias(pe)
		e, err := r.resolve(pe)
		if err != nil {
			return 0, fmt.Errorf("in GROUP BY: %w", err)
		}
		if HasAgg(e) {
			return 0, fmt.Errorf("qgm: aggregate function in GROUP BY")
		}
		for i, g := range gexprs {
			if ExprEqual(g, e, nil) {
				return i, nil
			}
		}
		gexprs = append(gexprs, e)
		gnames = append(gnames, groupColName(stmt, pe, e, r, len(gexprs)-1))
		return len(gexprs) - 1, nil
	}

	// Per-element list of index sets.
	var perElem [][][]int
	for _, elem := range stmt.GroupBy {
		var sets [][]int
		switch elem.Kind {
		case parser.GroupExpr:
			i, err := indexOf(elem.Exprs[0])
			if err != nil {
				return nil, err
			}
			sets = [][]int{{i}}
		case parser.GroupRollup:
			idxs := make([]int, len(elem.Exprs))
			for i, pe := range elem.Exprs {
				var err error
				idxs[i], err = indexOf(pe)
				if err != nil {
					return nil, err
				}
			}
			for n := len(idxs); n >= 0; n-- {
				sets = append(sets, append([]int(nil), idxs[:n]...))
			}
		case parser.GroupCube:
			idxs := make([]int, len(elem.Exprs))
			for i, pe := range elem.Exprs {
				var err error
				idxs[i], err = indexOf(pe)
				if err != nil {
					return nil, err
				}
			}
			for mask := 0; mask < 1<<len(idxs); mask++ {
				var s []int
				for i := range idxs {
					if mask&(1<<i) != 0 {
						s = append(s, idxs[i])
					}
				}
				sets = append(sets, s)
			}
		case parser.GroupSets:
			for _, set := range elem.Sets {
				var s []int
				for _, pe := range set {
					i, err := indexOf(pe)
					if err != nil {
						return nil, err
					}
					s = append(s, i)
				}
				sets = append(sets, s)
			}
		}
		perElem = append(perElem, sets)
	}

	// Cross-product combine the per-element set lists.
	total := [][]int{{}}
	for _, sets := range perElem {
		var next [][]int
		for _, base := range total {
			for _, s := range sets {
				merged := append(append([]int(nil), base...), s...)
				next = append(next, dedupInts(merged))
			}
		}
		total = next
	}
	groupingSets := SortGroupingSets(total)

	// Lower SELECT box computes each grouping expression as a QCL.
	for i, e := range gexprs {
		sel.Cols = append(sel.Cols, QCL{Name: gnames[i], Expr: e})
	}

	// GROUP BY box.
	gb := b.g.NewBox(GroupByBox, "GB-"+tag)
	qSel := b.g.NewQuantifier(ForEach, sel, "")
	gb.Quantifiers = []*Quantifier{qSel}
	for i := range gexprs {
		gb.Cols = append(gb.Cols, QCL{Name: gnames[i], Expr: &ColRef{Q: qSel, Col: i}})
		gb.GroupBy = append(gb.GroupBy, i)
	}
	gb.GroupingSets = groupingSets

	// Upper SELECT box.
	top := b.g.NewBox(SelectBox, "TopSel-"+tag)
	qGb := b.g.NewQuantifier(ForEach, gb, "")
	top.Quantifiers = []*Quantifier{qGb}

	ar := &aggResolver{
		b: b, lower: r, sel: sel, gb: gb, qSel: qSel, qGb: qGb,
		top: top, gexprs: gexprs, tag: tag,
	}

	if stmt.Having != nil {
		h, err := ar.resolve(stmt.Having)
		if err != nil {
			return nil, fmt.Errorf("in HAVING: %w", err)
		}
		top.Preds = SplitConjuncts(h)
	}
	for _, it := range stmt.Items {
		if it.Star {
			return nil, fmt.Errorf("qgm: SELECT * is not allowed with GROUP BY")
		}
		e, err := ar.resolve(it.Expr)
		if err != nil {
			return nil, fmt.Errorf("in select list: %w", err)
		}
		top.Cols = append(top.Cols, QCL{Name: outName(it, e, len(top.Cols)), Expr: e})
	}
	top.Distinct = stmt.Distinct
	uniquifyNames(top)
	return top, nil
}

func dedupInts(s []int) []int {
	seen := map[int]bool{}
	out := s[:0]
	for _, v := range s {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// groupColName picks a stable output name for a grouping column: a matching
// select-item alias when one computes the same expression, the column name
// for plain references, else a synthesized name.
func groupColName(stmt *parser.SelectStmt, pe parser.Expr, resolved Expr, r *resolver, ord int) string {
	for _, it := range stmt.Items {
		if it.Star || it.Alias == "" || containsAggregate(it.Expr) {
			continue
		}
		if re, err := r.resolveReadOnly(it.Expr); err == nil && ExprEqual(re, resolved, nil) {
			return strings.ToLower(it.Alias)
		}
	}
	if c, ok := pe.(*parser.ColRef); ok {
		return strings.ToLower(c.Name)
	}
	return fmt.Sprintf("g%d", ord)
}

// outName names an output column: explicit alias, else column name, else
// positional.
func outName(it parser.SelectItem, e Expr, ord int) string {
	if it.Alias != "" {
		return strings.ToLower(it.Alias)
	}
	if c, ok := it.Expr.(*parser.ColRef); ok {
		return strings.ToLower(c.Name)
	}
	_ = e
	return fmt.Sprintf("c%d", ord)
}

// uniquifyNames renames duplicate output columns (a_1, a_2, ...) so the box
// output can always be materialized as a table.
func uniquifyNames(b *Box) {
	seen := map[string]int{}
	for i := range b.Cols {
		n := b.Cols[i].Name
		if c, ok := seen[n]; ok {
			seen[n] = c + 1
			b.Cols[i].Name = fmt.Sprintf("%s_%d", n, c+1)
		} else {
			seen[n] = 0
		}
	}
}

// resolver resolves parse expressions in the context of a (lower) SELECT box.
// Scalar subqueries encountered are attached to the box as Scalar children.
type resolver struct {
	b     *builder
	scope *scope
	box   *Box
	tag   string
	subN  int

	readOnly bool // when set, fail on scalar subqueries instead of mutating
}

func (r *resolver) resolveReadOnly(pe parser.Expr) (Expr, error) {
	ro := *r
	ro.readOnly = true
	return ro.resolve(pe)
}

func (r *resolver) resolve(pe parser.Expr) (Expr, error) {
	switch t := pe.(type) {
	case *parser.ColRef:
		return r.scope.resolveColumn(t.Qualifier, t.Name)
	case *parser.Lit:
		return &Const{Val: t.Val}, nil
	case *parser.BinExpr:
		l, err := r.resolve(t.L)
		if err != nil {
			return nil, err
		}
		rr, err := r.resolve(t.R)
		if err != nil {
			return nil, err
		}
		return &Bin{Op: t.Op, L: l, R: rr}, nil
	case *parser.UnaryExpr:
		e, err := r.resolve(t.E)
		if err != nil {
			return nil, err
		}
		if t.Op == "NOT" {
			return &Not{E: e}, nil
		}
		return &Bin{Op: "-", L: &Const{Val: sqltypes.NewInt(0)}, R: e}, nil
	case *parser.FuncCall:
		if aggNames[t.Name] {
			return nil, fmt.Errorf("qgm: aggregate %s() not allowed here", t.Name)
		}
		n, ok := scalarBuiltins[t.Name]
		if !ok {
			return nil, fmt.Errorf("qgm: unknown function %q", t.Name)
		}
		if len(t.Args) != n {
			return nil, fmt.Errorf("qgm: %s() takes %d argument(s)", t.Name, n)
		}
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			e, err := r.resolve(a)
			if err != nil {
				return nil, err
			}
			args[i] = e
		}
		return &Call{Name: t.Name, Args: args}, nil
	case *parser.IsNullExpr:
		e, err := r.resolve(t.E)
		if err != nil {
			return nil, err
		}
		return &IsNull{E: e, Neg: t.Not}, nil
	case *parser.LikeExpr:
		e, err := r.resolve(t.E)
		if err != nil {
			return nil, err
		}
		pat, err := r.resolve(t.Pattern)
		if err != nil {
			return nil, err
		}
		return &Like{E: e, Pattern: pat, Neg: t.Not}, nil
	case *parser.BetweenExpr:
		e, err := r.resolve(t.E)
		if err != nil {
			return nil, err
		}
		lo, err := r.resolve(t.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := r.resolve(t.Hi)
		if err != nil {
			return nil, err
		}
		rng := &Bin{Op: "AND",
			L: &Bin{Op: ">=", L: e, R: lo},
			R: &Bin{Op: "<=", L: e, R: hi}}
		if t.Not {
			return &Not{E: rng}, nil
		}
		return rng, nil
	case *parser.InExpr:
		e, err := r.resolve(t.E)
		if err != nil {
			return nil, err
		}
		var ors []Expr
		for _, item := range t.List {
			ie, err := r.resolve(item)
			if err != nil {
				return nil, err
			}
			ors = append(ors, &Bin{Op: "=", L: e, R: ie})
		}
		out := OrAll(ors)
		if t.Not {
			return &Not{E: out}, nil
		}
		return out, nil
	case *parser.SubqueryExpr:
		if r.readOnly {
			return nil, fmt.Errorf("qgm: scalar subquery not allowed in this context")
		}
		sub, err := r.b.buildBlock(t.Query, fmt.Sprintf("%s.s%d", r.tag, r.subN))
		r.subN++
		if err != nil {
			return nil, err
		}
		if len(sub.Cols) != 1 {
			return nil, fmt.Errorf("qgm: scalar subquery must produce exactly one column")
		}
		q := r.b.g.NewQuantifier(Scalar, sub, "")
		r.box.Quantifiers = append(r.box.Quantifiers, q)
		return &ColRef{Q: q, Col: 0}, nil
	case *parser.CaseExpr:
		c := &Case{}
		for _, w := range t.Whens {
			cond, err := r.resolve(w.Cond)
			if err != nil {
				return nil, err
			}
			then, err := r.resolve(w.Then)
			if err != nil {
				return nil, err
			}
			c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: then})
		}
		if t.Else != nil {
			e, err := r.resolve(t.Else)
			if err != nil {
				return nil, err
			}
			c.Else = e
		}
		return c, nil
	default:
		return nil, fmt.Errorf("qgm: unsupported expression %T", pe)
	}
}

// aggResolver resolves select-list and HAVING expressions of an aggregating
// block in the context of the upper SELECT box: aggregate calls map to (or
// create) aggregate output columns of the GROUP BY box; subtrees equal to a
// grouping expression map to the corresponding grouping column; scalar
// subqueries attach to the upper box.
type aggResolver struct {
	b      *builder
	lower  *resolver
	sel    *Box // lower select box
	gb     *Box
	qSel   *Quantifier
	qGb    *Quantifier
	top    *Box
	gexprs []Expr
	tag    string
	subN   int
}

func (a *aggResolver) resolve(pe parser.Expr) (Expr, error) {
	// Scalar subqueries attach to the upper box.
	if sq, ok := pe.(*parser.SubqueryExpr); ok {
		sub, err := a.b.buildBlock(sq.Query, fmt.Sprintf("%s.h%d", a.tag, a.subN))
		a.subN++
		if err != nil {
			return nil, err
		}
		if len(sub.Cols) != 1 {
			return nil, fmt.Errorf("qgm: scalar subquery must produce exactly one column")
		}
		q := a.b.g.NewQuantifier(Scalar, sub, "")
		a.top.Quantifiers = append(a.top.Quantifiers, q)
		return &ColRef{Q: q, Col: 0}, nil
	}

	// Aggregate function: resolve the argument in the lower scope and map to
	// a GROUP BY output column.
	if fc, ok := pe.(*parser.FuncCall); ok && aggNames[fc.Name] {
		return a.resolveAggCall(fc)
	}

	// Whole subtree equal to a grouping expression?
	if e, err := a.lower.resolveReadOnly(pe); err == nil {
		for i, g := range a.gexprs {
			if ExprEqual(g, e, nil) {
				return &ColRef{Q: a.qGb, Col: i}, nil
			}
		}
		// Constants are fine anywhere.
		if _, ok := e.(*Const); ok {
			return e, nil
		}
		if _, ok := pe.(*parser.ColRef); ok {
			return nil, fmt.Errorf("qgm: column %s is neither grouped nor aggregated", pe.SQL())
		}
	} else if _, ok := pe.(*parser.ColRef); ok {
		return nil, err
	}

	// Recurse structurally.
	switch t := pe.(type) {
	case *parser.Lit:
		return &Const{Val: t.Val}, nil
	case *parser.BinExpr:
		l, err := a.resolve(t.L)
		if err != nil {
			return nil, err
		}
		r, err := a.resolve(t.R)
		if err != nil {
			return nil, err
		}
		return &Bin{Op: t.Op, L: l, R: r}, nil
	case *parser.UnaryExpr:
		e, err := a.resolve(t.E)
		if err != nil {
			return nil, err
		}
		if t.Op == "NOT" {
			return &Not{E: e}, nil
		}
		return &Bin{Op: "-", L: &Const{Val: sqltypes.NewInt(0)}, R: e}, nil
	case *parser.FuncCall:
		n, ok := scalarBuiltins[t.Name]
		if !ok {
			return nil, fmt.Errorf("qgm: unknown function %q", t.Name)
		}
		if len(t.Args) != n {
			return nil, fmt.Errorf("qgm: %s() takes %d argument(s)", t.Name, n)
		}
		args := make([]Expr, len(t.Args))
		for i, arg := range t.Args {
			e, err := a.resolve(arg)
			if err != nil {
				return nil, err
			}
			args[i] = e
		}
		return &Call{Name: t.Name, Args: args}, nil
	case *parser.IsNullExpr:
		e, err := a.resolve(t.E)
		if err != nil {
			return nil, err
		}
		return &IsNull{E: e, Neg: t.Not}, nil
	case *parser.LikeExpr:
		e, err := a.resolve(t.E)
		if err != nil {
			return nil, err
		}
		pat, err := a.resolve(t.Pattern)
		if err != nil {
			return nil, err
		}
		return &Like{E: e, Pattern: pat, Neg: t.Not}, nil
	case *parser.BetweenExpr:
		e, err := a.resolve(t.E)
		if err != nil {
			return nil, err
		}
		lo, err := a.resolve(t.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := a.resolve(t.Hi)
		if err != nil {
			return nil, err
		}
		rng := &Bin{Op: "AND",
			L: &Bin{Op: ">=", L: e, R: lo},
			R: &Bin{Op: "<=", L: e, R: hi}}
		if t.Not {
			return &Not{E: rng}, nil
		}
		return rng, nil
	case *parser.InExpr:
		e, err := a.resolve(t.E)
		if err != nil {
			return nil, err
		}
		var ors []Expr
		for _, item := range t.List {
			ie, err := a.resolve(item)
			if err != nil {
				return nil, err
			}
			ors = append(ors, &Bin{Op: "=", L: e, R: ie})
		}
		out := OrAll(ors)
		if t.Not {
			return &Not{E: out}, nil
		}
		return out, nil
	case *parser.CaseExpr:
		c := &Case{}
		for _, w := range t.Whens {
			cond, err := a.resolve(w.Cond)
			if err != nil {
				return nil, err
			}
			then, err := a.resolve(w.Then)
			if err != nil {
				return nil, err
			}
			c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: then})
		}
		if t.Else != nil {
			e, err := a.resolve(t.Else)
			if err != nil {
				return nil, err
			}
			c.Else = e
		}
		return c, nil
	default:
		return nil, fmt.Errorf("qgm: expression %s is neither grouped nor aggregated", pe.SQL())
	}
}

// resolveAggCall maps an aggregate call to a GROUP BY output column, adding
// lower-box argument QCLs and GROUP BY aggregate QCLs on demand. AVG(x) is
// canonicalized to SUM(x)/COUNT(x), which makes it derivable through the
// paper's SUM and COUNT rules.
func (a *aggResolver) resolveAggCall(fc *parser.FuncCall) (Expr, error) {
	if fc.Name == "avg" {
		if fc.Star || len(fc.Args) != 1 {
			return nil, fmt.Errorf("qgm: avg() takes one argument")
		}
		if fc.Distinct {
			return nil, fmt.Errorf("qgm: avg(DISTINCT) is not supported")
		}
		sum, err := a.addAgg("sum", fc.Args[0], false, false)
		if err != nil {
			return nil, err
		}
		cnt, err := a.addAgg("count", fc.Args[0], false, false)
		if err != nil {
			return nil, err
		}
		return &Bin{Op: "/", L: sum, R: cnt}, nil
	}
	if fc.Star {
		if fc.Name != "count" {
			return nil, fmt.Errorf("qgm: %s(*) is not valid", fc.Name)
		}
		return a.addAgg("count", nil, true, false)
	}
	if len(fc.Args) != 1 {
		return nil, fmt.Errorf("qgm: %s() takes one argument", fc.Name)
	}
	if containsAggregate(fc.Args[0]) {
		return nil, fmt.Errorf("qgm: nested aggregate in %s()", fc.Name)
	}
	return a.addAgg(fc.Name, fc.Args[0], false, fc.Distinct)
}

func (a *aggResolver) addAgg(op string, parg parser.Expr, star, distinct bool) (Expr, error) {
	var agg *Agg
	if star {
		agg = &Agg{Op: op, Star: true}
	} else {
		argE, err := a.lower.resolve(parg)
		if err != nil {
			return nil, err
		}
		if HasAgg(argE) {
			return nil, fmt.Errorf("qgm: nested aggregates are not allowed")
		}
		// Find or add the lower-box QCL computing the argument.
		argIdx := -1
		for i, c := range a.sel.Cols {
			if ExprEqual(c.Expr, argE, nil) {
				argIdx = i
				break
			}
		}
		if argIdx < 0 {
			name := fmt.Sprintf("a%d", len(a.sel.Cols))
			if cr, ok := argE.(*ColRef); ok && cr.Q.Box != nil {
				name = cr.Q.Box.Cols[cr.Col].Name
				// Avoid clashing with an existing column of the lower box.
				if a.sel.ColIndex(name) >= 0 {
					name = fmt.Sprintf("%s_a%d", name, len(a.sel.Cols))
				}
			}
			a.sel.Cols = append(a.sel.Cols, QCL{Name: name, Expr: argE})
			argIdx = len(a.sel.Cols) - 1
		}
		agg = &Agg{Op: op, Arg: &ColRef{Q: a.qSel, Col: argIdx}, Distinct: distinct}
	}
	// Find or add the GROUP BY aggregate column.
	for i := len(a.gb.GroupBy); i < len(a.gb.Cols); i++ {
		if ExprEqual(a.gb.Cols[i].Expr, agg, nil) {
			return &ColRef{Q: a.qGb, Col: i}, nil
		}
	}
	name := fmt.Sprintf("agg%d", len(a.gb.Cols)-len(a.gb.GroupBy))
	a.gb.Cols = append(a.gb.Cols, QCL{Name: name, Expr: agg})
	return &ColRef{Q: a.qGb, Col: len(a.gb.Cols) - 1}, nil
}
