// Package advisor implements AST selection — problem (a) of the paper's
// introduction ("finding the best set of ASTs for each workload under space
// and/or update overhead constraints", citing Harinarayan, Rajaraman & Ullman,
// SIGMOD 1996).
//
// It implements the classic HRU greedy algorithm over the cube lattice: the
// views are the 2^n cuboids over a set of dimensions; the cost of answering a
// query grouped on set q from a materialized cuboid v ⊇ q is the size of v
// (linear-scan cost model); the benefit of materializing v is the total cost
// reduction over all cuboids it can answer; greedily pick k views. HRU prove
// this achieves at least (1 - 1/e) ≈ 63% of the optimal benefit.
//
// The package works in two layers: the pure algorithm over abstract lattice
// sizes (Greedy), directly testable against the HRU paper's worked example,
// and a driver (SelectASTs) that measures real cuboid cardinalities on loaded
// data and emits CREATE SUMMARY TABLE definitions for the rewriter.
package advisor

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/qgm"
	"repro/internal/storage"
)

// Lattice is a cube lattice over n dimensions: view v is the bitmask of the
// dimensions it groups by, and Size[v] its row count. The top view (all bits
// set) represents the raw-data granularity and is always available (it is the
// fact table itself in the driver).
type Lattice struct {
	N    int
	Size []int // indexed by bitmask; len == 1<<N
}

// Top returns the full-granularity view mask.
func (l *Lattice) Top() int { return 1<<l.N - 1 }

// Subsumes reports whether view v can answer view q (q's dimensions ⊆ v's).
func Subsumes(v, q int) bool { return q&^v == 0 }

// Selection is the result of the greedy algorithm.
type Selection struct {
	Views    []int // chosen view masks, in pick order (excluding the top view)
	Benefits []int // benefit of each pick at the time it was taken
	// TotalCost is the final sum over all cuboids of the cheapest available
	// answering view's size.
	TotalCost int
}

// Greedy runs HRU greedy selection: pick k views (beyond the always-present
// top view) maximizing benefit at each step.
func Greedy(l *Lattice, k int) *Selection {
	nViews := 1 << l.N
	top := l.Top()

	// cost[q] = size of the cheapest selected view that subsumes q.
	cost := make([]int, nViews)
	for q := 0; q < nViews; q++ {
		cost[q] = l.Size[top]
	}

	sel := &Selection{}
	chosen := map[int]bool{top: true}
	for pick := 0; pick < k; pick++ {
		bestView, bestBenefit := -1, 0
		for v := 0; v < nViews; v++ {
			if chosen[v] {
				continue
			}
			benefit := 0
			for q := 0; q < nViews; q++ {
				if Subsumes(v, q) && l.Size[v] < cost[q] {
					benefit += cost[q] - l.Size[v]
				}
			}
			if benefit > bestBenefit || (benefit == bestBenefit && bestView >= 0 && v < bestView) {
				if benefit > 0 {
					bestView, bestBenefit = v, benefit
				}
			}
		}
		if bestView < 0 {
			break // no remaining view helps
		}
		chosen[bestView] = true
		sel.Views = append(sel.Views, bestView)
		sel.Benefits = append(sel.Benefits, bestBenefit)
		for q := 0; q < nViews; q++ {
			if Subsumes(bestView, q) && l.Size[bestView] < cost[q] {
				cost[q] = l.Size[bestView]
			}
		}
	}
	for q := 0; q < nViews; q++ {
		sel.TotalCost += cost[q]
	}
	return sel
}

// Dimension is one groupable attribute of the fact table (or an expression
// over it, like year(date)).
type Dimension struct {
	Name string // output column name, e.g. "year"
	Expr string // SQL expression, e.g. "year(date)"
}

// Config drives SelectASTs.
type Config struct {
	Fact string      // fact table name
	Dims []Dimension // lattice dimensions (n ≤ 16; sizes are measured for 2^n cuboids)
	Aggs []string    // aggregate output expressions, e.g. "count(*) as cnt"
	K    int         // number of ASTs to pick
}

// Proposal is one recommended AST.
type Proposal struct {
	Mask    int
	Dims    []string
	Rows    int
	Benefit int
	Def     catalog.ASTDef
}

// SelectASTs measures every cuboid's cardinality on the loaded data, runs the
// greedy selection, and returns CREATE SUMMARY TABLE-ready definitions.
func SelectASTs(cfg Config, cat *catalog.Catalog, store *storage.Store) ([]Proposal, *Lattice, error) {
	n := len(cfg.Dims)
	if n == 0 || n > 12 {
		return nil, nil, fmt.Errorf("advisor: dimension count %d out of range [1,12]", n)
	}
	if _, ok := cat.Table(cfg.Fact); !ok {
		return nil, nil, fmt.Errorf("advisor: fact table %q not found", cfg.Fact)
	}
	engine := exec.NewEngine(store)

	l := &Lattice{N: n, Size: make([]int, 1<<n)}
	for mask := 0; mask < 1<<n; mask++ {
		rows, err := cuboidRows(cfg, mask, cat, engine)
		if err != nil {
			return nil, nil, err
		}
		l.Size[mask] = rows
	}
	// The top view answers from the fact table itself: cost is the fact
	// cardinality, not the top cuboid's size.
	if td, ok := store.Table(cfg.Fact); ok {
		l.Size[l.Top()] = td.Cardinality()
	}

	sel := Greedy(l, cfg.K)
	var out []Proposal
	for i, v := range sel.Views {
		p := Proposal{Mask: v, Rows: l.Size[v], Benefit: sel.Benefits[i]}
		for d := 0; d < n; d++ {
			if v&(1<<d) != 0 {
				p.Dims = append(p.Dims, cfg.Dims[d].Name)
			}
		}
		p.Def = catalog.ASTDef{
			Name: proposalName(cfg, v),
			SQL:  cuboidSQL(cfg, v),
		}
		out = append(out, p)
	}
	return out, l, nil
}

func proposalName(cfg Config, mask int) string {
	if mask == 0 {
		return "ast_" + cfg.Fact + "_total"
	}
	var parts []string
	for d := 0; d < len(cfg.Dims); d++ {
		if mask&(1<<d) != 0 {
			parts = append(parts, cfg.Dims[d].Name)
		}
	}
	return "ast_" + cfg.Fact + "_" + strings.Join(parts, "_")
}

// cuboidSQL emits the defining query for a cuboid.
func cuboidSQL(cfg Config, mask int) string {
	var cols, gb []string
	for d := 0; d < len(cfg.Dims); d++ {
		if mask&(1<<d) != 0 {
			cols = append(cols, fmt.Sprintf("%s as %s", cfg.Dims[d].Expr, cfg.Dims[d].Name))
			gb = append(gb, cfg.Dims[d].Expr)
		}
	}
	cols = append(cols, cfg.Aggs...)
	sql := "select " + strings.Join(cols, ", ") + " from " + cfg.Fact
	if len(gb) > 0 {
		sql += " group by " + strings.Join(gb, ", ")
	}
	return sql
}

// cuboidRows measures a cuboid's cardinality (number of groups).
func cuboidRows(cfg Config, mask int, cat *catalog.Catalog, engine *exec.Engine) (int, error) {
	if mask == 0 {
		return 1, nil
	}
	var gb []string
	for d := 0; d < len(cfg.Dims); d++ {
		if mask&(1<<d) != 0 {
			gb = append(gb, cfg.Dims[d].Expr)
		}
	}
	sql := fmt.Sprintf("select count(*) as c from (select %s as x0", gb[0])
	for i := 1; i < len(gb); i++ {
		sql += fmt.Sprintf(", %s as x%d", gb[i], i)
	}
	sql += fmt.Sprintf(" from %s group by %s) g", cfg.Fact, strings.Join(gb, ", "))
	g, err := qgm.BuildSQL(sql, cat)
	if err != nil {
		return 0, fmt.Errorf("advisor: %w", err)
	}
	res, err := engine.Run(g)
	if err != nil {
		return 0, err
	}
	return int(res.Rows[0][0].Int()), nil
}

// Describe renders a selection for reports: view masks as dimension lists,
// sorted by pick order.
func Describe(cfg Config, sel *Selection, l *Lattice) string {
	var sb strings.Builder
	for i, v := range sel.Views {
		var dims []string
		for d := 0; d < len(cfg.Dims); d++ {
			if v&(1<<d) != 0 {
				dims = append(dims, cfg.Dims[d].Name)
			}
		}
		sort.Strings(dims)
		name := "()"
		if len(dims) > 0 {
			name = "(" + strings.Join(dims, ",") + ")"
		}
		fmt.Fprintf(&sb, "pick %d: %s rows=%d benefit=%d\n", i+1, name, l.Size[v], sel.Benefits[i])
	}
	fmt.Fprintf(&sb, "total answering cost: %d (vs %d unaided)\n",
		sel.TotalCost, l.Size[l.Top()]*(1<<l.N))
	return sb.String()
}

// PopCount is exported for reporting convenience.
func PopCount(mask int) int { return bits.OnesCount(uint(mask)) }
