package advisor_test

import (
	"fmt"

	"repro/internal/advisor"
)

// ExampleGreedy runs the HRU greedy algorithm on the lattice from the
// original Implementing Data Cubes Efficiently example: three dimensions
// (part=bit0, supplier=bit1, customer=bit2) with the published sizes. The
// first pick is ps — it answers four cuboids far cheaper than the 6M-row raw
// data.
func ExampleGreedy() {
	l := &advisor.Lattice{N: 3, Size: make([]int, 8)}
	const (
		p = 1 << 0
		s = 1 << 1
		c = 1 << 2
	)
	l.Size[p|s|c] = 6_000_000
	l.Size[p|c] = 6_000_000
	l.Size[p|s] = 800_000
	l.Size[s|c] = 6_000_000
	l.Size[p] = 200_000
	l.Size[s] = 30_000
	l.Size[c] = 100_000
	l.Size[0] = 1

	sel := advisor.Greedy(l, 2)
	names := map[int]string{p: "p", s: "s", c: "c", p | s: "ps", p | c: "pc", s | c: "sc", p | s | c: "psc", 0: "()"}
	for i, v := range sel.Views {
		fmt.Printf("pick %d: %s benefit=%d\n", i+1, names[v], sel.Benefits[i])
	}
	// Output:
	// pick 1: ps benefit=20800000
	// pick 2: c benefit=6600000
}
