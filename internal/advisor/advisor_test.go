package advisor

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
	"repro/internal/storage"
	"repro/internal/workload"
)

// hruLattice is the worked example from Harinarayan, Rajaraman & Ullman,
// SIGMOD 1996 (Figure 5): dimensions part (p), supplier (s), customer (c)
// with the published view sizes.
func hruLattice() *Lattice {
	l := &Lattice{N: 3, Size: make([]int, 8)}
	const (
		p = 1 << 0
		s = 1 << 1
		c = 1 << 2
	)
	l.Size[p|s|c] = 6_000_000 // psc (top)
	l.Size[p|c] = 6_000_000   // pc
	l.Size[p|s] = 800_000     // ps
	l.Size[s|c] = 6_000_000   // sc
	l.Size[p] = 200_000
	l.Size[s] = 30_000 // paper: 0.01M? uses 30,000 in some versions; benefit ordering is robust
	l.Size[c] = 100_000
	l.Size[0] = 1
	return l
}

// TestGreedyHRUExample: HRU report that with k=2 the greedy picks ps first
// (benefit 4 × 5.2M) then either pc/sc-beating view; the key checkable facts
// are the first pick and monotonically non-increasing benefits.
func TestGreedyHRUExample(t *testing.T) {
	l := hruLattice()
	sel := Greedy(l, 3)
	const ps = 1<<0 | 1<<1
	if len(sel.Views) == 0 || sel.Views[0] != ps {
		t.Fatalf("first greedy pick should be ps (mask %d), got %v", ps, sel.Views)
	}
	// ps answers ps, p, s, (): benefit 4 × (6M − 0.8M).
	if sel.Benefits[0] != 4*(6_000_000-800_000) {
		t.Fatalf("first benefit %d", sel.Benefits[0])
	}
	for i := 1; i < len(sel.Benefits); i++ {
		if sel.Benefits[i] > sel.Benefits[i-1] {
			t.Fatalf("benefits must be non-increasing: %v", sel.Benefits)
		}
	}
}

func TestGreedyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(3)
		l := &Lattice{N: n, Size: make([]int, 1<<n)}
		top := l.Top()
		// Random monotone sizes: subsets are no larger than supersets.
		l.Size[top] = 10000 + rng.Intn(100000)
		for mask := top - 1; mask >= 0; mask-- {
			minSuper := l.Size[top]
			for d := 0; d < n; d++ {
				if mask&(1<<d) == 0 {
					if s := l.Size[mask|1<<d]; s < minSuper {
						minSuper = s
					}
				}
			}
			l.Size[mask] = 1 + rng.Intn(minSuper)
		}

		unaided := l.Size[top] * (1 << n)
		prevCost := unaided
		for k := 0; k <= 1<<n; k++ {
			sel := Greedy(l, k)
			if sel.TotalCost > prevCost {
				t.Fatalf("trial %d: cost increased with k=%d: %d > %d", trial, k, sel.TotalCost, prevCost)
			}
			prevCost = sel.TotalCost
			if len(sel.Views) > k {
				t.Fatalf("picked more than k views")
			}
			for i := 1; i < len(sel.Benefits); i++ {
				if sel.Benefits[i] > sel.Benefits[i-1] {
					t.Fatalf("trial %d: benefits not monotone: %v", trial, sel.Benefits)
				}
			}
		}
		// With unlimited picks, every query should cost its own cuboid size
		// (or cheaper — sizes may tie).
		sel := Greedy(l, 1<<n)
		wantMin := 0
		for q := 0; q < 1<<n; q++ {
			wantMin += l.Size[q]
		}
		if sel.TotalCost > unaided || sel.TotalCost < wantMin {
			t.Fatalf("trial %d: final cost %d outside [%d, %d]", trial, sel.TotalCost, wantMin, unaided)
		}
	}
}

func TestSubsumes(t *testing.T) {
	if !Subsumes(0b111, 0b101) || !Subsumes(0b101, 0b101) || Subsumes(0b001, 0b011) {
		t.Fatal("Subsumes wrong")
	}
}

// TestSelectASTsEndToEnd: measure cuboids on real data, pick ASTs, and verify
// the proposals (a) materialize, (b) actually serve matching queries via the
// rewriter.
func TestSelectASTsEndToEnd(t *testing.T) {
	cat := catalog.New()
	workload.Schema(cat)
	store := storage.NewStore()
	workload.Load(cat, store, workload.StarConfig{NumTrans: 3000, Seed: 21})
	engine := exec.NewEngine(store)

	cfg := Config{
		Fact: "trans",
		Dims: []Dimension{
			{Name: "flid", Expr: "flid"},
			{Name: "faid", Expr: "faid"},
			{Name: "year", Expr: "year(date)"},
		},
		Aggs: []string{"count(*) as cnt", "sum(qty) as sq"},
		K:    2,
	}
	props, lattice, err := SelectASTs(cfg, cat, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) == 0 {
		t.Fatal("no proposals")
	}
	if lattice.Size[lattice.Top()] != 3000 {
		t.Fatalf("top size should be fact cardinality: %d", lattice.Size[lattice.Top()])
	}

	rw := core.NewRewriter(cat, core.Options{})
	served := 0
	for _, p := range props {
		ca, err := rw.CompileAST(p.Def)
		if err != nil {
			t.Fatalf("proposal %s: %v", p.Def.Name, err)
		}
		res, err := engine.Run(ca.Graph)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != p.Rows {
			t.Fatalf("proposal %s: measured %d rows, materialized %d", p.Def.Name, p.Rows, len(res.Rows))
		}
		store.Put(ca.Table, res.Rows)

		// A query grouped on a subset of the proposal's dims must rewrite.
		if len(p.Dims) == 0 {
			continue
		}
		sql := "select " + p.Dims[0] + "expr, count(*) as c from trans group by "
		_ = sql
		var dimExpr string
		for _, d := range cfg.Dims {
			if d.Name == p.Dims[0] {
				dimExpr = d.Expr
			}
		}
		q := "select " + dimExpr + " as d0, count(*) as c from trans group by " + dimExpr
		orig, err := qgm.BuildSQL(q, cat)
		if err != nil {
			t.Fatal(err)
		}
		origRes, err := engine.Run(orig)
		if err != nil {
			t.Fatal(err)
		}
		g, _ := qgm.BuildSQL(q, cat)
		if rw.Rewrite(g, ca) == nil {
			t.Fatalf("proposal %s does not serve its own cuboid query %q", p.Def.Name, q)
		}
		newRes, err := engine.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		if diff := exec.EqualResults(origRes, newRes); diff != "" {
			t.Fatalf("proposal %s wrong: %s", p.Def.Name, diff)
		}
		served++
	}
	if served == 0 {
		t.Fatal("no proposal served a query")
	}
}

func TestCuboidSQLShape(t *testing.T) {
	cfg := Config{
		Fact: "trans",
		Dims: []Dimension{{Name: "flid", Expr: "flid"}, {Name: "year", Expr: "year(date)"}},
		Aggs: []string{"count(*) as cnt"},
	}
	sql := cuboidSQL(cfg, 0b11)
	want := "select flid as flid, year(date) as year, count(*) as cnt from trans group by flid, year(date)"
	if sql != want {
		t.Fatalf("cuboidSQL:\n  got  %s\n  want %s", sql, want)
	}
	if cuboidSQL(cfg, 0) != "select count(*) as cnt from trans" {
		t.Fatalf("grand total cuboid: %s", cuboidSQL(cfg, 0))
	}
}
