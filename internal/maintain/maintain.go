// Package maintain implements Automatic Summary Table maintenance — problem
// (c) of the paper's introduction ("maintaining the ASTs efficiently when the
// base tables are updated", citing Mumick, Quass & Mumick, SIGMOD 1997).
//
// Insert-only incremental maintenance for single-block aggregation ASTs works
// by the classic delta-aggregation scheme: evaluate the AST's definition over
// the inserted rows only (joined against the current dimension tables),
// producing per-group deltas, then merge the deltas into the materialized
// table — COUNT and SUM add, MIN and MAX take extremes (sound for inserts).
// ASTs outside that class (multi-block definitions, DISTINCT aggregates,
// HAVING, or supergroups whose merge would need per-cuboid handling are fine
// actually — grouping sets merge per output row — but expression-valued
// output columns are not) fall back to full recomputation.
package maintain

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/qgm"
	"repro/internal/qgmcheck"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// Strategy describes how an AST is refreshed.
type Strategy uint8

const (
	// Incremental merges per-group deltas.
	Incremental Strategy = iota
	// FullRecompute re-evaluates the definition.
	FullRecompute
)

// String names the strategy.
func (s Strategy) String() string {
	if s == Incremental {
		return "incremental"
	}
	return "full"
}

// colRole classifies one output column of a maintainable AST.
type colRole struct {
	key bool
	agg *qgm.Agg // non-nil for aggregate columns
}

// Plan is the per-AST maintenance plan produced by Analyze.
type Plan struct {
	AST      *core.CompiledAST
	Strategy Strategy
	Reason   string // why full recomputation is needed, when it is
	roles    []colRole
	keyCols  []int
	baseTabs map[string]bool // base tables the definition reads

	// Delete-path analysis (Cohen & Nutt): retirement needs a COUNT(*)
	// tracker, SUM subtracts only over non-nullable input, MIN/MAX force a
	// group-scoped recompute.
	delStrategy  Strategy
	delReason    string
	counterCol   int   // COUNT(*)-equivalent tracker column ordinal; -1 = none
	scopedCols   []int // columns recomputed per affected group after deletes
	keyLowerOrds []int // lower-box output ordinal per key column (scoped recompute)

	// multiRef marks base tables referenced by more than one quantifier in
	// the definition: the single-table overlay delta rule is unsound there
	// (Δ(R⋈R) ≠ ΔR⋈ΔR), for inserts and deletes alike.
	multiRef map[string]bool
}

// Name returns the AST's registered name.
func (p *Plan) Name() string { return p.AST.Def.Name }

// ReadsTable reports whether the definition reads the base table.
func (p *Plan) ReadsTable(table string) bool { return p.baseTabs[strings.ToLower(table)] }

// InsertRouting reports how an insert into table refreshes this AST and, for
// full recomputation, why.
func (p *Plan) InsertRouting(table string) (Strategy, string) {
	if p.Strategy != Incremental {
		return FullRecompute, p.Reason
	}
	if p.multiRef[strings.ToLower(table)] {
		return FullRecompute, "table referenced more than once in the definition: single-table delta is unsound for self-joins"
	}
	return Incremental, ""
}

// DeleteRouting reports how deleting (or updating, which is a delete plus an
// insert) rows of table refreshes this AST.
func (p *Plan) DeleteRouting(table string) (Strategy, string) {
	if s, reason := p.InsertRouting(table); s != Incremental {
		return FullRecompute, reason
	}
	if p.delStrategy != Incremental {
		return FullRecompute, p.delReason
	}
	return Incremental, ""
}

// Maintainer refreshes materialized ASTs after base-table inserts. Refresh
// failures are per-AST, never fatal to the maintenance pass: a failed
// incremental refresh falls back to full recomputation, and a failed full
// recomputation marks the AST stale in the attached catalog (counting toward
// its quarantine circuit breaker) while the remaining ASTs still refresh.
type Maintainer struct {
	store  *storage.Store
	engine *exec.Engine
	cat    *catalog.Catalog // optional; enables freshness/quarantine tracking
	obsv   *obs.Observer    // nil = observability disabled
}

// New returns a maintainer over the store.
func New(store *storage.Store) *Maintainer {
	return &Maintainer{store: store, engine: exec.NewEngine(store)}
}

// WithCatalog attaches the catalog whose per-AST freshness state this
// maintainer drives: successful refreshes bump the AST's epoch and clear
// staleness, failures mark it stale and feed the quarantine breaker. It
// returns m for chaining.
func (m *Maintainer) WithCatalog(cat *catalog.Catalog) *Maintainer {
	m.cat = cat
	return m
}

// WithObserver attaches an observer recording refresh counters, durations,
// and failure events; nil detaches. The engine the maintainer runs full
// recomputes on reports to the same observer. It returns m for chaining.
func (m *Maintainer) WithObserver(o *obs.Observer) *Maintainer {
	m.obsv = o
	m.engine.SetObserver(o)
	return m
}

func (m *Maintainer) markFresh(name string) {
	if m.cat != nil {
		m.cat.MarkFresh(name)
	}
}

func (m *Maintainer) markStale(name string) {
	if m.cat != nil {
		m.cat.MarkStale(name)
	}
}

func (m *Maintainer) recordFailure(name string) {
	if m.cat != nil {
		m.cat.RecordRefreshFailure(name)
	}
}

// staleOrQuarantined reports whether the catalog says the AST's current
// materialization cannot be trusted. Merging deltas into untrusted contents
// would carry the corruption forward (and markFresh would then resurrect the
// AST with wrong data), so recovery must always be a full recompute.
func (m *Maintainer) staleOrQuarantined(name string) bool {
	if m.cat == nil {
		return false
	}
	st := m.cat.Status(name)
	return st.Stale || st.Quarantined
}

// Analyze classifies an AST as incrementally maintainable or not and builds
// its plan.
func (m *Maintainer) Analyze(ast *core.CompiledAST) *Plan {
	p := &Plan{AST: ast, Strategy: FullRecompute, delStrategy: FullRecompute,
		counterCol: -1, baseTabs: map[string]bool{}, multiRef: map[string]bool{}}
	p.delReason = "definition not incrementally maintainable"
	g := ast.Graph
	refs := map[string]int{}
	for _, b := range g.Boxes() {
		if b.Kind == qgm.BaseTableBox {
			p.baseTabs[strings.ToLower(b.Table.Name)] = true
		}
		for _, q := range b.Quantifiers {
			if q.Box.Kind == qgm.BaseTableBox {
				refs[strings.ToLower(q.Box.Table.Name)]++
			}
		}
	}
	for name, n := range refs {
		if n > 1 {
			p.multiRef[name] = true
		}
	}

	// Canonical single-block shape: top SELECT over GROUP BY over SELECT over
	// base tables only, or a single SELECT over base tables (no aggregation).
	root := g.Root
	if root.Kind != qgm.SelectBox {
		p.Reason = "root is not a SELECT box"
		return p
	}
	if root.Distinct {
		p.Reason = "DISTINCT output cannot be merged incrementally"
		return p
	}
	var gb *qgm.Box
	for _, q := range root.Quantifiers {
		if q.Kind == qgm.Scalar {
			p.Reason = "scalar subquery in definition"
			return p
		}
		if q.Box.Kind == qgm.GroupByBox {
			if gb != nil {
				p.Reason = "multiple GROUP BY children"
				return p
			}
			gb = q.Box
		} else if q.Box.Kind != qgm.BaseTableBox {
			p.Reason = "nested block in definition"
			return p
		}
	}
	if gb == nil {
		p.Reason = "no aggregation (append-only refresh would need dedup tracking)"
		return p
	}
	if len(root.Quantifiers) != 1 {
		p.Reason = "join above the GROUP BY"
		return p
	}
	if len(root.Preds) > 0 {
		p.Reason = "HAVING filters groups; deltas may resurrect filtered groups"
		return p
	}
	lower := gb.Child()
	if lower.Kind != qgm.SelectBox {
		p.Reason = "non-SELECT below GROUP BY"
		return p
	}
	for _, q := range lower.Quantifiers {
		if q.Kind == qgm.Scalar {
			p.Reason = "scalar subquery in definition"
			return p
		}
		if q.Box.Kind != qgm.BaseTableBox {
			p.Reason = "nested block in definition"
			return p
		}
	}
	// Supergroup (grouping sets / rollup / cube) definitions merge per output
	// row: the delta evaluation NULL-pads each cuboid the same way the
	// materialized table does, so the full grouping-key tuple (with NULL as a
	// distinct key value) aligns delta rows with their cuboid's rows. This
	// requires the grouped-out NULLs to be unambiguous, i.e. non-nullable
	// underlying grouping expressions — the same assumption §5 slicing makes.
	if !gb.IsSimpleGroupBy() {
		for _, col := range gb.GroupBy {
			cr := gb.Cols[col].Expr.(*qgm.ColRef)
			if _, nullable := qgm.InferType(cr.Q.Box.Cols[cr.Col].Expr); nullable {
				p.Reason = "supergroup over a nullable grouping expression: NULL padding is ambiguous"
				return p
			}
		}
	}

	// Every output column must be a plain reference to a GROUP BY output.
	p.roles = make([]colRole, len(root.Cols))
	for i, c := range root.Cols {
		cr, ok := c.Expr.(*qgm.ColRef)
		if !ok || cr.Q.Box != gb {
			p.Reason = fmt.Sprintf("output column %q is computed, not a plain reference", c.Name)
			return p
		}
		if gb.IsGroupCol(cr.Col) {
			p.roles[i] = colRole{key: true}
			p.keyCols = append(p.keyCols, i)
			continue
		}
		agg := gb.Cols[cr.Col].Expr.(*qgm.Agg)
		if agg.Distinct {
			p.Reason = "DISTINCT aggregate cannot be merged incrementally"
			return p
		}
		switch agg.Op {
		case "count", "sum", "min", "max":
			p.roles[i] = colRole{agg: agg}
		default:
			p.Reason = fmt.Sprintf("aggregate %q not mergeable", agg.Op)
			return p
		}
	}
	p.Strategy = Incremental
	p.analyzeDelete(gb)
	return p
}

// analyzeDelete classifies the plan's delete path. Retirement requires a
// COUNT(*)-equivalent tracker column (COUNT of a non-nullable expression
// counts exactly the group's rows); with one, COUNT columns and SUMs of
// non-nullable input subtract exactly, while MIN/MAX — and SUM over nullable
// input, whose subtraction cannot reproduce an all-remaining-NULL group —
// are recomputed scoped to the affected groups.
func (p *Plan) analyzeDelete(gb *qgm.Box) {
	nonNullableArg := func(a *qgm.Agg) bool {
		if a.Star {
			return true
		}
		_, nullable := qgm.InferType(a.Arg)
		return !nullable
	}
	for i, role := range p.roles {
		if role.key {
			continue
		}
		switch role.agg.Op {
		case "count":
			if p.counterCol < 0 && nonNullableArg(role.agg) {
				p.counterCol = i
			}
		case "sum":
			if !nonNullableArg(role.agg) {
				p.scopedCols = append(p.scopedCols, i)
			}
		case "min", "max":
			p.scopedCols = append(p.scopedCols, i)
		}
	}
	if p.counterCol < 0 {
		p.delReason = "no COUNT(*) tracker column to retire emptied groups"
		return
	}
	if len(p.scopedCols) > 0 {
		if !gb.IsSimpleGroupBy() {
			p.delReason = "supergroup with MIN/MAX (or nullable SUM): recompute cannot be scoped to cuboid groups"
			return
		}
		// A scoped recompute injects per-group key equalities into the lower
		// box, so it needs each grouping column's lower-box output ordinal.
		for _, kc := range p.keyCols {
			cr := p.AST.Graph.Root.Cols[kc].Expr.(*qgm.ColRef) // shape validated above
			gcr, ok := gb.Cols[cr.Col].Expr.(*qgm.ColRef)
			if !ok {
				p.delReason = "grouping column is not a plain lower-box reference"
				return
			}
			p.keyLowerOrds = append(p.keyLowerOrds, gcr.Col)
		}
	}
	p.delStrategy = Incremental
	p.delReason = ""
}

// deltaProjection exposes the plan's derived ordinal tables for qgmcheck's
// delta-plan audit.
func (p *Plan) deltaProjection() qgmcheck.DeltaPlan {
	return qgmcheck.DeltaPlan{
		Graph:        p.AST.Graph,
		KeyCols:      p.keyCols,
		CounterCol:   p.counterCol,
		ScopedCols:   p.scopedCols,
		KeyLowerOrds: p.keyLowerOrds,
	}
}

// auditPlan gates an incremental refresh: a plan whose ordinal tables
// disagree with its definition graph would merge the wrong columns, so any
// violation turns into an error and the caller falls back to full
// recomputation (which does not consult the ordinals).
func (m *Maintainer) auditPlan(p *Plan) error {
	if vs := qgmcheck.CheckDeltaPlan(p.deltaProjection()); len(vs) > 0 {
		m.obsv.Add("maintain.plan.audit_failures", 1)
		return fmt.Errorf("maintain: plan for %s failed verification: %w", p.Name(), qgmcheck.AsError(vs))
	}
	return nil
}

// Stats reports one refresh.
type Stats struct {
	AST       string
	Strategy  Strategy
	DeltaRows int // AST-level delta groups (incremental) or full rows
	Merged    int // existing groups updated
	Added     int // new groups appended
	Retired   int // groups removed because their tracker count hit zero
	Scoped    int // groups restored by a group-scoped recompute (MIN/MAX)
	Duration  time.Duration
	Err       error // non-nil when this AST's refresh failed (it is now stale)
}

// ApplyInsert appends rows to a base table and refreshes every AST whose
// definition reads it (incrementally where the plan allows). Plans for ASTs
// not reading the table are skipped with zero-cost stats.
//
// Failures degrade per AST instead of aborting: a failed incremental refresh
// falls back to full recomputation, and a failed full recomputation records
// the error in that AST's Stats entry, marks it stale in the catalog, and
// continues with the remaining ASTs. The returned error joins the per-AST
// failures; the Stats slice is always complete.
//
// An AST whose catalog status is stale or quarantined is refreshed by full
// recomputation regardless of its plan: its materialization is missing
// earlier deltas, so only a full recompute — never an incremental merge —
// may restore it to fresh.
func (m *Maintainer) ApplyInsert(plans []*Plan, table string, rows [][]sqltypes.Value) ([]Stats, error) {
	table = strings.ToLower(table)
	td, ok := m.store.Table(table)
	if !ok {
		return nil, fmt.Errorf("maintain: table %q not loaded", table)
	}

	var out []Stats
	for _, p := range plans {
		if !p.baseTabs[table] {
			continue
		}
		start := time.Now()
		var st Stats
		var err error
		// A stale or quarantined materialization is missing earlier deltas;
		// merging this batch into it would produce wrong contents that the
		// success path below would then mark fresh. Recovery is always a full
		// recompute. InsertRouting additionally forces self-joined tables to
		// a full recompute (the overlay delta would miss ΔR⋈R and R⋈ΔR).
		strat, _ := p.InsertRouting(table)
		incremental := strat == Incremental && !m.staleOrQuarantined(p.AST.Def.Name)
		if incremental {
			st, err = m.incrementalRefresh(p, table, rows)
		}
		if !incremental || err != nil {
			// Full fallback runs after the base insert below; mark it.
			st = Stats{AST: p.AST.Def.Name, Strategy: FullRecompute}
		}
		st.Duration = time.Since(start)
		out = append(out, st)
	}

	// Apply the base insert.
	for ri, r := range rows {
		if err := td.Insert(r); err != nil {
			// The base table took only part of the batch while incremental
			// merges above already saw all of it: every affected AST is now
			// ahead of the base tables. Mark them all stale.
			for i := range out {
				m.markStale(out[i].AST)
				out[i].Err = fmt.Errorf("maintain: base insert aborted at row %d: %w", ri, err)
			}
			return out, err
		}
	}

	// Full recomputations see the post-insert state; each failure is
	// recorded per AST and the loop continues.
	var errs []error
	for i := range out {
		if out[i].Strategy == FullRecompute {
			p := findPlan(plans, out[i].AST)
			st, err := m.RefreshFull(p)
			st.Duration += out[i].Duration
			out[i] = st
			if err != nil {
				errs = append(errs, st.Err)
			}
		} else {
			// Incremental refresh succeeded: the materialization reflects
			// the post-insert state.
			m.markFresh(out[i].AST)
			m.obsv.Add("maintain.refresh.incremental", 1)
			m.obsv.Add("maintain.delta.rows", int64(out[i].DeltaRows))
			m.obsv.Observe("maintain.refresh.incremental", out[i].Duration)
		}
	}
	return out, errors.Join(errs...)
}

// RefreshFull recomputes one AST from its definition over the current base
// tables. On success the AST's catalog status is marked fresh — a successful
// full recompute is the recovery path out of staleness and quarantine. On
// failure the AST is marked stale and the failure counts toward quarantine.
func (m *Maintainer) RefreshFull(p *Plan) (Stats, error) {
	start := time.Now()
	st := Stats{AST: p.AST.Def.Name, Strategy: FullRecompute}
	res, err := m.evalDefinition(p, "maintain.full:"+p.AST.Def.Name)
	if err != nil {
		st.Err = fmt.Errorf("maintain: full refresh of %s: %w", p.AST.Def.Name, err)
		st.Duration = time.Since(start)
		m.recordFailure(p.AST.Def.Name)
		m.obsv.Add("maintain.refresh.failures", 1)
		if m.obsv.Enabled() {
			m.obsv.Emit("maintain.refresh_failure", st.Err.Error())
		}
		return st, st.Err
	}
	m.store.Put(p.AST.Table, res.Rows)
	st.DeltaRows = len(res.Rows)
	st.Duration = time.Since(start)
	m.markFresh(p.AST.Def.Name)
	m.obsv.Add("maintain.refresh.full", 1)
	m.obsv.Observe("maintain.refresh.full", st.Duration)
	return st, nil
}

// evalDefinition runs an AST's defining query with a fault-injection site and
// panic recovery, so one broken refresh cannot take down the maintenance
// pass.
func (m *Maintainer) evalDefinition(p *Plan, site string) (res *exec.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("refresh panicked: %v", r)
		}
	}()
	if err := faultinject.Hit(site); err != nil {
		return nil, err
	}
	return m.engine.Run(p.AST.Graph)
}

func findPlan(plans []*Plan, name string) *Plan {
	for _, p := range plans {
		if p.AST.Def.Name == name {
			return p
		}
	}
	return nil
}

// incrementalRefresh computes the delta aggregation over the inserted rows
// (before they are added to the base table) and merges it into the
// materialized AST. A panic anywhere inside (including the engine) is
// recovered into an error; ApplyInsert then falls back to full
// recomputation.
//
// The refresh is reader-safe: the delta is evaluated on an overlay store (the
// inserted table replaced by just the delta rows, nothing mutated), and the
// merge is copy-on-write — a new row set is built and swapped in with Put, so
// queries scanning the AST concurrently keep a consistent pre-refresh
// snapshot.
func (m *Maintainer) incrementalRefresh(p *Plan, table string, rows [][]sqltypes.Value) (st Stats, err error) {
	st = Stats{AST: p.AST.Def.Name, Strategy: Incremental}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("maintain: incremental refresh panicked: %v", r)
		}
	}()
	if err := faultinject.Hit("maintain.incremental:" + p.AST.Def.Name); err != nil {
		return st, err
	}
	if err := m.auditPlan(p); err != nil {
		return st, err
	}

	// Evaluate the definition with the inserted table replaced by just the
	// delta rows; other tables keep their current contents. For insert-only
	// deltas into one table this yields exactly Δ(join) under the usual delta
	// rule.
	td := m.store.MustTable(table)
	scratch := m.store.Overlay(table, td.Meta, rows)
	delta, err := exec.NewEngine(scratch).Run(p.AST.Graph)
	if err != nil {
		return st, fmt.Errorf("maintain: delta eval: %w", err)
	}
	st.DeltaRows = len(delta.Rows)
	if len(delta.Rows) == 0 {
		return st, nil
	}

	mat, ok := m.store.Table(p.AST.Def.Name)
	if !ok {
		return st, fmt.Errorf("maintain: AST %q not materialized", p.AST.Def.Name)
	}

	// Index existing groups by key columns.
	snap := mat.Snapshot()
	merged := make([][]sqltypes.Value, len(snap), len(snap)+len(delta.Rows))
	copy(merged, snap)
	index := make(map[string]int, len(merged))
	key := func(r []sqltypes.Value) string {
		var sb strings.Builder
		for _, k := range p.keyCols {
			sb.WriteString(r[k].GroupKey())
			sb.WriteByte(0)
		}
		return sb.String()
	}
	for i, r := range merged {
		index[key(r)] = i
	}

	for _, d := range delta.Rows {
		if i, ok := index[key(d)]; ok {
			// Copy-on-write: never mutate a row a concurrent reader may hold.
			nr := append([]sqltypes.Value(nil), merged[i]...)
			if err := mergeRow(p, nr, d); err != nil {
				return st, err
			}
			merged[i] = nr
			st.Merged++
		} else {
			nr := append([]sqltypes.Value(nil), d...)
			merged = append(merged, nr)
			index[key(nr)] = len(merged) - 1
			st.Added++
		}
	}
	m.store.Put(mat.Meta, merged)
	return st, nil
}

// mergeRow folds a delta group into an existing group in place.
func mergeRow(p *Plan, dst, delta []sqltypes.Value) error {
	for i, role := range p.roles {
		if role.key {
			continue
		}
		switch role.agg.Op {
		case "count", "sum":
			if delta[i].IsNull() {
				continue // SUM delta over all-NULL inputs adds nothing
			}
			if dst[i].IsNull() {
				dst[i] = delta[i]
				continue
			}
			v, err := sqltypes.Add(dst[i], delta[i])
			if err != nil {
				return fmt.Errorf("maintain: merging column %d: %w", i, err)
			}
			dst[i] = v
		case "min":
			dst[i] = extreme(dst[i], delta[i], true)
		case "max":
			dst[i] = extreme(dst[i], delta[i], false)
		}
	}
	return nil
}

func extreme(a, b sqltypes.Value, min bool) sqltypes.Value {
	if a.IsNull() {
		return b
	}
	if b.IsNull() {
		return a
	}
	c, err := sqltypes.Compare(b, a)
	if err != nil {
		return a
	}
	if (min && c < 0) || (!min && c > 0) {
		return b
	}
	return a
}
