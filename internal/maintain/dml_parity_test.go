// Randomized DML parity suite. It lives in an external test package so it can
// deploy the paper's full AST portfolio (internal/bench imports astdb, which
// imports maintain — the white-box package would cycle) and drives a mixed
// insert/delete/update sequence over the star workload, proving after every
// single operation that each maintained summary table — whatever maintenance
// route it took — equals a from-scratch evaluation of its definition and is
// marked fresh.
package maintain_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/maintain"
	"repro/internal/parser"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/workload"
)

type parityEnv struct {
	cat    *catalog.Catalog
	store  *storage.Store
	engine *exec.Engine
	m      *maintain.Maintainer
	asts   []*core.CompiledAST
	plans  []*maintain.Plan
}

func newParityEnv(t *testing.T, n int) *parityEnv {
	t.Helper()
	cat := catalog.New()
	workload.Schema(cat)
	store := storage.NewStore()
	workload.Load(cat, store, workload.StarConfig{NumTrans: n, Seed: 13})
	e := &parityEnv{
		cat:    cat,
		store:  store,
		engine: exec.NewEngine(store),
		m:      maintain.New(store).WithCatalog(cat),
	}
	rw := core.NewRewriter(cat, core.Options{})

	var defs []catalog.ASTDef
	names := make([]string, 0, len(bench.ASTDefs))
	for name := range bench.ASTDefs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		defs = append(defs, catalog.ASTDef{Name: name, SQL: bench.ASTDefs[name]})
	}
	for _, ds := range workload.DSASTs {
		defs = append(defs, catalog.ASTDef{Name: ds.Name, SQL: ds.SQL})
	}
	for _, def := range defs {
		ca, err := rw.CompileAST(def)
		if err != nil {
			t.Fatalf("compile %s: %v", def.Name, err)
		}
		res, err := e.engine.Run(ca.Graph)
		if err != nil {
			t.Fatalf("materialize %s: %v", def.Name, err)
		}
		store.Put(ca.Table, res.Rows)
		cat.MarkFresh(def.Name)
		e.asts = append(e.asts, ca)
		e.plans = append(e.plans, e.m.Analyze(ca))
	}
	return e
}

// verifyAll asserts the invariant the whole PR is about: after a successful
// DML, every AST is fresh and byte-equal (modulo float tolerance) to a
// from-scratch recomputation of its definition.
func (e *parityEnv) verifyAll(t *testing.T, after string) {
	t.Helper()
	for _, ca := range e.asts {
		want, err := e.engine.Run(ca.Graph)
		if err != nil {
			t.Fatalf("after %q: recompute %s: %v", after, ca.Def.Name, err)
		}
		got := e.store.MustTable(ca.Def.Name)
		if diff := exec.EqualResults(want, &exec.Result{Cols: want.Cols, Rows: got.Rows()}); diff != "" {
			t.Fatalf("after %q: %s diverged from recomputation: %s", after, ca.Def.Name, diff)
		}
		if st := e.cat.Status(ca.Def.Name); st.Stale || st.Quarantined {
			t.Fatalf("after %q: %s not fresh: %+v", after, ca.Def.Name, st)
		}
	}
}

func (e *parityEnv) delete(t *testing.T, sql string) {
	t.Helper()
	stmt, err := parser.ParseStatement(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	dml, err := qgm.BuildDelete(stmt.(*parser.DeleteStmt), e.cat)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	if _, _, err := e.m.ApplyDelete(e.plans, dml); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

func (e *parityEnv) update(t *testing.T, sql string) {
	t.Helper()
	stmt, err := parser.ParseStatement(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	dml, err := qgm.BuildUpdate(stmt.(*parser.UpdateStmt), e.cat)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	if _, _, err := e.m.ApplyUpdate(e.plans, dml); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

func (e *parityEnv) insertTrans(t *testing.T, rng *rand.Rand, n int) {
	t.Helper()
	nextTid := int64(e.store.MustTable("trans").Cardinality() + 1000000)
	accts := e.store.MustTable("acct").Cardinality()
	locs := e.store.MustTable("loc").Cardinality()
	pgs := e.store.MustTable("pgroup").Cardinality()
	var rows [][]sqltypes.Value
	for i := 0; i < n; i++ {
		rows = append(rows, []sqltypes.Value{
			sqltypes.NewInt(nextTid + int64(i)),
			sqltypes.NewInt(int64(1 + rng.Intn(accts))),
			sqltypes.NewInt(int64(1 + rng.Intn(pgs))),
			sqltypes.NewInt(int64(1 + rng.Intn(locs))),
			sqltypes.NewDate(1990+rng.Intn(3), 1+rng.Intn(12), 1+rng.Intn(28)),
			sqltypes.NewInt(int64(1 + rng.Intn(5))),
			sqltypes.NewFloat(float64(1+rng.Intn(5000)) / 10),
			sqltypes.NewFloat(float64(rng.Intn(30)) / 100),
		})
	}
	if _, err := e.m.ApplyInsert(e.plans, "trans", rows); err != nil {
		t.Fatal(err)
	}
}

// TestMixedDMLSequenceParity drives the full paper portfolio (ast1–ast11 plus
// astbad, and the TPC-D style DS AST set) through a seeded random mix of
// inserts, deletes, and updates — group-emptying deletes, group-migrating
// updates, aggregate-input updates, and dimension-table updates included —
// asserting full parity and freshness after every operation.
func TestMixedDMLSequenceParity(t *testing.T) {
	e := newParityEnv(t, 1500)
	e.verifyAll(t, "initial materialization")
	rng := rand.New(rand.NewSource(42))

	ops := []func(r *rand.Rand) (string, bool){
		func(r *rand.Rand) (string, bool) {
			return fmt.Sprintf("delete from trans where qty = %d and flid <= %d", 1+r.Intn(5), 20+r.Intn(60)), false
		},
		func(r *rand.Rand) (string, bool) {
			// Often empties every group of one product: retirement.
			return fmt.Sprintf("delete from trans where fpgid = %d", 1+r.Intn(20)), false
		},
		func(r *rand.Rand) (string, bool) {
			return fmt.Sprintf("delete from trans where disc > 0.2 and faid <= %d", 100+r.Intn(400)), false
		},
		func(r *rand.Rand) (string, bool) {
			// Group migration: rows leave one flid group and join another.
			return fmt.Sprintf("update trans set flid = %d where flid = %d", 1+r.Intn(50), 1+r.Intn(50)), true
		},
		func(r *rand.Rand) (string, bool) {
			return fmt.Sprintf("update trans set qty = qty + 1 where fpgid = %d", 1+r.Intn(20)), true
		},
		func(r *rand.Rand) (string, bool) {
			return fmt.Sprintf("update trans set price = price * 1.1 where qty = %d", 1+r.Intn(5)), true
		},
		func(r *rand.Rand) (string, bool) {
			// Dimension update: migrates state/country groups of join ASTs.
			return fmt.Sprintf("update loc set state = 'TX', country = 'USA' where lid = %d", 1+r.Intn(200)), true
		},
	}

	for i := 0; i < 14; i++ {
		var desc string
		switch {
		case i%5 == 4:
			e.insertTrans(t, rng, 40+rng.Intn(80))
			desc = fmt.Sprintf("insert batch %d", i)
		default:
			sql, isUpdate := ops[rng.Intn(len(ops))](rng)
			if isUpdate {
				e.update(t, sql)
			} else {
				e.delete(t, sql)
			}
			desc = sql
		}
		e.verifyAll(t, desc)
	}

	// The portfolio exercised both routes; sanity-check the classification
	// spread so a regression in Analyze cannot silently turn everything full.
	var inc int
	for _, p := range e.plans {
		if s, _ := p.DeleteRouting("trans"); s == maintain.Incremental {
			inc++
		}
	}
	if inc == 0 {
		t.Fatal("no AST classified delete-incremental; classification regressed")
	}
}

// TestDeleteEverythingParity is the degenerate endpoint: wiping the fact
// table must retire every group of every maintainable AST and leave full
// parity for the rest.
func TestDeleteEverythingParity(t *testing.T) {
	e := newParityEnv(t, 600)
	e.delete(t, "delete from trans")
	if n := e.store.MustTable("trans").Cardinality(); n != 0 {
		t.Fatalf("%d trans rows survived", n)
	}
	e.verifyAll(t, "delete from trans")
	for _, ca := range e.asts {
		if !readsTrans(ca) {
			continue
		}
		if n := e.store.MustTable(ca.Def.Name).Cardinality(); n != 0 {
			t.Errorf("%s still holds %d rows after the fact table emptied", ca.Def.Name, n)
		}
	}
}

func readsTrans(ca *core.CompiledAST) bool {
	return strings.Contains(strings.ToLower(ca.Def.SQL), "trans")
}
