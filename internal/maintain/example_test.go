package maintain_test

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/maintain"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// Example shows the incremental refresh cycle: a summary table absorbs an
// insert batch by merging per-group deltas instead of recomputing.
func Example() {
	cat := catalog.New()
	cat.MustAddTable(&catalog.Table{
		Name: "events",
		Columns: []catalog.Column{
			{Name: "kind", Type: sqltypes.KindString},
			{Name: "n", Type: sqltypes.KindInt},
		},
	})
	store := storage.NewStore()
	meta, _ := cat.Table("events")
	td := store.Create(meta)
	td.MustInsert(sqltypes.NewString("a"), sqltypes.NewInt(1))
	td.MustInsert(sqltypes.NewString("a"), sqltypes.NewInt(2))
	td.MustInsert(sqltypes.NewString("b"), sqltypes.NewInt(5))
	engine := exec.NewEngine(store)

	rw := core.NewRewriter(cat, core.Options{})
	ast, err := rw.CompileAST(catalog.ASTDef{Name: "per_kind", SQL: `
		select kind, count(*) as cnt, sum(n) as total from events group by kind`})
	if err != nil {
		panic(err)
	}
	rows, err := engine.Run(ast.Graph)
	if err != nil {
		panic(err)
	}
	store.Put(ast.Table, rows.Rows)

	m := maintain.New(store)
	plan := m.Analyze(ast)
	fmt.Println("strategy:", plan.Strategy)

	stats, err := m.ApplyInsert([]*maintain.Plan{plan}, "events", [][]sqltypes.Value{
		{sqltypes.NewString("a"), sqltypes.NewInt(10)},
		{sqltypes.NewString("c"), sqltypes.NewInt(7)},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("delta groups: %d, merged: %d, added: %d\n",
		stats[0].DeltaRows, stats[0].Merged, stats[0].Added)

	mat := store.MustTable("per_kind")
	matRows := append([][]sqltypes.Value(nil), mat.Rows()...)
	exec.SortRows(matRows)
	for _, r := range matRows {
		fmt.Printf("%s cnt=%s total=%s\n", r[0], r[1], r[2])
	}
	// Output:
	// strategy: incremental
	// delta groups: 2, merged: 1, added: 1
	// a cnt=3 total=13
	// b cnt=1 total=5
	// c cnt=1 total=7
}
