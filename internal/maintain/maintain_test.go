package maintain

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/workload"
)

type fixture struct {
	cat    *catalog.Catalog
	store  *storage.Store
	engine *exec.Engine
	rw     *core.Rewriter
	m      *Maintainer
}

func newFixture(t testing.TB, n int) *fixture {
	t.Helper()
	cat := catalog.New()
	workload.Schema(cat)
	store := storage.NewStore()
	workload.Load(cat, store, workload.StarConfig{NumTrans: n, Seed: 13})
	return &fixture{
		cat:    cat,
		store:  store,
		engine: exec.NewEngine(store),
		rw:     core.NewRewriter(cat, core.Options{}),
		m:      New(store),
	}
}

func (f *fixture) compile(t testing.TB, name, sql string) *core.CompiledAST {
	t.Helper()
	ca, err := f.rw.CompileAST(catalog.ASTDef{Name: name, SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.engine.Run(ca.Graph)
	if err != nil {
		t.Fatal(err)
	}
	f.store.Put(ca.Table, res.Rows)
	return ca
}

// randTransRows builds RI-consistent trans rows.
func randTransRows(f *fixture, rng *rand.Rand, n int) [][]sqltypes.Value {
	nextTid := int64(f.store.MustTable("trans").Cardinality() + 1000000)
	accts := f.store.MustTable("acct").Cardinality()
	locs := f.store.MustTable("loc").Cardinality()
	pgs := f.store.MustTable("pgroup").Cardinality()
	var out [][]sqltypes.Value
	for i := 0; i < n; i++ {
		out = append(out, []sqltypes.Value{
			sqltypes.NewInt(nextTid + int64(i)),
			sqltypes.NewInt(int64(1 + rng.Intn(accts))),
			sqltypes.NewInt(int64(1 + rng.Intn(pgs))),
			sqltypes.NewInt(int64(1 + rng.Intn(locs))),
			sqltypes.NewDate(1990+rng.Intn(3), 1+rng.Intn(12), 1+rng.Intn(28)),
			sqltypes.NewInt(int64(1 + rng.Intn(5))),
			sqltypes.NewFloat(float64(1+rng.Intn(5000)) / 10),
			sqltypes.NewFloat(float64(rng.Intn(30)) / 100),
		})
	}
	return out
}

// checkAgainstRecompute compares the maintained table with a fresh
// recomputation of the definition.
func checkAgainstRecompute(t *testing.T, f *fixture, ca *core.CompiledAST) {
	t.Helper()
	want, err := f.engine.Run(ca.Graph)
	if err != nil {
		t.Fatal(err)
	}
	got := f.store.MustTable(ca.Def.Name)
	gotRes := &exec.Result{Cols: want.Cols, Rows: got.Rows()}
	if diff := exec.EqualResults(want, gotRes); diff != "" {
		t.Fatalf("maintained %s diverged from recomputation: %s", ca.Def.Name, diff)
	}
}

func TestAnalyzeClassification(t *testing.T) {
	f := newFixture(t, 500)
	cases := []struct {
		sql  string
		want Strategy
	}{
		{`select flid, year(date) as y, count(*) as c, sum(qty) as s, min(price) as mn, max(price) as mx
		  from trans group by flid, year(date)`, Incremental},
		{`select flid, year(date) as y, count(*) as c
		  from trans, loc where flid = lid and country = 'USA'
		  group by flid, year(date)`, Incremental},
		{`select flid, count(distinct faid) as c from trans group by flid`, FullRecompute},
		{`select flid, count(*) as c from trans group by flid having count(*) > 2`, FullRecompute},
		{`select tid, qty from trans`, FullRecompute},
		{`select flid, count(*) * 2 as c2 from trans group by flid`, FullRecompute},
		{`select y, count(*) as c from (select year(date) as y, faid from trans) d group by y`, FullRecompute},
		{`select flid, year(date) as y, count(*) as c from trans group by rollup(flid, year(date))`, Incremental},
		{`select flid, avg(qty) as a from trans group by flid`, FullRecompute},
	}
	for i, c := range cases {
		ca := f.compile(t, fmt.Sprintf("ma%d", i), c.sql)
		p := f.m.Analyze(ca)
		if p.Strategy != c.want {
			t.Errorf("case %d (%s): strategy %v (reason %q), want %v", i, c.sql, p.Strategy, p.Reason, c.want)
		}
	}
}

func TestIncrementalMatchesRecompute(t *testing.T) {
	f := newFixture(t, 2000)
	ca := f.compile(t, "inc1", `
		select flid, year(date) as y, count(*) as c, sum(qty) as s,
		       min(price) as mn, max(price) as mx, count(qty) as cq
		from trans group by flid, year(date)`)
	plan := f.m.Analyze(ca)
	if plan.Strategy != Incremental {
		t.Fatalf("not incremental: %s", plan.Reason)
	}
	rng := rand.New(rand.NewSource(2))
	for batch := 0; batch < 5; batch++ {
		rows := randTransRows(f, rng, 50+rng.Intn(100))
		stats, err := f.m.ApplyInsert([]*Plan{plan}, "trans", rows)
		if err != nil {
			t.Fatal(err)
		}
		if len(stats) != 1 || stats[0].Strategy != Incremental {
			t.Fatalf("stats: %+v", stats)
		}
		checkAgainstRecompute(t, f, ca)
	}
}

func TestIncrementalWithJoin(t *testing.T) {
	f := newFixture(t, 2000)
	ca := f.compile(t, "incjoin", `
		select state, year(date) as y, count(*) as c, sum(qty * price) as rev
		from trans, loc where flid = lid
		group by state, year(date)`)
	plan := f.m.Analyze(ca)
	if plan.Strategy != Incremental {
		t.Fatalf("join AST should be incremental: %s", plan.Reason)
	}
	rng := rand.New(rand.NewSource(3))
	for batch := 0; batch < 3; batch++ {
		rows := randTransRows(f, rng, 80)
		if _, err := f.m.ApplyInsert([]*Plan{plan}, "trans", rows); err != nil {
			t.Fatal(err)
		}
		checkAgainstRecompute(t, f, ca)
	}
}

// TestIncrementalSupergroup: grouping-sets ASTs merge per output row — the
// NULL-padded key tuples of each cuboid align between delta and table.
func TestIncrementalSupergroup(t *testing.T) {
	f := newFixture(t, 2000)
	ca := f.compile(t, "incgs", `
		select flid, year(date) as y, month(date) as m, count(*) as c, sum(qty) as s
		from trans
		group by grouping sets((flid, y), (flid, y, m), (y), ())`)
	plan := f.m.Analyze(ca)
	if plan.Strategy != Incremental {
		t.Fatalf("supergroup AST should be incremental: %s", plan.Reason)
	}
	rng := rand.New(rand.NewSource(77))
	for batch := 0; batch < 4; batch++ {
		rows := randTransRows(f, rng, 60+rng.Intn(60))
		if _, err := f.m.ApplyInsert([]*Plan{plan}, "trans", rows); err != nil {
			t.Fatal(err)
		}
		checkAgainstRecompute(t, f, ca)
	}
}

func TestFullFallbackStaysCorrect(t *testing.T) {
	f := newFixture(t, 1000)
	ca := f.compile(t, "fullast", `
		select flid, count(distinct faid) as buyers from trans group by flid`)
	plan := f.m.Analyze(ca)
	if plan.Strategy != FullRecompute {
		t.Fatal("expected full recompute")
	}
	rng := rand.New(rand.NewSource(4))
	rows := randTransRows(f, rng, 60)
	stats, err := f.m.ApplyInsert([]*Plan{plan}, "trans", rows)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Strategy != FullRecompute {
		t.Fatalf("stats: %+v", stats)
	}
	checkAgainstRecompute(t, f, ca)
}

func TestDimensionInsertIsCheap(t *testing.T) {
	f := newFixture(t, 1000)
	ca := f.compile(t, "dimast", `
		select state, count(*) as c from trans, loc where flid = lid group by state`)
	plan := f.m.Analyze(ca)
	if plan.Strategy != Incremental {
		t.Fatalf("expected incremental: %s", plan.Reason)
	}
	// New locations have no transactions yet (RI): the delta is empty.
	n := f.store.MustTable("loc").Cardinality()
	stats, err := f.m.ApplyInsert([]*Plan{plan}, "loc", [][]sqltypes.Value{{
		sqltypes.NewInt(int64(n + 1)), sqltypes.NewString("NewCity"),
		sqltypes.NewString("ZZ"), sqltypes.NewString("USA"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].DeltaRows != 0 || stats[0].Merged != 0 || stats[0].Added != 0 {
		t.Fatalf("dimension insert should be a no-op delta: %+v", stats[0])
	}
	checkAgainstRecompute(t, f, ca)
}

func TestASTNotReadingTableSkipped(t *testing.T) {
	f := newFixture(t, 500)
	ca := f.compile(t, "custonly", `select age, count(*) as c from cust group by age`)
	plan := f.m.Analyze(ca)
	stats, err := f.m.ApplyInsert([]*Plan{plan}, "trans",
		randTransRows(f, rand.New(rand.NewSource(5)), 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 0 {
		t.Fatalf("AST over cust should be skipped for trans inserts: %+v", stats)
	}
}

// TestMaintainedASTStillAnswersQueries: end-to-end — after incremental
// refreshes, rewrites against the AST remain result-identical.
func TestMaintainedASTStillAnswersQueries(t *testing.T) {
	f := newFixture(t, 1500)
	ca := f.compile(t, "servem", `
		select flid, year(date) as year, count(*) as cnt
		from trans group by flid, year(date)`)
	plan := f.m.Analyze(ca)
	rng := rand.New(rand.NewSource(6))
	if _, err := f.m.ApplyInsert([]*Plan{plan}, "trans", randTransRows(f, rng, 120)); err != nil {
		t.Fatal(err)
	}

	sql := "select flid, count(*) as cnt from trans where year(date) > 1990 group by flid"
	orig, err := buildAndRun(f, sql)
	if err != nil {
		t.Fatal(err)
	}
	g, err := buildGraph(f, sql)
	if err != nil {
		t.Fatal(err)
	}
	if res := f.rw.Rewrite(g, ca); res == nil {
		t.Fatal("no rewrite")
	}
	newRes, err := f.engine.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if diff := exec.EqualResults(orig, newRes); diff != "" {
		t.Fatalf("rewrite against maintained AST wrong: %s", diff)
	}
}

func buildGraph(f *fixture, sql string) (*qgm.Graph, error) {
	return qgm.BuildSQL(sql, f.cat)
}

func buildAndRun(f *fixture, sql string) (*exec.Result, error) {
	g, err := buildGraph(f, sql)
	if err != nil {
		return nil, err
	}
	return f.engine.Run(g)
}
