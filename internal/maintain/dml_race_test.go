package maintain

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/parser"
	"repro/internal/qgm"
)

// TestConcurrentReadersDuringDMLStorm extends the reader/maintenance race
// coverage to the delete/update path: parallel readers scan base-table joins
// and the materialized AST while one writer alternates DELETE, UPDATE, and
// INSERT maintenance rounds. The DML path mutates the base table itself (not
// just the AST), so this additionally proves the base swap is one atomic
// copy-on-write Put — readers never see a half-deleted fact table.
func TestConcurrentReadersDuringDMLStorm(t *testing.T) {
	f := newFixture(t, 3000)
	f.m = New(f.store).WithCatalog(f.cat)
	ca := f.compile(t, "ast_dmlrace",
		`select flid, year(date) as y, count(*) as c, sum(qty) as s, min(price) as mn
		 from trans group by flid, year(date)`)
	plan := f.m.Analyze(ca)
	if s, reason := plan.DeleteRouting("trans"); s != Incremental {
		t.Fatalf("want incremental delete routing: %s", reason)
	}
	f.cat.MustAddTable(ca.Table)

	baseG, err := qgm.BuildSQL(
		`select lid, count(*) as c from trans, loc where flid = lid group by lid`, f.cat)
	if err != nil {
		t.Fatal(err)
	}
	astG, err := qgm.BuildSQL(`select flid, y, c, s from ast_dmlrace`, f.cat)
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers     = 4
		readsPer    = 20
		writeRounds = 9
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			eng := exec.NewEngine(f.store)
			g := baseG
			if r%2 == 1 {
				g = astG
			}
			for i := 0; i < readsPer; i++ {
				if _, err := eng.RunCtx(context.Background(), g.Clone(), exec.Config{Parallelism: 4}); err != nil {
					errc <- err
					return
				}
			}
		}(r)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < writeRounds; i++ {
			var err error
			switch i % 3 {
			case 0:
				var stmt parser.Statement
				sql := fmt.Sprintf("delete from trans where qty = %d and flid <= %d", 1+rng.Intn(5), 10+rng.Intn(30))
				if stmt, err = parser.ParseStatement(sql); err == nil {
					var dml *qgm.DML
					if dml, err = qgm.BuildDelete(stmt.(*parser.DeleteStmt), f.cat); err == nil {
						_, _, err = f.m.ApplyDelete([]*Plan{plan}, dml)
					}
				}
			case 1:
				var stmt parser.Statement
				sql := fmt.Sprintf("update trans set flid = %d where flid = %d", 1+rng.Intn(40), 1+rng.Intn(40))
				if stmt, err = parser.ParseStatement(sql); err == nil {
					var dml *qgm.DML
					if dml, err = qgm.BuildUpdate(stmt.(*parser.UpdateStmt), f.cat); err == nil {
						_, _, err = f.m.ApplyUpdate([]*Plan{plan}, dml)
					}
				}
			default:
				_, err = f.m.ApplyInsert([]*Plan{plan}, "trans", randTransRows(f, rng, 40))
			}
			if err != nil {
				errc <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	checkAgainstRecompute(t, f, ca)
}
