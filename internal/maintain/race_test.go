package maintain

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/qgm"
)

// TestConcurrentReadersDuringMaintenance is the race-safety regression test
// for the storage snapshot model: parallel Engine.RunCtx readers (base-table
// joins and scans of the materialized AST) run against the shared store while
// ApplyInsert concurrently appends to the fact table and incrementally
// refreshes the AST. Under `go test -race` this proves that maintenance never
// mutates rows a reader may hold — refresh evaluates deltas on an overlay
// store and publishes the merged table copy-on-write via Put.
func TestConcurrentReadersDuringMaintenance(t *testing.T) {
	f := newFixture(t, 3000)
	f.m = New(f.store).WithCatalog(f.cat)
	ca := f.compile(t, "ast_race",
		`select flid, year(date) as y, count(*) as c, sum(qty) as s
		 from trans group by flid, year(date)`)
	plan := f.m.Analyze(ca)
	if plan.Strategy != Incremental {
		t.Fatalf("want incremental plan, got %v", plan.Strategy)
	}
	f.cat.MustAddTable(ca.Table)

	baseG, err := qgm.BuildSQL(
		`select lid, count(*) as c from trans, loc where flid = lid group by lid`, f.cat)
	if err != nil {
		t.Fatal(err)
	}
	astG, err := qgm.BuildSQL(`select flid, y, c, s from ast_race`, f.cat)
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers     = 4
		readsPer    = 20
		writeRounds = 10
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Fresh engine per reader: the per-run memo is not shared, and
			// each run sees a consistent snapshot of every table it scans.
			eng := exec.NewEngine(f.store)
			g := baseG
			if r%2 == 1 {
				g = astG
			}
			for i := 0; i < readsPer; i++ {
				if _, err := eng.RunCtx(context.Background(), g.Clone(), exec.Config{Parallelism: 4}); err != nil {
					errc <- err
					return
				}
			}
		}(r)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < writeRounds; i++ {
			rows := randTransRows(f, rng, 50)
			if _, err := f.m.ApplyInsert([]*Plan{plan}, "trans", rows); err != nil {
				errc <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// After the dust settles, the maintained table must equal a fresh
	// recomputation over the final base data.
	checkAgainstRecompute(t, f, ca)
}
