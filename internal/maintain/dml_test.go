package maintain

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/parser"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
)

func buildDelete(t testing.TB, f *fixture, sql string) *qgm.DML {
	t.Helper()
	stmt, err := parser.ParseStatement(sql)
	if err != nil {
		t.Fatal(err)
	}
	dml, err := qgm.BuildDelete(stmt.(*parser.DeleteStmt), f.cat)
	if err != nil {
		t.Fatal(err)
	}
	return dml
}

func buildUpdate(t testing.TB, f *fixture, sql string) *qgm.DML {
	t.Helper()
	stmt, err := parser.ParseStatement(sql)
	if err != nil {
		t.Fatal(err)
	}
	dml, err := qgm.BuildUpdate(stmt.(*parser.UpdateStmt), f.cat)
	if err != nil {
		t.Fatal(err)
	}
	return dml
}

func TestAnalyzeDeleteRouting(t *testing.T) {
	f := newFixture(t, 500)
	cases := []struct {
		sql    string
		want   Strategy
		reason string // substring of the full-recompute reason
	}{
		{`select flid, count(*) as c, sum(qty) as s from trans group by flid`,
			Incremental, ""},
		{`select flid, count(qty) as c, sum(qty) as s from trans group by flid`,
			Incremental, ""}, // count(non-nullable) counts rows, so it is a tracker
		{`select flid, sum(qty) as s from trans group by flid`,
			FullRecompute, "tracker"},
		{`select flid, count(*) as c, min(price) as mn from trans group by flid`,
			Incremental, ""}, // MIN handled by scoped recompute
		{`select flid, year(date) as y, count(*) as c, max(price) as mx
		  from trans group by rollup(flid, year(date))`,
			FullRecompute, "supergroup"},
		{`select flid, year(date) as y, count(*) as c, sum(qty) as s
		  from trans group by rollup(flid, year(date))`,
			Incremental, ""}, // subtractable aggregates retire cuboid groups too
	}
	for i, c := range cases {
		ca := f.compile(t, fmt.Sprintf("dr%d", i), c.sql)
		p := f.m.Analyze(ca)
		got, reason := p.DeleteRouting("trans")
		if got != c.want {
			t.Errorf("case %d (%s): delete routing %v (reason %q), want %v", i, c.sql, got, reason, c.want)
		}
		if c.reason != "" && !strings.Contains(reason, c.reason) {
			t.Errorf("case %d: reason %q does not mention %q", i, reason, c.reason)
		}
	}
}

// TestSelfJoinForcesFullRouting: the single-table overlay delta computes only
// ΔR⋈ΔR for a self-joined table, so both insert and delete maintenance must
// route to full recomputation — and the results must still match a fresh
// evaluation end to end.
func TestSelfJoinForcesFullRouting(t *testing.T) {
	f := newFixture(t, 800)
	ca := f.compile(t, "selfj", `
		select a.flid as flid, count(*) as c
		from trans a, trans b
		where a.faid = b.faid
		group by a.flid`)
	p := f.m.Analyze(ca)
	if s, reason := p.InsertRouting("trans"); s != FullRecompute || !strings.Contains(reason, "more than once") {
		t.Fatalf("insert routing for self-join: %v (%q), want full", s, reason)
	}
	if s, _ := p.DeleteRouting("trans"); s != FullRecompute {
		t.Fatalf("delete routing for self-join must be full")
	}

	rows := randTransRows(f, rand.New(rand.NewSource(8)), 40)
	stats, err := f.m.ApplyInsert([]*Plan{p}, "trans", rows)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Strategy != FullRecompute {
		t.Fatalf("insert used %v, want full: %+v", stats[0].Strategy, stats[0])
	}
	checkAgainstRecompute(t, f, ca)

	n, stats, err := f.m.ApplyDelete([]*Plan{p}, buildDelete(t, f, `delete from trans where qty = 2`))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || stats[0].Strategy != FullRecompute {
		t.Fatalf("delete: n=%d stats=%+v", n, stats)
	}
	checkAgainstRecompute(t, f, ca)
}

func TestApplyDeleteRetirement(t *testing.T) {
	f := newFixture(t, 1500)
	ca := f.compile(t, "delret", `
		select fpgid, count(*) as c, sum(qty) as s from trans group by fpgid`)
	p := f.m.Analyze(ca)
	if s, reason := p.DeleteRouting("trans"); s != Incremental {
		t.Fatalf("want incremental delete routing: %s", reason)
	}

	// Deleting every row of one group must retire it.
	n, stats, err := f.m.ApplyDelete([]*Plan{p}, buildDelete(t, f, `delete from trans where fpgid = 3`))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("predicate matched nothing")
	}
	if stats[0].Strategy != Incremental || stats[0].Retired != 1 {
		t.Fatalf("want 1 retired group via incremental path: %+v", stats[0])
	}
	checkAgainstRecompute(t, f, ca)

	// A partial delete subtracts in place.
	_, stats, err = f.m.ApplyDelete([]*Plan{p}, buildDelete(t, f, `delete from trans where qty = 5`))
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Merged == 0 {
		t.Fatalf("partial delete should merge surviving groups: %+v", stats[0])
	}
	checkAgainstRecompute(t, f, ca)

	// A WHERE-less DELETE retires everything.
	n, stats, err = f.m.ApplyDelete([]*Plan{p}, buildDelete(t, f, `delete from trans`))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || f.store.MustTable("trans").Cardinality() != 0 {
		t.Fatalf("full delete left %d base rows", f.store.MustTable("trans").Cardinality())
	}
	if got := f.store.MustTable("delret").Cardinality(); got != 0 {
		t.Fatalf("all groups should be retired, %d remain", got)
	}
	checkAgainstRecompute(t, f, ca)
}

// TestDeleteScopedRecompute: MIN/MAX columns of surviving groups are restored
// by a group-scoped recomputation, and the rest of the row (COUNT, SUM) is
// still maintained by subtraction.
func TestDeleteScopedRecompute(t *testing.T) {
	f := newFixture(t, 1500)
	ca := f.compile(t, "delscope", `
		select flid, count(*) as c, sum(qty) as s, min(price) as mn, max(price) as mx
		from trans group by flid`)
	p := f.m.Analyze(ca)
	if s, reason := p.DeleteRouting("trans"); s != Incremental {
		t.Fatalf("want incremental delete routing: %s", reason)
	}
	if len(p.scopedCols) != 2 {
		t.Fatalf("min and max should be scoped columns: %v", p.scopedCols)
	}

	n, stats, err := f.m.ApplyDelete([]*Plan{p}, buildDelete(t, f, `delete from trans where qty = 3 and flid <= 40`))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("predicate matched nothing")
	}
	if stats[0].Strategy != Incremental || stats[0].Scoped == 0 {
		t.Fatalf("want scope-recomputed groups on the incremental path: %+v", stats[0])
	}
	checkAgainstRecompute(t, f, ca)
}

// TestScopedRecomputeCap: past maxScopedGroups affected groups the injected
// OR-of-keys predicate is worse than recomputing everything, so the scoped
// path refuses and the caller falls back to full.
func TestScopedRecomputeCap(t *testing.T) {
	f := newFixture(t, 300)
	ca := f.compile(t, "capast", `
		select flid, count(*) as c, min(price) as mn from trans group by flid`)
	p := f.m.Analyze(ca)
	pm := &pendingMerge{scoped: map[string][]sqltypes.Value{}}
	for i := 0; i <= maxScopedGroups; i++ {
		pm.scoped[fmt.Sprint(i)] = []sqltypes.Value{sqltypes.NewInt(int64(i))}
	}
	if err := f.m.scopedRecompute(p, pm); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("want cap error, got %v", err)
	}
}

func TestApplyUpdateGroupMigration(t *testing.T) {
	f := newFixture(t, 1500)
	ca := f.compile(t, "updmig", `
		select flid, count(*) as c, sum(qty) as s from trans group by flid`)
	p := f.m.Analyze(ca)

	// Moving every row out of group 7 retires it; group 5 absorbs the rows.
	n, stats, err := f.m.ApplyUpdate([]*Plan{p}, buildUpdate(t, f, `update trans set flid = 5 where flid = 7`))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("predicate matched nothing")
	}
	if stats[0].Strategy != Incremental || stats[0].Retired != 1 {
		t.Fatalf("want group 7 retired on the incremental path: %+v", stats[0])
	}
	checkAgainstRecompute(t, f, ca)

	// A value update changes aggregates without moving rows between groups.
	_, stats, err = f.m.ApplyUpdate([]*Plan{p}, buildUpdate(t, f, `update trans set qty = qty + 1 where tid <= 200`))
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Strategy != Incremental {
		t.Fatalf("stats: %+v", stats[0])
	}
	checkAgainstRecompute(t, f, ca)

	// No matching rows: nothing happens, no per-AST work.
	n, stats, err = f.m.ApplyUpdate([]*Plan{p}, buildUpdate(t, f, `update trans set qty = 1 where tid < 0`))
	if err != nil || n != 0 || len(stats) != 0 {
		t.Fatalf("no-op update: n=%d stats=%+v err=%v", n, stats, err)
	}
}

// TestUpdateNullIntoNotNullAborts: a statement-level error surfaces before
// any mutation — the base table and every AST stay exactly as they were.
func TestUpdateNullIntoNotNullAborts(t *testing.T) {
	f := newFixture(t, 500)
	ca := f.compile(t, "updnn", `
		select flid, count(*) as c, sum(qty) as s from trans group by flid`)
	p := f.m.Analyze(ca)
	before := f.store.MustTable("trans").Cardinality()

	n, stats, err := f.m.ApplyUpdate([]*Plan{p}, buildUpdate(t, f, `update trans set qty = null where tid = 1`))
	if err == nil || !strings.Contains(err.Error(), "NOT NULL") {
		t.Fatalf("want NOT NULL error, got %v", err)
	}
	if n != 0 || len(stats) != 0 {
		t.Fatalf("aborted update did work: n=%d stats=%+v", n, stats)
	}
	if got := f.store.MustTable("trans").Cardinality(); got != before {
		t.Fatalf("base table mutated by aborted update: %d -> %d", before, got)
	}
	checkAgainstRecompute(t, f, ca)
}

// TestDeleteFaultFallsBackToFull: an injected fault at the delete-delta site
// degrades that refresh to a full recompute; the AST ends fresh and correct.
func TestDeleteFaultFallsBackToFull(t *testing.T) {
	f := newFixture(t, 1000)
	f.m = New(f.store).WithCatalog(f.cat)
	ca := f.compile(t, "fdel", `
		select flid, count(*) as c, sum(qty) as s from trans group by flid`)
	p := f.m.Analyze(ca)

	faultinject.Enable(1)
	defer faultinject.Disable()
	faultinject.Set("maintain.delete", faultinject.Err("maintain.delete"))

	n, stats, err := f.m.ApplyDelete([]*Plan{p}, buildDelete(t, f, `delete from trans where qty = 2`))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || stats[0].Strategy != FullRecompute {
		t.Fatalf("faulted delete should fall back to full: n=%d stats=%+v", n, stats)
	}
	if st := f.cat.Status("fdel"); st.Stale || st.Quarantined {
		t.Fatalf("full fallback succeeded; AST should be fresh: %+v", st)
	}
	checkAgainstRecompute(t, f, ca)
}

// TestUpdateFaultPanicFallsBackToFull: the delta path recovers injected
// panics, not just errors.
func TestUpdateFaultPanicFallsBackToFull(t *testing.T) {
	f := newFixture(t, 1000)
	f.m = New(f.store).WithCatalog(f.cat)
	ca := f.compile(t, "fupd", `
		select fpgid, count(*) as c, sum(qty) as s from trans group by fpgid`)
	p := f.m.Analyze(ca)

	faultinject.Enable(1)
	defer faultinject.Disable()
	faultinject.Set("maintain.update", faultinject.Fault{Panic: "dml: update delta panic"})

	n, stats, err := f.m.ApplyUpdate([]*Plan{p}, buildUpdate(t, f, `update trans set fpgid = 1 where fpgid = 2`))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || stats[0].Strategy != FullRecompute {
		t.Fatalf("faulted update should fall back to full: n=%d stats=%+v", n, stats)
	}
	if st := f.cat.Status("fupd"); st.Stale || st.Quarantined {
		t.Fatalf("AST should be fresh after fallback: %+v", st)
	}
	checkAgainstRecompute(t, f, ca)
}

// TestScopedFaultFallsBackToFull: a fault between merge and scoped recompute
// abandons the prepared merge — nothing half-finished is ever published.
func TestScopedFaultFallsBackToFull(t *testing.T) {
	f := newFixture(t, 1500)
	f.m = New(f.store).WithCatalog(f.cat)
	ca := f.compile(t, "fscope", `
		select flid, count(*) as c, min(price) as mn from trans group by flid`)
	p := f.m.Analyze(ca)

	faultinject.Enable(1)
	defer faultinject.Disable()
	faultinject.Set("maintain.scoped", faultinject.Err("maintain.scoped"))

	n, stats, err := f.m.ApplyDelete([]*Plan{p}, buildDelete(t, f, `delete from trans where qty = 3 and flid <= 30`))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || stats[0].Strategy != FullRecompute {
		t.Fatalf("faulted scoped recompute should fall back to full: n=%d stats=%+v", n, stats)
	}
	checkAgainstRecompute(t, f, ca)
}

// TestDeleteDoubleFaultGoesStale is the never-fresh-and-wrong core: when both
// the delta path and the full fallback fail, the AST must be marked stale —
// and the next DML on a stale AST must route through a full recompute, which
// restores freshness once the faults clear.
func TestDeleteDoubleFaultGoesStale(t *testing.T) {
	f := newFixture(t, 1000)
	f.m = New(f.store).WithCatalog(f.cat)
	ca := f.compile(t, "fboth", `
		select flid, count(*) as c, sum(qty) as s from trans group by flid`)
	p := f.m.Analyze(ca)

	faultinject.Enable(1)
	defer faultinject.Disable()
	faultinject.Set("maintain.delete", faultinject.Err("maintain.delete"))
	faultinject.Set("maintain.full", faultinject.Err("maintain.full"))

	n, stats, err := f.m.ApplyDelete([]*Plan{p}, buildDelete(t, f, `delete from trans where qty = 4`))
	if err == nil {
		t.Fatal("double fault must surface an error")
	}
	if n == 0 || stats[0].Err == nil {
		t.Fatalf("stats must record the failure: n=%d stats=%+v", n, stats)
	}
	if st := f.cat.Status("fboth"); !st.Stale {
		t.Fatalf("AST must be stale after refresh failure: %+v", st)
	}

	// Recovery: with the faults cleared, the next DML sees a stale AST and is
	// forced through a full recompute, which alone may mark it fresh again.
	faultinject.Clear("maintain.delete")
	faultinject.Clear("maintain.full")
	n, stats, err = f.m.ApplyDelete([]*Plan{p}, buildDelete(t, f, `delete from trans where qty = 5`))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || stats[0].Strategy != FullRecompute {
		t.Fatalf("stale AST must refresh via full recompute: n=%d stats=%+v", n, stats)
	}
	if st := f.cat.Status("fboth"); st.Stale || st.Quarantined {
		t.Fatalf("successful full recompute must clear staleness: %+v", st)
	}
	checkAgainstRecompute(t, f, ca)
}
