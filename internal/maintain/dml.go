// Delete/update maintenance. The paper's insert path (delta aggregation and
// merge) extends to deletes via count-tracked retirement, following Cohen &
// Nutt: every maintainable AST carries a COUNT(*)-equivalent tracker column,
// the delete delta is the definition evaluated over just the removed rows,
// and merging subtracts — COUNT and non-nullable SUM exactly, with a group
// retired the moment its tracker reaches zero. MIN/MAX (and SUM over nullable
// input) cannot be un-merged, so affected groups are recomputed from the
// post-mutation base tables, scoped by injected grouping-key predicates. An
// UPDATE is a delete delta (old rows) plus an insert delta (new rows) applied
// in one merge.
//
// The never-fresh-and-wrong invariant of the insert path carries over: the
// merge is prepared before the base mutation, published only after it (and
// after any scoped recompute) succeeds, and every failure — delta evaluation,
// inconsistent tracker counts, injected faults, scoped recompute errors —
// falls back to a full recompute, whose own failure marks the AST stale and
// counts toward quarantine.
package maintain

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/qgm"
	"repro/internal/qgmcheck"
	"repro/internal/sqltypes"
)

// maxScopedGroups caps how many groups one scoped recompute will restrict the
// definition to; past it the injected OR-of-keys predicate costs more than
// recomputing everything, so the refresh falls back to full.
const maxScopedGroups = 256

// ApplyDelete removes the rows of dml's table matched by its predicate (3VL:
// only rows whose WHERE is True) and refreshes every AST reading the table —
// by count-tracked delta retirement where DeleteRouting allows, by full
// recomputation otherwise. It returns the number of rows deleted. A predicate
// evaluation error aborts before anything is mutated.
func (m *Maintainer) ApplyDelete(plans []*Plan, dml *qgm.DML) (int, []Stats, error) {
	table := strings.ToLower(dml.Table.Name)
	td, ok := m.store.Table(table)
	if !ok {
		return 0, nil, fmt.Errorf("maintain: table %q not loaded", table)
	}
	snap := td.Snapshot()
	ev := exec.NewRowEvaluator(dml.Q)
	var deleted, remaining [][]sqltypes.Value
	for _, row := range snap {
		match := true
		if dml.Where != nil {
			tri, err := ev.Pred(dml.Where, row)
			if err != nil {
				return 0, nil, fmt.Errorf("maintain: DELETE WHERE: %w", err)
			}
			match = tri == sqltypes.True
		}
		if match {
			deleted = append(deleted, row)
		} else {
			remaining = append(remaining, row)
		}
	}
	if len(deleted) == 0 {
		return 0, nil, nil
	}
	stats, err := m.applyDML(plans, table, "maintain.delete:", deleted, nil, remaining)
	return len(deleted), stats, err
}

// ApplyUpdate rewrites the rows of dml's table matched by its predicate
// through its SET assignments (each assignment sees the row's pre-update
// values) and refreshes every AST reading the table; the incremental path
// applies the delete delta of the old rows and the insert delta of the new
// rows in one merge. It returns the number of rows updated. Any evaluation
// error — including a NULL assigned to a NOT NULL column, or a value of the
// wrong kind — aborts before anything is mutated.
func (m *Maintainer) ApplyUpdate(plans []*Plan, dml *qgm.DML) (int, []Stats, error) {
	table := strings.ToLower(dml.Table.Name)
	td, ok := m.store.Table(table)
	if !ok {
		return 0, nil, fmt.Errorf("maintain: table %q not loaded", table)
	}
	snap := td.Snapshot()
	ev := exec.NewRowEvaluator(dml.Q)
	var oldRows, newRows [][]sqltypes.Value
	newBase := make([][]sqltypes.Value, 0, len(snap))
	for _, row := range snap {
		match := true
		if dml.Where != nil {
			tri, err := ev.Pred(dml.Where, row)
			if err != nil {
				return 0, nil, fmt.Errorf("maintain: UPDATE WHERE: %w", err)
			}
			match = tri == sqltypes.True
		}
		if !match {
			newBase = append(newBase, row)
			continue
		}
		nr := append([]sqltypes.Value(nil), row...)
		for _, s := range dml.Sets {
			col := dml.Table.Columns[s.Col]
			v, err := ev.Scalar(s.Expr, row)
			if err != nil {
				return 0, nil, fmt.Errorf("maintain: UPDATE SET %s: %w", col.Name, err)
			}
			v, err = coerceValue(v, col)
			if err != nil {
				return 0, nil, fmt.Errorf("maintain: UPDATE SET %s: %w", col.Name, err)
			}
			nr[s.Col] = v
		}
		oldRows = append(oldRows, row)
		newRows = append(newRows, nr)
		newBase = append(newBase, nr)
	}
	if len(oldRows) == 0 {
		return 0, nil, nil
	}
	stats, err := m.applyDML(plans, table, "maintain.update:", oldRows, newRows, newBase)
	return len(oldRows), stats, err
}

// coerceValue conforms an evaluated SET value to its column: NOT NULL is
// enforced, integers widen into float columns, and integer yyyymmdd values
// land in date columns.
func coerceValue(v sqltypes.Value, col catalog.Column) (sqltypes.Value, error) {
	if v.IsNull() {
		if !col.Nullable {
			return v, fmt.Errorf("NULL into NOT NULL column")
		}
		return v, nil
	}
	switch {
	case v.Kind() == col.Type:
		return v, nil
	case col.Type == sqltypes.KindFloat && v.Kind() == sqltypes.KindInt:
		return sqltypes.NewFloat(v.Float()), nil
	case col.Type == sqltypes.KindDate && v.Kind() == sqltypes.KindInt:
		n := v.Int()
		return sqltypes.NewDate(int(n/10000), int((n/100)%100), int(n%100)), nil
	default:
		return v, fmt.Errorf("%v value into %v column", v.Kind(), col.Type)
	}
}

// applyDML runs the shared delete/update sequence: per-AST delta merges are
// prepared against the pre-mutation store, the base table is swapped
// copy-on-write, and only then is each prepared merge completed (scoped
// recompute where MIN/MAX groups were hit) and published. Any prepared merge
// that fails at any point degrades to a full recompute over the post-mutation
// base; only a successful refresh of either kind marks the AST fresh.
func (m *Maintainer) applyDML(plans []*Plan, table, sitePrefix string, oldRows, newRows, newBase [][]sqltypes.Value) ([]Stats, error) {
	td := m.store.MustTable(table)

	var out []Stats
	var pendings []*pendingMerge
	var starts []time.Time
	for _, p := range plans {
		if !p.baseTabs[table] {
			continue
		}
		start := time.Now()
		strat, _ := p.DeleteRouting(table)
		incremental := strat == Incremental && !m.staleOrQuarantined(p.Name())
		var pm *pendingMerge
		var err error
		if incremental {
			pm, err = m.dmlDelta(p, table, sitePrefix+p.Name(), oldRows, newRows)
		}
		if !incremental || err != nil {
			out = append(out, Stats{AST: p.Name(), Strategy: FullRecompute})
			pendings = append(pendings, nil)
		} else {
			pm.st.AST = p.Name()
			pm.st.Strategy = Incremental
			out = append(out, pm.st)
			pendings = append(pendings, pm)
		}
		starts = append(starts, start)
	}

	// The base mutation: one copy-on-write swap, so concurrent readers keep a
	// consistent pre-mutation snapshot.
	m.store.Put(td.Meta, newBase)

	var errs []error
	for i := range out {
		p := findPlan(plans, out[i].AST)
		if pm := pendings[i]; pm != nil {
			if err := m.scopedRecompute(p, pm); err == nil {
				m.store.Put(p.AST.Table, pm.rows)
				m.markFresh(p.Name())
				pm.st.Duration = time.Since(starts[i])
				out[i] = pm.st
				m.obsv.Add("maintain.refresh.incremental", 1)
				m.obsv.Add("maintain.dml.deltas", int64(pm.st.DeltaRows))
				m.obsv.Add("maintain.dml.retired", int64(pm.st.Retired))
				m.obsv.Add("maintain.dml.scoped", int64(pm.st.Scoped))
				m.obsv.Observe("maintain.refresh.incremental", pm.st.Duration)
				continue
			}
			// The prepared merge could not be completed; recover by full
			// recompute like any other incremental failure.
		}
		st, err := m.RefreshFull(p)
		st.Duration += time.Since(starts[i])
		out[i] = st
		if err != nil {
			errs = append(errs, st.Err)
		}
	}
	return out, errors.Join(errs...)
}

// pendingMerge is a prepared (but unpublished) post-DML materialization.
type pendingMerge struct {
	rows   [][]sqltypes.Value
	scoped map[string][]sqltypes.Value // group key → grouping-key values
	st     Stats
}

// groupKey renders a row's grouping-key columns into a map key.
func (p *Plan) groupKey(r []sqltypes.Value) string {
	var sb strings.Builder
	for _, k := range p.keyCols {
		sb.WriteString(r[k].GroupKey())
		sb.WriteByte(0)
	}
	return sb.String()
}

// dmlDelta evaluates the delete delta (over oldRows) and insert delta (over
// newRows) of one AST on overlay stores — the pre-mutation base never changes
// — and merges both into a pending copy of the materialization. Panics are
// recovered into errors; the caller falls back to full recomputation.
func (m *Maintainer) dmlDelta(p *Plan, table, site string, oldRows, newRows [][]sqltypes.Value) (pm *pendingMerge, err error) {
	defer func() {
		if r := recover(); r != nil {
			pm, err = nil, fmt.Errorf("maintain: delta merge panicked: %v", r)
		}
	}()
	if err := faultinject.Hit(site); err != nil {
		return nil, err
	}
	if err := m.auditPlan(p); err != nil {
		return nil, err
	}
	td := m.store.MustTable(table)
	var del, ins *exec.Result
	if len(oldRows) > 0 {
		del, err = exec.NewEngine(m.store.Overlay(table, td.Meta, oldRows)).Run(p.AST.Graph)
		if err != nil {
			return nil, fmt.Errorf("maintain: delete delta eval: %w", err)
		}
	}
	if len(newRows) > 0 {
		ins, err = exec.NewEngine(m.store.Overlay(table, td.Meta, newRows)).Run(p.AST.Graph)
		if err != nil {
			return nil, fmt.Errorf("maintain: insert delta eval: %w", err)
		}
	}
	return m.mergeDeltas(p, del, ins)
}

// mergeDeltas folds a delete delta and an insert delta into a copy of the
// current materialization. Retirement is strict: a delete delta for a group
// the materialization does not hold, or a tracker going negative, means the
// materialization and the base disagree — the merge is abandoned (full
// recompute) rather than published.
func (m *Maintainer) mergeDeltas(p *Plan, del, ins *exec.Result) (*pendingMerge, error) {
	mat, ok := m.store.Table(p.Name())
	if !ok {
		return nil, fmt.Errorf("maintain: AST %q not materialized", p.Name())
	}
	snap := mat.Snapshot()
	merged := make([][]sqltypes.Value, len(snap))
	copy(merged, snap)
	index := make(map[string]int, len(merged))
	for i, r := range merged {
		index[p.groupKey(r)] = i
	}
	scopedCol := make(map[int]bool, len(p.scopedCols))
	for _, c := range p.scopedCols {
		scopedCol[c] = true
	}
	dead := map[int]bool{}
	pm := &pendingMerge{scoped: map[string][]sqltypes.Value{}}

	if del != nil {
		for _, d := range del.Rows {
			pm.st.DeltaRows++
			k := p.groupKey(d)
			i, ok := index[k]
			if !ok {
				return nil, fmt.Errorf("maintain: delete delta names a group %s does not hold", p.Name())
			}
			nr := append([]sqltypes.Value(nil), merged[i]...)
			oc, dc := nr[p.counterCol], d[p.counterCol]
			if oc.IsNull() || dc.IsNull() {
				return nil, fmt.Errorf("maintain: NULL tracker count in %s", p.Name())
			}
			n := oc.Int() - dc.Int()
			if n < 0 {
				return nil, fmt.Errorf("maintain: tracker count of %s went negative", p.Name())
			}
			if n == 0 {
				// Every row of the group left: retire it.
				dead[i] = true
				delete(index, k)
				pm.st.Retired++
				continue
			}
			for ci, role := range p.roles {
				if role.key || ci == p.counterCol || scopedCol[ci] {
					continue
				}
				if d[ci].IsNull() {
					continue // the departed rows contributed nothing here
				}
				if nr[ci].IsNull() {
					return nil, fmt.Errorf("maintain: subtracting from NULL aggregate in %s", p.Name())
				}
				v, err := sqltypes.Sub(nr[ci], d[ci])
				if err != nil {
					return nil, fmt.Errorf("maintain: subtracting column %d: %w", ci, err)
				}
				nr[ci] = v
			}
			nr[p.counterCol] = sqltypes.NewInt(n)
			if len(p.scopedCols) > 0 {
				kv := make([]sqltypes.Value, len(p.keyCols))
				for j, kc := range p.keyCols {
					kv[j] = nr[kc]
				}
				pm.scoped[k] = kv
			}
			merged[i] = nr
			pm.st.Merged++
		}
	}
	if ins != nil {
		for _, d := range ins.Rows {
			pm.st.DeltaRows++
			k := p.groupKey(d)
			if i, ok := index[k]; ok {
				// Insert-side merge is the ApplyInsert rule; scoped columns
				// are overwritten by the recompute below anyway.
				nr := append([]sqltypes.Value(nil), merged[i]...)
				if err := mergeRow(p, nr, d); err != nil {
					return nil, err
				}
				merged[i] = nr
				pm.st.Merged++
			} else {
				// New group (or one fully retired above and reborn from the
				// new rows alone — the insert delta is then its exact value).
				nr := append([]sqltypes.Value(nil), d...)
				merged = append(merged, nr)
				index[k] = len(merged) - 1
				pm.st.Added++
			}
		}
	}
	if len(dead) > 0 {
		final := make([][]sqltypes.Value, 0, len(merged)-len(dead))
		for i, r := range merged {
			if !dead[i] {
				final = append(final, r)
			}
		}
		merged = final
	}
	pm.rows = merged
	return pm, nil
}

// scopedRecompute restores the MIN/MAX (and nullable-SUM) columns of the
// groups a delete touched: it re-evaluates the AST definition over the
// post-mutation base tables with the affected groups' key equalities injected
// into the lower box, then splices the recomputed rows into the pending
// materialization. The injected plan is gated through qgmcheck before it
// runs. No-op when no group needs it.
func (m *Maintainer) scopedRecompute(p *Plan, pm *pendingMerge) error {
	if len(pm.scoped) == 0 {
		return nil
	}
	if err := faultinject.Hit("maintain.scoped:" + p.Name()); err != nil {
		return err
	}
	if len(pm.scoped) > maxScopedGroups {
		return fmt.Errorf("maintain: %d affected groups exceed the scoped-recompute cap (%d)", len(pm.scoped), maxScopedGroups)
	}
	clone := p.AST.Graph.Clone()
	gb := clone.Root.Quantifiers[0].Box
	lower := gb.Child()

	keys := make([]string, 0, len(pm.scoped))
	for k := range pm.scoped {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic predicate shape
	var or qgm.Expr
	for _, k := range keys {
		var and qgm.Expr
		for j, ord := range p.keyLowerOrds {
			e := lower.Cols[ord].Expr
			var c qgm.Expr
			if pm.scoped[k][j].IsNull() {
				c = &qgm.IsNull{E: e}
			} else {
				c = &qgm.Bin{Op: "=", L: e, R: &qgm.Const{Val: pm.scoped[k][j]}}
			}
			if and == nil {
				and = c
			} else {
				and = &qgm.Bin{Op: "AND", L: and, R: c}
			}
		}
		if or == nil {
			or = and
		} else {
			or = &qgm.Bin{Op: "OR", L: or, R: and}
		}
	}
	lower.Preds = append(lower.Preds, or)
	if err := qgmcheck.Structural(clone); err != nil {
		return fmt.Errorf("maintain: scoped plan failed verification: %w", err)
	}
	res, err := m.engine.Run(clone)
	if err != nil {
		return fmt.Errorf("maintain: scoped recompute: %w", err)
	}
	byKey := make(map[string][]sqltypes.Value, len(res.Rows))
	for _, r := range res.Rows {
		byKey[p.groupKey(r)] = r
	}
	for i, r := range pm.rows {
		k := p.groupKey(r)
		if _, affected := pm.scoped[k]; !affected {
			continue
		}
		nr, ok := byKey[k]
		if !ok {
			// The tracker says rows remain but the recompute found none: the
			// materialization and base disagree.
			return fmt.Errorf("maintain: scoped recompute lost group in %s", p.Name())
		}
		pm.rows[i] = append([]sqltypes.Value(nil), nr...)
	}
	pm.st.Scoped = len(pm.scoped)
	return nil
}
