package maintain

// Failure-path coverage for maintenance: injected refresh faults must
// degrade per AST — incremental failures fall back to full recomputation,
// full-recompute failures mark the AST stale (feeding the quarantine
// breaker) without stopping other ASTs, and a later successful recompute
// restores the AST to service.

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/qgm"
)

// newTrackedFixture is newFixture with the maintainer wired to the catalog.
func newTrackedFixture(t testing.TB, n int) *fixture {
	f := newFixture(t, n)
	f.m.WithCatalog(f.cat)
	return f
}

func TestIncrementalFailureFallsBackToFull(t *testing.T) {
	faultinject.Enable(1)
	defer faultinject.Disable()

	f := newTrackedFixture(t, 1000)
	ca := f.compile(t, "incfail", `
		select flid, year(date) as y, count(*) as c, sum(qty) as s
		from trans group by flid, year(date)`)
	plan := f.m.Analyze(ca)
	if plan.Strategy != Incremental {
		t.Fatalf("not incremental: %s", plan.Reason)
	}
	faultinject.Set("maintain.incremental:incfail", faultinject.Err("maintain.incremental:incfail"))

	rows := randTransRows(f, rand.New(rand.NewSource(9)), 50)
	stats, err := f.m.ApplyInsert([]*Plan{plan}, "trans", rows)
	if err != nil {
		t.Fatalf("fallback should absorb the incremental failure: %v", err)
	}
	if len(stats) != 1 || stats[0].Strategy != FullRecompute || stats[0].Err != nil {
		t.Fatalf("stats: %+v", stats)
	}
	checkAgainstRecompute(t, f, ca)
	if st := f.cat.Status("incfail"); st.Stale || st.Epoch == 0 {
		t.Fatalf("fallback refresh should leave the AST fresh: %+v", st)
	}
}

func TestIncrementalPanicFallsBackToFull(t *testing.T) {
	faultinject.Enable(1)
	defer faultinject.Disable()

	f := newTrackedFixture(t, 1000)
	ca := f.compile(t, "incpanic", `
		select flid, count(*) as c from trans group by flid`)
	plan := f.m.Analyze(ca)
	faultinject.Set("maintain.incremental:incpanic", faultinject.Fault{Panic: "refresh panic"})

	rows := randTransRows(f, rand.New(rand.NewSource(10)), 40)
	stats, err := f.m.ApplyInsert([]*Plan{plan}, "trans", rows)
	if err != nil {
		t.Fatalf("panic should be recovered into the full fallback: %v", err)
	}
	if stats[0].Strategy != FullRecompute {
		t.Fatalf("stats: %+v", stats)
	}
	checkAgainstRecompute(t, f, ca)
	// The base insert must have landed exactly once.
	if got := f.store.MustTable("trans").Cardinality(); got != 1040 {
		t.Fatalf("trans has %d rows, want 1040", got)
	}
}

func TestFullFailureContinuesAndMarksStale(t *testing.T) {
	faultinject.Enable(1)
	defer faultinject.Disable()

	f := newTrackedFixture(t, 800)
	// Both ASTs need full recomputation (DISTINCT aggregates); only one is
	// broken — the other must still refresh.
	bad := f.compile(t, "fullbad", `select flid, count(distinct faid) as c from trans group by flid`)
	good := f.compile(t, "fullgood", `select flid, count(distinct faid) as c from trans group by flid`)
	pBad, pGood := f.m.Analyze(bad), f.m.Analyze(good)
	faultinject.Set("maintain.full:fullbad", faultinject.Err("maintain.full:fullbad"))

	rows := randTransRows(f, rand.New(rand.NewSource(11)), 30)
	stats, err := f.m.ApplyInsert([]*Plan{pBad, pGood}, "trans", rows)
	if err == nil {
		t.Fatal("expected a joined error for the failed full refresh")
	}
	if len(stats) != 2 {
		t.Fatalf("stats for both ASTs expected, got %d", len(stats))
	}
	if stats[0].AST != "fullbad" || stats[0].Err == nil {
		t.Fatalf("failed AST not recorded: %+v", stats[0])
	}
	if stats[1].AST != "fullgood" || stats[1].Err != nil {
		t.Fatalf("later AST was not refreshed: %+v", stats[1])
	}
	checkAgainstRecompute(t, f, good)

	if st := f.cat.Status("fullbad"); !st.Stale || st.Failures != 1 {
		t.Fatalf("failed AST should be stale with one failure: %+v", st)
	}
	if st := f.cat.Status("fullgood"); st.Stale || st.Epoch != 1 {
		t.Fatalf("good AST should be fresh: %+v", st)
	}
}

func TestQuarantineAndRecovery(t *testing.T) {
	faultinject.Enable(1)
	defer faultinject.Disable()

	f := newTrackedFixture(t, 800)
	f.cat.SetQuarantineThreshold(2)
	ca := f.compile(t, "quaast", `select flid, count(distinct faid) as c from trans group by flid`)
	plan := f.m.Analyze(ca)
	faultinject.Set("maintain.full:quaast", faultinject.Fault{Err: errors.New("disk on fire"), Times: 2})

	rng := rand.New(rand.NewSource(12))
	// Two failed refreshes trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := f.m.ApplyInsert([]*Plan{plan}, "trans", randTransRows(f, rng, 10)); err == nil {
			t.Fatalf("refresh %d should fail", i)
		}
	}
	st := f.cat.Status("quaast")
	if !st.Quarantined || st.Failures != 2 {
		t.Fatalf("breaker did not trip: %+v", st)
	}

	// The rewriter refuses the quarantined AST even with AllowStale.
	sql := "select flid, count(distinct faid) as c from trans group by flid"
	g, err := qgm.BuildSQL(sql, f.cat)
	if err != nil {
		t.Fatal(err)
	}
	if res := f.rw.Rewrite(g, ca); res != nil {
		t.Fatal("rewriter used a quarantined AST")
	}

	// The injected fault is exhausted (Times: 2): a successful full
	// recompute un-quarantines and the AST serves queries again.
	if _, err := f.m.RefreshFull(plan); err != nil {
		t.Fatalf("recovery recompute failed: %v", err)
	}
	st = f.cat.Status("quaast")
	if st.Quarantined || st.Stale || st.Failures != 0 {
		t.Fatalf("recovery did not clear the breaker: %+v", st)
	}
	checkAgainstRecompute(t, f, ca)
	g2, _ := qgm.BuildSQL(sql, f.cat)
	if res := f.rw.Rewrite(g2, ca); res == nil {
		t.Fatal("recovered AST should serve rewrites again")
	}
}

func TestStaleASTRecoversByFullRecomputeNotIncremental(t *testing.T) {
	faultinject.Enable(1)
	defer faultinject.Disable()

	f := newTrackedFixture(t, 800)
	ca := f.compile(t, "staleres", `
		select flid, count(*) as c, sum(qty) as s from trans group by flid`)
	plan := f.m.Analyze(ca)
	if plan.Strategy != Incremental {
		t.Fatalf("not incremental: %s", plan.Reason)
	}

	// Batch 1: both the incremental merge and the full fallback fail, leaving
	// the materialization stale and missing this batch's delta.
	faultinject.Set("maintain.incremental:staleres", faultinject.Fault{Err: errors.New("inc down"), Times: 1})
	faultinject.Set("maintain.full:staleres", faultinject.Fault{Err: errors.New("full down"), Times: 1})
	rng := rand.New(rand.NewSource(14))
	if _, err := f.m.ApplyInsert([]*Plan{plan}, "trans", randTransRows(f, rng, 20)); err == nil {
		t.Fatal("batch 1 refresh should fail")
	}
	if st := f.cat.Status("staleres"); !st.Stale {
		t.Fatalf("AST should be stale after the failed batch: %+v", st)
	}

	// Batch 2 succeeds. An incremental merge here would fold only batch 2's
	// delta into contents still missing batch 1 and then mark the AST fresh —
	// resurrecting wrong data. Recovery must be a full recompute.
	stats, err := f.m.ApplyInsert([]*Plan{plan}, "trans", randTransRows(f, rng, 20))
	if err != nil {
		t.Fatalf("batch 2 refresh failed: %v", err)
	}
	if len(stats) != 1 || stats[0].Strategy != FullRecompute {
		t.Fatalf("stale AST must recover via full recompute, got %+v", stats)
	}
	if st := f.cat.Status("staleres"); st.Stale || st.Quarantined {
		t.Fatalf("recovery recompute should leave the AST fresh: %+v", st)
	}
	checkAgainstRecompute(t, f, ca)

	// Once fresh again, later batches go back to the incremental path.
	stats, err = f.m.ApplyInsert([]*Plan{plan}, "trans", randTransRows(f, rng, 20))
	if err != nil {
		t.Fatalf("batch 3 refresh failed: %v", err)
	}
	if stats[0].Strategy != Incremental {
		t.Fatalf("fresh AST should refresh incrementally again: %+v", stats)
	}
	checkAgainstRecompute(t, f, ca)
}

func TestStaleASTNeverReadWithoutAllowStale(t *testing.T) {
	faultinject.Enable(1)
	defer faultinject.Disable()

	f := newTrackedFixture(t, 800)
	ca := f.compile(t, "staleread", `select flid, count(distinct faid) as c from trans group by flid`)
	plan := f.m.Analyze(ca)
	faultinject.Set("maintain.full:staleread", faultinject.Err("maintain.full:staleread"))

	rows := randTransRows(f, rand.New(rand.NewSource(13)), 25)
	if _, err := f.m.ApplyInsert([]*Plan{plan}, "trans", rows); err == nil {
		t.Fatal("refresh should fail")
	}
	// The materialization is now deliberately stale (base advanced, AST did
	// not). With AllowStale=false the rewriter must not touch it.
	sql := "select flid, count(distinct faid) as c from trans group by flid"
	g, err := qgm.BuildSQL(sql, f.cat)
	if err != nil {
		t.Fatal(err)
	}
	if res := f.rw.RewriteBest(g, []*core.CompiledAST{ca}); res != nil {
		t.Fatal("stale AST was read with AllowStale=false")
	}
}

func TestRefreshFullDirectRecovery(t *testing.T) {
	f := newTrackedFixture(t, 500)
	ca := f.compile(t, "direct", `select flid, count(*) as c from trans group by flid`)
	plan := f.m.Analyze(ca)
	f.cat.MarkStale("direct")
	st, err := f.m.RefreshFull(plan)
	if err != nil || st.Err != nil {
		t.Fatalf("RefreshFull failed: %v / %+v", err, st)
	}
	if got := f.cat.Status("direct"); got.Stale || got.Epoch != 1 {
		t.Fatalf("status after RefreshFull: %+v", got)
	}
	checkAgainstRecompute(t, f, ca)
}
