package maintain

// The delta-plan audit in action: a plan whose derived ordinals drift from
// the definition (the kind of corruption an Analyze bug or a stale cached
// plan would produce) must be rejected before the merge runs, degrading the
// refresh to full recomputation — and the materialization must still match a
// fresh evaluation afterwards. Routing alone cannot catch this: the routing
// decision was precomputed from the same (now wrong) ordinals.

import (
	"math/rand"
	"testing"
)

func TestCorruptPlanOrdinalsFallBackToFullRecompute(t *testing.T) {
	f := newFixture(t, 800)
	ca := f.compile(t, "audit", `select flid, count(*) as c, sum(qty) as s from trans group by flid`)
	p := f.m.Analyze(ca)
	if s, reason := p.DeleteRouting("trans"); s != Incremental {
		t.Fatalf("want incremental delete routing: %s", reason)
	}

	// Sanity: the healthy plan passes the audit and merges incrementally.
	n, stats, err := f.m.ApplyDelete([]*Plan{p}, buildDelete(t, f, `delete from trans where qty = 1`))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || stats[0].Strategy != Incremental {
		t.Fatalf("healthy delete: n=%d stats=%+v, want incremental", n, stats)
	}
	checkAgainstRecompute(t, f, ca)

	// Corrupt the tracker ordinal to point at the grouping key. Routing still
	// says incremental, so without the audit the merge would subtract key
	// values as group counts.
	p.counterCol = 0
	n, stats, err = f.m.ApplyDelete([]*Plan{p}, buildDelete(t, f, `delete from trans where qty = 2`))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("predicate matched nothing")
	}
	if stats[0].Strategy != FullRecompute {
		t.Fatalf("corrupt plan refreshed via %v, want full recompute: %+v", stats[0].Strategy, stats[0])
	}
	checkAgainstRecompute(t, f, ca)

	// The insert path runs the same gate.
	rows := randTransRows(f, rand.New(rand.NewSource(7)), 30)
	istats, err := f.m.ApplyInsert([]*Plan{p}, "trans", rows)
	if err != nil {
		t.Fatal(err)
	}
	if istats[0].Strategy != FullRecompute {
		t.Fatalf("corrupt plan insert refreshed via %v, want full recompute", istats[0].Strategy)
	}
	checkAgainstRecompute(t, f, ca)

	// Restoring the ordinal restores incremental maintenance.
	p.counterCol = 1
	n, stats, err = f.m.ApplyDelete([]*Plan{p}, buildDelete(t, f, `delete from trans where qty = 3`))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || stats[0].Strategy != Incremental {
		t.Fatalf("restored delete: n=%d stats=%+v, want incremental", n, stats)
	}
	checkAgainstRecompute(t, f, ca)
}

// A key-partition corruption (the plan claiming an aggregate column is a key)
// is likewise caught by the audit on the update path.
func TestCorruptKeyPartitionFallsBackOnUpdate(t *testing.T) {
	f := newFixture(t, 600)
	ca := f.compile(t, "auditu", `select fpgid, count(*) as c, sum(qty) as s from trans group by fpgid`)
	p := f.m.Analyze(ca)
	if s, reason := p.DeleteRouting("trans"); s != Incremental {
		t.Fatalf("want incremental routing: %s", reason)
	}
	p.keyCols = []int{0, 1}
	n, stats, err := f.m.ApplyUpdate([]*Plan{p}, buildUpdate(t, f, `update trans set qty = qty + 1 where qty = 2`))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("predicate matched nothing")
	}
	if stats[0].Strategy != FullRecompute {
		t.Fatalf("corrupt plan update refreshed via %v, want full recompute", stats[0].Strategy)
	}
	checkAgainstRecompute(t, f, ca)
}
