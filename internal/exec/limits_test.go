package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/qgm"
)

// buildTestGraph compiles SQL over the star-schema fixture (exec_test.go).
func buildTestGraph(t *testing.T, sql string) (*Engine, *qgm.Graph) {
	t.Helper()
	cat, _, e := fixture(t, 200)
	g, err := qgm.BuildSQL(sql, cat)
	if err != nil {
		t.Fatal(err)
	}
	return e, g
}

func TestRunCtxNoLimitsMatchesRun(t *testing.T) {
	e, g := buildTestGraph(t, "select flid, count(*) as c from trans group by flid")
	want, err := e.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.RunCtx(context.Background(), g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if diff := EqualResults(want, got); diff != "" {
		t.Fatalf("RunCtx differs from Run: %s", diff)
	}
}

func TestMaxRowsBudget(t *testing.T) {
	// A cross join of trans with itself materializes n^2 bindings; a tiny
	// budget must trip long before that.
	e, g := buildTestGraph(t, "select a.tid as t1 from trans a, trans b")
	_, err := e.RunCtx(context.Background(), g, Config{MaxRows: 500})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	// A generous budget succeeds.
	if _, err := e.RunCtx(context.Background(), g, Config{MaxRows: 1 << 20}); err != nil {
		t.Fatalf("generous budget failed: %v", err)
	}
}

func TestCanceledContext(t *testing.T) {
	e, g := buildTestGraph(t, "select flid, count(*) as c from trans group by flid")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.RunCtx(ctx, g, Config{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestTimeoutWithSlowScan(t *testing.T) {
	faultinject.Enable(1)
	defer faultinject.Disable()
	faultinject.Set("storage.scan:trans", faultinject.Fault{Delay: 100 * time.Millisecond})

	e, g := buildTestGraph(t, "select tid from trans")
	_, err := e.RunCtx(context.Background(), g, Config{Timeout: 10 * time.Millisecond})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled from timeout, got %v", err)
	}
}

func TestInjectedScanError(t *testing.T) {
	faultinject.Enable(1)
	defer faultinject.Disable()
	faultinject.Set("storage.scan:trans", faultinject.Err("storage.scan:trans"))

	e, g := buildTestGraph(t, "select tid from trans")
	if _, err := e.Run(g); err == nil {
		t.Fatal("injected scan error did not surface")
	}
}
